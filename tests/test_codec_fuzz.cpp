// Codec verification harness, part 2: a deterministic structure-aware
// corruption fuzzer. Two layers:
//
//  * Codec level: encoded blocks get bit-flipped, truncated, and spliced,
//    then decoded. A bare codec has no integrity metadata, so the only
//    contract is "no crash, no overallocation": decode must either throw
//    a typed sickle error or return exactly `count` values.
//
//  * Container level (SKL2 v3 and SKL3 v3): the same mutations over the
//    payload + index regions of real store files. Here the format DOES
//    carry integrity metadata (FNV-1a index checksum since v2, per-block
//    payload checksums since v3), so the contract tightens to "bit-exact
//    or typed error" — silent wrong data is a failure.
//
// Everything is seeded and offset-loop driven (no wall-clock randomness),
// extending the single-offset byte-flip tests from the v2 format work
// into full-region sweeps. Runs under ASan/UBSan/TSan in CI.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "field/field.hpp"
#include "store/codec.hpp"
#include "store/series_store.hpp"
#include "store/snapshot_store.hpp"

namespace sickle::store {
namespace {

[[nodiscard]] bool bit_equal(std::span<const double> a,
                             std::span<const double> b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// Value patterns the fuzzer mutates around — smooth (long gorilla
/// windows), rough (wide windows), and the adversarial specials.
[[nodiscard]] std::vector<std::pair<std::string, std::vector<double>>>
fuzz_patterns() {
  std::vector<std::pair<std::string, std::vector<double>>> out;
  {
    std::vector<double> v(96);
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = 300.0 + 0.25 * static_cast<double>(i % 7);
    }
    out.emplace_back("smooth", std::move(v));
  }
  {
    std::vector<double> v(96);
    Rng rng(4242);
    for (auto& x : v) x = rng.normal();
    out.emplace_back("rough", std::move(v));
  }
  out.emplace_back("constant", std::vector<double>(96, 1.5));
  {
    std::vector<double> v(64, std::numeric_limits<double>::quiet_NaN());
    v[10] = std::numeric_limits<double>::infinity();
    v[20] = -std::numeric_limits<double>::infinity();
    v[30] = std::numeric_limits<double>::denorm_min();
    v[40] = 0.0;
    out.emplace_back("specials", std::move(v));
  }
  return out;
}

/// The codec-level contract under mutation: decode returns `count` values
/// or throws a typed sickle error. Crashes, hangs, and unhandled foreign
/// exceptions are the bugs this hunts (sanitizers catch the memory side).
void expect_contained_decode(const Codec& codec,
                             const std::vector<std::uint8_t>& block,
                             std::size_t count, const std::string& what) {
  try {
    const auto got = codec.decode(block, count);
    EXPECT_EQ(got.size(), count) << what;
  } catch (const RuntimeError&) {
  } catch (const CheckError&) {
  }
}

TEST(CodecFuzz, BitFlippedBlocksNeverCrash) {
  for (const auto& cname : codec_names()) {
    const auto codec = make_codec(cname, 1e-6);
    for (const auto& [tag, vals] : fuzz_patterns()) {
      const auto block = codec->encode(vals);
      for (std::size_t off = 0; off < block.size(); ++off) {
        // One deterministic bit per byte keeps the sweep O(size) while
        // still walking every control-bit neighborhood over the offsets.
        auto mut = block;
        mut[off] ^= static_cast<std::uint8_t>(1u << (off % 8));
        expect_contained_decode(*codec, mut, vals.size(),
                                cname + "/" + tag + " flip@" +
                                    std::to_string(off));
      }
    }
  }
}

TEST(CodecFuzz, TruncatedBlocksNeverCrash) {
  for (const auto& cname : codec_names()) {
    const auto codec = make_codec(cname, 1e-6);
    for (const auto& [tag, vals] : fuzz_patterns()) {
      const auto block = codec->encode(vals);
      for (std::size_t len = 0; len < block.size(); ++len) {
        std::vector<std::uint8_t> mut(block.begin(),
                                      block.begin() +
                                          static_cast<std::ptrdiff_t>(len));
        expect_contained_decode(*codec, mut, vals.size(),
                                cname + "/" + tag + " trunc@" +
                                    std::to_string(len));
      }
    }
  }
}

TEST(CodecFuzz, SplicedAndMiscountedBlocksNeverCrash) {
  const auto patterns = fuzz_patterns();
  for (const auto& cname : codec_names()) {
    const auto codec = make_codec(cname, 1e-6);
    // Splice: head of one pattern's encoding grafted onto the tail of
    // another's — structurally valid prefixes with inconsistent suffixes.
    for (std::size_t a = 0; a < patterns.size(); ++a) {
      for (std::size_t b = 0; b < patterns.size(); ++b) {
        if (a == b) continue;
        const auto ba = codec->encode(patterns[a].second);
        const auto bb = codec->encode(patterns[b].second);
        const std::size_t cut = std::min(ba.size(), bb.size()) / 2;
        std::vector<std::uint8_t> mut(
            ba.begin(), ba.begin() + static_cast<std::ptrdiff_t>(cut));
        mut.insert(mut.end(),
                   bb.begin() + static_cast<std::ptrdiff_t>(
                                    std::min(cut, bb.size())),
                   bb.end());
        expect_contained_decode(*codec, mut, patterns[a].second.size(),
                                cname + " splice " + patterns[a].first +
                                    "+" + patterns[b].first);
      }
    }
    // Wrong declared count: the count is index metadata, so a corrupted
    // index must not let decode scribble past the requested size.
    const auto block = codec->encode(patterns[0].second);
    const std::size_t n = patterns[0].second.size();
    for (const std::size_t count :
         {std::size_t{0}, n - 1, n + 1, n * 2, std::size_t{100000}}) {
      expect_contained_decode(*codec, block, count,
                              cname + " count=" + std::to_string(count));
    }
  }
}

// ---------------------------------------------------------------------------
// Container-level fuzzing: real SKL2/SKL3 v3 files.
// ---------------------------------------------------------------------------

class ContainerFuzz : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("sickle_codec_fuzz_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  /// Small snapshot with smooth + special values so mutations land on
  /// realistic gorilla bitstreams as well as raw NaN bytes.
  [[nodiscard]] static field::Snapshot make_snapshot(double t) {
    field::Snapshot snap({8, 6, 4}, t);
    std::vector<double> u(8 * 6 * 4);
    std::vector<double> c(8 * 6 * 4);
    for (std::size_t i = 0; i < u.size(); ++i) {
      u[i] = 300.0 + 0.5 * static_cast<double>(i % 9) + t;
      c[i] = static_cast<double>(i) * 1e-3;
    }
    c[3] = std::numeric_limits<double>::quiet_NaN();
    c[7] = std::numeric_limits<double>::infinity();
    c[11] = std::numeric_limits<double>::denorm_min();
    snap.add("u", std::move(u));
    snap.add("c", std::move(c));
    return snap;
  }

  [[nodiscard]] static std::vector<std::uint8_t> slurp(
      const std::string& p) {
    std::ifstream f(p, std::ios::binary);
    return {std::istreambuf_iterator<char>(f),
            std::istreambuf_iterator<char>()};
  }

  static void spit(const std::string& p,
                   const std::vector<std::uint8_t>& bytes) {
    std::ofstream f(p, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  }

  std::filesystem::path dir_;
};

/// Sweep single-bit flips over [begin, end) of an SKL2 file. Every
/// mutation must either fail with a typed error (open or chunk access) or
/// leave every decoded value bit-identical — v3's per-block checksums are
/// what make that promise over the payload region.
TEST_F(ContainerFuzz, Skl2BitFlipSweepIsExactOrTypedError) {
  const auto snap = make_snapshot(0.0);
  StoreOptions opts;
  opts.chunk = {4, 4, 4};
  opts.codec = "gorilla";
  write_store(snap, path("base.skl2"), opts);
  const auto clean = slurp(path("base.skl2"));

  // Baseline decode for bit-exact comparison.
  std::vector<std::vector<double>> ref;
  {
    ChunkReader reader(path("base.skl2"));
    ASSERT_EQ(reader.format_version(), 3u);
    for (const auto& name : reader.variables()) {
      ref.push_back(reader.load_field(name));
    }
  }

  // A locally-written header with these small shapes is under 200 bytes;
  // start a little before that so the sweep provably straddles the
  // header/payload boundary, then walk payload + index + footer. The
  // flipped bit rotates with the offset so control and data bits both get
  // hit across the loop.
  const std::size_t begin = clean.size() > 160 ? 120 : 0;
  std::size_t silent = 0;
  for (std::size_t off = begin; off < clean.size(); ++off) {
    auto mut = clean;
    mut[off] ^= static_cast<std::uint8_t>(1u << (off % 8));
    spit(path("mut.skl2"), mut);
    try {
      ChunkReader reader(path("mut.skl2"));
      const auto names = reader.variables();
      ASSERT_EQ(names.size(), ref.size()) << "flip@" << off;
      for (std::size_t i = 0; i < names.size(); ++i) {
        const auto got = reader.load_field(names[i]);
        if (!bit_equal(ref[i], got)) {
          ++silent;
          ADD_FAILURE() << "silent corruption: flip@" << off << " field "
                        << names[i];
        }
      }
    } catch (const RuntimeError&) {
    } catch (const CheckError&) {
    }
    if (silent > 3) break;  // don't drown the log once it's broken
  }
}

TEST_F(ContainerFuzz, Skl2TruncationSweepIsTypedError) {
  const auto snap = make_snapshot(0.0);
  StoreOptions opts;
  opts.chunk = {4, 4, 4};
  opts.codec = "delta";
  write_store(snap, path("base.skl2"), opts);
  const auto clean = slurp(path("base.skl2"));

  // Any shortening removes index/footer bytes, so open (or the first
  // chunk access) must raise a typed error — never garbage data.
  const std::size_t step = std::max<std::size_t>(1, clean.size() / 97);
  for (std::size_t len = 0; len < clean.size(); len += step) {
    std::vector<std::uint8_t> mut(
        clean.begin(), clean.begin() + static_cast<std::ptrdiff_t>(len));
    spit(path("mut.skl2"), mut);
    try {
      ChunkReader reader(path("mut.skl2"));
      for (const auto& name : reader.variables()) {
        (void)reader.load_field(name);
      }
      ADD_FAILURE() << "truncation to " << len << " bytes was accepted";
    } catch (const RuntimeError&) {
    } catch (const CheckError&) {
    }
  }
}

TEST_F(ContainerFuzz, Skl2PayloadSpliceFailsChecksum) {
  // Two stores with different values: graft a block-sized slice of one
  // payload into the other. The index checksum still matches (the index
  // is untouched), so only v3's per-block payload checksums can catch it.
  StoreOptions opts;
  opts.chunk = {4, 4, 4};
  opts.codec = "raw";
  write_store(make_snapshot(0.0), path("a.skl2"), opts);
  write_store(make_snapshot(5.0), path("b.skl2"), opts);
  const auto a = slurp(path("a.skl2"));
  const auto b = slurp(path("b.skl2"));
  ASSERT_EQ(a.size(), b.size());

  // Identical headers, differing payloads: the first differing byte marks
  // the payload region without reaching into reader internals.
  std::size_t payload = 0;
  while (payload < a.size() && a[payload] == b[payload]) ++payload;
  ASSERT_LT(payload, a.size());

  std::vector<double> ref;
  {
    ChunkReader reader(path("a.skl2"));
    ref = reader.load_field("u");
  }

  for (const std::size_t shift : {std::size_t{16}, std::size_t{64},
                                  std::size_t{256}}) {
    auto mut = a;
    const std::size_t n =
        std::min<std::size_t>(128, mut.size() - payload - shift);
    std::memcpy(mut.data() + payload, b.data() + payload + shift, n);
    spit(path("mut.skl2"), mut);
    try {
      ChunkReader reader(path("mut.skl2"));
      const auto got = reader.load_field("u");
      EXPECT_TRUE(bit_equal(ref, got)) << "splice shift " << shift;
    } catch (const RuntimeError&) {
    } catch (const CheckError&) {
    }
  }
}

/// The same flip sweep over an SKL3 series file: payload, per-snapshot
/// summaries, index entries (now 3 words with the payload checksum), and
/// the index checksum footer all get walked.
TEST_F(ContainerFuzz, Skl3BitFlipSweepIsExactOrTypedError) {
  StoreOptions opts;
  opts.chunk = {4, 4, 4};
  opts.codec = "gorilla";
  SeriesWriter writer(path("base.skl3"), opts);
  writer.append(make_snapshot(0.0));
  writer.append(make_snapshot(0.5));
  writer.close();
  const auto clean = slurp(path("base.skl3"));

  std::vector<std::vector<double>> ref;
  {
    SeriesReader reader(path("base.skl3"));
    ASSERT_EQ(reader.format_version(), 4u);
    for (std::size_t t = 0; t < reader.num_snapshots(); ++t) {
      const auto s = reader.load_snapshot(t);
      for (const auto& name : s.names()) {
        const auto& d = s.get(name).data();
        ref.emplace_back(d.begin(), d.end());
      }
    }
  }

  const std::size_t begin = clean.size() > 160 ? 120 : 0;
  std::size_t silent = 0;
  for (std::size_t off = begin; off < clean.size(); ++off) {
    auto mut = clean;
    mut[off] ^= static_cast<std::uint8_t>(1u << (off % 8));
    spit(path("mut.skl3"), mut);
    try {
      SeriesReader reader(path("mut.skl3"));
      std::size_t k = 0;
      bool ok = reader.num_snapshots() == 2;
      for (std::size_t t = 0; ok && t < reader.num_snapshots(); ++t) {
        const auto s = reader.load_snapshot(t);
        for (const auto& name : s.names()) {
          const auto& d = s.get(name).data();
          ok = k < ref.size() &&
               bit_equal(ref[k], {d.data(), d.size()});
          ++k;
          if (!ok) break;
        }
      }
      if (!ok) {
        ++silent;
        ADD_FAILURE() << "silent corruption: flip@" << off;
      }
    } catch (const RuntimeError&) {
    } catch (const CheckError&) {
    }
    if (silent > 3) break;
  }
}

TEST_F(ContainerFuzz, Skl3TruncationSweepIsTypedError) {
  StoreOptions opts;
  opts.chunk = {4, 4, 4};
  opts.codec = "delta";
  SeriesWriter writer(path("base.skl3"), opts);
  writer.append(make_snapshot(0.0));
  writer.append(make_snapshot(0.5));
  writer.close();
  const auto clean = slurp(path("base.skl3"));

  const std::size_t step = std::max<std::size_t>(1, clean.size() / 97);
  for (std::size_t len = 0; len < clean.size(); len += step) {
    std::vector<std::uint8_t> mut(
        clean.begin(), clean.begin() + static_cast<std::ptrdiff_t>(len));
    spit(path("mut.skl3"), mut);
    try {
      SeriesReader reader(path("mut.skl3"));
      for (std::size_t t = 0; t < reader.num_snapshots(); ++t) {
        (void)reader.load_snapshot(t);
      }
      ADD_FAILURE() << "truncation to " << len << " bytes was accepted";
    } catch (const RuntimeError&) {
    } catch (const CheckError&) {
    }
  }
}

}  // namespace
}  // namespace sickle::store
