// Integration tests: two-phase pipeline, serial vs SPMD equivalence.
#include <gtest/gtest.h>

#include <set>

#include "flow/spectral_turbulence.hpp"
#include "parallel/world.hpp"
#include "sampling/pipeline.hpp"

namespace sickle::sampling {
namespace {

field::Dataset small_stratified() {
  flow::StratifiedParams p;
  p.nx = p.ny = 32;
  p.nz = 16;
  p.snapshots = 2;
  p.seed = 3;
  return flow::generate_stratified(p);
}

PipelineConfig small_config() {
  PipelineConfig cfg;
  cfg.cube = {8, 8, 8};
  cfg.hypercube_method = "maxent";
  cfg.point_method = "maxent";
  cfg.num_hypercubes = 6;
  cfg.num_samples = 51;  // ~10% of 8^3
  cfg.num_clusters = 6;
  cfg.input_vars = {"u", "v", "w", "rho"};
  cfg.output_vars = {"p"};
  cfg.cluster_var = "pv";
  cfg.seed = 99;
  return cfg;
}

TEST(Pipeline, VariablesAreDeduplicated) {
  PipelineConfig cfg;
  cfg.input_vars = {"u", "v"};
  cfg.output_vars = {"v", "p"};
  cfg.cluster_var = "u";
  const auto vars = pipeline_variables(cfg);
  EXPECT_EQ(vars, (std::vector<std::string>{"u", "v", "p"}));
}

TEST(Pipeline, SnapshotRunProducesExpectedCubesAndSamples) {
  const auto ds = small_stratified();
  const auto cfg = small_config();
  const auto result = run_pipeline(ds.snapshot(0), cfg);
  EXPECT_EQ(result.cubes.size(), 6u);
  for (const auto& c : result.cubes) {
    EXPECT_EQ(c.samples.points(), 51u);
    EXPECT_EQ(c.samples.variables.size(), 6u);  // u v w rho p pv
    // Indices are valid grid indices.
    for (const auto i : c.samples.indices) {
      EXPECT_LT(i, ds.shape().size());
    }
  }
  EXPECT_EQ(result.total_points(), 6u * 51u);
  EXPECT_GT(result.energy.bytes(), 0.0);
  EXPECT_GT(result.sampling_seconds, 0.0);
}

TEST(Pipeline, FullMethodKeepsEveryCubePoint) {
  const auto ds = small_stratified();
  auto cfg = small_config();
  cfg.hypercube_method = "random";
  cfg.point_method = "full";
  const auto result = run_pipeline(ds.snapshot(0), cfg);
  for (const auto& c : result.cubes) {
    EXPECT_EQ(c.samples.points(), 8u * 8u * 8u);
  }
}

TEST(Pipeline, DatasetRunCoversAllSnapshots) {
  const auto ds = small_stratified();
  auto cfg = small_config();
  cfg.num_hypercubes = 3;
  const auto result = run_pipeline(ds, cfg);
  EXPECT_EQ(result.cubes.size(), 2u * 3u);
  std::set<std::size_t> snaps;
  for (const auto& c : result.cubes) snaps.insert(c.snapshot);
  EXPECT_EQ(snaps.size(), 2u);
}

TEST(Pipeline, DeterministicAcrossRuns) {
  const auto ds = small_stratified();
  const auto cfg = small_config();
  const auto a = run_pipeline(ds.snapshot(0), cfg);
  const auto b = run_pipeline(ds.snapshot(0), cfg);
  ASSERT_EQ(a.cubes.size(), b.cubes.size());
  for (std::size_t i = 0; i < a.cubes.size(); ++i) {
    EXPECT_EQ(a.cubes[i].cube_id, b.cubes[i].cube_id);
    EXPECT_EQ(a.cubes[i].samples.indices, b.cubes[i].samples.indices);
  }
}

TEST(Pipeline, MergedConcatenatesAllCubes) {
  const auto ds = small_stratified();
  const auto cfg = small_config();
  const auto result = run_pipeline(ds.snapshot(0), cfg);
  const auto merged = result.merged();
  EXPECT_EQ(merged.points(), result.total_points());
  EXPECT_EQ(merged.features.size(), merged.points() * merged.dims());
}

/// The shared-memory twin of the SPMD property below: `threads:` changes
/// wall-clock behavior only. The clustering fit and cube draw consume RNG
/// before the fan-out, each cube forks its own RNG, and all reductions
/// run in cube-id order, so every thread count produces the identical
/// result — samples and energy tallies alike.
TEST(Pipeline, ThreadCountDoesNotChangeResults) {
  const auto ds = small_stratified();
  auto cfg = small_config();
  cfg.threads = 1;
  const auto serial = run_pipeline(ds.snapshot(0), cfg);
  for (const std::size_t threads : {std::size_t{0}, std::size_t{4}}) {
    cfg.threads = threads;
    const auto pooled = run_pipeline(ds.snapshot(0), cfg);
    ASSERT_EQ(pooled.cubes.size(), serial.cubes.size());
    for (std::size_t i = 0; i < serial.cubes.size(); ++i) {
      EXPECT_EQ(pooled.cubes[i].cube_id, serial.cubes[i].cube_id);
      EXPECT_EQ(pooled.cubes[i].samples.indices,
                serial.cubes[i].samples.indices);
      EXPECT_EQ(pooled.cubes[i].samples.features,
                serial.cubes[i].samples.features);
    }
    EXPECT_DOUBLE_EQ(pooled.energy.flops(), serial.energy.flops());
    EXPECT_DOUBLE_EQ(pooled.energy.bytes(), serial.energy.bytes());
  }
}

/// The paper's key parallel property: SPMD runs produce the identical
/// sample set at any rank count (deterministic counter RNG per cube).
class PipelineSpmd : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PipelineSpmd, MatchesSerialAtAnyRankCount) {
  const auto ds = small_stratified();
  const auto cfg = small_config();
  const auto serial = run_pipeline(ds.snapshot(0), cfg);

  World world(GetParam());
  std::vector<PipelineResult> per_rank(GetParam());
  world.run([&](Comm& comm) {
    per_rank[comm.rank()] = run_pipeline(ds.snapshot(0), cfg, comm);
  });

  // Sort serial cubes by id for comparison (SPMD result is id-sorted).
  auto sorted = serial.cubes;
  std::sort(sorted.begin(), sorted.end(),
            [](const CubeSamples& a, const CubeSamples& b) {
              return a.cube_id < b.cube_id;
            });
  for (const auto& result : per_rank) {
    ASSERT_EQ(result.cubes.size(), sorted.size());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      EXPECT_EQ(result.cubes[i].cube_id, sorted[i].cube_id);
      EXPECT_EQ(result.cubes[i].samples.indices,
                sorted[i].samples.indices);
      EXPECT_EQ(result.cubes[i].samples.features,
                sorted[i].samples.features);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, PipelineSpmd,
                         ::testing::Values(1, 2, 4, 8),
                         [](const auto& info) {
                           return "ranks" + std::to_string(info.param);
                         });

TEST(PipelineSpmd, AllRanksAgree) {
  const auto ds = small_stratified();
  const auto cfg = small_config();
  World world(4);
  std::vector<std::size_t> totals(4, 0);
  world.run([&](Comm& comm) {
    const auto result = run_pipeline(ds.snapshot(0), cfg, comm);
    totals[comm.rank()] = result.total_points();
  });
  for (std::size_t r = 1; r < 4; ++r) {
    EXPECT_EQ(totals[r], totals[0]);
  }
}

TEST(SampleSet, ColumnExtractionAndAppend) {
  SampleSet a;
  a.variables = {"x", "y"};
  a.indices = {0, 1};
  a.features = {1.0, 10.0, 2.0, 20.0};
  EXPECT_EQ(a.column("y"), (std::vector<double>{10.0, 20.0}));
  EXPECT_THROW(a.column("z"), CheckError);

  SampleSet b;
  b.variables = {"x", "y"};
  b.indices = {2};
  b.features = {3.0, 30.0};
  a.append(b);
  EXPECT_EQ(a.points(), 3u);
  EXPECT_EQ(a.column("x"), (std::vector<double>{1.0, 2.0, 3.0}));

  SampleSet c;
  c.variables = {"other"};
  c.indices = {0};
  c.features = {0.0};
  EXPECT_THROW(a.append(c), CheckError);
}

}  // namespace
}  // namespace sickle::sampling
