// Unit + property tests: point samplers, weighted draws, hypercube
// selection, temporal sampling.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "field/field_source.hpp"
#include "field/hypercube.hpp"
#include "flow/spectral_turbulence.hpp"
#include "parallel/thread_pool.hpp"
#include "sampling/cube_scoring.hpp"
#include "sampling/hypercube_selector.hpp"
#include "sampling/point_samplers.hpp"
#include "sampling/temporal.hpp"
#include "stats/descriptive.hpp"
#include "stats/entropy.hpp"
#include "stats/histogram.hpp"

namespace sickle::sampling {
namespace {

/// A synthetic cube whose cluster variable is Gaussian with heavy outliers:
/// tail points are rare but information-rich — exactly the structure
/// MaxEnt is designed to find.
field::Hypercube make_test_cube(std::size_t n, std::uint64_t seed) {
  field::Hypercube cube;
  cube.variables = {"a", "b", "cv"};
  cube.values.resize(3);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    cube.indices.push_back(i);
    const bool outlier = rng.uniform() < 0.02;
    const double v = outlier ? rng.normal(8.0, 0.5) : rng.normal(0.0, 1.0);
    cube.values[0].push_back(rng.normal());
    cube.values[1].push_back(0.5 * v + rng.normal());
    cube.values[2].push_back(v);
  }
  return cube;
}

SamplerContext make_ctx(std::size_t k) {
  SamplerContext ctx;
  ctx.phase_variables = {"a", "b"};
  ctx.cluster_var = "cv";
  ctx.num_samples = k;
  ctx.num_clusters = 8;
  ctx.pdf_bins = 8;
  return ctx;
}

// ------------------------------------------------------------ shared sweep

class SamplerInvariants : public ::testing::TestWithParam<std::string> {};

TEST_P(SamplerInvariants, ReturnsRequestedCountOfDistinctValidIndices) {
  const auto cube = make_test_cube(2000, 1);
  const auto ctx = make_ctx(200);
  auto sampler = SamplerRegistry::instance().create(GetParam());
  Rng rng(7);
  const auto sel = sampler->select(cube, ctx, rng);
  const std::size_t expected =
      (GetParam() == "full") ? cube.points() : ctx.num_samples;
  EXPECT_EQ(sel.size(), expected);
  std::set<std::size_t> uniq(sel.begin(), sel.end());
  EXPECT_EQ(uniq.size(), sel.size()) << "duplicate selections";
  for (const auto i : sel) EXPECT_LT(i, cube.points());
}

TEST_P(SamplerInvariants, DeterministicGivenSeed) {
  const auto cube = make_test_cube(1000, 2);
  const auto ctx = make_ctx(100);
  auto sampler = SamplerRegistry::instance().create(GetParam());
  Rng r1(42), r2(42);
  EXPECT_EQ(sampler->select(cube, ctx, r1), sampler->select(cube, ctx, r2));
}

TEST_P(SamplerInvariants, OversizedRequestClampsToCube) {
  const auto cube = make_test_cube(50, 3);
  const auto ctx = make_ctx(500);  // more than the cube holds
  auto sampler = SamplerRegistry::instance().create(GetParam());
  Rng rng(1);
  const auto sel = sampler->select(cube, ctx, rng);
  EXPECT_EQ(sel.size(), 50u);
}

TEST_P(SamplerInvariants, TalliesEnergyBytes) {
  const auto cube = make_test_cube(500, 4);
  auto ctx = make_ctx(50);
  energy::EnergyCounter counter;
  ctx.energy = &counter;
  auto sampler = SamplerRegistry::instance().create(GetParam());
  Rng rng(1);
  (void)sampler->select(cube, ctx, rng);
  EXPECT_GT(counter.bytes(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllSamplers, SamplerInvariants,
                         ::testing::Values("random", "full", "stratified",
                                           "lhs", "uips", "maxent"),
                         [](const auto& info) { return info.param; });

// ------------------------------------------------------------- per-sampler

TEST(Registry, ListsBuiltins) {
  const auto names = SamplerRegistry::instance().names();
  for (const char* n : {"random", "full", "stratified", "lhs", "uips",
                        "maxent"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), n), names.end()) << n;
  }
}

TEST(Registry, UnknownSamplerThrows) {
  EXPECT_THROW(SamplerRegistry::instance().create("nope"), RuntimeError);
}

TEST(Registry, PluggableUserSampler) {
  // Contribution C1: user samplers register by name.
  class FirstK final : public PointSampler {
   public:
    [[nodiscard]] std::string name() const override { return "first_k"; }
    [[nodiscard]] std::vector<std::size_t> select(
        const field::Hypercube& cube, const SamplerContext& ctx,
        Rng&) const override {
      std::vector<std::size_t> out;
      for (std::size_t i = 0; i < std::min(ctx.num_samples, cube.points());
           ++i) {
        out.push_back(i);
      }
      return out;
    }
  };
  SamplerRegistry::instance().register_sampler(
      "first_k", [] { return std::make_unique<FirstK>(); });
  const auto cube = make_test_cube(100, 5);
  const auto ctx = make_ctx(10);
  Rng rng(1);
  const auto sel =
      SamplerRegistry::instance().create("first_k")->select(cube, ctx, rng);
  EXPECT_EQ(sel, (std::vector<std::size_t>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(WeightedSampling, RespectsWeightsWithoutReplacement) {
  Rng rng(1);
  const std::vector<double> w{10.0, 1.0, 1.0, 1.0};
  std::size_t first_selected = 0;
  for (int trial = 0; trial < 1000; ++trial) {
    const auto sel = weighted_sample_without_replacement(w, 2, rng);
    EXPECT_EQ(sel.size(), 2u);
    EXPECT_NE(sel[0], sel[1]);
    if (sel[0] == 0 || sel[1] == 0) ++first_selected;
  }
  // Item 0 has ~96% inclusion probability at weight 10 vs 1,1,1.
  EXPECT_GT(first_selected, 900u);
}

TEST(WeightedSampling, ZeroWeightNeverSelected) {
  Rng rng(2);
  const std::vector<double> w{1.0, 0.0, 1.0, 1.0};
  for (int trial = 0; trial < 200; ++trial) {
    for (const auto i : weighted_sample_without_replacement(w, 3, rng)) {
      EXPECT_NE(i, 1u);
    }
  }
}

TEST(WeightedSampling, InsufficientPositiveWeightsThrows) {
  Rng rng(3);
  const std::vector<double> w{1.0, 0.0};
  EXPECT_THROW(weighted_sample_without_replacement(w, 2, rng), CheckError);
}

TEST(Stratified, ProportionalAllocation) {
  // 80/20 bimodal cluster variable -> strata draw should be ~80/20.
  field::Hypercube cube;
  cube.variables = {"cv"};
  cube.values.resize(1);
  Rng gen(4);
  for (std::size_t i = 0; i < 1000; ++i) {
    cube.indices.push_back(i);
    cube.values[0].push_back(i < 800 ? 0.0 + 0.01 * gen.normal()
                                     : 1.0 + 0.01 * gen.normal());
  }
  SamplerContext ctx;
  ctx.cluster_var = "cv";
  ctx.num_samples = 100;
  ctx.num_clusters = 2;
  StratifiedSampler sampler;
  Rng rng(5);
  const auto sel = sampler.select(cube, ctx, rng);
  std::size_t low = 0;
  for (const auto i : sel) {
    if (cube.values[0][i] < 0.5) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low), 80.0, 5.0);
}

TEST(Lhs, OnePointPerStratum) {
  field::Hypercube cube;
  cube.variables = {"cv"};
  cube.values.resize(1);
  for (std::size_t i = 0; i < 100; ++i) {
    cube.indices.push_back(i);
    cube.values[0].push_back(0.0);
  }
  SamplerContext ctx;
  ctx.num_samples = 10;
  LatinHypercubeSampler sampler;
  Rng rng(6);
  const auto sel = sampler.select(cube, ctx, rng);
  ASSERT_EQ(sel.size(), 10u);
  // Exactly one selection inside each decile of the flat index space.
  std::vector<int> strata(10, 0);
  for (const auto i : sel) ++strata[i / 10];
  for (const int c : strata) EXPECT_EQ(c, 1);
}

TEST(Uips, FlattensThePhaseSpacePdf) {
  // Data heavily concentrated near the origin of phase space; UIPS should
  // produce a flatter sampled distribution than random sampling.
  field::Hypercube cube;
  cube.variables = {"a", "b"};
  cube.values.resize(2);
  Rng gen(7);
  for (std::size_t i = 0; i < 8000; ++i) {
    cube.indices.push_back(i);
    // 90% in a tight core, 10% spread wide.
    const double s = (gen.uniform() < 0.9) ? 0.2 : 3.0;
    cube.values[0].push_back(s * gen.normal());
    cube.values[1].push_back(s * gen.normal());
  }
  SamplerContext ctx;
  ctx.phase_variables = {"a", "b"};
  ctx.num_samples = 800;
  ctx.pdf_bins = 10;

  Rng r1(8), r2(8);
  const auto uips_sel = UipsSampler().select(cube, ctx, r1);
  const auto rand_sel = RandomSampler().select(cube, ctx, r2);

  auto entropy_of = [&](const std::vector<std::size_t>& sel) {
    std::vector<double> a;
    for (const auto i : sel) a.push_back(cube.values[0][i]);
    return stats::shannon_entropy(
        std::span<const double>(stats::Histogram::fit(a, 20).pmf()));
  };
  // Flatter distribution == higher entropy of the sampled marginal.
  EXPECT_GT(entropy_of(uips_sel), entropy_of(rand_sel) + 0.2);
}

TEST(MaxEnt, CoversTailsBetterThanRandom) {
  // The Fig. 5 property: at a 10% sampling rate, MaxEnt should hold more
  // mass in the reference distribution's tails than random sampling.
  const auto cube = make_test_cube(10000, 9);
  auto ctx = make_ctx(1000);
  ctx.num_clusters = 10;
  Rng r1(10), r2(10);
  const auto maxent_sel = MaxEntSampler().select(cube, ctx, r1);
  const auto random_sel = RandomSampler().select(cube, ctx, r2);

  const auto& cv = cube.values[2];
  auto tail_frac = [&](const std::vector<std::size_t>& sel) {
    std::vector<double> vals;
    for (const auto i : sel) vals.push_back(cv[i]);
    return stats::tail_coverage(std::span<const double>(cv),
                                std::span<const double>(vals), 0.02);
  };
  EXPECT_GT(tail_frac(maxent_sel), 2.0 * tail_frac(random_sel));
}

TEST(MaxEnt, ReproducibleAcrossReplicatesThanRandomIsNot) {
  // Discussion §7: MaxEnt exhibits less seed-to-seed variance in what it
  // captures. Measure the std of the sampled cluster-variable mean across
  // seeds.
  const auto cube = make_test_cube(5000, 11);
  auto ctx = make_ctx(500);
  std::vector<double> maxent_means, random_means;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng r1(seed), r2(seed);
    for (const bool use_maxent : {true, false}) {
      const auto sel = use_maxent
                           ? MaxEntSampler().select(cube, ctx, r1)
                           : RandomSampler().select(cube, ctx, r2);
      double mean = 0.0;
      for (const auto i : sel) mean += std::abs(cube.values[2][i]);
      mean /= static_cast<double>(sel.size());
      (use_maxent ? maxent_means : random_means).push_back(mean);
    }
  }
  // Both produce stable statistics; this asserts the weaker, robust
  // property that MaxEnt's signature (high |cv| content) is consistently
  // above random's across every replicate.
  const double worst_maxent =
      *std::min_element(maxent_means.begin(), maxent_means.end());
  const double best_random =
      *std::max_element(random_means.begin(), random_means.end());
  EXPECT_GT(worst_maxent, best_random);
}

TEST(MaxEnt, RequiresClusterVariable) {
  const auto cube = make_test_cube(100, 12);
  SamplerContext ctx;
  ctx.num_samples = 10;
  MaxEntSampler sampler;
  Rng rng(1);
  EXPECT_THROW(sampler.select(cube, ctx, rng), CheckError);
}

TEST(Uips, RequiresPhaseVariables) {
  const auto cube = make_test_cube(100, 13);
  SamplerContext ctx;
  ctx.num_samples = 10;
  UipsSampler sampler;
  Rng rng(1);
  EXPECT_THROW(sampler.select(cube, ctx, rng), CheckError);
}

// ------------------------------------------------------ hypercube selector

field::Snapshot make_structured_snapshot() {
  // 32x32x16 grid, cluster variable mostly flat with one "interesting"
  // octant carrying a distinct distribution.
  field::Snapshot snap({32, 32, 16});
  auto& f = snap.add("cv");
  Rng rng(20);
  for (std::size_t ix = 0; ix < 32; ++ix) {
    for (std::size_t iy = 0; iy < 32; ++iy) {
      for (std::size_t iz = 0; iz < 16; ++iz) {
        const bool hot = ix < 8 && iy < 8;
        f.at(ix, iy, iz) = hot ? rng.normal(5.0, 2.0) : rng.normal(0.0, 0.2);
      }
    }
  }
  return snap;
}

TEST(HypercubeSelector, RandomSelectsRequestedCount) {
  const auto snap = make_structured_snapshot();
  field::CubeTiling tiling(snap.shape(), {8, 8, 8});
  HypercubeSelectorConfig cfg;
  cfg.method = "random";
  cfg.num_hypercubes = 6;
  cfg.cluster_var = "cv";
  const auto sel = select_hypercubes(snap, tiling, cfg);
  EXPECT_EQ(sel.size(), 6u);
  std::set<std::size_t> uniq(sel.begin(), sel.end());
  EXPECT_EQ(uniq.size(), 6u);
}

TEST(HypercubeSelector, MaxEntPrefersDistinctCubes) {
  const auto snap = make_structured_snapshot();
  field::CubeTiling tiling(snap.shape(), {8, 8, 8});
  // Strengths: the two "hot" cubes (ix<8, iy<8, both z-tiles) should carry
  // the largest node strengths.
  HypercubeSelectorConfig cfg;
  cfg.method = "maxent";
  cfg.num_hypercubes = 4;
  cfg.cluster_var = "cv";
  cfg.num_clusters = 6;
  const auto strengths = hypercube_strengths(snap, tiling, cfg);
  ASSERT_EQ(strengths.size(), tiling.count());
  // Identify hot cube ids: cx = 0, cy = 0, any cz.
  std::vector<std::size_t> hot;
  for (std::size_t c = 0; c < tiling.count(); ++c) {
    const auto coord = tiling.coord(c);
    if (coord.cx == 0 && coord.cy == 0) hot.push_back(c);
  }
  double hot_min = 1e300, cold_max = -1e300;
  for (std::size_t c = 0; c < strengths.size(); ++c) {
    const bool is_hot =
        std::find(hot.begin(), hot.end(), c) != hot.end();
    if (is_hot) {
      hot_min = std::min(hot_min, strengths[c]);
    } else {
      cold_max = std::max(cold_max, strengths[c]);
    }
  }
  EXPECT_GT(hot_min, cold_max);
}

TEST(HypercubeSelector, DeterministicGivenSeed) {
  const auto snap = make_structured_snapshot();
  field::CubeTiling tiling(snap.shape(), {8, 8, 8});
  HypercubeSelectorConfig cfg;
  cfg.method = "maxent";
  cfg.num_hypercubes = 5;
  cfg.cluster_var = "cv";
  cfg.seed = 77;
  EXPECT_EQ(select_hypercubes(snap, tiling, cfg),
            select_hypercubes(snap, tiling, cfg));
}

TEST(HypercubeSelector, EntropyWeightingAblationRuns) {
  const auto snap = make_structured_snapshot();
  field::CubeTiling tiling(snap.shape(), {8, 8, 8});
  HypercubeSelectorConfig cfg;
  cfg.method = "entropy";
  cfg.num_hypercubes = 4;
  cfg.cluster_var = "cv";
  const auto sel = select_hypercubes(snap, tiling, cfg);
  EXPECT_EQ(sel.size(), 4u);
}

// ----------------------------------------------------- cube-scoring engine

TEST(CubeScoring, CountsMatchPerPointAssignment) {
  const auto snap = make_structured_snapshot();
  const field::SnapshotSource src(snap);
  const field::CubeTiling tiling(snap.shape(), {8, 8, 8});
  cluster::KMeansOptions opts;
  opts.k = 5;
  Rng rng(3);
  const auto& cv = snap.get("cv").data();
  const auto clusters = cluster::minibatch_kmeans(
      std::span<const double>(cv), cv.size(), 1, opts, rng);

  const auto counts = count_cube_labels(src, tiling, clusters, "cv");
  ASSERT_EQ(counts.size(), tiling.count() * clusters.k);
  for (std::size_t c = 0; c < tiling.count(); ++c) {
    std::vector<std::uint32_t> expected(clusters.k, 0);
    for (const std::size_t p : tiling.point_indices(tiling.coord(c))) {
      ++expected[clusters.assign(std::span<const double>(&cv[p], 1))];
    }
    for (std::size_t l = 0; l < clusters.k; ++l) {
      EXPECT_EQ(counts[c * clusters.k + l], expected[l])
          << "cube " << c << " label " << l;
    }
  }
}

TEST(CubeScoring, ParallelCountsAndStrengthsAreBitExact) {
  const auto snap = make_structured_snapshot();
  const field::SnapshotSource src(snap);
  const field::CubeTiling tiling(snap.shape(), {8, 8, 8});
  cluster::KMeansOptions opts;
  opts.k = 6;
  Rng rng(4);
  const auto& cv = snap.get("cv").data();
  const auto clusters = cluster::minibatch_kmeans(
      std::span<const double>(cv), cv.size(), 1, opts, rng);

  ThreadPool pool(4);
  const auto serial = count_cube_labels(src, tiling, clusters, "cv");
  const auto parallel =
      count_cube_labels(src, tiling, clusters, "cv", &pool);
  EXPECT_EQ(serial, parallel);

  const auto pmfs = pmfs_from_counts(std::span<const std::uint32_t>(serial),
                                     clusters.k, tiling.spec().points());
  const auto s1 = kl_node_strengths(std::span<const double>(pmfs),
                                    tiling.count(), clusters.k);
  const auto s4 = kl_node_strengths(std::span<const double>(pmfs),
                                    tiling.count(), clusters.k, &pool);
  EXPECT_EQ(s1, s4);  // bitwise: each row is one task
}

TEST(CubeScoring, SubrangeCountsMatchFullScan) {
  const auto snap = make_structured_snapshot();
  const field::SnapshotSource src(snap);
  const field::CubeTiling tiling(snap.shape(), {8, 8, 8});
  cluster::KMeansOptions opts;
  opts.k = 4;
  Rng rng(5);
  const auto& cv = snap.get("cv").data();
  const auto clusters = cluster::minibatch_kmeans(
      std::span<const double>(cv), cv.size(), 1, opts, rng);

  const auto full = count_cube_labels(src, tiling, clusters, "cv");
  const std::size_t begin = 2, end = 5;
  const auto part = count_cube_labels(src, tiling, clusters, "cv",
                                      /*pool=*/nullptr, begin, end);
  ASSERT_EQ(part.size(), (end - begin) * clusters.k);
  for (std::size_t i = 0; i < part.size(); ++i) {
    EXPECT_EQ(part[i], full[begin * clusters.k + i]);
  }
}

TEST(HypercubeSelector, PooledSelectionIsBitExactWithSerial) {
  const auto snap = make_structured_snapshot();
  const field::CubeTiling tiling(snap.shape(), {8, 8, 8});
  for (const char* method : {"maxent", "entropy"}) {
    HypercubeSelectorConfig cfg;
    cfg.method = method;
    cfg.num_hypercubes = 5;
    cfg.cluster_var = "cv";
    cfg.seed = 99;
    const auto serial = select_hypercubes(snap, tiling, cfg);
    ThreadPool pool(4);
    cfg.pool = &pool;
    EXPECT_EQ(select_hypercubes(snap, tiling, cfg), serial) << method;
  }
}

TEST(HypercubeSelector, UnknownMethodThrows) {
  const auto snap = make_structured_snapshot();
  field::CubeTiling tiling(snap.shape(), {8, 8, 8});
  HypercubeSelectorConfig cfg;
  cfg.method = "bogus";
  cfg.cluster_var = "cv";
  EXPECT_THROW(select_hypercubes(snap, tiling, cfg), CheckError);
}

// --------------------------------------------------------------- temporal

TEST(Temporal, PeriodicSnapshotsAreDiscarded) {
  // Snapshots alternate between two PDFs (period 2); asking for 2 of 8
  // should pick one from each phase, not two identical ones.
  field::Dataset ds("periodic");
  Rng rng(30);
  for (int t = 0; t < 8; ++t) {
    field::Snapshot snap({16, 16, 1}, t);
    auto& f = snap.add("u");
    const double center = (t % 2 == 0) ? 0.0 : 5.0;
    for (auto& x : f.data()) x = rng.normal(center, 0.5);
    ds.push(std::move(snap));
  }
  TemporalConfig cfg;
  cfg.variable = "u";
  cfg.num_snapshots = 2;
  const auto sel = select_snapshots(ds, cfg);
  ASSERT_EQ(sel.size(), 2u);
  EXPECT_NE(sel[0] % 2, sel[1] % 2) << "picked two snapshots from one phase";
}

TEST(Temporal, NoveltyZeroAgainstSelf) {
  field::Dataset ds("d");
  Rng rng(31);
  for (int t = 0; t < 3; ++t) {
    field::Snapshot snap({8, 8, 1}, t);
    auto& f = snap.add("u");
    for (auto& x : f.data()) x = rng.normal();
    ds.push(std::move(snap));
  }
  TemporalConfig cfg;
  cfg.variable = "u";
  const auto nov = snapshot_novelty(ds, cfg, 1);
  EXPECT_NEAR(nov[1], 0.0, 1e-12);
}

TEST(Temporal, SeriesSourceOverloadMatchesDatasetOverload) {
  // The Dataset overload is a thin adapter over the shared SeriesSource
  // histogram kernel: both paths must agree exactly, and the exposed PMF
  // kernel must produce one normalized PMF per snapshot.
  field::Dataset ds("periodic");
  Rng rng(33);
  for (int t = 0; t < 6; ++t) {
    field::Snapshot snap({12, 12, 1}, t);
    auto& f = snap.add("u");
    for (auto& x : f.data()) x = rng.normal(t % 3, 0.5);
    ds.push(std::move(snap));
  }
  TemporalConfig cfg;
  cfg.variable = "u";
  cfg.num_snapshots = 3;
  cfg.bins = 24;
  const field::DatasetSeriesSource series(ds);
  EXPECT_EQ(select_snapshots(series, cfg), select_snapshots(ds, cfg));
  EXPECT_EQ(snapshot_novelty(series, cfg), snapshot_novelty(ds, cfg));
  const auto pmfs = snapshot_pmfs(series, cfg);
  ASSERT_EQ(pmfs.size(), 6u);
  for (const auto& p : pmfs) {
    ASSERT_EQ(p.size(), 24u);
    double mass = 0.0;
    for (const double x : p) mass += x;
    EXPECT_NEAR(mass, 1.0, 1e-12);
  }
}

TEST(Temporal, SelectionCappedAtDatasetSize) {
  field::Dataset ds("d");
  Rng rng(32);
  for (int t = 0; t < 3; ++t) {
    field::Snapshot snap({8, 8, 1}, t);
    auto& f = snap.add("u");
    for (auto& x : f.data()) x = rng.normal(t, 1.0);
    ds.push(std::move(snap));
  }
  TemporalConfig cfg;
  cfg.variable = "u";
  cfg.num_snapshots = 10;
  EXPECT_EQ(select_snapshots(ds, cfg).size(), 3u);
}

}  // namespace
}  // namespace sickle::sampling
