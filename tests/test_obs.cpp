// Observability layer: metrics registry, scoped span tracing, Chrome
// trace export, and the per-stage case telemetry the orchestrator and
// store publish through it. The pool fan-out tests double as the TSan
// targets for the per-thread span buffers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "sickle/case.hpp"
#include "sickle/dataset_zoo.hpp"
#include "store/snapshot_store.hpp"

namespace sickle {
namespace {

namespace fs = std::filesystem;

/// Reset every piece of process-global obs state so tests compose in one
/// process as well as under ctest's per-test processes.
void reset_obs() {
  obs::set_enabled(false);
  obs::Tracer::instance().clear();
  obs::MetricsRegistry::global().reset();
}

CaseConfig tiny_case(const std::string& backend, const std::string& ingest) {
  CaseConfig cfg;
  cfg.pipeline.cube = {8, 8, 8};
  cfg.pipeline.hypercube_method = "random";
  cfg.pipeline.point_method = "maxent";
  cfg.pipeline.num_hypercubes = 3;
  cfg.pipeline.num_samples = 51;
  cfg.pipeline.num_clusters = 5;
  cfg.pipeline.seed = 7;
  cfg.arch = "MLP_Transformer";
  cfg.train.epochs = 2;
  cfg.train.batch = 4;
  cfg.model_dim = 16;
  cfg.model_heads = 2;
  cfg.backend = backend;
  cfg.ingest = ingest;
  cfg.store.chunk = {16, 16, 16};
  cfg.store.codec = "delta";
  return cfg;
}

CaseReport run_tiny(const std::string& backend, const std::string& ingest,
                    CaseConfig cfg) {
  (void)backend;
  (void)ingest;
  ProducerBundle bundle = make_dataset_producer("SST-P1F4", 3, 0.5);
  return run_case(bundle, cfg);
}

TEST(Metrics, CounterGaugeHistogramBasics) {
  obs::MetricsRegistry reg;
  auto& c = reg.counter("test.events");
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  // Same name resolves to the same instrument.
  EXPECT_EQ(&reg.counter("test.events"), &c);

  auto& g = reg.gauge("test.busy_seconds");
  g.add(0.5);
  g.add(0.25);
  EXPECT_DOUBLE_EQ(g.value(), 0.75);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);

  auto& h = reg.histogram("test.latency_seconds");
  EXPECT_DOUBLE_EQ(h.min(), 0.0);  // empty: sentinels clamp to 0
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  h.observe(3.0);
  h.observe(1.0);
  h.observe(2.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 6.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);

  const auto snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.at("test.events"), 5.0);
  EXPECT_DOUBLE_EQ(snap.at("test.busy_seconds"), 2.0);
  EXPECT_DOUBLE_EQ(snap.at("test.latency_seconds.count"), 3.0);
  EXPECT_DOUBLE_EQ(snap.at("test.latency_seconds.min"), 1.0);
  EXPECT_DOUBLE_EQ(snap.at("test.latency_seconds.max"), 3.0);

  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
}

TEST(Metrics, KindMismatchThrows) {
  obs::MetricsRegistry reg;
  (void)reg.counter("test.value");
  EXPECT_THROW((void)reg.gauge("test.value"), RuntimeError);
  EXPECT_THROW((void)reg.histogram("test.value"), RuntimeError);
}

TEST(Metrics, JsonExportIsSortedAndParsesBack) {
  obs::MetricsRegistry reg;
  reg.counter("b.count").add(2);
  reg.gauge("a.seconds").set(1.5);
  const std::string json = reg.to_json();
  // Sorted: "a.seconds" before "b.count"; both carried verbatim.
  EXPECT_LT(json.find("\"a.seconds\": 1.5"), json.find("\"b.count\": 2"));
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);

  const auto path = fs::temp_directory_path() / "sickle_obs_metrics.json";
  reg.write_json(path.string());
  std::ifstream in(path);
  const std::string on_disk((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  EXPECT_EQ(on_disk, json);
  fs::remove(path);
}

TEST(Trace, DisabledSpansRecordNothing) {
  reset_obs();
  const std::size_t before = obs::Tracer::instance().size();
  for (int i = 0; i < 200000; ++i) {
    obs::Span span("test.disabled", "test");
  }
  EXPECT_EQ(obs::Tracer::instance().size(), before);
  // The registry is untouched too: disabled instrumentation publishes
  // nothing (the BlockCache/pool publications are gated on enabled()).
  EXPECT_TRUE(obs::MetricsRegistry::global().snapshot().empty());
}

TEST(Trace, NestedSpansSingleThread) {
  reset_obs();
  obs::set_enabled(true);
  {
    obs::Span root("test.root", "test");
    {
      obs::Span child("test.child", "test");
      { obs::Span leaf("test.leaf", "test"); }
    }
    { obs::Span sibling("test.sibling", "test"); }
  }
  obs::set_enabled(false);

  const auto events = obs::Tracer::instance().events();
  ASSERT_EQ(events.size(), 4u);
  // Sorted (tid, ts, -dur): root first, then child, leaf, sibling.
  EXPECT_STREQ(events[0].name, "test.root");
  EXPECT_STREQ(events[1].name, "test.child");
  EXPECT_STREQ(events[2].name, "test.leaf");
  EXPECT_STREQ(events[3].name, "test.sibling");
  EXPECT_EQ(events[0].parent, 0u);
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_EQ(events[1].parent, events[0].id);
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_EQ(events[2].parent, events[1].id);
  EXPECT_EQ(events[2].depth, 2u);
  EXPECT_EQ(events[3].parent, events[0].id);
  EXPECT_EQ(events[3].depth, 1u);
  // Containment: every child interval inside its parent's.
  for (const auto& ev : events) {
    if (ev.parent == 0) continue;
    const auto parent = std::find_if(
        events.begin(), events.end(),
        [&](const obs::TraceEvent& p) { return p.id == ev.parent; });
    ASSERT_NE(parent, events.end());
    EXPECT_GE(ev.ts_ns, parent->ts_ns);
    EXPECT_LE(ev.ts_ns + ev.dur_ns, parent->ts_ns + parent->dur_ns);
  }
  obs::Tracer::instance().clear();
  EXPECT_EQ(obs::Tracer::instance().size(), 0u);
}

TEST(Trace, PoolFanOutNestingDeterministic) {
  // Spans on pool workers land in per-thread buffers; every task's
  // inner/outer pair must nest under that worker's pool.task span with
  // consistent parent links regardless of scheduling. This is the TSan
  // target for the tracer's buffer handoff.
  reset_obs();
  obs::set_enabled(true);
  const std::uint64_t tasks_before =
      obs::MetricsRegistry::global().counter("pool.tasks_executed").value();
  constexpr int kTasks = 16;
  {
    ThreadPool pool(2);
    TaskGroup group(pool);
    for (int i = 0; i < kTasks; ++i) {
      group.run([] {
        obs::Span outer("test.outer", "test");
        obs::Span inner("test.inner", "test");
      });
    }
    group.wait();
  }
  obs::set_enabled(false);

  const auto events = obs::Tracer::instance().events();
  std::map<std::uint64_t, const obs::TraceEvent*> by_id;
  int pool_spans = 0, outer_spans = 0, inner_spans = 0;
  for (const auto& ev : events) by_id[ev.id] = &ev;
  for (const auto& ev : events) {
    if (std::string_view(ev.name) == "pool.task") {
      ++pool_spans;
      EXPECT_EQ(ev.parent, 0u);
      EXPECT_EQ(ev.depth, 0u);
    } else if (std::string_view(ev.name) == "test.outer") {
      ++outer_spans;
      ASSERT_TRUE(by_id.count(ev.parent));
      EXPECT_STREQ(by_id[ev.parent]->name, "pool.task");
      EXPECT_EQ(by_id[ev.parent]->tid, ev.tid);
      EXPECT_EQ(ev.depth, 1u);
    } else if (std::string_view(ev.name) == "test.inner") {
      ++inner_spans;
      ASSERT_TRUE(by_id.count(ev.parent));
      EXPECT_STREQ(by_id[ev.parent]->name, "test.outer");
      EXPECT_EQ(by_id[ev.parent]->tid, ev.tid);
      EXPECT_EQ(ev.depth, 2u);
    }
  }
  EXPECT_EQ(pool_spans, kTasks);
  EXPECT_EQ(outer_spans, kTasks);
  EXPECT_EQ(inner_spans, kTasks);
  EXPECT_EQ(
      obs::MetricsRegistry::global().counter("pool.tasks_executed").value(),
      tasks_before + kTasks);
  reset_obs();
}

TEST(Trace, ChromeExportRoundTripsThroughTraceCheck) {
  if (std::system("python3 --version > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "python3 not available";
  }
  reset_obs();
  obs::set_enabled(true);
  {
    obs::Span root("test.root", "test");
    obs::Span child("test.child", "test");
    ThreadPool pool(2);
    TaskGroup group(pool);
    for (int i = 0; i < 4; ++i) {
      group.run([] { obs::Span task_span("test.task", "test"); });
    }
    group.wait();
  }
  obs::set_enabled(false);

  const auto path = fs::temp_directory_path() / "sickle_obs_roundtrip.json";
  obs::Tracer::instance().write_chrome_trace(path.string());
  const std::string cmd =
      "python3 \"" SICKLE_SOURCE_DIR "/tools/trace_check.py\" \"" +
      path.string() +
      "\" --require-span test.root --require-span test.child "
      "--require-span test.task --require-span pool.task "
      "--require-cat test --require-cat pool > /dev/null 2>&1";
  EXPECT_EQ(std::system(cmd.c_str()), 0) << "trace_check.py rejected "
                                         << path.string();
  fs::remove(path);
  reset_obs();
}

TEST(Case, StageSpansCoverOrchestratorAndStore) {
  reset_obs();
  obs::set_enabled(true);
  auto cfg = tiny_case("series", "streaming");
  cfg.temporal.num_snapshots = 2;
  cfg.pipeline.threads = 2;  // dedicated pool => pool.task spans
  const auto report = run_tiny("series", "streaming", cfg);
  obs::set_enabled(false);
  EXPECT_GT(report.sampled_points, 0u);

  const auto events = obs::Tracer::instance().events();
  std::map<std::string, const obs::TraceEvent*> first;
  for (const auto& ev : events) first.emplace(ev.name, &ev);
  for (const char* want :
       {"case.run", "case.ingest", "case.selection", "case.sampling",
        "case.training", "store.append", "store.load_chunk", "codec.encode",
        "codec.decode", "pool.task"}) {
    EXPECT_TRUE(first.count(want)) << "missing span: " << want;
  }
  // The four stages nest directly under the case.run root.
  ASSERT_TRUE(first.count("case.run"));
  const auto root_id = first["case.run"]->id;
  EXPECT_EQ(first["case.run"]->parent, 0u);
  for (const char* stage : {"case.ingest", "case.selection", "case.sampling",
                            "case.training"}) {
    ASSERT_TRUE(first.count(stage));
    EXPECT_EQ(first[stage]->parent, root_id) << stage;
    EXPECT_EQ(first[stage]->depth, 1u) << stage;
  }
  reset_obs();
}

TEST(Case, MetricsBitStableAcrossRunsAndBackends) {
  // Everything except wall-clock keys must be identical run to run at
  // threads == 1 — and populated even with the obs layer disabled.
  reset_obs();
  const auto strip_seconds = [](const std::map<std::string, double>& m) {
    std::map<std::string, double> out;
    for (const auto& [k, v] : m) {
      if (k.size() < 8 || k.substr(k.size() - 8) != "_seconds") out[k] = v;
    }
    return out;
  };
  auto cfg = tiny_case("series", "streaming");
  const auto a = run_tiny("series", "streaming", cfg);
  const auto b = run_tiny("series", "streaming", cfg);
  EXPECT_FALSE(a.metrics.empty());
  EXPECT_EQ(strip_seconds(a.metrics), strip_seconds(b.metrics));
  EXPECT_EQ(a.metrics.at("case.sampled_points"),
            static_cast<double>(a.sampled_points));
  EXPECT_GT(a.metrics.at("store.io_bytes_read"), 0.0);

  const auto mem = run_tiny("memory", "materialize",
                            tiny_case("memory", "materialize"));
  EXPECT_EQ(mem.sample_hash, a.sample_hash);
  EXPECT_EQ(mem.metrics.at("case.sampled_points"),
            a.metrics.at("case.sampled_points"));
  EXPECT_EQ(mem.metrics.count("store.cache_hits"), 0u);  // no spill store
}

TEST(Case, CachePressureSurfacesEvictionsAndIoBytes) {
  // Small chunks + a cache holding ~2 blocks: the sampling pass must
  // observe evictions, and both tallies must surface in the report.
  reset_obs();
  auto cfg = tiny_case("series", "streaming");
  cfg.store.chunk = {8, 8, 8};
  cfg.store.cache_bytes = 8u << 10;
  const auto report = run_tiny("series", "streaming", cfg);
  EXPECT_GT(report.metrics.at("store.cache_misses"), 0.0);
  EXPECT_GT(report.metrics.at("store.cache_evictions"), 0.0);
  EXPECT_GT(report.metrics.at("store.io_bytes_read"), 0.0);
}

TEST(Store, ReaderExposesCacheStatsAndIoBytes) {
  // The satellite accessors: ChunkReader::io_bytes_read() plus
  // cache_stats() evictions under pressure, without the case runner.
  const auto bundle = make_dataset("SST-P1F4", 3, 0.5);
  const auto dir = fs::temp_directory_path() / "sickle_obs_reader";
  fs::create_directories(dir);
  const std::string path = (dir / "snap.skl2").string();
  store::StoreOptions opts;
  opts.chunk = {8, 8, 8};
  opts.codec = "delta";
  (void)store::write_store(bundle.data.snapshot(0), path, opts);

  const store::ChunkReader reader(path, /*cache_bytes=*/8u << 10);
  const auto round_trip = reader.load_snapshot();
  EXPECT_EQ(round_trip.names(), bundle.data.snapshot(0).names());
  const auto stats = reader.cache_stats();
  EXPECT_GT(stats.misses, 0u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(reader.io_bytes_read(), 0u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace sickle
