// Unit tests: histograms, entropy/KL, descriptive stats, uniformity metrics.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "stats/descriptive.hpp"
#include "stats/discrepancy.hpp"
#include "stats/entropy.hpp"
#include "stats/histogram.hpp"

namespace sickle::stats {
namespace {

TEST(Histogram, CountsAndPmf) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_EQ(h.total(), 10u);
  const auto pmf = h.pmf();
  for (const double p : pmf) EXPECT_DOUBLE_EQ(p, 0.1);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(7.0);
  EXPECT_EQ(h.counts().front(), 1u);
  EXPECT_EQ(h.counts().back(), 1u);
}

TEST(Histogram, FitHandlesConstantData) {
  const std::vector<double> v(100, 3.0);
  const auto h = Histogram::fit(v, 10);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_GT(h.hi(), h.lo());
}

TEST(Histogram, PdfIntegratesToOne) {
  Rng rng(1);
  std::vector<double> v(5000);
  for (auto& x : v) x = rng.normal();
  const auto h = Histogram::fit(v, 50);
  const auto pdf = h.pdf();
  double integral = 0.0;
  for (const double p : pdf) integral += p * h.bin_width();
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(Histogram, BinOfCenterRoundTrips) {
  Histogram h(-1.0, 1.0, 20);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(h.bin_of(h.center(i)), i);
  }
}

TEST(HistogramND, UniformGridCoverage) {
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      pts.push_back({i + 0.5, j + 0.5});
    }
  }
  auto h = HistogramND::fit(pts, 8);
  EXPECT_EQ(h.total(), 64u);
  for (const auto c : h.counts()) EXPECT_EQ(c, 1u);
}

TEST(HistogramND, DensityReflectsClustering) {
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 90; ++i) pts.push_back({0.1, 0.1});
  for (int i = 0; i < 10; ++i) pts.push_back({0.9, 0.9});
  auto h = HistogramND::fit(pts, 4);
  const std::vector<double> dense{0.1, 0.1}, sparse{0.9, 0.9};
  EXPECT_GT(h.density_at(dense), h.density_at(sparse));
}

TEST(Kde1D, NormalDensityShape) {
  Rng rng(2);
  std::vector<double> v(4000);
  for (auto& x : v) x = rng.normal();
  Kde1D kde(v);
  EXPECT_GT(kde(0.0), kde(2.0));
  EXPECT_NEAR(kde(0.0), 1.0 / std::sqrt(2.0 * 3.14159265), 0.05);
}

TEST(Entropy, UniformIsMaximal) {
  const std::vector<double> uniform{0.25, 0.25, 0.25, 0.25};
  const std::vector<double> skewed{0.7, 0.1, 0.1, 0.1};
  EXPECT_GT(shannon_entropy(uniform), shannon_entropy(skewed));
  EXPECT_NEAR(shannon_entropy(uniform), std::log(4.0), 1e-12);
}

TEST(Entropy, DegenerateIsZero) {
  const std::vector<double> delta{0.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(shannon_entropy(delta), 0.0);
}

TEST(Kl, ZeroForIdenticalDistributions) {
  const std::vector<double> p{0.2, 0.3, 0.5};
  EXPECT_NEAR(kl_divergence(p, p), 0.0, 1e-12);
}

TEST(Kl, NonNegative) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> p(8), q(8);
    double sp = 0.0, sq = 0.0;
    for (std::size_t i = 0; i < 8; ++i) {
      p[i] = rng.uniform() + 0.01;
      q[i] = rng.uniform() + 0.01;
      sp += p[i];
      sq += q[i];
    }
    for (std::size_t i = 0; i < 8; ++i) {
      p[i] /= sp;
      q[i] /= sq;
    }
    EXPECT_GE(kl_divergence(p, q), -1e-12);
  }
}

TEST(Kl, AsymmetricInGeneral) {
  const std::vector<double> p{0.9, 0.1};
  const std::vector<double> q{0.5, 0.5};
  EXPECT_NE(kl_divergence(p, q), kl_divergence(q, p));
}

TEST(Kl, LengthMismatchThrows) {
  const std::vector<double> p{1.0};
  const std::vector<double> q{0.5, 0.5};
  EXPECT_THROW((void)kl_divergence(p, q), CheckError);
}

TEST(Js, SymmetricAndBounded) {
  const std::vector<double> p{0.9, 0.1, 0.0};
  const std::vector<double> q{0.0, 0.1, 0.9};
  const double js_pq = js_divergence(p, q);
  EXPECT_NEAR(js_pq, js_divergence(q, p), 1e-12);
  EXPECT_GT(js_pq, 0.0);
  EXPECT_LE(js_pq, std::log(2.0) + 1e-12);
}

TEST(KlAdjacency, DiagonalZeroStrengthsPositive) {
  const std::vector<std::vector<double>> pmfs{
      {0.9, 0.1}, {0.1, 0.9}, {0.5, 0.5}};
  const auto a = kl_adjacency(pmfs);
  ASSERT_EQ(a.size(), 9u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(a[i * 3 + i], 0.0);
  const auto s = node_strengths(a, 3);
  // Extreme distributions diverge more from the others than the middle one.
  EXPECT_GT(s[0], s[2]);
  EXPECT_GT(s[1], s[2]);
}

TEST(KlRowStrength, MatchesDenseAdjacencyRowSums) {
  // Flat [n x k] PMFs with zeros, spikes, and uniform rows.
  const std::size_t n = 5, k = 4;
  const std::vector<std::vector<double>> rows{
      {0.25, 0.25, 0.25, 0.25},
      {1.0, 0.0, 0.0, 0.0},
      {0.0, 0.5, 0.5, 0.0},
      {0.1, 0.2, 0.3, 0.4},
      {0.0, 0.0, 0.0, 1.0}};
  std::vector<double> flat;
  for (const auto& r : rows) flat.insert(flat.end(), r.begin(), r.end());

  const auto adjacency =
      kl_adjacency(std::span<const std::vector<double>>(rows));
  const auto dense = node_strengths(adjacency, n);

  const auto logs = log_pmf_rows(flat, n, k);
  ASSERT_EQ(logs.size(), n * k);
  for (std::size_t i = 0; i < n; ++i) {
    const double blocked =
        kl_row_strength(flat, std::span<const double>(logs), n, k, i);
    // log(p) - log(q) vs log(p/q): same quantity, different rounding.
    EXPECT_NEAR(blocked, dense[i], 1e-9 * (1.0 + std::abs(dense[i])))
        << "row " << i;
  }
}

TEST(KlRowStrength, InconsistentInputsThrow) {
  const std::vector<double> flat{0.5, 0.5, 0.1, 0.9};
  const auto logs = log_pmf_rows(flat, 2, 2);
  EXPECT_THROW((void)kl_row_strength(flat, logs, 3, 2, 0), CheckError);
  EXPECT_THROW((void)kl_row_strength(flat, logs, 2, 2, 2), CheckError);
  EXPECT_THROW((void)log_pmf_rows(flat, 3, 2), CheckError);
}

TEST(KlRowStrengthFast, EquivalentToRowKernel) {
  // Algebraic O(k)-per-row form vs the blocked O(n·k)-per-row reference,
  // over PMFs with zero bins, spikes, and near-uniform rows. The two
  // differ only by floating-point summation order.
  const std::size_t n = 64, k = 16;
  sickle::Rng rng(7);
  std::vector<double> flat(n * k, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double total = 0.0;
    for (std::size_t b = 0; b < k; ++b) {
      // ~1/3 of bins are exact zeros, like sparse label histograms.
      const double u = rng.uniform();
      const double v = (u < 1.0 / 3.0) ? 0.0 : u;
      flat[i * k + b] = v;
      total += v;
    }
    if (total == 0.0) {
      flat[i * k] = 1.0;  // degenerate all-zero draw -> spike row
      total = 1.0;
    }
    for (std::size_t b = 0; b < k; ++b) flat[i * k + b] /= total;
  }
  const auto logs = log_pmf_rows(flat, n, k);
  const auto sums = log_col_sums(std::span<const double>(logs), n, k);
  ASSERT_EQ(sums.size(), k);
  for (std::size_t i = 0; i < n; ++i) {
    const double blocked =
        kl_row_strength(flat, std::span<const double>(logs), n, k, i);
    const double algebraic = kl_row_strength_fast(
        flat, std::span<const double>(logs), std::span<const double>(sums),
        n, k, i);
    EXPECT_NEAR(algebraic, blocked, 1e-9 * (1.0 + std::abs(blocked)))
        << "row " << i;
  }
}

TEST(KlRowStrengthFast, InconsistentInputsThrow) {
  const std::vector<double> flat{0.5, 0.5, 0.1, 0.9};
  const auto logs = log_pmf_rows(flat, 2, 2);
  const auto sums = log_col_sums(std::span<const double>(logs), 2, 2);
  EXPECT_THROW((void)log_col_sums(std::span<const double>(logs), 3, 2),
               CheckError);
  EXPECT_THROW((void)kl_row_strength_fast(flat, logs, sums, 3, 2, 0),
               CheckError);
  EXPECT_THROW((void)kl_row_strength_fast(flat, logs, sums, 2, 2, 2),
               CheckError);
}

TEST(NormalizeWeights, SumsToOne) {
  const std::vector<double> w{1.0, 3.0};
  const auto p = normalize_weights(w);
  EXPECT_DOUBLE_EQ(p[0], 0.25);
  EXPECT_DOUBLE_EQ(p[1], 0.75);
}

TEST(NormalizeWeights, AllZeroFallsBackToUniform) {
  const std::vector<double> w{0.0, 0.0, 0.0, 0.0};
  const auto p = normalize_weights(w);
  for (const double x : p) EXPECT_DOUBLE_EQ(x, 0.25);
}

TEST(Moments, KnownValues) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const auto m = compute_moments(v);
  EXPECT_DOUBLE_EQ(m.mean, 5.0);
  EXPECT_NEAR(m.stddev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(m.min, 2.0);
  EXPECT_EQ(m.max, 9.0);
}

TEST(Moments, GaussianSkewKurtosisNearZero) {
  Rng rng(4);
  std::vector<double> v(50000);
  for (auto& x : v) x = rng.normal();
  const auto m = compute_moments(v);
  EXPECT_NEAR(m.skewness, 0.0, 0.05);
  EXPECT_NEAR(m.kurtosis, 0.0, 0.1);
}

TEST(Quantile, LinearInterpolation) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
}

TEST(Quantiles, MatchSingleCalls) {
  Rng rng(5);
  std::vector<double> v(1000);
  for (auto& x : v) x = rng.uniform();
  const std::vector<double> qs{0.1, 0.5, 0.9};
  const auto multi = quantiles(v, qs);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_DOUBLE_EQ(multi[i], quantile(v, qs[i]));
  }
}

TEST(TailCoverage, PerfectSamplerReproducesTailMass) {
  Rng rng(6);
  std::vector<double> ref(20000);
  for (auto& x : ref) x = rng.normal();
  // Sample = the reference itself -> coverage ~ 2 * tail_q.
  EXPECT_NEAR(tail_coverage(ref, ref, 0.01), 0.02, 1e-3);
}

TEST(TailCoverage, CenterOnlySamplerScoresZero) {
  Rng rng(7);
  std::vector<double> ref(10000);
  for (auto& x : ref) x = rng.normal();
  std::vector<double> center;
  for (const double x : ref) {
    if (std::abs(x) < 0.5) center.push_back(x);
  }
  EXPECT_DOUBLE_EQ(tail_coverage(ref, center, 0.01), 0.0);
}

TEST(Clumping, UniformLowerThanClustered) {
  Rng rng(8);
  std::vector<std::vector<double>> uniform, clustered;
  for (int i = 0; i < 2000; ++i) {
    uniform.push_back({rng.uniform(), rng.uniform()});
    clustered.push_back({0.5 + 0.02 * rng.normal(), 0.5 + 0.02 * rng.normal()});
  }
  EXPECT_LT(clumping_index(uniform, 8), clumping_index(clustered, 8));
  EXPECT_GT(cell_coverage(uniform, 8), cell_coverage(clustered, 8));
}

TEST(ClarkEvans, UniformNearOneClusteredBelow) {
  Rng rng(9);
  std::vector<std::vector<double>> uniform, clustered;
  for (int i = 0; i < 400; ++i) {
    uniform.push_back({rng.uniform(), rng.uniform()});
  }
  for (int i = 0; i < 400; ++i) {
    const double cx = (i % 2 == 0) ? 0.25 : 0.75;
    clustered.push_back({cx + 0.01 * rng.normal(), cx + 0.01 * rng.normal()});
  }
  const double ce_uniform = clark_evans_index(uniform);
  const double ce_clustered = clark_evans_index(clustered);
  EXPECT_NEAR(ce_uniform, 1.0, 0.2);
  EXPECT_LT(ce_clustered, ce_uniform);
}

}  // namespace
}  // namespace sickle::stats
