// Codec verification harness, part 1: the parameterized round-trip
// matrix. Every codec in the build runs over every generator in the
// dataset zoo plus adversarial value patterns; lossless codecs must
// reproduce the input bit-for-bit (NaN payloads included), quant must
// honor its tolerance, and gorilla must actually earn its bit-granular
// complexity — beating the byte-granular XOR-delta on smooth fields and
// reaching >= 1.3x on native-precision SpectralTurbulence.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "flow/spectral_turbulence.hpp"
#include "sickle/dataset_zoo.hpp"
#include "store/chunk_layout.hpp"
#include "store/codec.hpp"

namespace sickle::store {
namespace {

/// Bitwise equality that treats NaN payloads as values, not as
/// unordered — exactly the contract "lossless" makes on disk.
[[nodiscard]] bool bit_equal(std::span<const double> a,
                             std::span<const double> b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

struct SweepResult {
  std::size_t raw_bytes = 0;
  std::size_t encoded_bytes = 0;

  [[nodiscard]] double ratio() const {
    return encoded_bytes == 0
               ? 0.0
               : static_cast<double>(raw_bytes) /
                     static_cast<double>(encoded_bytes);
  }
};

/// Encode/decode every 16^3 chunk of every field of `snap` with `codec`,
/// asserting the codec's fidelity contract, and accumulate the achieved
/// ratio.
SweepResult sweep_snapshot(const Codec& codec, const field::Snapshot& snap,
                           double tolerance, const std::string& tag) {
  SweepResult r;
  const ChunkLayout layout(snap.shape(), {16, 16, 16});
  for (const auto& name : snap.names()) {
    const auto& f = snap.get(name);
    for (std::size_t c = 0; c < layout.count(); ++c) {
      const auto vals =
          extract_chunk(f.data(), snap.shape(), layout.box(c));
      const auto block = codec.encode(vals);
      r.raw_bytes += vals.size() * sizeof(double);
      r.encoded_bytes += block.size();
      const auto back = codec.decode(block, vals.size());
      if (codec.lossless()) {
        // EXPECT + return: one failure per sweep, not one per chunk.
        if (!bit_equal(vals, back)) {
          ADD_FAILURE() << tag << " field " << name << " chunk " << c
                        << " codec " << codec.name()
                        << ": decode not bit-exact";
          return r;
        }
      } else {
        EXPECT_EQ(back.size(), vals.size()) << tag << " " << name;
        for (std::size_t i = 0; i < vals.size(); ++i) {
          const bool ok =
              std::isfinite(vals[i])
                  ? std::abs(vals[i] - back[i]) <= tolerance
                  : bit_equal({&vals[i], 1}, {&back[i], 1});
          if (!ok) {
            ADD_FAILURE() << tag << " " << name << "[" << i << "] codec "
                          << codec.name() << ": " << vals[i]
                          << " != " << back[i];
            return r;
          }
        }
      }
    }
  }
  return r;
}

/// Every codec x every generator in the zoo: fidelity asserted per chunk,
/// ratios reported for the curious.
TEST(CodecRoundTrip, EveryCodecOverEveryZooGenerator) {
  constexpr double kTol = 1e-3;
  const std::vector<std::string> labels = {"TC2D", "OF2D", "SST-P1F4",
                                           "GESTS-2048"};
  for (const auto& label : labels) {
    const auto bundle = sickle::make_dataset(label, 3, 0.5);
    const auto& snap = bundle.data.snapshot(0);
    for (const auto& cname : codec_names()) {
      const auto codec = make_codec(cname, kTol);
      const auto res =
          sweep_snapshot(*codec, snap, kTol, label);
      if (::testing::Test::HasFailure()) return;
      RecordProperty(label + "_" + cname + "_ratio",
                     std::to_string(res.ratio()));
    }
  }
}

/// The D4 acceptance contrast: on SpectralTurbulence at the collections'
/// native (binary32) precision, bit-granular gorilla must deliver >= 1.3x
/// lossless where byte-granular XOR-delta stays near 1x — and it must
/// beat delta outright.
TEST(CodecRoundTrip, GorillaBeatsDeltaOnNativePrecisionSpectralTurbulence) {
  flow::SpectralTurbulenceParams p;
  p.native_f32 = true;
  p.seed = 7;
  const auto ds = flow::generate_spectral_turbulence(p);
  const auto& snap = ds.snapshot(0);

  const auto gorilla = make_codec("gorilla");
  const auto delta = make_codec("delta");
  const auto gr = sweep_snapshot(*gorilla, snap, 0.0, "SpectralTurb-f32");
  const auto dr = sweep_snapshot(*delta, snap, 0.0, "SpectralTurb-f32");
  if (::testing::Test::HasFailure()) return;

  EXPECT_GE(gr.ratio(), 1.3) << "gorilla ratio regressed";
  EXPECT_GT(gr.ratio(), dr.ratio())
      << "gorilla must beat byte-granular xor-delta on smooth fields";
  RecordProperty("gorilla_ratio", std::to_string(gr.ratio()));
  RecordProperty("delta_ratio", std::to_string(dr.ratio()));
}

/// Adversarial value patterns Gorilla-family codecs classically get
/// wrong: NaN (quiet, signalling-ish payloads), +/-Inf, denormals,
/// constants (zero XOR streams), alternating signs (sign-bit-only XOR),
/// and mixtures. All lossless codecs must round-trip each bit-exactly.
TEST(CodecRoundTrip, AdversarialPatternsRoundTripBitExactly) {
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const double den = std::numeric_limits<double>::denorm_min();
  const double big = std::numeric_limits<double>::max();

  std::vector<std::pair<std::string, std::vector<double>>> patterns;
  patterns.emplace_back("empty", std::vector<double>{});
  patterns.emplace_back("single", std::vector<double>{3.25});
  patterns.emplace_back("all_nan", std::vector<double>(64, qnan));
  patterns.emplace_back("all_inf", std::vector<double>(64, inf));
  patterns.emplace_back("all_denormal", std::vector<double>(64, den));
  patterns.emplace_back("constant", std::vector<double>(512, -17.125));
  patterns.emplace_back("zeros", std::vector<double>(512, 0.0));
  {
    std::vector<double> v(256);
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = (i % 2 == 0 ? 1.0 : -1.0) * 2.5;
    }
    patterns.emplace_back("alternating_sign", std::move(v));
  }
  {
    std::vector<double> v(256);
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = (i % 2 == 0) ? 0.0 : -0.0;  // sign-of-zero must survive
    }
    patterns.emplace_back("signed_zeros", std::move(v));
  }
  {
    // NaN payload bits are data too (bit-exact means bit-exact).
    std::vector<double> v(128);
    for (std::size_t i = 0; i < v.size(); ++i) {
      std::uint64_t bits = 0x7FF8000000000000ull | (i * 2654435761ull);
      std::memcpy(&v[i], &bits, sizeof(double));
    }
    patterns.emplace_back("nan_payloads", std::move(v));
  }
  {
    std::vector<double> v(512);
    Rng rng(99);
    for (auto& x : v) {
      switch (rng.uniform_int(6)) {
        case 0: x = qnan; break;
        case 1: x = inf; break;
        case 2: x = -inf; break;
        case 3: x = den * static_cast<double>(1 + rng.uniform_int(9)); break;
        case 4: x = big * (0.5 + 0.5 * rng.uniform()); break;
        default: x = rng.normal(); break;
      }
    }
    patterns.emplace_back("mixed_specials", std::move(v));
  }

  for (const auto& cname : codec_names()) {
    const auto codec = make_codec(cname, 1e-6);
    if (!codec->lossless()) continue;
    for (const auto& [tag, vals] : patterns) {
      const auto block = codec->encode(vals);
      const auto back = codec->decode(block, vals.size());
      EXPECT_TRUE(bit_equal(vals, back)) << cname << " on " << tag;
    }
  }
  // Quant: non-finite chunks take the raw fallback, which is bit-exact.
  const auto quant = make_codec("quant", 1e-6);
  for (const auto& [tag, vals] : patterns) {
    if (tag != "all_nan" && tag != "mixed_specials" && tag != "all_inf") {
      continue;
    }
    const auto back = quant->decode(quant->encode(vals), vals.size());
    EXPECT_TRUE(bit_equal(vals, back)) << "quant fallback on " << tag;
  }
}

/// Gorilla's window encoding has boundary cases (window reuse after a
/// zero-XOR run, full-width 64-bit windows, lead+len == 64); exercise
/// them with crafted bit patterns.
TEST(CodecRoundTrip, GorillaWindowBoundaryCases) {
  const auto codec = make_codec("gorilla");
  auto from_bits = [](std::uint64_t b) {
    double d;
    std::memcpy(&d, &b, sizeof(d));
    return d;
  };
  const std::vector<std::vector<double>> cases = {
      // Full 64-bit XOR (sign + all mantissa flips): window is 64 wide.
      {1.0, -std::numeric_limits<double>::max(), 1.0},
      // XOR confined to the lowest bit, then the highest.
      {from_bits(0x0000000000000001ull), from_bits(0x0000000000000000ull),
       from_bits(0x8000000000000000ull)},
      // Repeats (zero XOR) interleaved with window reuse.
      {2.0, 2.0, 2.0 + 1e-9, 2.0 + 1e-9, 2.0 + 2e-9, 2.0},
      // Shrinking then growing windows force re-emission.
      {from_bits(0x3FF0000000000000ull), from_bits(0x3FF0000000FF0000ull),
       from_bits(0x3FF00000000000FFull), from_bits(0x3FF0FF0000000000ull)},
  };
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& vals = cases[i];
    const auto back = codec->decode(codec->encode(vals), vals.size());
    EXPECT_TRUE(bit_equal(vals, back)) << "case " << i;
  }
}

#ifdef SICKLE_HAS_ZSTD
TEST(CodecRoundTrip, ZstdIsRegisteredWhenCompiledIn) {
  const auto codec = make_codec("zstd");
  EXPECT_EQ(codec->id(), CodecId::kZstd);
  EXPECT_TRUE(codec->lossless());
  const auto names = codec_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "zstd"), names.end());
}
#endif

}  // namespace
}  // namespace sickle::store
