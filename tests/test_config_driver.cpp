// Tests: YAML-subset case configuration -> pipeline/case configs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "sickle/case.hpp"
#include "sickle/config_driver.hpp"
#include "sickle/dataset_zoo.hpp"

namespace sickle {
namespace {

const char* kCaseYaml = R"(
shared:
  dataset: SST-P1F4
  input_vars: [u, v, w, rho]
  output_vars: [p]
  cluster_var: pv
  seed: 7

subsample:
  hypercubes: maxent
  method: uips
  num_hypercubes: 12
  num_samples: 3277
  num_clusters: 20
  nxsl: 32
  nysl: 32
  nzsl: 32

train:
  epochs: 1000
  batch: 16
  arch: MLP_transformer
  window: 2
  precision: bf16
)";

TEST(ConfigDriver, DatasetLabel) {
  const auto cfg = Config::parse(kCaseYaml);
  EXPECT_EQ(dataset_label_from_config(cfg), "SST-P1F4");
}

TEST(ConfigDriver, PipelineMapping) {
  const auto cfg = Config::parse(kCaseYaml);
  const auto pl = pipeline_from_config(cfg);
  EXPECT_EQ(pl.cube.ex, 32u);
  EXPECT_EQ(pl.cube.ez, 32u);
  EXPECT_EQ(pl.hypercube_method, "maxent");
  EXPECT_EQ(pl.point_method, "uips");
  EXPECT_EQ(pl.num_hypercubes, 12u);
  EXPECT_EQ(pl.num_samples, 3277u);
  EXPECT_EQ(pl.num_clusters, 20u);
  EXPECT_EQ(pl.input_vars,
            (std::vector<std::string>{"u", "v", "w", "rho"}));
  EXPECT_EQ(pl.output_vars, (std::vector<std::string>{"p"}));
  EXPECT_EQ(pl.cluster_var, "pv");
  EXPECT_EQ(pl.seed, 7u);
}

TEST(ConfigDriver, CaseMapping) {
  const auto cfg = Config::parse(kCaseYaml);
  const auto cc = case_from_config(cfg);
  EXPECT_EQ(cc.arch, "MLP_Transformer");
  EXPECT_EQ(cc.window, 2u);
  EXPECT_EQ(cc.train.epochs, 1000u);
  EXPECT_EQ(cc.train.batch, 16u);
  EXPECT_EQ(cc.train.patience, 20u);  // the paper's default
  EXPECT_EQ(cc.train.precision, ml::Precision::kBf16);
}

TEST(ConfigDriver, DefaultsWhenSectionsSparse) {
  const auto cfg = Config::parse("shared:\n  dataset: GESTS-2048\n");
  const auto cc = case_from_config(cfg);
  EXPECT_EQ(cc.pipeline.cube.ex, 8u);
  EXPECT_EQ(cc.train.epochs, 1000u);
  EXPECT_EQ(cc.train.lr, 1e-3);
  EXPECT_TRUE(cc.pipeline.input_vars.empty());  // filled from the bundle
}

TEST(ConfigDriver, ThreadsKnob) {
  // Default: serial.
  EXPECT_EQ(pipeline_from_config(Config::parse("shared:\n  seed: 1\n"))
                .threads,
            1u);
  const auto cfg = Config::parse(R"(
subsample:
  threads: 4
)");
  EXPECT_EQ(pipeline_from_config(cfg).threads, 4u);
  // 0 = all hardware threads; negatives are config errors.
  EXPECT_EQ(pipeline_from_config(Config::parse(
                "subsample:\n  threads: 0\n"))
                .threads,
            0u);
  EXPECT_THROW(pipeline_from_config(Config::parse(
                   "subsample:\n  threads: -2\n")),
               RuntimeError);
}

TEST(ConfigDriver, ArchNormalization) {
  EXPECT_EQ(normalize_arch("lstm"), "LSTM");
  EXPECT_EQ(normalize_arch("LSTM"), "LSTM");
  EXPECT_EQ(normalize_arch("MLP_transformer"), "MLP_Transformer");
  EXPECT_EQ(normalize_arch("CNN_Transformer"), "CNN_Transformer");
  EXPECT_EQ(normalize_arch("matey"), "Foundation");
  EXPECT_THROW(normalize_arch("gpt4"), RuntimeError);
}

TEST(ConfigDriver, StoreMapping) {
  const auto cfg = Config::parse(R"(
shared:
  dataset: SST-P1F4
store:
  backend: skl2
  codec: quant
  tolerance: 1e-3
  chunk: 16
  chunk_z: 8
  cache_mb: 8
)");
  const auto cc = case_from_config(cfg);
  EXPECT_EQ(cc.backend, "skl2");
  EXPECT_EQ(cc.store.codec, "quant");
  EXPECT_DOUBLE_EQ(cc.store.tolerance, 1e-3);
  EXPECT_EQ(cc.store.chunk.nx, 16u);
  EXPECT_EQ(cc.store.chunk.ny, 16u);
  EXPECT_EQ(cc.store.chunk.nz, 8u);
  EXPECT_EQ(cc.store.cache_bytes, 8u << 20);
}

TEST(ConfigDriver, SeriesBackendTemporalAndSpillMapping) {
  const auto cfg = Config::parse(R"(
shared:
  dataset: SST-P1F4
store:
  backend: series
  codec: delta
  write_budget_mb: 4
  spill_dir: /scratch/spills
temporal:
  num_snapshots: 12
  variable: T
  bins: 64
)");
  const auto cc = case_from_config(cfg);
  EXPECT_EQ(cc.backend, "series");
  EXPECT_EQ(cc.store.write_budget_bytes, 4u << 20);
  EXPECT_EQ(cc.spill_dir, "/scratch/spills");
  EXPECT_TRUE(cc.temporal.enabled());
  EXPECT_EQ(cc.temporal.num_snapshots, 12u);
  EXPECT_EQ(cc.temporal.variable, "T");
  EXPECT_EQ(cc.temporal.bins, 64u);

  // Absent sections: temporal stage disabled, system temp spill.
  const auto defaults =
      case_from_config(Config::parse("shared:\n  dataset: OF2D\n"));
  EXPECT_FALSE(defaults.temporal.enabled());
  EXPECT_TRUE(defaults.spill_dir.empty());
  EXPECT_EQ(defaults.store.write_budget_bytes, 8u << 20);

  EXPECT_THROW(case_from_config(Config::parse(
                   "store:\n  write_budget_mb: 0\n")),
               RuntimeError);
  EXPECT_THROW(case_from_config(Config::parse(
                   "temporal:\n  bins: 0\n")),
               RuntimeError);
  EXPECT_THROW(case_from_config(Config::parse(
                   "temporal:\n  num_snapshots: -1\n")),
               RuntimeError);
}

TEST(ConfigDriver, StoreDefaultsAndErrors) {
  const auto defaults =
      case_from_config(Config::parse("shared:\n  dataset: OF2D\n"));
  EXPECT_EQ(defaults.backend, "memory");
  EXPECT_EQ(defaults.store.codec, "delta");
  EXPECT_EQ(defaults.store.chunk.nx, 32u);

  EXPECT_THROW(case_from_config(Config::parse(
                   "store:\n  backend: s3\n")),
               RuntimeError);
  EXPECT_THROW(case_from_config(Config::parse(
                   "store:\n  codec: lz77\n")),
               RuntimeError);
#ifndef SICKLE_HAS_ZSTD
  // A registered-but-not-compiled-in codec must fail at config time too.
  EXPECT_THROW(case_from_config(Config::parse(
                   "store:\n  codec: zstd\n")),
               RuntimeError);
#endif
  EXPECT_THROW(case_from_config(Config::parse(
                   "store:\n  chunk: 0\n")),
               RuntimeError);
  EXPECT_THROW(case_from_config(Config::parse(
                   "store:\n  cache_mb: -1\n")),
               RuntimeError);
}

TEST(ConfigDriver, IngestModeAndScaleMapping) {
  const auto cfg = Config::parse(R"(
shared:
  dataset: SST-P1F4
  scale: 0.5
store:
  backend: series
  ingest: Streaming
)");
  EXPECT_EQ(case_from_config(cfg).ingest, "streaming");
  EXPECT_DOUBLE_EQ(dataset_scale_from_config(cfg), 0.5);

  const auto defaults =
      case_from_config(Config::parse("shared:\n  dataset: OF2D\n"));
  EXPECT_EQ(defaults.ingest, "materialize");
  EXPECT_DOUBLE_EQ(
      dataset_scale_from_config(Config::parse("shared:\n  dataset: OF2D\n")),
      1.0);

  EXPECT_THROW(case_from_config(Config::parse(
                   "store:\n  ingest: teleport\n")),
               RuntimeError);
  EXPECT_THROW((void)dataset_scale_from_config(Config::parse(
                   "shared:\n  scale: 0\n")),
               RuntimeError);
  EXPECT_THROW((void)dataset_scale_from_config(Config::parse(
                   "shared:\n  scale: -2\n")),
               RuntimeError);
}

TEST(ConfigDriver, BadPrecisionThrows) {
  const auto cfg = Config::parse(
      "shared:\n  dataset: OF2D\ntrain:\n  precision: int3\n");
  EXPECT_THROW(case_from_config(cfg), RuntimeError);
}

TEST(ConfigDriver, EndToEndTinyCase) {
  // The shipped contrib config shape, shrunk: config -> case -> run.
  const auto cfg = Config::parse(R"(
shared:
  dataset: SST-P1F4
  seed: 3
subsample:
  hypercubes: random
  method: maxent
  num_hypercubes: 3
  num_samples: 51
  num_clusters: 5
  nxsl: 8
  nysl: 8
  nzsl: 8
train:
  epochs: 2
  batch: 4
  arch: MLP_transformer
  dim: 16
  heads: 2
)");
  const DatasetBundle bundle = make_dataset("SST-P1F4", 3, 0.5);
  const auto report = run_case(bundle, case_from_config(cfg));
  EXPECT_GT(report.sampled_points, 0u);
  EXPECT_TRUE(std::isfinite(report.train.test_loss));
}

TEST(ConfigDriver, ValidateIsEmptyForGoodConfig) {
  const auto cfg = Config::parse(kCaseYaml);
  EXPECT_TRUE(case_from_config(cfg).validate().empty());
}

TEST(ConfigDriver, ValidateCollectsEveryIssueAtOnce) {
  CaseConfig cc;
  cc.backend = "floppy";
  cc.ingest = "teleport";
  cc.arch = "Perceptron9000";
  cc.window = 0;
  cc.store.codec = "middle-out";
  cc.train.lr = 0.0;
  cc.train.test_fraction = 1.5;
  const auto issues = cc.validate();
  EXPECT_GE(issues.size(), 7u);
  std::vector<std::string> fields;
  for (const auto& issue : issues) {
    fields.push_back(issue.field);
    EXPECT_FALSE(issue.message.empty()) << issue.field;
  }
  for (const char* field :
       {"store.backend", "store.ingest", "train.arch", "train.window",
        "store.codec", "train.lr", "train.test_frac"}) {
    EXPECT_NE(std::find(fields.begin(), fields.end(), field), fields.end())
        << field;
  }
}

TEST(ConfigDriver, CaseFromConfigReportsFullIssueList) {
  // One parse, one throw, EVERY problem named: bad arch + bad codec + bad
  // precision all surface in a single ConfigError instead of fix-one-
  // rerun-find-the-next.
  const auto cfg = Config::parse(R"(
shared:
  dataset: SST-P1F4
store:
  backend: series
  codec: middle-out
train:
  arch: Perceptron9000
  precision: int3
)");
  try {
    (void)case_from_config(cfg);
    FAIL() << "case_from_config accepted an invalid config";
  } catch (const ConfigError& e) {
    std::vector<std::string> fields;
    for (const auto& issue : e.issues()) fields.push_back(issue.field);
    for (const char* field : {"store.codec", "train.arch",
                              "train.precision"}) {
      EXPECT_NE(std::find(fields.begin(), fields.end(), field), fields.end())
          << field << " missing from: " << e.what();
    }
    // The aggregate message carries each field for log greppability.
    EXPECT_NE(std::string(e.what()).find("store.codec"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("train.arch"), std::string::npos);
  }
}

TEST(ConfigDriver, ConfigErrorIsARuntimeError) {
  const auto cfg = Config::parse("shared:\n  dataset: OF2D\n  scale: -1\n");
  EXPECT_THROW((void)dataset_scale_from_config(cfg), ConfigError);
  EXPECT_THROW((void)dataset_scale_from_config(cfg), RuntimeError);
}

}  // namespace
}  // namespace sickle
