// Finite-difference gradient checking for Module backward passes.
//
// Loss is a fixed random linear functional of the output, L = sum c_i y_i,
// so dL/dy = c exactly and any mismatch is the layer's fault. Tensors are
// float, so tolerances are loose-ish (1e-2 relative with 1e-3 absolute
// floor) and probes use a subset of elements for large layers.
#pragma once

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "ml/module.hpp"

namespace sickle::ml::testing {

struct GradCheckOptions {
  float eps = 1e-2f;          ///< central-difference step
  double rtol = 2e-2;
  double atol = 2e-3;
  std::size_t max_probes = 64;  ///< elements probed per tensor
};

inline double linear_loss(const Tensor& y, const Tensor& coeff) {
  double acc = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    acc += static_cast<double>(y[i]) * coeff[i];
  }
  return acc;
}

/// Check dL/dInput and every dL/dParam of `module` at `input`.
inline void check_gradients(Module& module, const Tensor& input,
                            std::uint64_t seed = 1234,
                            GradCheckOptions opts = {}) {
  module.set_training(false);  // disable stochastic layers for the check
  Rng rng(seed);

  Tensor x = input;
  Tensor y = module.forward(x);
  Tensor coeff = Tensor::randn(y.shape(), rng, 1.0f);

  module.zero_grad();
  Tensor analytic_dx = module.backward(coeff);

  auto probe_indices = [&](std::size_t n) {
    std::vector<std::size_t> idx;
    if (n <= opts.max_probes) {
      for (std::size_t i = 0; i < n; ++i) idx.push_back(i);
    } else {
      idx = rng.sample_without_replacement(n, opts.max_probes);
    }
    return idx;
  };

  auto expect_close = [&](double analytic, double numeric,
                          const std::string& what, std::size_t i) {
    const double tol =
        opts.atol + opts.rtol * std::max(std::abs(analytic),
                                         std::abs(numeric));
    EXPECT_NEAR(analytic, numeric, tol)
        << what << " gradient mismatch at element " << i;
  };

  // Input gradient.
  for (const std::size_t i : probe_indices(x.size())) {
    const float saved = x[i];
    x[i] = saved + opts.eps;
    const double lp = linear_loss(module.forward(x), coeff);
    x[i] = saved - opts.eps;
    const double lm = linear_loss(module.forward(x), coeff);
    x[i] = saved;
    expect_close(analytic_dx[i], (lp - lm) / (2.0 * opts.eps), "input", i);
  }

  // Parameter gradients. Note: backward() above accumulated them once.
  for (Param* p : module.parameters()) {
    for (const std::size_t i : probe_indices(p->value.size())) {
      const float saved = p->value[i];
      p->value[i] = saved + opts.eps;
      const double lp = linear_loss(module.forward(x), coeff);
      p->value[i] = saved - opts.eps;
      const double lm = linear_loss(module.forward(x), coeff);
      p->value[i] = saved;
      expect_close(p->grad[i], (lp - lm) / (2.0 * opts.eps), p->name, i);
    }
  }
}

}  // namespace sickle::ml::testing
