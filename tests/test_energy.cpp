// Unit tests: energy model and counters.
#include <gtest/gtest.h>

#include "energy/energy.hpp"

namespace sickle::energy {
namespace {

TEST(EnergyModel, JoulesAreLinearInWork) {
  EnergyModel m;
  const double base = m.joules(1e9, 0, 0);
  EXPECT_DOUBLE_EQ(m.joules(2e9, 0, 0), 2.0 * base);
  EXPECT_DOUBLE_EQ(m.joules(0, 0, 0), 0.0);
}

TEST(EnergyModel, DataMovementDominatesComputePerElement) {
  // The paper's premise: moving a double costs >> computing with it.
  EnergyModel m;
  const double move_one_double = m.joules_per_byte * 8.0;
  const double one_flop = m.joules_per_flop;
  EXPECT_GT(move_one_double, 100.0 * one_flop * 0.5);
}

TEST(EnergyCounter, AccumulatesAndResets) {
  EnergyCounter c;
  c.add_flops(100.0);
  c.add_bytes(50.0);
  c.add_seconds(2.0);
  EXPECT_DOUBLE_EQ(c.flops(), 100.0);
  EXPECT_DOUBLE_EQ(c.bytes(), 50.0);
  EXPECT_DOUBLE_EQ(c.seconds(), 2.0);
  c.reset();
  EXPECT_DOUBLE_EQ(c.joules(), 0.0);
}

TEST(EnergyCounter, MergeSums) {
  EnergyCounter a, b;
  a.add_flops(1.0);
  b.add_flops(2.0);
  b.add_bytes(8.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.flops(), 3.0);
  EXPECT_DOUBLE_EQ(a.bytes(), 8.0);
}

TEST(EnergyCounter, KilojoulesConsistent) {
  EnergyCounter c;
  c.add_seconds(10.0);
  EnergyModel m;
  EXPECT_DOUBLE_EQ(c.kilojoules(m), m.static_watts * 10.0 * 1e-3);
}

TEST(EnergyCounter, ReportContainsPaperGrepString) {
  EnergyCounter c;
  c.add_seconds(1.0);
  const auto s = c.report();
  EXPECT_NE(s.find("Total Energy Consumed:"), std::string::npos);
  EXPECT_NE(s.find("kJ"), std::string::npos);
}

TEST(EnergyCounter, ProportionalToDataVolume) {
  // The invariant behind Fig. 8: sampling 10% of the points costs ~10% of
  // the byte-movement energy.
  EnergyModel m;
  m.static_watts = 0.0;  // isolate the data term
  EnergyCounter full, sampled;
  full.add_bytes(1e9);
  sampled.add_bytes(1e8);
  EXPECT_NEAR(full.joules(m) / sampled.joules(m), 10.0, 1e-9);
}

}  // namespace
}  // namespace sickle::energy
