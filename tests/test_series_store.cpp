// Unit tests: SKL3 series container — streaming writer (byte-budget
// bound, index patched on close), SeriesReader views over the shared
// block cache, crash-safety detection, streamed temporal selection
// equality, and the staged run_case orchestrator's series backend.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <thread>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "stats/histogram.hpp"
#include "sampling/pipeline.hpp"
#include "sampling/temporal.hpp"
#include "sickle/case.hpp"
#include "store/series_store.hpp"
#include "store/snapshot_store.hpp"

namespace sickle::store {
namespace {

class SeriesStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("sickle_series_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  /// Periodic synthetic flow: snapshot t's fields are phase-shifted by
  /// t mod `period`, so PDFs repeat with that period — the regime
  /// temporal selection exists for. The grid is deliberately not
  /// divisible by typical chunk shapes.
  [[nodiscard]] static field::Dataset make_series(std::size_t steps,
                                                  std::size_t period = 4) {
    field::Dataset ds("periodic");
    for (std::size_t t = 0; t < steps; ++t) {
      field::Snapshot snap({10, 6, 5}, 0.1 * static_cast<double>(t));
      const double phase =
          static_cast<double>(t % period) / static_cast<double>(period);
      Rng rng(100 + t % period);
      for (const char* name : {"u", "v", "c"}) {
        auto& f = snap.add(name);
        std::size_t i = 0;
        for (auto& x : f.data()) {
          x = std::sin(0.05 * static_cast<double>(i++) +
                       6.28318 * phase) +
              0.05 * rng.normal();
        }
      }
      ds.push(snap);
    }
    return ds;
  }

  std::filesystem::path dir_;
};

TEST_F(SeriesStoreTest, LosslessRoundTripAcrossSnapshots) {
  const auto ds = make_series(5);
  for (const char* codec : {"raw", "delta", "gorilla"}) {
    StoreOptions opts;
    opts.chunk = {4, 4, 4};
    opts.codec = codec;
    SeriesWriter writer(path("s.skl3"), opts);
    for (std::size_t t = 0; t < ds.num_snapshots(); ++t) {
      writer.append(ds.snapshot(t));
    }
    const auto report = writer.close();
    EXPECT_EQ(report.snapshots, 5u);
    EXPECT_EQ(report.chunks, 5u * 3u * 12u);
    EXPECT_EQ(report.raw_bytes, 5u * ds.snapshot(0).bytes());
    EXPECT_GT(report.meta_bytes, 0u);
    EXPECT_EQ(report.file_bytes,
              std::filesystem::file_size(path("s.skl3")));

    const SeriesReader reader(path("s.skl3"));
    EXPECT_EQ(reader.num_snapshots(), 5u);
    EXPECT_EQ(reader.shape(), ds.shape());
    EXPECT_EQ(reader.variables(), ds.snapshot(0).names());
    EXPECT_EQ(reader.codec_name(), codec);
    for (std::size_t t = 0; t < 5; ++t) {
      EXPECT_DOUBLE_EQ(reader.time(t), ds.snapshot(t).time());
      EXPECT_DOUBLE_EQ(reader.source(t).time(), ds.snapshot(t).time());
      const auto loaded = reader.load_snapshot(t);
      for (const auto& name : ds.snapshot(t).names()) {
        const auto a = ds.snapshot(t).get(name).data();
        const auto b = loaded.get(name).data();
        for (std::size_t i = 0; i < a.size(); ++i) {
          ASSERT_DOUBLE_EQ(a[i], b[i])
              << codec << " t=" << t << " " << name << "[" << i << "]";
        }
      }
    }
  }
}

TEST_F(SeriesStoreTest, QuantRoundTripWithinTolerance) {
  const auto ds = make_series(3);
  StoreOptions opts;
  opts.chunk = {4, 4, 4};
  opts.codec = "quant";
  opts.tolerance = 1e-4;
  SeriesWriter writer(path("q.skl3"), opts);
  for (std::size_t t = 0; t < ds.num_snapshots(); ++t) {
    writer.append(ds.snapshot(t));
  }
  const auto report = writer.close();
  EXPECT_LT(report.file_bytes, report.raw_bytes);
  const SeriesReader reader(path("q.skl3"));
  for (std::size_t t = 0; t < 3; ++t) {
    const auto loaded = reader.load_snapshot(t);
    for (const auto& name : ds.snapshot(t).names()) {
      const auto a = ds.snapshot(t).get(name).data();
      const auto b = loaded.get(name).data();
      for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_NEAR(a[i], b[i], 1e-4);
      }
    }
  }
}

/// The streaming-writer acceptance test: appending a series whose encoded
/// payload is many times the write budget must keep the writer's peak
/// buffered bytes within the budget (plus one wave's codec expansion) —
/// memory is bounded by the budget, never by the series.
TEST_F(SeriesStoreTest, WriterPeakBufferingIsBoundedByBudget) {
  field::Dataset ds("big");
  Rng rng(7);
  for (std::size_t t = 0; t < 6; ++t) {
    field::Snapshot snap({32, 32, 32}, static_cast<double>(t));
    for (const char* name : {"u", "v"}) {
      auto& f = snap.add(name);
      for (auto& x : f.data()) x = rng.normal();
    }
    ds.push(snap);
  }
  StoreOptions opts;
  opts.chunk = {16, 16, 16};
  opts.codec = "delta";
  opts.write_budget_bytes = 64u << 10;  // two 16^3 chunks of raw input
  SeriesWriter writer(path("big.skl3"), opts);
  for (std::size_t t = 0; t < ds.num_snapshots(); ++t) {
    writer.append(ds.snapshot(t));
  }
  const auto report = writer.close();
  // Random data defeats the delta codec, so the payload is ~raw-sized:
  // far larger than the budget — the writer must have flushed in waves.
  EXPECT_GT(report.payload_bytes, 8u * opts.write_budget_bytes);
  EXPECT_LE(report.peak_buffered_bytes,
            opts.write_budget_bytes + opts.write_budget_bytes / 4);
  // And the container still round-trips exactly.
  const SeriesReader reader(path("big.skl3"));
  const auto loaded = reader.load_snapshot(3);
  const auto a = ds.snapshot(3).get("v").data();
  const auto b = loaded.get("v").data();
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_DOUBLE_EQ(a[i], b[i]);
}

TEST_F(SeriesStoreTest, AppendValidatesShapeAndVariables) {
  const auto ds = make_series(2);
  SeriesWriter writer(path("v.skl3"), {});
  writer.append(ds.snapshot(0));
  field::Snapshot other({4, 4, 4}, 0.0);
  other.add("u");
  EXPECT_THROW(writer.append(other), CheckError);  // grid mismatch
  field::Snapshot renamed(ds.shape(), 0.0);
  renamed.add("u");
  EXPECT_THROW(writer.append(renamed), CheckError);  // variable mismatch
  writer.append(ds.snapshot(1));
  (void)writer.close();
  EXPECT_THROW(writer.append(ds.snapshot(0)), CheckError);  // after close
  SeriesWriter empty(path("e.skl3"), {});
  EXPECT_THROW(empty.close(), CheckError);  // nothing appended
}

/// Crash-safety: a writer that never reached close() leaves a container
/// with no index patch; the reader must reject it with a clear error, not
/// read garbage.
TEST_F(SeriesStoreTest, UnclosedWriterIsDetectedAsMissingIndex) {
  const auto ds = make_series(2);
  {
    SeriesWriter writer(path("crash.skl3"), {});
    writer.append(ds.snapshot(0));
    writer.append(ds.snapshot(1));
    // No close(): simulates a crash mid-run. The destructor leaves the
    // payload but index_offset stays 0.
  }
  try {
    SeriesReader reader(path("crash.skl3"));
    FAIL() << "unclosed SKL3 must be rejected";
  } catch (const RuntimeError& e) {
    EXPECT_NE(std::string(e.what()).find("no index"), std::string::npos)
        << e.what();
  }
}

TEST_F(SeriesStoreTest, TruncatedAndCorruptFilesAreRejected) {
  EXPECT_THROW(SeriesReader(path("missing.skl3")), RuntimeError);
  {
    std::ofstream f(path("bad.skl3"), std::ios::binary);
    f << "NOTSKL3DATA";
  }
  EXPECT_THROW(SeriesReader(path("bad.skl3")), RuntimeError);
  // An SKL2 file is not an SKL3 series.
  const auto ds = make_series(1);
  write_store(ds.snapshot(0), path("snap.skl2"), {});
  EXPECT_THROW(SeriesReader(path("snap.skl2")), RuntimeError);

  // A sealed series truncated mid-payload: the index (at the tail) is
  // gone, so the reader reports a truncation instead of short reads.
  SeriesWriter writer(path("trunc.skl3"), {});
  writer.append(ds.snapshot(0));
  (void)writer.close();
  const auto full = std::filesystem::file_size(path("trunc.skl3"));
  std::filesystem::resize_file(path("trunc.skl3"), full / 2);
  EXPECT_THROW(SeriesReader(path("trunc.skl3")), RuntimeError);
}

TEST_F(SeriesStoreTest, ViewsShareOneBlockCache) {
  const auto ds = make_series(4);
  StoreOptions opts;
  opts.chunk = {4, 4, 4};
  SeriesWriter writer(path("c.skl3"), opts);
  for (std::size_t t = 0; t < ds.num_snapshots(); ++t) {
    writer.append(ds.snapshot(t));
  }
  (void)writer.close();
  // Capacity of exactly one 4^3 chunk: every switch to a new (t, field,
  // chunk) evicts, including switches across snapshots.
  const SeriesReader reader(path("c.skl3"), /*cache_bytes=*/64 * 8);
  const auto first = reader.chunk(0, 0, 0);
  EXPECT_EQ(reader.cache_stats().misses, 1u);
  (void)reader.chunk(0, 0, 0);
  EXPECT_EQ(reader.cache_stats().hits, 1u);
  (void)reader.chunk(2, 0, 0);  // same chunk id, different snapshot
  const auto stats = reader.cache_stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_LE(stats.resident_bytes, 64u * 8u);
  EXPECT_EQ(first->size(), 64u);  // evicted blocks stay alive for holders
}

/// Acceptance: streamed temporal selection over the SKL3 container must
/// return bit-identical snapshot indices to the in-memory path on a
/// periodic synthetic flow (lossless codec).
TEST_F(SeriesStoreTest, StreamedTemporalSelectionMatchesInMemory) {
  const auto ds = make_series(12, /*period=*/4);
  StoreOptions opts;
  opts.chunk = {8, 4, 4};
  opts.codec = "delta";
  SeriesWriter writer(path("t.skl3"), opts);
  for (std::size_t t = 0; t < ds.num_snapshots(); ++t) {
    writer.append(ds.snapshot(t));
  }
  (void)writer.close();
  // A tiny cache forces continual decode during the two PDF passes.
  const SeriesReader reader(path("t.skl3"), /*cache_bytes=*/8 << 10);

  sampling::TemporalConfig cfg;
  cfg.variable = "u";
  cfg.num_snapshots = 5;
  cfg.bins = 32;
  const auto in_memory = sampling::select_snapshots(ds, cfg);
  const auto streamed = sampling::select_snapshots(reader, cfg);
  EXPECT_EQ(streamed, in_memory);
  ASSERT_EQ(in_memory.size(), 5u);
  // The periodic flow only has 4 distinct phases; novelty against the
  // reference must vanish for same-phase snapshots.
  const auto novelty_mem = sampling::snapshot_novelty(ds, cfg);
  const auto novelty_str = sampling::snapshot_novelty(reader, cfg);
  EXPECT_EQ(novelty_mem, novelty_str);
  EXPECT_LT(novelty_mem[4], 1e-3);   // same phase as reference 0
  EXPECT_GT(novelty_mem[2], 1e-3);   // opposite phase
}

/// Acceptance: the multi-snapshot streaming pipeline over an SKL3 series
/// must reproduce the in-memory dataset pipeline bit-for-bit, for any
/// thread count, including on snapshot subsets.
TEST_F(SeriesStoreTest, SeriesPipelineMatchesInMemoryBitExactly) {
  const auto ds = make_series(4);
  sampling::PipelineConfig cfg;
  cfg.cube = {5, 3, 5};
  cfg.hypercube_method = "maxent";
  cfg.point_method = "maxent";
  cfg.num_hypercubes = 4;
  cfg.num_samples = 11;
  cfg.num_clusters = 3;
  cfg.input_vars = {"u", "v"};
  cfg.output_vars = {"u"};
  cfg.cluster_var = "c";
  const auto in_memory = run_pipeline(ds, cfg);

  StoreOptions opts;
  opts.chunk = {4, 4, 4};
  opts.codec = "delta";
  SeriesWriter writer(path("p.skl3"), opts);
  for (std::size_t t = 0; t < ds.num_snapshots(); ++t) {
    writer.append(ds.snapshot(t));
  }
  (void)writer.close();
  const SeriesReader reader(path("p.skl3"), /*cache_bytes=*/16 << 10);

  std::vector<std::size_t> all{0, 1, 2, 3};
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    cfg.threads = threads;
    const auto streamed = sampling::run_pipeline_streaming(
        reader, cfg, std::span<const std::size_t>(all));
    ASSERT_EQ(streamed.cubes.size(), in_memory.cubes.size());
    const auto a = in_memory.merged();
    const auto b = streamed.merged();
    EXPECT_EQ(a.indices, b.indices) << "threads=" << threads;
    EXPECT_EQ(a.features, b.features) << "threads=" << threads;
  }
  cfg.threads = 1;

  // A subset keeps each snapshot's original seed offset: sampling {1, 3}
  // returns exactly those snapshots' cubes of the full run.
  std::vector<std::size_t> subset{1, 3};
  const auto part = sampling::run_pipeline_streaming(
      reader, cfg, std::span<const std::size_t>(subset));
  std::size_t k = 0;
  for (const auto& cs : in_memory.cubes) {
    if (cs.snapshot != 1 && cs.snapshot != 3) continue;
    ASSERT_LT(k, part.cubes.size());
    EXPECT_EQ(part.cubes[k].cube_id, cs.cube_id);
    EXPECT_EQ(part.cubes[k].samples.indices, cs.samples.indices);
    EXPECT_EQ(part.cubes[k].samples.features, cs.samples.features);
    ++k;
  }
  EXPECT_EQ(k, part.cubes.size());
}

/// Concurrent gathers from many threads across different snapshots of one
/// shared SeriesReader under heavy eviction churn (runs under TSan in
/// CI). Every value must match the source dataset.
TEST_F(SeriesStoreTest, ConcurrentCrossSnapshotGathersMatchSource) {
  const auto ds = make_series(4);
  StoreOptions opts;
  opts.chunk = {4, 4, 4};
  opts.codec = "delta";
  SeriesWriter writer(path("mt.skl3"), opts);
  for (std::size_t t = 0; t < ds.num_snapshots(); ++t) {
    writer.append(ds.snapshot(t));
  }
  (void)writer.close();
  // ~3 chunks of budget: nearly every gather evicts.
  const SeriesReader reader(path("mt.skl3"),
                            /*cache_bytes=*/3 * 64 * sizeof(double),
                            /*shards=*/4);
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRounds = 48;
  std::vector<std::string> failures(kThreads);
  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      Rng rng(500 + w);
      std::vector<std::size_t> idx(64);
      for (std::size_t round = 0; round < kRounds; ++round) {
        const std::size_t t = (round + w) % ds.num_snapshots();
        const char* var = (round + w) % 2 == 0 ? "u" : "v";
        for (auto& i : idx) i = rng.uniform_int(ds.shape().size());
        const auto got = reader.source(t).gather(
            var, std::span<const std::size_t>(idx));
        const auto& data = ds.snapshot(t).get(var).data();
        for (std::size_t i = 0; i < idx.size(); ++i) {
          if (got[i] != data[idx[i]]) {
            failures[w] = "thread " + std::to_string(w) + " snapshot " +
                          std::to_string(t) + ": mismatch at " +
                          std::to_string(idx[i]);
            return;
          }
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  for (const auto& f : failures) EXPECT_EQ(f, "");
  EXPECT_GT(reader.cache_stats().evictions, 0u);
}

// ------------------------------------------------- staged case orchestrator

[[nodiscard]] CaseConfig tiny_case() {
  CaseConfig cc;
  cc.pipeline.cube = {8, 8, 8};
  cc.pipeline.hypercube_method = "random";
  cc.pipeline.point_method = "maxent";
  cc.pipeline.num_hypercubes = 3;
  cc.pipeline.num_samples = 51;
  cc.pipeline.num_clusters = 5;
  cc.pipeline.seed = 3;
  cc.arch = "MLP_Transformer";
  cc.model_dim = 16;
  cc.model_heads = 2;
  cc.train.epochs = 2;
  cc.train.batch = 4;
  return cc;
}

/// The series backend must sample exactly what the memory backend does
/// and leave no spill behind on success.
TEST_F(SeriesStoreTest, CaseRunnerSeriesBackendMatchesMemoryBackend) {
  const DatasetBundle bundle = make_dataset("SST-P1F4", 3, 0.5);
  CaseConfig cc = tiny_case();
  const auto memory_report = run_case(bundle, cc);

  cc.backend = "series";
  cc.store.chunk = {16, 16, 16};
  cc.store.codec = "delta";
  cc.spill_dir = (dir_ / "spill").string();
  const auto series_report = run_case(bundle, cc);

  EXPECT_EQ(series_report.sampled_points, memory_report.sampled_points);
  EXPECT_GT(series_report.store_bytes, 0u);
  EXPECT_TRUE(std::isfinite(series_report.train.test_loss));
  // Bit-identical training data + same seed -> identical training run.
  EXPECT_EQ(series_report.train.test_loss, memory_report.train.test_loss);
  // Spill lifecycle: removed on success.
  EXPECT_TRUE(std::filesystem::is_empty(dir_ / "spill"));
}

/// Temporal selection changes *which* snapshots are sampled, identically
/// across backends, and the report says which.
TEST_F(SeriesStoreTest, CaseRunnerTemporalStageIsBackendInvariant) {
  DatasetBundle bundle = make_dataset("SST-P1F4", 5, 0.5);
  // SST bundles carry few snapshots; extend with phase-copies so the
  // temporal stage has something to discard.
  while (bundle.data.num_snapshots() < 6) {
    bundle.data.push(bundle.data.snapshot(
        bundle.data.num_snapshots() % 2));
  }
  CaseConfig cc = tiny_case();
  cc.temporal.num_snapshots = 3;
  cc.temporal.bins = 32;
  const auto memory_report = run_case(bundle, cc);
  ASSERT_EQ(memory_report.selected_snapshots.size(), 3u);

  cc.backend = "series";
  cc.store.codec = "delta";
  cc.spill_dir = (dir_ / "spill_t").string();
  const auto series_report = run_case(bundle, cc);
  EXPECT_EQ(series_report.selected_snapshots,
            memory_report.selected_snapshots);
  EXPECT_EQ(series_report.sampled_points, memory_report.sampled_points);

  cc.backend = "skl2";
  const auto skl2_report = run_case(bundle, cc);
  EXPECT_EQ(skl2_report.selected_snapshots,
            memory_report.selected_snapshots);
  EXPECT_EQ(skl2_report.sampled_points, memory_report.sampled_points);
}

/// Spill lifecycle on failure: the spilled store is kept (for inspection)
/// in the configured directory instead of vanishing.
TEST_F(SeriesStoreTest, FailedCaseKeepsSpillInConfiguredDir) {
  const DatasetBundle bundle = make_dataset("SST-P1F4", 3, 0.5);
  CaseConfig cc = tiny_case();
  cc.backend = "series";
  cc.spill_dir = (dir_ / "spill_fail").string();
  cc.pipeline.hypercube_method = "maxent";
  cc.pipeline.cluster_var = "no_such_variable";  // fails in stage C
  EXPECT_THROW(run_case(bundle, cc), CheckError);
  // The spill directory still holds the series container.
  bool found = false;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir_ / "spill_fail")) {
    if (entry.path().extension() == ".skl3") found = true;
  }
  EXPECT_TRUE(found);
}

// ----------------------------------------- v2 summary blocks + checksum

TEST_F(SeriesStoreTest, SummaryBlocksCarryExactRanges) {
  const auto ds = make_series(4);
  StoreOptions opts;
  opts.chunk = {4, 4, 4};
  SeriesWriter writer(path("sum.skl3"), opts);
  for (std::size_t t = 0; t < ds.num_snapshots(); ++t) {
    writer.append(ds.snapshot(t));
  }
  (void)writer.close();

  const SeriesReader reader(path("sum.skl3"));
  EXPECT_EQ(reader.format_version(), 4u);
  EXPECT_TRUE(reader.has_summaries());
  for (std::size_t t = 0; t < ds.num_snapshots(); ++t) {
    for (const auto& name : ds.snapshot(t).names()) {
      const auto r = reader.value_range(t, name);
      ASSERT_TRUE(r.has_value());
      const auto data = ds.snapshot(t).get(name).data();
      EXPECT_EQ(r->min, *std::min_element(data.begin(), data.end()));
      EXPECT_EQ(r->max, *std::max_element(data.begin(), data.end()));
    }
  }
  EXPECT_THROW((void)reader.value_range(0, "nope"), CheckError);
}

TEST_F(SeriesStoreTest, LegacyV1FilesReadWithoutSummaries) {
  const auto ds = make_series(3);
  StoreOptions opts;
  opts.chunk = {4, 4, 4};
  opts.format_version = 1;  // write the pre-summary layout
  SeriesWriter writer(path("v1.skl3"), opts);
  for (std::size_t t = 0; t < ds.num_snapshots(); ++t) {
    writer.append(ds.snapshot(t));
  }
  (void)writer.close();

  const SeriesReader reader(path("v1.skl3"));
  EXPECT_EQ(reader.format_version(), 1u);
  EXPECT_FALSE(reader.has_summaries());
  EXPECT_EQ(reader.value_range(0, "u"), std::nullopt);
  // Payload still round-trips.
  const auto loaded = reader.load_snapshot(1);
  const auto want = ds.snapshot(1).get("u").data();
  const auto got = loaded.get("u").data();
  for (std::size_t i = 0; i < want.size(); ++i) ASSERT_EQ(want[i], got[i]);
  // And selection falls back to the two-pass scan with identical output.
  sampling::TemporalConfig tc;
  tc.variable = "u";
  tc.num_snapshots = 2;
  tc.bins = 16;
  EXPECT_EQ(sampling::select_snapshots(reader, tc),
            sampling::select_snapshots(field::DatasetSeriesSource(ds), tc));
}

/// The acceptance criterion: with summaries present, cold-store temporal
/// selection touches each payload block ONCE (the range pass reads index
/// metadata); without them it decodes everything twice. The cache is
/// sized below the working set so a second pass cannot hide in it.
TEST_F(SeriesStoreTest, SummariesHalveColdSelectionIo) {
  const auto ds = make_series(6);
  StoreOptions opts;
  opts.chunk = {4, 4, 4};
  auto write_series = [&](const std::string& name, std::uint32_t version) {
    opts.format_version = version;
    SeriesWriter writer(path(name), opts);
    for (std::size_t t = 0; t < ds.num_snapshots(); ++t) {
      writer.append(ds.snapshot(t));
    }
    (void)writer.close();
  };
  write_series("two_pass.skl3", 1);
  write_series("one_pass.skl3", 0);  // latest = v2

  sampling::TemporalConfig tc;
  tc.variable = "u";
  tc.num_snapshots = 3;
  tc.bins = 16;
  const auto expected =
      sampling::select_snapshots(field::DatasetSeriesSource(ds), tc);

  // 12 chunks per field per snapshot (10x6x5 grid in 4^3 chunks).
  const std::size_t blocks_per_var = 6 * 12;
  const std::size_t tiny_cache = 2 * 4 * 4 * 4 * sizeof(double);

  const SeriesReader two_pass(path("two_pass.skl3"), tiny_cache);
  const auto two_open = two_pass.io_bytes_read();  // header + index
  EXPECT_EQ(sampling::select_snapshots(two_pass, tc), expected);
  EXPECT_GE(two_pass.cache_stats().misses, 2 * blocks_per_var);
  const auto two_delta = two_pass.io_bytes_read() - two_open;

  const SeriesReader one_pass(path("one_pass.skl3"), tiny_cache);
  const auto one_open = one_pass.io_bytes_read();  // header + index
  EXPECT_EQ(sampling::select_snapshots(one_pass, tc), expected);
  // Bit-identical result, but every payload block decoded exactly once.
  EXPECT_EQ(one_pass.cache_stats().misses, blocks_per_var);
  const auto one_delta = one_pass.io_bytes_read() - one_open;
  // Byte accounting agrees: the summary path reads u's payload once where
  // the two-pass scan reads it twice (both files carry identical encoded
  // payloads, so the halving is exact).
  EXPECT_GT(one_delta, 0u);
  EXPECT_EQ(2 * one_delta, two_delta);
}

/// SKL3 v4 round-trip: index-resident coarse histograms equal what the
/// canonical kernel (stats::Histogram over the snapshot's own exact
/// range) computes from the raw data — the contract that lets selection
/// seed from the index with zero payload decodes.
TEST_F(SeriesStoreTest, IndexHistogramsMatchScannedCoarseCounts) {
  const auto ds = make_series(4);
  StoreOptions opts;
  opts.chunk = {4, 4, 4};
  SeriesWriter writer(path("hist.skl3"), opts);
  for (std::size_t t = 0; t < ds.num_snapshots(); ++t) {
    writer.append(ds.snapshot(t));
  }
  (void)writer.close();

  const SeriesReader reader(path("hist.skl3"));
  EXPECT_EQ(reader.format_version(), 4u);
  EXPECT_TRUE(reader.has_histograms());
  for (std::size_t t = 0; t < ds.num_snapshots(); ++t) {
    for (const auto& name : ds.snapshot(t).names()) {
      const auto got = reader.coarse_histogram(t, name);
      ASSERT_TRUE(got.has_value());
      ASSERT_EQ(got->size(), field::kCoarseHistogramBins);
      const auto data = ds.snapshot(t).get(name).data();
      double lo = *std::min_element(data.begin(), data.end());
      double hi = *std::max_element(data.begin(), data.end());
      if (!(hi > lo)) {
        lo -= 0.5;
        hi += 0.5;
      }
      stats::Histogram want(lo, hi, field::kCoarseHistogramBins);
      want.add(std::span<const double>(data));
      std::uint64_t total = 0;
      for (std::size_t b = 0; b < field::kCoarseHistogramBins; ++b) {
        ASSERT_EQ((*got)[b], want.counts()[b])
            << "t=" << t << " var=" << name << " bin=" << b;
        total += (*got)[b];
      }
      EXPECT_EQ(total, data.size());
    }
  }
}

/// v1/v3 files carry no histogram block: coarse_histogram reports nullopt
/// and the seeded selection falls back to scanning — with indices
/// identical to both the in-memory source and a v4 file of the same data
/// (k chosen so the candidate set is a strict subset and the seeding
/// stage actually runs).
TEST_F(SeriesStoreTest, SeededSelectionIsIdenticalAcrossFormatVersions) {
  const auto ds = make_series(12);
  StoreOptions opts;
  opts.chunk = {4, 4, 4};
  auto write_series = [&](const std::string& name, std::uint32_t version) {
    opts.format_version = version;
    SeriesWriter writer(path(name), opts);
    for (std::size_t t = 0; t < ds.num_snapshots(); ++t) {
      writer.append(ds.snapshot(t));
    }
    (void)writer.close();
  };
  write_series("sel_v1.skl3", 1);
  write_series("sel_v3.skl3", 3);
  write_series("sel_v4.skl3", 0);  // latest = v4

  sampling::TemporalConfig tc;
  tc.variable = "u";
  tc.num_snapshots = 2;
  tc.bins = 16;  // refine_factor 2 -> 4 candidates out of 12
  const auto expected =
      sampling::select_snapshots(field::DatasetSeriesSource(ds), tc);
  ASSERT_EQ(expected.size(), 2u);

  const SeriesReader v1(path("sel_v1.skl3"));
  const SeriesReader v3(path("sel_v3.skl3"));
  const SeriesReader v4(path("sel_v4.skl3"));
  EXPECT_EQ(v1.coarse_histogram(0, "u"), std::nullopt);
  EXPECT_EQ(v3.coarse_histogram(0, "u"), std::nullopt);
  EXPECT_FALSE(v3.has_histograms());
  EXPECT_TRUE(v4.has_histograms());
  EXPECT_EQ(sampling::select_snapshots(v1, tc), expected);
  EXPECT_EQ(sampling::select_snapshots(v3, tc), expected);
  EXPECT_EQ(sampling::select_snapshots(v4, tc), expected);
}

/// The tentpole acceptance criterion: on a sealed v4 series the seeding
/// stage decodes ZERO payload blocks — the first (and only) decodes are
/// the exact refinement pass over the candidate snapshots. The version
/// ladder quantifies the win: v3 pays one extra full histogram pass, v1
/// two (range + histogram). The cache is sized below the working set so
/// no pass can hide in it.
TEST_F(SeriesStoreTest, SeededSelectionDecodesOnlyCandidateBlocks) {
  const auto ds = make_series(12);
  StoreOptions opts;
  opts.chunk = {4, 4, 4};
  auto write_series = [&](const std::string& name, std::uint32_t version) {
    opts.format_version = version;
    SeriesWriter writer(path(name), opts);
    for (std::size_t t = 0; t < ds.num_snapshots(); ++t) {
      writer.append(ds.snapshot(t));
    }
    (void)writer.close();
  };
  write_series("io_v1.skl3", 1);
  write_series("io_v3.skl3", 3);
  write_series("io_v4.skl3", 0);  // latest = v4

  sampling::TemporalConfig tc;
  tc.variable = "u";
  tc.num_snapshots = 2;
  tc.bins = 16;
  const std::size_t n = 12;
  const std::size_t m = tc.refine_factor * tc.num_snapshots;  // 4 candidates
  // 12 chunks per field per snapshot (10x6x5 grid in 4^3 chunks).
  const std::size_t chunks_per_snap = 12;
  const std::size_t tiny_cache = 2 * 4 * 4 * 4 * sizeof(double);
  const auto expected =
      sampling::select_snapshots(field::DatasetSeriesSource(ds), tc);

  const SeriesReader v4(path("io_v4.skl3"), tiny_cache);
  EXPECT_EQ(v4.cache_stats().misses, 0u);  // opening decodes nothing
  EXPECT_EQ(sampling::select_snapshots(v4, tc), expected);
  // Zero decodes before refinement: only the m candidates' blocks of the
  // selection variable were ever decoded.
  EXPECT_EQ(v4.cache_stats().misses, m * chunks_per_snap);

  const SeriesReader v3(path("io_v3.skl3"), tiny_cache);
  EXPECT_EQ(sampling::select_snapshots(v3, tc), expected);
  // v3 seeds from index ranges but must scan the coarse histograms: one
  // full pass plus the refinement (3x the v4 block decodes here).
  EXPECT_EQ(v3.cache_stats().misses, (n + m) * chunks_per_snap);

  const SeriesReader v1(path("io_v1.skl3"), tiny_cache);
  EXPECT_EQ(sampling::select_snapshots(v1, tc), expected);
  // v1 additionally pays the range pass: two full passes plus refinement.
  EXPECT_EQ(v1.cache_stats().misses, (2 * n + m) * chunks_per_snap);
}

/// A flipped byte inside the v4 histogram region of the index must fail
/// the index checksum at open, exactly like any other index corruption.
TEST_F(SeriesStoreTest, CorruptedHistogramCountsFailChecksum) {
  const auto ds = make_series(2);
  StoreOptions opts;
  opts.chunk = {4, 4, 4};
  SeriesWriter writer(path("hflip.skl3"), opts);
  writer.append(ds.snapshot(0));
  writer.append(ds.snapshot(1));
  (void)writer.close();

  // Per-snapshot index record (3 fields, 12 chunks, v4): 8 (time) +
  // 3*16 (summaries) + 3*64*8 (histogram counts) + 3*12*24 (block refs).
  const std::size_t per_snap = 8 + 3 * 16 + 3 * 64 * 8 + 3 * 12 * 24;
  const auto size = std::filesystem::file_size(path("hflip.skl3"));
  // Flip a byte inside the LAST snapshot's histogram block.
  const auto off =
      static_cast<std::streamoff>(size - per_snap + 8 + 3 * 16 + 100);
  {
    std::fstream f(path("hflip.skl3"),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(off);
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x08);
    f.seekp(off);
    f.write(&b, 1);
  }
  try {
    SeriesReader reader(path("hflip.skl3"));
    FAIL() << "flipped histogram byte must be rejected";
  } catch (const RuntimeError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
  }
}

/// Async readahead is advisory: identical decoded values, identical
/// selection, only the decode timing moves. Whatever the race outcomes
/// between demand loads and prefetch tasks, every block's first touch is
/// either a demand miss or a prefetch hit — their sum is exactly the
/// distinct-block count when nothing is evicted.
TEST_F(SeriesStoreTest, PrefetchedReadsAreBitIdenticalWithAccountedHits) {
  const auto ds = make_series(6);
  StoreOptions opts;
  opts.chunk = {4, 4, 4};
  SeriesWriter writer(path("pf.skl3"), opts);
  for (std::size_t t = 0; t < ds.num_snapshots(); ++t) {
    writer.append(ds.snapshot(t));
  }
  (void)writer.close();

  ThreadPool pool(2);
  ReaderOptions ropts;
  ropts.prefetch_depth = 4;
  ropts.pool = &pool;
  const SeriesReader plain(path("pf.skl3"));
  const SeriesReader ahead(path("pf.skl3"), ropts);
  for (std::size_t t = 0; t < ds.num_snapshots(); ++t) {
    const auto a = plain.load_snapshot(t);
    const auto b = ahead.load_snapshot(t);
    for (const auto& name : a.names()) {
      const auto av = a.get(name).data();
      const auto bv = b.get(name).data();
      EXPECT_TRUE(std::equal(av.begin(), av.end(), bv.begin(), bv.end()))
          << "t=" << t << " var=" << name;
    }
  }
  ahead.drain_prefetch();
  const auto st = ahead.cache_stats();
  const std::size_t blocks = 6 * 3 * 12;  // snapshots * fields * chunks
  EXPECT_GT(st.prefetch_issued, 0u);
  EXPECT_EQ(st.misses + st.prefetch_hits, blocks);
  EXPECT_EQ(st.prefetch_wasted, 0u);  // default cache: nothing evicted
  EXPECT_GE(st.prefetch_issued, st.prefetch_hits);

  sampling::TemporalConfig tc;
  tc.variable = "u";
  tc.num_snapshots = 2;
  tc.bins = 16;
  const SeriesReader sel_plain(path("pf.skl3"));
  const SeriesReader sel_ahead(path("pf.skl3"), ropts);
  EXPECT_EQ(sampling::select_snapshots(sel_ahead, tc),
            sampling::select_snapshots(sel_plain, tc));
}

TEST_F(SeriesStoreTest, IndexByteFlipFailsChecksum) {
  const auto ds = make_series(2);
  StoreOptions opts;
  opts.chunk = {4, 4, 4};
  SeriesWriter writer(path("flip.skl3"), opts);
  writer.append(ds.snapshot(0));
  writer.append(ds.snapshot(1));
  (void)writer.close();

  // The v2 index is the trailing section; flip one byte near the tail.
  const auto size = std::filesystem::file_size(path("flip.skl3"));
  {
    std::fstream f(path("flip.skl3"),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(size - 5));
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x40);
    f.seekp(static_cast<std::streamoff>(size - 5));
    f.write(&b, 1);
  }
  try {
    SeriesReader reader(path("flip.skl3"));
    FAIL() << "flipped index byte must be rejected";
  } catch (const RuntimeError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
  }
}

TEST_F(SeriesStoreTest, TruncationIntoIndexIsRejected) {
  const auto ds = make_series(2);
  SeriesWriter writer(path("midx.skl3"), {});
  writer.append(ds.snapshot(0));
  writer.append(ds.snapshot(1));
  (void)writer.close();
  // Chop a few bytes off the tail: the header still points at a sealed
  // index, but the section no longer fits the file.
  const auto full = std::filesystem::file_size(path("midx.skl3"));
  std::filesystem::resize_file(path("midx.skl3"), full - 3);
  EXPECT_THROW(SeriesReader(path("midx.skl3")), RuntimeError);
}

// ------------------------------------------------ generator-driven ingest

/// The tentpole acceptance test: with ingest: streaming the case runner
/// never materializes a Dataset — peak ingest memory is one snapshot plus
/// the write budget (plus codec wave slack) — while sample sets and
/// training losses stay bit-identical to the fully materialized memory
/// backend.
TEST_F(SeriesStoreTest, StreamingIngestBoundsMemoryAndMatchesMemoryBackend) {
  CaseConfig cc = tiny_case();
  const auto memory_report =
      run_case(make_dataset("SST-P1F4", 3, 0.5), cc);
  ASSERT_NE(memory_report.sample_hash, 0u);
  EXPECT_EQ(memory_report.ingest_peak_bytes, 0u);  // materialized

  cc.backend = "series";
  cc.ingest = "streaming";
  cc.store.chunk = {16, 16, 16};
  cc.store.codec = "delta";
  cc.store.write_budget_bytes = 1u << 20;
  cc.spill_dir = (dir_ / "stream_spill").string();
  ProducerBundle bundle = make_dataset_producer("SST-P1F4", 3, 0.5);
  const std::size_t snapshot_bytes =
      make_dataset("SST-P1F4", 3, 0.5).data.snapshot(0).bytes();
  const auto streamed_report = run_case(bundle, cc);

  EXPECT_EQ(streamed_report.sample_hash, memory_report.sample_hash);
  EXPECT_EQ(streamed_report.sampled_points, memory_report.sampled_points);
  EXPECT_EQ(streamed_report.train.test_loss, memory_report.train.test_loss);
  EXPECT_EQ(streamed_report.selected_snapshots,
            memory_report.selected_snapshots);

  // Peak ingest memory: one live snapshot + one flush wave. The wave's
  // encoded bytes may exceed the raw budget by the codec's worst-case
  // expansion; 2x budget is far beyond any real codec overhead.
  EXPECT_GT(streamed_report.ingest_peak_bytes, 0u);
  EXPECT_LE(streamed_report.ingest_peak_bytes,
            snapshot_bytes + 2 * cc.store.write_budget_bytes);
  EXPECT_GT(streamed_report.store_bytes, 0u);
  EXPECT_TRUE(std::filesystem::is_empty(dir_ / "stream_spill"));
}

/// Streaming ingest through per-snapshot SKL2 files: same contract, one
/// container per snapshot instead of one series.
TEST_F(SeriesStoreTest, StreamingSkl2IngestMatchesMemoryBackend) {
  CaseConfig cc = tiny_case();
  const auto memory_report =
      run_case(make_dataset("SST-P1F4", 4, 0.5), cc);

  cc.backend = "skl2";
  cc.ingest = "streaming";
  cc.store.codec = "raw";
  cc.store.write_budget_bytes = 1u << 20;
  cc.spill_dir = (dir_ / "skl2_spill").string();
  ProducerBundle bundle = make_dataset_producer("SST-P1F4", 4, 0.5);
  const auto streamed_report = run_case(bundle, cc);

  EXPECT_EQ(streamed_report.sample_hash, memory_report.sample_hash);
  EXPECT_EQ(streamed_report.train.test_loss, memory_report.train.test_loss);
  EXPECT_GT(streamed_report.ingest_peak_bytes, 0u);
  EXPECT_TRUE(std::filesystem::is_empty(dir_ / "skl2_spill"));
}

/// Fused rolling-window skl2 (streaming ingest, temporal stage off): each
/// spill file is written, sampled, and deleted before the next snapshot
/// is produced, so the disk high-water mark is ONE snapshot file — not
/// the whole spilled series — while samples and training stay
/// bit-identical to the fully materialized memory backend.
TEST_F(SeriesStoreTest, FusedStreamingSkl2BoundsDiskToOneSnapshotFile) {
  CaseConfig cc = tiny_case();
  const auto memory_report = run_case(make_dataset("SST-P1F4", 4, 0.5), cc);
  ASSERT_NE(memory_report.sample_hash, 0u);
  EXPECT_EQ(memory_report.ingest_peak_disk_bytes, 0u);  // never spills

  cc.backend = "skl2";
  cc.ingest = "streaming";
  cc.store.codec = "delta";
  cc.spill_dir = (dir_ / "fused_spill").string();
  ProducerBundle bundle = make_dataset_producer("SST-P1F4", 4, 0.5);
  const auto fused = run_case(bundle, cc);

  EXPECT_EQ(fused.sample_hash, memory_report.sample_hash);
  EXPECT_EQ(fused.sampled_points, memory_report.sampled_points);
  EXPECT_EQ(fused.train.test_loss, memory_report.train.test_loss);
  // store_bytes sums every spill ever written; the disk peak is the
  // largest single file — strictly less with >= 2 snapshots.
  EXPECT_GT(fused.ingest_peak_disk_bytes, 0u);
  EXPECT_LT(fused.ingest_peak_disk_bytes, fused.store_bytes);
  EXPECT_EQ(fused.metrics.at("case.ingest_peak_disk_bytes"),
            static_cast<double>(fused.ingest_peak_disk_bytes));
  EXPECT_TRUE(std::filesystem::is_empty(dir_ / "fused_spill"));

  // Temporal selection revisits snapshots, so the same config with the
  // stage on cannot fuse: every spill file coexists and the disk peak is
  // the whole spilled store.
  cc.temporal.num_snapshots = 2;
  cc.temporal.bins = 32;
  ProducerBundle revisit = make_dataset_producer("SST-P1F4", 4, 0.5);
  const auto unfused = run_case(revisit, cc);
  EXPECT_EQ(unfused.ingest_peak_disk_bytes, unfused.store_bytes);
  EXPECT_GT(unfused.store_bytes, fused.ingest_peak_disk_bytes);
}

/// Codec matrix over the streaming series backend: every lossless codec
/// must reproduce the memory backend's sample hash and training losses
/// bit-for-bit — the out-of-core path may change how bytes hit disk, never
/// which samples come back.
TEST_F(SeriesStoreTest, LosslessCodecsKeepSampleHashAndLossesIdentical) {
  CaseConfig cc = tiny_case();
  const auto memory_report =
      run_case(make_dataset("SST-P1F4", 3, 0.5), cc);
  ASSERT_NE(memory_report.sample_hash, 0u);

  std::vector<std::string> codecs = {"raw", "delta", "gorilla"};
#ifdef SICKLE_HAS_ZSTD
  codecs.emplace_back("zstd");
#endif
  for (const auto& codec : codecs) {
    CaseConfig sc = tiny_case();
    sc.backend = "series";
    sc.ingest = "streaming";
    sc.store.chunk = {16, 16, 16};
    sc.store.codec = codec;
    sc.store.write_budget_bytes = 1u << 20;
    sc.spill_dir = (dir_ / ("codec_spill_" + codec)).string();
    ProducerBundle bundle = make_dataset_producer("SST-P1F4", 3, 0.5);
    const auto report = run_case(bundle, sc);
    EXPECT_EQ(report.sample_hash, memory_report.sample_hash) << codec;
    EXPECT_EQ(report.sampled_points, memory_report.sampled_points) << codec;
    EXPECT_EQ(report.train.test_loss, memory_report.train.test_loss)
        << codec;
    EXPECT_EQ(report.selected_snapshots, memory_report.selected_snapshots)
        << codec;
  }
}

}  // namespace
}  // namespace sickle::store
