// Gradient checks and unit tests for every layer in the ML stack.
#include <gtest/gtest.h>

#include <cmath>

#include "grad_check.hpp"
#include "ml/attention.hpp"
#include "ml/conv3d.hpp"
#include "ml/layers_basic.hpp"
#include "ml/loss.hpp"
#include "ml/lstm.hpp"
#include "ml/tensor.hpp"

namespace sickle::ml {
namespace {

using testing::check_gradients;

TEST(Tensor, ShapeAndReshape) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.shape_str(), "[2, 3]");
  const Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.dim(0), 3u);
  EXPECT_THROW(t.reshaped({4, 2}), CheckError);
}

TEST(Tensor, MatmulKnownValues) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  const std::vector<float> a{1, 2, 3, 4};
  const std::vector<float> b{5, 6, 7, 8};
  std::vector<float> c(4, 0.0f);
  matmul(a, b, c, 2, 2, 2);
  EXPECT_FLOAT_EQ(c[0], 19.0f);
  EXPECT_FLOAT_EQ(c[1], 22.0f);
  EXPECT_FLOAT_EQ(c[2], 43.0f);
  EXPECT_FLOAT_EQ(c[3], 50.0f);
}

TEST(Tensor, MatmulVariantsConsistent) {
  Rng rng(1);
  const std::size_t m = 3, k = 4, n = 5;
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  std::vector<float> c1(m * n);
  matmul(a.data(), b.data(), c1, m, k, n);
  // b_t stored as [n, k]: transpose b.
  Tensor bt({n, k});
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < n; ++j) bt[j * k + i] = b[i * n + j];
  }
  std::vector<float> c2(m * n);
  matmul_bt(a.data(), bt.data(), c2, m, k, n);
  // a_t stored as [k, m]: transpose a.
  Tensor at({k, m});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < k; ++j) at[j * m + i] = a[i * k + j];
  }
  std::vector<float> c3(m * n);
  matmul_at(at.data(), b.data(), c3, m, k, n);
  for (std::size_t i = 0; i < m * n; ++i) {
    EXPECT_NEAR(c1[i], c2[i], 1e-5);
    EXPECT_NEAR(c1[i], c3[i], 1e-5);
  }
}

TEST(Dense, ForwardKnownValues) {
  Rng rng(2);
  Dense d(2, 1, rng);
  // Overwrite weights for a deterministic check: y = 2x0 - x1 + 0.5.
  d.parameters()[0]->value[0] = 2.0f;
  d.parameters()[0]->value[1] = -1.0f;
  d.parameters()[1]->value[0] = 0.5f;
  const Tensor x({1, 2}, {3.0f, 4.0f});
  const Tensor y = d.forward(x);
  EXPECT_FLOAT_EQ(y[0], 2.0f * 3.0f - 4.0f + 0.5f);
}

TEST(Dense, GradCheck) {
  Rng rng(3);
  Dense d(5, 4, rng);
  check_gradients(d, Tensor::randn({3, 5}, rng));
}

TEST(Dense, GradCheckHigherRankInput) {
  Rng rng(4);
  Dense d(4, 3, rng);
  check_gradients(d, Tensor::randn({2, 3, 4}, rng));
}

class ActivationGrad : public ::testing::TestWithParam<Activation> {};

TEST_P(ActivationGrad, GradCheck) {
  Rng rng(5);
  ActivationLayer layer(GetParam());
  check_gradients(layer, Tensor::randn({2, 7}, rng));
}

INSTANTIATE_TEST_SUITE_P(AllActivations, ActivationGrad,
                         ::testing::Values(Activation::kRelu,
                                           Activation::kTanh,
                                           Activation::kGelu,
                                           Activation::kSigmoid),
                         [](const auto& info) {
                           switch (info.param) {
                             case Activation::kRelu: return "relu";
                             case Activation::kTanh: return "tanh";
                             case Activation::kGelu: return "gelu";
                             default: return "sigmoid";
                           }
                         });

TEST(Activation, ReluClampsNegatives) {
  ActivationLayer relu(Activation::kRelu);
  const Tensor x({1, 3}, {-1.0f, 0.0f, 2.0f});
  const Tensor y = relu.forward(x);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
}

TEST(LayerNorm, NormalizesRows) {
  LayerNorm ln(4);
  const Tensor x({2, 4}, {1.0f, 2.0f, 3.0f, 4.0f, 10.0f, 10.0f, 10.0f,
                          14.0f});
  const Tensor y = ln.forward(x);
  for (std::size_t r = 0; r < 2; ++r) {
    float mean = 0.0f, var = 0.0f;
    for (std::size_t j = 0; j < 4; ++j) mean += y[r * 4 + j];
    mean /= 4.0f;
    for (std::size_t j = 0; j < 4; ++j) {
      var += (y[r * 4 + j] - mean) * (y[r * 4 + j] - mean);
    }
    EXPECT_NEAR(mean, 0.0f, 1e-5);
    EXPECT_NEAR(var / 4.0f, 1.0f, 1e-3);
  }
}

TEST(LayerNorm, GradCheck) {
  Rng rng(6);
  LayerNorm ln(6);
  check_gradients(ln, Tensor::randn({3, 6}, rng));
}

TEST(Dropout, EvalModeIsIdentity) {
  Rng rng(7);
  Dropout drop(0.5, rng);
  drop.set_training(false);
  const Tensor x = Tensor::randn({4, 4}, rng);
  const Tensor y = drop.forward(x);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(x[i], y[i]);
}

TEST(Dropout, TrainModePreservesExpectation) {
  Rng rng(8);
  Dropout drop(0.3, rng);
  const Tensor x({1, 10000}, std::vector<float>(10000, 1.0f));
  const Tensor y = drop.forward(x);
  double mean = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) mean += y[i];
  EXPECT_NEAR(mean / y.size(), 1.0, 0.05);
}

TEST(Sequential, ComposesAndGradChecks) {
  Rng rng(9);
  Sequential seq;
  seq.push(std::make_unique<Dense>(4, 8, rng));
  seq.push(std::make_unique<ActivationLayer>(Activation::kTanh));
  seq.push(std::make_unique<Dense>(8, 2, rng));
  check_gradients(seq, Tensor::randn({3, 4}, rng));
  EXPECT_EQ(seq.parameters().size(), 4u);
}

TEST(Lstm, OutputShapeAndRange) {
  Rng rng(10);
  Lstm lstm(3, 5, rng);
  const Tensor x = Tensor::randn({2, 7, 3}, rng);
  const Tensor y = lstm.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 7, 5}));
  // h = o * tanh(c) in (-1, 1).
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_GT(y[i], -1.0f);
    EXPECT_LT(y[i], 1.0f);
  }
}

TEST(Lstm, GradCheck) {
  Rng rng(11);
  Lstm lstm(2, 3, rng);
  testing::GradCheckOptions opts;
  opts.eps = 5e-3f;
  check_gradients(lstm, Tensor::randn({2, 4, 2}, rng), 1234, opts);
}

TEST(Mhsa, OutputShapePreserved) {
  Rng rng(12);
  MultiHeadSelfAttention attn(8, 2, rng);
  const Tensor x = Tensor::randn({2, 5, 8}, rng);
  EXPECT_EQ(attn.forward(x).shape(), x.shape());
}

TEST(Mhsa, GradCheck) {
  Rng rng(13);
  MultiHeadSelfAttention attn(4, 2, rng);
  testing::GradCheckOptions opts;
  opts.eps = 5e-3f;
  check_gradients(attn, Tensor::randn({1, 3, 4}, rng), 99, opts);
}

TEST(Mhsa, RejectsIndivisibleHeads) {
  Rng rng(14);
  EXPECT_THROW(MultiHeadSelfAttention(7, 2, rng), CheckError);
}

TEST(TransformerLayer, GradCheck) {
  Rng rng(15);
  TransformerEncoderLayer layer(4, 2, 8, rng);
  testing::GradCheckOptions opts;
  opts.eps = 5e-3f;
  opts.rtol = 3e-2;
  check_gradients(layer, Tensor::randn({1, 3, 4}, rng), 7, opts);
}

TEST(Conv3D, OutputExtent) {
  Rng rng(16);
  Conv3D conv(1, 2, 3, 2, 1, rng);
  EXPECT_EQ(conv.out_extent(8), 4u);
  const Tensor x = Tensor::randn({1, 1, 8, 8, 8}, rng);
  const Tensor y = conv.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{1, 2, 4, 4, 4}));
}

TEST(Conv3D, IdentityKernelPassesThrough) {
  Rng rng(17);
  Conv3D conv(1, 1, 1, 1, 0, rng);
  conv.parameters()[0]->value[0] = 1.0f;  // 1x1x1 kernel = identity
  conv.parameters()[1]->value[0] = 0.0f;
  const Tensor x = Tensor::randn({1, 1, 4, 4, 4}, rng);
  const Tensor y = conv.forward(x);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv3D, GradCheck) {
  Rng rng(18);
  Conv3D conv(2, 2, 3, 1, 1, rng);
  testing::GradCheckOptions opts;
  opts.eps = 5e-3f;
  check_gradients(conv, Tensor::randn({1, 2, 4, 4, 4}, rng), 5, opts);
}

TEST(ConvTranspose3D, DoublesExtentWithK4S2P1) {
  Rng rng(19);
  ConvTranspose3D up(1, 1, 4, 2, 1, rng);
  EXPECT_EQ(up.out_extent(4), 8u);
  const Tensor x = Tensor::randn({1, 1, 4, 4, 4}, rng);
  EXPECT_EQ(up.forward(x).shape(),
            (std::vector<std::size_t>{1, 1, 8, 8, 8}));
}

TEST(ConvTranspose3D, GradCheck) {
  Rng rng(20);
  ConvTranspose3D up(2, 1, 4, 2, 1, rng);
  testing::GradCheckOptions opts;
  opts.eps = 5e-3f;
  check_gradients(up, Tensor::randn({1, 2, 3, 3, 3}, rng), 3, opts);
}

TEST(Loss, MseKnownValueAndGrad) {
  const Tensor pred({1, 2}, {1.0f, 3.0f});
  const Tensor target({1, 2}, {0.0f, 0.0f});
  const auto loss = mse_loss(pred, target);
  EXPECT_DOUBLE_EQ(loss.value, (1.0 + 9.0) / 2.0);
  EXPECT_FLOAT_EQ(loss.grad[0], 1.0f);   // 2 * 1 / 2
  EXPECT_FLOAT_EQ(loss.grad[1], 3.0f);
}

TEST(Loss, MaeKnownValue) {
  const Tensor pred({1, 2}, {1.0f, -3.0f});
  const Tensor target({1, 2}, {0.0f, 0.0f});
  EXPECT_DOUBLE_EQ(mae_loss(pred, target).value, 2.0);
}

TEST(Loss, RelativeL2) {
  const Tensor pred({1, 2}, {0.0f, 0.0f});
  const Tensor target({1, 2}, {3.0f, 4.0f});
  EXPECT_NEAR(relative_l2(pred, target), 1.0, 1e-6);
}

TEST(Module, ParameterCountsAndZeroGrad) {
  Rng rng(21);
  Dense d(10, 5, rng);
  EXPECT_EQ(d.num_parameters(), 55u);  // 50 weights + 5 biases
  const Tensor x = Tensor::randn({1, 10}, rng);
  const Tensor y = d.forward(x);
  d.backward(Tensor::randn(y.shape(), rng));
  d.zero_grad();
  for (const Param* p : d.parameters()) {
    for (std::size_t i = 0; i < p->grad.size(); ++i) {
      EXPECT_EQ(p->grad[i], 0.0f);
    }
  }
}

}  // namespace
}  // namespace sickle::ml
