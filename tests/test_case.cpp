// Integration tests: dataset zoo + end-to-end case runner.
#include <gtest/gtest.h>

#include <algorithm>

#include "sickle/case.hpp"
#include "sickle/dataset_zoo.hpp"

namespace sickle {
namespace {

TEST(DatasetZoo, AllLabelsGenerate) {
  for (const auto& label : dataset_labels()) {
    const auto b = make_dataset(label, 1, /*scale=*/0.25);
    EXPECT_GT(b.data.num_snapshots(), 0u) << label;
    EXPECT_FALSE(b.cluster_var.empty()) << label;
    EXPECT_FALSE(b.input_vars.empty()) << label;
    // Every advertised variable exists on the snapshots.
    const auto& snap = b.data.snapshot(0);
    for (const auto& v : b.input_vars) EXPECT_TRUE(snap.has(v)) << label;
    for (const auto& v : b.output_vars) EXPECT_TRUE(snap.has(v)) << label;
    EXPECT_TRUE(snap.has(b.cluster_var)) << label;
  }
}

TEST(DatasetZoo, UnknownLabelThrows) {
  EXPECT_THROW(make_dataset("NOPE"), RuntimeError);
}

TEST(DatasetZoo, Of2dCarriesDragTarget) {
  const auto b = make_dataset("OF2D", 1);
  EXPECT_EQ(b.scalar_target.size(), b.data.num_snapshots());
}

TEST(DatasetZoo, ProducerBundleMirrorsMaterializedBundle) {
  for (const auto& label : dataset_labels()) {
    ProducerBundle pb = make_dataset_producer(label, 1, /*scale=*/0.25);
    const auto b = make_dataset(label, 1, /*scale=*/0.25);
    EXPECT_EQ(pb.input_vars, b.input_vars) << label;
    EXPECT_EQ(pb.output_vars, b.output_vars) << label;
    EXPECT_EQ(pb.cluster_var, b.cluster_var) << label;
    EXPECT_EQ(pb.producer->num_snapshots(), b.data.num_snapshots()) << label;
    // Drain and compare the first snapshot's bits: the producer is the
    // source of truth for make_dataset, so these must be the same bytes.
    const auto first = pb.producer->next();
    ASSERT_TRUE(first.has_value()) << label;
    const auto& want = b.data.snapshot(0);
    ASSERT_EQ(first->names(), want.names()) << label;
    for (const auto& name : want.names()) {
      const auto a = first->get(name).data();
      const auto w = want.get(name).data();
      for (std::size_t i = 0; i < w.size(); ++i) {
        ASSERT_EQ(a[i], w[i]) << label << " " << name;
      }
    }
  }
  EXPECT_THROW(make_dataset_producer("NOPE"), RuntimeError);
}

TEST(Case, ProducerOverloadMaterializeMatchesDatasetOverload) {
  // ingest: materialize (the default) through the producer overload must
  // be byte-for-byte the legacy path.
  CaseConfig cfg;
  cfg.pipeline.cube = {8, 8, 8};
  cfg.pipeline.hypercube_method = "random";
  cfg.pipeline.point_method = "maxent";
  cfg.pipeline.num_hypercubes = 3;
  cfg.pipeline.num_samples = 51;
  cfg.pipeline.num_clusters = 5;
  cfg.pipeline.seed = 7;
  cfg.arch = "MLP_Transformer";
  cfg.train.epochs = 2;
  cfg.train.batch = 4;
  cfg.model_dim = 16;
  cfg.model_heads = 2;
  const auto direct = run_case(make_dataset("SST-P1F4", 3, 0.5), cfg);
  ProducerBundle bundle = make_dataset_producer("SST-P1F4", 3, 0.5);
  const auto via_producer = run_case(bundle, cfg);
  EXPECT_EQ(via_producer.sample_hash, direct.sample_hash);
  EXPECT_EQ(via_producer.sampled_points, direct.sampled_points);
  EXPECT_EQ(via_producer.train.test_loss, direct.train.test_loss);

  cfg.ingest = "teleport";
  ProducerBundle bad = make_dataset_producer("SST-P1F4", 3, 0.5);
  EXPECT_THROW((void)run_case(bad, cfg), CheckError);
}

TEST(DatasetZoo, SstIsAnisotropicGestsIsNot) {
  const auto sst = make_dataset("SST-P1F4", 2, 0.5);
  const auto gests = make_dataset("GESTS-2048", 2, 0.5);
  auto rms = [](std::span<const double> v) {
    double acc = 0.0;
    for (const double x : v) acc += x * x;
    return std::sqrt(acc / static_cast<double>(v.size()));
  };
  const auto& s0 = sst.data.snapshot(0);
  const auto& g0 = gests.data.snapshot(0);
  const double sst_ratio = rms(s0.get("w").data()) / rms(s0.get("u").data());
  const double gests_ratio = rms(g0.get("w").data()) / rms(g0.get("u").data());
  EXPECT_LT(sst_ratio, 0.7);
  EXPECT_NEAR(gests_ratio, 1.0, 0.1);
}

CaseConfig tiny_case(const std::string& arch) {
  CaseConfig cfg;
  cfg.pipeline.cube = {8, 8, 8};
  cfg.pipeline.hypercube_method = "random";
  cfg.pipeline.point_method = (arch == "CNN_Transformer") ? "full" : "maxent";
  cfg.pipeline.num_hypercubes = 4;
  cfg.pipeline.num_samples = 51;
  cfg.pipeline.num_clusters = 5;
  cfg.pipeline.seed = 7;
  cfg.arch = arch;
  cfg.train.epochs = 3;
  cfg.train.batch = 4;
  cfg.model_dim = 16;
  cfg.model_heads = 2;
  cfg.model_layers = 1;
  return cfg;
}

class CaseArch : public ::testing::TestWithParam<std::string> {};

TEST_P(CaseArch, EndToEndRuns) {
  const auto bundle = make_dataset("SST-P1F4", 3, 0.5);  // 32x32x16
  const auto report = run_case(bundle, tiny_case(GetParam()));
  EXPECT_GT(report.sampled_points, 0u);
  EXPECT_GT(report.sampling_kilojoules, 0.0);
  EXPECT_GT(report.training_kilojoules, 0.0);
  EXPECT_GT(report.train.parameters, 0u);
  EXPECT_EQ(report.train.epoch_losses.size(), 3u);
  EXPECT_TRUE(std::isfinite(report.train.test_loss));
  EXPECT_NEAR(report.total_kilojoules(),
              report.sampling_kilojoules + report.training_kilojoules,
              1e-12);
}

INSTANTIATE_TEST_SUITE_P(Archs, CaseArch,
                         ::testing::Values("MLP_Transformer",
                                           "CNN_Transformer", "Foundation"),
                         [](const auto& info) { return info.param; });

TEST(Case, SamplingReducesEnergyVsFull) {
  // The core Fig. 8 mechanism: a 10% sample moves ~10x less data than the
  // dense baseline during dataset construction + training.
  const auto bundle = make_dataset("SST-P1F4", 4, 0.5);
  auto sparse = tiny_case("MLP_Transformer");
  auto dense = tiny_case("CNN_Transformer");
  dense.pipeline.point_method = "full";
  const auto sparse_report = run_case(bundle, sparse);
  const auto dense_report = run_case(bundle, dense);
  EXPECT_LT(sparse_report.train.energy.flops(),
            dense_report.train.energy.flops());
}

TEST(Case, BuildDragDatasetShapes) {
  const auto bundle = make_dataset("OF2D", 5);
  energy::EnergyCounter energy;
  const auto data = build_drag_dataset(bundle, "random", 64, 3, 11, &energy);
  // 100 snapshots, window 3 -> 98 examples.
  EXPECT_EQ(data.size(), 98u);
  EXPECT_EQ(data.input(0).shape(),
            (std::vector<std::size_t>{3, 2 * 64}));
  EXPECT_EQ(data.target(0).shape(), (std::vector<std::size_t>{1, 1}));
  EXPECT_GT(energy.bytes(), 0.0);
}

TEST(Case, BuildDragDatasetMethodsDiffer) {
  const auto bundle = make_dataset("OF2D", 6);
  const auto random = build_drag_dataset(bundle, "random", 32, 1, 3);
  const auto maxent = build_drag_dataset(bundle, "maxent", 32, 1, 3);
  // Different sensor placements -> different inputs.
  bool any_diff = false;
  for (std::size_t i = 0; i < random.input(0).size(); ++i) {
    if (random.input(0)[i] != maxent.input(0)[i]) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Case, BuildDragDatasetRequiresScalarTarget) {
  const auto bundle = make_dataset("GESTS-2048", 7, 0.5);
  EXPECT_THROW(build_drag_dataset(bundle, "random", 8, 1, 1), CheckError);
}

}  // namespace
}  // namespace sickle
