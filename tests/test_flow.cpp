// Unit tests: synthetic flow generators (the DNS substitutes).
#include <gtest/gtest.h>

#include <cmath>

#include "common/mathx.hpp"
#include "fft/fft.hpp"
#include "flow/combustion.hpp"
#include "flow/cylinder.hpp"
#include "flow/spectral_turbulence.hpp"
#include "stats/descriptive.hpp"

namespace sickle::flow {
namespace {

TEST(CylinderWake, ShapesAndFields) {
  CylinderWakeParams p;
  p.nx = 60;
  p.ny = 45;
  p.snapshots = 10;
  const auto wake = generate_cylinder_wake(p);
  EXPECT_EQ(wake.dataset.num_snapshots(), 10u);
  EXPECT_EQ(wake.drag.size(), 10u);
  const auto& snap = wake.dataset.snapshot(0);
  EXPECT_TRUE(snap.has("u"));
  EXPECT_TRUE(snap.has("v"));
  EXPECT_TRUE(snap.has("p"));
  EXPECT_TRUE(snap.has("wz"));
  EXPECT_EQ(snap.shape().nx, 60u);
}

TEST(CylinderWake, NoSlipInsideBody) {
  CylinderWakeParams p;
  p.nx = 120;
  p.ny = 90;
  p.snapshots = 1;
  const auto wake = generate_cylinder_wake(p);
  const auto& snap = wake.dataset.snapshot(0);
  // Locate the grid point closest to the cylinder centre (0, 0).
  const double dx = (p.domain_x1 - p.domain_x0) / (p.nx - 1);
  const double dy = 2.0 * p.domain_y1 / (p.ny - 1);
  const auto ix = static_cast<std::size_t>(std::round(-p.domain_x0 / dx));
  const auto iy = static_cast<std::size_t>(std::round(p.domain_y1 / dy));
  EXPECT_DOUBLE_EQ(snap.get("u").at(ix, iy), 0.0);
  EXPECT_DOUBLE_EQ(snap.get("v").at(ix, iy), 0.0);
}

TEST(CylinderWake, FreeStreamFarUpstream) {
  CylinderWakeParams p;
  p.snapshots = 1;
  const auto wake = generate_cylinder_wake(p);
  const auto& snap = wake.dataset.snapshot(0);
  // Upstream corner should be close to (U_inf, 0).
  EXPECT_NEAR(snap.get("u").at(0, 0), p.u_infinity, 0.1);
  EXPECT_NEAR(snap.get("v").at(0, 0), 0.0, 0.1);
}

TEST(CylinderWake, DragIsPeriodicWithPositiveMean) {
  CylinderWakeParams p;
  p.snapshots = 64;
  p.noise = 0.0;
  const auto wake = generate_cylinder_wake(p);
  const auto m = stats::compute_moments(wake.drag);
  EXPECT_NEAR(m.mean, 1.0, 0.05);
  EXPECT_GT(m.stddev, 0.01);  // oscillating, not constant
  // 8 snapshots per shedding cycle -> the full drag signal (components at
  // f and 2f) repeats every 8 snapshots.
  EXPECT_NEAR(wake.drag[0], wake.drag[8], 0.02);
}

TEST(CylinderWake, WakeIsDownstream) {
  CylinderWakeParams p;
  p.snapshots = 1;
  const auto wake = generate_cylinder_wake(p);
  const auto& wz = wake.dataset.snapshot(0).get("wz");
  const auto& s = wake.dataset.shape();
  // Mean |wz| downstream (x > 0 half) should exceed upstream.
  double up = 0.0, down = 0.0;
  std::size_t nu = 0, nd = 0;
  const double dx = (p.domain_x1 - p.domain_x0) / (p.nx - 1);
  for (std::size_t ix = 0; ix < s.nx; ++ix) {
    const double x = p.domain_x0 + ix * dx;
    for (std::size_t iy = 0; iy < s.ny; ++iy) {
      if (x < -1.0) {
        up += std::abs(wz.at(ix, iy));
        ++nu;
      } else if (x > 1.0) {
        down += std::abs(wz.at(ix, iy));
        ++nd;
      }
    }
  }
  EXPECT_GT(down / nd, 2.0 * up / nu);
}

TEST(Combustion, ProgressVariableBimodalInUnitRange) {
  CombustionParams p;
  p.nx = 128;
  p.ny = 128;
  const auto ds = generate_combustion(p);
  const auto c = ds.snapshot(0).get("C").data();
  std::size_t low = 0, high = 0, mid = 0;
  for (const double x : c) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
    if (x < 0.1) {
      ++low;
    } else if (x > 0.9) {
      ++high;
    } else {
      ++mid;
    }
  }
  // Bimodal: most mass at the extremes, thin flame brush between.
  EXPECT_GT(low + high, 4 * mid);
  EXPECT_GT(low, c.size() / 5);
  EXPECT_GT(high, c.size() / 5);
}

TEST(Combustion, VariancePeaksInsideBrush) {
  CombustionParams p;
  p.nx = 128;
  p.ny = 128;
  const auto ds = generate_combustion(p);
  const auto& snap = ds.snapshot(0);
  const auto c = snap.get("C").data();
  const auto v = snap.get("Cvar").data();
  double brush = 0.0, outside = 0.0;
  std::size_t nb = 0, no = 0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (c[i] > 0.3 && c[i] < 0.7) {
      brush += v[i];
      ++nb;
    } else {
      outside += v[i];
      ++no;
    }
  }
  ASSERT_GT(nb, 0u);
  EXPECT_GT(brush / nb, 3.0 * outside / no);
}

TEST(VonKarmanPao, SpectrumShape) {
  EXPECT_DOUBLE_EQ(von_karman_pao(0.0, 4.0, 16.0), 0.0);
  // Rises through the energy-containing range, decays in dissipation range.
  EXPECT_LT(von_karman_pao(0.5, 4.0, 16.0), von_karman_pao(4.0, 4.0, 16.0));
  EXPECT_GT(von_karman_pao(8.0, 4.0, 16.0), von_karman_pao(30.0, 4.0, 16.0));
}

TEST(SpectralTurbulence, FieldsPresentAndShaped) {
  SpectralTurbulenceParams p;
  p.nx = p.ny = 16;
  p.nz = 8;
  p.snapshots = 2;
  p.with_density = true;
  const auto ds = generate_spectral_turbulence(p);
  EXPECT_EQ(ds.num_snapshots(), 2u);
  const auto& snap = ds.snapshot(0);
  for (const char* v : {"u", "v", "w", "rho", "p"}) {
    EXPECT_TRUE(snap.has(v)) << v;
  }
  EXPECT_EQ(snap.shape().nx, 16u);
  EXPECT_EQ(snap.shape().nz, 8u);
}

TEST(SpectralTurbulence, VelocityIsDivergenceFree) {
  SpectralTurbulenceParams p;
  p.nx = p.ny = p.nz = 16;
  p.intermittency = 0.0;  // envelope multiplication breaks exact solenoidality
  p.with_pressure = false;
  const auto ds = generate_spectral_turbulence(p);
  const auto& snap = ds.snapshot(0);
  const auto dudx =
      fft::spectral_derivative_3d(snap.get("u").data(), 16, 16, 16, 0);
  const auto dvdy =
      fft::spectral_derivative_3d(snap.get("v").data(), 16, 16, 16, 1);
  const auto dwdz =
      fft::spectral_derivative_3d(snap.get("w").data(), 16, 16, 16, 2);
  double div_rms = 0.0, vel_rms = 0.0;
  const auto u = snap.get("u").data();
  for (std::size_t i = 0; i < dudx.size(); ++i) {
    div_rms += sqr(dudx[i] + dvdy[i] + dwdz[i]);
    vel_rms += sqr(u[i]);
  }
  EXPECT_LT(std::sqrt(div_rms), 1e-6 * std::sqrt(vel_rms) + 1e-9);
}

TEST(SpectralTurbulence, RmsMatchesTarget) {
  SpectralTurbulenceParams p;
  p.nx = p.ny = p.nz = 16;
  p.rms_velocity = 2.5;
  p.intermittency = 0.0;
  p.with_pressure = false;
  const auto ds = generate_spectral_turbulence(p);
  // The generator fixes the mean horizontal RMS; each component then sits
  // near the target up to component-to-component statistical variation.
  const auto& snap = ds.snapshot(0);
  double acc = 0.0;
  std::size_t n = 0;
  for (const char* c : {"u", "v"}) {
    for (const double x : snap.get(c).data()) {
      acc += x * x;
      ++n;
    }
  }
  EXPECT_NEAR(std::sqrt(acc / static_cast<double>(n)), 2.5, 1e-9);
}

TEST(SpectralTurbulence, IntermittencyFattensTails) {
  SpectralTurbulenceParams base;
  base.nx = base.ny = base.nz = 32;
  base.with_pressure = false;
  base.intermittency = 0.0;
  auto heavy = base;
  heavy.intermittency = 1.0;
  const auto gaussian = generate_spectral_turbulence(base);
  const auto intermittent = generate_spectral_turbulence(heavy);
  const auto kg = stats::compute_moments(
      gaussian.snapshot(0).get("u").data()).kurtosis;
  const auto ki = stats::compute_moments(
      intermittent.snapshot(0).get("u").data()).kurtosis;
  EXPECT_GT(ki, kg + 0.5);
}

TEST(Stratified, AnisotropySuppressesVerticalVelocity) {
  StratifiedParams p;
  p.nx = p.ny = 32;
  p.nz = 16;
  const auto ds = generate_stratified(p);
  const auto& snap = ds.snapshot(0);
  auto rms = [](std::span<const double> v) {
    double acc = 0.0;
    for (const double x : v) acc += x * x;
    return std::sqrt(acc / v.size());
  };
  EXPECT_LT(rms(snap.get("w").data()), 0.7 * rms(snap.get("u").data()));
  for (const char* v : {"rho", "pv", "eps", "p"}) {
    EXPECT_TRUE(snap.has(v)) << v;
  }
}

TEST(Stratified, DensityStablyStratified) {
  StratifiedParams p;
  p.nx = p.ny = 16;
  p.nz = 16;
  const auto ds = generate_stratified(p);
  const auto& rho = ds.snapshot(0).get("rho");
  // Mean density at the top z-layer exceeds the bottom (gradient along z).
  double bottom = 0.0, top = 0.0;
  for (std::size_t ix = 0; ix < 16; ++ix) {
    for (std::size_t iy = 0; iy < 16; ++iy) {
      bottom += rho.at(ix, iy, 0);
      top += rho.at(ix, iy, 15);
    }
  }
  EXPECT_GT(top, bottom);
}

TEST(Isotropic, ComponentsStatisticallyIsotropic) {
  IsotropicParams p;
  p.n = 32;
  const auto ds = generate_isotropic(p);
  const auto& snap = ds.snapshot(0);
  auto rms = [](std::span<const double> v) {
    double acc = 0.0;
    for (const double x : v) acc += x * x;
    return std::sqrt(acc / v.size());
  };
  const double ru = rms(snap.get("u").data());
  const double rw = rms(snap.get("w").data());
  EXPECT_NEAR(rw / ru, 1.0, 0.05);
  for (const char* v : {"enstrophy", "eps", "p"}) {
    EXPECT_TRUE(snap.has(v)) << v;
  }
}

TEST(SpectralTurbulence, SnapshotsDecorrelateOverTime) {
  SpectralTurbulenceParams p;
  p.nx = p.ny = p.nz = 16;
  p.snapshots = 3;
  p.with_pressure = false;
  p.dt = 2.0;
  p.sweep_velocity = 2.0;
  const auto ds = generate_spectral_turbulence(p);
  const auto u0 = ds.snapshot(0).get("u").data();
  const auto u2 = ds.snapshot(2).get("u").data();
  double dot = 0.0, n0 = 0.0, n2 = 0.0;
  for (std::size_t i = 0; i < u0.size(); ++i) {
    dot += u0[i] * u2[i];
    n0 += u0[i] * u0[i];
    n2 += u2[i] * u2[i];
  }
  const double corr = dot / std::sqrt(n0 * n2);
  EXPECT_LT(std::abs(corr), 0.9);  // evolved, not frozen
  EXPECT_GT(std::abs(corr), 0.0);
}

// ------------------------------------------------------ snapshot producers

/// Bit-exact equality of two datasets (shape, times, names, every value).
void expect_datasets_identical(const field::Dataset& a,
                               const field::Dataset& b) {
  ASSERT_EQ(a.num_snapshots(), b.num_snapshots());
  for (std::size_t t = 0; t < a.num_snapshots(); ++t) {
    const auto& sa = a.snapshot(t);
    const auto& sb = b.snapshot(t);
    ASSERT_EQ(sa.shape(), sb.shape());
    ASSERT_EQ(sa.time(), sb.time());
    ASSERT_EQ(sa.names(), sb.names());
    for (const auto& name : sa.names()) {
      const auto da = sa.get(name).data();
      const auto db = sb.get(name).data();
      for (std::size_t i = 0; i < da.size(); ++i) {
        ASSERT_EQ(da[i], db[i]) << name << "[" << i << "] @ t=" << t;
      }
    }
  }
}

/// The streaming-ingest contract: producers must yield exactly the bits
/// the batch generators return, or streamed and materialized runs would
/// sample different points.
TEST(Producer, StratifiedMatchesBatchGeneratorBitExact) {
  StratifiedParams p;
  p.nx = 16;
  p.ny = 16;
  p.nz = 8;
  p.snapshots = 3;
  p.seed = 21;
  StratifiedProducer producer(p);
  EXPECT_EQ(producer.num_snapshots(), 3u);
  const auto streamed = materialize(producer, "SST");
  expect_datasets_identical(streamed, generate_stratified(p));
  EXPECT_EQ(producer.next(), std::nullopt);  // exhausted
}

TEST(Producer, IsotropicMatchesBatchGeneratorBitExact) {
  IsotropicParams p;
  p.n = 16;
  p.snapshots = 2;
  p.seed = 9;
  IsotropicProducer producer(p);
  const auto streamed = materialize(producer, "GESTS");
  expect_datasets_identical(streamed, generate_isotropic(p));
}

TEST(Producer, CylinderMatchesBatchGeneratorBitExact) {
  CylinderWakeParams p;
  p.nx = 30;
  p.ny = 24;
  p.snapshots = 6;
  p.seed = 77;
  CylinderWakeProducer producer(p);
  const auto streamed = materialize(producer, "OF2D");
  const auto batch = generate_cylinder_wake(p);
  expect_datasets_identical(streamed, batch.dataset);
  // The drag target accumulates as snapshots are produced, with the same
  // noise stream as the batch path.
  ASSERT_EQ(producer.scalar_target().size(), batch.drag.size());
  for (std::size_t t = 0; t < batch.drag.size(); ++t) {
    EXPECT_EQ(producer.scalar_target()[t], batch.drag[t]);
    EXPECT_EQ(producer.times()[t], batch.times[t]);
  }
}

TEST(Producer, CombustionMatchesBatchGeneratorBitExact) {
  CombustionParams p;
  p.nx = 48;
  p.ny = 48;
  p.seed = 3;
  CombustionProducer producer(p);
  EXPECT_EQ(producer.num_snapshots(), 1u);
  const auto streamed = materialize(producer, "TC2D");
  expect_datasets_identical(streamed, generate_combustion(p));
}

TEST(Producer, DatasetProducerReplaysInOrder) {
  StratifiedParams p;
  p.nx = 8;
  p.ny = 8;
  p.nz = 8;
  p.snapshots = 2;
  const auto ds = generate_stratified(p);
  DatasetProducer producer(ds);
  const auto replayed = materialize(producer, "replay");
  expect_datasets_identical(replayed, ds);
}

/// The reset() contract (producer.hpp): after reset(), the producer
/// yields the exact same snapshot sequence again — what lets the session
/// layer return a rejected or cancelled submission's producer unharmed.
template <typename Producer>
void expect_reset_replays(Producer& producer) {
  const auto first = materialize(producer, "pass1");
  EXPECT_EQ(producer.next(), std::nullopt);  // exhausted
  producer.reset();
  const auto second = materialize(producer, "pass2");
  expect_datasets_identical(first, second);
}

TEST(Producer, ResetReplaysBitIdentically) {
  {
    StratifiedParams p;
    p.nx = 16;
    p.ny = 16;
    p.nz = 8;
    p.snapshots = 3;
    p.seed = 9;
    StratifiedProducer producer(p);
    expect_reset_replays(producer);
  }
  {
    IsotropicParams p;
    p.n = 16;
    p.snapshots = 2;
    p.seed = 9;
    IsotropicProducer producer(p);
    expect_reset_replays(producer);
  }
  {
    CombustionParams p;
    p.nx = 32;
    p.ny = 32;
    p.seed = 9;
    CombustionProducer producer(p);
    expect_reset_replays(producer);
  }
  {
    StratifiedParams p;
    p.nx = 8;
    p.ny = 8;
    p.nz = 8;
    p.snapshots = 2;
    const auto ds = generate_stratified(p);
    DatasetProducer producer(ds);
    expect_reset_replays(producer);
  }
}

TEST(Producer, CylinderResetReplaysDragAndTimesToo) {
  CylinderWakeParams p;
  p.nx = 40;
  p.ny = 30;
  p.snapshots = 4;
  p.seed = 5;
  CylinderWakeProducer producer(p);
  const auto first = materialize(producer, "pass1");
  const auto drag1 = producer.scalar_target();
  producer.reset();
  EXPECT_TRUE(producer.scalar_target().empty());  // accumulators rewound
  const auto second = materialize(producer, "pass2");
  expect_datasets_identical(first, second);
  const auto drag2 = producer.scalar_target();
  ASSERT_EQ(drag1.size(), drag2.size());
  for (std::size_t t = 0; t < drag1.size(); ++t) {
    EXPECT_EQ(drag1[t], drag2[t]) << t;
  }
}

TEST(Producer, BaseResetThrowsDocumentedCloneError) {
  // A producer that keeps the base-class default advertises — via the
  // typed throw — that it cannot rewind.
  class OneShot final : public SnapshotProducer {
   public:
    [[nodiscard]] std::size_t num_snapshots() const override { return 0; }
    [[nodiscard]] std::optional<field::Snapshot> next() override {
      return std::nullopt;
    }
  };
  OneShot producer;
  EXPECT_THROW(producer.reset(), CloneError);
  EXPECT_THROW(producer.reset(), RuntimeError);  // IS-A, for legacy catches
}

}  // namespace
}  // namespace sickle::flow
