// Unit tests: SKL2 chunked compressed snapshot store — codecs, chunk
// layout, writer/reader round trips, LRU cache behavior, and
// streaming-vs-in-memory sampling equivalence.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <thread>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sampling/pipeline.hpp"
#include "sickle/case.hpp"
#include "store/chunk_layout.hpp"
#include "store/codec.hpp"
#include "store/snapshot_store.hpp"

namespace sickle::store {
namespace {

std::vector<double> smooth_values(std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(0.01 * static_cast<double>(i)) + 2.0;
  }
  return v;
}

std::vector<double> random_values(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.normal();
  return v;
}

TEST(Codec, RawRoundTripIsExact) {
  const auto codec = make_codec("raw");
  const auto values = random_values(257, 1);
  const auto block = codec->encode(values);
  EXPECT_EQ(block.size(), values.size() * sizeof(double));
  EXPECT_EQ(codec->decode(block, values.size()), values);
}

TEST(Codec, DeltaRoundTripIsExact) {
  const auto codec = make_codec("delta");
  for (const auto& values :
       {smooth_values(511), random_values(511, 2), std::vector<double>{},
        std::vector<double>(64, 3.25)}) {
    const auto block = codec->encode(values);
    EXPECT_EQ(codec->decode(block, values.size()), values);
  }
}

TEST(Codec, DeltaCompressesSmoothAndConstantData) {
  const auto codec = make_codec("delta");
  const auto smooth = smooth_values(4096);
  EXPECT_LT(codec->encode(smooth).size(), smooth.size() * sizeof(double));
  // A constant run costs one nibble per value after the first delta.
  const std::vector<double> constant(4096, 1.5);
  EXPECT_LT(codec->encode(constant).size(), constant.size());
}

TEST(Codec, QuantHonorsTolerance) {
  for (const double tol : {1e-1, 1e-3, 1e-6}) {
    const auto codec = make_codec("quant", tol);
    const auto values = random_values(1000, 3);
    const auto decoded =
        codec->decode(codec->encode(values), values.size());
    double err = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      err = std::max(err, std::abs(values[i] - decoded[i]));
    }
    EXPECT_LE(err, tol);
  }
}

TEST(Codec, QuantSizeShrinksWithLooserTolerance) {
  const auto values = random_values(4096, 4);
  const auto tight = make_codec("quant", 1e-9)->encode(values);
  const auto loose = make_codec("quant", 1e-2)->encode(values);
  EXPECT_LT(loose.size(), tight.size());
  EXPECT_LT(loose.size(), values.size() * sizeof(double) / 2);
}

TEST(Codec, QuantConstantChunkIsTiny) {
  const auto codec = make_codec("quant", 1e-6);
  const std::vector<double> constant(512, 42.0);
  const auto block = codec->encode(constant);
  EXPECT_LT(block.size(), 32u);  // header only, zero-bit payload
  EXPECT_EQ(codec->decode(block, constant.size()), constant);
}

TEST(Codec, QuantFallsBackToRawOnExtremeRange) {
  // range/step overflows the 48-bit level cap -> embedded raw block,
  // which is exact, trivially within tolerance.
  const auto codec = make_codec("quant", 1e-15);
  std::vector<double> values = {0.0, 1e6, -1e6, 3.141592653589793};
  const auto decoded = codec->decode(codec->encode(values), values.size());
  EXPECT_EQ(decoded, values);
}

TEST(Codec, UnknownNameThrows) {
  EXPECT_THROW(make_codec("lz77"), RuntimeError);
  EXPECT_THROW(QuantCodec(0.0), CheckError);
#ifndef SICKLE_HAS_ZSTD
  // "zstd" is a registered name, but requesting it from a build without
  // zstd support must fail with a clear (typed) error, not decode garbage.
  EXPECT_THROW(make_codec("zstd"), RuntimeError);
#endif
}

TEST(ChunkLayout, PartialEdgeChunksCoverTheGrid) {
  const ChunkLayout layout({10, 6, 5}, {4, 4, 4});
  EXPECT_EQ(layout.chunks_x(), 3u);
  EXPECT_EQ(layout.chunks_y(), 2u);
  EXPECT_EQ(layout.chunks_z(), 2u);
  std::size_t covered = 0;
  for (std::size_t c = 0; c < layout.count(); ++c) {
    covered += layout.box(c).points();
  }
  EXPECT_EQ(covered, layout.grid().size());
}

TEST(ChunkLayout, PointMappingIsABijection) {
  const ChunkLayout layout({10, 6, 5}, {4, 4, 4});
  // (chunk_of, local_offset) must hit every slot of every chunk once.
  std::vector<std::vector<bool>> seen(layout.count());
  for (std::size_t c = 0; c < layout.count(); ++c) {
    seen[c].assign(layout.box(c).points(), false);
  }
  for (std::size_t flat = 0; flat < layout.grid().size(); ++flat) {
    const std::size_t c = layout.chunk_of(flat);
    const std::size_t off = layout.local_offset(flat);
    ASSERT_LT(c, layout.count());
    ASSERT_LT(off, seen[c].size());
    EXPECT_FALSE(seen[c][off]);
    seen[c][off] = true;
  }
}

TEST(ChunkLayout, OversizedChunkClampsToOneChunk) {
  const ChunkLayout layout({8, 8, 1}, {32, 32, 32});
  EXPECT_EQ(layout.count(), 1u);
  EXPECT_EQ(layout.box(0).points(), 64u);
}

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("sickle_store_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  /// Snapshot whose grid is deliberately not divisible by the chunk shape.
  [[nodiscard]] static field::Snapshot make_snapshot() {
    field::Snapshot snap({10, 6, 5}, 1.25);
    Rng rng(7);
    for (const char* name : {"u", "v", "c"}) {
      auto& f = snap.add(name);
      std::size_t i = 0;
      for (auto& x : f.data()) {
        x = std::sin(0.05 * static_cast<double>(i++)) + 0.1 * rng.normal();
      }
    }
    return snap;
  }

  std::filesystem::path dir_;
};

TEST_F(StoreTest, LosslessRoundTripWithPartialChunks) {
  const auto snap = make_snapshot();
  for (const char* codec : {"raw", "delta", "gorilla"}) {
    StoreOptions opts;
    opts.chunk = {4, 4, 4};
    opts.codec = codec;
    const auto report = write_store(snap, path("s.skl2"), opts);
    EXPECT_EQ(report.chunks, 3u * 12u);
    EXPECT_EQ(report.raw_bytes, snap.bytes());
    EXPECT_EQ(report.file_bytes,
              std::filesystem::file_size(path("s.skl2")));

    const ChunkReader reader(path("s.skl2"));
    EXPECT_EQ(reader.shape(), snap.shape());
    EXPECT_DOUBLE_EQ(reader.time(), 1.25);
    EXPECT_EQ(reader.variables(), snap.names());
    EXPECT_EQ(reader.codec_name(), codec);
    const auto loaded = reader.load_snapshot();
    for (const auto& name : snap.names()) {
      const auto a = snap.get(name).data();
      const auto b = loaded.get(name).data();
      for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_DOUBLE_EQ(a[i], b[i]) << name << "[" << i << "]";
      }
    }
  }
}

TEST_F(StoreTest, QuantRoundTripWithinTolerance) {
  const auto snap = make_snapshot();
  StoreOptions opts;
  opts.chunk = {4, 4, 4};
  opts.codec = "quant";
  opts.tolerance = 1e-4;
  const auto report = write_store(snap, path("q.skl2"), opts);
  EXPECT_LT(report.file_bytes, report.raw_bytes);

  const auto loaded = ChunkReader(path("q.skl2")).load_snapshot();
  for (const auto& name : snap.names()) {
    const auto a = snap.get(name).data();
    const auto b = loaded.get(name).data();
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_NEAR(a[i], b[i], 1e-4);
    }
  }
}

TEST_F(StoreTest, GatherMatchesSnapshotValues) {
  const auto snap = make_snapshot();
  StoreOptions opts;
  opts.chunk = {4, 4, 4};
  write_store(snap, path("g.skl2"), opts);
  const ChunkReader reader(path("g.skl2"));

  Rng rng(11);
  std::vector<std::size_t> idx(200);
  for (auto& i : idx) i = rng.uniform_int(snap.shape().size());
  const auto got = reader.gather("v", std::span<const std::size_t>(idx));
  const auto data = snap.get("v").data();
  for (std::size_t i = 0; i < idx.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i], data[idx[i]]);
  }
  EXPECT_THROW(reader.gather("nope", std::span<const std::size_t>(idx)),
               CheckError);
}

TEST_F(StoreTest, CacheHitsEvictionsAndSharedOwnership) {
  const auto snap = make_snapshot();
  StoreOptions opts;
  opts.chunk = {4, 4, 4};
  write_store(snap, path("c.skl2"), opts);
  // Capacity of one 4^3 chunk: every switch to a new chunk evicts.
  const ChunkReader reader(path("c.skl2"), /*cache_bytes=*/64 * 8);

  const auto first = reader.chunk(0, 0);
  auto stats = reader.cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  (void)reader.chunk(0, 0);
  stats = reader.cache_stats();
  EXPECT_EQ(stats.hits, 1u);

  (void)reader.chunk(0, 1);  // exceeds capacity -> evicts chunk 0
  stats = reader.cache_stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_LE(stats.resident_bytes, 64u * 8u);
  // Evicted blocks stay alive for existing holders.
  EXPECT_EQ(first->size(), 64u);

  (void)reader.chunk(0, 0);  // cold again after eviction
  stats = reader.cache_stats();
  EXPECT_EQ(stats.misses, 3u);
}

TEST_F(StoreTest, LruKeepsHotChunksResident) {
  const auto snap = make_snapshot();
  StoreOptions opts;
  opts.chunk = {4, 4, 4};
  write_store(snap, path("l.skl2"), opts);
  // Room for two full chunks.
  const ChunkReader reader(path("l.skl2"), /*cache_bytes=*/2 * 64 * 8);
  (void)reader.chunk(0, 0);
  (void)reader.chunk(0, 1);
  (void)reader.chunk(0, 0);  // refresh 0 -> 1 is now LRU
  (void)reader.chunk(0, 2);  // evicts 1, not 0
  (void)reader.chunk(0, 0);
  EXPECT_EQ(reader.cache_stats().hits, 2u);
}

/// v2 trailing-index layout: the writer streams encoded waves under the
/// write budget instead of buffering the whole snapshot's blocks.
TEST_F(StoreTest, TrailingIndexWriterBoundsBufferedBytes) {
  field::Snapshot snap({24, 24, 24}, 0.5);
  Rng rng(11);
  for (const char* name : {"a", "b"}) {
    auto& f = snap.add(name);
    for (auto& x : f.data()) x = rng.normal();
  }
  StoreOptions opts;
  opts.chunk = {8, 8, 8};
  opts.codec = "raw";
  // Budget of two chunks: 54 blocks must flush in many waves.
  opts.write_budget_bytes = 2 * 8 * 8 * 8 * sizeof(double);
  const auto report = write_store(snap, path("v2.skl2"), opts);
  EXPECT_GT(report.peak_buffered_bytes, 0u);
  EXPECT_LT(report.peak_buffered_bytes, report.payload_bytes);
  // Raw codec: a wave's encoded bytes ~ its raw bytes (+ tiny framing).
  EXPECT_LE(report.peak_buffered_bytes, 2 * opts.write_budget_bytes);

  // And the container round-trips through the v2 reader path.
  const ChunkReader reader(path("v2.skl2"));
  const auto loaded = reader.load_snapshot();
  for (const char* name : {"a", "b"}) {
    const auto want = snap.get(name).data();
    const auto got = loaded.get(name).data();
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(want[i], got[i]) << name << "[" << i << "]";
    }
  }
}

/// Legacy v1 files (index before payload) stay readable after the format
/// bump, and the legacy writer remains reachable for compat tooling.
TEST_F(StoreTest, LegacyV1LayoutStillRoundTrips) {
  const auto snap = make_snapshot();
  StoreOptions opts;
  opts.chunk = {4, 4, 4};
  opts.format_version = 1;
  const auto report = write_store(snap, path("v1.skl2"), opts);
  // v1 buffers every encoded block (that is the defect the v2 layout
  // fixes), so its peak equals the payload.
  EXPECT_EQ(report.peak_buffered_bytes, report.payload_bytes);
  const ChunkReader reader(path("v1.skl2"));
  const auto loaded = reader.load_snapshot();
  for (const auto& name : snap.names()) {
    const auto want = snap.get(name).data();
    const auto got = loaded.get(name).data();
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(want[i], got[i]);
    }
  }
  EXPECT_THROW(
      write_store(snap, path("v9.skl2"), {.format_version = 9}),
      CheckError);
}

TEST_F(StoreTest, V2IndexByteFlipFailsChecksum) {
  const auto snap = make_snapshot();
  StoreOptions opts;
  opts.chunk = {4, 4, 4};
  write_store(snap, path("flip.skl2"), opts);
  // The v2 index is the trailing section; flip one byte near the tail in
  // a way that keeps the offsets plausible (low byte of a block size).
  const auto size = std::filesystem::file_size(path("flip.skl2"));
  {
    std::fstream f(path("flip.skl2"),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(size - 16));
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x01);
    f.seekp(static_cast<std::streamoff>(size - 16));
    f.write(&b, 1);
  }
  try {
    ChunkReader reader(path("flip.skl2"));
    FAIL() << "flipped SKL2 index byte must be rejected";
  } catch (const RuntimeError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
  }
}

TEST_F(StoreTest, ErrorPaths) {
  EXPECT_THROW(ChunkReader(path("missing.skl2")), RuntimeError);
  {
    std::ofstream f(path("bad.skl2"), std::ios::binary);
    f << "NOTSKL2DATA";
  }
  EXPECT_THROW(ChunkReader(path("bad.skl2")), RuntimeError);

  const auto snap = make_snapshot();
  write_store(snap, path("trunc.skl2"), {});
  std::filesystem::resize_file(path("trunc.skl2"), 64);
  EXPECT_THROW(ChunkReader(path("trunc.skl2")), RuntimeError);
  EXPECT_THROW(write_store(snap, path("no/such/dir/x.skl2"), {}),
               RuntimeError);
}

/// The acceptance-criterion test: hypercube selection + point sampling
/// driven through a ChunkReader must reproduce the in-memory pipeline.
TEST_F(StoreTest, StreamingPipelineMatchesInMemoryExactly) {
  field::Snapshot snap({16, 16, 16}, 0.0);
  Rng rng(3);
  for (const char* name : {"u", "v", "c"}) {
    auto& f = snap.add(name);
    std::size_t i = 0;
    for (auto& x : f.data()) {
      x = std::cos(0.02 * static_cast<double>(i++)) + 0.3 * rng.normal();
    }
  }
  sampling::PipelineConfig cfg;
  cfg.cube = {4, 4, 4};
  cfg.hypercube_method = "maxent";
  cfg.point_method = "maxent";
  cfg.num_hypercubes = 8;
  cfg.num_samples = 12;
  cfg.num_clusters = 4;
  cfg.input_vars = {"u", "v"};
  cfg.output_vars = {"u"};
  cfg.cluster_var = "c";
  const auto in_memory = run_pipeline(snap, cfg);

  StoreOptions opts;
  opts.chunk = {8, 8, 8};
  opts.codec = "delta";
  write_store(snap, path("stream.skl2"), opts);
  // A deliberately tiny cache forces continual decode during streaming.
  const ChunkReader reader(path("stream.skl2"), /*cache_bytes=*/16 << 10);
  const auto streamed = sampling::run_pipeline_streaming(reader, cfg);

  ASSERT_EQ(streamed.cubes.size(), in_memory.cubes.size());
  for (std::size_t i = 0; i < streamed.cubes.size(); ++i) {
    EXPECT_EQ(streamed.cubes[i].cube_id, in_memory.cubes[i].cube_id);
  }
  const auto a = in_memory.merged();
  const auto b = streamed.merged();
  EXPECT_EQ(a.indices, b.indices);
  EXPECT_EQ(a.features, b.features);
  EXPECT_GT(reader.cache_stats().evictions, 0u);
}

/// Concurrent-gather stress for the sharded cache: many threads hammer one
/// shared reader with random gathers while a deliberately tiny per-shard
/// budget forces constant eviction churn. Every value must still match the
/// source snapshot, and the sanitizer build (SICKLE_SANITIZE=ON) must stay
/// clean. Runs for explicit shard counts including 1 (single-shard must
/// also be safe, just slower).
TEST_F(StoreTest, ConcurrentGathersMatchSnapshotUnderEvictionChurn) {
  field::Snapshot snap({24, 24, 24}, 0.0);
  Rng fill(13);
  for (const char* name : {"u", "v"}) {
    auto& f = snap.add(name);
    for (auto& x : f.data()) x = fill.normal();
  }
  StoreOptions opts;
  opts.chunk = {8, 8, 8};
  opts.codec = "delta";
  write_store(snap, path("mt.skl2"), opts);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
    // ~3 chunks of budget across all shards: nearly every gather evicts.
    const ChunkReader reader(path("mt.skl2"),
                             /*cache_bytes=*/3 * 512 * sizeof(double),
                             shards);
    EXPECT_EQ(reader.shard_count(), shards);
    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kRounds = 64;
    std::vector<std::string> failures(kThreads);
    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        Rng rng(1000 + t);
        std::vector<std::size_t> idx(128);
        for (std::size_t round = 0; round < kRounds; ++round) {
          const char* var = (round + t) % 2 == 0 ? "u" : "v";
          for (auto& i : idx) i = rng.uniform_int(snap.shape().size());
          const auto got =
              reader.gather(var, std::span<const std::size_t>(idx));
          const auto& data = snap.get(var).data();
          for (std::size_t i = 0; i < idx.size(); ++i) {
            if (got[i] != data[idx[i]]) {
              failures[t] = "thread " + std::to_string(t) + " round " +
                            std::to_string(round) + ": mismatch at index " +
                            std::to_string(idx[i]);
              return;
            }
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    for (const auto& f : failures) EXPECT_EQ(f, "");
    const auto stats = reader.cache_stats();
    EXPECT_GT(stats.misses, 0u);
    EXPECT_GT(stats.evictions, 0u);
  }
}

/// The byte budget is strict even when the shard count is absurd relative
/// to it: shards never retain a chunk their slice cannot hold, so resident
/// bytes stay bounded by cache_bytes rather than shards * chunk_bytes.
TEST_F(StoreTest, ShardedCacheNeverExceedsByteBudget) {
  const auto snap = make_snapshot();
  StoreOptions opts;
  opts.chunk = {4, 4, 4};
  write_store(snap, path("b.skl2"), opts);
  // One 4^3 chunk of budget split across 8 shards.
  const ChunkReader reader(path("b.skl2"), /*cache_bytes=*/64 * 8,
                           /*shards=*/8);
  for (std::size_t f = 0; f < reader.num_fields(); ++f) {
    for (std::size_t c = 0; c < reader.layout().count(); ++c) {
      const auto values = reader.chunk(f, c);
      EXPECT_EQ(values->size(), reader.layout().box(c).points());
      EXPECT_LE(reader.cache_stats().resident_bytes, 64u * 8u);
    }
  }
}

/// The acceptance bit-exactness test: `threads: N` streaming over ONE
/// shared sharded reader must reproduce the serial in-memory pipeline
/// bit-for-bit for lossless codecs, for both the memory and skl2 paths.
TEST_F(StoreTest, ParallelStreamingIsBitExactWithSerialInMemory) {
  field::Snapshot snap({16, 16, 16}, 0.0);
  Rng rng(17);
  for (const char* name : {"u", "v", "c"}) {
    auto& f = snap.add(name);
    std::size_t i = 0;
    for (auto& x : f.data()) {
      x = std::sin(0.03 * static_cast<double>(i++)) + 0.2 * rng.normal();
    }
  }
  sampling::PipelineConfig cfg;
  cfg.cube = {4, 4, 4};
  cfg.hypercube_method = "maxent";
  cfg.point_method = "maxent";
  cfg.num_hypercubes = 8;
  cfg.num_samples = 12;
  cfg.num_clusters = 4;
  cfg.input_vars = {"u", "v"};
  cfg.output_vars = {"u"};
  cfg.cluster_var = "c";
  cfg.threads = 1;
  const auto serial = run_pipeline(snap, cfg).merged();

  for (const char* codec : {"raw", "delta", "gorilla"}) {
    StoreOptions opts;
    opts.chunk = {8, 8, 8};
    opts.codec = codec;
    const std::string p = path(std::string("mt_") + codec + ".skl2");
    write_store(snap, p, opts);
    // Small cache + explicit shards: workers contend and evict while they
    // stream.
    const ChunkReader reader(p, /*cache_bytes=*/16 << 10, /*shards=*/4);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      cfg.threads = threads;
      const auto streamed =
          sampling::run_pipeline_streaming(reader, cfg).merged();
      EXPECT_EQ(streamed.indices, serial.indices)
          << codec << " threads=" << threads;
      EXPECT_EQ(streamed.features, serial.features)
          << codec << " threads=" << threads;
    }
    // The memory backend with threads must agree too.
    cfg.threads = 4;
    const auto pooled_memory = run_pipeline(snap, cfg).merged();
    EXPECT_EQ(pooled_memory.indices, serial.indices);
    EXPECT_EQ(pooled_memory.features, serial.features);
    cfg.threads = 1;
  }
}

/// Lossy stores keep the selection (data-independent methods) and bound
/// the feature error by the codec tolerance.
TEST_F(StoreTest, StreamingOverQuantStoreStaysWithinTolerance) {
  field::Snapshot snap({16, 16, 16}, 0.0);
  Rng rng(5);
  for (const char* name : {"u", "c"}) {
    auto& f = snap.add(name);
    for (auto& x : f.data()) x = rng.normal();
  }
  sampling::PipelineConfig cfg;
  cfg.cube = {4, 4, 4};
  cfg.hypercube_method = "random";
  cfg.point_method = "random";
  cfg.num_hypercubes = 6;
  cfg.num_samples = 9;
  cfg.input_vars = {"u"};
  cfg.cluster_var = "c";
  const auto in_memory = run_pipeline(snap, cfg).merged();

  StoreOptions opts;
  opts.codec = "quant";
  opts.tolerance = 1e-3;
  write_store(snap, path("quant.skl2"), opts);
  const auto streamed =
      sampling::run_pipeline_streaming(ChunkReader(path("quant.skl2")), cfg)
          .merged();
  ASSERT_EQ(streamed.indices, in_memory.indices);
  ASSERT_EQ(streamed.features.size(), in_memory.features.size());
  for (std::size_t i = 0; i < streamed.features.size(); ++i) {
    EXPECT_NEAR(streamed.features[i], in_memory.features[i], 1e-3);
  }
}

/// The case runner's skl2 backend (spill + stream per snapshot) must
/// sample exactly what the in-memory backend does.
TEST_F(StoreTest, CaseRunnerSkl2BackendMatchesMemoryBackend) {
  const DatasetBundle bundle = make_dataset("SST-P1F4", 3, 0.5);
  CaseConfig cc;
  cc.pipeline.cube = {8, 8, 8};
  cc.pipeline.hypercube_method = "random";
  cc.pipeline.point_method = "maxent";
  cc.pipeline.num_hypercubes = 3;
  cc.pipeline.num_samples = 51;
  cc.pipeline.num_clusters = 5;
  cc.pipeline.seed = 3;
  cc.arch = "MLP_Transformer";
  cc.model_dim = 16;
  cc.model_heads = 2;
  cc.train.epochs = 2;
  cc.train.batch = 4;

  const auto memory_report = run_case(bundle, cc);
  cc.backend = "skl2";
  cc.store.chunk = {16, 16, 16};
  cc.store.codec = "delta";
  const auto store_report = run_case(bundle, cc);

  EXPECT_EQ(store_report.sampled_points, memory_report.sampled_points);
  EXPECT_GT(store_report.store_bytes, 0u);
  EXPECT_TRUE(std::isfinite(store_report.train.test_loss));

  cc.backend = "s3";
  EXPECT_THROW(run_case(bundle, cc), CheckError);
}

}  // namespace
}  // namespace sickle::store
