// Unit tests: .skl snapshot and sample-set storage.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "io/snapshot_io.hpp"

namespace sickle::io {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("sickle_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(IoTest, SnapshotRoundTrip) {
  field::Snapshot snap({4, 3, 2}, 2.5);
  Rng rng(1);
  for (const char* name : {"u", "v", "p"}) {
    auto& f = snap.add(name);
    for (auto& x : f.data()) x = rng.normal();
  }
  const std::size_t bytes = save_snapshot(snap, path("snap.skl"));
  EXPECT_GT(bytes, 3u * 24u * sizeof(double));

  const auto loaded = load_snapshot(path("snap.skl"));
  EXPECT_EQ(loaded.shape(), snap.shape());
  EXPECT_DOUBLE_EQ(loaded.time(), 2.5);
  EXPECT_EQ(loaded.names(), snap.names());
  for (const char* name : {"u", "v", "p"}) {
    const auto a = snap.get(name).data();
    const auto b = loaded.get(name).data();
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_DOUBLE_EQ(a[i], b[i]);
    }
  }
}

TEST_F(IoTest, SamplesRoundTrip) {
  SampleFile s;
  s.variables = {"u", "v"};
  s.indices = {3, 17, 255};
  s.features = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  save_samples(s, path("samples.skl"));
  const auto loaded = load_samples(path("samples.skl"));
  EXPECT_EQ(loaded.variables, s.variables);
  EXPECT_EQ(loaded.indices, s.indices);
  EXPECT_EQ(loaded.features, s.features);
}

TEST_F(IoTest, SampleFileIsSmallerThanSnapshot) {
  field::Snapshot snap({32, 32, 1});
  Rng rng(2);
  for (const char* name : {"u", "v"}) {
    auto& f = snap.add(name);
    for (auto& x : f.data()) x = rng.normal();
  }
  const std::size_t full = save_snapshot(snap, path("full.skl"));

  SampleFile s;
  s.variables = {"u", "v"};
  // 10% subsample.
  for (std::size_t i = 0; i < 102; ++i) {
    s.indices.push_back(i * 10);
    s.features.push_back(0.0);
    s.features.push_back(0.0);
  }
  const std::size_t sampled = save_samples(s, path("sub.skl"));
  EXPECT_LT(sampled * 5, full);  // well under 20% of the dense file
}

TEST_F(IoTest, LoadMissingFileThrows) {
  EXPECT_THROW(load_snapshot(path("missing.skl")), RuntimeError);
  EXPECT_THROW(load_samples(path("missing.skl")), RuntimeError);
}

TEST_F(IoTest, WrongMagicThrows) {
  {
    std::ofstream f(path("bad.skl"), std::ios::binary);
    f << "NOTSKLDATA";
  }
  EXPECT_THROW(load_snapshot(path("bad.skl")), RuntimeError);
  EXPECT_THROW(load_samples(path("bad.skl")), RuntimeError);
}

TEST_F(IoTest, TruncatedFileThrows) {
  field::Snapshot snap({8, 8, 1});
  snap.add("u");
  save_snapshot(snap, path("trunc.skl"));
  std::filesystem::resize_file(path("trunc.skl"), 40);
  EXPECT_THROW(load_snapshot(path("trunc.skl")), RuntimeError);
}

TEST_F(IoTest, MismatchedFeatureCountRejected) {
  SampleFile s;
  s.variables = {"u"};
  s.indices = {1, 2};
  s.features = {1.0};  // should be 2
  EXPECT_THROW(save_samples(s, path("bad2.skl")), CheckError);
}

TEST_F(IoTest, FileBytesOfMissingIsZero) {
  EXPECT_EQ(file_bytes(path("nope")), 0u);
}

}  // namespace
}  // namespace sickle::io
