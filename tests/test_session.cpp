// CaseSession: concurrent bit-identity vs run_case, admission control,
// queue-slot-freeing cancellation, typed errors, shared-cache stats.
// Runs under TSan in CI (the session's runner threads + shared BlockCache
// are exactly the code this job exists to race-check).
#include <gtest/gtest.h>

#include <algorithm>
#include <condition_variable>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "sickle/config_driver.hpp"
#include "sickle/dataset_zoo.hpp"
#include "sickle/session.hpp"

namespace sickle {
namespace {

std::string tiny_yaml(std::uint64_t seed, const std::string& backend,
                      const std::string& ingest) {
  std::string y;
  y += "shared:\n  dataset: SST-P1F4\n  scale: 0.25\n";
  y += "  seed: " + std::to_string(seed) + "\n";
  y += "subsample:\n  hypercubes: random\n  method: maxent\n";
  y += "  num_hypercubes: 2\n  num_samples: 17\n  num_clusters: 3\n";
  y += "  nxsl: 8\n  nysl: 8\n  nzsl: 8\n";
  y += "store:\n  backend: " + backend + "\n  ingest: " + ingest + "\n";
  y += "  codec: delta\n  chunk: 16\n  write_budget_mb: 1\n";
  y += "  spill_dir: " +
       (std::filesystem::temp_directory_path() / "sickle_test_session")
           .string() +
       "\n";
  y += "train:\n  arch: MLP_transformer\n  epochs: 1\n  batch: 4\n";
  y += "  dim: 8\n  heads: 2\n";
  return y;
}

struct TinyCase {
  CaseConfig cfg;
  ProducerBundle bundle;
};

TinyCase tiny_case(std::uint64_t seed, const std::string& backend = "series",
                   const std::string& ingest = "streaming") {
  const Config cfg = Config::parse(tiny_yaml(seed, backend, ingest));
  TinyCase t;
  t.cfg = case_from_config(cfg);
  t.bundle = make_dataset_producer(dataset_label_from_config(cfg), seed,
                                   dataset_scale_from_config(cfg));
  return t;
}

/// Wraps an inner producer; the FIRST next() call blocks until release().
/// Lets tests pin a case inside stage A while they poke at the queue.
class GateProducer final : public flow::SnapshotProducer {
 public:
  explicit GateProducer(std::unique_ptr<flow::SnapshotProducer> inner)
      : inner_(std::move(inner)) {}

  void release() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }

  /// Blocks until the case under test has actually reached next().
  void wait_until_blocked() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return waiting_; });
  }

  [[nodiscard]] std::size_t num_snapshots() const override {
    return inner_->num_snapshots();
  }

  [[nodiscard]] std::optional<field::Snapshot> next() override {
    {
      std::unique_lock<std::mutex> lk(mu_);
      waiting_ = true;
      cv_.notify_all();
      cv_.wait(lk, [&] { return open_; });
    }
    return inner_->next();
  }

  void reset() override { inner_->reset(); }

 private:
  std::unique_ptr<flow::SnapshotProducer> inner_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
  bool waiting_ = false;
};

/// next() always throws — drives a case into kFailed during stage A.
class ExplodingProducer final : public flow::SnapshotProducer {
 public:
  [[nodiscard]] std::size_t num_snapshots() const override { return 4; }
  [[nodiscard]] std::optional<field::Snapshot> next() override {
    throw RuntimeError("synthetic producer failure");
  }
  void reset() override {}
};

TEST(Session, ConcurrentCasesBitIdenticalToRunCase) {
  // Serial references through the plain batch API.
  std::vector<std::uint64_t> want_hash;
  std::vector<double> want_loss;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    TinyCase t = tiny_case(seed);
    const CaseReport r = run_case(t.bundle, std::move(t.cfg));
    want_hash.push_back(r.sample_hash);
    want_loss.push_back(r.train.test_loss);
  }

  // Six cases in flight across three runners, two per seed.
  CaseSession session({.max_concurrent_cases = 3, .queue_capacity = 16});
  std::vector<CaseHandle> handles;
  std::vector<std::uint64_t> seeds;
  for (int rep = 0; rep < 2; ++rep) {
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      TinyCase t = tiny_case(seed);
      handles.push_back(session.submit(std::move(t.bundle), std::move(t.cfg)));
      seeds.push_back(seed);
    }
  }
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const CaseReport& r = handles[i].wait();
    EXPECT_EQ(r.sample_hash, want_hash[seeds[i]]) << "case " << i;
    EXPECT_EQ(r.train.test_loss, want_loss[seeds[i]]) << "case " << i;
    EXPECT_EQ(handles[i].status().state, CaseState::kDone);
  }
}

TEST(Session, MemoryBackendMatchesToo) {
  TinyCase serial = tiny_case(7, "memory", "materialize");
  const CaseReport want = run_case(serial.bundle, std::move(serial.cfg));

  CaseSession session({.max_concurrent_cases = 2});
  TinyCase t = tiny_case(7, "memory", "materialize");
  const CaseReport& got =
      session.submit(std::move(t.bundle), std::move(t.cfg)).wait();
  EXPECT_EQ(got.sample_hash, want.sample_hash);
  EXPECT_EQ(got.train.final_train_loss, want.train.final_train_loss);
}

TEST(Session, CancelQueuedFreesItsQueueSlot) {
  CaseSession session({.max_concurrent_cases = 1, .queue_capacity = 1});

  // Case A occupies the single runner, gated inside stage A.
  TinyCase a = tiny_case(0);
  auto* gate = new GateProducer(std::move(a.bundle.producer));
  a.bundle.producer.reset(gate);
  CaseHandle ha = session.submit(std::move(a.bundle), std::move(a.cfg));
  gate->wait_until_blocked();
  EXPECT_EQ(session.running(), 1u);

  // Case B fills the one queue slot; C must bounce.
  TinyCase b = tiny_case(1);
  CaseHandle hb = session.submit(std::move(b.bundle), std::move(b.cfg));
  TinyCase c = tiny_case(2);
  EXPECT_THROW(session.submit(std::move(c.bundle), std::move(c.cfg)),
               QueueFullError);
  // The rejected bundle is untouched — still usable for a retry. (The
  // by-value CaseConfig is consumed by the call; rebuild it.)
  ASSERT_NE(c.bundle.producer, nullptr);

  // Cancelling queued B frees the slot IMMEDIATELY (no runner involved:
  // the runner is still stuck inside A).
  EXPECT_TRUE(hb.cancel());
  EXPECT_EQ(hb.status().state, CaseState::kCancelled);
  EXPECT_THROW((void)hb.wait(), CancelledError);
  EXPECT_EQ(session.queued(), 0u);
  CaseHandle hd;
  EXPECT_NO_THROW({
    hd = session.submit(std::move(c.bundle), std::move(tiny_case(2).cfg));
  });

  // Cancel running A, then open the gate: the orchestrator notices at its
  // next checkpoint and A terminates kCancelled.
  EXPECT_TRUE(ha.cancel());
  gate->release();
  EXPECT_THROW((void)ha.wait(), CancelledError);
  EXPECT_EQ(ha.status().state, CaseState::kCancelled);

  // D got the freed capacity and runs to completion.
  EXPECT_NO_THROW((void)hd.wait());
  EXPECT_EQ(hd.status().state, CaseState::kDone);
}

TEST(Session, SubmitRejectsBadConfigWithEveryIssueAtOnce) {
  CaseSession session;
  TinyCase t = tiny_case(0);
  t.cfg.backend = "floppy";     // store.backend
  t.cfg.arch = "Perceptron9000";    // train.arch
  t.cfg.window = 0;                 // train.window
  try {
    session.submit(std::move(t.bundle), std::move(t.cfg));
    FAIL() << "submit accepted an invalid config";
  } catch (const ConfigError& e) {
    EXPECT_GE(e.issues().size(), 3u);
    std::vector<std::string> fields;
    for (const auto& issue : e.issues()) fields.push_back(issue.field);
    EXPECT_NE(std::find(fields.begin(), fields.end(), "store.backend"),
              fields.end());
    EXPECT_NE(std::find(fields.begin(), fields.end(), "train.arch"),
              fields.end());
    EXPECT_NE(std::find(fields.begin(), fields.end(), "train.window"),
              fields.end());
  }
  // Rejection happened before the bundle was consumed.
  EXPECT_NE(t.bundle.producer, nullptr);
}

TEST(Session, FailingProducerSurfacesTypedIngestError) {
  CaseSession session;
  TinyCase t = tiny_case(0);
  t.bundle.producer = std::make_unique<ExplodingProducer>();
  CaseHandle h = session.submit(std::move(t.bundle), std::move(t.cfg));
  try {
    (void)h.wait();
    FAIL() << "case with an exploding producer reported success";
  } catch (const CaseError& e) {
    EXPECT_EQ(e.code(), CaseErrorCode::kIngest);
    EXPECT_NE(std::string(e.what()).find("synthetic producer failure"),
              std::string::npos);
  }
  const CaseStatus s = h.status();
  EXPECT_EQ(s.state, CaseState::kFailed);
  EXPECT_EQ(s.error_code, CaseErrorCode::kIngest);
  EXPECT_FALSE(s.error.empty());
}

TEST(Session, SharedCacheAccumulatesAcrossConcurrentSeriesCases) {
  const store::CacheStats before = CaseSession::shared_cache_stats();
  CaseSession session({.max_concurrent_cases = 2});
  std::vector<CaseHandle> handles;
  for (std::uint64_t seed = 0; seed < 2; ++seed) {
    TinyCase t = tiny_case(seed, "series", "streaming");
    handles.push_back(session.submit(std::move(t.bundle), std::move(t.cfg)));
  }
  for (const auto& h : handles) (void)h.wait();
  const store::CacheStats after = CaseSession::shared_cache_stats();
  // Both cases' readers routed through the one process-global cache.
  EXPECT_GT(after.hits + after.misses, before.hits + before.misses);
}

TEST(Session, DestructorCancelsQueuedCases) {
  CaseHandle orphan;
  {
    CaseSession session({.max_concurrent_cases = 1, .queue_capacity = 4});
    TinyCase a = tiny_case(0);
    auto* gate = new GateProducer(std::move(a.bundle.producer));
    a.bundle.producer.reset(gate);
    (void)session.submit(std::move(a.bundle), std::move(a.cfg));
    gate->wait_until_blocked();
    TinyCase b = tiny_case(1);
    orphan = session.submit(std::move(b.bundle), std::move(b.cfg));
    gate->release();  // let the dtor's cancel land at a checkpoint
  }
  EXPECT_EQ(orphan.status().state, CaseState::kCancelled);
}

}  // namespace
}  // namespace sickle
