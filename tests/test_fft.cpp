// Unit tests: FFT, Poisson solve, spectral derivatives.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "fft/fft.hpp"

namespace sickle::fft {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Fft, RoundTripIdentity) {
  Rng rng(1);
  std::vector<cplx> data(256);
  for (auto& x : data) x = cplx(rng.normal(), rng.normal());
  auto copy = data;
  forward(std::span<cplx>(data));
  inverse(std::span<cplx>(data));
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), copy[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag(), copy[i].imag(), 1e-10);
  }
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<cplx> data(12);
  EXPECT_THROW(forward(std::span<cplx>(data)), CheckError);
}

TEST(Fft, DeltaTransformsToConstant) {
  std::vector<cplx> data(64, cplx(0, 0));
  data[0] = cplx(1, 0);
  forward(std::span<cplx>(data));
  for (const auto& x : data) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SinusoidPeaksAtItsFrequency) {
  const std::size_t n = 128;
  std::vector<cplx> data(n);
  const int k = 5;
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = cplx(std::cos(2.0 * kPi * k * static_cast<double>(i) / n), 0.0);
  }
  forward(std::span<cplx>(data));
  // cos -> two peaks of magnitude n/2 at bins k and n-k.
  EXPECT_NEAR(std::abs(data[k]), n / 2.0, 1e-8);
  EXPECT_NEAR(std::abs(data[n - k]), n / 2.0, 1e-8);
  for (std::size_t i = 0; i < n; ++i) {
    if (i != static_cast<std::size_t>(k) && i != n - k) {
      EXPECT_LT(std::abs(data[i]), 1e-8);
    }
  }
}

TEST(Fft, ParsevalHolds) {
  Rng rng(2);
  const std::size_t n = 512;
  std::vector<cplx> data(n);
  double time_energy = 0.0;
  for (auto& x : data) {
    x = cplx(rng.normal(), 0.0);
    time_energy += std::norm(x);
  }
  forward(std::span<cplx>(data));
  double freq_energy = 0.0;
  for (const auto& x : data) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy, 1e-6);
}

TEST(Fft, RoundTrip2D) {
  Rng rng(3);
  const std::size_t nx = 16, ny = 8;
  std::vector<cplx> data(nx * ny);
  for (auto& x : data) x = cplx(rng.normal(), 0.0);
  auto copy = data;
  transform_2d(std::span<cplx>(data), nx, ny, false);
  transform_2d(std::span<cplx>(data), nx, ny, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), copy[i].real(), 1e-10);
  }
}

TEST(Fft, RoundTrip3D) {
  Rng rng(4);
  const std::size_t nx = 8, ny = 4, nz = 16;
  std::vector<cplx> data(nx * ny * nz);
  for (auto& x : data) x = cplx(rng.normal(), 0.0);
  auto copy = data;
  transform_3d(std::span<cplx>(data), nx, ny, nz, false);
  transform_3d(std::span<cplx>(data), nx, ny, nz, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), copy[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag(), 0.0, 1e-10);
  }
}

TEST(Fft, WavenumberMapping) {
  EXPECT_DOUBLE_EQ(wavenumber(0, 8), 0.0);
  EXPECT_DOUBLE_EQ(wavenumber(3, 8), 3.0);
  EXPECT_DOUBLE_EQ(wavenumber(4, 8), -4.0);
  EXPECT_DOUBLE_EQ(wavenumber(7, 8), -1.0);
}

TEST(Fft, SpectralDerivativeOfSine) {
  const std::size_t n = 32;
  std::vector<double> f(n * n * n);
  for (std::size_t ix = 0; ix < n; ++ix) {
    const double x = 2.0 * kPi * static_cast<double>(ix) / n;
    for (std::size_t iy = 0; iy < n; ++iy) {
      for (std::size_t iz = 0; iz < n; ++iz) {
        f[(ix * n + iy) * n + iz] = std::sin(2.0 * x);
      }
    }
  }
  const auto df = spectral_derivative_3d(f, n, n, n, 0);
  for (std::size_t ix = 0; ix < n; ++ix) {
    const double x = 2.0 * kPi * static_cast<double>(ix) / n;
    EXPECT_NEAR(df[(ix * n) * n], 2.0 * std::cos(2.0 * x), 1e-8);
  }
}

TEST(Fft, PoissonSolveInvertsLaplacian) {
  // u = sin(x) cos(2y) => lap u = -(1 + 4) u = -5u. Feed rhs = -5u and
  // expect u back (zero-mean gauge holds since u has no k=0 component).
  const std::size_t n = 16;
  std::vector<double> u(n * n * n), rhs(n * n * n);
  for (std::size_t ix = 0; ix < n; ++ix) {
    const double x = 2.0 * kPi * static_cast<double>(ix) / n;
    for (std::size_t iy = 0; iy < n; ++iy) {
      const double y = 2.0 * kPi * static_cast<double>(iy) / n;
      for (std::size_t iz = 0; iz < n; ++iz) {
        const std::size_t idx = (ix * n + iy) * n + iz;
        u[idx] = std::sin(x) * std::cos(2.0 * y);
        rhs[idx] = -5.0 * u[idx];
      }
    }
  }
  const auto solved = poisson_solve_3d(rhs, n, n, n);
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_NEAR(solved[i], u[i], 1e-8);
  }
}

TEST(Fft, PoissonZeroRhsGivesZero) {
  const std::size_t n = 8;
  const std::vector<double> rhs(n * n * n, 0.0);
  const auto solved = poisson_solve_3d(rhs, n, n, n);
  for (const double v : solved) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(Fft, PoissonGaugesOutMean) {
  // Constant rhs has only a k=0 component, which the solver gauges away.
  const std::size_t n = 8;
  const std::vector<double> rhs(n * n * n, 3.0);
  const auto solved = poisson_solve_3d(rhs, n, n, n);
  for (const double v : solved) EXPECT_NEAR(v, 0.0, 1e-10);
}

}  // namespace
}  // namespace sickle::fft
