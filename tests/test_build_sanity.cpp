// Build-sanity smoke test: guards the public case-runner API surface that
// README's quick-start and the CLI tools rely on. Construction with
// defaults plus the CaseReport energy arithmetic must keep working even
// when no dataset is generated.
#include <gtest/gtest.h>

#include "sickle/case.hpp"

namespace {

TEST(BuildSanity, CaseConfigDefaults) {
  sickle::CaseConfig cfg;
  EXPECT_EQ(cfg.arch, "MLP_Transformer");
  EXPECT_EQ(cfg.window, 1u);
  EXPECT_EQ(cfg.model_dim, 32u);
  EXPECT_EQ(cfg.model_heads, 4u);
  EXPECT_EQ(cfg.model_layers, 1u);
}

TEST(BuildSanity, CaseReportTotalKilojoules) {
  sickle::CaseReport report;
  EXPECT_DOUBLE_EQ(report.total_kilojoules(), 0.0);

  report.sampling_kilojoules = 1.5;
  report.training_kilojoules = 2.25;
  EXPECT_DOUBLE_EQ(report.total_kilojoules(), 3.75);

  report.training_kilojoules = 0.0;
  EXPECT_DOUBLE_EQ(report.total_kilojoules(), report.sampling_kilojoules);
}

}  // namespace
