// Tests: optimizers, scheduler, precision emulation, trainer, DDP, HPO.
#include <gtest/gtest.h>

#include <cmath>

#include "common/mathx.hpp"
#include "ml/hpo.hpp"
#include "ml/layers_basic.hpp"
#include "ml/models.hpp"
#include "ml/optim.hpp"
#include "ml/trainer.hpp"
#include "parallel/world.hpp"

namespace sickle::ml {
namespace {

/// y = 2x - 1 regression dataset.
TensorDataset linear_dataset(std::size_t n, Rng& rng) {
  TensorDataset data;
  for (std::size_t i = 0; i < n; ++i) {
    const auto x = static_cast<float>(rng.uniform(-1.0, 1.0));
    data.push(Tensor({1}, {x}), Tensor({1}, {2.0f * x - 1.0f}));
  }
  return data;
}

TEST(Sgd, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2 by hand-driving the optimizer.
  Param w("w", Tensor({1}, {0.0f}));
  Sgd opt({&w}, 0.1);
  for (int i = 0; i < 200; ++i) {
    w.grad[0] = 2.0f * (w.value[0] - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(w.value[0], 3.0f, 1e-3);
}

TEST(Adam, ConvergesFasterThanSgdOnIllConditioned) {
  auto run = [](Optimizer& opt, Param& w1, Param& w2) {
    for (int i = 0; i < 100; ++i) {
      w1.grad[0] = 2.0f * 100.0f * (w1.value[0] - 1.0f);
      w2.grad[0] = 2.0f * 0.01f * (w2.value[0] - 1.0f);
      opt.step();
    }
    return std::abs(w1.value[0] - 1.0f) + std::abs(w2.value[0] - 1.0f);
  };
  Param a1("a1", Tensor({1})), a2("a2", Tensor({1}));
  Adam adam({&a1, &a2}, 0.1);
  const double adam_err = run(adam, a1, a2);
  Param s1("s1", Tensor({1})), s2("s2", Tensor({1}));
  Sgd sgd({&s1, &s2}, 0.001);  // larger lr diverges on the stiff axis
  const double sgd_err = run(sgd, s1, s2);
  EXPECT_LT(adam_err, sgd_err);
}

TEST(ReduceLROnPlateau, ReducesAfterPatienceExhausted) {
  Param w("w", Tensor({1}));
  Adam opt({&w}, 1e-3);
  ReduceLROnPlateau sched(opt, 0.5, 3);
  EXPECT_FALSE(sched.step(1.0));  // sets best
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(sched.step(1.0));
  EXPECT_TRUE(sched.step(1.0));  // 4th bad epoch triggers
  EXPECT_DOUBLE_EQ(opt.lr(), 5e-4);
}

TEST(ReduceLROnPlateau, ImprovementResetsCounter) {
  Param w("w", Tensor({1}));
  Adam opt({&w}, 1e-3);
  ReduceLROnPlateau sched(opt, 0.5, 2);
  sched.step(1.0);
  sched.step(1.0);
  sched.step(0.5);  // improvement
  sched.step(0.6);
  sched.step(0.6);
  EXPECT_DOUBLE_EQ(opt.lr(), 1e-3);  // not yet reduced
}

TEST(ReduceLROnPlateau, RespectsMinLr) {
  Param w("w", Tensor({1}));
  Adam opt({&w}, 1e-3);
  ReduceLROnPlateau sched(opt, 0.1, 0, /*min_lr=*/1e-4);
  sched.step(1.0);
  for (int i = 0; i < 10; ++i) sched.step(2.0);
  EXPECT_GE(opt.lr(), 1e-4);
}

TEST(Precision, Fp32IsIdentity) {
  EXPECT_EQ(quantize(1.2345678f, Precision::kFp32), 1.2345678f);
}

TEST(Precision, Bf16DropsMantissaBits) {
  const float x = 1.0f + 1e-4f;
  const float q = quantize(x, Precision::kBf16);
  EXPECT_NE(q, x);           // below bf16 resolution near 1.0
  EXPECT_NEAR(q, x, 1e-2f);  // but close
  EXPECT_EQ(quantize(1.0f, Precision::kBf16), 1.0f);
}

TEST(Precision, Fp16ClampsRange) {
  EXPECT_LE(quantize(1e6f, Precision::kFp16), 65504.0f);
  EXPECT_NEAR(quantize(0.333333f, Precision::kFp16), 0.333333f, 1e-3f);
}

TEST(TensorDataset, BatchStacksExamples) {
  TensorDataset data;
  data.push(Tensor({2}, {1.0f, 2.0f}), Tensor({1}, {0.0f}));
  data.push(Tensor({2}, {3.0f, 4.0f}), Tensor({1}, {1.0f}));
  const std::vector<std::size_t> idx{1, 0};
  const auto [in, tg] = data.batch(idx);
  EXPECT_EQ(in.shape(), (std::vector<std::size_t>{2, 2}));
  EXPECT_FLOAT_EQ(in[0], 3.0f);  // example 1 first
  EXPECT_FLOAT_EQ(tg[1], 0.0f);
}

TEST(TensorDataset, RejectsInconsistentShapes) {
  TensorDataset data;
  data.push(Tensor({2}), Tensor({1}));
  EXPECT_THROW(data.push(Tensor({3}), Tensor({1})), CheckError);
}

TEST(Trainer, LearnsLinearMap) {
  Rng rng(1);
  TensorDataset data = linear_dataset(200, rng);
  Rng mrng(2);
  Sequential model;
  model.push(std::make_unique<Dense>(1, 8, mrng));
  model.push(std::make_unique<ActivationLayer>(Activation::kTanh));
  model.push(std::make_unique<Dense>(8, 1, mrng));
  TrainConfig cfg;
  cfg.epochs = 60;
  cfg.batch = 16;
  cfg.lr = 1e-2;
  const auto report = fit(model, data, cfg);
  EXPECT_LT(report.test_loss, 0.01);
  EXPECT_LT(report.epoch_losses.back(), report.epoch_losses.front());
  EXPECT_GT(report.energy.joules(), 0.0);
  EXPECT_EQ(report.parameters, model.num_parameters());
}

TEST(Trainer, DeterministicGivenSeed) {
  auto run_once = [] {
    Rng rng(3);
    TensorDataset data = linear_dataset(64, rng);
    Rng mrng(4);
    Sequential model;
    model.push(std::make_unique<Dense>(1, 4, mrng));
    model.push(std::make_unique<Dense>(4, 1, mrng));
    TrainConfig cfg;
    cfg.epochs = 10;
    cfg.seed = 5;
    return fit(model, data, cfg).test_loss;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(Trainer, LstmLearnsSineContinuation) {
  // Predict the next sample of a sine from a window — the paper's
  // sample-single problem shape.
  Rng rng(6);
  TensorDataset data;
  const std::size_t window = 8;
  for (std::size_t i = 0; i < 300; ++i) {
    std::vector<float> in(window);
    const double phase = 0.07 * static_cast<double>(i);
    for (std::size_t t = 0; t < window; ++t) {
      in[t] = static_cast<float>(std::sin(phase + 0.3 * t));
    }
    const auto target =
        static_cast<float>(std::sin(phase + 0.3 * window));
    data.push(Tensor({window, 1}, std::move(in)), Tensor({1, 1}, {target}));
  }
  Rng mrng(7);
  LstmModelConfig mc;
  mc.in_channels = 1;
  mc.hidden = 16;
  LstmModel model(mc, mrng);
  TrainConfig cfg;
  cfg.epochs = 40;
  cfg.batch = 32;
  cfg.lr = 5e-3;
  const auto report = fit(model, data, cfg);
  EXPECT_LT(report.test_loss, 0.05);
}

TEST(Trainer, DdpMatchesGradientAveragingSemantics) {
  // 2-rank DDP on identical data halves must produce a *working* model;
  // exact equality with serial isn't required (batch sharding changes the
  // effective batch statistics) but convergence is.
  World world(2);
  std::vector<double> losses(2, 1e9);
  world.run([&](Comm& comm) {
    Rng rng(8);
    TensorDataset data = linear_dataset(128, rng);
    Rng mrng(9);  // identical init on both ranks
    Sequential model;
    model.push(std::make_unique<Dense>(1, 8, mrng));
    model.push(std::make_unique<ActivationLayer>(Activation::kTanh));
    model.push(std::make_unique<Dense>(8, 1, mrng));
    TrainConfig cfg;
    cfg.epochs = 40;
    cfg.lr = 1e-2;
    const auto report = fit(model, data, cfg, &comm);
    losses[comm.rank()] = report.test_loss;
  });
  EXPECT_LT(losses[0], 0.02);
  // Ranks end with identical models (same allreduced gradients).
  EXPECT_DOUBLE_EQ(losses[0], losses[1]);
}

TEST(Trainer, PrecisionEmulationStillConverges) {
  Rng rng(10);
  TensorDataset data = linear_dataset(128, rng);
  Rng mrng(11);
  Sequential model;
  model.push(std::make_unique<Dense>(1, 8, mrng));
  model.push(std::make_unique<Dense>(8, 1, mrng));
  TrainConfig cfg;
  cfg.epochs = 40;
  cfg.lr = 1e-2;
  cfg.precision = Precision::kBf16;
  const auto report = fit(model, data, cfg);
  EXPECT_LT(report.test_loss, 0.05);
}

TEST(Evaluate, MatchesManualMse) {
  TensorDataset data;
  data.push(Tensor({1}, {1.0f}), Tensor({1}, {2.0f}));
  // Identity "model".
  class Identity final : public Module {
   public:
    Tensor forward(const Tensor& x) override { return x; }
    Tensor backward(const Tensor& g) override { return g; }
    [[nodiscard]] std::string name() const override { return "Identity"; }
  };
  Identity model;
  const std::vector<std::size_t> idx{0};
  EXPECT_DOUBLE_EQ(evaluate(model, data, idx), 1.0);  // (1-2)^2
}

TEST(Hpo, FindsTheGoodRegion) {
  // Objective: loss minimized at lr = 1e-3, hidden = 64, improving with
  // epochs — checks both selection and budget growth.
  const HpoObjective objective = [](const HpoCandidate& c,
                                    std::size_t epochs) {
    const double lr_term = sqr(std::log10(c.lr) + 3.0);
    const double hidden_term =
        sqr(std::log2(static_cast<double>(c.hidden)) - 6.0);
    return lr_term + hidden_term + 1.0 / static_cast<double>(epochs);
  };
  HpoConfig cfg;
  cfg.num_candidates = 12;
  cfg.seed = 1;
  const auto report = tune(objective, cfg);
  EXPECT_DOUBLE_EQ(report.best.lr, 1e-3);
  EXPECT_EQ(report.best.hidden, 64u);
  EXPECT_GT(report.history.size(), cfg.num_candidates);
  EXPECT_GT(report.total_epochs, 0u);
}

TEST(Hpo, EmptySpaceThrows) {
  HpoConfig cfg;
  cfg.lr_choices.clear();
  EXPECT_THROW(tune([](const HpoCandidate&, std::size_t) { return 0.0; },
                    cfg),
               CheckError);
}

}  // namespace
}  // namespace sickle::ml
