// Unit tests: thread pool, per-call task groups, parallel_for, SPMD world
// collectives.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "parallel/thread_pool.hpp"
#include "parallel/world.hpp"

namespace sickle {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ParallelFor, SumMatchesSerial) {
  std::vector<double> v(10000);
  std::iota(v.begin(), v.end(), 0.0);
  std::atomic<long> sum{0};
  parallel_for(v.size(), [&](std::size_t i) {
    sum += static_cast<long>(v[i]);
  }, nullptr, 64);
  EXPECT_EQ(sum.load(), 10000L * 9999L / 2L);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, TaskExceptionsRethrowOnCaller) {
  // A throwing chunk must surface as a catchable exception on the calling
  // thread (not std::terminate in a worker). The throwing chunk abandons
  // its remaining indices; the other chunks still complete before the
  // rethrow (wait_idle runs first).
  ThreadPool pool(4);
  std::atomic<int> visited{0};
  EXPECT_THROW(
      parallel_for(
          100,
          [&](std::size_t i) {
            ++visited;
            if (i == 37) throw std::runtime_error("boom");
          },
          &pool, 1),
      std::runtime_error);
  // All four 25-index chunks started; only [25,50) stopped early, at 37.
  EXPECT_GE(visited.load(), 76);
  EXPECT_LT(visited.load(), 100);
}

TEST(TaskGroup, WaitsForExactlyItsOwnTasks) {
  ThreadPool pool(4);
  std::atomic<int> mine{0};
  TaskGroup group(pool);
  for (int i = 0; i < 50; ++i) {
    group.run([&mine] { ++mine; });
  }
  group.wait();
  EXPECT_EQ(mine.load(), 50);
  // wait() after completion returns immediately; the group is reusable.
  group.wait();
  group.run([&mine] { ++mine; });
  group.wait();
  EXPECT_EQ(mine.load(), 51);
}

/// The decoupling fix (ROADMAP PR 3 item): a parallel_for must complete
/// while an unrelated task on the same pool is still blocked in flight.
/// Under the old pool-wide wait_idle this deadlocks — parallel_for would
/// wait for the blocked stranger too.
TEST(TaskGroup, ParallelForDoesNotWaitOnStrangersTasks) {
  ThreadPool pool(2);
  std::promise<void> release;
  std::shared_future<void> released(release.get_future());
  pool.submit([released] { released.wait(); });  // occupies one worker

  std::atomic<int> count{0};
  parallel_for(100, [&](std::size_t) { ++count; }, &pool, 1);
  EXPECT_EQ(count.load(), 100);  // finished while the blocker still runs

  release.set_value();
  pool.wait_idle();
}

/// Overlapping parallel_for calls from concurrent host threads on one
/// shared pool: each call must see exactly its own completion. Runs under
/// TSan in CI (the tsan-concurrency job runs all of test_parallel).
TEST(TaskGroup, ConcurrentParallelForCallsAreIndependent) {
  ThreadPool pool(4);
  constexpr std::size_t kCallers = 6;
  constexpr std::size_t kRounds = 25;
  constexpr std::size_t kN = 512;
  std::vector<std::string> failures(kCallers);
  std::vector<std::thread> callers;
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (std::size_t round = 0; round < kRounds; ++round) {
        std::vector<std::atomic<int>> hits(kN);
        parallel_for_range(
            kN,
            [&](std::size_t b, std::size_t e) {
              for (std::size_t i = b; i < e; ++i) ++hits[i];
            },
            &pool, 16);
        // parallel_for returned: every one of *our* indices must be done
        // exactly once, no matter what the other callers are running.
        for (std::size_t i = 0; i < kN; ++i) {
          if (hits[i].load() != 1) {
            failures[c] = "caller " + std::to_string(c) + " round " +
                          std::to_string(round) + ": index " +
                          std::to_string(i) + " hit " +
                          std::to_string(hits[i].load()) + " times";
            return;
          }
        }
      }
    });
  }
  for (auto& t : callers) t.join();
  for (const auto& f : failures) EXPECT_EQ(f, "");
}

/// Nested fan-out on a one-worker pool: the outer task's TaskGroup::wait
/// must *help* (run the inner tasks itself) rather than block — under the
/// old FIFO pool this deadlocks, since the inner tasks sit queued behind
/// the blocked outer task forever.
TEST(TaskGroup, NestedWaitOnSingleWorkerDoesNotDeadlock) {
  ThreadPool pool(1);
  std::atomic<int> inner{0};
  TaskGroup outer(pool);
  outer.run([&] {
    TaskGroup group(pool);
    for (int i = 0; i < 8; ++i) {
      group.run([&inner] { ++inner; });
    }
    group.wait();  // worker thread: helps, never blocks on itself
  });
  outer.wait();
  EXPECT_EQ(inner.load(), 8);
}

// Three levels of nested parallel_for computing a deterministic triple
// sum. The chunk cuts depend only on (n, workers, grain), so every pool
// size must produce the bit-identical integer result of the serial loop.
long nested_triple_sum(ThreadPool* pool) {
  constexpr std::size_t kOuter = 24;
  constexpr std::size_t kMid = 16;
  constexpr std::size_t kInner = 12;
  std::vector<long> outer_sums(kOuter, 0);
  parallel_for(
      kOuter,
      [&](std::size_t i) {
        std::vector<long> mid_sums(kMid, 0);
        parallel_for(
            kMid,
            [&](std::size_t j) {
              std::atomic<long> s{0};
              parallel_for(
                  kInner,
                  [&](std::size_t k) {
                    s += static_cast<long>((i + 1) * (j + 2) * (k + 3));
                  },
                  pool, 3);
              mid_sums[j] = s.load();
            },
            pool, 2);
        long total = 0;
        for (long v : mid_sums) total += v;
        outer_sums[i] = total;
      },
      pool, 2);
  long total = 0;
  for (long v : outer_sums) total += v;
  return total;
}

TEST(ParallelFor, NestedThreeLevelsBitExactAcrossPoolSizes) {
  long serial = 0;
  for (std::size_t i = 0; i < 24; ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      for (std::size_t k = 0; k < 12; ++k) {
        serial += static_cast<long>((i + 1) * (j + 2) * (k + 3));
      }
    }
  }
  ThreadPool pool1(1);
  EXPECT_EQ(nested_triple_sum(&pool1), serial);
  ThreadPool pool4(4);
  EXPECT_EQ(nested_triple_sum(&pool4), serial);
}

/// Work-stealing stress: many host threads hammer one small pool with
/// nested parallel_for rounds, forcing steals, overflow-queue traffic,
/// helper waits, and sleep/wake transitions concurrently. Runs under TSan
/// in CI (the tsan-concurrency job runs all of test_parallel).
TEST(ThreadPool, NestedStressManyCallersIsRaceFree) {
  ThreadPool pool(3);
  constexpr std::size_t kCallers = 5;
  constexpr std::size_t kRounds = 20;
  std::vector<std::thread> callers;
  std::vector<long> results(kCallers, 0);
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      long acc = 0;
      for (std::size_t round = 0; round < kRounds; ++round) {
        std::atomic<long> sum{0};
        parallel_for(
            64,
            [&](std::size_t i) {
              std::atomic<long> inner{0};
              parallel_for(
                  8, [&](std::size_t j) { inner += static_cast<long>(j + i); },
                  &pool, 1);
              sum += inner.load();
            },
            &pool, 4);
        acc += sum.load();
      }
      results[c] = acc;
    });
  }
  for (auto& t : callers) t.join();
  // sum over i<64, j<8 of (i+j) = 64*28 + 8*2016 = 17920 per round.
  for (std::size_t c = 0; c < kCallers; ++c) {
    EXPECT_EQ(results[c], 17920L * kRounds) << "caller " << c;
  }
}

TEST(PoolHandle, ResolvesThreadsKnob) {
  // 1 = serial: no pool at all.
  EXPECT_EQ(resolve_threads(1).get(), nullptr);
  // 0 = the process-global pool.
  EXPECT_EQ(resolve_threads(0).get(), &ThreadPool::global());
  // N = dedicated pool with exactly N workers, owned by the handle.
  const PoolHandle h = resolve_threads(3);
  ASSERT_NE(h.get(), nullptr);
  EXPECT_NE(h.get(), &ThreadPool::global());
  EXPECT_EQ(h.get()->size(), 3u);
  std::atomic<int> count{0};
  parallel_for(100, [&](std::size_t) { ++count; }, h.get(), 1);
  EXPECT_EQ(count.load(), 100);
}

TEST(ParallelForRange, CoversAllIndicesExactlyOnce) {
  std::vector<std::atomic<int>> hits(5000);
  parallel_for_range(hits.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  }, nullptr, 32);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(CommModel, CostsGrowWithRanksAndBytes) {
  CommModel m;
  EXPECT_EQ(m.allreduce(1, 1024), 0.0);
  EXPECT_LT(m.allreduce(2, 1024), m.allreduce(64, 1024));
  EXPECT_LT(m.allreduce(64, 8), m.allreduce(64, 1 << 20));
  EXPECT_LT(m.barrier(2), m.barrier(512));
}

TEST(World, RanksSeeCorrectIds) {
  World world(4);
  std::vector<int> seen(4, -1);
  world.run([&](Comm& comm) {
    seen[comm.rank()] = static_cast<int>(comm.rank());
    EXPECT_EQ(comm.size(), 4u);
  });
  for (int r = 0; r < 4; ++r) EXPECT_EQ(seen[r], r);
}

TEST(World, AllreduceSum) {
  World world(8);
  world.run([](Comm& comm) {
    const double total = comm.allreduce_sum(
        static_cast<double>(comm.rank() + 1));
    EXPECT_DOUBLE_EQ(total, 36.0);  // 1+2+...+8
  });
}

TEST(World, AllreduceVector) {
  World world(3);
  world.run([](Comm& comm) {
    std::vector<double> v{static_cast<double>(comm.rank()), 1.0};
    comm.allreduce_sum(v);
    EXPECT_DOUBLE_EQ(v[0], 3.0);  // 0+1+2
    EXPECT_DOUBLE_EQ(v[1], 3.0);
  });
}

TEST(World, AllreduceMax) {
  World world(5);
  world.run([](Comm& comm) {
    const double mx = comm.allreduce_max(static_cast<double>(comm.rank()));
    EXPECT_DOUBLE_EQ(mx, 4.0);
  });
}

TEST(World, AllgatherOrderedByRank) {
  World world(4);
  world.run([](Comm& comm) {
    const std::vector<double> local{
        static_cast<double>(comm.rank() * 10),
        static_cast<double>(comm.rank() * 10 + 1)};
    const auto all = comm.allgather(local);
    ASSERT_EQ(all.size(), 8u);
    for (std::size_t r = 0; r < 4; ++r) {
      EXPECT_DOUBLE_EQ(all[2 * r], static_cast<double>(r * 10));
      EXPECT_DOUBLE_EQ(all[2 * r + 1], static_cast<double>(r * 10 + 1));
    }
  });
}

TEST(World, AllgatherRaggedSizes) {
  World world(3);
  world.run([](Comm& comm) {
    std::vector<std::size_t> local(comm.rank() + 1, comm.rank());
    const auto all = comm.allgather(local);
    EXPECT_EQ(all.size(), 6u);  // 1 + 2 + 3
    EXPECT_EQ(all[0], 0u);
    EXPECT_EQ(all[5], 2u);
  });
}

TEST(World, Broadcast) {
  World world(4);
  world.run([](Comm& comm) {
    std::vector<double> v;
    if (comm.is_root()) v = {3.0, 1.0, 4.0};
    comm.broadcast(v, 0);
    ASSERT_EQ(v.size(), 3u);
    EXPECT_DOUBLE_EQ(v[2], 4.0);
  });
}

TEST(World, BlockRangePartitionsExactly) {
  World world(3);
  std::vector<std::pair<std::size_t, std::size_t>> ranges(3);
  world.run([&](Comm& comm) {
    ranges[comm.rank()] = comm.block_range(10);
  });
  EXPECT_EQ(ranges[0].first, 0u);
  std::size_t total = 0;
  for (std::size_t r = 0; r < 3; ++r) {
    total += ranges[r].second - ranges[r].first;
    if (r > 0) {
      EXPECT_EQ(ranges[r].first, ranges[r - 1].second);
    }
  }
  EXPECT_EQ(total, 10u);
}

TEST(World, ReportsCpuAndCommTime) {
  World world(4);
  const auto report = world.run([](Comm& comm) {
    // Some busy work plus a collective.
    volatile double acc = 0.0;
    for (int i = 0; i < 100000; ++i) acc = acc + 1.0;
    comm.barrier();
  });
  EXPECT_EQ(report.nranks, 4u);
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GT(report.max_rank_cpu_seconds, 0.0);
  EXPECT_GE(report.sum_rank_cpu_seconds, report.max_rank_cpu_seconds);
  EXPECT_GT(report.modeled_comm_seconds, 0.0);
  EXPECT_GT(report.simulated_seconds(), 0.0);
}

TEST(World, ExceptionPropagates) {
  World world(3);
  EXPECT_THROW(world.run([](Comm& comm) {
    if (comm.rank() == 1) throw std::runtime_error("rank failure");
    comm.barrier();  // other ranks must not deadlock
  }),
               std::runtime_error);
}

TEST(World, SingleRankWorldWorks) {
  World world(1);
  world.run([](Comm& comm) {
    EXPECT_EQ(comm.allreduce_sum(5.0), 5.0);
    const auto all = comm.allgather(std::vector<double>{1.0});
    EXPECT_EQ(all.size(), 1u);
  });
}

}  // namespace
}  // namespace sickle
