// Unit tests: common (RNG, math helpers, CSV, config).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/config.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/mathx.hpp"
#include "common/rng.hpp"

namespace sickle {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_int(17), 17u);
  }
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NormalMoments) {
  Rng rng(9);
  const int n = 100000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, ForkedStreamsIndependent) {
  Rng base(42);
  Rng a = base.fork(1);
  Rng b = base.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkDeterministic) {
  Rng x = Rng(42).fork(7);
  Rng y = Rng(42).fork(7);
  EXPECT_EQ(x.next(), y.next());
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(1);
  const auto s = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(s.size(), 30u);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (const auto i : s) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng rng(2);
  const auto s = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(3);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), CheckError);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(4);
  const std::vector<double> w{0.0, 1.0, 3.0};
  std::size_t counts[3] = {0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.weighted_index(std::span<const double>(w))];
  }
  EXPECT_EQ(counts[0], 0u);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.25);
}

TEST(Rng, WeightedIndexAllZeroThrows) {
  Rng rng(5);
  const std::vector<double> w{0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(std::span<const double>(w)), CheckError);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(6);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(std::span<int>(v));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Mathx, MeanVarianceKnown) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_NEAR(variance(v), 5.0 / 3.0, 1e-12);
}

TEST(Mathx, MinMax) {
  const std::vector<double> v{3.0, -1.0, 2.0};
  const auto [lo, hi] = min_max(v);
  EXPECT_EQ(lo, -1.0);
  EXPECT_EQ(hi, 3.0);
}

TEST(Mathx, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(48));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_EQ(next_pow2(33), 64u);
  EXPECT_EQ(next_pow2(64), 64u);
  EXPECT_EQ(ceil_div(7, 3), 3u);
}

TEST(Mathx, XlogxOverY) {
  EXPECT_EQ(xlogx_over_y(0.0, 0.5), 0.0);
  EXPECT_TRUE(std::isinf(xlogx_over_y(0.5, 0.0)));
  EXPECT_NEAR(xlogx_over_y(0.5, 0.25), 0.5 * std::log(2.0), 1e-12);
}

TEST(Csv, RendersHeaderAndRows) {
  CsvTable t({"a", "b"});
  t.new_row();
  t.push(std::string("x"));
  t.push(1.5);
  const std::string s = t.to_string();
  EXPECT_EQ(s, "a,b\nx,1.5\n");
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, OverfilledRowThrows) {
  CsvTable t({"only"});
  t.new_row();
  t.push(1.0);
  EXPECT_THROW(t.push(2.0), CheckError);
}

TEST(Config, ParsesSectionsAndScalars) {
  const auto cfg = Config::parse(
      "shared:\n"
      "  dims: 3\n"
      "  cluster_var: pv\n"
      "subsample:\n"
      "  num_samples: 3277\n"
      "  method: maxent\n");
  EXPECT_EQ(cfg.get_int("shared", "dims"), 3);
  EXPECT_EQ(cfg.get_str("shared", "cluster_var"), "pv");
  EXPECT_EQ(cfg.get_int("subsample", "num_samples"), 3277);
}

TEST(Config, ParsesLists) {
  const auto cfg = Config::parse(
      "shared:\n"
      "  input_vars: [u, v, w, r]\n");
  const auto vars = cfg.get_list("shared", "input_vars");
  ASSERT_EQ(vars.size(), 4u);
  EXPECT_EQ(vars[0], "u");
  EXPECT_EQ(vars[3], "r");
}

TEST(Config, CommentsIgnored) {
  const auto cfg = Config::parse(
      "# header comment\n"
      "train:\n"
      "  epochs: 1000 # like the paper\n");
  EXPECT_EQ(cfg.get_int("train", "epochs"), 1000);
}

TEST(Config, DefaultsAndMissing) {
  const auto cfg = Config::parse("train:\n  batch: 16\n");
  EXPECT_EQ(cfg.get_int("train", "missing", 5), 5);
  EXPECT_THROW((void)cfg.get_int("train", "missing"), RuntimeError);
  EXPECT_TRUE(cfg.get_bool("train", "absent", true));
}

TEST(Config, MalformedLineThrows) {
  EXPECT_THROW(Config::parse("train:\n  not a kv pair\n"), RuntimeError);
}

TEST(Config, BadIntegerThrows) {
  const auto cfg = Config::parse("a:\n  k: xyz\n");
  EXPECT_THROW((void)cfg.get_int("a", "k"), RuntimeError);
}

TEST(Config, SetOverrides) {
  Config cfg;
  cfg.set("train", "epochs", "10");
  EXPECT_EQ(cfg.get_int("train", "epochs"), 10);
}

}  // namespace
}  // namespace sickle
