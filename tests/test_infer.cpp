// Tests for the microsecond surrogate inference engine: parity with the
// training-path forward across the model zoo, checkpoint round-trips, and
// magnitude pruning semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <filesystem>
#include <vector>

#include "infer/engine.hpp"
#include "infer/prune.hpp"
#include "ml/models.hpp"

namespace sickle::infer {
namespace {

namespace fs = std::filesystem;

/// RMS deviation between two equally-sized float sequences.
double rms(std::span<const float> a, std::span<const float> b) {
  EXPECT_EQ(a.size(), b.size());
  double sq = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    sq += d * d;
  }
  return std::sqrt(sq / static_cast<double>(a.size()));
}

std::vector<float> random_window(Rng& rng, std::size_t n) {
  std::vector<float> w(n);
  for (float& v : w) v = static_cast<float>(rng.normal());
  return w;
}

/// Training-path forward of a batch-1 window, flattened.
std::vector<float> model_forward(ml::LstmModel& model,
                                 std::span<const float> window,
                                 std::size_t steps, std::size_t in) {
  ml::Tensor x({1, steps, in},
               std::vector<float>(window.begin(), window.end()));
  const ml::Tensor y = model.forward(x);
  return {y.raw(), y.raw() + y.size()};
}

TEST(InferParity, LstmZooWithinTolerance) {
  struct Shape {
    std::size_t in, hidden, out, horizon, steps;
  };
  // The hidden-size ladder ends (2, 32) plus the fig6 drag-surrogate
  // shape (hidden 16, window 3) and odd intermediate sizes.
  const Shape zoo[] = {
      {2, 2, 1, 1, 3},  {3, 5, 1, 1, 4},   {4, 8, 2, 2, 3},
      {2, 16, 1, 1, 3}, {6, 27, 1, 3, 5},  {2, 32, 2, 1, 3},
  };
  std::uint64_t seed = 100;
  for (const Shape& s : zoo) {
    Rng rng(seed++);
    ml::LstmModelConfig cfg;
    cfg.in_channels = s.in;
    cfg.hidden = s.hidden;
    cfg.out_channels = s.out;
    cfg.horizon = s.horizon;
    ml::LstmModel model(cfg, rng);
    model.set_training(false);
    Engine engine = compile(model);
    EXPECT_EQ(engine.arch(), Engine::Arch::kLstmSurrogate);
    EXPECT_EQ(engine.hidden(), s.hidden);
    EXPECT_EQ(engine.input_features(), s.in);
    EXPECT_EQ(engine.output_features(), s.horizon * s.out);

    std::vector<float> out(engine.output_features());
    for (int trial = 0; trial < 4; ++trial) {
      const std::vector<float> window = random_window(rng, s.steps * s.in);
      const std::vector<float> want =
          model_forward(model, window, s.steps, s.in);
      engine.predict(window, out);
      EXPECT_LE(rms(out, want), 1e-6)
          << "hidden=" << s.hidden << " in=" << s.in;
    }
  }
}

TEST(InferParity, MlpAllActivations) {
  using ml::Activation;
  Rng rng(7);
  ml::Sequential seq;
  seq.push(std::make_unique<ml::Dense>(6, 16, rng));
  seq.push(std::make_unique<ml::ActivationLayer>(Activation::kRelu));
  seq.push(std::make_unique<ml::Dense>(16, 16, rng));
  seq.push(std::make_unique<ml::ActivationLayer>(Activation::kGelu));
  seq.push(std::make_unique<ml::Dropout>(0.5, rng));
  seq.push(std::make_unique<ml::Dense>(16, 8, rng));
  seq.push(std::make_unique<ml::ActivationLayer>(Activation::kTanh));
  seq.push(std::make_unique<ml::Dense>(8, 3, rng));
  seq.push(std::make_unique<ml::ActivationLayer>(Activation::kSigmoid));
  seq.set_training(false);

  Engine engine = compile(seq);
  EXPECT_EQ(engine.arch(), Engine::Arch::kMlp);
  EXPECT_EQ(engine.input_features(), 6u);
  EXPECT_EQ(engine.output_features(), 3u);

  std::vector<float> out(3);
  for (int trial = 0; trial < 4; ++trial) {
    const std::vector<float> x = random_window(rng, 6);
    ml::Tensor xt({1, 6}, std::vector<float>(x.begin(), x.end()));
    const ml::Tensor y = seq.forward(xt);
    engine.predict(x, out);
    EXPECT_LE(rms(out, y.data()), 1e-6);
  }
}

TEST(InferParity, RejectsUnsupportedChains) {
  Rng rng(8);
  ml::Sequential empty;
  EXPECT_THROW((void)compile(empty), RuntimeError);
  ml::Sequential norm;
  norm.push(std::make_unique<ml::Dense>(4, 4, rng));
  norm.push(std::make_unique<ml::LayerNorm>(4));
  EXPECT_THROW((void)compile(norm), RuntimeError);
}

TEST(InferEngine, HiddenOutsideLadderThrows) {
  for (const std::size_t hidden :
       {static_cast<std::size_t>(kMinHidden - 1),
        static_cast<std::size_t>(kMaxHidden + 1)}) {
    LstmWeights w;
    w.in = 2;
    w.hidden = hidden;
    EXPECT_THROW((void)Engine::from_weights(std::move(w)), RuntimeError);
  }
  Rng rng(9);
  ml::LstmModelConfig cfg;
  cfg.in_channels = 2;
  cfg.hidden = static_cast<std::size_t>(kMaxHidden) + 2;
  ml::LstmModel model(cfg, rng);
  EXPECT_THROW((void)compile(model), RuntimeError);
}

TEST(InferEngine, PredictValidatesExtents) {
  Rng rng(10);
  ml::LstmModelConfig cfg;
  cfg.in_channels = 3;
  cfg.hidden = 4;
  ml::LstmModel model(cfg, rng);
  Engine engine = compile(model);
  std::vector<float> out(engine.output_features());
  // Not a whole number of timesteps.
  EXPECT_THROW(engine.predict(std::vector<float>(7), out), CheckError);
  // Wrong output extent.
  std::vector<float> bad_out(engine.output_features() + 1);
  EXPECT_THROW(engine.predict(std::vector<float>(6), bad_out), CheckError);
  Engine empty;
  EXPECT_THROW(empty.predict(std::vector<float>(6), out), CheckError);
}

TEST(InferEngine, SaveLoadServesIdenticalPredictions) {
  Rng rng(11);
  ml::LstmModelConfig cfg;
  cfg.in_channels = 4;
  cfg.hidden = 12;
  cfg.out_channels = 2;
  ml::LstmModel model(cfg, rng);
  Engine engine = compile(model);

  const auto path =
      (fs::temp_directory_path() / "sickle_infer_roundtrip.bin").string();
  engine.save(path);
  Engine loaded = Engine::load(path);
  EXPECT_EQ(loaded.hidden(), engine.hidden());
  EXPECT_EQ(loaded.num_parameters(), engine.num_parameters());

  std::vector<float> a(engine.output_features());
  std::vector<float> b(loaded.output_features());
  for (int trial = 0; trial < 3; ++trial) {
    const std::vector<float> window = random_window(rng, 5 * 4);
    engine.predict(window, a);
    loaded.predict(window, b);
    // Bit-identical: same packed weights, same code path.
    EXPECT_EQ(std::vector<float>(a), std::vector<float>(b));
  }
  fs::remove(path);
}

/// Hand-built surrogate of H independent "pipelines": every recurrent
/// weight and the i/f/o gates are zero (those gates sit at
/// sigmoid(0) = 0.5), layer-2 channel j reads only layer-1 channel j,
/// and the g-gate input weights of layer-1 channel j are scaled by 2^j.
/// Channel contributions to the linear all-ones head are therefore
/// independent and exponentially graded: greedy magnitude pruning removes
/// pipeline 0, then 1, ..., and each removal's probe error dominates the
/// sum of all previous ones.
LstmWeights pipeline_weights(std::size_t in, std::size_t H, Rng& rng) {
  LstmWeights w;
  w.in = in;
  w.hidden = H;
  w.horizon = 1;
  w.out_channels = 1;
  w.wx1.assign(4 * H * in, 0.0f);
  w.wh1.assign(4 * H * H, 0.0f);
  w.b1.assign(4 * H, 0.0f);
  w.wx2.assign(4 * H * H, 0.0f);
  w.wh2.assign(4 * H * H, 0.0f);
  w.b2.assign(4 * H, 0.0f);
  constexpr std::size_t kGGate = 2;  // gate order i|f|g|o
  for (std::size_t j = 0; j < H; ++j) {
    const float scale =
        0.4f * std::pow(0.5f, static_cast<float>(H - 1 - j));
    for (std::size_t c = 0; c < in; ++c) {
      w.wx1[(kGGate * H + j) * in + c] =
          scale * (0.5f + 0.5f * static_cast<float>(rng.uniform()));
    }
    w.wx2[(kGGate * H + j) * H + j] = 1.0f;
  }
  PackedDense head;
  head.in = H;
  head.out = 1;
  head.act = Act::kIdentity;
  head.w.assign(H, 1.0f);
  head.b.assign(1, 0.0f);
  w.head.push_back(std::move(head));
  return w;
}

TEST(InferPrune, GreedyRmsGrowsMonotonically) {
  Rng rng(12);
  const std::size_t in = 3, H = 8;
  Engine engine = Engine::from_weights(pipeline_weights(in, H, rng));

  const std::size_t num_probes = 24, steps = 4;
  const std::vector<float> probes =
      random_window(rng, num_probes * steps * in);
  PruneOptions opts;
  opts.rms_threshold = 1e9;  // magnitude order alone drives the search
  PruneReport report = prune(engine, probes, num_probes, opts);
  EXPECT_FALSE(report.refused);
  EXPECT_EQ(report.final_hidden, static_cast<std::size_t>(kMinHidden));
  ASSERT_EQ(report.accepted.size(), H - static_cast<std::size_t>(kMinHidden));
  for (std::size_t i = 0; i + 1 < report.accepted.size(); ++i) {
    // Error vs the original engine is cumulative: each further channel
    // removal can only lose information the probes exercised.
    EXPECT_GE(report.accepted[i + 1].rms, report.accepted[i].rms * 0.999)
        << "step " << i;
  }
  EXPECT_EQ(report.final_rms, report.accepted.back().rms);
  EXPECT_EQ(engine.hidden(), report.final_hidden);
}

TEST(InferPrune, RefusesBelowThresholdAndLeavesEngineIntact) {
  Rng rng(13);
  ml::LstmModelConfig cfg;
  cfg.in_channels = 2;
  cfg.hidden = 6;
  ml::LstmModel model(cfg, rng);
  Engine engine = compile(model);

  const std::size_t num_probes = 8, steps = 3;
  const std::vector<float> probes =
      random_window(rng, num_probes * steps * cfg.in_channels);
  const std::vector<float> window = random_window(rng, steps * 2);
  std::vector<float> before(engine.output_features());
  engine.predict(window, before);

  PruneOptions opts;
  opts.rms_threshold = 0.0;  // nothing can pass
  PruneReport report = prune(engine, probes, num_probes, opts);
  EXPECT_TRUE(report.refused);
  EXPECT_TRUE(report.accepted.empty());
  EXPECT_EQ(report.final_hidden, cfg.hidden);
  EXPECT_EQ(engine.hidden(), cfg.hidden);

  std::vector<float> after(engine.output_features());
  engine.predict(window, after);
  EXPECT_EQ(before, after);
}

TEST(InferPrune, PrunedEngineStaysWithinThresholdAndRoundTrips) {
  Rng rng(14);
  ml::LstmModelConfig cfg;
  cfg.in_channels = 3;
  cfg.hidden = 16;
  ml::LstmModel model(cfg, rng);
  Engine original = compile(model);
  Engine engine = original;  // engines are cheap to copy

  const std::size_t num_probes = 32, steps = 4;
  const std::vector<float> probes =
      random_window(rng, num_probes * steps * cfg.in_channels);
  // Reference predictions of the unpruned engine.
  const std::size_t probe_len = steps * cfg.in_channels;
  std::vector<float> ref(num_probes);
  for (std::size_t p = 0; p < num_probes; ++p) {
    original.predict(
        std::span<const float>(probes).subspan(p * probe_len, probe_len),
        std::span<float>(ref).subspan(p, 1));
  }

  PruneOptions opts;
  opts.rms_threshold = 0.5;  // generous for a random-init surrogate
  PruneReport report = prune(engine, probes, num_probes, opts);
  ASSERT_FALSE(report.accepted.empty());
  EXPECT_LT(engine.hidden(), cfg.hidden);
  EXPECT_LE(report.final_rms, opts.rms_threshold);

  // Independently re-measure the pruned engine against the original.
  double sq = 0.0;
  std::vector<float> out(1);
  for (std::size_t p = 0; p < num_probes; ++p) {
    engine.predict(
        std::span<const float>(probes).subspan(p * probe_len, probe_len),
        out);
    const double d =
        static_cast<double>(out[0]) - static_cast<double>(ref[p]);
    sq += d * d;
  }
  EXPECT_LE(std::sqrt(sq / static_cast<double>(num_probes)),
            opts.rms_threshold + 1e-12);

  // Prune -> save -> load -> bit-identical predictions.
  const auto path =
      (fs::temp_directory_path() / "sickle_infer_pruned.bin").string();
  engine.save(path);
  Engine loaded = Engine::load(path);
  EXPECT_EQ(loaded.hidden(), engine.hidden());
  std::vector<float> a(1), b(1);
  for (int trial = 0; trial < 3; ++trial) {
    const std::vector<float> window =
        random_window(rng, steps * cfg.in_channels);
    engine.predict(window, a);
    loaded.predict(window, b);
    EXPECT_EQ(a[0], b[0]);
  }
  fs::remove(path);
}

TEST(InferPrune, MaxChannelsPrunesToExactTarget) {
  Rng rng(15);
  ml::LstmModelConfig cfg;
  cfg.in_channels = 2;
  cfg.hidden = 12;
  ml::LstmModel model(cfg, rng);
  Engine engine = compile(model);

  const std::size_t num_probes = 8;
  const std::vector<float> probes =
      random_window(rng, num_probes * 3 * cfg.in_channels);
  PruneOptions opts;
  opts.rms_threshold = 1e9;
  opts.max_channels = 4;
  PruneReport report = prune(engine, probes, num_probes, opts);
  EXPECT_FALSE(report.refused);
  EXPECT_EQ(report.accepted.size(), 4u);
  EXPECT_EQ(engine.hidden(), 8u);
  EXPECT_EQ(report.initial_hidden, 12u);
  EXPECT_EQ(report.final_hidden, 8u);
}

TEST(InferPrune, CandidatePicksSmallestMagnitudeChannel) {
  Rng rng(16);
  LstmWeights w = pipeline_weights(3, 8, rng);
  Engine engine = Engine::from_weights(std::move(w));
  // pipeline_weights grades layer-1 channel j at 2^j, so channel 0 is the
  // smallest; layer-2 channels all look identical (unit diagonal read,
  // unit head fan-out), so argmin resolves the tie to channel 0.
  const auto [c1, c2] = find_pruning_candidate(engine);
  EXPECT_EQ(c1, 0u);
  EXPECT_EQ(c2, 0u);
}

}  // namespace
}  // namespace sickle::infer
