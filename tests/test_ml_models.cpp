// Tests for the paper's model architectures (Table 2 + foundation model).
#include <gtest/gtest.h>

#include "grad_check.hpp"
#include "ml/models.hpp"

namespace sickle::ml {
namespace {

using testing::check_gradients;

TEST(LstmModel, OutputShape) {
  Rng rng(1);
  LstmModelConfig cfg;
  cfg.in_channels = 3;
  cfg.hidden = 8;
  cfg.out_channels = 2;
  cfg.horizon = 2;
  LstmModel model(cfg, rng);
  const Tensor x = Tensor::randn({4, 5, 3}, rng);
  EXPECT_EQ(model.forward(x).shape(),
            (std::vector<std::size_t>{4, 2, 2}));
}

TEST(LstmModel, GradCheck) {
  Rng rng(2);
  LstmModelConfig cfg;
  cfg.in_channels = 2;
  cfg.hidden = 4;
  cfg.out_channels = 1;
  LstmModel model(cfg, rng);
  testing::GradCheckOptions opts;
  opts.eps = 5e-3f;
  opts.rtol = 3e-2;
  check_gradients(model, Tensor::randn({2, 3, 2}, rng), 11, opts);
}

TEST(GridDecoder, ProducesRequestedCube) {
  Rng rng(3);
  GridDecoder dec(16, 2, 8, rng);
  const Tensor x = Tensor::randn({3, 16}, rng);
  EXPECT_EQ(dec.forward(x).shape(),
            (std::vector<std::size_t>{3, 2, 8, 8, 8}));
}

TEST(GridDecoder, RejectsNonMultipleOf4Edge) {
  Rng rng(4);
  EXPECT_THROW(GridDecoder(16, 1, 6, rng), CheckError);
}

TEST(GridDecoder, GradCheck) {
  Rng rng(5);
  GridDecoder dec(8, 1, 4, rng);
  testing::GradCheckOptions opts;
  opts.eps = 5e-3f;
  opts.rtol = 3e-2;
  check_gradients(dec, Tensor::randn({2, 8}, rng), 21, opts);
}

TEST(MlpTransformer, OutputShape) {
  Rng rng(6);
  MlpTransformerConfig cfg;
  cfg.in_channels = 3;
  cfg.num_points = 16;
  cfg.dim = 16;
  cfg.heads = 2;
  cfg.layers = 1;
  cfg.ffn = 32;
  cfg.out_channels = 1;
  cfg.out_edge = 8;
  MlpTransformer model(cfg, rng);
  const Tensor x = Tensor::randn({2, 3, 3 * 16}, rng);
  EXPECT_EQ(model.forward(x).shape(),
            (std::vector<std::size_t>{2, 1, 8, 8, 8}));
  EXPECT_GT(model.num_parameters(), 1000u);
  EXPECT_GT(model.flops(), 0.0);
}

TEST(MlpTransformer, GradCheck) {
  Rng rng(7);
  MlpTransformerConfig cfg;
  cfg.in_channels = 2;
  cfg.num_points = 4;
  cfg.dim = 8;
  cfg.heads = 2;
  cfg.layers = 1;
  cfg.ffn = 16;
  cfg.out_channels = 1;
  cfg.out_edge = 4;
  MlpTransformer model(cfg, rng);
  testing::GradCheckOptions opts;
  opts.eps = 5e-3f;
  opts.rtol = 4e-2;
  opts.atol = 4e-3;
  check_gradients(model, Tensor::randn({1, 2, 8}, rng), 31, opts);
}

TEST(CnnTransformer, OutputShape) {
  Rng rng(8);
  CnnTransformerConfig cfg;
  cfg.in_channels = 2;
  cfg.edge = 8;
  cfg.dim = 16;
  cfg.heads = 2;
  cfg.layers = 1;
  cfg.ffn = 32;
  cfg.out_channels = 1;
  cfg.out_edge = 8;
  CnnTransformer model(cfg, rng);
  const Tensor x = Tensor::randn({2, 2, 2, 8, 8, 8}, rng);
  EXPECT_EQ(model.forward(x).shape(),
            (std::vector<std::size_t>{2, 1, 8, 8, 8}));
}

TEST(CnnTransformer, GradCheck) {
  Rng rng(9);
  CnnTransformerConfig cfg;
  cfg.in_channels = 1;
  cfg.edge = 4;
  cfg.dim = 8;
  cfg.heads = 2;
  cfg.layers = 1;
  cfg.ffn = 16;
  cfg.out_channels = 1;
  cfg.out_edge = 4;
  CnnTransformer model(cfg, rng);
  testing::GradCheckOptions opts;
  opts.eps = 5e-3f;
  opts.rtol = 4e-2;
  opts.atol = 4e-3;
  check_gradients(model, Tensor::randn({1, 2, 1, 4, 4, 4}, rng), 41, opts);
}

TEST(FoundationModel, OutputShapeAndRefinement) {
  Rng rng(10);
  FoundationModelConfig cfg;
  cfg.in_channels = 2;
  cfg.edge = 8;
  cfg.patch = 4;
  cfg.dim = 16;
  cfg.heads = 2;
  cfg.layers = 1;
  cfg.ffn = 32;
  cfg.out_channels = 1;
  cfg.adaptive_fraction = 0.25;
  FoundationModel model(cfg, rng);
  const Tensor x = Tensor::randn({2, 2, 8, 8, 8}, rng);
  EXPECT_EQ(model.forward(x).shape(),
            (std::vector<std::size_t>{2, 1, 8, 8, 8}));
  // 8 patches per example, 25% refined -> 2 per example, 2 examples.
  EXPECT_EQ(model.refined_patches().size(), 4u);
}

TEST(FoundationModel, RefinesHighVariancePatches) {
  Rng rng(11);
  FoundationModelConfig cfg;
  cfg.in_channels = 1;
  cfg.edge = 8;
  cfg.patch = 4;
  cfg.dim = 8;
  cfg.heads = 2;
  cfg.layers = 1;
  cfg.ffn = 16;
  cfg.out_channels = 1;
  cfg.adaptive_fraction = 0.13;  // 1 of 8 patches
  FoundationModel model(cfg, rng);
  // Flat field except one noisy patch (patch id 7: corner x,y,z in [4,8)).
  Tensor x({1, 1, 8, 8, 8});
  Rng noise(12);
  for (std::size_t z = 4; z < 8; ++z) {
    for (std::size_t y = 4; y < 8; ++y) {
      for (std::size_t xx = 4; xx < 8; ++xx) {
        x[(z * 8 + y) * 8 + xx] = static_cast<float>(noise.normal());
      }
    }
  }
  (void)model.forward(x);
  ASSERT_EQ(model.refined_patches().size(), 1u);
  EXPECT_EQ(model.refined_patches()[0], 7u);
}

TEST(FoundationModel, ParamGradCheck) {
  // Input gradients are not propagated (the model is the graph's top), so
  // check parameters only — probe via a wrapper asserting param grads.
  Rng rng(13);
  FoundationModelConfig cfg;
  cfg.in_channels = 1;
  cfg.edge = 4;
  cfg.patch = 2;
  cfg.dim = 8;
  cfg.heads = 2;
  cfg.layers = 1;
  cfg.ffn = 16;
  cfg.out_channels = 1;
  cfg.adaptive_fraction = 0.3;
  FoundationModel model(cfg, rng);
  model.set_training(false);

  const Tensor x = Tensor::randn({1, 1, 4, 4, 4}, rng);
  Tensor y = model.forward(x);
  Rng crng(14);
  const Tensor coeff = Tensor::randn(y.shape(), crng, 1.0f);
  model.zero_grad();
  (void)model.backward(coeff);

  const float eps = 5e-3f;
  Rng probe_rng(15);
  for (Param* p : model.parameters()) {
    const std::size_t n = p->value.size();
    const auto probes =
        n <= 8 ? [&] {
          std::vector<std::size_t> all(n);
          for (std::size_t i = 0; i < n; ++i) all[i] = i;
          return all;
        }()
               : probe_rng.sample_without_replacement(n, 8);
    for (const std::size_t i : probes) {
      const float saved = p->value[i];
      p->value[i] = saved + eps;
      const double lp = testing::linear_loss(model.forward(x), coeff);
      p->value[i] = saved - eps;
      const double lm = testing::linear_loss(model.forward(x), coeff);
      p->value[i] = saved;
      const double numeric = (lp - lm) / (2.0 * eps);
      const double tol = 4e-3 + 4e-2 * std::max(std::abs(numeric),
                                                std::abs(static_cast<double>(
                                                    p->grad[i])));
      EXPECT_NEAR(p->grad[i], numeric, tol) << p->name << "[" << i << "]";
    }
  }
}

}  // namespace
}  // namespace sickle::ml
