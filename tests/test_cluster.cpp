// Unit tests: k-means and MiniBatchKMeans.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cluster/kmeans.hpp"
#include "common/error.hpp"

namespace sickle::cluster {
namespace {

/// Three well-separated 1D blobs.
std::vector<double> three_blobs(Rng& rng, std::size_t per_blob) {
  std::vector<double> data;
  data.reserve(3 * per_blob);
  for (const double center : {0.0, 10.0, 20.0}) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      data.push_back(center + 0.3 * rng.normal());
    }
  }
  return data;
}

TEST(KMeans, RecoversSeparatedBlobs) {
  Rng rng(1);
  const auto data = three_blobs(rng, 200);
  KMeansOptions opts;
  opts.k = 3;
  const auto result = kmeans(data, data.size(), 1, opts, rng);
  std::vector<double> centers(result.centroids);
  std::sort(centers.begin(), centers.end());
  EXPECT_NEAR(centers[0], 0.0, 0.5);
  EXPECT_NEAR(centers[1], 10.0, 0.5);
  EXPECT_NEAR(centers[2], 20.0, 0.5);
}

TEST(KMeans, LabelsConsistentWithCentroids) {
  Rng rng(2);
  const auto data = three_blobs(rng, 100);
  KMeansOptions opts;
  opts.k = 3;
  const auto result = kmeans(data, data.size(), 1, opts, rng);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(result.labels[i],
              result.assign(std::span<const double>(&data[i], 1)));
  }
}

TEST(KMeans, AssignBatchMatchesPerPointAssign1D) {
  Rng rng(21);
  const auto data = three_blobs(rng, 150);
  KMeansOptions opts;
  opts.k = 4;
  const auto result = kmeans(data, data.size(), 1, opts, rng);
  std::vector<std::uint32_t> labels(data.size());
  result.assign_batch(data, std::span<std::uint32_t>(labels));
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(labels[i], result.assign(std::span<const double>(&data[i], 1)))
        << "point " << i;
  }
}

TEST(KMeans, AssignBatchMatchesPerPointAssignMultiDim) {
  Rng rng(22);
  std::vector<double> data(120 * 3);
  for (double& x : data) x = rng.normal();
  KMeansOptions opts;
  opts.k = 5;
  const auto result = kmeans(data, 120, 3, opts, rng);
  std::vector<std::uint32_t> labels(120);
  result.assign_batch(data, std::span<std::uint32_t>(labels));
  for (std::size_t i = 0; i < 120; ++i) {
    EXPECT_EQ(labels[i],
              result.assign(std::span<const double>(data).subspan(i * 3, 3)));
  }
}

TEST(KMeans, AssignBatchSizeMismatchThrows) {
  Rng rng(23);
  const auto data = three_blobs(rng, 20);
  KMeansOptions opts;
  opts.k = 2;
  const auto result = kmeans(data, data.size(), 1, opts, rng);
  std::vector<std::uint32_t> labels(data.size() + 1);
  EXPECT_THROW(
      result.assign_batch(data, std::span<std::uint32_t>(labels)),
      CheckError);
}

TEST(KMeans, SizesSumToN) {
  Rng rng(3);
  const auto data = three_blobs(rng, 50);
  KMeansOptions opts;
  opts.k = 5;
  const auto result = kmeans(data, data.size(), 1, opts, rng);
  std::size_t total = 0;
  for (const auto s : result.sizes) total += s;
  EXPECT_EQ(total, data.size());
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  Rng rng(4);
  const auto data = three_blobs(rng, 100);
  KMeansOptions opts1;
  opts1.k = 1;
  KMeansOptions opts6;
  opts6.k = 6;
  Rng r1(10), r2(10);
  const auto one = kmeans(data, data.size(), 1, opts1, r1);
  const auto six = kmeans(data, data.size(), 1, opts6, r2);
  EXPECT_LT(six.inertia, one.inertia);
}

TEST(KMeans, KEqualsNGivesZeroInertia) {
  const std::vector<double> data{1.0, 2.0, 3.0, 4.0};
  KMeansOptions opts;
  opts.k = 4;
  Rng rng(5);
  const auto result = kmeans(data, 4, 1, opts, rng);
  EXPECT_NEAR(result.inertia, 0.0, 1e-20);
}

TEST(KMeans, RejectsMoreClustersThanPoints) {
  const std::vector<double> data{1.0, 2.0};
  KMeansOptions opts;
  opts.k = 3;
  Rng rng(6);
  EXPECT_THROW(kmeans(data, 2, 1, opts, rng), CheckError);
}

TEST(KMeans, MultiDimensional) {
  Rng rng(7);
  std::vector<double> data;
  for (int blob = 0; blob < 2; ++blob) {
    for (int i = 0; i < 100; ++i) {
      data.push_back(blob * 5.0 + 0.2 * rng.normal());
      data.push_back(blob * -3.0 + 0.2 * rng.normal());
    }
  }
  KMeansOptions opts;
  opts.k = 2;
  const auto result = kmeans(data, 200, 2, opts, rng);
  EXPECT_EQ(result.dims, 2u);
  // Cluster centres near (0,0) and (5,-3) in some order.
  const double c0x = result.centroids[0], c1x = result.centroids[2];
  EXPECT_NEAR(std::min(c0x, c1x), 0.0, 0.5);
  EXPECT_NEAR(std::max(c0x, c1x), 5.0, 0.5);
}

TEST(MiniBatchKMeans, ApproximatesBlobCenters) {
  Rng rng(8);
  const auto data = three_blobs(rng, 500);
  KMeansOptions opts;
  opts.k = 3;
  opts.max_iterations = 60;
  opts.batch_size = 256;
  const auto result = minibatch_kmeans(data, data.size(), 1, opts, rng);
  std::vector<double> centers(result.centroids);
  std::sort(centers.begin(), centers.end());
  EXPECT_NEAR(centers[0], 0.0, 1.0);
  EXPECT_NEAR(centers[1], 10.0, 1.0);
  EXPECT_NEAR(centers[2], 20.0, 1.0);
}

TEST(MiniBatchKMeans, DeterministicGivenSeed) {
  Rng r1(9), r2(9);
  std::vector<double> data;
  Rng gen(10);
  for (int i = 0; i < 500; ++i) data.push_back(gen.normal());
  KMeansOptions opts;
  opts.k = 4;
  const auto a = minibatch_kmeans(data, data.size(), 1, opts, r1);
  const auto b = minibatch_kmeans(data, data.size(), 1, opts, r2);
  for (std::size_t i = 0; i < a.centroids.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.centroids[i], b.centroids[i]);
  }
}

TEST(SquaredDistance, Basics) {
  const std::vector<double> a{0.0, 0.0};
  const std::vector<double> b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(squared_distance(a, a), 0.0);
}

}  // namespace
}  // namespace sickle::cluster
