// Unit tests: grids, snapshots, hypercube tiling, derived variables.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "field/derived.hpp"
#include "field/field.hpp"
#include "field/hypercube.hpp"

namespace sickle::field {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(GridShape, IndexingIsZFastest) {
  GridShape s{4, 3, 2};
  EXPECT_EQ(s.size(), 24u);
  EXPECT_EQ(s.index(0, 0, 0), 0u);
  EXPECT_EQ(s.index(0, 0, 1), 1u);
  EXPECT_EQ(s.index(0, 1, 0), 2u);
  EXPECT_EQ(s.index(1, 0, 0), 6u);
}

TEST(Field, PeriodicAccessWraps) {
  Field f("x", {4, 4, 1});
  f.at(0, 0) = 7.0;
  EXPECT_DOUBLE_EQ(f.at_periodic(-4, 0, 0), 7.0);
  EXPECT_DOUBLE_EQ(f.at_periodic(4, 4, 0), 7.0);
  EXPECT_DOUBLE_EQ(f.at_periodic(-1, 0, 0), f.at(3, 0));
}

TEST(Snapshot, AddAndRetrieveFields) {
  Snapshot snap({2, 2, 1}, 1.5);
  snap.add("u").at(1, 1) = 3.0;
  EXPECT_TRUE(snap.has("u"));
  EXPECT_FALSE(snap.has("v"));
  EXPECT_DOUBLE_EQ(snap.get("u").at(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(snap.time(), 1.5);
  EXPECT_THROW((void)snap.get("v"), CheckError);
  EXPECT_THROW(snap.add("u"), CheckError);
}

TEST(Snapshot, ValuesAtGathersFeatureVector) {
  Snapshot snap({2, 1, 1});
  snap.add("a", {1.0, 2.0});
  snap.add("b", {10.0, 20.0});
  const std::vector<std::string> vars{"b", "a"};
  const auto v = snap.values_at(vars, 1);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0], 20.0);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
}

TEST(Dataset, EnforcesConsistentShapes) {
  Dataset ds("test");
  ds.push(Snapshot({4, 4, 1}));
  EXPECT_THROW(ds.push(Snapshot({8, 4, 1})), CheckError);
  EXPECT_EQ(ds.num_snapshots(), 1u);
}

TEST(Dataset, BytesCountsPayload) {
  Dataset ds("test");
  Snapshot s({10, 10, 1});
  s.add("u");
  s.add("v");
  ds.push(std::move(s));
  EXPECT_EQ(ds.bytes(), 2u * 100u * sizeof(double));
}

TEST(CubeTiling, CountsAndCoords) {
  CubeTiling tiling({64, 32, 16}, CubeSpec{16, 16, 16});
  EXPECT_EQ(tiling.tiles_x(), 4u);
  EXPECT_EQ(tiling.tiles_y(), 2u);
  EXPECT_EQ(tiling.tiles_z(), 1u);
  EXPECT_EQ(tiling.count(), 8u);
  for (std::size_t i = 0; i < tiling.count(); ++i) {
    EXPECT_EQ(tiling.flat(tiling.coord(i)), i);
  }
}

TEST(CubeTiling, DropsPartialCubes) {
  CubeTiling tiling({70, 33, 17}, CubeSpec{16, 16, 16});
  EXPECT_EQ(tiling.tiles_x(), 4u);
  EXPECT_EQ(tiling.tiles_y(), 2u);
  EXPECT_EQ(tiling.tiles_z(), 1u);
}

TEST(CubeTiling, GridSmallerThanCubeThrows) {
  EXPECT_THROW(CubeTiling({8, 8, 8}, CubeSpec{16, 16, 16}), CheckError);
}

TEST(CubeTiling, PointIndicesAreDistinctAndInCube) {
  GridShape grid{8, 8, 8};
  CubeTiling tiling(grid, CubeSpec{4, 4, 4});
  const auto idx = tiling.point_indices({1, 0, 1});
  EXPECT_EQ(idx.size(), 64u);
  std::set<std::size_t> uniq(idx.begin(), idx.end());
  EXPECT_EQ(uniq.size(), 64u);
  // All points in x in [4,8), y in [0,4), z in [4,8).
  for (const auto flat : idx) {
    const std::size_t iz = flat % 8;
    const std::size_t iy = (flat / 8) % 8;
    const std::size_t ix = flat / 64;
    EXPECT_GE(ix, 4u);
    EXPECT_LT(iy, 4u);
    EXPECT_GE(iz, 4u);
  }
}

TEST(CubeTiling, DisjointCubesPartitionGrid) {
  GridShape grid{8, 8, 8};
  CubeTiling tiling(grid, CubeSpec{4, 4, 4});
  std::set<std::size_t> all;
  for (std::size_t c = 0; c < tiling.count(); ++c) {
    for (const auto i : tiling.point_indices(tiling.coord(c))) {
      EXPECT_TRUE(all.insert(i).second) << "duplicate point across cubes";
    }
  }
  EXPECT_EQ(all.size(), grid.size());
}

TEST(ExtractCube, CarriesValuesAndIndices) {
  Snapshot snap({4, 4, 1});
  auto& f = snap.add("u");
  for (std::size_t ix = 0; ix < 4; ++ix) {
    for (std::size_t iy = 0; iy < 4; ++iy) {
      f.at(ix, iy) = static_cast<double>(ix * 10 + iy);
    }
  }
  CubeTiling tiling(snap.shape(), CubeSpec{2, 2, 1});
  const std::vector<std::string> vars{"u"};
  const auto cube = extract_cube(snap, tiling, {1, 1, 0}, vars);
  EXPECT_EQ(cube.points(), 4u);
  // Cube (1,1) covers ix in {2,3}, iy in {2,3}.
  EXPECT_DOUBLE_EQ(cube.values[0][0], 22.0);
  EXPECT_DOUBLE_EQ(cube.values[0][3], 33.0);
  const auto feat = cube.feature(0);
  EXPECT_DOUBLE_EQ(feat[0], 22.0);
}

TEST(Derived, CentralDerivativeOfSine) {
  const std::size_t n = 64;
  Snapshot snap({n, 4, 1});
  auto& f = snap.add("u");
  for (std::size_t ix = 0; ix < n; ++ix) {
    for (std::size_t iy = 0; iy < 4; ++iy) {
      f.at(ix, iy) = std::sin(2.0 * kPi * static_cast<double>(ix) / n);
    }
  }
  const auto df = central_derivative(f, 0);
  // d/dix sin(2 pi ix / n) = (2 pi / n) cos(...) in index units.
  const double k = 2.0 * kPi / static_cast<double>(n);
  for (std::size_t ix = 0; ix < n; ++ix) {
    EXPECT_NEAR(df[snap.shape().index(ix, 0, 0)],
                k * std::cos(k * static_cast<double>(ix)), 1e-3);
  }
}

TEST(Derived, VorticityOfRigidRotation) {
  // u = -y', v = x' around the grid centre => wz = 2 (in index units).
  const std::size_t n = 16;
  Snapshot snap({n, n, 1});
  auto& u = snap.add("u");
  auto& v = snap.add("v");
  const double c = (n - 1) / 2.0;
  for (std::size_t ix = 0; ix < n; ++ix) {
    for (std::size_t iy = 0; iy < n; ++iy) {
      u.at(ix, iy) = -(static_cast<double>(iy) - c);
      v.at(ix, iy) = static_cast<double>(ix) - c;
    }
  }
  add_vorticity_2d(snap);
  // Interior points (periodic wrap corrupts edges of this non-periodic
  // test flow).
  for (std::size_t ix = 2; ix < n - 2; ++ix) {
    for (std::size_t iy = 2; iy < n - 2; ++iy) {
      EXPECT_NEAR(snap.get("wz").at(ix, iy), 2.0, 1e-9);
    }
  }
}

TEST(Derived, EnstrophyNonNegative) {
  Snapshot snap({8, 8, 8});
  Rng rng(1);
  for (const char* v : {"u", "v", "w"}) {
    auto& f = snap.add(v);
    for (auto& x : f.data()) x = rng.normal();
  }
  add_enstrophy_3d(snap);
  for (const double e : snap.get("enstrophy").data()) {
    EXPECT_GE(e, 0.0);
  }
}

TEST(Derived, DissipationNonNegativeAndZeroForUniformFlow) {
  Snapshot snap({8, 8, 8});
  for (const char* v : {"u", "v", "w"}) {
    auto& f = snap.add(v);
    for (auto& x : f.data()) x = 3.0;  // uniform translation
  }
  add_dissipation_3d(snap);
  for (const double e : snap.get("eps").data()) {
    EXPECT_NEAR(e, 0.0, 1e-12);
  }
}

TEST(Derived, PotentialVorticityZeroForUnstratifiedUniformDensity) {
  Snapshot snap({8, 8, 8});
  Rng rng(2);
  for (const char* v : {"u", "v", "w"}) {
    auto& f = snap.add(v);
    for (auto& x : f.data()) x = rng.normal();
  }
  auto& rho = snap.add("rho");
  for (auto& x : rho.data()) x = 1.0;  // constant density -> zero gradient
  add_potential_vorticity_3d(snap);
  for (const double q : snap.get("pv").data()) {
    EXPECT_NEAR(q, 0.0, 1e-12);
  }
}

}  // namespace
}  // namespace sickle::field
