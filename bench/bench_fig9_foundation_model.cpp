// Fig. 9: MATEY-like foundation model on SST-P1F4 at a 10% sampling rate
// with uniform / random / MaxEnt point selection.
//
// Protocol: the same hypercubes (Hrandom, fixed seed) feed all three
// strategies; each strategy keeps 10% of the voxels and the model learns
// masked reconstruction (kept voxels -> dense output field). The paper's
// result is close: random 0.252, MaxEnt 0.262, uniform 0.295 validation
// loss with energies within ~6% — i.e. random and MaxEnt tie, uniform
// trails. "uniform" here is Latin-hypercube (uniform-in-space) selection.
#include <cstdio>

#include "bench_util.hpp"
#include "ml/models.hpp"
#include "ml/trainer.hpp"
#include "sampling/hypercube_selector.hpp"
#include "sampling/point_samplers.hpp"
#include "sickle/dataset_zoo.hpp"

using namespace sickle;

namespace {

/// Per-variable z-score over the whole dataset (losses comparable across
/// strategies and variables).
struct Scaler {
  double mean = 0.0, inv_std = 1.0;
};
std::map<std::string, Scaler> fit_scalers(const DatasetBundle& bundle) {
  std::map<std::string, Scaler> out;
  std::vector<std::string> vars = bundle.input_vars;
  vars.insert(vars.end(), bundle.output_vars.begin(),
              bundle.output_vars.end());
  for (const auto& var : vars) {
    double sum = 0.0, sq = 0.0;
    std::size_t n = 0;
    for (std::size_t t = 0; t < bundle.data.num_snapshots(); ++t) {
      for (const double x : bundle.data.snapshot(t).get(var).data()) {
        sum += x;
        sq += x * x;
        ++n;
      }
    }
    Scaler s;
    s.mean = sum / static_cast<double>(n);
    s.inv_std = 1.0 / std::sqrt(std::max(
                          sq / static_cast<double>(n) - s.mean * s.mean,
                          1e-24));
    out[var] = s;
  }
  return out;
}

/// Masked-cube dataset: inputs are the cube's input variables with
/// unselected voxels zeroed; targets are the dense output cube.
ml::TensorDataset build_masked_dataset(const DatasetBundle& bundle,
                                       const std::string& method,
                                       std::size_t edge, double rate,
                                       energy::EnergyCounter* energy) {
  const auto scalers = fit_scalers(bundle);
  const field::CubeTiling tiling(bundle.data.shape(), {edge, edge, edge});
  std::vector<std::string> vars = bundle.input_vars;
  for (const auto& v : bundle.output_vars) vars.push_back(v);
  if (std::find(vars.begin(), vars.end(), bundle.cluster_var) == vars.end()) {
    vars.push_back(bundle.cluster_var);
  }

  sampling::SamplerContext ctx;
  ctx.phase_variables = bundle.input_vars;
  ctx.cluster_var = bundle.cluster_var;
  ctx.num_samples =
      static_cast<std::size_t>(rate * static_cast<double>(edge * edge * edge));
  ctx.num_clusters = 5;
  ctx.energy = energy;
  auto sampler = sampling::SamplerRegistry::instance().create(method);

  ml::TensorDataset data;
  const std::size_t ci = bundle.input_vars.size();
  const std::size_t co = bundle.output_vars.size();
  for (std::size_t t = 0; t < bundle.data.num_snapshots(); ++t) {
    const auto& snap = bundle.data.snapshot(t);
    // Same cube set for every strategy (Hrandom, fixed seed per snapshot).
    sampling::HypercubeSelectorConfig hsel;
    hsel.method = "random";
    hsel.num_hypercubes = 6;
    hsel.cluster_var = bundle.cluster_var;
    hsel.seed = 7 + t;
    const auto cube_ids = select_hypercubes(snap, tiling, hsel);

    for (const auto cube_id : cube_ids) {
      const auto cube = field::extract_cube(
          snap, tiling, tiling.coord(cube_id),
          std::span<const std::string>(vars));
      Rng rng = Rng(11).fork(t * 1000 + cube_id);
      const auto sel = sampler->select(cube, ctx, rng);

      std::vector<float> in(ci * cube.points(), 0.0f);
      for (const auto p : sel) {
        for (std::size_t c = 0; c < ci; ++c) {
          const Scaler& s = scalers.at(bundle.input_vars[c]);
          in[c * cube.points() + p] = static_cast<float>(
              (cube.values[c][p] - s.mean) * s.inv_std);
        }
      }
      std::vector<float> out(co * cube.points());
      for (std::size_t c = 0; c < co; ++c) {
        const auto& col = cube.values[ci + c];
        const Scaler& s = scalers.at(bundle.output_vars[c]);
        for (std::size_t p = 0; p < cube.points(); ++p) {
          out[c * cube.points() + p] =
              static_cast<float>((col[p] - s.mean) * s.inv_std);
        }
      }
      data.push(ml::Tensor({ci, edge, edge, edge}, std::move(in)),
                ml::Tensor({co, edge, edge, edge}, std::move(out)));
    }
  }
  return data;
}

}  // namespace

int main() {
  bench::banner("Fig. 9 — foundation model (MATEY-like) @10% sampling",
                "paper: random 0.252 / maxent 0.262 / uniform 0.295 val "
                "loss; energies within ~6%");

  const auto bundle = make_dataset("SST-P1F4", 42, 0.5);
  const std::size_t edge = 8;

  bench::row_header({"strategy", "val_loss", "total_kJ", "params"});
  struct Row {
    std::string name;
    double loss, kj;
  };
  std::vector<Row> rows;
  const std::pair<const char*, const char*> strategies[] = {
      {"uniform", "lhs"}, {"random", "random"}, {"maxent", "maxent"}};
  for (const auto& [label, method] : strategies) {
    energy::EnergyCounter sampling_energy;
    const auto data =
        build_masked_dataset(bundle, method, edge, 0.10, &sampling_energy);
    Rng mrng(3);  // identical init across strategies
    ml::FoundationModelConfig fc;
    fc.in_channels = bundle.input_vars.size();
    fc.edge = edge;
    fc.patch = 4;
    fc.dim = 24;
    fc.heads = 2;
    fc.layers = 1;
    fc.ffn = 48;
    fc.out_channels = bundle.output_vars.size();
    ml::FoundationModel model(fc, mrng);
    ml::TrainConfig tc;
    tc.epochs = 40;
    tc.batch = 4;
    tc.lr = 2e-3;
    tc.patience = 10;
    tc.seed = 5;
    const auto report = ml::fit(model, data, tc);
    const double kj = report.energy.projected_kilojoules() +
                      sampling_energy.projected_kilojoules();
    std::printf("%-22s%-22.4f%-22.6f%-22zu\n", label, report.test_loss, kj,
                report.parameters);
    rows.push_back({label, report.test_loss, kj});
  }
  std::printf("\nshape check: uniform should trail random/maxent (paper); "
              "random and maxent close.\n");
  std::printf("  loss uniform/random = %.2f (want > 1), maxent/random = "
              "%.2f (want ~1)\n",
              rows[0].loss / rows[1].loss, rows[2].loss / rows[1].loss);
  return 0;
}
