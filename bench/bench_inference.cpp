// Batch-1 surrogate serving latency: the training-path forward vs the
// compiled inference engine (src/infer/), across the drag-surrogate
// shapes the paper's fig6 sweep trains ({135, 270, 540} sensors -> 2*ns
// input channels, hidden 16, window 3) plus a deeper window and an MLP
// stack. Each row is repeated kRepeats times and folded through
// JsonReport::add_sample, so BENCH_inference.json carries the median
// with min/max dispersion; tools/check_bench.py gates the engine's
// "ns_per_op" against the committed baseline, and CI separately asserts
// the recorded speedup floor (the engine's whole reason to exist is the
// >= 10x batch-1 win over the training path).
//
// The pruned rows magnitude-prune a copy of the fig6 engine down to a
// fixed channel budget (PruneOptions::max_channels), so the JSON also
// tracks what pruning buys on top of compilation.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "infer/engine.hpp"
#include "infer/prune.hpp"
#include "ml/layers_basic.hpp"
#include "ml/models.hpp"

namespace {

using namespace sickle;

constexpr int kRepeats = 5;

/// Mean batch-1 wall time of `fn` in nanoseconds (warmed up, averaged
/// over `reps` calls).
template <typename Fn>
double time_ns(std::size_t reps, Fn&& fn) {
  fn();
  Timer t;
  for (std::size_t r = 0; r < reps; ++r) fn();
  return t.seconds() * 1e9 / static_cast<double>(reps);
}

std::vector<float> random_window(Rng& rng, std::size_t n) {
  std::vector<float> w(n);
  for (float& v : w) v = static_cast<float>(rng.normal());
  return w;
}

/// One LSTM-surrogate row: train-path vs engine (and optionally a
/// magnitude-pruned engine) on a freshly initialized model of the given
/// shape. Repeated measurements fold into a single JSON record.
void lstm_row(bench::JsonReport& report, std::size_t in, std::size_t hidden,
              std::size_t window, std::size_t prune_to) {
  Rng rng(hidden * 1000 + in);
  ml::LstmModelConfig mc;
  mc.in_channels = in;
  mc.hidden = hidden;
  mc.out_channels = 1;
  mc.horizon = 1;
  ml::LstmModel model(mc, rng);
  model.set_training(false);

  infer::Engine engine = infer::compile(model);
  const std::vector<float> window_data = random_window(rng, window * in);
  ml::Tensor xb({1, window, in},
                std::vector<float>(window_data.begin(), window_data.end()));
  std::vector<float> out(engine.output_features());

  infer::Engine pruned = engine;
  if (prune_to > 0 && prune_to < hidden) {
    const std::size_t np = 16;
    std::vector<float> probes;
    Rng prng(7);
    for (std::size_t p = 0; p < np; ++p) {
      const auto w = random_window(prng, window * in);
      probes.insert(probes.end(), w.begin(), w.end());
    }
    infer::PruneOptions opts;
    opts.rms_threshold = 1e9;  // budget-driven: stop at the channel target
    opts.max_channels = hidden - prune_to;
    (void)infer::prune(pruned, probes, np, opts);
  }

  char name[64];
  std::snprintf(name, sizeof(name), "lstm_h%zu_in%zu_w%zu", hidden, in,
                window);
  for (int rep = 0; rep < kRepeats; ++rep) {
    const double train_ns = time_ns(64, [&] { (void)model.forward(xb); });
    const double engine_ns =
        time_ns(512, [&] { engine.predict(window_data, out); });
    report.add_sample(name, "training_ns", train_ns);
    // ns_per_op is the engine latency: the metric check_bench.py gates.
    report.add_sample(name, "ns_per_op", engine_ns);
    report.add_sample(name, "speedup", train_ns / engine_ns);
    if (pruned.hidden() < engine.hidden()) {
      const double pruned_ns =
          time_ns(512, [&] { pruned.predict(window_data, out); });
      report.add_sample(name, "pruned_ns", pruned_ns);
      report.add_sample(name, "pruned_speedup", train_ns / pruned_ns);
    }
  }
  std::printf("%-22s hidden %2zu -> %2zu  (engine vs training, %d repeats)\n",
              name, engine.hidden(), pruned.hidden(), kRepeats);
}

/// The MLP row: a plain Dense/ReLU stack through Sequential vs its
/// packed-dense engine.
void mlp_row(bench::JsonReport& report) {
  Rng rng(99);
  ml::Sequential seq;
  seq.push(std::make_unique<ml::Dense>(64, 64, rng));
  seq.push(std::make_unique<ml::ActivationLayer>(ml::Activation::kRelu));
  seq.push(std::make_unique<ml::Dense>(64, 32, rng));
  seq.push(std::make_unique<ml::ActivationLayer>(ml::Activation::kRelu));
  seq.push(std::make_unique<ml::Dense>(32, 1, rng));
  seq.set_training(false);

  infer::Engine engine = infer::compile(seq);
  const std::vector<float> x = random_window(rng, 64);
  ml::Tensor xb({1, 64}, std::vector<float>(x.begin(), x.end()));
  std::vector<float> out(1);
  for (int rep = 0; rep < kRepeats; ++rep) {
    const double train_ns = time_ns(256, [&] { (void)seq.forward(xb); });
    const double engine_ns = time_ns(2048, [&] { engine.predict(x, out); });
    report.add_sample("mlp_64x64x32x1", "training_ns", train_ns);
    report.add_sample("mlp_64x64x32x1", "ns_per_op", engine_ns);
    report.add_sample("mlp_64x64x32x1", "speedup", train_ns / engine_ns);
  }
  std::printf("%-22s (engine vs training, %d repeats)\n", "mlp_64x64x32x1",
              kRepeats);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sickle;
  std::string json_path = "BENCH_inference.json";
  for (int i = 1; i < argc; ++i) {
    constexpr const char* kFlag = "--json_out=";
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      json_path = argv[i] + std::strlen(kFlag);
    }
  }
  bench::banner("Inference engine — batch-1 serving latency",
                "compiled surrogate vs the training-path forward; the "
                "fig6 drag shapes plus a deep window and an MLP stack");

  bench::JsonReport report("bench_inference");
  // The fig6 sweep's sensor counts (in = 2*ns), the shipping surrogate
  // hidden size, and the drag window.
  lstm_row(report, /*in=*/270, /*hidden=*/16, /*window=*/3, /*prune_to=*/8);
  lstm_row(report, /*in=*/540, /*hidden=*/16, /*window=*/3, /*prune_to=*/8);
  lstm_row(report, /*in=*/1080, /*hidden=*/16, /*window=*/3, /*prune_to=*/0);
  // Deeper window: the precompute path's 4-timestep blocks engage fully.
  lstm_row(report, /*in=*/270, /*hidden=*/32, /*window=*/8, /*prune_to=*/0);
  mlp_row(report);
  report.write(json_path);
  return 0;
}
