// bench_serve_load — throughput/latency of sickle-serve under concurrent
// case load, with bit-identity checked against single-process run_case.
//
// An in-process serve::Server (ephemeral port) runs a CaseSession with 4
// runner slots; 8 client threads each push tiny cases over TCP
// (submit -> result on a persistent connection), cycling through 3 seeds.
// Every returned sample_hash must equal the hash run_case produces for
// the same seed — the daemon is a transport, never a numerics fork.
//
// Emits BENCH_serve.json (record "serve_load": ns_per_op = median
// submit->result latency, plus throughput and tail percentiles); CI gates
// the median against bench/baselines/BENCH_serve.json. Exits nonzero on
// any hash mismatch or when fewer than 100 cases complete.
#include <algorithm>
#include <arpa/inet.h>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench_util.hpp"
#include "common/config.hpp"
#include "common/timer.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"
#include "sickle/config_driver.hpp"
#include "sickle/dataset_zoo.hpp"

namespace {

using namespace sickle;

constexpr std::size_t kClients = 8;
constexpr std::size_t kCasesPerClient = 15;  // 8 x 15 = 120 >= 100
constexpr std::size_t kSeeds = 3;

std::string case_yaml(std::uint64_t seed, const std::string& spill_dir) {
  // Tiny on purpose: a 16x16x8 grid x 8 snapshots streams through the
  // series backend in ~100 ms, so the bench measures the serving layer
  // (admission, queueing, shared cache), not one case's arithmetic.
  std::string y;
  y += "shared:\n";
  y += "  dataset: SST-P1F4\n";
  y += "  scale: 0.25\n";
  y += "  seed: " + std::to_string(seed) + "\n";
  y += "subsample:\n";
  y += "  hypercubes: random\n";
  y += "  method: maxent\n";
  y += "  num_hypercubes: 2\n";
  y += "  num_samples: 17\n";
  y += "  num_clusters: 3\n";
  y += "  nxsl: 8\n  nysl: 8\n  nzsl: 8\n";
  y += "store:\n";
  y += "  backend: series\n";
  y += "  ingest: streaming\n";
  y += "  codec: delta\n";
  y += "  chunk: 16\n";
  y += "  write_budget_mb: 1\n";
  y += "  spill_dir: " + spill_dir + "\n";
  y += "train:\n";
  y += "  arch: MLP_transformer\n";
  y += "  epochs: 1\n  batch: 4\n  dim: 8\n  heads: 2\n";
  return y;
}

/// Reference hashes straight through run_case — the value the daemon's
/// responses are diffed against.
std::vector<std::string> reference_hashes(const std::string& spill_dir) {
  std::vector<std::string> hashes;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const Config cfg = Config::parse(case_yaml(seed, spill_dir));
    CaseConfig cc = case_from_config(cfg);
    ProducerBundle bundle = make_dataset_producer(
        dataset_label_from_config(cfg), seed, dataset_scale_from_config(cfg));
    const CaseReport r = run_case(bundle, std::move(cc));
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, r.sample_hash);
    hashes.emplace_back(buf);
  }
  return hashes;
}

/// Minimal blocking NDJSON client on a persistent connection.
class Client {
 public:
  explicit Client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (fd_ < 0 || ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                             sizeof(addr)) != 0) {
      std::perror("bench_serve_load: connect");
      std::exit(1);
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  /// One request line -> one response line.
  std::string round_trip(const std::string& request) {
    std::string framed = request;
    framed.push_back('\n');
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n =
          ::send(fd_, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return {};
      off += static_cast<std::size_t>(n);
    }
    std::size_t nl = buf_.find('\n');
    while (nl == std::string::npos) {
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return {};
      buf_.append(chunk, static_cast<std::size_t>(n));
      nl = buf_.find('\n');
    }
    std::string line = buf_.substr(0, nl);
    buf_.erase(0, nl + 1);
    return line;
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

/// Pull `"key":"value"` out of a response line (the bench only needs two
/// string fields; no JSON parser required on the client side).
std::string extract_string(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return {};
  const std::size_t start = at + needle.size();
  const std::size_t end = json.find('"', start);
  return end == std::string::npos ? std::string{}
                                  : json.substr(start, end - start);
}

double extract_number(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return -1.0;
  return std::strtod(json.c_str() + at + needle.size(), nullptr);
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

int main() {
  bench::banner("sickle-serve concurrent case load",
                "library-shaped sessions: N concurrent cases, bit-identical "
                "to serial run_case");

  const std::string spill_dir = "/tmp/sickle_bench_serve_spill";
  std::printf("computing %zu reference hashes via run_case...\n", kSeeds);
  const std::vector<std::string> expected = reference_hashes(spill_dir);
  for (std::size_t s = 0; s < kSeeds; ++s) {
    std::printf("  seed %zu: %s\n", s, expected[s].c_str());
  }

  serve::ServeOptions opts;
  opts.port = 0;
  opts.session.max_concurrent_cases = 4;
  opts.session.queue_capacity = 256;
  serve::Server server(opts);
  server.start();
  std::printf("daemon on 127.0.0.1:%u | %zu clients x %zu cases\n\n",
              static_cast<unsigned>(server.port()), kClients,
              kCasesPerClient);

  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::vector<double>> latencies(kClients);

  Timer wall;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client(server.port());
      for (std::size_t i = 0; i < kCasesPerClient; ++i) {
        const std::uint64_t seed = (c * kCasesPerClient + i) % kSeeds;
        serve::Json req = serve::Json::object();
        req.set("verb", "submit");
        req.set("config", case_yaml(seed, spill_dir));
        Timer t;
        const std::string sub = client.round_trip(req.dump());
        const double id = extract_number(sub, "id");
        if (sub.find("\"ok\":true") == std::string::npos || id < 0) {
          std::fprintf(stderr, "client %zu: submit failed: %s\n", c,
                       sub.c_str());
          mismatches.fetch_add(1);
          continue;
        }
        serve::Json res = serve::Json::object();
        res.set("verb", "result");
        res.set("id", id);
        const std::string result = client.round_trip(res.dump());
        const double latency_s = t.seconds();
        const std::string hash = extract_string(result, "sample_hash");
        if (hash != expected[seed]) {
          std::fprintf(stderr,
                       "client %zu case %zu: hash %s != expected %s (%s)\n",
                       c, i, hash.c_str(), expected[seed].c_str(),
                       result.substr(0, 160).c_str());
          mismatches.fetch_add(1);
          continue;
        }
        latencies[c].push_back(latency_s);
        completed.fetch_add(1);
      }
    });
  }
  for (auto& th : clients) th.join();
  const double wall_s = wall.seconds();
  server.stop();

  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  const std::size_t done = completed.load();
  const double p50 = percentile(all, 0.50);
  const double p90 = percentile(all, 0.90);
  const double p99 = percentile(all, 0.99);
  const double throughput = static_cast<double>(done) / wall_s;

  std::printf("completed %zu/%zu cases in %.2f s (%zu hash mismatches)\n",
              done, kClients * kCasesPerClient, wall_s, mismatches.load());
  std::printf("throughput %.1f cases/s | latency p50 %.1f ms | p90 %.1f ms "
              "| p99 %.1f ms\n",
              throughput, p50 * 1e3, p90 * 1e3, p99 * 1e3);

  bench::JsonReport report("serve_load");
  report.add("serve_load",
             {{"ns_per_op", p50 * 1e9},
              {"throughput_cases_per_s", throughput},
              {"p50_ms", p50 * 1e3},
              {"p90_ms", p90 * 1e3},
              {"p99_ms", p99 * 1e3},
              {"cases_completed", static_cast<double>(done)}},
             {{"clients", std::to_string(kClients)},
              {"concurrent_cases",
               std::to_string(opts.session.max_concurrent_cases)}});
  report.write("BENCH_serve.json");

  if (mismatches.load() != 0) {
    std::fprintf(stderr, "FAIL: %zu hash mismatches\n", mismatches.load());
    return 1;
  }
  if (done < 100) {
    std::fprintf(stderr, "FAIL: only %zu cases completed (< 100)\n", done);
    return 1;
  }
  std::printf("\nall %zu cases bit-identical to run_case\n", done);
  return 0;
}
