// Figs. 1 & 3: sampling visualisations for OF2D at a 10% rate.
//
// The paper's figure shows that MaxEnt concentrates samples on the wake
// structures while random sampling scatters uniformly. We reproduce the
// visualisation as an ASCII density map per method and quantify it: the
// fraction of samples landing in the wake region and the mean |vorticity|
// at the selected points. Expected shape: maxent > uips > random on both
// wake metrics; "full" is the reference.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "sampling/point_samplers.hpp"
#include "sickle/dataset_zoo.hpp"

using namespace sickle;

namespace {

/// ASCII sample-density map: 48x18 cells over the domain.
void ascii_map(const field::GridShape& shape,
               const std::vector<std::size_t>& sel) {
  constexpr std::size_t W = 48, H = 18;
  std::vector<int> cells(W * H, 0);
  for (const auto flat : sel) {
    const std::size_t iy = flat % shape.ny;  // nz == 1
    const std::size_t ix = flat / shape.ny;
    const std::size_t cx = ix * W / shape.nx;
    const std::size_t cy = iy * H / shape.ny;
    ++cells[cy * W + cx];
  }
  const char* shades = " .:-=+*#%@";
  int max_count = 1;
  for (const int c : cells) max_count = std::max(max_count, c);
  for (std::size_t y = H; y-- > 0;) {
    std::putchar('|');
    for (std::size_t x = 0; x < W; ++x) {
      const int c = cells[y * W + x];
      const int level = c == 0 ? 0 : 1 + (c * 8) / max_count;
      std::putchar(shades[std::min(level, 9)]);
    }
    std::printf("|\n");
  }
}

}  // namespace

int main() {
  bench::banner("Figs. 1 & 3 — OF2D sampling visualisation (10% rate)",
                "MaxEnt best captures the wake structures; random scatters "
                "uniformly; UIPS in between");

  const auto bundle = make_dataset("OF2D", 42);
  // Last snapshot (the paper uses t = 97).
  const std::size_t ts = bundle.data.num_snapshots() - 3;  // t = 97 of 0..99
  const auto& snap = bundle.data.snapshot(ts);
  const auto& shape = snap.shape();

  // Whole field as one cube; 10% of 10800 points.
  const field::CubeTiling tiling(shape, {shape.nx, shape.ny, 1});
  const std::vector<std::string> vars{"u", "v", "wz"};
  const auto cube = field::extract_cube(snap, tiling, {0, 0, 0}, vars);

  sampling::SamplerContext ctx;
  ctx.phase_variables = {"u", "v"};
  ctx.cluster_var = "wz";
  ctx.num_samples = shape.size() / 10;
  ctx.num_clusters = 10;

  const auto wz = snap.get("wz").data();
  // Wake region: downstream (x > cylinder), inside the street's span.
  const double x0 = -2.0, x1 = 10.0, y1 = 2.25;
  auto in_wake = [&](std::size_t flat) {
    const std::size_t iy = flat % shape.ny;
    const std::size_t ix = flat / shape.ny;
    const double x = x0 + (x1 - x0) * static_cast<double>(ix) /
                              static_cast<double>(shape.nx - 1);
    const double y = -y1 + 2.0 * y1 * static_cast<double>(iy) /
                               static_cast<double>(shape.ny - 1);
    return x > 0.5 && std::abs(y) < 1.0;
  };
  double wake_cells = 0.0;
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (in_wake(i)) wake_cells += 1.0;
  }
  const double wake_base = wake_cells / static_cast<double>(shape.size());

  bench::row_header({"method", "samples", "wake_fraction", "wake_lift",
                     "mean|wz|@samples"});
  for (const char* method : {"full", "random", "uips", "maxent"}) {
    auto sampler = sampling::SamplerRegistry::instance().create(method);
    Rng rng(7);
    const auto sel = sampler->select(cube, ctx, rng);
    std::size_t wake_hits = 0;
    double mean_wz = 0.0;
    std::vector<std::size_t> global;
    global.reserve(sel.size());
    for (const auto p : sel) {
      const std::size_t flat = cube.indices[p];
      global.push_back(flat);
      if (in_wake(flat)) ++wake_hits;
      mean_wz += std::abs(wz[flat]);
    }
    const double frac =
        static_cast<double>(wake_hits) / static_cast<double>(sel.size());
    std::printf("%-22s%-22zu%-22.3f%-22.2f%-22.4f\n", method, sel.size(),
                frac, frac / wake_base,
                mean_wz / static_cast<double>(sel.size()));
    std::printf("sample density map (%s):\n", method);
    ascii_map(shape, global);
    std::printf("\n");
  }
  std::printf("wake region covers %.3f of the domain; wake_lift > 1 means "
              "the sampler concentrates on the wake.\n",
              wake_base);
  return 0;
}
