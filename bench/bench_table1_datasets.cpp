// Table 1: summary of datasets used in the study.
//
// Regenerates every dataset in the zoo (at single-node scale) and prints
// the table the paper reports: label, grid, time steps, size, K-means
// cluster variable, NN inputs/outputs — plus the paper's original size for
// reference.
#include <cstdio>
#include <sstream>

#include "bench_util.hpp"
#include "sickle/dataset_zoo.hpp"

int main() {
  using namespace sickle;
  bench::banner("Table 1 — dataset summary",
                "grid/time/size per dataset with KCV and NN variable roles "
                "(scaled substitutes per DESIGN.md)");

  bench::row_header({"label", "grid", "time", "size", "KCV", "input",
                     "output", "paper size"});
  for (const auto& label : dataset_labels()) {
    const auto b = make_dataset(label);
    const auto& shape = b.data.shape();
    std::ostringstream grid;
    grid << shape.nx << "x" << shape.ny;
    if (shape.nz > 1) grid << "x" << shape.nz;
    std::ostringstream in, out;
    for (const auto& v : b.input_vars) in << v << " ";
    for (const auto& v : b.output_vars) out << v << " ";
    const double mb =
        static_cast<double>(b.data.bytes()) / (1024.0 * 1024.0);
    char size_buf[32];
    std::snprintf(size_buf, sizeof(size_buf), "%.1fMB", mb);
    std::printf("%-22s%-22s%-22zu%-22s%-22s%-22s%-22s%s\n", label.c_str(),
                grid.str().c_str(), b.data.num_snapshots(), size_buf,
                b.cluster_var.c_str(), in.str().c_str(), out.str().c_str(),
                b.paper_size.c_str());
  }
  std::printf("\nAll datasets generated successfully.\n");
  return 0;
}
