// §5.2: hypercube-size tractability — "the time complexity of the
// attention mechanism in transformers is well known to be quadratic ...
// training becomes prohibitively slow when using larger than
// 32x32x32-sized hypercubes".
//
// Two measurements: (a) MHSA forward+backward time vs token count, which
// should follow the quadratic model once attention dominates projections;
// (b) CNN-Transformer step time vs cube edge, the end-to-end version of
// the paper's observation.
#include <cstdio>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "ml/attention.hpp"
#include "ml/models.hpp"

using namespace sickle;
using namespace sickle::ml;

int main() {
  bench::banner("§5.2 — attention cost vs sequence length / cube size",
                "quadratic attention is why the paper caps hypercubes at "
                "32^3");

  // (a) MHSA cost vs token count.
  std::printf("-- MHSA forward+backward seconds vs tokens (dim 32, 4 heads)\n");
  bench::row_header({"tokens", "seconds", "sec/tokens^2 (x1e9)"});
  Rng rng(1);
  for (const std::size_t tokens : {16, 32, 64, 128, 256}) {
    MultiHeadSelfAttention attn(32, 4, rng);
    const Tensor x = Tensor::randn({2, tokens, 32}, rng);
    // Warm-up + timed repetitions.
    (void)attn.forward(x);
    Timer t;
    const int reps = 5;
    for (int r = 0; r < reps; ++r) {
      const Tensor y = attn.forward(x);
      attn.zero_grad();
      (void)attn.backward(y);
    }
    const double sec = t.seconds() / reps;
    std::printf("%-22zu%-22.5f%-22.3f\n", tokens, sec,
                1e9 * sec / static_cast<double>(tokens * tokens));
  }
  std::printf("(sec/tokens^2 flattens once the T^2 attention term "
              "dominates the T*D^2 projections)\n\n");

  // (b) CNN-Transformer training-step time vs cube edge.
  std::printf("-- CNN-Transformer step seconds vs cube edge (full-full)\n");
  bench::row_header({"edge", "voxels", "step seconds"});
  double last = 0.0;
  std::size_t last_edge = 0;
  for (const std::size_t edge : {4, 8, 16}) {
    Rng mrng(2);
    CnnTransformerConfig cfg;
    cfg.in_channels = 4;
    cfg.edge = edge;
    cfg.dim = 32;
    cfg.heads = 4;
    cfg.layers = 1;
    cfg.ffn = 64;
    cfg.out_channels = 1;
    cfg.out_edge = edge;
    CnnTransformer model(cfg, mrng);
    const Tensor x = Tensor::randn({2, 2, 4, edge, edge, edge}, mrng);
    (void)model.forward(x);  // warm-up
    Timer t;
    const Tensor y = model.forward(x);
    model.zero_grad();
    (void)model.backward(y);
    last = t.seconds();
    last_edge = edge;
    std::printf("%-22zu%-22zu%-22.4f\n", edge, edge * edge * edge, last);
  }
  // Convolution cost grows ~edge^3; extrapolate to the paper's 32^3 cap.
  std::printf("extrapolated 32^3 step: ~%.1f s (x%zu voxels over edge %zu) "
              "— the paper's tractability wall\n",
              last * 8.0, static_cast<std::size_t>(8), last_edge);
  return 0;
}
