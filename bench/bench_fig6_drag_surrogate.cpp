// Fig. 6: drag-prediction surrogate accuracy, MaxEnt vs random sampling.
//
// LSTM (two LSTM layers + three dense) predicting the drag coefficient of
// the OF2D cylinder from ns sampled "sensor" points, window 3, three
// replicates per configuration. The paper reports 5–10% lower error and
// smaller seed-to-seed std for MaxEnt. Sample counts are scaled 4x down
// from the paper's {540, 1080, 2160} (the synthetic field is 10800 points,
// same as the paper, but training here is single-core).
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/mathx.hpp"
#include "common/timer.hpp"
#include "field/derived.hpp"
#include "flow/cylinder.hpp"
#include "infer/engine.hpp"
#include "infer/prune.hpp"
#include "ml/models.hpp"
#include "sickle/case.hpp"

using namespace sickle;

int main() {
  bench::banner("Fig. 6 — OF2D drag surrogate: MaxEnt vs random",
                "MaxEnt: lower mean test loss and smaller std across seeds "
                "(5-10% in the paper)");

  // OF2D with realistic measurement noise: free-stream sensors are then
  // nearly pure noise while wake sensors keep the shedding-phase signal —
  // the regime where intelligent sensor placement pays (the paper's DNS
  // has the same property through turbulent fluctuations).
  // Domain enlarged so the wake covers only ~8% of it: sensor placement
  // then genuinely matters (in the tight default domain a random draw
  // lands in the wake a third of the time anyway).
  flow::CylinderWakeParams wake_params;
  wake_params.seed = 42;
  wake_params.noise = 0.08;
  wake_params.nx = 160;
  wake_params.ny = 120;
  wake_params.domain_x1 = 22.0;
  wake_params.domain_y1 = 6.0;
  DatasetBundle bundle;
  {
    auto wake = flow::generate_cylinder_wake(wake_params);
    bundle.scalar_target = wake.drag;
    bundle.data = std::move(wake.dataset);
    bundle.input_vars = {"u", "v"};
    bundle.output_vars = {"p"};
    bundle.cluster_var = "wz";
  }
  const std::size_t window = 3;

  bench::row_header({"ns", "method", "mean_loss", "std_loss", "replicates"});
  struct Cell {
    double mean, sd;
  };
  std::vector<std::pair<std::string, Cell>> summary;

  for (const std::size_t ns : {135, 270, 540}) {
    for (const char* method : {"random", "maxent"}) {
      std::vector<double> losses;
      for (std::uint64_t seed = 0; seed < 3; ++seed) {  // 3, as the paper
        energy::EnergyCounter sampling_energy;
        const auto data = build_drag_dataset(bundle, method, ns, window,
                                             seed + 1, &sampling_energy);
        Rng mrng(seed + 100);
        ml::LstmModelConfig mc;
        mc.in_channels = 2 * ns;  // u, v at each sensor
        mc.hidden = 16;
        mc.out_channels = 1;
        ml::LstmModel model(mc, mrng);
        ml::TrainConfig tc;
        tc.epochs = 25;
        tc.batch = 16;
        tc.lr = 2e-3;
        tc.patience = 8;
        tc.seed = seed;
        const auto report = ml::fit(model, data, tc);
        losses.push_back(report.test_loss);
      }
      const double m = mean(losses);
      const double sd = stddev(losses);
      std::printf("%-22zu%-22s%-22.5f%-22.5f%-22zu\n", ns, method, m, sd,
                  losses.size());
      summary.emplace_back(std::string(method) + "@" + std::to_string(ns),
                           Cell{m, sd});
    }
  }

  // Shape check: per ns, compare maxent vs random.
  std::printf("\nshape check (maxent vs random):\n");
  for (std::size_t i = 0; i + 1 < summary.size(); i += 2) {
    const auto& random = summary[i].second;
    const auto& maxent = summary[i + 1].second;
    std::printf("  %-14s loss ratio maxent/random = %.3f, std ratio = %.3f\n",
                summary[i].first.substr(7).c_str(),
                maxent.mean / std::max(random.mean, 1e-12),
                maxent.sd / std::max(random.sd, 1e-12));
  }
  std::printf("(paper: ratios < 1, i.e. MaxEnt more accurate and more "
              "reproducible)\n");

  // Serving latency for the surrogate the sweep just characterized: the
  // largest configuration retrained once, then compiled (src/infer/) and
  // magnitude-pruned. This is the deploy-side counterpart of the
  // accuracy table — what one drag prediction costs per solver step.
  {
    const std::size_t ns = 540;
    const auto data =
        build_drag_dataset(bundle, "maxent", ns, window, 1, nullptr);
    Rng mrng(100);
    ml::LstmModelConfig mc;
    mc.in_channels = 2 * ns;
    mc.hidden = 16;
    mc.out_channels = 1;
    ml::LstmModel model(mc, mrng);
    ml::TrainConfig tc;
    tc.epochs = 25;
    tc.batch = 16;
    tc.lr = 2e-3;
    tc.patience = 8;
    (void)ml::fit(model, data, tc);
    model.set_training(false);

    infer::Engine engine = infer::compile(model);
    const auto& x0 = data.input(0);
    ml::Tensor xb = x0.reshaped({1, x0.dim(0), x0.dim(1)});
    std::vector<float> out(engine.output_features());
    auto time_ns = [](std::size_t reps, auto&& fn) {
      fn();
      Timer t;
      for (std::size_t r = 0; r < reps; ++r) fn();
      return t.seconds() * 1e9 / static_cast<double>(reps);
    };
    const double train_ns = time_ns(64, [&] { (void)model.forward(xb); });
    const double engine_ns =
        time_ns(512, [&] { engine.predict(x0.data(), out); });

    std::vector<float> probes;
    const std::size_t np = std::min<std::size_t>(16, data.size());
    for (std::size_t p = 0; p < np; ++p) {
      const auto span = data.input(p).data();
      probes.insert(probes.end(), span.begin(), span.end());
    }
    infer::PruneOptions popts;
    popts.rms_threshold = 0.05;
    const auto preport = infer::prune(engine, probes, np, popts);
    const double pruned_ns =
        time_ns(512, [&] { engine.predict(x0.data(), out); });

    std::printf("\nserving latency (ns=%zu, hidden 16, window %zu):\n", ns,
                window);
    bench::row_header({"path", "latency_ns", "speedup"});
    std::printf("%-22s%-22.0f%-22s\n", "training forward", train_ns, "1.0x");
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1fx", train_ns / engine_ns);
    std::printf("%-22s%-22.0f%-22s\n", "compiled engine", engine_ns, buf);
    std::snprintf(buf, sizeof(buf), "%.1fx", train_ns / pruned_ns);
    std::printf("%-22s%-22.0f%-22s  (hidden %zu -> %zu, rms %.4g)\n",
                "pruned engine", pruned_ns, buf, preport.initial_hidden,
                preport.final_hidden, preport.final_rms);
  }
  return 0;
}
