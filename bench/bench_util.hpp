// Shared helpers for the figure-reproduction harnesses.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace sickle::bench {

inline void banner(const std::string& title, const std::string& paper_note) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("paper: %s\n\n", paper_note.c_str());
}

inline void row_header(const std::vector<std::string>& cols) {
  for (const auto& c : cols) std::printf("%-22s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < cols.size(); ++i) std::printf("%-22s", "------");
  std::printf("\n");
}

}  // namespace sickle::bench
