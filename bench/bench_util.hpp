// Shared helpers for the figure-reproduction harnesses: console banners
// and the machine-readable BENCH_*.json emitter the perf trajectory is
// tracked with (docs/PERF.md).
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace sickle::bench {

inline void banner(const std::string& title, const std::string& paper_note) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("paper: %s\n\n", paper_note.c_str());
}

inline void row_header(const std::vector<std::string>& cols) {
  for (const auto& c : cols) std::printf("%-22s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < cols.size(); ++i) std::printf("%-22s", "------");
  std::printf("\n");
}

/// Short git revision of the working tree, or "unknown" outside a repo —
/// stamped into every BENCH_*.json so baselines are comparable across
/// commits.
inline std::string git_sha() {
  std::string sha;
  if (FILE* p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[64];
    if (std::fgets(buf, sizeof(buf), p) != nullptr) sha = buf;
    ::pclose(p);
  }
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
    sha.pop_back();
  }
  return sha.empty() ? "unknown" : sha;
}

/// Escape a string for embedding inside JSON double quotes.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Minimal machine-readable bench report: one JSON object with a context
/// block (bench name, git sha, hardware threads) and a flat array of
/// records, each a name plus numeric metrics and optional string labels.
/// Kept dependency-free on purpose — benches must build on bare images.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void add(const std::string& name,
           const std::vector<std::pair<std::string, double>>& metrics,
           const std::vector<std::pair<std::string, std::string>>& labels =
               {}) {
    Record r;
    r.name = name;
    r.metrics = metrics;
    r.labels = labels;
    records_.push_back(std::move(r));
  }

  /// Accumulate one observation of `key` for the record `name`; repeated
  /// calls with the same (name, key) fold into a single record. At write
  /// time a key with one observation emits `"key": v` (byte-compatible
  /// with add()); N > 1 observations emit the median as `"key"` plus
  /// `"key_min"`, `"key_max"`, and a shared `"repeats"` count, so
  /// baseline gates keep comparing the stable median while the
  /// dispersion stays visible in the report.
  void add_sample(const std::string& name, const std::string& key,
                  double value) {
    Record* rec = nullptr;
    for (auto& r : records_) {
      if (r.name == name) {
        rec = &r;
        break;
      }
    }
    if (rec == nullptr) {
      records_.emplace_back();
      rec = &records_.back();
      rec->name = name;
    }
    for (auto& [k, samples] : rec->samples) {
      if (k == key) {
        samples.push_back(value);
        return;
      }
    }
    rec->samples.emplace_back(key, std::vector<double>{value});
  }

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

  /// Write the report; returns false (after printing a warning) on I/O
  /// failure so benches still exit 0 when run from a read-only directory.
  bool write(const std::string& path) const {
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n",
                 json_escape(bench_name_).c_str());
    std::fprintf(f, "  \"git_sha\": \"%s\",\n",
                 json_escape(git_sha()).c_str());
    std::fprintf(f, "  \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"records\": [\n");
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::fprintf(f, "    {\"name\": \"%s\"", json_escape(r.name).c_str());
      for (const auto& [key, value] : r.labels) {
        std::fprintf(f, ", \"%s\": \"%s\"", json_escape(key).c_str(),
                     json_escape(value).c_str());
      }
      for (const auto& [key, value] : r.metrics) {
        std::fprintf(f, ", \"%s\": %.9g", json_escape(key).c_str(), value);
      }
      std::size_t repeats = 0;
      for (const auto& [key, samples] : r.samples) {
        std::vector<double> sorted = samples;
        std::sort(sorted.begin(), sorted.end());
        const std::size_t n = sorted.size();
        const double median = n % 2 == 1
                                  ? sorted[n / 2]
                                  : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
        std::fprintf(f, ", \"%s\": %.9g", json_escape(key).c_str(), median);
        if (n > 1) {
          std::fprintf(f, ", \"%s_min\": %.9g, \"%s_max\": %.9g",
                       json_escape(key).c_str(), sorted.front(),
                       json_escape(key).c_str(), sorted.back());
        }
        repeats = std::max(repeats, n);
      }
      if (repeats > 1) {
        std::fprintf(f, ", \"repeats\": %zu", repeats);
      }
      std::fprintf(f, "}%s\n", i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    // fclose flushes the stdio buffer — its result is the real verdict
    // (a full disk surfaces here, not at the fprintfs). Always close,
    // even when a write already failed.
    const bool had_error = std::ferror(f) != 0;
    const bool ok = (std::fclose(f) == 0) && !had_error;
    if (ok) {
      std::printf("wrote %s (%zu records)\n", path.c_str(), size());
    } else {
      std::fprintf(stderr, "bench: error writing %s\n", path.c_str());
    }
    return ok;
  }

 private:
  struct Record {
    std::string name;
    std::vector<std::pair<std::string, double>> metrics;
    std::vector<std::pair<std::string, std::string>> labels;
    /// add_sample() observations, keyed in insertion order; summarized
    /// (median/min/max) at write time.
    std::vector<std::pair<std::string, std::vector<double>>> samples;
  };

  std::string bench_name_;
  std::vector<Record> records_;
};

}  // namespace sickle::bench
