// Fig. 5: PDFs of subsampling methods (10% sampling) on OF2D, SST-P1F4
// and GESTS-2048.
//
// For each dataset we subsample 10% with random / uips / maxent and
// compare the sampled distribution of the cluster variable against the
// full-data PDF: KL(sample || full), JS, and tail coverage at the 2%
// quantiles. Expected shape (paper): MaxEnt matches best in the tails;
// random under-covers tails at this rate; UIPS over-flattens.
#include <cstdio>

#include "bench_util.hpp"
#include "sampling/point_samplers.hpp"
#include "sickle/dataset_zoo.hpp"
#include "stats/descriptive.hpp"
#include "stats/entropy.hpp"
#include "stats/histogram.hpp"

using namespace sickle;

namespace {

void run_dataset(const std::string& label,
                 const std::vector<std::string>& phase_vars,
                 const std::string& var) {
  const auto bundle = make_dataset(label, 42);
  const auto& snap = bundle.data.snapshot(0);
  const auto& shape = snap.shape();
  const field::CubeTiling tiling(shape, {shape.nx, shape.ny, shape.nz});
  std::vector<std::string> vars = phase_vars;
  if (std::find(vars.begin(), vars.end(), var) == vars.end()) {
    vars.push_back(var);
  }
  const auto cube = field::extract_cube(snap, tiling, {0, 0, 0},
                                        std::span<const std::string>(vars));
  const auto full = snap.get(var).data();
  // Fixed bin count of 100, as the paper's PDF comparisons use.
  const auto ref_hist = stats::Histogram::fit(full, 100);
  const auto ref_pmf = ref_hist.pmf();

  sampling::SamplerContext ctx;
  ctx.phase_variables = phase_vars;
  ctx.cluster_var = var;
  ctx.num_samples = shape.size() / 10;
  ctx.num_clusters = 20;
  ctx.pdf_bins = 8;

  std::printf("-- %s (variable %s, %zu points, 10%% = %zu samples)\n",
              label.c_str(), var.c_str(), shape.size(), ctx.num_samples);
  bench::row_header({"method", "KL(s||full)", "JS", "tail_cov@2%",
                     "tail_target"});
  for (const char* method : {"random", "uips", "maxent"}) {
    auto sampler = sampling::SamplerRegistry::instance().create(method);
    Rng rng(5);
    const auto sel = sampler->select(cube, ctx, rng);
    std::vector<double> sampled;
    sampled.reserve(sel.size());
    const std::size_t var_col = [&] {
      for (std::size_t i = 0; i < cube.variables.size(); ++i) {
        if (cube.variables[i] == var) return i;
      }
      return std::size_t{0};
    }();
    for (const auto p : sel) sampled.push_back(cube.values[var_col][p]);

    stats::Histogram sh(ref_hist.lo(), ref_hist.hi(), 100);
    sh.add(std::span<const double>(sampled));
    const auto spmf = sh.pmf();
    std::printf("%-22s%-22.4f%-22.4f%-22.4f%-22.4f\n", method,
                stats::kl_divergence(spmf, ref_pmf),
                stats::js_divergence(spmf, ref_pmf),
                stats::tail_coverage(full, sampled, 0.02), 0.04);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::banner("Fig. 5 — sampled-vs-full PDFs at 10% sampling",
                "MaxEnt achieves the best tail representation; random "
                "under-covers tails; differences shrink on isotropic GESTS");
  run_dataset("OF2D", {"u", "v"}, "wz");
  run_dataset("SST-P1F4", {"u", "v", "w", "rho"}, "pv");
  run_dataset("GESTS-2048", {"u", "v", "w", "eps"}, "enstrophy");
  std::printf(
      "tail_cov@2%%: fraction of samples beyond the full data's 2%%/98%% "
      "quantiles; the full distribution scores 0.04. MaxEnt should sit "
      "above random (better tail mass), most prominently on the "
      "anisotropic datasets.\n");
  return 0;
}
