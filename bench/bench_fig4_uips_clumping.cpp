// Fig. 4: UIPS covers 2D phase space uniformly (TC2D) but clumps on the
// 3D anisotropic SST-P1F4 dataset.
//
// The paper shows scatter plots; we quantify them. Since phase-space data
// lives on a manifold (e.g. TC2D's Cvar ~ C(1-C) curve), uniformity is
// measured *within the occupied support*: bin the FULL dataset, keep the
// occupied cells, and score the UIPS sample by (a) the coefficient of
// variation of its per-occupied-cell counts (0 = perfectly uniform over
// the support) and (b) the fraction of the support it covers. Expected
// shape: TC2D more uniform (lower CV, higher coverage) than SST-P1F4.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/mathx.hpp"
#include "sampling/point_samplers.hpp"
#include "sickle/dataset_zoo.hpp"
#include "stats/histogram.hpp"

using namespace sickle;

namespace {

struct SupportMetrics {
  double clumping;         ///< CV of UIPS sample counts over support cells
  double clumping_random;  ///< same metric for random sampling (baseline)
  double coverage;         ///< fraction of occupied support cells hit
  std::size_t cells;       ///< occupied support cells
  /// How much flatter UIPS is than random; ~1 means UIPS adds nothing.
  [[nodiscard]] double improvement() const {
    return clumping_random / std::max(clumping, 1e-12);
  }
};

SupportMetrics uips_support_metrics(const DatasetBundle& bundle,
                                    std::vector<std::string> phase_vars,
                                    std::size_t num_samples,
                                    std::size_t bins) {
  const auto& snap = bundle.data.snapshot(0);
  const auto& shape = snap.shape();
  const field::CubeTiling tiling(shape, {shape.nx, shape.ny, shape.nz});
  const auto cube = field::extract_cube(
      snap, tiling, {0, 0, 0}, std::span<const std::string>(phase_vars));
  const std::size_t n = cube.points();

  // UIPS selects in the FULL phase space (all variables) — this is where
  // the curse of dimensionality bites its binned density estimate.
  sampling::SamplerContext ctx;
  ctx.phase_variables = phase_vars;
  ctx.num_samples = num_samples;
  ctx.pdf_bins = 10;
  sampling::UipsSampler sampler;
  Rng rng(11);
  const auto sel = sampler.select(cube, ctx, rng);
  sampling::RandomSampler random_sampler;
  Rng rng2(12);
  const auto sel_random = random_sampler.select(cube, ctx, rng2);

  // Uniformity is judged on the first-two-variables projection — the
  // plane the paper's scatter plots show — over the support occupied by
  // the full data.
  std::vector<std::vector<double>> pts(n, std::vector<double>(2));
  for (std::size_t i = 0; i < n; ++i) {
    pts[i][0] = cube.values[0][i];
    pts[i][1] = cube.values[1][i];
  }
  stats::HistogramND support = stats::HistogramND::fit(
      std::span<const std::vector<double>>(pts), bins);

  auto cv_over_support = [&](const std::vector<std::size_t>& selection,
                             std::size_t* hit_out, std::size_t* cells_out) {
    std::vector<std::size_t> cell_sample_count(support.cells(), 0);
    for (const auto p : selection) {
      const std::vector<double> x{cube.values[0][p], cube.values[1][p]};
      ++cell_sample_count[support.cell_of(x)];
    }
    std::vector<double> counts;
    std::size_t hit = 0, occupied = 0;
    for (std::size_t c = 0; c < support.cells(); ++c) {
      if (support.counts()[c] == 0) continue;
      ++occupied;
      counts.push_back(static_cast<double>(cell_sample_count[c]));
      if (cell_sample_count[c] > 0) ++hit;
    }
    if (hit_out != nullptr) *hit_out = hit;
    if (cells_out != nullptr) *cells_out = occupied;
    const double mu = mean(counts);
    return (mu > 0.0) ? stddev(counts) / mu : 0.0;
  };

  SupportMetrics m;
  std::size_t hit = 0, occupied = 0;
  m.clumping = cv_over_support(sel, &hit, &occupied);
  m.clumping_random = cv_over_support(sel_random, nullptr, nullptr);
  m.coverage = static_cast<double>(hit) / static_cast<double>(occupied);
  m.cells = occupied;
  return m;
}

}  // namespace

int main() {
  bench::banner(
      "Fig. 4 — UIPS phase-space uniformity: 2D (TC2D) vs 3D (SST-P1F4)",
      "UIPS uniform over TC2D's support; clumps on the anisotropic 3D SST "
      "feature space");

  const auto tc2d = make_dataset("TC2D", 42, /*scale=*/0.25);
  const auto sst = make_dataset("SST-P1F4", 42);

  const auto m2d = uips_support_metrics(tc2d, {"C", "Cvar"}, 10000, 12);
  const auto m3d =
      uips_support_metrics(sst, {"u", "v", "w", "rho"}, 10000, 12);

  bench::row_header({"dataset", "cells", "uips CV", "random CV",
                     "uips gain", "coverage"});
  std::printf("%-22s%-22zu%-22.3f%-22.3f%-22.2f%-22.3f\n", "TC2D (2D)",
              m2d.cells, m2d.clumping, m2d.clumping_random,
              m2d.improvement(), m2d.coverage);
  std::printf("%-22s%-22zu%-22.3f%-22.3f%-22.2f%-22.3f\n", "SST-P1F4 (3D)",
              m3d.cells, m3d.clumping, m3d.clumping_random,
              m3d.improvement(), m3d.coverage);

  std::printf(
      "\nshape check (paper: UIPS works on 2D, 'does not do as well on 3D "
      "complex flowfields'):\n"
      "  uips gain = random CV / uips CV over the occupied support; >> 1 "
      "means UIPS flattens effectively.\n");
  std::printf("  gain TC2D = %.2f vs gain SST = %.2f (want TC2D >> SST)\n",
              m2d.improvement(), m3d.improvement());
  return 0;
}
