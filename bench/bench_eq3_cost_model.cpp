// Eq. 3: Cost-to-Train ~ O(c(m)) + O(m * p * e).
//
// Validates the paper's cost model on this implementation: (a) the
// sampling cost c(m) for each method as the sample count m grows
// (MaxEnt pays a clustering premium — the trade-off §7 discusses), and
// (b) training cost linear in each of m (samples), p (parameters) and
// e (epochs), measured via the energy counter's FLOP tally.
#include <cstdio>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "ml/models.hpp"
#include "ml/trainer.hpp"
#include "sampling/point_samplers.hpp"
#include "sickle/dataset_zoo.hpp"

using namespace sickle;

namespace {

double sample_seconds(const field::Hypercube& cube, const std::string& method,
                      std::size_t m) {
  sampling::SamplerContext ctx;
  ctx.phase_variables = {"u", "v", "w", "rho"};
  ctx.cluster_var = "pv";
  ctx.num_samples = m;
  ctx.num_clusters = 10;
  auto sampler = sampling::SamplerRegistry::instance().create(method);
  Rng rng(1);
  Timer t;
  for (int rep = 0; rep < 3; ++rep) {
    Rng r = rng.fork(rep);
    (void)sampler->select(cube, ctx, r);
  }
  return t.seconds() / 3.0;
}

double train_flops(std::size_t examples, std::size_t hidden,
                   std::size_t epochs) {
  Rng rng(2);
  ml::TensorDataset data;
  for (std::size_t i = 0; i < examples; ++i) {
    data.push(ml::Tensor::randn({4, 8}, rng), ml::Tensor::randn({1}, rng));
  }
  Rng mrng(3);
  ml::LstmModelConfig mc;
  mc.in_channels = 8;
  mc.hidden = hidden;
  ml::LstmModel model(mc, mrng);
  ml::TrainConfig tc;
  tc.epochs = epochs;
  tc.batch = 8;
  return ml::fit(model, data, tc).energy.flops();
}

}  // namespace

int main() {
  bench::banner("Eq. 3 — Cost-to-Train ~ O(c(m)) + O(m*p*e)",
                "sampling cost per method vs m; training cost linear in "
                "m, p, e");

  // (a) c(m): per-method sampling cost over one large cube.
  const auto bundle = make_dataset("SST-P1F4", 42);
  const auto& snap = bundle.data.snapshot(0);
  const field::CubeTiling tiling(snap.shape(), {32, 32, 32});
  const std::vector<std::string> vars{"u", "v", "w", "rho", "pv"};
  const auto cube = field::extract_cube(snap, tiling, {0, 0, 0},
                                        std::span<const std::string>(vars));

  std::printf("-- sampling cost c(m), seconds per call (32^3 cube)\n");
  bench::row_header({"m", "random", "stratified", "uips", "maxent"});
  for (const std::size_t m : {328, 1638, 3277, 9830}) {  // 1-30% of 32^3
    std::printf("%-22zu", m);
    for (const char* method : {"random", "stratified", "uips", "maxent"}) {
      std::printf("%-22.5f", sample_seconds(cube, method, m));
    }
    std::printf("\n");
  }
  std::printf("(maxent pays the clustering premium the paper's §7 "
              "discusses; random is near-free)\n\n");

  // (b) training cost scaling: FLOPs vs m, p, e.
  std::printf("-- training cost (FLOPs) scaling\n");
  bench::row_header({"knob", "x1", "x2", "flops ratio", "expected"});
  const double m1 = train_flops(64, 16, 4), m2 = train_flops(128, 16, 4);
  std::printf("%-22s%-22s%-22s%-22.2f%-22s\n", "samples m", "64", "128",
              m2 / m1, "~2.0");
  const double e1 = train_flops(64, 16, 4), e2 = train_flops(64, 16, 8);
  std::printf("%-22s%-22s%-22s%-22.2f%-22s\n", "epochs e", "4", "8",
              e2 / e1, "~2.0");
  const double p1 = train_flops(64, 16, 4), p2 = train_flops(64, 32, 4);
  std::printf("%-22s%-22s%-22s%-22.2f%-22s\n", "params p (hidden 2x)", "16",
              "32", p2 / p1, ">2 (LSTM ~quadratic in hidden)");
  return 0;
}
