// Fig. 7: parallel scalability of MaxEnt sampling, 1 -> 512 ranks.
//
// The SPMD pipeline runs at each rank count; the simulated
// distributed-memory time is max-over-ranks thread CPU time plus the
// modeled collective cost (DESIGN.md §2 documents this substitution for
// MPI/Frontier). Expected shape: the larger SST-P1F100 scales
// quasi-linearly before its knee; the smaller SST-P1F4 knees early
// (paper: max speedup ~9 at 32 ranks) as cubes-per-rank hits 1 and the
// serial clustering + communication terms dominate.
//
// Besides the console table, a run writes BENCH_fig7_scalability.json
// (per rank count: sim time, speedup, efficiency, comm seconds) for the
// perf trajectory in bench/baselines/ (docs/PERF.md). An optional argv[1]
// overrides the 512-rank ceiling for quick local runs.
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "parallel/world.hpp"
#include "sampling/pipeline.hpp"
#include "sickle/dataset_zoo.hpp"

using namespace sickle;

namespace {

void scaling_study(const std::string& label, const DatasetBundle& bundle,
                   std::size_t num_hypercubes, std::size_t max_ranks,
                   bench::JsonReport& report) {
  sampling::PipelineConfig cfg;
  cfg.cube = {8, 8, 8};
  cfg.hypercube_method = "maxent";
  cfg.point_method = "maxent";
  cfg.num_hypercubes = num_hypercubes;
  cfg.num_samples = 51;  // 10% of 8^3
  cfg.num_clusters = 5;
  cfg.input_vars = bundle.input_vars;
  cfg.output_vars = bundle.output_vars;
  cfg.cluster_var = bundle.cluster_var;
  cfg.seed = 42;

  const auto& snap = bundle.data.snapshot(0);
  std::printf("-- %s: %zu cubes selected from %zu, grid %zux%zux%zu\n",
              label.c_str(), cfg.num_hypercubes,
              field::CubeTiling(snap.shape(), cfg.cube).count(),
              snap.shape().nx, snap.shape().ny, snap.shape().nz);
  bench::row_header({"ranks", "sim_time(s)", "speedup", "efficiency",
                     "comm(s)"});

  double t1 = 0.0;
  double knee_ranks = 0.0, best_speedup = 0.0;
  for (std::size_t n = 1; n <= max_ranks; n *= 2) {
    // Best of 2 repetitions: thread CPU-time measurement on an
    // oversubscribed host is noisy at high rank counts.
    double t = 1e300;
    double comm_s = 0.0;
    for (int rep = 0; rep < 2; ++rep) {
      World world(n);
      const auto report_run = world.run([&](Comm& comm) {
        (void)run_pipeline(snap, cfg, comm);
      });
      if (report_run.simulated_seconds() < t) {
        t = report_run.simulated_seconds();
        comm_s = report_run.modeled_comm_seconds;
      }
    }
    if (n == 1) t1 = t;
    const double speedup = t1 / t;
    const double efficiency = speedup / static_cast<double>(n);
    std::printf("%-22zu%-22.4f%-22.2f%-22.2f%-22.6f\n", n, t, speedup,
                efficiency, comm_s);
    report.add(label + "/ranks:" + std::to_string(n),
               {{"ranks", static_cast<double>(n)},
                {"sim_time_s", t},
                {"speedup", speedup},
                {"efficiency", efficiency},
                {"comm_s", comm_s}},
               {{"dataset", label}});
    if (speedup > best_speedup) {
      best_speedup = speedup;
      knee_ranks = static_cast<double>(n);
    }
  }
  std::printf("max speedup %.1fx at %zu ranks (knee: efficiency drops "
              "beyond)\n\n",
              best_speedup, static_cast<std::size_t>(knee_ranks));
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t max_ranks = 512;
  if (argc > 1) {
    const long v = std::strtol(argv[1], nullptr, 10);
    if (v >= 1) max_ranks = static_cast<std::size_t>(v);
  }
  bench::banner("Fig. 7 — MaxEnt sampler scalability (SPMD ranks)",
                "SST-P1F100 quasi-linear to ~64 ranks; SST-P1F4 knees early "
                "(paper: ~9x at 32 ranks)");
  bench::JsonReport report("bench_fig7_scalability");
  const auto sst_small = make_dataset("SST-P1F4", 42, /*scale=*/0.5);
  const auto sst_large = make_dataset("SST-P1F100", 42);
  scaling_study("SST-P1F4 (small)", sst_small, 32, max_ranks, report);
  scaling_study("SST-P1F100 (large)", sst_large, 512, max_ranks, report);
  std::printf(
      "sim_time = max-over-ranks CPU time + alpha-beta collective model "
      "(see DESIGN.md: MPI-on-Frontier substitution).\n");
  report.write("BENCH_fig7_scalability.json");
  return 0;
}
