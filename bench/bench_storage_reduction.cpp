// SICKLE storage-reduction accounting (paper §1: "our framework provides
// a convenient way to significantly reduce file storage requirements, by
// storing feature-rich subsampled datasets").
//
// Writes one dense SST snapshot and MaxEnt-sampled subsets at several
// rates to disk and reports the measured on-disk byte ratios.
#include <cstdio>
#include <filesystem>

#include "bench_util.hpp"
#include "io/snapshot_io.hpp"
#include "sampling/pipeline.hpp"
#include "sickle/dataset_zoo.hpp"

using namespace sickle;

int main() {
  bench::banner("Storage reduction — dense snapshot vs sampled subsets",
                "feature-rich subsampled datasets occupy a small fraction "
                "of the raw checkpoint");

  const auto bundle = make_dataset("SST-P1F4", 42);
  const auto& snap = bundle.data.snapshot(0);
  const auto dir = std::filesystem::temp_directory_path() / "sickle_storage";
  std::filesystem::create_directories(dir);

  const std::size_t dense_bytes =
      io::save_snapshot(snap, (dir / "dense.skl").string());
  std::printf("dense snapshot: %zu points x %zu vars = %.2f MB on disk\n\n",
              snap.shape().size(), snap.num_fields(),
              static_cast<double>(dense_bytes) / (1024.0 * 1024.0));

  bench::row_header({"rate", "points", "bytes", "reduction"});
  for (const double rate : {0.01, 0.05, 0.10, 0.20}) {
    sampling::PipelineConfig cfg;
    cfg.cube = {8, 8, 8};
    cfg.hypercube_method = "maxent";
    cfg.point_method = "maxent";
    // Cover the whole grid with cubes; sample `rate` inside each.
    cfg.num_hypercubes = field::CubeTiling(snap.shape(), cfg.cube).count();
    cfg.num_samples = static_cast<std::size_t>(rate * 512.0);
    cfg.num_clusters = 5;
    cfg.input_vars = bundle.input_vars;
    cfg.output_vars = bundle.output_vars;
    cfg.cluster_var = bundle.cluster_var;
    const auto result = run_pipeline(snap, cfg);
    const auto merged = result.merged();

    io::SampleFile file;
    file.variables = merged.variables;
    file.indices.assign(merged.indices.begin(), merged.indices.end());
    file.features = merged.features;
    const std::size_t bytes =
        io::save_samples(file, (dir / "sampled.skl").string());
    char rate_buf[16];
    std::snprintf(rate_buf, sizeof(rate_buf), "%.0f%%", rate * 100.0);
    std::printf("%-22s%-22zu%-22zu%-22.1fx\n", rate_buf, merged.points(),
                bytes, static_cast<double>(dense_bytes) /
                           static_cast<double>(bytes));
  }
  std::filesystem::remove_all(dir);
  std::printf("\n(the sampled file also stores explicit indices, so the "
              "reduction is slightly below 1/rate)\n");
  return 0;
}
