// SICKLE storage-reduction accounting (paper §1: "our framework provides
// a convenient way to significantly reduce file storage requirements, by
// storing feature-rich subsampled datasets").
//
// Three experiments on one dense SST snapshot:
//   1. SKL2 chunked-store codecs vs the flat SKL1 file: real compressed
//      bytes plus encode/decode throughput and max reconstruction error.
//   2. Streaming equivalence: MaxEnt two-phase sampling driven through a
//      ChunkReader (out-of-core) must reproduce the in-memory sample set
//      exactly on a lossless codec.
//   3. SKL3 series mode: one multi-snapshot container vs N single-
//      snapshot SKL2 files — header/index amortization and streaming
//      append throughput.
//   4. The original sampled-subset table: on-disk byte ratios of
//      MaxEnt subsets at several sampling rates.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "flow/spectral_turbulence.hpp"
#include "io/snapshot_io.hpp"
#include "sampling/pipeline.hpp"
#include "sickle/dataset_zoo.hpp"
#include "store/series_store.hpp"
#include "store/snapshot_store.hpp"

using namespace sickle;

namespace {

double max_abs_error(const field::Snapshot& a, const field::Snapshot& b) {
  double err = 0.0;
  for (const auto& name : a.names()) {
    const auto x = a.get(name).data();
    const auto y = b.get(name).data();
    for (std::size_t i = 0; i < x.size(); ++i) {
      err = std::max(err, std::abs(x[i] - y[i]));
    }
  }
  return err;
}

}  // namespace

int main() {
  bench::banner("Storage reduction — chunked store codecs + sampled subsets",
                "feature-rich subsampled datasets occupy a small fraction "
                "of the raw checkpoint");

  const auto bundle = make_dataset("SST-P1F4", 42);
  const auto& snap = bundle.data.snapshot(0);
  const auto dir = std::filesystem::temp_directory_path() / "sickle_storage";
  std::filesystem::create_directories(dir);

  const std::size_t dense_bytes =
      io::save_snapshot(snap, (dir / "dense.skl").string());
  const double raw_mb =
      static_cast<double>(snap.bytes()) / (1024.0 * 1024.0);
  std::printf("dense snapshot: %zu points x %zu vars = %.2f MB flat SKL1\n\n",
              snap.shape().size(), snap.num_fields(),
              static_cast<double>(dense_bytes) / (1024.0 * 1024.0));

  // --- 1. SKL2 codec sweep: compressed bytes + throughput ------------------
  const double quant_tol = 1e-3;
  std::printf("SKL2 chunked store (16^3 chunks; quant tolerance %.0e):\n",
              quant_tol);
  bench::row_header(
      {"codec", "bytes", "ratio", "enc MB/s", "dec MB/s", "max err"});
  for (const auto& codec : store::codec_names()) {
    store::StoreOptions opts;
    opts.chunk = {16, 16, 16};
    opts.codec = codec;
    opts.tolerance = quant_tol;
    const std::string path = (dir / (codec + ".skl2")).string();
    const auto report = store::write_store(snap, path, opts);

    double decode_seconds = 0.0;
    const auto round_trip = [&] {
      ScopedTimer decode_timer(decode_seconds);
      return store::ChunkReader(path).load_snapshot();
    }();

    std::printf("%-22s%-22zu%-22.2f%-22.0f%-22.0f%-22.2e\n", codec.c_str(),
                report.file_bytes, report.compression_ratio(),
                raw_mb / report.encode_seconds, raw_mb / decode_seconds,
                max_abs_error(snap, round_trip));
  }

  // --- 1b. Native-precision turbulence: the gorilla acceptance gate --------
  // The paper's collections ship single-precision solver dumps; on such
  // data (29 trailing-zero mantissa bits) the bit-granular gorilla codec
  // must reach >= 1.3x lossless where byte-granular xor-delta stays near
  // 1x. This is a hard gate: regressions flip the exit code.
  bool gorilla_gate = true;
  {
    flow::SpectralTurbulenceParams tp;
    tp.native_f32 = true;
    tp.seed = 7;
    const auto turb = flow::generate_spectral_turbulence(tp);
    const auto& tsnap = turb.snapshot(0);
    std::printf("\nnative-f32 SpectralTurbulence (%zu points x %zu vars), "
                "lossless codecs:\n",
                tsnap.shape().size(), tsnap.num_fields());
    bench::row_header({"codec", "bytes", "ratio", "enc MB/s", "dec MB/s"});
    const double turb_mb =
        static_cast<double>(tsnap.bytes()) / (1024.0 * 1024.0);
    double gorilla_ratio = 0.0, delta_ratio = 0.0;
    for (const auto& codec : store::codec_names()) {
      if (codec == "quant") continue;  // lossy: not part of this contrast
      store::StoreOptions opts;
      opts.chunk = {16, 16, 16};
      opts.codec = codec;
      const std::string path = (dir / ("turb_" + codec + ".skl2")).string();
      const auto report = store::write_store(tsnap, path, opts);
      double decode_seconds = 0.0;
      const auto round_trip = [&] {
        ScopedTimer decode_timer(decode_seconds);
        return store::ChunkReader(path).load_snapshot();
      }();
      const bool exact = max_abs_error(tsnap, round_trip) == 0.0;
      gorilla_gate = gorilla_gate && exact;
      if (codec == "gorilla") gorilla_ratio = report.compression_ratio();
      if (codec == "delta") delta_ratio = report.compression_ratio();
      std::printf("%-22s%-22zu%-22.3f%-22.0f%-22.0f\n", codec.c_str(),
                  report.file_bytes, report.compression_ratio(),
                  turb_mb / report.encode_seconds, turb_mb / decode_seconds);
    }
    gorilla_gate = gorilla_gate && gorilla_ratio >= 1.3 &&
                   gorilla_ratio > delta_ratio;
    std::printf("gorilla gate (>= 1.30x lossless and > delta's %.3fx): "
                "%.3fx — %s\n",
                delta_ratio, gorilla_ratio,
                gorilla_gate ? "PASS" : "FAIL");
  }

  // --- 2. Out-of-core streaming sampling matches the in-memory path --------
  sampling::PipelineConfig cfg;
  cfg.cube = {8, 8, 8};
  cfg.hypercube_method = "maxent";
  cfg.point_method = "maxent";
  cfg.num_hypercubes = 16;
  cfg.num_samples = 51;
  cfg.num_clusters = 5;
  cfg.input_vars = bundle.input_vars;
  cfg.output_vars = bundle.output_vars;
  cfg.cluster_var = bundle.cluster_var;
  const auto in_memory = run_pipeline(snap, cfg).merged();
  const store::ChunkReader reader((dir / "delta.skl2").string(),
                                  /*cache_bytes=*/4u << 20);
  const auto streamed =
      sampling::run_pipeline_streaming(reader, cfg).merged();
  bool match = in_memory.indices == streamed.indices &&
               in_memory.features == streamed.features;
  const auto cache = reader.cache_stats();
  std::printf("\nstreaming sampling over ChunkReader (4 MB cache, "
              "%zu hits / %zu misses / %zu evictions): %s\n",
              cache.hits, cache.misses, cache.evictions,
              match ? "matches in-memory sample set exactly"
                    : "MISMATCH vs in-memory sample set");

  // --- 3. SKL3 series vs N SKL2 files: amortization + append throughput ----
  std::printf("\nSKL3 series container vs per-snapshot SKL2 files "
              "(%zu snapshots, delta codec):\n",
              bundle.data.num_snapshots());
  bench::row_header({"container", "bytes", "meta bytes", "append MB/s",
                     "peak buf KB"});
  store::StoreOptions series_opts;
  series_opts.chunk = {16, 16, 16};
  series_opts.codec = "delta";
  {
    // Per-snapshot SKL2 baseline: every file pays its own header + index.
    std::size_t skl2_bytes = 0, skl2_meta = 0;
    Timer skl2_timer;
    for (std::size_t t = 0; t < bundle.data.num_snapshots(); ++t) {
      const auto rep = store::write_store(
          bundle.data.snapshot(t),
          (dir / ("series_" + std::to_string(t) + ".skl2")).string(),
          series_opts);
      skl2_bytes += rep.file_bytes;
      skl2_meta += rep.file_bytes - rep.payload_bytes;
    }
    const double skl2_seconds = skl2_timer.seconds();
    const double series_raw_mb =
        static_cast<double>(bundle.data.bytes()) / (1024.0 * 1024.0);
    std::printf("%-22s%-22zu%-22zu%-22.0f%-22s\n", "N x SKL2", skl2_bytes,
                skl2_meta, series_raw_mb / skl2_seconds, "-");

    // One streaming SKL3: one header, one index, bounded writer memory.
    Timer skl3_timer;
    store::SeriesWriter writer((dir / "series.skl3").string(), series_opts);
    for (std::size_t t = 0; t < bundle.data.num_snapshots(); ++t) {
      writer.append(bundle.data.snapshot(t));
    }
    const auto rep = writer.close();
    const double skl3_seconds = skl3_timer.seconds();
    std::printf("%-22s%-22zu%-22zu%-22.0f%-22zu\n", "1 x SKL3",
                rep.file_bytes, rep.meta_bytes,
                series_raw_mb / skl3_seconds,
                rep.peak_buffered_bytes >> 10);
    std::printf("meta amortization: %zu -> %zu header/index bytes "
                "(%zu saved; the per-chunk index is irreducible, the "
                "per-file header is paid once), 1 file instead of %zu\n",
                skl2_meta, rep.meta_bytes, skl2_meta - rep.meta_bytes,
                bundle.data.num_snapshots());

    // Self-check: streamed multi-snapshot sampling over the series
    // container matches the in-memory dataset pipeline exactly.
    const store::SeriesReader series_reader((dir / "series.skl3").string(),
                                            /*cache_bytes=*/4u << 20);
    std::vector<std::size_t> all(series_reader.num_snapshots());
    for (std::size_t t = 0; t < all.size(); ++t) all[t] = t;
    const auto series_streamed =
        sampling::run_pipeline_streaming(
            series_reader, cfg, std::span<const std::size_t>(all))
            .merged();
    const auto series_memory = run_pipeline(bundle.data, cfg).merged();
    const bool series_match =
        series_memory.indices == series_streamed.indices &&
        series_memory.features == series_streamed.features;
    match = match && series_match;
    std::printf("series streaming sampling: %s\n",
                series_match ? "matches in-memory dataset pipeline exactly"
                             : "MISMATCH vs in-memory dataset pipeline");
  }

  // --- 4. Sampled-subset byte ratios (the original experiment) -------------
  std::printf("\nMaxEnt sampled subsets vs the dense file:\n");
  bench::row_header({"rate", "points", "bytes", "reduction"});
  for (const double rate : {0.01, 0.05, 0.10, 0.20}) {
    sampling::PipelineConfig sub_cfg = cfg;
    // Cover the whole grid with cubes; sample `rate` inside each.
    sub_cfg.num_hypercubes =
        field::CubeTiling(snap.shape(), sub_cfg.cube).count();
    sub_cfg.num_samples = static_cast<std::size_t>(rate * 512.0);
    const auto result = run_pipeline(snap, sub_cfg);
    const auto merged = result.merged();

    io::SampleFile file;
    file.variables = merged.variables;
    file.indices.assign(merged.indices.begin(), merged.indices.end());
    file.features = merged.features;
    const std::size_t bytes =
        io::save_samples(file, (dir / "sampled.skl").string());
    char rate_buf[16];
    std::snprintf(rate_buf, sizeof(rate_buf), "%.0f%%", rate * 100.0);
    std::printf("%-22s%-22zu%-22zu%-22.1fx\n", rate_buf, merged.points(),
                bytes, static_cast<double>(dense_bytes) /
                           static_cast<double>(bytes));
  }
  std::filesystem::remove_all(dir);
  std::printf("\n(the sampled file also stores explicit indices, so the "
              "reduction is slightly below 1/rate)\n");
  return (match && gorilla_gate) ? 0 : 1;
}
