// Micro-kernel benchmarks (google-benchmark): the hot paths every
// experiment runs through — FFT, k-means, histograms, samplers, matmul.
#include <benchmark/benchmark.h>

#include "cluster/kmeans.hpp"
#include "common/rng.hpp"
#include "fft/fft.hpp"
#include "ml/tensor.hpp"
#include "sampling/point_samplers.hpp"
#include "stats/histogram.hpp"

namespace {

using namespace sickle;

void BM_Fft1D(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<fft::cplx> data(n);
  for (auto& x : data) x = fft::cplx(rng.normal(), 0.0);
  for (auto _ : state) {
    fft::forward(std::span<fft::cplx>(data));
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_Fft1D)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_Fft3D(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  std::vector<fft::cplx> data(n * n * n);
  for (auto& x : data) x = fft::cplx(rng.normal(), 0.0);
  for (auto _ : state) {
    fft::transform_3d(std::span<fft::cplx>(data), n, n, n, false);
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_Fft3D)->Arg(16)->Arg(32);

void BM_MiniBatchKMeans(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  std::vector<double> data(n);
  for (auto& x : data) x = rng.normal();
  cluster::KMeansOptions opts;
  opts.k = 20;
  opts.max_iterations = 20;
  for (auto _ : state) {
    Rng r(4);
    auto result = cluster::minibatch_kmeans(data, n, 1, opts, r);
    benchmark::DoNotOptimize(result.inertia);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_MiniBatchKMeans)->Arg(1 << 12)->Arg(1 << 15);

void BM_Histogram(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  std::vector<double> data(n);
  for (auto& x : data) x = rng.normal();
  for (auto _ : state) {
    auto h = stats::Histogram::fit(data, 100);
    benchmark::DoNotOptimize(h.total());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_Histogram)->Arg(1 << 14)->Arg(1 << 18);

field::Hypercube bench_cube(std::size_t n) {
  field::Hypercube cube;
  cube.variables = {"a", "b", "cv"};
  cube.values.resize(3);
  Rng rng(6);
  for (std::size_t i = 0; i < n; ++i) {
    cube.indices.push_back(i);
    cube.values[0].push_back(rng.normal());
    cube.values[1].push_back(rng.normal());
    cube.values[2].push_back(rng.normal());
  }
  return cube;
}

template <typename SamplerT>
void BM_Sampler(benchmark::State& state) {
  const auto cube = bench_cube(32 * 32 * 32);
  sampling::SamplerContext ctx;
  ctx.phase_variables = {"a", "b"};
  ctx.cluster_var = "cv";
  ctx.num_samples = 3277;  // the paper's 10% of 32^3
  ctx.num_clusters = 20;
  SamplerT sampler;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(++seed);
    auto sel = sampler.select(cube, ctx, rng);
    benchmark::DoNotOptimize(sel.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          cube.points());
}
BENCHMARK_TEMPLATE(BM_Sampler, sampling::RandomSampler);
BENCHMARK_TEMPLATE(BM_Sampler, sampling::StratifiedSampler);
BENCHMARK_TEMPLATE(BM_Sampler, sampling::UipsSampler);
BENCHMARK_TEMPLATE(BM_Sampler, sampling::MaxEntSampler);

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  ml::Tensor a = ml::Tensor::randn({n, n}, rng);
  ml::Tensor b = ml::Tensor::randn({n, n}, rng);
  ml::Tensor c({n, n});
  for (auto _ : state) {
    ml::matmul(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2 * n *
                          n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
