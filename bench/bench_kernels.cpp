// Micro-kernel benchmarks (google-benchmark): the hot paths every
// experiment runs through — FFT, k-means, histograms, samplers, cube
// scoring, matmul. Besides the console table, a run writes
// BENCH_kernels.json (ns/op, throughput, thread count, git sha); compare
// against the committed baseline in bench/baselines/ (docs/PERF.md).
#include <benchmark/benchmark.h>

#include <bit>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>
#include <thread>

#include "bench_util.hpp"
#include "cluster/kmeans.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "fft/fft.hpp"
#include "field/field_source.hpp"
#include "ml/tensor.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "sampling/cube_scoring.hpp"
#include "sampling/pipeline.hpp"
#include "sampling/point_samplers.hpp"
#include "sampling/temporal.hpp"
#include "stats/entropy.hpp"
#include "stats/histogram.hpp"
#include "store/codec.hpp"
#include "store/series_store.hpp"
#include "store/snapshot_store.hpp"

namespace {

using namespace sickle;

void BM_Fft1D(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<fft::cplx> data(n);
  for (auto& x : data) x = fft::cplx(rng.normal(), 0.0);
  for (auto _ : state) {
    fft::forward(std::span<fft::cplx>(data));
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_Fft1D)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_Fft3D(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  std::vector<fft::cplx> data(n * n * n);
  for (auto& x : data) x = fft::cplx(rng.normal(), 0.0);
  for (auto _ : state) {
    fft::transform_3d(std::span<fft::cplx>(data), n, n, n, false);
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_Fft3D)->Arg(16)->Arg(32);

void BM_MiniBatchKMeans(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  std::vector<double> data(n);
  for (auto& x : data) x = rng.normal();
  cluster::KMeansOptions opts;
  opts.k = 20;
  opts.max_iterations = 20;
  for (auto _ : state) {
    Rng r(4);
    auto result = cluster::minibatch_kmeans(data, n, 1, opts, r);
    benchmark::DoNotOptimize(result.inertia);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_MiniBatchKMeans)->Arg(1 << 12)->Arg(1 << 15);

void BM_Histogram(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  std::vector<double> data(n);
  for (auto& x : data) x = rng.normal();
  for (auto _ : state) {
    auto h = stats::Histogram::fit(data, 100);
    benchmark::DoNotOptimize(h.total());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_Histogram)->Arg(1 << 14)->Arg(1 << 18);

field::Hypercube bench_cube(std::size_t n) {
  field::Hypercube cube;
  cube.variables = {"a", "b", "cv"};
  cube.values.resize(3);
  Rng rng(6);
  for (std::size_t i = 0; i < n; ++i) {
    cube.indices.push_back(i);
    cube.values[0].push_back(rng.normal());
    cube.values[1].push_back(rng.normal());
    cube.values[2].push_back(rng.normal());
  }
  return cube;
}

template <typename SamplerT>
void BM_Sampler(benchmark::State& state) {
  const auto cube = bench_cube(32 * 32 * 32);
  sampling::SamplerContext ctx;
  ctx.phase_variables = {"a", "b"};
  ctx.cluster_var = "cv";
  ctx.num_samples = 3277;  // the paper's 10% of 32^3
  ctx.num_clusters = 20;
  SamplerT sampler;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(++seed);
    auto sel = sampler.select(cube, ctx, rng);
    benchmark::DoNotOptimize(sel.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          cube.points());
}
BENCHMARK_TEMPLATE(BM_Sampler, sampling::RandomSampler);
BENCHMARK_TEMPLATE(BM_Sampler, sampling::StratifiedSampler);
BENCHMARK_TEMPLATE(BM_Sampler, sampling::UipsSampler);
BENCHMARK_TEMPLATE(BM_Sampler, sampling::MaxEntSampler);

// ------------------------------------------------------------ cube scoring
//
// The selector hot path this PR's fused engine targets: 64^3 grid, 8^3
// cube tiling (512 cubes), k = 8 clusters. "Legacy" reproduces the pre-
// engine implementation — one single-element-span assign() per point, a
// floating-point PMF per cube, and the dense O(n^2 k) KL adjacency with a
// log in the inner loop. "Fused" is the shipping path: assign_batch ->
// integer counts -> blocked strengths from precomputed log rows. Both run
// serial here, so the JSON ratio isolates the kernel fusion itself.

struct CubeScoringFixture {
  field::Snapshot snap{{64, 64, 64}, 0.0};
  field::CubeTiling tiling{{64, 64, 64}, {8, 8, 8}};
  cluster::KMeansResult clusters;

  CubeScoringFixture() {
    auto& f = snap.add("cv");
    Rng rng(8);
    std::size_t i = 0;
    for (auto& x : f.data()) {
      x = std::sin(0.003 * static_cast<double>(i++)) + 0.25 * rng.normal();
    }
    cluster::KMeansOptions opts;
    opts.k = 8;
    opts.max_iterations = 20;
    Rng fit_rng(9);
    clusters = cluster::minibatch_kmeans(
        std::span<const double>(f.data()), f.data().size(), 1, opts,
        fit_rng);
  }

  static const CubeScoringFixture& instance() {
    static CubeScoringFixture fx;
    return fx;
  }
};

void BM_CubeScoringLegacy(benchmark::State& state) {
  const auto& fx = CubeScoringFixture::instance();
  const field::SnapshotSource src(fx.snap);
  for (auto _ : state) {
    std::vector<std::vector<double>> pmfs;
    pmfs.reserve(fx.tiling.count());
    for (std::size_t c = 0; c < fx.tiling.count(); ++c) {
      const auto indices = fx.tiling.point_indices(fx.tiling.coord(c));
      const auto values =
          src.gather("cv", std::span<const std::size_t>(indices));
      std::vector<double> pmf(fx.clusters.k, 0.0);
      for (const double v : values) {
        pmf[fx.clusters.assign(std::span<const double>(&v, 1))] += 1.0;
      }
      const double inv = 1.0 / static_cast<double>(indices.size());
      for (double& p : pmf) p *= inv;
      pmfs.push_back(std::move(pmf));
    }
    const auto adjacency =
        stats::kl_adjacency(std::span<const std::vector<double>>(pmfs));
    auto strengths = stats::node_strengths(
        std::span<const double>(adjacency), pmfs.size());
    benchmark::DoNotOptimize(strengths.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          fx.snap.shape().size());
}
BENCHMARK(BM_CubeScoringLegacy);

void BM_CubeScoringFused(benchmark::State& state) {
  const auto& fx = CubeScoringFixture::instance();
  const field::SnapshotSource src(fx.snap);
  for (auto _ : state) {
    const auto counts = sampling::count_cube_labels(src, fx.tiling,
                                                    fx.clusters, "cv");
    const auto pmfs = sampling::pmfs_from_counts(
        std::span<const std::uint32_t>(counts), fx.clusters.k,
        fx.tiling.spec().points());
    auto strengths = sampling::kl_node_strengths(
        std::span<const double>(pmfs), fx.tiling.count(), fx.clusters.k);
    benchmark::DoNotOptimize(strengths.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          fx.snap.shape().size());
}
BENCHMARK(BM_CubeScoringFused);

// ------------------------------------------------------------ KL strengths
//
// The Eq. 2 node-strength reduction in isolation, on synthetic [n x k]
// PMF matrices: "Row" is the blockwise O(n·k)-per-row kernel over
// precomputed logs (O(n²·k) for all rows); "Algebraic" is the
// column-log-sum identity Σ_j KL(p_i||p_j) = Σ_b p_i[b]·(n·log p_i[b] −
// S[b]), O(n·k) total. Equivalence is test-asserted in test_stats; the
// records here pin the asymptotic win (and make a regression back to the
// quadratic form impossible to miss). The 100k-cube arg runs only the
// algebraic form — the row kernel would take minutes there, which is the
// point.

std::vector<double> bench_pmfs(std::size_t n, std::size_t k) {
  Rng rng(12);
  std::vector<double> pmfs(n * k);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (std::size_t b = 0; b < k; ++b) {
      const double v = rng.uniform();
      pmfs[i * k + b] = v;
      sum += v;
    }
    for (std::size_t b = 0; b < k; ++b) pmfs[i * k + b] /= sum;
  }
  return pmfs;
}

void BM_KlStrengthsRow(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t k = 8;
  const auto pmfs = bench_pmfs(n, k);
  const auto logs = stats::log_pmf_rows(pmfs, n, k);
  std::vector<double> strengths(n);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      strengths[i] = stats::kl_row_strength(pmfs, logs, n, k, i);
    }
    benchmark::DoNotOptimize(strengths.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n * k));
}
BENCHMARK(BM_KlStrengthsRow)->Arg(512)->Arg(4096);

void BM_KlStrengthsAlgebraic(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t k = 8;
  const auto pmfs = bench_pmfs(n, k);
  const auto logs = stats::log_pmf_rows(pmfs, n, k);
  std::vector<double> strengths(n);
  for (auto _ : state) {
    const auto col_sums = stats::log_col_sums(logs, n, k);
    for (std::size_t i = 0; i < n; ++i) {
      strengths[i] =
          stats::kl_row_strength_fast(pmfs, logs, col_sums, n, k, i);
    }
    benchmark::DoNotOptimize(strengths.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n * k));
}
BENCHMARK(BM_KlStrengthsAlgebraic)->Arg(512)->Arg(4096)->Arg(100000);

// ------------------------------------------------------------ SIMD kernels
//
// The three `#pragma omp simd` hot loops, each paired with a scalar
// reference row so the committed BENCH_kernels.json records what
// vectorization buys on the runner's ISA (the reference container is
// SSE4.2/AVX). The shipping paths are the library calls; the *ScalarRef
// twins re-state the same arithmetic as plain serial loops.

void BM_HistogramAccumulate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(10);
  std::vector<double> data(n);
  for (auto& x : data) x = rng.normal();
  const auto ref = stats::Histogram::fit(data, 100);
  for (auto _ : state) {
    stats::Histogram h(ref.lo(), ref.hi(), 100);
    h.add(std::span<const double>(data));
    benchmark::DoNotOptimize(h.total());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * sizeof(double)));
}
BENCHMARK(BM_HistogramAccumulate)->Arg(1 << 16);

void BM_HistogramAccumulateScalarRef(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(10);
  std::vector<double> data(n);
  for (auto& x : data) x = rng.normal();
  const auto ref = stats::Histogram::fit(data, 100);
  for (auto _ : state) {
    std::vector<std::uint64_t> counts(100, 0);
    for (const double x : data) ++counts[ref.bin_of(x)];
    benchmark::DoNotOptimize(counts.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * sizeof(double)));
}
BENCHMARK(BM_HistogramAccumulateScalarRef)->Arg(1 << 16);

void BM_AssignBatch1D(benchmark::State& state) {
  const auto& fx = CubeScoringFixture::instance();
  const auto& values = fx.snap.get("cv").data();
  std::vector<std::uint32_t> labels(values.size());
  for (auto _ : state) {
    fx.clusters.assign_batch(std::span<const double>(values),
                             std::span<std::uint32_t>(labels));
    benchmark::DoNotOptimize(labels.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(values.size()));
}
BENCHMARK(BM_AssignBatch1D);

void BM_AssignBatch1DScalarRef(benchmark::State& state) {
  // The pre-interchange fused loop: per point, scan a local centroid
  // table. No span construction or per-centroid calls, but the argmin
  // recurrence is serial per point.
  const auto& fx = CubeScoringFixture::instance();
  const auto& values = fx.snap.get("cv").data();
  std::vector<std::uint32_t> labels(values.size());
  const std::size_t kk = fx.clusters.k;
  for (auto _ : state) {
    const double* c = fx.clusters.centroids.data();
    for (std::size_t i = 0; i < values.size(); ++i) {
      const double v = values[i];
      double best_d = std::numeric_limits<double>::infinity();
      std::uint32_t best = 0;
      for (std::size_t j = 0; j < kk; ++j) {
        const double d = (v - c[j]) * (v - c[j]);
        if (d < best_d) {
          best_d = d;
          best = static_cast<std::uint32_t>(j);
        }
      }
      labels[i] = best;
    }
    benchmark::DoNotOptimize(labels.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(values.size()));
}
BENCHMARK(BM_AssignBatch1DScalarRef);

std::vector<double> codec_bench_values(std::size_t n) {
  // f32-native smooth data: the case gorilla's window logic targets.
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = 300.0 + std::sin(0.01 * static_cast<double>(i));
    v[i] = static_cast<double>(static_cast<float>(x));
  }
  return v;
}

template <const char* Name>
void BM_CodecEncode(benchmark::State& state) {
  const auto codec = store::make_codec(Name);
  const auto values = codec_bench_values(1 << 15);
  for (auto _ : state) {
    auto block = codec->encode(values);
    benchmark::DoNotOptimize(block.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(values.size() *
                                               sizeof(double)));
}

template <const char* Name>
void BM_CodecDecode(benchmark::State& state) {
  const auto codec = store::make_codec(Name);
  const auto values = codec_bench_values(1 << 15);
  const auto block = codec->encode(values);
  for (auto _ : state) {
    auto out = codec->decode(block, values.size());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(values.size() *
                                               sizeof(double)));
}

constexpr char kDelta[] = "delta";
constexpr char kGorilla[] = "gorilla";
BENCHMARK_TEMPLATE(BM_CodecEncode, kDelta);
BENCHMARK_TEMPLATE(BM_CodecEncode, kGorilla);
BENCHMARK_TEMPLATE(BM_CodecDecode, kDelta);
BENCHMARK_TEMPLATE(BM_CodecDecode, kGorilla);

// The codec encoders' vectorized prologue in isolation: the XOR stencil
// that feeds the serial bit emission, exactly as shipped (pure 64-bit
// integer lanes under `#pragma omp simd`) vs the same loop left to the
// compiler's serial codegen.
void BM_CodecXorStencilSimd(benchmark::State& state) {
  const auto values = codec_bench_values(1 << 15);
  const std::size_t n = values.size();
  std::vector<std::uint64_t> xors(n);
  for (auto _ : state) {
    const double* vals = values.data();
#pragma omp simd
    for (std::size_t i = 0; i < n; ++i) {
      const auto u = std::bit_cast<std::uint64_t>(vals[i]);
      const auto p =
          i == 0 ? u : std::bit_cast<std::uint64_t>(vals[i - 1]);
      xors[i] = u ^ p;
    }
    benchmark::DoNotOptimize(xors.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * sizeof(double)));
}
BENCHMARK(BM_CodecXorStencilSimd);

void BM_CodecXorStencilScalar(benchmark::State& state) {
  const auto values = codec_bench_values(1 << 15);
  const std::size_t n = values.size();
  std::vector<std::uint64_t> xors(n);
  for (auto _ : state) {
    std::uint64_t prev = std::bit_cast<std::uint64_t>(values[0]);
    for (std::size_t i = 0; i < n; ++i) {
      const auto u = std::bit_cast<std::uint64_t>(values[i]);
      xors[i] = u ^ prev;
      prev = u;
      benchmark::DoNotOptimize(prev);  // pin the serial dependency chain
    }
    benchmark::DoNotOptimize(xors.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * sizeof(double)));
}
BENCHMARK(BM_CodecXorStencilScalar);

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  ml::Tensor a = ml::Tensor::randn({n, n}, rng);
  ml::Tensor b = ml::Tensor::randn({n, n}, rng);
  ml::Tensor c({n, n});
  for (auto _ : state) {
    ml::matmul(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2 * n *
                          n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128);

/// The ROADMAP multi-core item: on runners with more than one CPU, record
/// a threads=1 vs threads=N wall-clock row for the full two-phase
/// sampling pipeline into BENCH_kernels.json, so the first real multi-core
/// machine that runs the bench captures the `threads:` speedup. Single-CPU
/// runners (like the 1-core reference container) skip the row — a
/// "speedup" there would only measure pool overhead.
void record_pipeline_threads_row(sickle::bench::JsonReport* report) {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw <= 1) {
    std::printf("pipeline threads row: skipped (1 hardware thread)\n");
    return;
  }
  const auto& fx = CubeScoringFixture::instance();
  sampling::PipelineConfig cfg;
  cfg.cube = {8, 8, 8};
  cfg.hypercube_method = "maxent";
  cfg.point_method = "maxent";
  cfg.num_hypercubes = 64;
  cfg.num_samples = 51;
  cfg.num_clusters = 8;
  cfg.input_vars = {"cv"};
  cfg.cluster_var = "cv";

  auto run_with = [&](std::size_t threads) {
    cfg.threads = threads;
    Timer timer;
    const auto result = run_pipeline(fx.snap, cfg);
    benchmark::DoNotOptimize(result.cubes.data());
    return timer.seconds();
  };
  (void)run_with(1);  // warm-up: fault in the fixture and code paths
  const double serial_seconds = run_with(1);
  const double pooled_seconds = run_with(0);  // 0 = all hardware threads
  report->add("pipeline_threads_scaling",
              {{"threads_1_seconds", serial_seconds},
               {"threads_n_seconds", pooled_seconds},
               {"threads_n", static_cast<double>(hw)},
               {"speedup", serial_seconds / pooled_seconds}});
  std::printf("pipeline threads row: 1 thread %.3fs, %u threads %.3fs "
              "(%.2fx)\n",
              serial_seconds, hw, pooled_seconds,
              serial_seconds / pooled_seconds);
}

/// Write a synthetic one-variable SKL3 series for the store-path rows:
/// 48^3 grid, 16^3 chunks (27 blocks/snapshot), per-snapshot phase drift
/// so temporal selection has real novelty structure to rank.
void write_bench_series(const std::string& path, std::size_t snapshots,
                        const char* codec, std::uint32_t format_version) {
  store::StoreOptions opts;
  opts.chunk = {16, 16, 16};
  opts.codec = codec;
  opts.format_version = format_version;
  store::SeriesWriter writer(path, opts);
  for (std::size_t t = 0; t < snapshots; ++t) {
    field::Snapshot snap({48, 48, 48}, static_cast<double>(t));
    auto& f = snap.add("cv");
    Rng rng(100 + t);
    std::size_t i = 0;
    for (auto& x : f.data()) {
      x = std::sin(0.003 * static_cast<double>(i++) +
                   0.37 * static_cast<double>(t)) +
          0.25 * rng.normal();
    }
    writer.append(snap);
  }
  (void)writer.close();
}

/// The single-pass selection acceptance row: temporal selection on a
/// sealed v4 series (index-resident coarse histograms, zero payload
/// decodes before candidate refinement — m snapshot scans) vs the same
/// data sealed as v3 (one full coarse-histogram scan over all n
/// snapshots, then the m-candidate refinement). With n = 16 and k = 2
/// (m = 4 candidates) the payload I/O drops 5x, so CI gates the recorded
/// speedup at >= 2x — far above noise, far below the I/O ratio. This row
/// is I/O-count-driven, not parallelism-driven, so it runs (and is
/// gated) on single-CPU runners too.
void record_selection_single_pass(sickle::bench::JsonReport* report) {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "sickle_bench_selection";
  fs::create_directories(dir);
  const std::string v3_path = (dir / "sel_v3.skl3").string();
  const std::string v4_path = (dir / "sel_v4.skl3").string();
  constexpr std::size_t kSnapshots = 16;
  write_bench_series(v3_path, kSnapshots, "delta", /*format_version=*/3);
  write_bench_series(v4_path, kSnapshots, "delta", /*format_version=*/0);

  sampling::TemporalConfig tc;
  tc.variable = "cv";
  tc.num_snapshots = 2;  // m = refine_factor * k = 4 candidates < n = 16
  tc.bins = 64;

  auto select_seconds = [&](const std::string& path) {
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < 3; ++r) {
      // A fresh reader per repeat: every run pays the cold-store decode
      // pattern the format version dictates, never a warm block cache.
      const store::SeriesReader reader(path, /*cache_bytes=*/64u << 20);
      Timer timer;
      const auto selected = sampling::select_snapshots(reader, tc);
      benchmark::DoNotOptimize(selected.data());
      best = std::min(best, timer.seconds());
    }
    return best;
  };
  (void)select_seconds(v3_path);  // warm-up: page cache + code paths
  const double v3_seconds = select_seconds(v3_path);
  const double v4_seconds = select_seconds(v4_path);
  fs::remove_all(dir);

  const double speedup = v3_seconds / v4_seconds;
  report->add("selection_single_pass",
              {{"v3_seconds", v3_seconds},
               {"v4_seconds", v4_seconds},
               {"snapshots", static_cast<double>(kSnapshots)},
               {"candidates", 4.0},
               {"speedup", speedup}});
  std::printf("selection single-pass row: v3 %.4fs, v4 %.4fs (%.2fx)\n",
              v3_seconds, v4_seconds, speedup);
}

/// The async-readahead acceptance row: a cold sequential scan over every
/// block of a gorilla series (serial bit-unpacking — the decode-bound
/// worst case readahead targets) with prefetch off vs depth 8 on a
/// hardware-sized pool. Off, every decode runs on the demand thread; on,
/// workers decode ahead of the consumer, so the scan approaches
/// decode-throughput x workers. Values are bit-identical either way
/// (test-asserted); this row records what the overlap buys in wall
/// clock, CI-gated at >= 1.3x. Single-CPU runners skip: with one
/// hardware thread prefetch tasks and the consumer share a core, and the
/// row would measure scheduling overhead, not overlap.
void record_prefetch_streaming_scan(sickle::bench::JsonReport* report) {
  namespace fs = std::filesystem;
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw <= 1) {
    std::printf("prefetch scan row: skipped (1 hardware thread)\n");
    return;
  }
  const auto dir = fs::temp_directory_path() / "sickle_bench_prefetch";
  fs::create_directories(dir);
  const std::string path = (dir / "scan.skl3").string();
  constexpr std::size_t kSnapshots = 12;
  write_bench_series(path, kSnapshots, "gorilla", /*format_version=*/0);

  ThreadPool pool(hw);
  constexpr std::size_t kDepth = 8;
  auto scan_seconds = [&](std::size_t depth) {
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < 3; ++r) {
      store::ReaderOptions ro;
      ro.cache_bytes = 256u << 20;  // never evict: one decode per block
      ro.prefetch_depth = depth;
      ro.pool = &pool;
      const store::SeriesReader reader(path, ro);
      const std::size_t nchunks = reader.layout().count();
      Timer timer;
      double acc = 0.0;
      for (std::size_t t = 0; t < reader.num_snapshots(); ++t) {
        for (std::size_t c = 0; c < nchunks; ++c) {
          acc += (*reader.chunk(t, 0, c))[0];
        }
      }
      benchmark::DoNotOptimize(acc);
      best = std::min(best, timer.seconds());
    }
    return best;
  };
  (void)scan_seconds(0);  // warm-up: page cache + code paths
  const double off_seconds = scan_seconds(0);
  const double on_seconds = scan_seconds(kDepth);
  fs::remove_all(dir);

  const double speedup = off_seconds / on_seconds;
  report->add("prefetch_streaming_scan",
              {{"prefetch_off_seconds", off_seconds},
               {"prefetch_on_seconds", on_seconds},
               {"depth", static_cast<double>(kDepth)},
               {"pool_threads", static_cast<double>(hw)},
               {"speedup", speedup}});
  std::printf("prefetch scan row: off %.4fs, depth-%zu %.4fs (%.2fx)\n",
              off_seconds, kDepth, on_seconds, speedup);
}

/// The work-stealing acceptance row: an outer parallel_for whose bodies
/// each run an inner parallel_for — the shape that deadlocked or
/// serialized on the old single-queue pool and that helper-runs-tasks
/// waiting plus per-worker deques makes compose. Recorded against the
/// same arithmetic as plain nested serial loops; CI gates speedup > 1
/// (any real win proves nesting neither deadlocks nor serializes).
/// Single-CPU runners skip — one worker can only interleave.
void record_nested_parallel_for(sickle::bench::JsonReport* report) {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw <= 1) {
    std::printf("nested parallel_for row: skipped (1 hardware thread)\n");
    return;
  }
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 1 << 16;
  std::vector<double> sums(kOuter, 0.0);

  auto serial_seconds = [&] {
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < 3; ++r) {
      Timer timer;
      for (std::size_t i = 0; i < kOuter; ++i) {
        double s = 0.0;
        for (std::size_t j = 0; j < kInner; ++j) {
          const double x = 0.001 * static_cast<double>(j + i);
          s += std::sin(x) * std::cos(0.5 * x);
        }
        sums[i] = s;
      }
      benchmark::DoNotOptimize(sums.data());
      best = std::min(best, timer.seconds());
    }
    return best;
  };
  auto nested_seconds = [&] {
    ThreadPool pool(hw);
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < 3; ++r) {
      Timer timer;
      parallel_for(
          kOuter,
          [&](std::size_t i) {
            std::vector<double> partial(kInner);
            parallel_for(
                kInner,
                [&, i](std::size_t j) {
                  const double x = 0.001 * static_cast<double>(j + i);
                  partial[j] = std::sin(x) * std::cos(0.5 * x);
                },
                &pool, /*grain=*/4096);
            double s = 0.0;
            for (const double x : partial) s += x;
            sums[i] = s;
          },
          &pool, /*grain=*/1);
      benchmark::DoNotOptimize(sums.data());
      best = std::min(best, timer.seconds());
    }
    return best;
  };
  const double serial = serial_seconds();
  const double nested = nested_seconds();
  const double speedup = serial / nested;
  report->add("nested_parallel_for",
              {{"serial_seconds", serial},
               {"nested_seconds", nested},
               {"pool_threads", static_cast<double>(hw)},
               {"speedup", speedup}});
  std::printf("nested parallel_for row: serial %.4fs, %u threads %.4fs "
              "(%.2fx)\n",
              serial, hw, nested, speedup);
}

/// The obs-overhead acceptance row: the same streaming sampling pipeline
/// run with the observability layer globally off vs on, interleaved
/// min-of-N so both sides see the same thermal/noise envelope. The store-
/// backed path is the worst case for span density (one store.load_chunk +
/// codec.decode pair per cache miss on top of the stage spans), so its
/// ratio bounds every other workload. tools/check_obs_overhead.py gates
/// the committed baseline's ratio at 3%.
void record_obs_overhead_row(sickle::bench::JsonReport* report) {
  namespace fs = std::filesystem;
  const auto& fx = CubeScoringFixture::instance();
  const auto dir = fs::temp_directory_path() / "sickle_obs_overhead";
  fs::create_directories(dir);
  const std::string path = (dir / "obs.skl2").string();
  store::StoreOptions opts;
  opts.chunk = {16, 16, 16};
  opts.codec = "delta";
  (void)store::write_store(fx.snap, path, opts);

  sampling::PipelineConfig cfg;
  cfg.cube = {8, 8, 8};
  cfg.hypercube_method = "maxent";
  cfg.point_method = "maxent";
  cfg.num_hypercubes = 32;
  cfg.num_samples = 51;
  cfg.num_clusters = 8;
  cfg.input_vars = {"cv"};
  cfg.cluster_var = "cv";

  auto run_once = [&] {
    // A fresh reader with a deliberately small cache keeps chunk loads
    // (and therefore trace events) in the timed region every repeat.
    const store::ChunkReader reader(path, /*cache_bytes=*/1u << 20);
    Timer timer;
    const auto result = sampling::run_pipeline_streaming(reader, cfg);
    benchmark::DoNotOptimize(result.cubes.data());
    return timer.seconds();
  };

  constexpr int kRepeats = 5;
  const bool was_enabled = obs::enabled();
  obs::set_enabled(false);
  (void)run_once();  // warm-up: fault in code paths and the page cache
  double disabled_s = std::numeric_limits<double>::infinity();
  double enabled_s = std::numeric_limits<double>::infinity();
  for (int i = 0; i < kRepeats; ++i) {
    obs::set_enabled(false);
    disabled_s = std::min(disabled_s, run_once());
    obs::set_enabled(true);
    enabled_s = std::min(enabled_s, run_once());
  }
  obs::set_enabled(was_enabled);
  obs::Tracer::instance().clear();
  obs::MetricsRegistry::global().reset();
  fs::remove_all(dir);

  const double ratio = enabled_s / disabled_s;
  report->add("obs_overhead_pipeline", {{"disabled_seconds", disabled_s},
                                        {"enabled_seconds", enabled_s},
                                        {"overhead_ratio", ratio}});
  std::printf("obs overhead row: disabled %.4fs, enabled %.4fs "
              "(%.3fx, min of %d interleaved)\n",
              disabled_s, enabled_s, ratio, kRepeats);
}

/// Console output as usual, plus every non-aggregate run collected into a
/// bench::JsonReport (ns/op, items/s, bytes/s, thread count). Runs are
/// folded per benchmark name via add_sample, so
/// `--benchmark_repetitions=N` yields one record per kernel carrying the
/// median plus min/max dispersion instead of N duplicate records.
class JsonCollectingReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCollectingReporter(sickle::bench::JsonReport* out)
      : out_(out) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (!run.aggregate_name.empty()) continue;
      const std::string name = run.benchmark_name();
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      out_->add_sample(name, "ns_per_op",
                       run.real_accumulated_time / iters * 1e9);
      out_->add_sample(name, "threads", static_cast<double>(run.threads));
      for (const char* counter : {"items_per_second", "bytes_per_second"}) {
        if (const auto it = run.counters.find(counter);
            it != run.counters.end()) {
          out_->add_sample(name, counter, static_cast<double>(it->second));
        }
      }
    }
  }

 private:
  sickle::bench::JsonReport* out_;
};

}  // namespace

int main(int argc, char** argv) {
  // Strip our --json_out=PATH flag before google-benchmark sees (and
  // rejects) it.
  std::string json_path = "BENCH_kernels.json";
  int argc_out = 0;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    constexpr const char* kFlag = "--json_out=";
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      json_path = argv[i] + std::strlen(kFlag);
    } else {
      args.push_back(argv[i]);
      ++argc_out;
    }
  }
  benchmark::Initialize(&argc_out, args.data());
  if (benchmark::ReportUnrecognizedArguments(argc_out, args.data())) {
    return 1;
  }
  sickle::bench::JsonReport report("bench_kernels");
  JsonCollectingReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  record_pipeline_threads_row(&report);
  record_selection_single_pass(&report);
  record_prefetch_streaming_scan(&report);
  record_nested_parallel_for(&report);
  record_obs_overhead_row(&report);
  report.write(json_path);
  benchmark::Shutdown();
  return 0;
}
