// Fig. 8: training loss vs energy cost for the five H*/X* sampling cases
// on SST-P1F4, SST-P1F100 and GESTS.
//
// Reproduces the paper's Slurm case list: Hmaxent-Xmaxent, Hmaxent-Xuips,
// Hrandom-Xfull (dense CNN-Transformer baseline), Hrandom-Xmaxent,
// Hrandom-Xuips. Expected shape: the 10% MaxEnt cases reach comparable or
// better loss at an order of magnitude less energy than the dense
// baseline (paper: up to 38x on SST-P1F4); separation is weakest on the
// isotropic GESTS case.
#include <cstdio>

#include "bench_util.hpp"
#include "sickle/case.hpp"

using namespace sickle;

namespace {

struct CaseDef {
  const char* name;
  const char* hmethod;
  const char* xmethod;
  const char* arch;
};

constexpr CaseDef kCases[] = {
    {"Hmaxent-Xmaxent", "maxent", "maxent", "MLP_Transformer"},
    {"Hmaxent-Xuips", "maxent", "uips", "MLP_Transformer"},
    {"Hrandom-Xfull", "random", "full", "CNN_Transformer"},
    {"Hrandom-Xmaxent", "random", "maxent", "MLP_Transformer"},
    {"Hrandom-Xuips", "random", "uips", "MLP_Transformer"},
};

void run_dataset(const std::string& label, double scale) {
  const auto bundle = make_dataset(label, 42, scale);
  std::printf("-- %s\n", label.c_str());
  bench::row_header({"case", "test_loss", "sample_J", "train_J",
                     "total_J"});
  double maxent_kj = 0.0, full_kj = 0.0;
  double maxent_loss = 0.0, full_loss = 0.0;
  for (const auto& def : kCases) {
    CaseConfig cfg;
    cfg.pipeline.cube = {16, 16, 16};
    cfg.pipeline.hypercube_method = def.hmethod;
    cfg.pipeline.point_method = def.xmethod;
    cfg.pipeline.num_hypercubes = 8;
    cfg.pipeline.num_samples = 410;  // 10% of 16^3
    cfg.pipeline.num_clusters = 5;
    cfg.pipeline.seed = 42;
    cfg.arch = def.arch;
    cfg.train.epochs = 12;
    cfg.train.batch = 4;
    cfg.train.seed = 1;
    cfg.model_dim = 16;
    cfg.model_heads = 2;
    cfg.model_layers = 1;
    const auto report = run_case(bundle, cfg);
    std::printf("%-22s%-22.4f%-22.4f%-22.4f%-22.4f\n", def.name,
                report.train.test_loss, report.sampling_kilojoules * 1e3,
                report.training_kilojoules * 1e3,
                report.total_kilojoules() * 1e3);
    if (std::string(def.name) == "Hmaxent-Xmaxent") {
      maxent_kj = report.total_kilojoules();
      maxent_loss = report.train.test_loss;
    }
    if (std::string(def.name) == "Hrandom-Xfull") {
      full_kj = report.total_kilojoules();
      full_loss = report.train.test_loss;
    }
  }
  std::printf("energy ratio full/maxent = %.1fx (paper: up to 38x on "
              "SST-P1F4); loss maxent=%.4f vs full=%.4f\n\n",
              full_kj / std::max(maxent_kj, 1e-12), maxent_loss, full_loss);
}

}  // namespace

int main() {
  bench::banner("Fig. 8 — training loss vs energy per sampling case",
                "MaxEnt in the lower-left (low loss, low energy) for the "
                "anisotropic SST cases; weaker separation on GESTS");
  run_dataset("SST-P1F4", 1.0);
  run_dataset("SST-P1F100", 0.5);
  run_dataset("GESTS-2048", 1.0);
  return 0;
}
