// Drag-prediction surrogate (the paper's sample-single problem).
//
// Samples ns "sensor" points from the OF2D cylinder flowfield with MaxEnt,
// trains the LSTM architecture of Table 2 on windows of the sensor
// readings, and predicts the drag coefficient — then compares against a
// random-sensor baseline, the Fig. 6 experiment in miniature.
#include <cstdio>

#include "ml/models.hpp"
#include "sickle/case.hpp"

int main() {
  using namespace sickle;

  std::printf("generating OF2D cylinder wake (100 snapshots + drag)...\n");
  const DatasetBundle bundle = make_dataset("OF2D", /*seed=*/42);

  const std::size_t ns = 128;     // sensors
  const std::size_t window = 3;   // input sequence length

  for (const char* method : {"maxent", "random"}) {
    energy::EnergyCounter sampling_energy;
    const ml::TensorDataset data = build_drag_dataset(
        bundle, method, ns, window, /*seed=*/1, &sampling_energy);

    Rng mrng(7);
    ml::LstmModelConfig mc;
    mc.in_channels = 2 * ns;  // u, v per sensor
    mc.hidden = 16;
    mc.out_channels = 1;
    ml::LstmModel model(mc, mrng);

    ml::TrainConfig tc;
    tc.epochs = 30;
    tc.batch = 16;
    tc.lr = 2e-3;
    tc.patience = 10;
    const auto report = ml::fit(model, data, tc);

    std::printf("\n%s sensors (%zu of 10800 points):\n", method, ns);
    std::printf("  model parameters: %zu\n", report.parameters);
    std::printf("  final train loss: %.5f\n", report.final_train_loss);
    std::printf("  Evaluation on test set: %.5f\n", report.test_loss);
    std::printf("  %s\n", report.energy.report().c_str());
  }
  std::printf("\n(MaxEnt sensors concentrate on the wake and typically "
              "yield the lower, more stable test loss — Fig. 6)\n");
  return 0;
}
