// SPMD parallel sampling: the paper's `srun -n 32 python subsample.py`
// in-process. Demonstrates that the rank-decomposed pipeline produces a
// result independent of the rank count, and reports per-rank work plus
// the modeled communication cost.
#include <cstdio>

#include "parallel/world.hpp"
#include "sampling/pipeline.hpp"
#include "sickle/dataset_zoo.hpp"

int main() {
  using namespace sickle;

  const DatasetBundle bundle = make_dataset("SST-P1F100", /*seed=*/42);
  const auto& snap = bundle.data.snapshot(0);

  sampling::PipelineConfig cfg;
  cfg.cube = {8, 8, 8};
  cfg.hypercube_method = "maxent";
  cfg.point_method = "maxent";
  cfg.num_hypercubes = 64;
  cfg.num_samples = 51;
  cfg.num_clusters = 5;
  cfg.input_vars = bundle.input_vars;
  cfg.output_vars = bundle.output_vars;
  cfg.cluster_var = bundle.cluster_var;
  cfg.seed = 3;

  std::printf("grid %zux%zux%zu, selecting %zu cubes of 8^3, 10%% points\n\n",
              snap.shape().nx, snap.shape().ny, snap.shape().nz,
              cfg.num_hypercubes);

  std::size_t reference_points = 0;
  for (const std::size_t nranks : {1, 2, 4, 8}) {
    World world(nranks);
    std::size_t total_points = 0;
    const auto report = world.run([&](Comm& comm) {
      const auto result = run_pipeline(snap, cfg, comm);
      if (comm.is_root()) total_points = result.total_points();
    });
    if (nranks == 1) reference_points = total_points;
    std::printf("%zu ranks: %zu points sampled | wall %.3f s | max rank "
                "cpu %.3f s | modeled comm %.6f s | simulated %.3f s%s\n",
                nranks, total_points, report.wall_seconds,
                report.max_rank_cpu_seconds, report.modeled_comm_seconds,
                report.simulated_seconds(),
                total_points == reference_points ? "" : "  <-- MISMATCH");
  }
  std::printf("\nthe sample set is identical at every rank count "
              "(deterministic counter RNG keyed by cube id).\n");
  return 0;
}
