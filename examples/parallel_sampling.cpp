// Parallel sampling, both flavors. SPMD: the paper's `srun -n 32 python
// subsample.py` in-process — the rank-decomposed pipeline produces a
// result independent of the rank count, with per-rank work plus the
// modeled communication cost. Shared-memory: the `threads:` knob fans
// cube scoring and point sampling over a thread pool with bit-identical
// sample sets at any thread count.
#include <cstdio>

#include "common/timer.hpp"
#include "parallel/world.hpp"
#include "sampling/pipeline.hpp"
#include "sickle/dataset_zoo.hpp"

int main() {
  using namespace sickle;

  const DatasetBundle bundle = make_dataset("SST-P1F100", /*seed=*/42);
  const auto& snap = bundle.data.snapshot(0);

  sampling::PipelineConfig cfg;
  cfg.cube = {8, 8, 8};
  cfg.hypercube_method = "maxent";
  cfg.point_method = "maxent";
  cfg.num_hypercubes = 64;
  cfg.num_samples = 51;
  cfg.num_clusters = 5;
  cfg.input_vars = bundle.input_vars;
  cfg.output_vars = bundle.output_vars;
  cfg.cluster_var = bundle.cluster_var;
  cfg.seed = 3;

  std::printf("grid %zux%zux%zu, selecting %zu cubes of 8^3, 10%% points\n\n",
              snap.shape().nx, snap.shape().ny, snap.shape().nz,
              cfg.num_hypercubes);

  std::size_t reference_points = 0;
  for (const std::size_t nranks : {1, 2, 4, 8}) {
    World world(nranks);
    std::size_t total_points = 0;
    const auto report = world.run([&](Comm& comm) {
      const auto result = run_pipeline(snap, cfg, comm);
      if (comm.is_root()) total_points = result.total_points();
    });
    if (nranks == 1) reference_points = total_points;
    std::printf("%zu ranks: %zu points sampled | wall %.3f s | max rank "
                "cpu %.3f s | modeled comm %.6f s | simulated %.3f s%s\n",
                nranks, total_points, report.wall_seconds,
                report.max_rank_cpu_seconds, report.modeled_comm_seconds,
                report.simulated_seconds(),
                total_points == reference_points ? "" : "  <-- MISMATCH");
  }
  std::printf("\nthe sample set is identical at every rank count "
              "(deterministic counter RNG keyed by cube id).\n\n");

  // Shared-memory flavor: same pipeline, `threads:` pool instead of
  // ranks. The comparison is bitwise — indices and features.
  cfg.threads = 1;
  Timer serial_timer;
  const auto serial = run_pipeline(snap, cfg).merged();
  const double serial_s = serial_timer.seconds();
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    cfg.threads = threads;
    Timer timer;
    const auto pooled = run_pipeline(snap, cfg).merged();
    const bool exact = pooled.indices == serial.indices &&
                       pooled.features == serial.features;
    std::printf("threads=%zu: %zu points | wall %.3f s (serial %.3f s) | "
                "%s\n",
                threads, pooled.points(), timer.seconds(), serial_s,
                exact ? "bit-exact with serial" : "MISMATCH");
  }
  std::printf("\n`threads:` changes wall time only; on a 1-CPU container "
              "expect no speedup, just the exactness guarantee.\n");
  return 0;
}
