// Foundation-model training on intelligently sampled turbulence
// (the Fig. 9 pipeline in example form).
//
// Runs the full SICKLE case: MaxEnt subsampling of a stratified DNS
// substitute, then training the multiscale adaptive (MATEY-like)
// foundation model to reconstruct the pressure field from the sampled
// inputs, with energy accounting throughout.
#include <cstdio>

#include "sickle/case.hpp"

int main() {
  using namespace sickle;

  std::printf("generating SST-P1F4 (scaled)...\n");
  const DatasetBundle bundle = make_dataset("SST-P1F4", /*seed=*/42);

  CaseConfig cfg;
  cfg.pipeline.cube = {8, 8, 8};
  cfg.pipeline.hypercube_method = "maxent";
  cfg.pipeline.point_method = "maxent";
  cfg.pipeline.num_hypercubes = 12;
  cfg.pipeline.num_samples = 51;  // 10% rate
  cfg.pipeline.num_clusters = 8;
  cfg.pipeline.seed = 21;
  cfg.arch = "Foundation";
  cfg.model_dim = 32;
  cfg.model_heads = 4;
  cfg.model_layers = 2;
  cfg.train.epochs = 25;
  cfg.train.batch = 8;
  cfg.train.lr = 1e-3;
  cfg.train.patience = 10;

  std::printf("running subsample -> train -> evaluate...\n");
  const CaseReport report = run_case(bundle, cfg);

  std::printf("\nresults:\n");
  std::printf("  sampled points:      %zu\n", report.sampled_points);
  std::printf("  sampling time:       %.3f s\n", report.sampling_seconds);
  std::printf("  model parameters:    %zu\n", report.train.parameters);
  std::printf("  final train loss:    %.5f\n",
              report.train.final_train_loss);
  std::printf("  Evaluation on test set: %.5f\n", report.train.test_loss);
  std::printf("  sampling energy:     %.4f kJ\n",
              report.sampling_kilojoules);
  std::printf("  training energy:     %.4f kJ\n",
              report.training_kilojoules);
  std::printf("  Total Energy Consumed: %.4f kJ\n",
              report.total_kilojoules());
  return 0;
}
