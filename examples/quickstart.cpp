// Quickstart: generate a turbulence dataset, run the two-phase MaxEnt
// sampling pipeline, inspect the result, and save the sparse subset.
//
// Build & run:
//   cmake -B build -S . && cmake --build build -j
//   ./build/example_quickstart
#include <cstdio>
#include <filesystem>

#include "io/snapshot_io.hpp"
#include "sampling/pipeline.hpp"
#include "sickle/dataset_zoo.hpp"
#include "stats/descriptive.hpp"

int main() {
  using namespace sickle;

  // 1. A stratified-turbulence dataset (SST-P1F4 substitute; see Table 1).
  std::printf("generating SST-P1F4 (scaled)...\n");
  const DatasetBundle bundle = make_dataset("SST-P1F4", /*seed=*/42);
  const auto& snap = bundle.data.snapshot(0);
  std::printf("  grid %zux%zux%zu, %zu snapshots, %.1f MB, cluster var "
              "'%s'\n",
              snap.shape().nx, snap.shape().ny, snap.shape().nz,
              bundle.data.num_snapshots(),
              static_cast<double>(bundle.data.bytes()) / (1 << 20),
              bundle.cluster_var.c_str());

  // 2. Configure the two-phase pipeline: MaxEnt hypercube selection
  //    (Hmaxent) + MaxEnt point sampling (Xmaxent) at a ~10% rate.
  sampling::PipelineConfig cfg;
  cfg.cube = {8, 8, 8};
  cfg.hypercube_method = "maxent";
  cfg.point_method = "maxent";
  cfg.num_hypercubes = 16;
  cfg.num_samples = 51;  // 10% of 8^3
  cfg.num_clusters = 10;
  cfg.input_vars = bundle.input_vars;
  cfg.output_vars = bundle.output_vars;
  cfg.cluster_var = bundle.cluster_var;
  cfg.seed = 7;

  // 3. Run it.
  const sampling::PipelineResult result = run_pipeline(snap, cfg);
  std::printf("sampled %zu points from %zu cubes in %.3f s\n",
              result.total_points(), result.cubes.size(),
              result.sampling_seconds);
  std::printf("  %s\n", result.energy.report().c_str());

  // 4. Inspect: the sampled subset should preserve the cluster variable's
  //    spread (that is the point of MaxEnt).
  const auto merged = result.merged();
  const auto sampled_pv = merged.column(bundle.cluster_var);
  const auto full_pv_span = snap.get(bundle.cluster_var).data();
  const std::vector<double> full_pv(full_pv_span.begin(),
                                    full_pv_span.end());
  const auto ms = stats::compute_moments(sampled_pv);
  const auto mf = stats::compute_moments(full_pv);
  std::printf("  %s: full std %.4f / range [%.3f, %.3f]\n",
              bundle.cluster_var.c_str(), mf.stddev, mf.min, mf.max);
  std::printf("  %s: sampled std %.4f / range [%.3f, %.3f]\n",
              bundle.cluster_var.c_str(), ms.stddev, ms.min, ms.max);

  // 5. Persist the sparse subset (storage reduction).
  io::SampleFile file;
  file.variables = merged.variables;
  file.indices.assign(merged.indices.begin(), merged.indices.end());
  file.features = merged.features;
  const auto path =
      (std::filesystem::temp_directory_path() / "quickstart_samples.skl")
          .string();
  const std::size_t bytes = io::save_samples(file, path);
  std::printf("saved sparse subset: %s (%zu bytes, vs %.0f bytes dense)\n",
              path.c_str(), bytes,
              static_cast<double>(snap.bytes()));
  return 0;
}
