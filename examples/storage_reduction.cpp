// Storage reduction: write a dense DNS snapshot and a MaxEnt-sampled
// sparse subset side by side and compare their on-disk footprints.
#include <cstdio>
#include <filesystem>

#include "io/snapshot_io.hpp"
#include "sampling/pipeline.hpp"
#include "sickle/dataset_zoo.hpp"

int main() {
  using namespace sickle;

  const DatasetBundle bundle = make_dataset("GESTS-2048", /*seed=*/42);
  const auto& snap = bundle.data.snapshot(0);
  const auto dir = std::filesystem::temp_directory_path();

  const std::size_t dense =
      io::save_snapshot(snap, (dir / "gests_dense.skl").string());
  std::printf("dense snapshot:  %10zu bytes (%zu points x %zu vars)\n",
              dense, snap.shape().size(), snap.num_fields());

  sampling::PipelineConfig cfg;
  cfg.cube = {8, 8, 8};
  cfg.hypercube_method = "maxent";
  cfg.point_method = "maxent";
  cfg.num_hypercubes = field::CubeTiling(snap.shape(), cfg.cube).count();
  cfg.num_samples = 51;  // 10% of each cube
  cfg.num_clusters = 8;
  cfg.input_vars = bundle.input_vars;
  cfg.output_vars = bundle.output_vars;
  cfg.cluster_var = bundle.cluster_var;
  const auto result = run_pipeline(snap, cfg);
  const auto merged = result.merged();

  io::SampleFile file;
  file.variables = merged.variables;
  file.indices.assign(merged.indices.begin(), merged.indices.end());
  file.features = merged.features;
  const std::size_t sparse =
      io::save_samples(file, (dir / "gests_sparse.skl").string());
  std::printf("sparse subset:   %10zu bytes (%zu points, all variables + "
              "indices)\n",
              sparse, merged.points());
  std::printf("reduction:       %.1fx\n",
              static_cast<double>(dense) / static_cast<double>(sparse));

  std::filesystem::remove(dir / "gests_dense.skl");
  std::filesystem::remove(dir / "gests_sparse.skl");
  return 0;
}
