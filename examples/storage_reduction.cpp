// Storage reduction: write a dense DNS snapshot three ways — flat SKL1,
// chunked compressed SKL2, and a MaxEnt-sampled sparse subset — and
// compare their on-disk footprints. Also demonstrates out-of-core
// sampling straight from the compressed store.
#include <cstdio>
#include <filesystem>

#include "io/snapshot_io.hpp"
#include "sampling/pipeline.hpp"
#include "sickle/dataset_zoo.hpp"
#include "store/snapshot_store.hpp"

int main() {
  using namespace sickle;

  const DatasetBundle bundle = make_dataset("GESTS-2048", /*seed=*/42);
  const auto& snap = bundle.data.snapshot(0);
  const auto dir = std::filesystem::temp_directory_path();

  const std::size_t dense =
      io::save_snapshot(snap, (dir / "gests_dense.skl").string());
  std::printf("dense snapshot:  %10zu bytes (%zu points x %zu vars)\n",
              dense, snap.shape().size(), snap.num_fields());

  // Chunked compressed stores: lossless delta and 1e-3-tolerance quant.
  store::StoreOptions sopts;
  sopts.chunk = {16, 16, 16};
  sopts.codec = "delta";
  const auto delta_report = store::write_store(
      snap, (dir / "gests_delta.skl2").string(), sopts);
  sopts.codec = "quant";
  sopts.tolerance = 1e-3;
  const auto quant_report = store::write_store(
      snap, (dir / "gests_quant.skl2").string(), sopts);
  std::printf("SKL2 delta:      %10zu bytes (lossless, %.2fx vs raw)\n",
              delta_report.file_bytes, delta_report.compression_ratio());
  std::printf("SKL2 quant 1e-3: %10zu bytes (lossy, %.2fx vs raw)\n",
              quant_report.file_bytes, quant_report.compression_ratio());

  sampling::PipelineConfig cfg;
  cfg.cube = {8, 8, 8};
  cfg.hypercube_method = "maxent";
  cfg.point_method = "maxent";
  cfg.num_hypercubes = field::CubeTiling(snap.shape(), cfg.cube).count();
  cfg.num_samples = 51;  // 10% of each cube
  cfg.num_clusters = 8;
  cfg.input_vars = bundle.input_vars;
  cfg.output_vars = bundle.output_vars;
  cfg.cluster_var = bundle.cluster_var;
  const auto result = run_pipeline(snap, cfg);
  const auto merged = result.merged();

  // The same sampling also runs out-of-core, streaming chunks from the
  // compressed store instead of touching the in-memory snapshot.
  const store::ChunkReader reader((dir / "gests_delta.skl2").string());
  const auto streamed = sampling::run_pipeline_streaming(reader, cfg).merged();
  std::printf("out-of-core:     sampled %zu points from the delta store "
              "(%s in-memory result)\n",
              streamed.points(),
              streamed.indices == merged.indices ? "identical to"
                                                 : "DIFFERS from");

  io::SampleFile file;
  file.variables = merged.variables;
  file.indices.assign(merged.indices.begin(), merged.indices.end());
  file.features = merged.features;
  const std::size_t sparse =
      io::save_samples(file, (dir / "gests_sparse.skl").string());
  std::printf("sparse subset:   %10zu bytes (%zu points, all variables + "
              "indices)\n",
              sparse, merged.points());
  std::printf("reduction:       %.1fx\n",
              static_cast<double>(dense) / static_cast<double>(sparse));

  std::filesystem::remove(dir / "gests_dense.skl");
  std::filesystem::remove(dir / "gests_delta.skl2");
  std::filesystem::remove(dir / "gests_quant.skl2");
  std::filesystem::remove(dir / "gests_sparse.skl");
  return 0;
}
