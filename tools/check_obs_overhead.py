#!/usr/bin/env python3
"""Observability zero-overhead gate: assert that the interleaved
obs-on/obs-off pipeline row bench_kernels emits stays under a small
ratio when the layer is enabled, and is therefore unmeasurable when it
is disabled (the disabled path is a single relaxed atomic load per
would-be span).

Usage:
    python3 tools/check_obs_overhead.py BENCH_kernels.json \
        [--max-ratio 1.03] [--record obs_overhead_pipeline]

The record is produced by record_obs_overhead_row() in
bench/bench_kernels.cpp: min-of-N interleaved wall times of the
store-backed streaming sampling pipeline with obs::set_enabled(false)
vs (true). Exit status 1 when the record is missing or the ratio
exceeds the bound.
"""

import argparse
import json
import sys


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="freshly emitted BENCH_kernels.json")
    parser.add_argument("--max-ratio", type=float, default=1.03,
                        help="fail when enabled/disabled exceeds this "
                             "(default 1.03, the <3%% acceptance bound)")
    parser.add_argument("--record", default="obs_overhead_pipeline",
                        help="record name to check")
    args = parser.parse_args()

    try:
        with open(args.report) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_obs_overhead: cannot load {args.report}: {e}",
              file=sys.stderr)
        return 1

    rec = next((r for r in doc.get("records", [])
                if r.get("name") == args.record), None)
    if rec is None:
        print(f"check_obs_overhead: record {args.record!r} not in "
              f"{args.report}", file=sys.stderr)
        return 1

    disabled = rec.get("disabled_seconds")
    enabled = rec.get("enabled_seconds")
    ratio = rec.get("overhead_ratio")
    if ratio is None and disabled and enabled:
        ratio = enabled / disabled
    if not isinstance(ratio, (int, float)) or ratio <= 0:
        print(f"check_obs_overhead: record {args.record!r} has no usable "
              f"overhead_ratio", file=sys.stderr)
        return 1

    verdict = "OK" if ratio <= args.max_ratio else "FAIL"
    print(f"check_obs_overhead: {verdict} — disabled {disabled}s, "
          f"enabled {enabled}s, ratio {ratio:.4f} "
          f"(bound {args.max_ratio:.2f})")
    if verdict == "FAIL":
        print("The observability layer is costing measurable wall time "
              "on the pipeline row; profile the span/counter hot paths "
              "before merging.", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
