#!/usr/bin/env python3
"""Bench-regression gate: compare an emitted BENCH_*.json against its
committed baseline in bench/baselines/.

Usage:
    python3 tools/check_bench.py CURRENT.json BASELINE.json [--tolerance F]

Exit status 1 when any record regresses beyond the tolerance factor,
0 otherwise. Records are matched by their "name" key; the compared metric
is "ns_per_op" when present (google-benchmark kernels), otherwise
"sim_time_s" (the fig7 scalability model). Lower is better for both.

The tolerance is deliberately generous (default 3.0x): shared CI runners
have noisy neighbours and frequency scaling, so this gate catches
order-of-magnitude regressions and algorithmic accidents, not single-digit
percent drift. Records present only on one side are reported but never
fail the gate (benches grow and shrink across PRs; a *removed* baseline
should be refreshed, not block unrelated work).

Refreshing baselines after an intentional perf change:
    ./build/bench_kernels            # emits BENCH_kernels.json
    ./build/bench_fig7_scalability   # emits BENCH_fig7_scalability.json
    cp BENCH_kernels.json BENCH_fig7_scalability.json bench/baselines/
and commit the result (docs/PERF.md describes the measurement setup).
"""

import argparse
import json
import sys


def load_records(path):
    with open(path) as f:
        doc = json.load(f)
    records = {}
    for rec in doc.get("records", []):
        name = rec.get("name")
        if name is not None:
            records[name] = rec
    return records


def metric_of(rec):
    for key in ("ns_per_op", "sim_time_s"):
        if key in rec:
            return key, float(rec[key])
    return None, None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="freshly emitted BENCH_*.json")
    parser.add_argument("baseline", help="committed bench/baselines/*.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=3.0,
        help="fail when current > baseline * TOLERANCE (default 3.0)",
    )
    args = parser.parse_args()

    current = load_records(args.current)
    baseline = load_records(args.baseline)

    regressions = []
    compared = 0
    for name, base_rec in sorted(baseline.items()):
        cur_rec = current.get(name)
        if cur_rec is None:
            print(f"note: baseline record not in current run: {name}")
            continue
        base_key, base_val = metric_of(base_rec)
        cur_key, cur_val = metric_of(cur_rec)
        if base_val is None or cur_val is None or base_val <= 0:
            continue
        compared += 1
        ratio = cur_val / base_val
        status = "OK"
        if ratio > args.tolerance:
            status = "REGRESSION"
            regressions.append((name, base_key, base_val, cur_val, ratio))
        print(
            f"{status:>10}  {name}: {base_key} {base_val:.4g} -> "
            f"{cur_val:.4g}  ({ratio:.2f}x)"
        )
    for name in sorted(set(current) - set(baseline)):
        print(f"note: new record without a baseline: {name}")

    if compared == 0:
        print("error: no comparable records between the two files")
        return 1
    if regressions:
        print(
            f"\n{len(regressions)} regression(s) beyond "
            f"{args.tolerance:.2f}x tolerance:"
        )
        for name, key, base_val, cur_val, ratio in regressions:
            print(f"  {name}: {key} {base_val:.4g} -> {cur_val:.4g} ({ratio:.2f}x)")
        print(
            "If this change is intentional, refresh bench/baselines/ "
            "(see the module docstring)."
        )
        return 1
    print(f"\nall {compared} compared records within {args.tolerance:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
