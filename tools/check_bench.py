#!/usr/bin/env python3
"""Bench-regression gate: compare an emitted BENCH_*.json against its
committed baseline in bench/baselines/.

Usage:
    python3 tools/check_bench.py CURRENT.json BASELINE.json [--tolerance F]

Exit status 1 when any record regresses beyond the tolerance factor,
0 otherwise. Records are matched by their "name" key; the compared metric
is "ns_per_op" when present (google-benchmark kernels), otherwise
"sim_time_s" (the fig7 scalability model). Lower is better for both.

The blanket tolerance is deliberately generous (default 3.0x): shared CI
runners have noisy neighbours and frequency scaling, so this gate catches
order-of-magnitude regressions and algorithmic accidents, not single-digit
percent drift. Baselines emitted with repeats (JsonReport::add_sample
writes the median plus "<metric>_min"/"<metric>_max" and a "repeats"
count when a bench was run >= 2 times) get a per-record tolerance derived
from their own measured dispersion instead: 1.5x the baseline's
max/median spread, floored at 2x (in-process repeats underestimate
machine-to-machine variation) and capped at the blanket value. A kernel
whose five baseline repeats agreed within 10% is then gated at 2x rather
than 5x, while a noisy record keeps the generous gate its own dispersion
says it needs. Records present only on one side are
reported but never fail the gate (benches grow and shrink across PRs; a
*removed* baseline should be refreshed, not block unrelated work).

Refreshing baselines after an intentional perf change:
    ./build/bench_kernels --benchmark_repetitions=3  # dispersion-gated
    ./build/bench_fig7_scalability   # emits BENCH_fig7_scalability.json
    ./build/bench_inference          # emits BENCH_inference.json
    cp BENCH_kernels.json BENCH_fig7_scalability.json \
       BENCH_inference.json bench/baselines/
and commit the result (docs/PERF.md describes the measurement setup).
"""

import argparse
import json
import sys


def load_records(path):
    with open(path) as f:
        doc = json.load(f)
    records = {}
    for rec in doc.get("records", []):
        name = rec.get("name")
        if name is not None:
            records[name] = rec
    return records


def metric_of(rec):
    for key in ("ns_per_op", "sim_time_s"):
        if key in rec:
            return key, float(rec[key])
    return None, None


def tolerance_of(base_rec, base_key, base_val, blanket):
    """Per-record tolerance: dispersion-derived when the baseline carries
    repeated measurements, the blanket factor otherwise."""
    repeats = base_rec.get("repeats", 1)
    hi = base_rec.get(f"{base_key}_max")
    if repeats < 2 or hi is None or base_val <= 0:
        return blanket, "blanket"
    spread = float(hi) / base_val  # >= 1: max/median of the baseline runs
    eff = max(2.0, 1.5 * spread)
    return min(blanket, eff), f"dispersion(n={repeats})"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="freshly emitted BENCH_*.json")
    parser.add_argument("baseline", help="committed bench/baselines/*.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=3.0,
        help="fail when current > baseline * TOLERANCE (default 3.0)",
    )
    args = parser.parse_args()

    current = load_records(args.current)
    baseline = load_records(args.baseline)

    regressions = []
    compared = 0
    for name, base_rec in sorted(baseline.items()):
        cur_rec = current.get(name)
        if cur_rec is None:
            print(f"note: baseline record not in current run: {name}")
            continue
        base_key, base_val = metric_of(base_rec)
        cur_key, cur_val = metric_of(cur_rec)
        if base_val is None or cur_val is None or base_val <= 0:
            continue
        compared += 1
        ratio = cur_val / base_val
        tol, tol_kind = tolerance_of(base_rec, base_key, base_val,
                                     args.tolerance)
        status = "OK"
        if ratio > tol:
            status = "REGRESSION"
            regressions.append((name, base_key, base_val, cur_val, ratio, tol))
        print(
            f"{status:>10}  {name}: {base_key} {base_val:.4g} -> "
            f"{cur_val:.4g}  ({ratio:.2f}x, gate {tol:.2f}x {tol_kind})"
        )
    for name in sorted(set(current) - set(baseline)):
        print(f"note: new record without a baseline: {name}")

    if compared == 0:
        print("error: no comparable records between the two files")
        return 1
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond tolerance:")
        for name, key, base_val, cur_val, ratio, tol in regressions:
            print(
                f"  {name}: {key} {base_val:.4g} -> {cur_val:.4g} "
                f"({ratio:.2f}x, gate {tol:.2f}x)"
            )
        print(
            "If this change is intentional, refresh bench/baselines/ "
            "(see the module docstring)."
        )
        return 1
    print(f"\nall {compared} compared records within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
