#!/usr/bin/env bash
# End-to-end smoke: run the config-driven case runner on a tiny dataset
# for every backend (memory | skl2 | series) x ingest mode (materialize |
# streaming) and verify that the sample-set hash and the test loss are
# identical across all six runs — the bit-identity contract the staged
# orchestrator promises for lossless codecs.
#
# Usage: tools/e2e_smoke.sh [path/to/sickle_train]
# Local repro:  cmake -B build -S . && cmake --build build -j --target sickle_train
#               tools/e2e_smoke.sh build/sickle_train
set -euo pipefail

BIN=${1:-build/sickle_train}
if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN is not an executable (build the sickle_train tool first)" >&2
  exit 2
fi

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

ref_hash=""
ref_loss=""
ref_combo=""
for backend in memory skl2 series; do
  for ingest in materialize streaming; do
    cfg="$workdir/case_${backend}_${ingest}.yaml"
    cat > "$cfg" <<EOF
shared:
  dataset: SST-P1F4
  scale: 0.5
  seed: 3

subsample:
  hypercubes: random
  method: maxent
  num_hypercubes: 3
  num_samples: 51
  num_clusters: 5
  nxsl: 8
  nysl: 8
  nzsl: 8

store:
  backend: $backend
  ingest: $ingest
  codec: delta
  chunk: 16
  write_budget_mb: 1
  spill_dir: $workdir/spill

train:
  arch: MLP_transformer
  epochs: 2
  batch: 4
  dim: 16
  heads: 2
EOF
    echo "=== backend=$backend ingest=$ingest"
    out=$("$BIN" "$cfg")
    echo "$out" | grep -E "sample set hash|sampled points|Evaluation on test set|ingest peak"
    hash=$(echo "$out" | sed -n 's/^sample set hash: //p')
    loss=$(echo "$out" | sed -n 's/^Evaluation on test set: //p')
    if [[ -z "$hash" || -z "$loss" ]]; then
      echo "error: missing hash/loss in output for $backend/$ingest" >&2
      exit 1
    fi
    if [[ -z "$ref_hash" ]]; then
      ref_hash="$hash"
      ref_loss="$loss"
      ref_combo="$backend/$ingest"
    elif [[ "$hash" != "$ref_hash" || "$loss" != "$ref_loss" ]]; then
      echo "error: $backend/$ingest diverged from $ref_combo:" >&2
      echo "  hash $hash vs $ref_hash, loss $loss vs $ref_loss" >&2
      exit 1
    fi
  done
done

echo
echo "OK: all 6 backend x ingest combinations bit-identical"
echo "    sample set hash: $ref_hash"
echo "    test loss:       $ref_loss"
