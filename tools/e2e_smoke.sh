#!/usr/bin/env bash
# End-to-end smoke: run the config-driven case runner on a tiny dataset
# for every backend (memory | skl2 | series) x ingest mode (materialize |
# streaming), then for every lossless codec (raw | delta | gorilla, plus
# zstd when the binary was built with it) on the series/streaming
# backend, and verify that the sample-set hash and the test loss are
# identical across every run — the bit-identity contract the staged
# orchestrator promises for lossless codecs.
#
# Usage: tools/e2e_smoke.sh [path/to/sickle_train]
# Local repro:  cmake -B build -S . && cmake --build build -j --target sickle_train
#               tools/e2e_smoke.sh build/sickle_train
set -euo pipefail

BIN=${1:-build/sickle_train}
if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN is not an executable (build the sickle_train tool first)" >&2
  exit 2
fi

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

# Emit the case config for one (backend, ingest, codec) combination; an
# optional fifth argument sets the sampling pool width (subsample.threads).
write_cfg() {
  local cfg=$1 backend=$2 ingest=$3 codec=$4 threads=${5:-1}
  cat > "$cfg" <<EOF
shared:
  dataset: SST-P1F4
  scale: 0.5
  seed: 3

subsample:
  hypercubes: random
  method: maxent
  num_hypercubes: 3
  num_samples: 51
  num_clusters: 5
  nxsl: 8
  nysl: 8
  nzsl: 8
  threads: $threads

store:
  backend: $backend
  ingest: $ingest
  codec: $codec
  chunk: 16
  write_budget_mb: 1
  spill_dir: $workdir/spill

train:
  arch: MLP_transformer
  epochs: 2
  batch: 4
  dim: 16
  heads: 2
EOF
}

ref_hash=""
ref_loss=""
ref_combo=""
runs=0

# Run one combination and check it against the reference.
check_combo() {
  local backend=$1 ingest=$2 codec=$3
  local cfg="$workdir/case_${backend}_${ingest}_${codec}.yaml"
  write_cfg "$cfg" "$backend" "$ingest" "$codec"
  echo "=== backend=$backend ingest=$ingest codec=$codec"
  local out
  out=$("$BIN" "$cfg")
  echo "$out" | grep -E "sample set hash|sampled points|Evaluation on test set|ingest peak"
  local hash loss
  hash=$(echo "$out" | sed -n 's/^sample set hash: //p')
  loss=$(echo "$out" | sed -n 's/^Evaluation on test set: //p')
  if [[ -z "$hash" || -z "$loss" ]]; then
    echo "error: missing hash/loss in output for $backend/$ingest/$codec" >&2
    exit 1
  fi
  if [[ -z "$ref_hash" ]]; then
    ref_hash="$hash"
    ref_loss="$loss"
    ref_combo="$backend/$ingest/$codec"
  elif [[ "$hash" != "$ref_hash" || "$loss" != "$ref_loss" ]]; then
    echo "error: $backend/$ingest/$codec diverged from $ref_combo:" >&2
    echo "  hash $hash vs $ref_hash, loss $loss vs $ref_loss" >&2
    exit 1
  fi
  runs=$((runs + 1))
}

for backend in memory skl2 series; do
  for ingest in materialize streaming; do
    check_combo "$backend" "$ingest" delta
  done
done

# Codec sweep on the most demanding path (series container + streaming
# ingest): every lossless codec must leave the sample hash and training
# losses bit-identical. zstd is probed — a build without it rejects the
# config with a typed error, which the sweep reports as a skip.
for codec in raw gorilla zstd; do
  if [[ "$codec" == zstd ]]; then
    cfg="$workdir/probe_zstd.yaml"
    write_cfg "$cfg" series streaming zstd
    if ! "$BIN" "$cfg" > /dev/null 2>&1; then
      echo "=== codec=zstd skipped (binary built without zstd support)"
      continue
    fi
  fi
  check_combo series streaming "$codec"
done

# Traced combo: one series/streaming run with the observability section
# set, temporal selection on, and a 2-worker sampling pool, so the trace
# carries all four orchestrator stage spans plus store/codec/pool events.
# The emitted Chrome trace is validated structurally by trace_check.py.
echo "=== traced combo: series/streaming + temporal + observability"
traced_cfg="$workdir/case_traced.yaml"
write_cfg "$traced_cfg" series streaming delta 2
cat >> "$traced_cfg" <<EOF

temporal:
  num_snapshots: 2

observability:
  trace_path: $workdir/run.trace.json
  metrics_path: $workdir/run.metrics.json
EOF
traced_out=$("$BIN" "$traced_cfg")
echo "$traced_out" | grep -E "sample set hash|trace written|metrics written"
echo "$traced_out" | grep -q "case metrics:"
echo "$traced_out" | grep -q "metrics summary:"
[[ -s "$workdir/run.metrics.json" ]]
if command -v python3 > /dev/null 2>&1; then
  python3 "$(dirname "$0")/trace_check.py" "$workdir/run.trace.json" \
    --require-span case.run --require-span case.ingest \
    --require-span case.selection --require-span case.sampling \
    --require-span case.training --require-span store.append \
    --require-span store.load_chunk --require-span codec.encode \
    --require-span codec.decode --require-span pool.task \
    --require-cat case --require-cat store --require-cat codec \
    --require-cat pool
else
  echo "    (python3 not found; trace structural check skipped)"
fi

echo
echo "OK: all $runs backend x ingest x codec combinations bit-identical"
echo "    sample set hash: $ref_hash"
echo "    test loss:       $ref_loss"
