#!/usr/bin/env bash
# End-to-end smoke: run the config-driven case runner on a tiny dataset
# for every backend (memory | skl2 | series) x ingest mode (materialize |
# streaming), then for every lossless codec (raw | delta | gorilla, plus
# zstd when the binary was built with it) on the series/streaming
# backend, then with reader-side async prefetch on, and verify that the
# sample-set hash and the test loss are identical across every run — the
# bit-identity contract the staged orchestrator promises for lossless
# codecs.
#
# Usage: tools/e2e_smoke.sh [path/to/sickle_train]
# Local repro:  cmake -B build -S . && cmake --build build -j --target sickle_train
#               tools/e2e_smoke.sh build/sickle_train
set -euo pipefail

BIN=${1:-build/sickle_train}
if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN is not an executable (build the sickle_train tool first)" >&2
  exit 2
fi

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

# Emit the case config for one (backend, ingest, codec) combination; an
# optional fifth argument sets the sampling pool width (subsample.threads)
# and an optional sixth the reader-side readahead (store.prefetch_depth).
write_cfg() {
  local cfg=$1 backend=$2 ingest=$3 codec=$4 threads=${5:-1} prefetch=${6:-0}
  cat > "$cfg" <<EOF
shared:
  dataset: SST-P1F4
  scale: 0.5
  seed: 3

subsample:
  hypercubes: random
  method: maxent
  num_hypercubes: 3
  num_samples: 51
  num_clusters: 5
  nxsl: 8
  nysl: 8
  nzsl: 8
  threads: $threads

store:
  backend: $backend
  ingest: $ingest
  codec: $codec
  chunk: 16
  write_budget_mb: 1
  prefetch_depth: $prefetch
  spill_dir: $workdir/spill

train:
  arch: MLP_transformer
  epochs: 2
  batch: 4
  dim: 16
  heads: 2
EOF
}

ref_hash=""
ref_loss=""
ref_combo=""
runs=0

# Run one combination and check it against the reference.
check_combo() {
  local backend=$1 ingest=$2 codec=$3 prefetch=${4:-0}
  local cfg="$workdir/case_${backend}_${ingest}_${codec}_p${prefetch}.yaml"
  write_cfg "$cfg" "$backend" "$ingest" "$codec" 1 "$prefetch"
  echo "=== backend=$backend ingest=$ingest codec=$codec prefetch=$prefetch"
  local out
  out=$("$BIN" "$cfg")
  echo "$out" | grep -E "sample set hash|sampled points|Evaluation on test set|ingest peak"
  local hash loss
  hash=$(echo "$out" | sed -n 's/^sample set hash: //p')
  loss=$(echo "$out" | sed -n 's/^Evaluation on test set: //p')
  if [[ -z "$hash" || -z "$loss" ]]; then
    echo "error: missing hash/loss in output for $backend/$ingest/$codec" >&2
    exit 1
  fi
  if [[ -z "$ref_hash" ]]; then
    ref_hash="$hash"
    ref_loss="$loss"
    ref_combo="$backend/$ingest/$codec"
  elif [[ "$hash" != "$ref_hash" || "$loss" != "$ref_loss" ]]; then
    echo "error: $backend/$ingest/$codec diverged from $ref_combo:" >&2
    echo "  hash $hash vs $ref_hash, loss $loss vs $ref_loss" >&2
    exit 1
  fi
  runs=$((runs + 1))
}

for backend in memory skl2 series; do
  for ingest in materialize streaming; do
    check_combo "$backend" "$ingest" delta
  done
done

# Codec sweep on the most demanding path (series container + streaming
# ingest): every lossless codec must leave the sample hash and training
# losses bit-identical. zstd is probed — a build without it rejects the
# config with a typed error, which the sweep reports as a skip.
for codec in raw gorilla zstd; do
  if [[ "$codec" == zstd ]]; then
    cfg="$workdir/probe_zstd.yaml"
    write_cfg "$cfg" series streaming zstd
    if ! "$BIN" "$cfg" > /dev/null 2>&1; then
      echo "=== codec=zstd skipped (binary built without zstd support)"
      continue
    fi
  fi
  check_combo series streaming "$codec"
done

# Readahead sweep: reader-side async block prefetch (store.prefetch_depth)
# may change WHEN blocks are decoded, never what they decode to — both
# series ingest modes with depth-4 readahead must reproduce the
# prefetch-off reference hash and loss bit-for-bit.
for ingest in materialize streaming; do
  check_combo series "$ingest" delta 4
done

# Traced combo: one series/streaming run with the observability section
# set, temporal selection on, and a 2-worker sampling pool, so the trace
# carries all four orchestrator stage spans plus store/codec/pool events.
# The emitted Chrome trace is validated structurally by trace_check.py.
echo "=== traced combo: series/streaming + temporal + observability"
traced_cfg="$workdir/case_traced.yaml"
write_cfg "$traced_cfg" series streaming delta 2
cat >> "$traced_cfg" <<EOF

temporal:
  num_snapshots: 2

observability:
  trace_path: $workdir/run.trace.json
  metrics_path: $workdir/run.metrics.json
EOF
traced_out=$("$BIN" "$traced_cfg")
echo "$traced_out" | grep -E "sample set hash|trace written|metrics written"
echo "$traced_out" | grep -q "case metrics:"
echo "$traced_out" | grep -q "metrics summary:"
[[ -s "$workdir/run.metrics.json" ]]
if command -v python3 > /dev/null 2>&1; then
  python3 "$(dirname "$0")/trace_check.py" "$workdir/run.trace.json" \
    --require-span case.run --require-span case.ingest \
    --require-span case.selection --require-span case.sampling \
    --require-span case.training --require-span store.append \
    --require-span store.load_chunk --require-span codec.encode \
    --require-span codec.decode --require-span pool.task \
    --require-cat case --require-cat store --require-cat codec \
    --require-cat pool
else
  echo "    (python3 not found; trace structural check skipped)"
fi

# Inference combo: the OF2D LSTM drag surrogate trained end-to-end, then
# the post-training surrogate stage — compile to an infer::Engine,
# parity-check, magnitude-prune under the configured RMS budget, and
# persist. Asserts compile parity, that pruning actually removed hidden
# channels while honoring its probe-RMS budget (prune() guarantees
# final_rms <= budget; the 0.2 budget is sized so this tiny 3-epoch model
# accepts a few channels rather than refusing outright), and that the
# saved engine file exists.
echo "=== inference combo: OF2D lstm -> compile -> prune -> predict"
infer_cfg="$workdir/case_infer.yaml"
prune_budget=0.2
cat > "$infer_cfg" <<EOF
shared:
  dataset: OF2D
  scale: 0.5
  seed: 3

subsample:
  method: random
  num_samples: 24

train:
  arch: lstm
  epochs: 3
  batch: 8
  dim: 16
  window: 3

inference:
  prune_rms: $prune_budget
  probes: 16
  engine_path: $workdir/drag.engine
EOF
infer_out=$("$BIN" "$infer_cfg")
echo "$infer_out" | grep -E "inference engine|inference parity|inference pruned:|inference engine written"
echo "$infer_out" | grep -q "Evaluation on test set"
parity=$(echo "$infer_out" | sed -n 's/^inference parity rms: \([^ ]*\) .*/\1/p')
hidden0=$(echo "$infer_out" | sed -n 's/^inference pruned: hidden \([0-9]*\) -> .*/\1/p')
hidden1=$(echo "$infer_out" | sed -n 's/^inference pruned: hidden [0-9]* -> \([0-9]*\) |.*/\1/p')
pruned_rms=$(echo "$infer_out" | sed -n 's/^inference pruned: .* rms \([^ ]*\) |.*/\1/p')
if [[ -z "$parity" || -z "$hidden0" || -z "$hidden1" || -z "$pruned_rms" ]]; then
  echo "error: inference stage lines missing from output" >&2
  exit 1
fi
python3 - "$parity" "$hidden0" "$hidden1" "$pruned_rms" "$prune_budget" <<'EOF'
import sys
parity, hidden0, hidden1, pruned_rms, budget = (float(v) for v in sys.argv[1:6])
assert parity <= 1e-6, f"engine parity {parity} above 1e-6 RMS"
assert hidden1 < hidden0, f"pruning removed no channels ({hidden0:g} -> {hidden1:g})"
assert pruned_rms <= budget, \
    f"pruned engine rms {pruned_rms} above the {budget} budget"
print(f"    parity rms {parity:g}; pruned hidden {hidden0:g} -> {hidden1:g}, "
      f"rms {pruned_rms:g} <= budget {budget:g}")
EOF
[[ -s "$workdir/drag.engine" ]] || { echo "error: engine file missing" >&2; exit 1; }

echo
echo "OK: all $runs backend x ingest x codec combinations bit-identical"
echo "    sample set hash: $ref_hash"
echo "    test loss:       $ref_loss"
