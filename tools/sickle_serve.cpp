// sickle-serve — the case-curation daemon.
//
//   sickle_serve [case.yaml] [--port N]
//
// Speaks newline-delimited JSON over TCP (see docs/SERVE.md): submit a
// case config, poll status, block on result, scrape metrics, shutdown.
// The optional config file supplies the `server:` section (port, host,
// max_concurrent_cases, queue_capacity) plus `observability:` defaults;
// --port overrides the file. Port 0 binds an ephemeral port — the
// "listening on" line is the contract the harnesses parse.
//
// Shutdown: the `shutdown` verb, SIGTERM, or SIGINT. All three drain the
// same way — stop accepting, cancel in-flight cases, join, exit 0.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/config.hpp"
#include "common/error.hpp"
#include "obs/obs.hpp"
#include "serve/server.hpp"
#include "sickle/config_driver.hpp"

namespace {

volatile std::sig_atomic_t g_signalled = 0;
sickle::serve::Server* g_server = nullptr;

void on_signal(int /*sig*/) {
  g_signalled = 1;
  // request_stop only flips a flag + notifies; the actual teardown runs
  // on the main thread after wait() returns.
  if (g_server != nullptr) g_server->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sickle;

  std::string config_path;
  int port_override = -1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port_override = std::atoi(argv[++i]);
    } else if (config_path.empty()) {
      config_path = argv[i];
    } else {
      std::fprintf(stderr, "usage: %s [case.yaml] [--port N]\n", argv[0]);
      return 2;
    }
  }

  try {
    serve::ServeOptions opts;
    obs::ObsOptions oo;
    if (!config_path.empty()) {
      const Config cfg = Config::load(config_path);
      opts = serve::serve_options_from_config(cfg);
      oo = obs_options_from_config(cfg);
      obs::apply(oo);
    }
    if (port_override >= 0) {
      opts.port = static_cast<std::uint16_t>(port_override);
    }

    serve::Server server(opts);
    server.start();
    g_server = &server;
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);

    std::printf("sickle-serve listening on %s:%u\n", opts.host.c_str(),
                static_cast<unsigned>(server.port()));
    std::printf("  max_concurrent_cases %zu | queue_capacity %zu\n",
                opts.session.max_concurrent_cases,
                opts.session.queue_capacity);
    std::fflush(stdout);

    server.wait();  // shutdown verb, SIGTERM, or SIGINT
    g_server = nullptr;
    server.stop();
    obs::finalize(oo);
    std::printf("sickle-serve shut down cleanly (%zu cases submitted)\n",
                server.cases_submitted());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sickle-serve: %s\n", e.what());
    return 1;
  }
}
