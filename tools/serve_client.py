#!/usr/bin/env python3
"""Minimal sickle-serve client (stdlib only).

One invocation = one NDJSON request + response on a fresh TCP connection:

    serve_client.py --port 8740 submit --config case.yaml
    serve_client.py --port 8740 status --id 3
    serve_client.py --port 8740 result --id 3
    serve_client.py --port 8740 cancel --id 3
    serve_client.py --port 8740 metrics
    serve_client.py --port 8740 shutdown

Prints the response JSON on stdout. Exit code 0 when the response has
"ok": true, 1 otherwise (the response is still printed — failures carry
the error code and, for config rejections, every validation issue).
"""

import argparse
import json
import socket
import sys


def request(host: str, port: int, payload: dict, timeout: float) -> dict:
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall((json.dumps(payload) + "\n").encode())
        buf = b""
        while b"\n" not in buf:
            chunk = sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed before responding")
            buf += chunk
        line, _, _ = buf.partition(b"\n")
        return json.loads(line)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, required=True)
    # result blocks server-side until the case is terminal; give it room.
    ap.add_argument("--timeout", type=float, default=600.0)
    ap.add_argument("verb", choices=[
        "submit", "status", "result", "cancel", "metrics", "shutdown"])
    ap.add_argument("--config", help="case YAML path (submit)")
    ap.add_argument("--id", type=int, help="case id (status/result/cancel)")
    args = ap.parse_args()

    payload = {"verb": args.verb}
    if args.verb == "submit":
        if not args.config:
            ap.error("submit needs --config")
        with open(args.config, encoding="utf-8") as fh:
            payload["config"] = fh.read()
    elif args.verb in ("status", "result", "cancel"):
        if args.id is None:
            ap.error(f"{args.verb} needs --id")
        payload["id"] = args.id

    resp = request(args.host, args.port, payload, args.timeout)
    json.dump(resp, sys.stdout)
    print()
    return 0 if resp.get("ok") else 1


if __name__ == "__main__":
    sys.exit(main())
