// sickle_train — the paper's `train.py case.yaml` (task T2).
//
//   sickle_train case.yaml
//
// Runs the full case (subsample -> train -> evaluate) and prints the lines
// the paper's analysis greps for: "Evaluation on test set" and
// "Total Energy Consumed".
#include <cstdio>

#include "sickle/config_driver.hpp"

int main(int argc, char** argv) {
  using namespace sickle;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s case.yaml\n", argv[0]);
    return 2;
  }
  try {
    const Config cfg = Config::load(argv[1]);
    const std::string label = dataset_label_from_config(cfg);
    std::printf("dataset: %s\n", label.c_str());
    const DatasetBundle bundle = make_dataset(label);
    const CaseConfig cc = case_from_config(cfg);

    std::printf("arch: %s | epochs %zu | batch %zu | sampling %s/%s @ %zu "
                "per cube\n",
                cc.arch.c_str(), cc.train.epochs, cc.train.batch,
                cc.pipeline.hypercube_method.c_str(),
                cc.pipeline.point_method.c_str(), cc.pipeline.num_samples);
    const CaseReport report = run_case(bundle, cc);

    std::printf("sampled points: %zu\n", report.sampled_points);
    std::printf("model parameters: %zu\n", report.train.parameters);
    std::printf("final train loss: %.6f\n", report.train.final_train_loss);
    std::printf("Evaluation on test set: %.6f\n", report.train.test_loss);
    std::printf("Elapsed Time: %.3f s\n",
                report.sampling_seconds + report.train.seconds);
    std::printf("Total Energy Consumed: %.6f kJ\n",
                report.total_kilojoules());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
