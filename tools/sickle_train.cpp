// sickle_train — the paper's `train.py case.yaml` (task T2).
//
//   sickle_train case.yaml
//
// Runs the full case (subsample -> train -> evaluate) and prints the lines
// the paper's analysis greps for: "Evaluation on test set" and
// "Total Energy Consumed". The dataset flows through the generator
// producer, so `store.ingest: streaming` with an skl2/series backend
// runs the whole T1 path without materializing a Dataset. The
// "sample set hash" line fingerprints the sampled cubes — CI diffs it
// across backend x ingest combinations to prove bit-identity.
#include <cinttypes>
#include <cstdio>

#include "sickle/config_driver.hpp"

int main(int argc, char** argv) {
  using namespace sickle;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s case.yaml\n", argv[0]);
    return 2;
  }
  try {
    const Config cfg = Config::load(argv[1]);
    const std::string label = dataset_label_from_config(cfg);
    std::printf("dataset: %s\n", label.c_str());
    const CaseConfig cc = case_from_config(cfg);
    const obs::ObsOptions oo = obs_options_from_config(cfg);
    obs::apply(oo);
    ProducerBundle bundle = make_dataset_producer(
        label, static_cast<std::uint64_t>(cfg.get_int("shared", "seed", 42)),
        dataset_scale_from_config(cfg));

    std::printf("arch: %s | epochs %zu | batch %zu | sampling %s/%s @ %zu "
                "per cube | backend %s | ingest %s\n",
                cc.arch.c_str(), cc.train.epochs, cc.train.batch,
                cc.pipeline.hypercube_method.c_str(),
                cc.pipeline.point_method.c_str(), cc.pipeline.num_samples,
                cc.backend.c_str(), cc.ingest.c_str());
    const CaseReport report = run_case(bundle, cc);

    std::printf("sampled points: %zu\n", report.sampled_points);
    std::printf("sample set hash: %016" PRIx64 "\n", report.sample_hash);
    if (report.ingest_peak_bytes > 0) {
      std::printf("ingest peak bytes: %zu\n", report.ingest_peak_bytes);
    }
    std::printf("model parameters: %zu\n", report.train.parameters);
    std::printf("final train loss: %.6f\n", report.train.final_train_loss);
    std::printf("Evaluation on test set: %.6f\n", report.train.test_loss);
    std::printf("Elapsed Time: %.3f s\n",
                report.sampling_seconds + report.train.seconds);
    std::printf("Total Energy Consumed: %.6f kJ\n",
                report.total_kilojoules());
    if (oo.enabled) {
      // Per-case telemetry plus the process-wide registry (store/pool/
      // codec tallies accumulated by the instrumented layers).
      std::printf("case metrics:\n");
      for (const auto& [name, value] : report.metrics) {
        std::printf("  %-28s %.6g\n", name.c_str(), value);
      }
      const std::string table = obs::summary_table();
      if (!table.empty()) {
        std::printf("metrics summary:\n%s", table.c_str());
      }
      obs::finalize(oo);
      if (!oo.trace_path.empty()) {
        std::printf("trace written: %s\n", oo.trace_path.c_str());
      }
      if (!oo.metrics_path.empty()) {
        std::printf("metrics written: %s\n", oo.metrics_path.c_str());
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
