// sickle_train — the paper's `train.py case.yaml` (task T2).
//
//   sickle_train case.yaml
//
// Runs the full case (subsample -> train -> evaluate) and prints the lines
// the paper's analysis greps for: "Evaluation on test set" and
// "Total Energy Consumed". The dataset flows through the generator
// producer, so `store.ingest: streaming` with an skl2/series backend
// runs the whole T1 path without materializing a Dataset. The
// "sample set hash" line fingerprints the sampled cubes — CI diffs it
// across backend x ingest combinations to prove bit-identity.
//
// `train.arch: lstm` selects the OF2D drag surrogate (sample-single):
// sensor windows via build_drag_dataset, an ml::LstmModel fit, then —
// when the `inference` section is present — the post-training surrogate
// stage: compile to an infer::Engine, parity-check it against the
// training-path forward, measure batch-1 latency, magnitude-prune under
// the configured probe-RMS budget, and optionally persist the engine.
#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/timer.hpp"
#include "infer/engine.hpp"
#include "infer/prune.hpp"
#include "ml/models.hpp"
#include "ml/trainer.hpp"
#include "sickle/config_driver.hpp"
#include "sickle/dataset_zoo.hpp"

namespace {

using namespace sickle;

/// Mean batch-1 wall time of `fn` in nanoseconds (warmed up, averaged).
template <typename Fn>
double time_ns(std::size_t reps, Fn&& fn) {
  fn();  // warm-up: touches weights, faults pages
  Timer t;
  for (std::size_t r = 0; r < reps; ++r) fn();
  return t.seconds() * 1e9 / static_cast<double>(reps);
}

/// Post-training surrogate stage: compile, parity-check, time, prune,
/// persist. Every line is stable and greppable (tools/e2e_smoke.sh and
/// the docs quote them).
void inference_stage(ml::LstmModel& model, const ml::TensorDataset& data,
                     const InferenceOptions& io) {
  infer::Engine engine = infer::compile(model);
  std::printf("inference engine: hidden %zu | parameters %zu\n",
              engine.hidden(), engine.num_parameters());

  // Parity against the training-path forward on held-out examples.
  const std::size_t out_f = engine.output_features();
  const std::size_t n_par = std::min<std::size_t>(data.size(), 32);
  std::vector<float> out(out_f);
  double sq = 0.0;
  for (std::size_t i = 0; i < n_par; ++i) {
    const ml::Tensor& x = data.input(i);  // [window, features]
    ml::Tensor xb = x.reshaped({1, x.dim(0), x.dim(1)});
    const ml::Tensor y = model.forward(xb);
    engine.predict(x.data(), out);
    for (std::size_t o = 0; o < out_f; ++o) {
      const double d = static_cast<double>(out[o]) -
                       static_cast<double>(y.data()[o]);
      sq += d * d;
    }
  }
  const double parity =
      std::sqrt(sq / static_cast<double>(n_par * out_f));
  std::printf("inference parity rms: %.3g over %zu examples\n", parity,
              n_par);

  // Batch-1 latency: training-path forward vs the compiled engine.
  const ml::Tensor& x0 = data.input(0);
  ml::Tensor xb = x0.reshaped({1, x0.dim(0), x0.dim(1)});
  const double train_ns =
      time_ns(64, [&] { (void)model.forward(xb); });
  const double engine_ns =
      time_ns(512, [&] { engine.predict(x0.data(), out); });
  std::printf(
      "inference latency: training %.0f ns | engine %.0f ns | "
      "speedup %.1fx\n",
      train_ns, engine_ns, train_ns / engine_ns);

  if (io.prune_rms > 0.0) {
    const std::size_t np = std::min(io.probes, data.size());
    const std::size_t probe_len = x0.size();
    std::vector<float> probes;
    probes.reserve(np * probe_len);
    for (std::size_t p = 0; p < np; ++p) {
      const auto span = data.input(p).data();
      probes.insert(probes.end(), span.begin(), span.end());
    }
    infer::PruneOptions opts;
    opts.rms_threshold = io.prune_rms;
    opts.min_hidden = io.min_hidden;
    const infer::PruneReport report =
        infer::prune(engine, probes, np, opts);
    const double pruned_ns =
        time_ns(512, [&] { engine.predict(x0.data(), out); });
    std::printf(
        "inference pruned: hidden %zu -> %zu | rms %.4g | budget %.4g | "
        "refused %d\n",
        report.initial_hidden, report.final_hidden, report.final_rms,
        io.prune_rms, report.refused ? 1 : 0);
    std::printf("inference pruned latency: %.0f ns | %.1fx vs training\n",
                pruned_ns, train_ns / pruned_ns);
  }

  if (!io.engine_path.empty()) {
    engine.save(io.engine_path);
    infer::Engine loaded = infer::Engine::load(io.engine_path);
    std::vector<float> check(out_f);
    engine.predict(x0.data(), out);
    loaded.predict(x0.data(), check);
    if (out != check) {
      throw RuntimeError("inference engine reload verification failed");
    }
    std::printf("inference engine written: %s (reload verified)\n",
                io.engine_path.c_str());
  }
}

/// The OF2D drag-surrogate case (train.arch: lstm): sensor windows,
/// LstmModel training, then the optional inference stage.
void run_lstm_drag_case(const Config& cfg, const CaseConfig& cc,
                        const std::string& label) {
  const auto seed =
      static_cast<std::uint64_t>(cfg.get_int("shared", "seed", 42));
  DatasetBundle bundle =
      make_dataset(label, seed, dataset_scale_from_config(cfg));
  energy::EnergyCounter sampling_energy;
  Timer sampling_timer;
  const ml::TensorDataset data = build_drag_dataset(
      bundle, cc.pipeline.point_method, cc.pipeline.num_samples, cc.window,
      seed, &sampling_energy);
  const double sampling_seconds = sampling_timer.seconds();
  if (data.size() == 0) {
    throw RuntimeError("drag dataset is empty (window too long?)");
  }
  std::printf("drag windows: %zu | features %zu | window %zu\n",
              data.size(), data.input(0).dim(1), cc.window);

  Rng rng(cc.train.seed, /*stream=*/0x40DE1);
  ml::LstmModelConfig mc;
  mc.in_channels = data.input(0).dim(1);
  mc.hidden = cc.model_dim;
  mc.out_channels = 1;
  mc.horizon = 1;
  ml::LstmModel model(mc, rng);
  const ml::TrainReport tr = ml::fit(model, data, cc.train);
  model.set_training(false);

  std::printf("model parameters: %zu\n", tr.parameters);
  std::printf("final train loss: %.6f\n", tr.final_train_loss);
  std::printf("Evaluation on test set: %.6f\n", tr.test_loss);
  std::printf("Elapsed Time: %.3f s\n", sampling_seconds + tr.seconds);
  std::printf("Total Energy Consumed: %.6f kJ\n",
              sampling_energy.projected_kilojoules() +
                  tr.energy.projected_kilojoules());

  const InferenceOptions io = inference_from_config(cfg);
  if (io.enabled) inference_stage(model, data, io);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sickle;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s case.yaml\n", argv[0]);
    return 2;
  }
  try {
    const Config cfg = Config::load(argv[1]);
    const std::string label = dataset_label_from_config(cfg);
    std::printf("dataset: %s\n", label.c_str());
    const CaseConfig cc = case_from_config(cfg);
    const obs::ObsOptions oo = obs_options_from_config(cfg);
    obs::apply(oo);

    if (cc.arch == "LSTM") {
      std::printf("arch: %s | epochs %zu | batch %zu | sampling %s @ %zu "
                  "sensors | hidden %zu\n",
                  cc.arch.c_str(), cc.train.epochs, cc.train.batch,
                  cc.pipeline.point_method.c_str(), cc.pipeline.num_samples,
                  cc.model_dim);
      run_lstm_drag_case(cfg, cc, label);
    } else {
      ProducerBundle bundle = make_dataset_producer(
          label,
          static_cast<std::uint64_t>(cfg.get_int("shared", "seed", 42)),
          dataset_scale_from_config(cfg));

      std::printf("arch: %s | epochs %zu | batch %zu | sampling %s/%s @ %zu "
                  "per cube | backend %s | ingest %s\n",
                  cc.arch.c_str(), cc.train.epochs, cc.train.batch,
                  cc.pipeline.hypercube_method.c_str(),
                  cc.pipeline.point_method.c_str(), cc.pipeline.num_samples,
                  cc.backend.c_str(), cc.ingest.c_str());
      const CaseReport report = run_case(bundle, cc);

      std::printf("sampled points: %zu\n", report.sampled_points);
      std::printf("sample set hash: %016" PRIx64 "\n", report.sample_hash);
      if (report.ingest_peak_bytes > 0) {
        std::printf("ingest peak bytes: %zu\n", report.ingest_peak_bytes);
      }
      std::printf("model parameters: %zu\n", report.train.parameters);
      std::printf("final train loss: %.6f\n", report.train.final_train_loss);
      std::printf("Evaluation on test set: %.6f\n", report.train.test_loss);
      std::printf("Elapsed Time: %.3f s\n",
                  report.sampling_seconds + report.train.seconds);
      std::printf("Total Energy Consumed: %.6f kJ\n",
                  report.total_kilojoules());
      if (oo.enabled) {
        // Per-case telemetry plus the process-wide registry (store/pool/
        // codec tallies accumulated by the instrumented layers).
        std::printf("case metrics:\n");
        for (const auto& [name, value] : report.metrics) {
          std::printf("  %-28s %.6g\n", name.c_str(), value);
        }
      }
    }
    if (oo.enabled) {
      const std::string table = obs::summary_table();
      if (!table.empty()) {
        std::printf("metrics summary:\n%s", table.c_str());
      }
      obs::finalize(oo);
      if (!oo.trace_path.empty()) {
        std::printf("trace written: %s\n", oo.trace_path.c_str());
      }
      if (!oo.metrics_path.empty()) {
        std::printf("metrics written: %s\n", oo.metrics_path.c_str());
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
