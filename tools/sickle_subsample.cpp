// sickle_subsample — the paper's `subsample.py case.yaml` (task T1).
//
//   sickle_subsample case.yaml [--ranks N] [--output samples.skl]
//
// Loads the case config, generates the configured dataset, runs the
// two-phase sampling pipeline (optionally SPMD over N simulated ranks),
// writes the sparse subset, and prints the energy lines the paper's
// post-processing greps for ("CPU Energy", "Elapsed Time").
#include <cstdio>
#include <cstring>
#include <string>

#include "io/snapshot_io.hpp"
#include "parallel/world.hpp"
#include "sampling/pipeline.hpp"
#include "sickle/config_driver.hpp"
#include "sickle/dataset_zoo.hpp"

int main(int argc, char** argv) {
  using namespace sickle;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s case.yaml [--ranks N] [--output samples.skl]\n",
                 argv[0]);
    return 2;
  }
  std::size_t ranks = 1;
  std::string output = "samples.skl";
  for (int i = 2; i + 1 < argc + 1; ++i) {
    if (i + 1 < argc && std::strcmp(argv[i], "--ranks") == 0) {
      ranks = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (i + 1 < argc && std::strcmp(argv[i], "--output") == 0) {
      output = argv[++i];
    }
  }

  try {
    const Config cfg = Config::load(argv[1]);
    const std::string label = dataset_label_from_config(cfg);
    std::printf("dataset: %s\n", label.c_str());
    const obs::ObsOptions oo = obs_options_from_config(cfg);
    obs::apply(oo);
    DatasetBundle bundle = make_dataset(
        label, static_cast<std::uint64_t>(cfg.get_int("shared", "seed", 42)),
        dataset_scale_from_config(cfg));

    auto pl = pipeline_from_config(cfg);
    if (pl.input_vars.empty()) pl.input_vars = bundle.input_vars;
    if (pl.output_vars.empty()) pl.output_vars = bundle.output_vars;
    if (pl.cluster_var.empty()) pl.cluster_var = bundle.cluster_var;

    sampling::PipelineResult result;
    if (ranks <= 1) {
      result = run_pipeline(bundle.data.snapshot(0), pl);
    } else {
      World world(ranks);
      world.run([&](Comm& comm) {
        auto local = run_pipeline(bundle.data.snapshot(0), pl, comm);
        if (comm.is_root()) result = std::move(local);
      });
    }

    const auto merged = result.merged();
    io::SampleFile file;
    file.variables = merged.variables;
    file.indices.assign(merged.indices.begin(), merged.indices.end());
    file.features = merged.features;
    const std::size_t bytes = io::save_samples(file, output);

    std::printf("sampled %zu points from %zu cubes -> %s (%zu bytes)\n",
                merged.points(), result.cubes.size(), output.c_str(),
                bytes);
    std::printf("Elapsed Time: %.3f s\n", result.sampling_seconds);
    std::printf("CPU Energy: %.6f kJ\n",
                result.energy.projected_kilojoules());
    std::printf("%s\n", result.energy.report().c_str());
    if (oo.enabled) {
      const std::string table = obs::summary_table();
      if (!table.empty()) {
        std::printf("metrics summary:\n%s", table.c_str());
      }
      obs::finalize(oo);
      if (!oo.trace_path.empty()) {
        std::printf("trace written: %s\n", oo.trace_path.c_str());
      }
      if (!oo.metrics_path.empty()) {
        std::printf("metrics written: %s\n", oo.metrics_path.c_str());
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
