#!/usr/bin/env sh
# Tier-1 verify: the exact command from ROADMAP.md / README.md.
# Run from anywhere; operates on the repo root (parent of this script).
set -eu
cd "$(dirname "$0")/.."
cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -j"$(nproc)"
