#!/usr/bin/env python3
"""Structural validator for the Chrome trace-event JSON that sickle's
observability layer (src/obs/) emits via `observability.trace_path`.

Usage:
    python3 tools/trace_check.py TRACE.json \
        [--require-span NAME]... [--require-cat CAT]...

Checks, in order:
  1. Top-level shape: an object with a "traceEvents" array (the format
     chrome://tracing and Perfetto load), plus the emitter's
     "otherData.dropped_events" counter when present.
  2. Per-event shape: every event is a complete ("ph": "X") event with a
     non-empty string name, a string cat, numeric ts/dur in microseconds,
     integer pid/tid, and an args object carrying integer id / parent /
     depth (id >= 1; parent == 0 means a root span).
  3. Span-id integrity: ids are unique; every non-zero parent refers to
     an existing event on the same tid.
  4. Nesting containment: per tid, replaying events in (ts asc, dur desc)
     order against an interval stack must reproduce each event's recorded
     parent and depth, and every child interval must sit inside its
     parent's interval. This is the property that makes the file readable
     as a flame graph rather than a soup of overlapping slices.
  5. --require-span / --require-cat: assert that at least one event with
     the given name / category is present (repeatable; CI uses this to
     pin the orchestrator stage spans and the store/pool/codec layers).

Exit status 0 when every check passes, 1 otherwise (each violation is
printed; the first few are usually the informative ones).
"""

import argparse
import json
import sys

# ts/dur are nanoseconds printed as microseconds with three decimals, so
# containment is exact up to float formatting; a couple of nanoseconds of
# slack absorbs the double round-trip.
EPS_US = 0.002


def err(errors, msg):
    errors.append(msg)
    if len(errors) <= 20:
        print(f"trace_check: {msg}", file=sys.stderr)


def check_event_shape(i, ev, errors):
    if not isinstance(ev, dict):
        err(errors, f"event[{i}]: not an object")
        return False
    ok = True
    name = ev.get("name")
    if not isinstance(name, str) or not name:
        err(errors, f"event[{i}]: missing/empty name")
        ok = False
    if not isinstance(ev.get("cat"), str):
        err(errors, f"event[{i}] {name!r}: missing string cat")
        ok = False
    if ev.get("ph") != "X":
        err(errors, f"event[{i}] {name!r}: ph is {ev.get('ph')!r}, want 'X'")
        ok = False
    for key in ("ts", "dur"):
        v = ev.get(key)
        if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
            err(errors, f"event[{i}] {name!r}: bad {key}: {v!r}")
            ok = False
    for key in ("pid", "tid"):
        v = ev.get(key)
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            err(errors, f"event[{i}] {name!r}: bad {key}: {v!r}")
            ok = False
    args = ev.get("args")
    if not isinstance(args, dict):
        err(errors, f"event[{i}] {name!r}: missing args object")
        return False
    for key in ("id", "parent", "depth"):
        v = args.get(key)
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            err(errors, f"event[{i}] {name!r}: bad args.{key}: {v!r}")
            ok = False
    if isinstance(args.get("id"), int) and args["id"] < 1:
        err(errors, f"event[{i}] {name!r}: args.id must be >= 1")
        ok = False
    return ok


def check_nesting(events, errors):
    """Replay each tid's events against an interval stack; the recorded
    parent/depth must match the reconstruction and children must be
    contained in their parents."""
    by_tid = {}
    for ev in events:
        by_tid.setdefault(ev["tid"], []).append(ev)
    for tid, tid_events in sorted(by_tid.items()):
        # Parents open before children and (with equal start) outlive
        # them, so this order pushes enclosing spans first.
        tid_events.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []  # (id, ts, end)
        for ev in tid_events:
            ts, end = ev["ts"], ev["ts"] + ev["dur"]
            name, args = ev["name"], ev["args"]
            while stack and stack[-1][2] <= ts + EPS_US:
                stack.pop()
            want_parent = stack[-1][0] if stack else 0
            if args["parent"] != want_parent:
                err(errors,
                    f"tid {tid} span {name!r} (id {args['id']}): recorded "
                    f"parent {args['parent']}, reconstruction says "
                    f"{want_parent}")
            if args["depth"] != len(stack):
                err(errors,
                    f"tid {tid} span {name!r} (id {args['id']}): recorded "
                    f"depth {args['depth']}, reconstruction says "
                    f"{len(stack)}")
            if stack:
                _, pts, pend = stack[-1]
                if ts < pts - EPS_US or end > pend + EPS_US:
                    err(errors,
                        f"tid {tid} span {name!r} (id {args['id']}): "
                        f"interval [{ts}, {end}] escapes parent "
                        f"[{pts}, {pend}]")
            stack.append((args["id"], ts, end))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument("--require-span", action="append", default=[],
                        metavar="NAME",
                        help="fail unless a span with this name is present")
    parser.add_argument("--require-cat", action="append", default=[],
                        metavar="CAT",
                        help="fail unless an event with this cat is present")
    args = parser.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"trace_check: cannot load {args.trace}: {e}", file=sys.stderr)
        return 1

    errors = []
    if not isinstance(doc, dict):
        err(errors, "top level is not an object")
        return 1
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        err(errors, "missing traceEvents array")
        return 1
    dropped = doc.get("otherData", {}).get("dropped_events", 0)
    if not isinstance(dropped, int) or dropped < 0:
        err(errors, f"bad otherData.dropped_events: {dropped!r}")

    shaped = [ev for i, ev in enumerate(events)
              if check_event_shape(i, ev, errors)]
    ids = [ev["args"]["id"] for ev in shaped]
    if len(set(ids)) != len(ids):
        err(errors, "duplicate span ids")
    by_id = {ev["args"]["id"]: ev for ev in shaped}
    for ev in shaped:
        parent = ev["args"]["parent"]
        if parent == 0:
            continue
        pev = by_id.get(parent)
        if pev is None:
            err(errors, f"span {ev['name']!r} (id {ev['args']['id']}): "
                        f"parent id {parent} not in trace")
        elif pev["tid"] != ev["tid"]:
            err(errors, f"span {ev['name']!r} (id {ev['args']['id']}): "
                        f"parent on tid {pev['tid']}, child on "
                        f"tid {ev['tid']}")

    if len(shaped) == len(events):
        check_nesting(shaped, errors)
    else:
        err(errors, "skipping nesting check: malformed events above")

    names = {ev["name"] for ev in shaped}
    cats = {ev["cat"] for ev in shaped}
    for want in args.require_span:
        if want not in names:
            err(errors, f"required span not present: {want!r}")
    for want in args.require_cat:
        if want not in cats:
            err(errors, f"required cat not present: {want!r}")

    if errors:
        print(f"trace_check: FAIL — {len(errors)} violation(s) in "
              f"{args.trace}", file=sys.stderr)
        return 1
    tids = {ev["tid"] for ev in shaped}
    depth = max((ev["args"]["depth"] for ev in shaped), default=0)
    print(f"trace_check: OK — {len(shaped)} events, {len(tids)} thread(s), "
          f"max depth {depth}, {len(cats)} categories, "
          f"{dropped} dropped")
    return 0


if __name__ == "__main__":
    sys.exit(main())
