#!/usr/bin/env bash
# End-to-end smoke for sickle-serve: start the daemon, push 8 concurrent
# cases through tools/serve_client.py, and verify
#   1. every daemon-returned sample_hash equals the hash sickle_train
#      prints for the same config (the daemon is a transport, not a
#      numerics fork),
#   2. the metrics verb reports all submissions and the shared cache,
#   3. SIGTERM shuts the daemon down cleanly (exit 0, farewell line).
#
# Usage: tools/e2e_serve.sh [path/to/sickle_serve] [path/to/sickle_train]
# Local repro:  cmake -B build -S . && cmake --build build -j
#               tools/e2e_serve.sh build/sickle_serve build/sickle_train
set -euo pipefail

SERVE_BIN=${1:-build/sickle_serve}
TRAIN_BIN=${2:-build/sickle_train}
CLIENT="$(dirname "$0")/serve_client.py"
for bin in "$SERVE_BIN" "$TRAIN_BIN"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin is not an executable" >&2
    exit 2
  fi
done

workdir=$(mktemp -d)
serve_pid=""
cleanup() {
  [[ -n "$serve_pid" ]] && kill -9 "$serve_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

# Tiny case per seed; the `server:` section only matters for the daemon
# invocation (sickle_train ignores it).
write_cfg() {
  local cfg=$1 seed=$2
  cat > "$cfg" <<EOF
shared:
  dataset: SST-P1F4
  scale: 0.25
  seed: $seed

subsample:
  hypercubes: random
  method: maxent
  num_hypercubes: 2
  num_samples: 17
  num_clusters: 3
  nxsl: 8
  nysl: 8
  nzsl: 8

store:
  backend: series
  ingest: streaming
  codec: delta
  chunk: 16
  write_budget_mb: 1
  spill_dir: $workdir/spill

train:
  arch: MLP_transformer
  epochs: 1
  batch: 4
  dim: 8
  heads: 2

server:
  port: 0
  max_concurrent_cases: 4
  queue_capacity: 32
EOF
}

NUM_CASES=8
NUM_SEEDS=4
for seed in $(seq 0 $((NUM_SEEDS - 1))); do
  write_cfg "$workdir/case_$seed.yaml" "$seed"
done

echo "=== starting daemon"
"$SERVE_BIN" "$workdir/case_0.yaml" > "$workdir/serve.log" 2>&1 &
serve_pid=$!
port=""
for _ in $(seq 1 50); do
  port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
         "$workdir/serve.log")
  [[ -n "$port" ]] && break
  sleep 0.1
done
if [[ -z "$port" ]]; then
  echo "error: daemon never printed its port" >&2
  cat "$workdir/serve.log" >&2
  exit 1
fi
echo "daemon pid $serve_pid on port $port"

echo "=== submitting $NUM_CASES concurrent cases"
pids=()
for i in $(seq 0 $((NUM_CASES - 1))); do
  seed=$((i % NUM_SEEDS))
  (
    sub=$(python3 "$CLIENT" --port "$port" submit \
          --config "$workdir/case_$seed.yaml")
    id=$(echo "$sub" | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
    res=$(python3 "$CLIENT" --port "$port" result --id "$id")
    hash=$(echo "$res" | python3 -c 'import json,sys; print(json.load(sys.stdin)["sample_hash"])')
    echo "$hash" > "$workdir/hash_${i}_seed${seed}"
  ) &
  pids+=($!)
done
for pid in "${pids[@]}"; do wait "$pid"; done

echo "=== diffing daemon hashes against sickle_train"
for seed in $(seq 0 $((NUM_SEEDS - 1))); do
  want=$("$TRAIN_BIN" "$workdir/case_$seed.yaml" \
         | sed -n 's/^sample set hash: //p')
  for f in "$workdir"/hash_*_seed"$seed"; do
    got=$(cat "$f")
    if [[ "$got" != "$want" ]]; then
      echo "error: $(basename "$f"): daemon hash $got != run_case $want" >&2
      exit 1
    fi
  done
  echo "seed $seed: $want OK ($(ls "$workdir"/hash_*_seed"$seed" | wc -l) cases)"
done

echo "=== metrics scrape"
metrics=$(python3 "$CLIENT" --port "$port" metrics)
submitted=$(echo "$metrics" | python3 -c \
  'import json,sys; print(int(json.load(sys.stdin)["metrics"]["serve.cases_submitted"]))')
if [[ "$submitted" -ne "$NUM_CASES" ]]; then
  echo "error: metrics report $submitted submissions, expected $NUM_CASES" >&2
  exit 1
fi
echo "serve.cases_submitted = $submitted OK"

echo "=== SIGTERM shutdown"
kill -TERM "$serve_pid"
rc=0
wait "$serve_pid" || rc=$?
serve_pid=""
if [[ "$rc" -ne 0 ]]; then
  echo "error: daemon exited $rc on SIGTERM" >&2
  cat "$workdir/serve.log" >&2
  exit 1
fi
grep -q "shut down cleanly" "$workdir/serve.log" || {
  echo "error: no clean-shutdown line in the daemon log" >&2
  exit 1
}

echo
echo "e2e-serve OK: $NUM_CASES concurrent cases bit-identical, metrics"
echo "consistent, clean SIGTERM shutdown"
