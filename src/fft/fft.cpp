#include "fft/fft.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/mathx.hpp"

namespace sickle::fft {

namespace {

/// Bit-reversal permutation for a power-of-two length.
void bit_reverse(std::span<cplx> a) {
  const std::size_t n = a.size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
}

}  // namespace

void transform(std::span<cplx> data, bool inverse) {
  const std::size_t n = data.size();
  SICKLE_CHECK_MSG(is_pow2(n), "FFT length must be a power of two");
  if (n <= 1) return;
  bit_reverse(data);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const cplx wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      cplx w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const cplx u = data[i + j];
        const cplx v = data[i + j + len / 2] * w;
        data[i + j] = u + v;
        data[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= inv_n;
  }
}

void transform_lines(cplx* data, std::size_t n, std::size_t stride,
                     std::size_t count, std::size_t dist, bool inverse) {
  std::vector<cplx> line(n);
  for (std::size_t c = 0; c < count; ++c) {
    cplx* base = data + c * dist;
    if (stride == 1) {
      transform(std::span<cplx>(base, n), inverse);
    } else {
      for (std::size_t i = 0; i < n; ++i) line[i] = base[i * stride];
      transform(std::span<cplx>(line), inverse);
      for (std::size_t i = 0; i < n; ++i) base[i * stride] = line[i];
    }
  }
}

void transform_2d(std::span<cplx> data, std::size_t nx, std::size_t ny,
                  bool inverse) {
  SICKLE_CHECK(data.size() == nx * ny);
  // Rows (contiguous along y), then columns.
  transform_lines(data.data(), ny, 1, nx, ny, inverse);
  for (std::size_t iy = 0; iy < ny; ++iy) {
    transform_lines(data.data() + iy, nx, ny, 1, 0, inverse);
  }
}

void transform_3d(std::span<cplx> data, std::size_t nx, std::size_t ny,
                  std::size_t nz, bool inverse) {
  SICKLE_CHECK(data.size() == nx * ny * nz);
  // z lines: contiguous, one per (ix, iy).
  transform_lines(data.data(), nz, 1, nx * ny, nz, inverse);
  // y lines: stride nz, one per (ix, iz).
  for (std::size_t ix = 0; ix < nx; ++ix) {
    for (std::size_t iz = 0; iz < nz; ++iz) {
      transform_lines(data.data() + ix * ny * nz + iz, ny, nz, 1, 0, inverse);
    }
  }
  // x lines: stride ny*nz, one per (iy, iz).
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t iz = 0; iz < nz; ++iz) {
      transform_lines(data.data() + iy * nz + iz, nx, ny * nz, 1, 0, inverse);
    }
  }
}

std::vector<double> poisson_solve_3d(std::span<const double> rhs,
                                     std::size_t nx, std::size_t ny,
                                     std::size_t nz) {
  SICKLE_CHECK(rhs.size() == nx * ny * nz);
  std::vector<cplx> hat(rhs.size());
  for (std::size_t i = 0; i < rhs.size(); ++i) hat[i] = cplx(rhs[i], 0.0);
  transform_3d(std::span<cplx>(hat), nx, ny, nz, false);

  for (std::size_t ix = 0; ix < nx; ++ix) {
    const double kx = wavenumber(ix, nx);
    for (std::size_t iy = 0; iy < ny; ++iy) {
      const double ky = wavenumber(iy, ny);
      for (std::size_t iz = 0; iz < nz; ++iz) {
        const double kz = wavenumber(iz, nz);
        const double k2 = kx * kx + ky * ky + kz * kz;
        const std::size_t idx = (ix * ny + iy) * nz + iz;
        // Gauge: zero-mean solution (k = 0 mode removed).
        hat[idx] = (k2 > 0.0) ? hat[idx] / (-k2) : cplx(0.0, 0.0);
      }
    }
  }

  transform_3d(std::span<cplx>(hat), nx, ny, nz, true);
  std::vector<double> out(rhs.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = hat[i].real();
  return out;
}

std::vector<double> spectral_derivative_3d(std::span<const double> field,
                                           std::size_t nx, std::size_t ny,
                                           std::size_t nz, int axis) {
  SICKLE_CHECK(field.size() == nx * ny * nz);
  SICKLE_CHECK(axis >= 0 && axis <= 2);
  std::vector<cplx> hat(field.size());
  for (std::size_t i = 0; i < field.size(); ++i) hat[i] = cplx(field[i], 0.0);
  transform_3d(std::span<cplx>(hat), nx, ny, nz, false);

  const cplx I(0.0, 1.0);
  for (std::size_t ix = 0; ix < nx; ++ix) {
    const double kx = wavenumber(ix, nx);
    for (std::size_t iy = 0; iy < ny; ++iy) {
      const double ky = wavenumber(iy, ny);
      for (std::size_t iz = 0; iz < nz; ++iz) {
        const double kz = wavenumber(iz, nz);
        const double k = (axis == 0) ? kx : (axis == 1) ? ky : kz;
        const std::size_t idx = (ix * ny + iy) * nz + iz;
        hat[idx] *= I * k;
      }
    }
  }
  // The Nyquist mode of an odd operator (i*k) must be zeroed for a real
  // result; wavenumber() maps it to -n/2 which is fine for magnitude but
  // the derivative of a real signal at Nyquist is ambiguous. Zero it.
  auto zero_nyquist = [&](int ax) {
    const std::size_t n = (ax == 0) ? nx : (ax == 1) ? ny : nz;
    if (n < 2) return;
    const std::size_t half = n / 2;
    for (std::size_t ix = 0; ix < nx; ++ix) {
      for (std::size_t iy = 0; iy < ny; ++iy) {
        for (std::size_t iz = 0; iz < nz; ++iz) {
          const std::size_t i_ax = (ax == 0) ? ix : (ax == 1) ? iy : iz;
          if (i_ax == half) hat[(ix * ny + iy) * nz + iz] = cplx(0.0, 0.0);
        }
      }
    }
  };
  zero_nyquist(axis);

  transform_3d(std::span<cplx>(hat), nx, ny, nz, true);
  std::vector<double> out(field.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = hat[i].real();
  return out;
}

}  // namespace sickle::fft
