// Minimal self-contained FFT for spectral turbulence synthesis.
//
// The paper's GESTS substrate is a Fourier pseudo-spectral DNS code; our
// synthetic isotropic/stratified generators and the spectral pressure
// Poisson solve need multidimensional FFTs. FFTW is not available offline,
// so this module implements an iterative radix-2 Cooley–Tukey transform —
// all SICKLE grids are power-of-two sized by construction.
//
// Conventions: forward transform has no normalization; inverse divides by N
// (so inverse(forward(x)) == x).
#pragma once

#include <array>
#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace sickle::fft {

using cplx = std::complex<double>;

/// In-place forward/inverse radix-2 FFT. data.size() must be a power of two.
void transform(std::span<cplx> data, bool inverse);

/// Convenience forward/inverse wrappers.
inline void forward(std::span<cplx> data) { transform(data, false); }
inline void inverse(std::span<cplx> data) { transform(data, true); }

/// Out-of-place strided transform used to build multidimensional FFTs.
/// Transforms `count` interleaved lines of length n with stride `stride`
/// starting at offsets 0..count-1 * `dist`.
void transform_lines(cplx* data, std::size_t n, std::size_t stride,
                     std::size_t count, std::size_t dist, bool inverse);

/// 3D FFT over a contiguous nz-fastest array: index = (ix*ny + iy)*nz + iz.
/// All three extents must be powers of two.
void transform_3d(std::span<cplx> data, std::size_t nx, std::size_t ny,
                  std::size_t nz, bool inverse);

/// 2D FFT, ny-fastest: index = ix*ny + iy.
void transform_2d(std::span<cplx> data, std::size_t nx, std::size_t ny,
                  bool inverse);

/// Signed integer wavenumber for FFT bin i of an n-point transform:
/// 0,1,...,n/2-1, -n/2, ..., -1.
[[nodiscard]] inline double wavenumber(std::size_t i, std::size_t n) noexcept {
  return (i <= n / 2 - 1 || n <= 1) ? static_cast<double>(i)
                                    : static_cast<double>(i) -
                                          static_cast<double>(n);
}

/// Solve the periodic Poisson equation lap(u) = rhs on an nx*ny*nz grid of
/// physical extent (2*pi)^3 via diagonalization in Fourier space. The mean
/// mode is gauged to zero. rhs and the result are real fields stored
/// nz-fastest.
[[nodiscard]] std::vector<double> poisson_solve_3d(std::span<const double> rhs,
                                                   std::size_t nx,
                                                   std::size_t ny,
                                                   std::size_t nz);

/// Spectral derivative of a real periodic field along the given axis
/// (0 = x slowest, 2 = z fastest); domain extent 2*pi per axis.
[[nodiscard]] std::vector<double> spectral_derivative_3d(
    std::span<const double> field, std::size_t nx, std::size_t ny,
    std::size_t nz, int axis);

}  // namespace sickle::fft
