#include "field/field_source.hpp"

namespace sickle::field {

void SnapshotSource::gather(const std::string& var,
                            std::span<const std::size_t> idx,
                            std::span<double> out) const {
  SICKLE_CHECK(out.size() == idx.size());
  const auto data = snap_->get(var).data();
  for (std::size_t i = 0; i < idx.size(); ++i) out[i] = data[idx[i]];
}

DatasetSeriesSource::DatasetSeriesSource(const Dataset& data) {
  views_.reserve(data.num_snapshots());
  for (std::size_t t = 0; t < data.num_snapshots(); ++t) {
    views_.emplace_back(data.snapshot(t));
  }
}

Hypercube extract_cube(const FieldSource& src, const CubeTiling& tiling,
                       const CubeCoord& c, std::span<const std::string> vars) {
  Hypercube cube;
  cube.coord = c;
  cube.indices = tiling.point_indices(c);
  cube.variables.assign(vars.begin(), vars.end());
  cube.values.reserve(vars.size());
  for (const auto& name : vars) {
    cube.values.push_back(
        src.gather(name, std::span<const std::size_t>(cube.indices)));
  }
  return cube;
}

}  // namespace sickle::field
