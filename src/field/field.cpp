#include "field/field.hpp"

namespace sickle::field {

namespace {
std::size_t wrap(std::ptrdiff_t i, std::size_t n) noexcept {
  const auto sn = static_cast<std::ptrdiff_t>(n);
  std::ptrdiff_t m = i % sn;
  if (m < 0) m += sn;
  return static_cast<std::size_t>(m);
}
}  // namespace

double Field::at_periodic(std::ptrdiff_t ix, std::ptrdiff_t iy,
                          std::ptrdiff_t iz) const noexcept {
  return data_[shape_.index(wrap(ix, shape_.nx), wrap(iy, shape_.ny),
                            wrap(iz, shape_.nz))];
}

Field& Snapshot::add(std::string name) {
  SICKLE_CHECK_MSG(!has(name), "duplicate field name: " + name);
  index_[name] = fields_.size();
  fields_.emplace_back(std::move(name), shape_);
  return fields_.back();
}

Field& Snapshot::add(std::string name, std::vector<double> data) {
  SICKLE_CHECK_MSG(!has(name), "duplicate field name: " + name);
  index_[name] = fields_.size();
  fields_.emplace_back(std::move(name), shape_, std::move(data));
  return fields_.back();
}

bool Snapshot::has(const std::string& name) const noexcept {
  return index_.count(name) > 0;
}

const Field& Snapshot::get(const std::string& name) const {
  const auto it = index_.find(name);
  SICKLE_CHECK_MSG(it != index_.end(), "unknown field: " + name);
  return fields_[it->second];
}

Field& Snapshot::get(const std::string& name) {
  const auto it = index_.find(name);
  SICKLE_CHECK_MSG(it != index_.end(), "unknown field: " + name);
  return fields_[it->second];
}

std::vector<std::string> Snapshot::names() const {
  std::vector<std::string> out;
  out.reserve(fields_.size());
  for (const auto& f : fields_) out.push_back(f.name());
  return out;
}

std::vector<double> Snapshot::values_at(std::span<const std::string> vars,
                                        std::size_t flat_index) const {
  std::vector<double> out;
  out.reserve(vars.size());
  for (const auto& v : vars) out.push_back(get(v).data()[flat_index]);
  return out;
}

void Dataset::push(Snapshot snapshot) {
  if (!snapshots_.empty()) {
    SICKLE_CHECK_MSG(snapshot.shape() == snapshots_.front().shape(),
                     "all snapshots in a dataset share one grid");
  }
  snapshots_.push_back(std::move(snapshot));
}

std::size_t Dataset::bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& s : snapshots_) total += s.bytes();
  return total;
}

}  // namespace sickle::field
