// Derived flow variables (Table 1's K-means cluster variables).
//
// The datasets cluster on quantities the raw snapshots do not carry:
// vorticity (OF2D), potential vorticity (SST-P1F4), density (SST-P1F100),
// enstrophy (GESTS). These are computed from the primitive fields with
// 2nd-order central differences on a periodic unit-spaced grid — adequate
// for sampling statistics (the sampler only consumes their distribution).
#pragma once

#include <string>

#include "field/field.hpp"

namespace sickle::field {

/// 2D z-vorticity  wz = dv/dx - du/dy  from fields "u", "v".
/// Adds (or overwrites) field `out` on the snapshot.
void add_vorticity_2d(Snapshot& snap, const std::string& out = "wz");

/// 3D vorticity magnitude |curl u| from "u","v","w".
void add_vorticity_magnitude_3d(Snapshot& snap,
                                const std::string& out = "vortmag");

/// Enstrophy  Omega = |curl u|^2 / 2.
void add_enstrophy_3d(Snapshot& snap, const std::string& out = "enstrophy");

/// Pseudo dissipation rate  eps = sum_ij (du_i/dx_j)^2  (unit viscosity).
void add_dissipation_3d(Snapshot& snap, const std::string& out = "eps");

/// Linearized potential vorticity for stratified flow:
///   q = wz_3d . grad(rho) ~ (dv/dx - du/dy) * drho/dg + ...
/// computed as full curl(u) . grad(rho), with "rho" the density field.
void add_potential_vorticity_3d(Snapshot& snap,
                                const std::string& out = "pv");

/// Central-difference derivative of `f` along axis (0=x,1=y,2=z), periodic,
/// unit grid spacing.
[[nodiscard]] std::vector<double> central_derivative(const Field& f, int axis);

}  // namespace sickle::field
