/// @file field_source.hpp
/// @brief Read-only field access abstraction for in-memory and out-of-core
/// snapshots.
///
/// The sampling pipeline only ever *gathers* variable values at grid
/// indices (k-means fit subsets, per-cube point sets); it never needs a
/// whole field span. FieldSource captures exactly that contract, so the
/// same selector/sampler code runs over an in-memory Snapshot
/// (SnapshotSource, zero-copy) or a chunked on-disk store
/// (store::ChunkReader, LRU-cached) without materializing the full grid.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "field/field.hpp"
#include "field/hypercube.hpp"

namespace sickle::field {

/// Read-only random access to named variables on a shared grid.
class FieldSource {
 public:
  virtual ~FieldSource() = default;

  [[nodiscard]] virtual const GridShape& shape() const noexcept = 0;

  /// Variable names, in a stable order.
  [[nodiscard]] virtual std::vector<std::string> variables() const = 0;

  [[nodiscard]] virtual bool has(const std::string& var) const = 0;

  /// Simulation time of the snapshot this source exposes. Sources without
  /// a time axis report 0.
  [[nodiscard]] virtual double time() const noexcept { return 0.0; }

  /// Optional zero-copy fast path: the whole field as one contiguous
  /// span, for sources that hold it in memory. Out-of-core sources
  /// return an empty span and callers fall back to batched gather()
  /// (see for_each_flat_batch). Throws for unknown variables.
  [[nodiscard]] virtual std::span<const double> contiguous(
      const std::string& var) const {
    (void)var;
    return {};
  }

  /// Gather `var` at arbitrary global flat indices: out[i] = var[idx[i]].
  /// `out.size()` must equal `idx.size()`. Throws for unknown variables.
  virtual void gather(const std::string& var,
                      std::span<const std::size_t> idx,
                      std::span<double> out) const = 0;

  /// Allocating convenience wrapper around gather().
  [[nodiscard]] std::vector<double> gather(
      const std::string& var, std::span<const std::size_t> idx) const {
    std::vector<double> out(idx.size());
    gather(var, idx, std::span<double>(out));
    return out;
  }
};

/// Zero-copy adapter presenting an in-memory Snapshot as a FieldSource.
/// The snapshot must outlive the source.
class SnapshotSource final : public FieldSource {
 public:
  explicit SnapshotSource(const Snapshot& snap) noexcept : snap_(&snap) {}

  [[nodiscard]] const GridShape& shape() const noexcept override {
    return snap_->shape();
  }
  [[nodiscard]] std::vector<std::string> variables() const override {
    return snap_->names();
  }
  [[nodiscard]] bool has(const std::string& var) const override {
    return snap_->has(var);
  }
  void gather(const std::string& var, std::span<const std::size_t> idx,
              std::span<double> out) const override;
  using field::FieldSource::gather;
  [[nodiscard]] double time() const noexcept override {
    return snap_->time();
  }
  [[nodiscard]] std::span<const double> contiguous(
      const std::string& var) const override {
    return snap_->get(var).data();
  }

  [[nodiscard]] const Snapshot& snapshot() const noexcept { return *snap_; }

 private:
  const Snapshot* snap_;
};

/// Exact [min, max] of one variable on one snapshot.
struct VarRange {
  double min = 0.0;
  double max = 0.0;
};

/// Bin count of the canonical per-snapshot coarse histogram summary
/// (SeriesSource::coarse_histogram, SKL3 v4 index blocks). The contract
/// that makes index-resident and scanned counts interchangeable: counts
/// are accumulated by stats::Histogram over exactly
/// kCoarseHistogramBins equal-width bins spanning the snapshot's own
/// exact [min, max] (NaN-skipping, widened by +/-0.5 when degenerate,
/// all-zero when the range is non-finite). Integer counts are
/// batching-order-independent, so a writer-side whole-span pass and a
/// reader-side streamed scan produce bit-identical summaries for
/// lossless codecs.
inline constexpr std::size_t kCoarseHistogramBins = 64;

/// Read-only access to a time-ordered sequence of snapshots on a shared
/// grid — the temporal twin of FieldSource. Implementations: an in-memory
/// Dataset (DatasetSeriesSource, zero-copy), an SKL3 series container
/// (store::SeriesReader, LRU-cached out-of-core), or the case runner's
/// per-snapshot SKL2 spill adapter. Temporal snapshot selection
/// (sampling::select_snapshots) and the staged case orchestrator run over
/// this interface, so the same code path serves in-RAM and
/// larger-than-RAM series.
class SeriesSource {
 public:
  virtual ~SeriesSource() = default;

  [[nodiscard]] virtual std::size_t num_snapshots() const = 0;

  /// Borrow a per-snapshot view. The reference stays valid until the next
  /// source() call on the same SeriesSource (sequential drivers) or until
  /// destruction — in-memory and SKL3 implementations keep every view
  /// alive, but the SKL2 spill adapter recycles a single reader.
  [[nodiscard]] virtual const FieldSource& source(std::size_t t) const = 0;

  [[nodiscard]] virtual double time(std::size_t t) const {
    return source(t).time();
  }

  /// Precomputed value range of `var` on snapshot `t`, when the source
  /// carries one (SKL3 v2 index-resident summary blocks). nullopt means
  /// the caller must scan — consumers like temporal selection use the
  /// summary to skip a full range pass over the series, halving cold-store
  /// selection I/O. Ranges are exact for lossless codecs, so
  /// summary-driven and scan-driven statistics stay bit-identical.
  [[nodiscard]] virtual std::optional<VarRange> value_range(
      std::size_t t, const std::string& var) const {
    (void)t;
    (void)var;
    return std::nullopt;
  }

  /// Precomputed coarse histogram of `var` on snapshot `t` — counts of
  /// the canonical kCoarseHistogramBins-bin histogram over the snapshot's
  /// own exact range (see kCoarseHistogramBins for the exact contract) —
  /// when the source carries one (SKL3 v4 index summary blocks). nullopt
  /// means the caller must scan. Together with value_range this lets
  /// temporal selection seed its novelty ranking with ZERO payload
  /// decodes on a sealed v4 series; only the selected candidates are
  /// refined with an exact streamed pass.
  [[nodiscard]] virtual std::optional<std::vector<std::uint64_t>>
  coarse_histogram(std::size_t t, const std::string& var) const {
    (void)t;
    (void)var;
    return std::nullopt;
  }
};

/// Zero-copy adapter presenting an in-memory Dataset as a SeriesSource.
/// The dataset must outlive the source.
class DatasetSeriesSource final : public SeriesSource {
 public:
  explicit DatasetSeriesSource(const Dataset& data);

  [[nodiscard]] std::size_t num_snapshots() const override {
    return views_.size();
  }
  [[nodiscard]] const FieldSource& source(std::size_t t) const override {
    SICKLE_CHECK(t < views_.size());
    return views_[t];
  }

 private:
  std::vector<SnapshotSource> views_;
};

/// Visit every value of `var` in global flat order, in bounded gather
/// batches — the streaming scan primitive behind temporal-selection
/// histograms and training-set scaler fits. The flat order matters:
/// accumulations see values in exactly the sequence an in-memory span
/// scan would, which keeps streamed statistics bit-identical to
/// in-memory ones. In-memory sources short-circuit through contiguous()
/// (one callback over the raw span, no index materialization); only
/// out-of-core sources pay the batched gather, at O(batch) memory.
template <typename Fn>
void for_each_flat_batch(const FieldSource& src, const std::string& var,
                         Fn&& fn, std::size_t batch = 1u << 15) {
  if (const auto span = src.contiguous(var); !span.empty()) {
    fn(span);
    return;
  }
  const std::size_t n = src.shape().size();
  std::vector<std::size_t> idx(std::min(n, std::max<std::size_t>(batch, 1)));
  std::vector<double> vals(idx.size());
  for (std::size_t begin = 0; begin < n; begin += idx.size()) {
    const std::size_t count = std::min(idx.size(), n - begin);
    for (std::size_t i = 0; i < count; ++i) idx[i] = begin + i;
    src.gather(var, std::span<const std::size_t>(idx.data(), count),
               std::span<double>(vals.data(), count));
    fn(std::span<const double>(vals.data(), count));
  }
}

/// Extract the named variables inside cube `c` from any FieldSource — the
/// out-of-core twin of extract_cube(Snapshot&, ...), which delegates here.
[[nodiscard]] Hypercube extract_cube(const FieldSource& src,
                                     const CubeTiling& tiling,
                                     const CubeCoord& c,
                                     std::span<const std::string> vars);

}  // namespace sickle::field
