/// @file field_source.hpp
/// @brief Read-only field access abstraction for in-memory and out-of-core
/// snapshots.
///
/// The sampling pipeline only ever *gathers* variable values at grid
/// indices (k-means fit subsets, per-cube point sets); it never needs a
/// whole field span. FieldSource captures exactly that contract, so the
/// same selector/sampler code runs over an in-memory Snapshot
/// (SnapshotSource, zero-copy) or a chunked on-disk store
/// (store::ChunkReader, LRU-cached) without materializing the full grid.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "field/field.hpp"
#include "field/hypercube.hpp"

namespace sickle::field {

/// Read-only random access to named variables on a shared grid.
class FieldSource {
 public:
  virtual ~FieldSource() = default;

  [[nodiscard]] virtual const GridShape& shape() const noexcept = 0;

  /// Variable names, in a stable order.
  [[nodiscard]] virtual std::vector<std::string> variables() const = 0;

  [[nodiscard]] virtual bool has(const std::string& var) const = 0;

  /// Gather `var` at arbitrary global flat indices: out[i] = var[idx[i]].
  /// `out.size()` must equal `idx.size()`. Throws for unknown variables.
  virtual void gather(const std::string& var,
                      std::span<const std::size_t> idx,
                      std::span<double> out) const = 0;

  /// Allocating convenience wrapper around gather().
  [[nodiscard]] std::vector<double> gather(
      const std::string& var, std::span<const std::size_t> idx) const {
    std::vector<double> out(idx.size());
    gather(var, idx, std::span<double>(out));
    return out;
  }
};

/// Zero-copy adapter presenting an in-memory Snapshot as a FieldSource.
/// The snapshot must outlive the source.
class SnapshotSource final : public FieldSource {
 public:
  explicit SnapshotSource(const Snapshot& snap) noexcept : snap_(&snap) {}

  [[nodiscard]] const GridShape& shape() const noexcept override {
    return snap_->shape();
  }
  [[nodiscard]] std::vector<std::string> variables() const override {
    return snap_->names();
  }
  [[nodiscard]] bool has(const std::string& var) const override {
    return snap_->has(var);
  }
  void gather(const std::string& var, std::span<const std::size_t> idx,
              std::span<double> out) const override;
  using field::FieldSource::gather;

  [[nodiscard]] const Snapshot& snapshot() const noexcept { return *snap_; }

 private:
  const Snapshot* snap_;
};

/// Extract the named variables inside cube `c` from any FieldSource — the
/// out-of-core twin of extract_cube(Snapshot&, ...), which delegates here.
[[nodiscard]] Hypercube extract_cube(const FieldSource& src,
                                     const CubeTiling& tiling,
                                     const CubeCoord& c,
                                     std::span<const std::string> vars);

}  // namespace sickle::field
