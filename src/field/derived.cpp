#include "field/derived.hpp"

#include "common/error.hpp"
#include "common/mathx.hpp"

namespace sickle::field {

std::vector<double> central_derivative(const Field& f, int axis) {
  SICKLE_CHECK(axis >= 0 && axis <= 2);
  const GridShape& s = f.shape();
  std::vector<double> out(s.size(), 0.0);
  const std::ptrdiff_t dx = (axis == 0) ? 1 : 0;
  const std::ptrdiff_t dy = (axis == 1) ? 1 : 0;
  const std::ptrdiff_t dz = (axis == 2) ? 1 : 0;
  for (std::size_t ix = 0; ix < s.nx; ++ix) {
    for (std::size_t iy = 0; iy < s.ny; ++iy) {
      for (std::size_t iz = 0; iz < s.nz; ++iz) {
        const auto x = static_cast<std::ptrdiff_t>(ix);
        const auto y = static_cast<std::ptrdiff_t>(iy);
        const auto z = static_cast<std::ptrdiff_t>(iz);
        out[s.index(ix, iy, iz)] =
            0.5 * (f.at_periodic(x + dx, y + dy, z + dz) -
                   f.at_periodic(x - dx, y - dy, z - dz));
      }
    }
  }
  return out;
}

namespace {

void replace_or_add(Snapshot& snap, const std::string& name,
                    std::vector<double> data) {
  if (snap.has(name)) {
    auto dst = snap.get(name).data();
    std::copy(data.begin(), data.end(), dst.begin());
  } else {
    snap.add(name, std::move(data));
  }
}

}  // namespace

void add_vorticity_2d(Snapshot& snap, const std::string& out) {
  SICKLE_CHECK_MSG(snap.shape().is_2d(), "add_vorticity_2d needs a 2D grid");
  const auto dvdx = central_derivative(snap.get("v"), 0);
  const auto dudy = central_derivative(snap.get("u"), 1);
  std::vector<double> wz(dvdx.size());
  for (std::size_t i = 0; i < wz.size(); ++i) wz[i] = dvdx[i] - dudy[i];
  replace_or_add(snap, out, std::move(wz));
}

namespace {

/// curl(u) components on the snapshot grid.
struct Curl {
  std::vector<double> x, y, z;
};

Curl curl_3d(const Snapshot& snap) {
  const auto dwdy = central_derivative(snap.get("w"), 1);
  const auto dvdz = central_derivative(snap.get("v"), 2);
  const auto dudz = central_derivative(snap.get("u"), 2);
  const auto dwdx = central_derivative(snap.get("w"), 0);
  const auto dvdx = central_derivative(snap.get("v"), 0);
  const auto dudy = central_derivative(snap.get("u"), 1);
  Curl c;
  const std::size_t n = dwdy.size();
  c.x.resize(n);
  c.y.resize(n);
  c.z.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    c.x[i] = dwdy[i] - dvdz[i];
    c.y[i] = dudz[i] - dwdx[i];
    c.z[i] = dvdx[i] - dudy[i];
  }
  return c;
}

}  // namespace

void add_vorticity_magnitude_3d(Snapshot& snap, const std::string& out) {
  const Curl c = curl_3d(snap);
  std::vector<double> mag(c.x.size());
  for (std::size_t i = 0; i < mag.size(); ++i) {
    mag[i] = std::sqrt(sqr(c.x[i]) + sqr(c.y[i]) + sqr(c.z[i]));
  }
  replace_or_add(snap, out, std::move(mag));
}

void add_enstrophy_3d(Snapshot& snap, const std::string& out) {
  const Curl c = curl_3d(snap);
  std::vector<double> ens(c.x.size());
  for (std::size_t i = 0; i < ens.size(); ++i) {
    ens[i] = 0.5 * (sqr(c.x[i]) + sqr(c.y[i]) + sqr(c.z[i]));
  }
  replace_or_add(snap, out, std::move(ens));
}

void add_dissipation_3d(Snapshot& snap, const std::string& out) {
  std::vector<double> eps(snap.shape().size(), 0.0);
  for (const char* var : {"u", "v", "w"}) {
    for (int axis = 0; axis < 3; ++axis) {
      const auto g = central_derivative(snap.get(var), axis);
      for (std::size_t i = 0; i < eps.size(); ++i) eps[i] += sqr(g[i]);
    }
  }
  replace_or_add(snap, out, std::move(eps));
}

void add_potential_vorticity_3d(Snapshot& snap, const std::string& out) {
  const Curl c = curl_3d(snap);
  const auto drdx = central_derivative(snap.get("rho"), 0);
  const auto drdy = central_derivative(snap.get("rho"), 1);
  const auto drdz = central_derivative(snap.get("rho"), 2);
  std::vector<double> pv(c.x.size());
  for (std::size_t i = 0; i < pv.size(); ++i) {
    pv[i] = c.x[i] * drdx[i] + c.y[i] * drdy[i] + c.z[i] * drdz[i];
  }
  replace_or_add(snap, out, std::move(pv));
}

}  // namespace sickle::field
