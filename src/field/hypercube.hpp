// Hypercube tiling and extraction.
//
// Phase 1 of SICKLE decomposes each snapshot into edge^3 hypercubes (32^3
// in the paper; "full" training means fully dense cubes of this size). A
// Hypercube view carries, per variable, the flattened values inside the
// cube plus the global flat indices of its points so phase-2 samplers can
// report selections in global coordinates.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "field/field.hpp"

namespace sickle::field {

/// Cube edge lengths (the paper's --nxsl/--nysl/--nzsl).
struct CubeSpec {
  std::size_t ex = 32;
  std::size_t ey = 32;
  std::size_t ez = 32;
  [[nodiscard]] std::size_t points() const noexcept { return ex * ey * ez; }
};

/// Integer coordinate of a cube within the tiling.
struct CubeCoord {
  std::size_t cx = 0, cy = 0, cz = 0;
  bool operator==(const CubeCoord&) const = default;
};

/// Tiling of a grid into non-overlapping cubes; trailing partial cubes are
/// dropped (the reference implementation likewise samples only whole
/// cubes).
class CubeTiling {
 public:
  CubeTiling(GridShape grid, CubeSpec spec);

  [[nodiscard]] std::size_t count() const noexcept {
    return tx_ * ty_ * tz_;
  }
  [[nodiscard]] std::size_t tiles_x() const noexcept { return tx_; }
  [[nodiscard]] std::size_t tiles_y() const noexcept { return ty_; }
  [[nodiscard]] std::size_t tiles_z() const noexcept { return tz_; }
  [[nodiscard]] const CubeSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const GridShape& grid() const noexcept { return grid_; }

  [[nodiscard]] CubeCoord coord(std::size_t flat) const noexcept;
  [[nodiscard]] std::size_t flat(const CubeCoord& c) const noexcept;

  /// Global flat grid indices of every point inside cube `c`, z-fastest.
  [[nodiscard]] std::vector<std::size_t> point_indices(
      const CubeCoord& c) const;

 private:
  GridShape grid_;
  CubeSpec spec_;
  std::size_t tx_, ty_, tz_;
};

/// Extracted cube data: per-variable flattened values + global indices.
struct Hypercube {
  CubeCoord coord;
  std::vector<std::size_t> indices;            ///< global flat grid indices
  std::vector<std::string> variables;          ///< variable order
  std::vector<std::vector<double>> values;     ///< [var][point]

  [[nodiscard]] std::size_t points() const noexcept { return indices.size(); }
  /// Feature vector (one value per variable) for local point p.
  [[nodiscard]] std::vector<double> feature(std::size_t p) const;
};

/// Extract the named variables of `snap` inside cube `c`.
[[nodiscard]] Hypercube extract_cube(const Snapshot& snap,
                                     const CubeTiling& tiling,
                                     const CubeCoord& c,
                                     std::span<const std::string> vars);

}  // namespace sickle::field
