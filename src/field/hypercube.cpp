#include "field/hypercube.hpp"

#include "field/field_source.hpp"

namespace sickle::field {

CubeTiling::CubeTiling(GridShape grid, CubeSpec spec)
    : grid_(grid), spec_(spec) {
  SICKLE_CHECK_MSG(spec_.ex > 0 && spec_.ey > 0 && spec_.ez > 0,
                   "cube edges must be positive");
  tx_ = grid_.nx / spec_.ex;
  ty_ = grid_.ny / spec_.ey;
  tz_ = grid_.nz / spec_.ez;
  SICKLE_CHECK_MSG(tx_ > 0 && ty_ > 0 && tz_ > 0,
                   "grid smaller than one hypercube");
}

CubeCoord CubeTiling::coord(std::size_t flat) const noexcept {
  CubeCoord c;
  c.cz = flat % tz_;
  c.cy = (flat / tz_) % ty_;
  c.cx = flat / (tz_ * ty_);
  return c;
}

std::size_t CubeTiling::flat(const CubeCoord& c) const noexcept {
  return (c.cx * ty_ + c.cy) * tz_ + c.cz;
}

std::vector<std::size_t> CubeTiling::point_indices(const CubeCoord& c) const {
  SICKLE_CHECK(c.cx < tx_ && c.cy < ty_ && c.cz < tz_);
  std::vector<std::size_t> out;
  out.reserve(spec_.points());
  const std::size_t x0 = c.cx * spec_.ex;
  const std::size_t y0 = c.cy * spec_.ey;
  const std::size_t z0 = c.cz * spec_.ez;
  for (std::size_t ix = x0; ix < x0 + spec_.ex; ++ix) {
    for (std::size_t iy = y0; iy < y0 + spec_.ey; ++iy) {
      for (std::size_t iz = z0; iz < z0 + spec_.ez; ++iz) {
        out.push_back(grid_.index(ix, iy, iz));
      }
    }
  }
  return out;
}

std::vector<double> Hypercube::feature(std::size_t p) const {
  std::vector<double> f;
  f.reserve(values.size());
  for (const auto& v : values) f.push_back(v[p]);
  return f;
}

Hypercube extract_cube(const Snapshot& snap, const CubeTiling& tiling,
                       const CubeCoord& c, std::span<const std::string> vars) {
  // Single code path with the out-of-core variant: the streaming pipeline's
  // equivalence guarantee rests on both extracting identical cubes.
  return extract_cube(SnapshotSource(snap), tiling, c, vars);
}

}  // namespace sickle::field
