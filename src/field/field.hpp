// Structured-grid field containers.
//
// A Snapshot is one time instance of a multi-variable field on a regular
// grid (the unit every DNS dataset in Table 1 decomposes into); a Dataset
// is a time-ordered sequence of snapshots plus naming metadata. 2D cases
// use nz = 1. Storage is z-fastest row-major: idx = (ix*ny + iy)*nz + iz.
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace sickle::field {

/// Grid extents. nz == 1 denotes a 2D grid.
struct GridShape {
  std::size_t nx = 1;
  std::size_t ny = 1;
  std::size_t nz = 1;

  [[nodiscard]] std::size_t size() const noexcept { return nx * ny * nz; }
  [[nodiscard]] bool is_2d() const noexcept { return nz == 1; }
  [[nodiscard]] std::size_t index(std::size_t ix, std::size_t iy,
                                  std::size_t iz) const noexcept {
    return (ix * ny + iy) * nz + iz;
  }
  bool operator==(const GridShape&) const = default;
};

/// One scalar variable on a grid.
class Field {
 public:
  Field(std::string name, GridShape shape)
      : name_(std::move(name)), shape_(shape), data_(shape.size(), 0.0) {}
  Field(std::string name, GridShape shape, std::vector<double> data)
      : name_(std::move(name)), shape_(shape), data_(std::move(data)) {
    SICKLE_CHECK_MSG(data_.size() == shape_.size(),
                     "field data does not match grid size");
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const GridShape& shape() const noexcept { return shape_; }
  [[nodiscard]] std::span<const double> data() const noexcept { return data_; }
  [[nodiscard]] std::span<double> data() noexcept { return data_; }

  [[nodiscard]] double at(std::size_t ix, std::size_t iy,
                          std::size_t iz = 0) const noexcept {
    return data_[shape_.index(ix, iy, iz)];
  }
  double& at(std::size_t ix, std::size_t iy, std::size_t iz = 0) noexcept {
    return data_[shape_.index(ix, iy, iz)];
  }

  /// Periodic accessor (indices wrapped): used by finite-difference stencils.
  [[nodiscard]] double at_periodic(std::ptrdiff_t ix, std::ptrdiff_t iy,
                                   std::ptrdiff_t iz) const noexcept;

 private:
  std::string name_;
  GridShape shape_;
  std::vector<double> data_;
};

/// One time instance holding multiple named variables on a shared grid.
class Snapshot {
 public:
  Snapshot(GridShape shape, double time = 0.0) : shape_(shape), time_(time) {}

  [[nodiscard]] const GridShape& shape() const noexcept { return shape_; }
  [[nodiscard]] double time() const noexcept { return time_; }
  void set_time(double t) noexcept { time_ = t; }

  /// Add a variable; name must be unique within the snapshot. The
  /// returned reference stays valid across later add() calls (fields live
  /// in a deque, so growth never relocates them) — generators rely on
  /// holding several field references while filling them point by point.
  Field& add(std::string name);
  Field& add(std::string name, std::vector<double> data);

  [[nodiscard]] bool has(const std::string& name) const noexcept;
  [[nodiscard]] const Field& get(const std::string& name) const;
  [[nodiscard]] Field& get(const std::string& name);

  [[nodiscard]] std::size_t num_fields() const noexcept {
    return fields_.size();
  }
  [[nodiscard]] std::vector<std::string> names() const;

  /// Gather the values of several variables at a flat grid index — the
  /// feature vector samplers operate on.
  [[nodiscard]] std::vector<double> values_at(
      std::span<const std::string> vars, std::size_t flat_index) const;

  /// In-memory footprint of the payload, in bytes (for Table 1 / storage
  /// accounting).
  [[nodiscard]] std::size_t bytes() const noexcept {
    return num_fields() * shape_.size() * sizeof(double);
  }

 private:
  GridShape shape_;
  double time_;
  // Deque, not vector: add() hands out long-lived Field references, and
  // deque growth never relocates existing elements. With a vector, the
  // second add() invalidated every earlier reference — an ASan-visible
  // use-after-free that only worked at -O2 because the optimizer hoisted
  // the data pointer past the invalidation.
  std::deque<Field> fields_;
  std::map<std::string, std::size_t> index_;
};

/// A labeled time series of snapshots (one of the paper's Table 1 rows).
class Dataset {
 public:
  explicit Dataset(std::string label) : label_(std::move(label)) {}

  void push(Snapshot snapshot);

  [[nodiscard]] const std::string& label() const noexcept { return label_; }
  [[nodiscard]] std::size_t num_snapshots() const noexcept {
    return snapshots_.size();
  }
  [[nodiscard]] const Snapshot& snapshot(std::size_t t) const {
    SICKLE_CHECK(t < snapshots_.size());
    return snapshots_[t];
  }
  [[nodiscard]] Snapshot& snapshot(std::size_t t) {
    SICKLE_CHECK(t < snapshots_.size());
    return snapshots_[t];
  }
  [[nodiscard]] const GridShape& shape() const {
    SICKLE_CHECK_MSG(!snapshots_.empty(), "dataset has no snapshots");
    return snapshots_.front().shape();
  }
  [[nodiscard]] std::size_t bytes() const noexcept;

 private:
  std::string label_;
  std::vector<Snapshot> snapshots_;
};

}  // namespace sickle::field
