#include "common/config.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace sickle {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

namespace {

/// Strip an unquoted trailing comment ("# ..." preceded by whitespace).
std::string strip_comment(const std::string& line) {
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '#' && (i == 0 || std::isspace(static_cast<unsigned char>(
                                         line[i - 1])))) {
      return line.substr(0, i);
    }
  }
  return line;
}

}  // namespace

Config Config::parse(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  std::string current_section;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    line = strip_comment(line);
    if (trim(line).empty()) continue;

    const bool indented =
        line.size() >= 2 && (line[0] == ' ' || line[0] == '\t');
    const std::string stripped = trim(line);
    const std::size_t colon = stripped.find(':');
    if (colon == std::string::npos) {
      throw RuntimeError("config line " + std::to_string(lineno) +
                         ": expected 'key: value'");
    }
    const std::string key = trim(stripped.substr(0, colon));
    const std::string value = trim(stripped.substr(colon + 1));
    if (key.empty()) {
      throw RuntimeError("config line " + std::to_string(lineno) +
                         ": empty key");
    }
    if (!indented && value.empty()) {
      current_section = key;
      cfg.data_[current_section];  // register empty section
    } else {
      if (current_section.empty()) {
        // Top-level scalar: place in implicit "shared" section, matching the
        // paper's flat CLI-flag configs.
        cfg.data_["shared"][key] = value;
      } else {
        cfg.data_[current_section][key] = value;
      }
    }
  }
  return cfg;
}

Config Config::load(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw RuntimeError("cannot open config file: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse(ss.str());
}

void Config::set(const std::string& section, const std::string& key,
                 const std::string& value) {
  data_[section][key] = value;
}

bool Config::has(const std::string& section, const std::string& key) const {
  const auto s = data_.find(section);
  return s != data_.end() && s->second.count(key) > 0;
}

std::string Config::get_str(const std::string& section,
                            const std::string& key) const {
  const auto s = data_.find(section);
  if (s == data_.end() || !s->second.count(key)) {
    throw RuntimeError("missing config key: " + section + "." + key);
  }
  return s->second.at(key);
}

std::string Config::get_str(const std::string& section, const std::string& key,
                            const std::string& fallback) const {
  return has(section, key) ? get_str(section, key) : fallback;
}

long Config::get_int(const std::string& section, const std::string& key) const {
  const std::string v = get_str(section, key);
  char* end = nullptr;
  const long out = std::strtol(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') {
    throw RuntimeError("config key " + section + "." + key +
                       " is not an integer: " + v);
  }
  return out;
}

long Config::get_int(const std::string& section, const std::string& key,
                     long fallback) const {
  return has(section, key) ? get_int(section, key) : fallback;
}

double Config::get_double(const std::string& section,
                          const std::string& key) const {
  const std::string v = get_str(section, key);
  char* end = nullptr;
  const double out = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0') {
    throw RuntimeError("config key " + section + "." + key +
                       " is not a number: " + v);
  }
  return out;
}

double Config::get_double(const std::string& section, const std::string& key,
                          double fallback) const {
  return has(section, key) ? get_double(section, key) : fallback;
}

bool Config::get_bool(const std::string& section, const std::string& key,
                      bool fallback) const {
  if (!has(section, key)) return fallback;
  const std::string v = get_str(section, key);
  if (v == "true" || v == "True" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "False" || v == "0" || v == "no") return false;
  throw RuntimeError("config key " + section + "." + key +
                     " is not a boolean: " + v);
}

std::vector<std::string> Config::get_list(const std::string& section,
                                          const std::string& key) const {
  std::string v = get_str(section, key);
  std::vector<std::string> out;
  if (!v.empty() && v.front() == '[') {
    if (v.back() != ']') {
      throw RuntimeError("config key " + section + "." + key +
                         ": unterminated list");
    }
    v = v.substr(1, v.size() - 2);
    std::string item;
    std::istringstream ss(v);
    while (std::getline(ss, item, ',')) {
      const std::string t = trim(item);
      if (!t.empty()) out.push_back(t);
    }
  } else {
    // Space- or single-token scalar list ("u v w r" CLI style).
    std::istringstream ss(v);
    std::string tok;
    while (ss >> tok) out.push_back(tok);
  }
  return out;
}

std::vector<std::string> Config::sections() const {
  std::vector<std::string> out;
  out.reserve(data_.size());
  for (const auto& [k, _] : data_) out.push_back(k);
  return out;
}

std::vector<std::string> Config::keys(const std::string& section) const {
  std::vector<std::string> out;
  const auto s = data_.find(section);
  if (s == data_.end()) return out;
  out.reserve(s->second.size());
  for (const auto& [k, _] : s->second) out.push_back(k);
  return out;
}

}  // namespace sickle
