#include "common/csv.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace sickle {

CsvTable::CsvTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  SICKLE_CHECK_MSG(!columns_.empty(), "CSV table needs at least one column");
}

void CsvTable::new_row() {
  if (!rows_.empty()) {
    SICKLE_CHECK_MSG(rows_.back().size() == columns_.size(),
                     "previous CSV row incomplete");
  }
  rows_.emplace_back();
  rows_.back().reserve(columns_.size());
}

void CsvTable::push(const std::string& value) {
  SICKLE_CHECK_MSG(!rows_.empty(), "call new_row() before push()");
  SICKLE_CHECK_MSG(rows_.back().size() < columns_.size(),
                   "too many values in CSV row");
  rows_.back().push_back(value);
}

void CsvTable::push(double value) {
  std::ostringstream os;
  os.precision(10);
  os << value;
  push(os.str());
}

void CsvTable::push(std::size_t value) { push(std::to_string(value)); }

std::string csv_escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string CsvTable::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i) os << ',';
    os << csv_escape(columns_[i]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << csv_escape(row[i]);
    }
    os << '\n';
  }
  return os.str();
}

void CsvTable::save(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw RuntimeError("cannot open CSV output file: " + path);
  f << to_string();
  if (!f) throw RuntimeError("error writing CSV file: " + path);
}

}  // namespace sickle
