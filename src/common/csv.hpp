// Minimal CSV table writer used by benches to emit figure data.
#pragma once

#include <string>
#include <vector>

namespace sickle {

/// Row-oriented CSV table. Columns are fixed at construction; rows are
/// appended as strings or doubles and the table is rendered to a file or
/// string. Values containing commas/quotes are quoted per RFC 4180.
class CsvTable {
 public:
  explicit CsvTable(std::vector<std::string> columns);

  /// Begin a new row; subsequent push() calls fill it left to right.
  void new_row();
  void push(const std::string& value);
  void push(double value);
  void push(std::size_t value);

  /// Number of completed + in-progress rows.
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& columns() const noexcept {
    return columns_;
  }

  /// Render the full table (header + rows).
  [[nodiscard]] std::string to_string() const;

  /// Write to disk; throws RuntimeError on I/O failure.
  void save(const std::string& path) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Quote a CSV field if needed.
std::string csv_escape(const std::string& field);

}  // namespace sickle
