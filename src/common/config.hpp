// Case configuration: a YAML-subset parser mirroring the paper's
// case.yaml files (shared / subsample / train sections).
//
// Supported syntax — exactly what SICKLE's configs use:
//   section:
//     key: scalar
//     key: [a, b, c]
//     # comments
// Two-space indentation marks membership in the preceding section.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sickle {

/// Parsed configuration: section -> key -> raw string value.
class Config {
 public:
  Config() = default;

  /// Parse from YAML-subset text; throws RuntimeError on malformed input.
  static Config parse(const std::string& text);

  /// Load from file.
  static Config load(const std::string& path);

  /// Set a value programmatically (used by tests and the Case runner).
  void set(const std::string& section, const std::string& key,
           const std::string& value);

  [[nodiscard]] bool has(const std::string& section,
                         const std::string& key) const;

  /// Typed getters; throw RuntimeError when the key is missing or malformed
  /// unless a default is supplied.
  [[nodiscard]] std::string get_str(const std::string& section,
                                    const std::string& key) const;
  [[nodiscard]] std::string get_str(const std::string& section,
                                    const std::string& key,
                                    const std::string& fallback) const;
  [[nodiscard]] long get_int(const std::string& section,
                             const std::string& key) const;
  [[nodiscard]] long get_int(const std::string& section, const std::string& key,
                             long fallback) const;
  [[nodiscard]] double get_double(const std::string& section,
                                  const std::string& key) const;
  [[nodiscard]] double get_double(const std::string& section,
                                  const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& section,
                              const std::string& key, bool fallback) const;
  /// Parse "[a, b, c]" or a bare scalar into a list of tokens.
  [[nodiscard]] std::vector<std::string> get_list(
      const std::string& section, const std::string& key) const;

  [[nodiscard]] std::vector<std::string> sections() const;
  [[nodiscard]] std::vector<std::string> keys(const std::string& section) const;

 private:
  std::map<std::string, std::map<std::string, std::string>> data_;
};

/// Trim ASCII whitespace from both ends.
std::string trim(const std::string& s);

}  // namespace sickle
