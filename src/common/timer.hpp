// Wall-clock timing utilities used by the energy model and benchmarks.
#pragma once

#include <chrono>

namespace sickle {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const noexcept {
    return seconds() * 1e3;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace sickle
