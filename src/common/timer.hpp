// Wall-clock timing utilities used by the energy model and benchmarks.
#pragma once

#include <chrono>

namespace sickle {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const noexcept {
    return seconds() * 1e3;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// RAII stopwatch: accumulates elapsed seconds into a caller-owned double
/// on destruction. Replaces the hand-rolled now()-pair pattern around
/// staged work — declare one at the top of the timed scope:
///
///   double decode_seconds = 0.0;
///   { ScopedTimer t(decode_seconds); reader.load_snapshot(); }
///
/// Accumulates (`+=`) rather than assigns so one double can total many
/// scopes (e.g. per-snapshot ingest inside a loop).
class ScopedTimer {
 public:
  explicit ScopedTimer(double& out) noexcept : out_(&out) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { *out_ += timer_.seconds(); }

 private:
  Timer timer_;
  double* out_;
};

}  // namespace sickle
