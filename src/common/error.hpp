// SICKLE error-handling primitives.
//
// Invariant violations in library code are programming errors; we surface
// them with a checked macro that throws std::logic_error (tests assert on
// this) rather than aborting, so callers can recover in long-running jobs.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sickle {

/// Thrown when a SICKLE_CHECK precondition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown for runtime failures (I/O, malformed config, ...).
class RuntimeError : public std::runtime_error {
 public:
  explicit RuntimeError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "SICKLE_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace sickle

/// Precondition check. Active in all build types: sampler correctness
/// depends on these invariants and their cost is negligible next to the
/// numeric kernels they guard.
#define SICKLE_CHECK(expr)                                              \
  do {                                                                  \
    if (!(expr))                                                        \
      ::sickle::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define SICKLE_CHECK_MSG(expr, msg)                                     \
  do {                                                                  \
    if (!(expr))                                                        \
      ::sickle::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
