// Small math helpers shared across modules.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <span>

namespace sickle {

/// x*log(x/y) with the measure-theoretic conventions used by KL divergence:
/// 0*log(0/y) = 0; x*log(x/0) = +inf for x > 0.
inline double xlogx_over_y(double x, double y) noexcept {
  if (x <= 0.0) return 0.0;
  if (y <= 0.0) return std::numeric_limits<double>::infinity();
  return x * std::log(x / y);
}

inline double sqr(double x) noexcept { return x * x; }

/// Numerically stable mean (Neumaier compensated summation).
inline double mean(std::span<const double> v) noexcept {
  if (v.empty()) return 0.0;
  double sum = 0.0, c = 0.0;
  for (const double x : v) {
    const double t = sum + x;
    c += (std::abs(sum) >= std::abs(x)) ? (sum - t) + x : (x - t) + sum;
    sum = t;
  }
  return (sum + c) / static_cast<double>(v.size());
}

/// Sample variance (unbiased, n-1 denominator); 0 for n < 2.
inline double variance(std::span<const double> v) noexcept {
  const std::size_t n = v.size();
  if (n < 2) return 0.0;
  const double m = mean(v);
  double acc = 0.0;
  for (const double x : v) acc += sqr(x - m);
  return acc / static_cast<double>(n - 1);
}

inline double stddev(std::span<const double> v) noexcept {
  return std::sqrt(variance(v));
}

/// Minimum and maximum in one pass; returns {0,0} on empty input.
inline std::pair<double, double> min_max(std::span<const double> v) noexcept {
  if (v.empty()) return {0.0, 0.0};
  double lo = v[0], hi = v[0];
  for (const double x : v) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  return {lo, hi};
}

/// Clamp helper that reads naturally in sampling code.
inline std::size_t clamp_index(std::ptrdiff_t i, std::size_t n) noexcept {
  return static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(
      i, 0, static_cast<std::ptrdiff_t>(n) - 1));
}

/// True if |a-b| <= atol + rtol*max(|a|,|b|).
inline bool close(double a, double b, double rtol = 1e-9,
                  double atol = 1e-12) noexcept {
  return std::abs(a - b) <= atol + rtol * std::max(std::abs(a), std::abs(b));
}

/// Integer ceil-division.
constexpr std::size_t ceil_div(std::size_t a, std::size_t b) noexcept {
  return (a + b - 1) / b;
}

/// Next power of two >= n (n = 0 maps to 1).
constexpr std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

constexpr bool is_pow2(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

}  // namespace sickle
