// Deterministic counter-based random number generation.
//
// Every SICKLE experiment must be exactly reproducible from a single seed,
// including under rank-parallel decomposition. We therefore use a
// splitmix64-derived counter RNG: jumping to an arbitrary stream (e.g. one
// per rank, per hypercube, per training replicate) is O(1) and streams are
// statistically independent, unlike seeding std::mt19937 with small ints.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace sickle {

/// splitmix64 finalizer: bijective 64-bit mixing function.
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Counter-based deterministic RNG.
///
/// State is (seed, stream, counter). `next()` hashes the triple, so two Rng
/// objects with equal state produce identical sequences regardless of
/// construction history — the property the SPMD sampler relies on to make
/// rank-count-independent draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL,
               std::uint64_t stream = 0) noexcept
      : seed_(seed), stream_(stream) {}

  /// Derive an independent child stream (e.g. one per hypercube / rank).
  [[nodiscard]] Rng fork(std::uint64_t substream) const noexcept {
    return Rng(mix64(seed_ ^ mix64(substream + 0x1234'5678ULL)),
               mix64(stream_ + substream * 0x9e3779b97f4a7c15ULL));
  }

  std::uint64_t next() noexcept {
    // Two rounds of mixing decorrelate adjacent counters thoroughly.
    return mix64(mix64(seed_ ^ (counter_++ * 0xd1342543de82ef95ULL)) ^ stream_);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Unbiased integer in [0, n) via Lemire's method.
  std::uint64_t uniform_int(std::uint64_t n) noexcept {
    SICKLE_CHECK(n > 0);
    // 128-bit multiply rejection sampling (Lemire 2019).
    __uint128_t m = static_cast<__uint128_t>(next()) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box–Muller (no cached spare: keeps state minimal
  /// and counter-reproducible).
  double normal() noexcept {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> data) noexcept {
    for (std::size_t i = data.size(); i > 1; --i) {
      const std::size_t j = uniform_int(i);
      std::swap(data[i - 1], data[j]);
    }
  }

  /// Sample k distinct indices from [0, n) without replacement.
  /// Uses Floyd's algorithm: O(k) expected draws, order then shuffled.
  [[nodiscard]] std::vector<std::size_t> sample_without_replacement(
      std::size_t n, std::size_t k) {
    SICKLE_CHECK_MSG(k <= n, "cannot sample more items than population");
    std::vector<std::size_t> out;
    out.reserve(k);
    // Floyd's: for j in n-k..n-1, draw t in [0,j]; insert t if unseen else j.
    std::vector<bool> seen(n, false);
    for (std::size_t j = n - k; j < n; ++j) {
      std::size_t t = uniform_int(j + 1);
      if (seen[t]) t = j;
      seen[t] = true;
      out.push_back(t);
    }
    shuffle(std::span<std::size_t>(out));
    return out;
  }

  /// Weighted draw: index i with probability weights[i] / sum(weights).
  /// Weights must be non-negative with a positive sum.
  std::size_t weighted_index(std::span<const double> weights) {
    double total = 0.0;
    for (const double w : weights) {
      SICKLE_CHECK_MSG(w >= 0.0, "negative sampling weight");
      total += w;
    }
    SICKLE_CHECK_MSG(total > 0.0, "all sampling weights are zero");
    double r = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r < 0.0) return i;
    }
    return weights.size() - 1;  // numerical edge: r landed on total
  }

  std::uint64_t seed() const noexcept { return seed_; }
  std::uint64_t counter() const noexcept { return counter_; }

 private:
  std::uint64_t seed_;
  std::uint64_t stream_;
  std::uint64_t counter_ = 0;
};

}  // namespace sickle
