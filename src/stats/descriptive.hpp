/// @file descriptive.hpp
/// @brief Descriptive statistics: moments, quantiles, tail-coverage
/// metrics.
///
/// Tail coverage is the quantitative form of the paper's Fig. 5 claim —
/// "MaxEnt achieves the best match, especially in the tails".
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sickle::stats {

/// Summary of a sample: n, mean, std, min, max, skewness, excess kurtosis.
struct Moments {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double skewness = 0.0;
  double kurtosis = 0.0;  ///< excess kurtosis (normal -> 0)
};

[[nodiscard]] Moments compute_moments(std::span<const double> data);

/// q-quantile (0 <= q <= 1) with linear interpolation (numpy default).
[[nodiscard]] double quantile(std::span<const double> data, double q);

/// Several quantiles in one sort.
[[nodiscard]] std::vector<double> quantiles(std::span<const double> data,
                                            std::span<const double> qs);

/// Fraction of `sample` lying beyond the (1 - tail_q) and tail_q quantiles
/// of `reference` — i.e. how well the subsample covers the reference
/// distribution's tails. A perfect sampler reproduces 2 * tail_q.
[[nodiscard]] double tail_coverage(std::span<const double> reference,
                                   std::span<const double> sample,
                                   double tail_q = 0.01);

}  // namespace sickle::stats
