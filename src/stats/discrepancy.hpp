/// @file discrepancy.hpp
/// @brief Phase-space uniformity metrics.
///
/// Fig. 4 of the paper shows UIPS "clumping" in 3D anisotropic flows: the
/// selected samples stop covering phase space uniformly. We quantify that
/// with (a) a cell-occupancy clumping index and (b) nearest-neighbour
/// statistics, both standard spatial-uniformity diagnostics.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sickle::stats {

/// Coefficient of variation of cell occupancy after binning the points into
/// `bins_per_axis`^d cells over their bounding box. 0 for perfectly uniform
/// coverage; grows with clumping. Matches the eyeball test of Fig. 4.
[[nodiscard]] double clumping_index(std::span<const std::vector<double>> points,
                                    std::size_t bins_per_axis = 8);

/// Fraction of cells (same binning) that contain at least one point; 1.0
/// means full coverage of occupied phase space.
[[nodiscard]] double cell_coverage(std::span<const std::vector<double>> points,
                                   std::size_t bins_per_axis = 8);

/// Mean nearest-neighbour distance normalized by the expected value for a
/// uniform (Poisson) point process in the same bounding box — the
/// Clark–Evans index. ~1 uniform, <1 clustered, >1 over-dispersed.
/// O(n^2); intended for the <=1e4-point sample sets used in Fig. 4.
[[nodiscard]] double clark_evans_index(
    std::span<const std::vector<double>> points);

}  // namespace sickle::stats
