#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/mathx.hpp"

namespace sickle::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  SICKLE_CHECK_MSG(bins > 0, "histogram needs at least one bin");
  SICKLE_CHECK_MSG(hi > lo, "histogram range must be non-degenerate");
  width_ = (hi_ - lo_) / static_cast<double>(bins);
}

Histogram Histogram::fit(std::span<const double> data, std::size_t bins) {
  auto [lo, hi] = min_max(data);
  if (!(hi > lo)) {  // constant or empty data: synthesize a tiny range
    lo -= 0.5;
    hi += 0.5;
  }
  Histogram h(lo, hi, bins);
  h.add(data);
  return h;
}

std::size_t Histogram::bin_of(double x) const noexcept {
  // Truncation, not floor: they differ only for negative t, and
  // clamp_index sends every negative index to bin 0 either way. Skipping
  // floor matters because baseline x86-64 lowers std::floor to a libm
  // call (no roundsd before SSE4.1), which would dominate this kernel.
  const double t = (x - lo_) / width_;
  return clamp_index(static_cast<std::ptrdiff_t>(t), counts_.size());
}

double Histogram::center(std::size_t i) const noexcept {
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

void Histogram::add(double x) noexcept {
  ++counts_[bin_of(x)];
  ++total_;
}

void Histogram::add(std::span<const double> xs) noexcept {
  // Blockwise accumulate: the bin-index arithmetic is elementwise and
  // identical to bin_of (so results stay bit-identical to add(x) one at a
  // time) and vectorizes; only the counter scatter, whose lanes can
  // collide on one bin, stays scalar.
  // The vector loop stays all-double (sub + div only — no lane-width
  // changes, so it vectorizes even on 128-bit ISAs); the truncating
  // double->index conversion rides along in the scalar scatter, matching
  // bin_of exactly.
  constexpr std::size_t kBlock = 256;
  double fidx[kBlock];
  const std::size_t nbins = counts_.size();
  const double lo = lo_;
  const double width = width_;
  std::size_t i = 0;
  for (; i + kBlock <= xs.size(); i += kBlock) {
    const double* x = xs.data() + i;
#pragma omp simd
    for (std::size_t j = 0; j < kBlock; ++j) {
      fidx[j] = (x[j] - lo) / width;
    }
    for (std::size_t j = 0; j < kBlock; ++j) {
      ++counts_[clamp_index(static_cast<std::ptrdiff_t>(fidx[j]), nbins)];
    }
  }
  for (; i < xs.size(); ++i) ++counts_[bin_of(xs[i])];
  total_ += xs.size();
}

std::vector<double> Histogram::pmf() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ == 0) return out;
  const double inv = 1.0 / static_cast<double>(total_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = static_cast<double>(counts_[i]) * inv;
  }
  return out;
}

std::vector<double> Histogram::pdf() const {
  std::vector<double> out = pmf();
  const double inv_w = 1.0 / width_;
  for (double& p : out) p *= inv_w;
  return out;
}

HistogramND::HistogramND(std::vector<double> lo, std::vector<double> hi,
                         std::vector<std::size_t> bins)
    : lo_(std::move(lo)), hi_(std::move(hi)), bins_(std::move(bins)) {
  SICKLE_CHECK(lo_.size() == hi_.size() && lo_.size() == bins_.size());
  SICKLE_CHECK_MSG(!lo_.empty(), "HistogramND needs at least one dimension");
  width_.resize(lo_.size());
  strides_.resize(lo_.size());
  std::size_t cells = 1;
  for (std::size_t d = 0; d < lo_.size(); ++d) {
    SICKLE_CHECK(bins_[d] > 0 && hi_[d] > lo_[d]);
    width_[d] = (hi_[d] - lo_[d]) / static_cast<double>(bins_[d]);
    cell_volume_ *= width_[d];
  }
  // Row-major strides, first axis slowest.
  std::size_t s = 1;
  for (std::size_t d = lo_.size(); d-- > 0;) {
    strides_[d] = s;
    s *= bins_[d];
  }
  cells = s;
  SICKLE_CHECK_MSG(cells <= (1ULL << 28),
                   "HistogramND cell count too large; reduce bins or dims");
  counts_.assign(cells, 0);
}

HistogramND HistogramND::fit(std::span<const std::vector<double>> points,
                             std::size_t bins_per_axis) {
  SICKLE_CHECK_MSG(!points.empty(), "cannot fit histogram to empty data");
  const std::size_t dims = points.front().size();
  std::vector<double> lo(dims, 0.0), hi(dims, 0.0);
  for (std::size_t d = 0; d < dims; ++d) {
    lo[d] = hi[d] = points.front()[d];
  }
  for (const auto& p : points) {
    SICKLE_CHECK(p.size() == dims);
    for (std::size_t d = 0; d < dims; ++d) {
      lo[d] = std::min(lo[d], p[d]);
      hi[d] = std::max(hi[d], p[d]);
    }
  }
  for (std::size_t d = 0; d < dims; ++d) {
    if (!(hi[d] > lo[d])) {
      lo[d] -= 0.5;
      hi[d] += 0.5;
    }
  }
  HistogramND h(std::move(lo), std::move(hi),
                std::vector<std::size_t>(dims, bins_per_axis));
  for (const auto& p : points) h.add(p);
  return h;
}

std::size_t HistogramND::cell_of(std::span<const double> x) const noexcept {
  std::size_t idx = 0;
  for (std::size_t d = 0; d < lo_.size(); ++d) {
    const double t = (x[d] - lo_[d]) / width_[d];
    const auto i = static_cast<std::ptrdiff_t>(std::floor(t));
    idx += clamp_index(i, bins_[d]) * strides_[d];
  }
  return idx;
}

void HistogramND::add(std::span<const double> x) noexcept {
  ++counts_[cell_of(x)];
  ++total_;
}

std::vector<double> HistogramND::pmf() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ == 0) return out;
  const double inv = 1.0 / static_cast<double>(total_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = static_cast<double>(counts_[i]) * inv;
  }
  return out;
}

double HistogramND::density_at(std::span<const double> x) const noexcept {
  if (total_ == 0) return 0.0;
  const double mass = static_cast<double>(counts_[cell_of(x)]) /
                      static_cast<double>(total_);
  return mass / cell_volume_;
}

Kde1D::Kde1D(std::span<const double> data)
    : data_(data.begin(), data.end()) {
  SICKLE_CHECK_MSG(!data_.empty(), "KDE needs data");
  const double sd = stddev(std::span<const double>(data_));
  const double n = static_cast<double>(data_.size());
  // Silverman's rule of thumb; floor avoids a degenerate bandwidth for
  // (near-)constant data.
  h_ = std::max(1.06 * sd * std::pow(n, -0.2), 1e-12);
}

double Kde1D::operator()(double x) const noexcept {
  const double norm =
      1.0 / (static_cast<double>(data_.size()) * h_ *
             std::sqrt(2.0 * std::numbers::pi));
  double acc = 0.0;
  for (const double xi : data_) {
    const double u = (x - xi) / h_;
    acc += std::exp(-0.5 * u * u);
  }
  return acc * norm;
}

}  // namespace sickle::stats
