/// @file entropy.hpp
/// @brief Information-theoretic quantities at the heart of MaxEnt
/// sampling.
///
/// The paper (Eqs. 1–2) computes Kullback–Leibler divergences between
/// per-cluster distributions of a target variable, assembles them into an
/// adjacency matrix A_ij = KL(P(C_i) || P(C_j)), and reduces to
/// per-cluster "node strengths" (row sums) that weight the sampling draw.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sickle::stats {

/// Shannon entropy  H(p) = -sum p log p  (natural log, nats).
/// `p` must be a normalized PMF; zero entries contribute zero.
[[nodiscard]] double shannon_entropy(std::span<const double> p);

/// Kullback–Leibler divergence D(p||q) = sum p log(p/q) (Eq. 1).
/// Bins where q = 0 but p > 0 would be infinite; we regularize with a small
/// floor epsilon on q, matching the reference implementation's behaviour of
/// adding a tiny count to empty bins.
[[nodiscard]] double kl_divergence(std::span<const double> p,
                                   std::span<const double> q,
                                   double eps = 1e-12);

/// Jensen–Shannon divergence (symmetric, bounded by log 2).
[[nodiscard]] double js_divergence(std::span<const double> p,
                                   std::span<const double> q);

/// Pairwise KL adjacency matrix (Eq. 2): A[i*n + j] = KL(pmfs[i] || pmfs[j]).
/// Diagonal is zero.
[[nodiscard]] std::vector<double> kl_adjacency(
    std::span<const std::vector<double>> pmfs, double eps = 1e-12);

/// Node strengths: row sums of the adjacency matrix. High strength means a
/// cluster whose distribution diverges most from the others — the
/// information-rich regions MaxEnt concentrates samples in.
[[nodiscard]] std::vector<double> node_strengths(
    std::span<const double> adjacency, std::size_t n);

/// log(max(p, eps)) over a flat row-major [n x k] PMF matrix — the
/// precomputation that turns the O(n^2 k) KL adjacency inner loop into
/// pure multiply-adds (n*k logs total instead of n^2*k).
[[nodiscard]] std::vector<double> log_pmf_rows(std::span<const double> pmfs,
                                               std::size_t n, std::size_t k,
                                               double eps = 1e-12);

/// Node strength of one row: sum over j != i of KL(pmfs[i] || pmfs[j]),
/// computed blockwise from the logs produced by log_pmf_rows. O(n·k) per
/// row — kept as the reference kernel for the equivalence test against
/// the algebraic form below; production callers use kl_row_strength_fast.
[[nodiscard]] double kl_row_strength(std::span<const double> pmfs,
                                     std::span<const double> logs,
                                     std::size_t n, std::size_t k,
                                     std::size_t i);

/// Column log-sums S[b] = sum_i logs[i*k + b] over a flat row-major
/// [n x k] log matrix — the one-time O(n·k) reduction behind the
/// algebraic node-strength identity (see kl_row_strength_fast).
[[nodiscard]] std::vector<double> log_col_sums(std::span<const double> logs,
                                               std::size_t n, std::size_t k);

/// Algebraic O(k) node strength of one row:
///
///   sum_j KL(p_i || p_j) = Σ_b p_i[b]·(n·log p_i[b] − S[b]),
///   S[b] = Σ_j log p_j[b]
///
/// (the j = i term is exactly zero, so the unrestricted sum over j equals
/// the j != i row strength). With `col_sums` from log_col_sums this turns
/// the O(n²·k) all-rows reduction into O(n·k) total. Bins with p_i = 0
/// contribute exactly zero, matching kl_row_strength; the result differs
/// from the row kernel only by floating-point summation order. This is
/// the single per-row kernel shared by the serial, thread-parallel, and
/// SPMD selectors, so all of them produce bit-identical weights.
[[nodiscard]] double kl_row_strength_fast(std::span<const double> pmfs,
                                          std::span<const double> logs,
                                          std::span<const double> col_sums,
                                          std::size_t n, std::size_t k,
                                          std::size_t i);

/// Normalize a non-negative weight vector into a probability distribution.
/// All-zero input maps to the uniform distribution (the sampler's fallback
/// when clusters are indistinguishable).
[[nodiscard]] std::vector<double> normalize_weights(
    std::span<const double> weights);

}  // namespace sickle::stats
