#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/mathx.hpp"

namespace sickle::stats {

Moments compute_moments(std::span<const double> data) {
  Moments m;
  m.n = data.size();
  if (m.n == 0) return m;
  m.mean = mean(data);
  auto [lo, hi] = min_max(data);
  m.min = lo;
  m.max = hi;
  if (m.n < 2) return m;
  double m2 = 0.0, m3 = 0.0, m4 = 0.0;
  for (const double x : data) {
    const double d = x - m.mean;
    m2 += d * d;
    m3 += d * d * d;
    m4 += d * d * d * d;
  }
  const double n = static_cast<double>(m.n);
  m2 /= n;
  m3 /= n;
  m4 /= n;
  m.stddev = std::sqrt(m2 * n / (n - 1.0));
  if (m2 > 0.0) {
    m.skewness = m3 / std::pow(m2, 1.5);
    m.kurtosis = m4 / (m2 * m2) - 3.0;
  }
  return m;
}

double quantile(std::span<const double> data, double q) {
  SICKLE_CHECK_MSG(!data.empty(), "quantile of empty data");
  SICKLE_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile order out of [0,1]");
  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto i = static_cast<std::size_t>(std::floor(pos));
  const double frac = pos - static_cast<double>(i);
  if (i + 1 >= sorted.size()) return sorted.back();
  return sorted[i] * (1.0 - frac) + sorted[i + 1] * frac;
}

std::vector<double> quantiles(std::span<const double> data,
                              std::span<const double> qs) {
  SICKLE_CHECK_MSG(!data.empty(), "quantiles of empty data");
  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (const double q : qs) {
    SICKLE_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile order out of [0,1]");
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto i = static_cast<std::size_t>(std::floor(pos));
    const double frac = pos - static_cast<double>(i);
    out.push_back(i + 1 >= sorted.size()
                      ? sorted.back()
                      : sorted[i] * (1.0 - frac) + sorted[i + 1] * frac);
  }
  return out;
}

double tail_coverage(std::span<const double> reference,
                     std::span<const double> sample, double tail_q) {
  SICKLE_CHECK_MSG(tail_q > 0.0 && tail_q < 0.5, "tail_q must be in (0,0.5)");
  if (sample.empty()) return 0.0;
  const double lo = quantile(reference, tail_q);
  const double hi = quantile(reference, 1.0 - tail_q);
  std::size_t in_tail = 0;
  for (const double x : sample) {
    if (x < lo || x > hi) ++in_tail;
  }
  return static_cast<double>(in_tail) / static_cast<double>(sample.size());
}

}  // namespace sickle::stats
