/// @file histogram.hpp
/// @brief Binned density estimation (1D, ND, and a KDE cross-check).
///
/// The paper's PDF comparisons (Fig. 5) and the UIPS sampler both rely on
/// fixed-bin histograms ("PDF comparisons were binned using a fixed bin
/// size of 100 across all datasets"). Histogram supports 1D; HistogramND
/// supports the low-dimensional joint phase-space densities UIPS needs.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sickle::stats {

/// Fixed-range 1D histogram with `bins` equal-width bins on [lo, hi].
/// Out-of-range samples are clamped into the edge bins so that PDF mass is
/// conserved (matching numpy.histogram(range=...) + clip preprocessing).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  /// Build with data-driven range.
  static Histogram fit(std::span<const double> data, std::size_t bins = 100);

  void add(double x) noexcept;
  void add(std::span<const double> xs) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] const std::vector<std::size_t>& counts() const noexcept {
    return counts_;
  }

  /// Bin index for value x (clamped).
  [[nodiscard]] std::size_t bin_of(double x) const noexcept;
  /// Center of bin i.
  [[nodiscard]] double center(std::size_t i) const noexcept;
  [[nodiscard]] double bin_width() const noexcept { return width_; }

  /// Normalized probability mass per bin (sums to 1; empty hist -> zeros).
  [[nodiscard]] std::vector<double> pmf() const;
  /// Probability density (pmf / bin width).
  [[nodiscard]] std::vector<double> pdf() const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Dense N-dimensional histogram over a fixed per-axis range; used for
/// UIPS phase-space density estimates (typically 2–4 dims, ~10–32 bins per
/// axis).
class HistogramND {
 public:
  /// lo/hi/bins are per-axis.
  HistogramND(std::vector<double> lo, std::vector<double> hi,
              std::vector<std::size_t> bins);

  static HistogramND fit(std::span<const std::vector<double>> points,
                         std::size_t bins_per_axis);

  /// Add a point (size must equal dims()).
  void add(std::span<const double> x) noexcept;

  [[nodiscard]] std::size_t dims() const noexcept { return lo_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t cells() const noexcept { return counts_.size(); }
  [[nodiscard]] const std::vector<std::size_t>& counts() const noexcept {
    return counts_;
  }

  /// Flat cell index of a point.
  [[nodiscard]] std::size_t cell_of(std::span<const double> x) const noexcept;

  /// Probability mass per occupied cell (sums to 1).
  [[nodiscard]] std::vector<double> pmf() const;

  /// Estimated density at a point: pmf(cell)/cell_volume.
  [[nodiscard]] double density_at(std::span<const double> x) const noexcept;

 private:
  std::vector<double> lo_, hi_, width_;
  std::vector<std::size_t> bins_;
  std::vector<std::size_t> strides_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  double cell_volume_ = 1.0;
};

/// Gaussian kernel density estimate (Silverman bandwidth) — used to
/// cross-check binned PDFs in tests; O(n*m) evaluation.
class Kde1D {
 public:
  explicit Kde1D(std::span<const double> data);
  [[nodiscard]] double operator()(double x) const noexcept;
  [[nodiscard]] double bandwidth() const noexcept { return h_; }

 private:
  std::vector<double> data_;
  double h_;
};

}  // namespace sickle::stats
