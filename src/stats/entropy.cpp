#include "stats/entropy.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/mathx.hpp"

namespace sickle::stats {

double shannon_entropy(std::span<const double> p) {
  double h = 0.0;
  for (const double pi : p) {
    SICKLE_CHECK_MSG(pi >= 0.0, "PMF entries must be non-negative");
    if (pi > 0.0) h -= pi * std::log(pi);
  }
  return h;
}

double kl_divergence(std::span<const double> p, std::span<const double> q,
                     double eps) {
  SICKLE_CHECK_MSG(p.size() == q.size(), "KL inputs must have equal length");
  double d = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] <= 0.0) continue;
    d += p[i] * std::log(p[i] / std::max(q[i], eps));
  }
  return d;
}

double js_divergence(std::span<const double> p, std::span<const double> q) {
  SICKLE_CHECK_MSG(p.size() == q.size(), "JS inputs must have equal length");
  std::vector<double> m(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) m[i] = 0.5 * (p[i] + q[i]);
  return 0.5 * kl_divergence(p, m) + 0.5 * kl_divergence(q, m);
}

std::vector<double> kl_adjacency(std::span<const std::vector<double>> pmfs,
                                 double eps) {
  const std::size_t n = pmfs.size();
  std::vector<double> a(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      a[i * n + j] = kl_divergence(pmfs[i], pmfs[j], eps);
    }
  }
  return a;
}

std::vector<double> node_strengths(std::span<const double> adjacency,
                                   std::size_t n) {
  SICKLE_CHECK_MSG(adjacency.size() == n * n,
                   "adjacency must be n x n row-major");
  std::vector<double> s(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j) row += adjacency[i * n + j];
    s[i] = row;
  }
  return s;
}

std::vector<double> log_pmf_rows(std::span<const double> pmfs, std::size_t n,
                                 std::size_t k, double eps) {
  SICKLE_CHECK_MSG(pmfs.size() == n * k, "pmfs must be n x k row-major");
  std::vector<double> logs(n * k);
  for (std::size_t i = 0; i < n * k; ++i) {
    logs[i] = std::log(std::max(pmfs[i], eps));
  }
  return logs;
}

double kl_row_strength(std::span<const double> pmfs,
                       std::span<const double> logs, std::size_t n,
                       std::size_t k, std::size_t i) {
  SICKLE_CHECK_MSG(pmfs.size() == n * k && logs.size() == n * k && i < n,
                   "kl_row_strength: inconsistent inputs");
  const double* pi = pmfs.data() + i * k;
  const double* li = logs.data() + i * k;
  double row = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    if (j == i) continue;
    const double* lj = logs.data() + j * k;
    double d = 0.0;
    for (std::size_t b = 0; b < k; ++b) {
      // Bins with p_i = 0 contribute nothing; log(p_i) is then the floored
      // logs value, but it is never read. Non-zero PMF entries of proper
      // label histograms are >= 1/points >> eps, so li[b] == log(pi[b]).
      if (pi[b] > 0.0) d += pi[b] * (li[b] - lj[b]);
    }
    row += d;
  }
  return row;
}

std::vector<double> log_col_sums(std::span<const double> logs, std::size_t n,
                                 std::size_t k) {
  SICKLE_CHECK_MSG(logs.size() == n * k, "logs must be n x k row-major");
  std::vector<double> sums(k, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    const double* lj = logs.data() + j * k;
    for (std::size_t b = 0; b < k; ++b) sums[b] += lj[b];
  }
  return sums;
}

double kl_row_strength_fast(std::span<const double> pmfs,
                            std::span<const double> logs,
                            std::span<const double> col_sums, std::size_t n,
                            std::size_t k, std::size_t i) {
  SICKLE_CHECK_MSG(pmfs.size() == n * k && logs.size() == n * k &&
                       col_sums.size() == k && i < n,
                   "kl_row_strength_fast: inconsistent inputs");
  const double* pi = pmfs.data() + i * k;
  const double* li = logs.data() + i * k;
  const double nn = static_cast<double>(n);
  double row = 0.0;
  for (std::size_t b = 0; b < k; ++b) {
    // p_i = 0 bins contribute nothing in the row kernel; keep that exact
    // (li[b] is the floored eps log there and must never be scaled by n).
    if (pi[b] > 0.0) row += pi[b] * (nn * li[b] - col_sums[b]);
  }
  return row;
}

std::vector<double> normalize_weights(std::span<const double> weights) {
  double total = 0.0;
  for (const double w : weights) {
    SICKLE_CHECK_MSG(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  std::vector<double> out(weights.size());
  if (total <= 0.0) {
    // Indistinguishable clusters: fall back to uniform.
    const double u = weights.empty()
                         ? 0.0
                         : 1.0 / static_cast<double>(weights.size());
    std::fill(out.begin(), out.end(), u);
    return out;
  }
  for (std::size_t i = 0; i < weights.size(); ++i) out[i] = weights[i] / total;
  return out;
}

}  // namespace sickle::stats
