#include "stats/discrepancy.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/mathx.hpp"
#include "stats/histogram.hpp"

namespace sickle::stats {

namespace {

HistogramND bin_points(std::span<const std::vector<double>> points,
                       std::size_t bins_per_axis) {
  SICKLE_CHECK_MSG(!points.empty(), "uniformity metric needs points");
  return HistogramND::fit(points, bins_per_axis);
}

}  // namespace

double clumping_index(std::span<const std::vector<double>> points,
                      std::size_t bins_per_axis) {
  const HistogramND h = bin_points(points, bins_per_axis);
  const auto& counts = h.counts();
  std::vector<double> c(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    c[i] = static_cast<double>(counts[i]);
  }
  const double m = mean(std::span<const double>(c));
  if (m <= 0.0) return 0.0;
  return stddev(std::span<const double>(c)) / m;
}

double cell_coverage(std::span<const std::vector<double>> points,
                     std::size_t bins_per_axis) {
  const HistogramND h = bin_points(points, bins_per_axis);
  std::size_t occupied = 0;
  for (const std::size_t c : h.counts()) {
    if (c > 0) ++occupied;
  }
  return static_cast<double>(occupied) / static_cast<double>(h.cells());
}

double clark_evans_index(std::span<const std::vector<double>> points) {
  const std::size_t n = points.size();
  SICKLE_CHECK_MSG(n >= 2, "Clark–Evans index needs >= 2 points");
  const std::size_t d = points.front().size();
  SICKLE_CHECK_MSG(d >= 1 && d <= 3, "Clark–Evans supported for 1–3 dims");

  // Bounding-box volume for the Poisson reference density.
  std::vector<double> lo(points.front()), hi(points.front());
  for (const auto& p : points) {
    SICKLE_CHECK(p.size() == d);
    for (std::size_t k = 0; k < d; ++k) {
      lo[k] = std::min(lo[k], p[k]);
      hi[k] = std::max(hi[k], p[k]);
    }
  }
  double volume = 1.0;
  for (std::size_t k = 0; k < d; ++k) {
    volume *= std::max(hi[k] - lo[k], 1e-300);
  }
  const double density = static_cast<double>(n) / volume;

  // Mean nearest-neighbour distance (brute force).
  double sum_nn = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      double dist2 = 0.0;
      for (std::size_t k = 0; k < d; ++k) {
        dist2 += sqr(points[i][k] - points[j][k]);
      }
      best = std::min(best, dist2);
    }
    sum_nn += std::sqrt(best);
  }
  const double observed = sum_nn / static_cast<double>(n);

  // Expected NN distance for a homogeneous Poisson process:
  //   1D: 1/(2*rho);  2D: 1/(2*sqrt(rho));
  //   3D: Gamma(4/3) / (4/3*pi*rho)^(1/3) ~= 0.55396 / rho^(1/3).
  double expected = 0.0;
  switch (d) {
    case 1: expected = 1.0 / (2.0 * density); break;
    case 2: expected = 1.0 / (2.0 * std::sqrt(density)); break;
    default:
      expected = 0.55396 / std::cbrt(density);
      break;
  }
  return observed / expected;
}

}  // namespace sickle::stats
