// Spectral synthesis of 3D turbulence — the SST and GESTS substitutes.
//
// The paper's 3D datasets come from petabyte-scale DNS (stratified
// Taylor–Green ensembles; GESTS pseudo-spectral isotropic turbulence on
// Frontier). We synthesize statistically equivalent fields with the
// standard kinematic-simulation recipe:
//
//   1. white Gaussian noise per velocity component, FFT to spectral space
//      (Hermitian symmetry is inherited from the real input);
//   2. amplitude shaping to a von Kármán–Pao model spectrum
//        E(k) ~ (k/kp)^4 / (1 + (k/kp)^2)^(17/6) * exp(-2 (k/k_eta)^2);
//   3. divergence-free (solenoidal) projection  u_hat -= k (k.u_hat)/k^2;
//   4. inverse FFT; optional lognormal intermittency envelope.
//
// Stratification is modelled by (a) anisotropic spectrum shaping that
// suppresses vertical wavenumbers (pancake layering), (b) damping of the
// vertical velocity component, and (c) a density field with a mean stable
// gradient along gravity plus anisotropic fluctuations. Time evolution uses
// random-sweep phase rotation with viscous decay, preserving solenoidality.
// Pressure solves the exact spectral Poisson equation
//   lap p = -du_i/dx_j du_j/dx_i.
//
// Grid sizes are scaled down from the paper (DESIGN.md §2) but keep the
// anisotropic-vs-isotropic contrast that drives the paper's findings.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "field/field.hpp"
#include "flow/producer.hpp"

namespace sickle::flow {

struct SpectralTurbulenceParams {
  std::size_t nx = 64, ny = 64, nz = 32;  ///< must be powers of two
  std::size_t snapshots = 1;
  double rms_velocity = 1.0;   ///< target RMS of each velocity component
  double k_peak = 4.0;         ///< energy-containing wavenumber
  double k_eta = 16.0;         ///< dissipation cutoff wavenumber
  double anisotropy = 1.0;     ///< >1 suppresses vertical wavenumbers
  double vertical_damping = 1.0;  ///< multiplier on w (1 = none)
  double intermittency = 0.0;  ///< lognormal envelope sigma (0 = Gaussian)
  int gravity_axis = 2;        ///< 0=x, 1=y, 2=z
  bool with_density = false;   ///< add stably stratified rho
  double density_gradient = 1.0;  ///< mean d(rho)/d(gravity)
  bool with_pressure = true;   ///< spectral Poisson pressure
  double dt = 0.25;            ///< snapshot spacing
  double viscosity = 2e-3;     ///< decay rate nu*k^2 between snapshots
  double sweep_velocity = 0.5; ///< random-sweep advection magnitude
  /// Round every emitted value through IEEE-754 binary32, matching the
  /// native storage precision of the paper's solver dumps (BLASTNet-style
  /// collections ship single-precision). Values stay doubles, but the low
  /// 29 mantissa bits are zero — the structure bit-granular lossless
  /// codecs (gorilla) exploit. Default off: full double precision.
  bool native_f32 = false;
  std::uint64_t seed = 1;
};

/// Core generator: returns a Dataset whose snapshots carry u, v, w
/// (+ rho, + p as configured). Materializes SpectralTurbulenceProducer.
[[nodiscard]] field::Dataset generate_spectral_turbulence(
    const SpectralTurbulenceParams& p);

/// Snapshot-at-a-time spectral synthesis: the base solenoidal spectral
/// state and intermittency envelope are built once at construction (all
/// RNG draws happen there), then each next() realizes one time step —
/// phase sweep + viscous decay + inverse FFT — so producing a T-step
/// series holds O(one snapshot) of field data, never O(T). Yields
/// snapshots bit-identical to generate_spectral_turbulence.
class SpectralTurbulenceProducer final : public SnapshotProducer {
 public:
  explicit SpectralTurbulenceProducer(const SpectralTurbulenceParams& p);
  ~SpectralTurbulenceProducer() override;

  [[nodiscard]] std::size_t num_snapshots() const override;
  [[nodiscard]] std::optional<field::Snapshot> next() override;
  /// All RNG draws happen at construction; a step is a pure function of
  /// its index, so rewinding the step counter replays identical bits.
  void reset() override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// SST-P1F4-like stratified case (scaled: 64x64x32, 8 snapshots default).
/// Fields: u, v, w, rho, p, plus derived pv and eps.
struct StratifiedParams {
  std::size_t nx = 64, ny = 64, nz = 32;
  std::size_t snapshots = 8;
  double anisotropy = 4.0;
  double vertical_damping = 0.35;
  double intermittency = 0.6;
  std::uint64_t seed = 11;
};
[[nodiscard]] field::Dataset generate_stratified(const StratifiedParams& p);

/// Streaming twin of generate_stratified: spectral realization plus
/// per-snapshot pv/eps enrichment, one snapshot at a time.
class StratifiedProducer final : public SnapshotProducer {
 public:
  explicit StratifiedProducer(const StratifiedParams& p);

  [[nodiscard]] std::size_t num_snapshots() const override {
    return base_.num_snapshots();
  }
  [[nodiscard]] std::optional<field::Snapshot> next() override;
  void reset() override { base_.reset(); }  // enrichment is stateless

 private:
  SpectralTurbulenceProducer base_;
};

/// GESTS-like isotropic case (scaled: 64^3, 1 snapshot default).
/// Fields: u, v, w, p, plus derived enstrophy and eps.
struct IsotropicParams {
  std::size_t n = 64;
  std::size_t snapshots = 1;
  double intermittency = 0.25;  ///< mild: isotropic tails are lighter
  std::uint64_t seed = 13;
};
[[nodiscard]] field::Dataset generate_isotropic(const IsotropicParams& p);

/// Streaming twin of generate_isotropic: per-snapshot enstrophy/eps
/// enrichment over the spectral realization.
class IsotropicProducer final : public SnapshotProducer {
 public:
  explicit IsotropicProducer(const IsotropicParams& p);

  [[nodiscard]] std::size_t num_snapshots() const override {
    return base_.num_snapshots();
  }
  [[nodiscard]] std::optional<field::Snapshot> next() override;
  void reset() override { base_.reset(); }  // enrichment is stateless

 private:
  SpectralTurbulenceProducer base_;
};

/// Model energy spectrum used by the generator (exposed for tests).
[[nodiscard]] double von_karman_pao(double k, double k_peak, double k_eta);

}  // namespace sickle::flow
