// TC2D substitute: 2D turbulent premixed combustion progress variable.
//
// The paper's TC2D dataset (Hassanaly et al.) carries the progress variable
// C in [0, 1] and its filtered variance — a strongly bimodal distribution
// (unburnt ~0, burnt ~1) with a thin, wrinkled flame brush in between. UIPS
// was designed on exactly this structure, so the substitute reproduces it:
// a tanh flame front wrinkled by a multiscale sinusoid spectrum, with the
// subgrid variance peaking inside the brush.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "field/field.hpp"
#include "flow/producer.hpp"

namespace sickle::flow {

struct CombustionParams {
  std::size_t nx = 632;  ///< 632*632 ~ 400k points (Table 1)
  std::size_t ny = 632;
  double flame_thickness = 0.02;  ///< fraction of domain height
  std::size_t wrinkle_modes = 12;
  double wrinkle_amplitude = 0.08;
  std::uint64_t seed = 7;
};

/// Generate the single-snapshot TC2D dataset with fields "C" (progress
/// variable) and "Cvar" (filtered variance of C).
[[nodiscard]] field::Dataset generate_combustion(const CombustionParams& p);

/// Producer form of the (single-snapshot) TC2D generator.
class CombustionProducer final : public SnapshotProducer {
 public:
  explicit CombustionProducer(const CombustionParams& params)
      : params_(params) {}

  [[nodiscard]] std::size_t num_snapshots() const override { return 1; }
  [[nodiscard]] std::optional<field::Snapshot> next() override;
  void reset() override { produced_ = false; }

 private:
  CombustionParams params_;
  bool produced_ = false;
};

}  // namespace sickle::flow
