// OF2D substitute: 2D laminar flow over a cylinder with vortex shedding.
//
// The paper's OF2D case is an OpenFOAM DNS at Re = 1267 (10800 grid points,
// 100 snapshots, drag as the learning target). OpenFOAM is unavailable
// offline, so we synthesize the same statistical structure analytically:
// potential flow around the cylinder superposed with a von Kármán vortex
// street of Lamb–Oseen vortices advecting downstream, plus the periodic
// drag signal shedding produces. This preserves exactly what SICKLE
// consumes: a wake-dominated anisotropic (u, v, p, wz) field whose
// interesting samples concentrate in the wake, and a drag target correlated
// with the flowfield phase.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "field/field.hpp"
#include "flow/producer.hpp"

namespace sickle::flow {

struct CylinderWakeParams {
  std::size_t nx = 120;        ///< streamwise points (120*90 = 10800, Table 1)
  std::size_t ny = 90;         ///< cross-stream points
  std::size_t snapshots = 100;
  double reynolds = 1267.0;
  double u_infinity = 1.0;
  double radius = 0.5;
  double domain_x0 = -2.0;     ///< domain [x0, x1] x [-y1, y1]
  double domain_x1 = 10.0;
  double domain_y1 = 2.25;
  double strouhal = 0.21;      ///< shedding frequency St = f D / U
  double vortex_strength = 1.8;
  double noise = 0.005;        ///< measurement-like noise amplitude
  std::uint64_t seed = 42;
};

/// Generate the OF2D dataset: snapshots carry u, v, p, wz; per-snapshot
/// drag coefficient is stored in `drag` (the sample-single target).
struct CylinderWake {
  field::Dataset dataset{"OF2D"};
  std::vector<double> drag;    ///< one value per snapshot
  std::vector<double> times;
};

[[nodiscard]] CylinderWake generate_cylinder_wake(
    const CylinderWakeParams& params);

/// Snapshot-at-a-time wake synthesis. The measurement-noise RNG stream
/// advances with each produced snapshot, so producing in order yields the
/// same bits as generate_cylinder_wake (which materializes this producer).
/// Per-snapshot drag accumulates in scalar_target() as snapshots are
/// produced — the sample-single learning target.
class CylinderWakeProducer final : public SnapshotProducer {
 public:
  explicit CylinderWakeProducer(const CylinderWakeParams& params);

  [[nodiscard]] std::size_t num_snapshots() const override {
    return params_.snapshots;
  }
  [[nodiscard]] std::optional<field::Snapshot> next() override;
  /// Reseed the measurement-noise RNG and clear the accumulated targets:
  /// replaying from the start re-draws the identical noise stream.
  void reset() override {
    rng_ = Rng(params_.seed);
    produced_ = 0;
    drag_.clear();
    times_.clear();
  }
  [[nodiscard]] std::vector<double> scalar_target() const override {
    return drag_;
  }
  [[nodiscard]] const std::vector<double>& times() const noexcept {
    return times_;
  }

 private:
  CylinderWakeParams params_;
  Rng rng_;
  std::size_t produced_ = 0;
  std::vector<double> drag_;
  std::vector<double> times_;
};

}  // namespace sickle::flow
