#include "flow/spectral_turbulence.hpp"

#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "common/error.hpp"
#include "common/mathx.hpp"
#include "common/rng.hpp"
#include "fft/fft.hpp"
#include "field/derived.hpp"

namespace sickle::flow {

using fft::cplx;

double von_karman_pao(double k, double k_peak, double k_eta) {
  if (k <= 0.0) return 0.0;
  const double kr = k / k_peak;
  const double energy_range =
      (kr * kr * kr * kr) / std::pow(1.0 + kr * kr, 17.0 / 6.0);
  const double dissipation_range = std::exp(-2.0 * sqr(k / k_eta));
  return energy_range * dissipation_range;
}

namespace {

struct SpectralState {
  std::size_t nx, ny, nz;
  // Base (t = 0) solenoidal spectral velocity and density fields.
  std::vector<cplx> u_hat, v_hat, w_hat, rho_hat;
  // Random-sweep phase velocity per axis.
  double sweep[3] = {0.0, 0.0, 0.0};

  [[nodiscard]] std::size_t size() const noexcept { return nx * ny * nz; }
};

/// Shaped, solenoidal spectral noise for all three components at once.
SpectralState build_base_state(const SpectralTurbulenceParams& p, Rng& rng) {
  SpectralState st;
  st.nx = p.nx;
  st.ny = p.ny;
  st.nz = p.nz;
  const std::size_t n = st.size();

  // 1. White Gaussian noise per component, transformed to spectral space.
  auto noise_hat = [&](Rng stream_rng) {
    std::vector<cplx> hat(n);
    for (std::size_t i = 0; i < n; ++i) {
      hat[i] = cplx(stream_rng.normal(), 0.0);
    }
    fft::transform_3d(std::span<cplx>(hat), p.nx, p.ny, p.nz, false);
    return hat;
  };
  st.u_hat = noise_hat(rng.fork(1));
  st.v_hat = noise_hat(rng.fork(2));
  st.w_hat = noise_hat(rng.fork(3));
  if (p.with_density) st.rho_hat = noise_hat(rng.fork(4));

  // 2+3. Amplitude shaping and solenoidal projection.
  //
  // White noise has flat modal energy, so multiplying each mode by
  // sqrt(E(k)/(4 pi k^2)) yields the target shell-integrated spectrum up to
  // a global constant, which we fix afterwards by normalizing the physical
  // RMS. Anisotropy enters through an effective wavenumber that stretches
  // the gravity axis, pushing energy into flat "pancake" modes.
  const int g = p.gravity_axis;
  for (std::size_t ix = 0; ix < p.nx; ++ix) {
    const double kx = fft::wavenumber(ix, p.nx);
    for (std::size_t iy = 0; iy < p.ny; ++iy) {
      const double ky = fft::wavenumber(iy, p.ny);
      for (std::size_t iz = 0; iz < p.nz; ++iz) {
        const double kz = fft::wavenumber(iz, p.nz);
        const std::size_t idx = (ix * p.ny + iy) * p.nz + iz;
        const double kvec[3] = {kx, ky, kz};
        const double k2 = kx * kx + ky * ky + kz * kz;
        // Zero the mean mode and every Nyquist plane: Nyquist modes have
        // no well-defined sign for odd (derivative) operators, so keeping
        // them would break discrete solenoidality. Standard practice in
        // pseudo-spectral codes.
        const bool nyquist = (p.nx > 1 && ix == p.nx / 2) ||
                             (p.ny > 1 && iy == p.ny / 2) ||
                             (p.nz > 1 && iz == p.nz / 2);
        if (k2 <= 0.0 || nyquist) {
          st.u_hat[idx] = st.v_hat[idx] = st.w_hat[idx] = cplx(0, 0);
          if (p.with_density) st.rho_hat[idx] = cplx(0, 0);
          continue;
        }
        // Effective anisotropic wavenumber.
        double k_eff2 = 0.0;
        for (int a = 0; a < 3; ++a) {
          const double scale = (a == g) ? p.anisotropy : 1.0;
          k_eff2 += sqr(kvec[a] * scale);
        }
        const double k_eff = std::sqrt(k_eff2);
        const double amp =
            std::sqrt(von_karman_pao(k_eff, p.k_peak, p.k_eta) /
                      std::max(4.0 * std::numbers::pi * k_eff2, 1e-12));
        const cplx u = st.u_hat[idx] * amp;
        const cplx v = st.v_hat[idx] * amp;
        const cplx w = st.w_hat[idx] * amp;
        // Craya–Herring decomposition: write the mode in the orthonormal
        // basis {e1 = k x g_hat / |..| (toroidal, no gravity-axis motion),
        // e2 = k x e1 / |k| (poloidal, carries the vertical component)}.
        // Both are perpendicular to k, so any combination is exactly
        // solenoidal — this is how stratification damps vertical motion
        // without breaking incompressibility (naive scaling of w would).
        double ghat[3] = {0.0, 0.0, 0.0};
        ghat[g] = 1.0;
        double e1[3] = {kvec[1] * ghat[2] - kvec[2] * ghat[1],
                        kvec[2] * ghat[0] - kvec[0] * ghat[2],
                        kvec[0] * ghat[1] - kvec[1] * ghat[0]};
        const double e1n =
            std::sqrt(sqr(e1[0]) + sqr(e1[1]) + sqr(e1[2]));
        if (e1n < 1e-12) {
          // k parallel to gravity: pick any horizontal direction.
          e1[0] = (g == 0) ? 0.0 : 1.0;
          e1[1] = (g == 0) ? 1.0 : 0.0;
          e1[2] = 0.0;
        } else {
          for (double& c : e1) c /= e1n;
        }
        const double kn = std::sqrt(k2);
        const double e2[3] = {
            (kvec[1] * e1[2] - kvec[2] * e1[1]) / kn,
            (kvec[2] * e1[0] - kvec[0] * e1[2]) / kn,
            (kvec[0] * e1[1] - kvec[1] * e1[0]) / kn};
        const cplx n_dot_e1 = u * e1[0] + v * e1[1] + w * e1[2];
        const cplx n_dot_e2 = u * e2[0] + v * e2[1] + w * e2[2];
        const cplx a1 = n_dot_e1;
        const cplx a2 = n_dot_e2 * p.vertical_damping;
        st.u_hat[idx] = a1 * e1[0] + a2 * e2[0];
        st.v_hat[idx] = a1 * e1[1] + a2 * e2[1];
        st.w_hat[idx] = a1 * e1[2] + a2 * e2[2];
        if (p.with_density) {
          // Density fluctuations: same anisotropic shaping, no projection.
          st.rho_hat[idx] *= amp;
        }
      }
    }
  }

  Rng sweep_rng = rng.fork(5);
  for (double& s : st.sweep) {
    s = p.sweep_velocity * sweep_rng.normal();
  }
  return st;
}

/// Inverse-transform one component at time t (phase sweep + viscous decay).
std::vector<double> realize(const SpectralState& st,
                            const std::vector<cplx>& base, double t,
                            double viscosity) {
  const std::size_t n = st.size();
  std::vector<cplx> hat(n);
  for (std::size_t ix = 0; ix < st.nx; ++ix) {
    const double kx = fft::wavenumber(ix, st.nx);
    for (std::size_t iy = 0; iy < st.ny; ++iy) {
      const double ky = fft::wavenumber(iy, st.ny);
      for (std::size_t iz = 0; iz < st.nz; ++iz) {
        const double kz = fft::wavenumber(iz, st.nz);
        const std::size_t idx = (ix * st.ny + iy) * st.nz + iz;
        const double k2 = kx * kx + ky * ky + kz * kz;
        const double omega =
            kx * st.sweep[0] + ky * st.sweep[1] + kz * st.sweep[2];
        const double decay = std::exp(-viscosity * k2 * t);
        const double ph = -omega * t;
        hat[idx] = base[idx] * decay * cplx(std::cos(ph), std::sin(ph));
      }
    }
  }
  fft::transform_3d(std::span<cplx>(hat), st.nx, st.ny, st.nz, true);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = hat[i].real();
  return out;
}

/// Normalize a field to a target RMS (no-op when the field is zero).
void normalize_rms(std::vector<double>& f, double target) {
  double acc = 0.0;
  for (const double x : f) acc += x * x;
  const double rms = std::sqrt(acc / static_cast<double>(f.size()));
  if (rms <= 1e-300) return;
  const double s = target / rms;
  for (double& x : f) x *= s;
}

/// Smooth lognormal intermittency envelope: exp(sigma*G - sigma^2/2) with G
/// a large-scale Gaussian field, preserving the mean amplitude but adding
/// the heavy tails real turbulence dissipation exhibits.
std::vector<double> intermittency_envelope(std::size_t nx, std::size_t ny,
                                           std::size_t nz, double sigma,
                                           Rng rng) {
  const std::size_t n = nx * ny * nz;
  std::vector<cplx> hat(n);
  for (std::size_t i = 0; i < n; ++i) hat[i] = cplx(rng.normal(), 0.0);
  fft::transform_3d(std::span<cplx>(hat), nx, ny, nz, false);
  // Low-pass: keep only |k| <= 3 so the envelope is large-scale.
  for (std::size_t ix = 0; ix < nx; ++ix) {
    const double kx = fft::wavenumber(ix, nx);
    for (std::size_t iy = 0; iy < ny; ++iy) {
      const double ky = fft::wavenumber(iy, ny);
      for (std::size_t iz = 0; iz < nz; ++iz) {
        const double kz = fft::wavenumber(iz, nz);
        const double k = std::sqrt(kx * kx + ky * ky + kz * kz);
        hat[(ix * ny + iy) * nz + iz] *= std::exp(-sqr(k / 3.0));
      }
    }
  }
  fft::transform_3d(std::span<cplx>(hat), nx, ny, nz, true);
  std::vector<double> g(n);
  for (std::size_t i = 0; i < n; ++i) g[i] = hat[i].real();
  normalize_rms(g, 1.0);
  std::vector<double> env(n);
  for (std::size_t i = 0; i < n; ++i) {
    env[i] = std::exp(sigma * g[i] - 0.5 * sigma * sigma);
  }
  return env;
}

/// Pressure from the exact spectral Poisson equation
///   lap p = -du_i/dx_j du_j/dx_i.
std::vector<double> pressure_poisson(const field::Snapshot& snap) {
  const auto& s = snap.shape();
  const char* names[3] = {"u", "v", "w"};
  // grad[i][j] = du_i/dx_j
  std::vector<std::vector<double>> grad[3];
  for (int i = 0; i < 3; ++i) {
    grad[i].resize(3);
    for (int j = 0; j < 3; ++j) {
      grad[i][j] = fft::spectral_derivative_3d(snap.get(names[i]).data(),
                                               s.nx, s.ny, s.nz, j);
    }
  }
  std::vector<double> rhs(s.size(), 0.0);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      const auto& gij = grad[i][j];
      const auto& gji = grad[j][i];
      for (std::size_t m = 0; m < rhs.size(); ++m) rhs[m] -= gij[m] * gji[m];
    }
  }
  return fft::poisson_solve_3d(std::span<const double>(rhs), s.nx, s.ny,
                               s.nz);
}

}  // namespace

/// Everything one snapshot realization needs: the (immutable) base
/// spectral state, the envelope, and the production cursor. All RNG is
/// consumed at construction, so realizations are pure functions of the
/// step index and producing lazily is bit-identical to the batch loop.
struct SpectralTurbulenceProducer::Impl {
  SpectralTurbulenceParams params;
  SpectralState state;
  std::vector<double> envelope;
  std::size_t produced = 0;

  explicit Impl(const SpectralTurbulenceParams& p) : params(p) {
    SICKLE_CHECK_MSG(is_pow2(p.nx) && is_pow2(p.ny) && is_pow2(p.nz),
                     "spectral grid extents must be powers of two");
    SICKLE_CHECK(p.gravity_axis >= 0 && p.gravity_axis <= 2);
    Rng rng(p.seed);
    state = build_base_state(p, rng);
    if (p.intermittency > 0.0) {
      envelope = intermittency_envelope(p.nx, p.ny, p.nz, p.intermittency,
                                        rng.fork(6));
    }
  }

  [[nodiscard]] field::Snapshot realize_step(std::size_t ts) const {
    const auto& p = params;
    const auto& st = state;
    const field::GridShape shape{p.nx, p.ny, p.nz};
    const double t = static_cast<double>(ts) * p.dt;
    field::Snapshot snap(shape, t);

    auto u = realize(st, st.u_hat, t, p.viscosity);
    auto v = realize(st, st.v_hat, t, p.viscosity);
    auto w = realize(st, st.w_hat, t, p.viscosity);
    // One common scale for all components (separate per-component scaling
    // would break solenoidality): target the mean horizontal RMS.
    {
      double acc = 0.0;
      for (std::size_t i = 0; i < u.size(); ++i) {
        acc += 0.5 * (u[i] * u[i] + v[i] * v[i]);
      }
      const double rms_h = std::sqrt(acc / static_cast<double>(u.size()));
      if (rms_h > 1e-300) {
        const double s = p.rms_velocity / rms_h;
        for (std::size_t i = 0; i < u.size(); ++i) {
          u[i] *= s;
          v[i] *= s;
          w[i] *= s;
        }
      }
    }
    if (!envelope.empty()) {
      for (std::size_t i = 0; i < u.size(); ++i) {
        u[i] *= envelope[i];
        v[i] *= envelope[i];
        w[i] *= envelope[i];
      }
    }
    snap.add("u", std::move(u));
    snap.add("v", std::move(v));
    snap.add("w", std::move(w));

    if (p.with_density) {
      auto rho = realize(st, st.rho_hat, t, p.viscosity);
      normalize_rms(rho, 0.1);
      if (!envelope.empty()) {
        for (std::size_t i = 0; i < rho.size(); ++i) rho[i] *= envelope[i];
      }
      // Stable background gradient along gravity.
      const std::size_t ng = (p.gravity_axis == 0)   ? p.nx
                             : (p.gravity_axis == 1) ? p.ny
                                                     : p.nz;
      for (std::size_t ix = 0; ix < p.nx; ++ix) {
        for (std::size_t iy = 0; iy < p.ny; ++iy) {
          for (std::size_t iz = 0; iz < p.nz; ++iz) {
            const std::size_t ig = (p.gravity_axis == 0)   ? ix
                                   : (p.gravity_axis == 1) ? iy
                                                           : iz;
            rho[shape.index(ix, iy, iz)] +=
                p.density_gradient * static_cast<double>(ig) /
                static_cast<double>(ng);
          }
        }
      }
      snap.add("rho", std::move(rho));
    }

    if (p.with_pressure) {
      snap.add("p", pressure_poisson(snap));
    }
    if (p.native_f32) {
      for (const auto& name : snap.names()) {
        for (double& x : snap.get(name).data()) {
          x = static_cast<double>(static_cast<float>(x));
        }
      }
    }
    return snap;
  }
};

SpectralTurbulenceProducer::SpectralTurbulenceProducer(
    const SpectralTurbulenceParams& p)
    : impl_(std::make_unique<Impl>(p)) {}

SpectralTurbulenceProducer::~SpectralTurbulenceProducer() = default;

std::size_t SpectralTurbulenceProducer::num_snapshots() const {
  return impl_->params.snapshots;
}

std::optional<field::Snapshot> SpectralTurbulenceProducer::next() {
  if (impl_->produced >= impl_->params.snapshots) return std::nullopt;
  return impl_->realize_step(impl_->produced++);
}

void SpectralTurbulenceProducer::reset() { impl_->produced = 0; }

field::Dataset generate_spectral_turbulence(
    const SpectralTurbulenceParams& p) {
  SpectralTurbulenceProducer producer(p);
  return materialize(producer, "spectral");
}

namespace {

SpectralTurbulenceParams stratified_spectral_params(
    const StratifiedParams& p) {
  SpectralTurbulenceParams sp;
  sp.nx = p.nx;
  sp.ny = p.ny;
  sp.nz = p.nz;
  sp.snapshots = p.snapshots;
  sp.anisotropy = p.anisotropy;
  sp.vertical_damping = p.vertical_damping;
  sp.intermittency = p.intermittency;
  sp.gravity_axis = 2;
  sp.with_density = true;
  sp.with_pressure = true;
  sp.seed = p.seed;
  return sp;
}

SpectralTurbulenceParams isotropic_spectral_params(const IsotropicParams& p) {
  SpectralTurbulenceParams sp;
  sp.nx = sp.ny = sp.nz = p.n;
  sp.snapshots = p.snapshots;
  sp.anisotropy = 1.0;
  sp.vertical_damping = 1.0;
  sp.intermittency = p.intermittency;
  sp.with_density = false;
  sp.with_pressure = true;
  sp.seed = p.seed;
  return sp;
}

}  // namespace

StratifiedProducer::StratifiedProducer(const StratifiedParams& p)
    : base_(stratified_spectral_params(p)) {}

std::optional<field::Snapshot> StratifiedProducer::next() {
  auto snap = base_.next();
  if (!snap) return std::nullopt;
  field::add_potential_vorticity_3d(*snap);
  field::add_dissipation_3d(*snap);
  return snap;
}

field::Dataset generate_stratified(const StratifiedParams& p) {
  StratifiedProducer producer(p);
  return materialize(producer, "SST");
}

IsotropicProducer::IsotropicProducer(const IsotropicParams& p)
    : base_(isotropic_spectral_params(p)) {}

std::optional<field::Snapshot> IsotropicProducer::next() {
  auto snap = base_.next();
  if (!snap) return std::nullopt;
  field::add_enstrophy_3d(*snap);
  field::add_dissipation_3d(*snap);
  return snap;
}

field::Dataset generate_isotropic(const IsotropicParams& p) {
  IsotropicProducer producer(p);
  return materialize(producer, "GESTS");
}

}  // namespace sickle::flow
