#include "flow/cylinder.hpp"

#include <cmath>
#include <numbers>

#include "common/mathx.hpp"
#include "field/derived.hpp"

namespace sickle::flow {

namespace {

constexpr double kPi = std::numbers::pi;

/// Velocity induced at (x, y) by a Lamb–Oseen vortex of circulation gamma
/// at (xv, yv) with core radius rc.
void lamb_oseen(double x, double y, double xv, double yv, double gamma,
                double rc, double& du, double& dv) {
  const double dx = x - xv;
  const double dy = y - yv;
  const double r2 = dx * dx + dy * dy;
  if (r2 < 1e-12) {
    du = dv = 0.0;
    return;
  }
  const double factor =
      gamma / (2.0 * kPi * r2) * (1.0 - std::exp(-r2 / (rc * rc)));
  du = -factor * dy;
  dv = factor * dx;
}

}  // namespace

CylinderWakeProducer::CylinderWakeProducer(const CylinderWakeParams& params)
    : params_(params), rng_(params.seed) {
  drag_.reserve(params.snapshots);
  times_.reserve(params.snapshots);
}

std::optional<field::Snapshot> CylinderWakeProducer::next() {
  if (produced_ >= params_.snapshots) return std::nullopt;
  const CylinderWakeParams& p = params_;
  Rng& rng = rng_;

  const field::GridShape shape{p.nx, p.ny, 1};
  const double diameter = 2.0 * p.radius;
  const double shed_freq = p.strouhal * p.u_infinity / diameter;
  const double period = 1.0 / shed_freq;
  // Street geometry (von Kármán): stable spacing ratio h/l ~ 0.281.
  const double street_l = p.u_infinity * 0.8 / shed_freq;  // streamwise gap
  const double street_h = 0.281 * street_l;                // lateral offset
  const double core = 0.35 * diameter;
  const double dt = period / 8.0;  // 8 snapshots per shedding cycle

  const double dx = (p.domain_x1 - p.domain_x0) / static_cast<double>(p.nx - 1);
  const double dy = 2.0 * p.domain_y1 / static_cast<double>(p.ny - 1);

  const std::size_t ts = produced_++;
  const double t = static_cast<double>(ts) * dt;
  field::Snapshot snap(shape, t);
  auto& fu = snap.add("u");
  auto& fv = snap.add("v");
  auto& fp = snap.add("p");

  // Positions of street vortices at time t. Vortices are born at the
  // cylinder every half period with alternating sign and advect at
  // 0.8 U_inf; we keep the trailing ~24 so the whole domain is populated.
  struct Vortex {
    double x, y, gamma;
  };
  std::vector<Vortex> vortices;
  const double conv = 0.8 * p.u_infinity;
  for (int m = 0; m < 24; ++m) {
    // m-th most recent shed vortex; alternate top/bottom.
    const double age =
        std::fmod(t, period / 2.0) + static_cast<double>(m) * period / 2.0;
    const bool top = (static_cast<int>(std::floor(t / (period / 2.0))) - m) %
                         2 ==
                     0;
    Vortex v;
    v.x = p.radius + conv * age;
    v.y = top ? street_h / 2.0 : -street_h / 2.0;
    v.gamma = (top ? -1.0 : 1.0) * p.vortex_strength;
    if (v.x <= p.domain_x1 + street_l) vortices.push_back(v);
  }

  for (std::size_t ix = 0; ix < p.nx; ++ix) {
    const double x = p.domain_x0 + static_cast<double>(ix) * dx;
    for (std::size_t iy = 0; iy < p.ny; ++iy) {
      const double y = -p.domain_y1 + static_cast<double>(iy) * dy;
      const double r2 = x * x + y * y;
      double u, v;
      if (r2 <= sqr(p.radius)) {
        // Inside the body: no-slip solid, stagnation pressure.
        u = 0.0;
        v = 0.0;
        fp.at(ix, iy) = 0.5 * sqr(p.u_infinity);
      } else {
        // Potential flow around the cylinder (doublet + uniform stream).
        const double a2r2 = sqr(p.radius) / r2;
        const double x2y2 = (x * x - y * y) / r2;
        u = p.u_infinity * (1.0 - a2r2 * x2y2);
        v = -p.u_infinity * a2r2 * (2.0 * x * y / r2);
        // Wake vortices only act downstream of the body's shadow.
        for (const auto& vx : vortices) {
          double du = 0.0, dv = 0.0;
          lamb_oseen(x, y, vx.x, vx.y, vx.gamma, core, du, dv);
          // Taper vortex influence near/inside the cylinder region.
          const double shield =
              1.0 - std::exp(-std::max(0.0, r2 - sqr(p.radius)) /
                             sqr(diameter));
          u += shield * du;
          v += shield * dv;
        }
        u += p.noise * rng.normal();
        v += p.noise * rng.normal();
        // Bernoulli pressure (rho = 1, p_inf = 0 gauge).
        fp.at(ix, iy) =
            0.5 * (sqr(p.u_infinity) - (u * u + v * v)) +
            p.noise * rng.normal();
      }
      fu.at(ix, iy) = u;
      fv.at(ix, iy) = v;
    }
  }
  field::add_vorticity_2d(snap);

  // Drag signal: mean Cd for a cylinder near this Re plus the shedding
  // oscillation at 2f (drag oscillates at twice the lift frequency) and a
  // weaker component at f, with measurement noise.
  const double cd_mean = 1.0;
  const double cd = cd_mean +
                    0.10 * std::cos(2.0 * kPi * 2.0 * shed_freq * t) +
                    0.03 * std::sin(2.0 * kPi * shed_freq * t + 0.7) +
                    p.noise * rng.normal();
  drag_.push_back(cd);
  times_.push_back(t);
  return snap;
}

CylinderWake generate_cylinder_wake(const CylinderWakeParams& p) {
  CylinderWakeProducer producer(p);
  CylinderWake out;
  out.dataset = materialize(producer, "OF2D");
  out.drag = producer.scalar_target();
  out.times = producer.times();
  return out;
}

}  // namespace sickle::flow
