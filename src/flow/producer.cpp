#include "flow/producer.hpp"

namespace sickle::flow {

field::Dataset materialize(SnapshotProducer& producer, std::string name) {
  field::Dataset ds(std::move(name));
  while (auto snap = producer.next()) {
    ds.push(std::move(*snap));
  }
  return ds;
}

}  // namespace sickle::flow
