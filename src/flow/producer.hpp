/// @file producer.hpp
/// @brief Snapshot-at-a-time producer interface for out-of-core ingest.
///
/// The flow generators originally returned a fully materialized
/// field::Dataset, which caps the largest curatable case at generation-side
/// RAM even though selection/sampling already stream. SnapshotProducer is
/// the slab-at-a-time contract that closes that gap: a producer yields one
/// field::Snapshot per next() call, so the case orchestrator can run
/// simulate -> encode -> SeriesWriter::append -> drop and never hold more
/// than one snapshot, no matter how long the series. Every generator-backed
/// producer yields snapshots bit-identical to the batch generate_* function
/// it mirrors (test-asserted), so streaming and materialized ingest produce
/// identical stores, sample sets, and training tensors.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "field/field.hpp"

namespace sickle::flow {

/// Thrown by SnapshotProducer::reset() when a generator genuinely cannot
/// rewind (e.g. a producer draining an external one-shot stream). Every
/// in-tree generator CAN rewind — their state is a seed plus counters —
/// so this exists as the documented escape hatch of the reset() contract,
/// not as a common case.
class CloneError : public RuntimeError {
 public:
  explicit CloneError(const std::string& what) : RuntimeError(what) {}
};

/// Pull-based snapshot generator: one field snapshot per next() call.
///
/// Producers are stateful (simulation state, RNG streams advance with
/// each snapshot); call next() until it returns nullopt. num_snapshots()
/// is known up front so consumers can size indexes and progress reporting
/// without buffering the series.
///
/// The reset() contract: after reset(), the producer yields the exact
/// same snapshot sequence again from the start — the session layer uses
/// it so a rejected or cancelled submission does not leave a
/// half-consumed producer behind. Producers that cannot rewind throw
/// flow::CloneError instead (the base-class default); all in-tree
/// generators override it with a real rewind.
class SnapshotProducer {
 public:
  virtual ~SnapshotProducer() = default;

  /// Total snapshots this producer will yield.
  [[nodiscard]] virtual std::size_t num_snapshots() const = 0;

  /// Simulate and return the next snapshot; nullopt after the last.
  [[nodiscard]] virtual std::optional<field::Snapshot> next() = 0;

  /// Rewind to the initial state so next() replays the identical
  /// sequence. Throws flow::CloneError when this generator cannot rewind.
  virtual void reset() {
    throw CloneError("this SnapshotProducer cannot rewind");
  }

  /// Per-snapshot scalar targets (e.g. OF2D drag) accumulated for the
  /// snapshots produced so far; empty for field-to-field problems.
  [[nodiscard]] virtual std::vector<double> scalar_target() const {
    return {};
  }
};

/// Drain `producer` into an in-memory Dataset named `name` — the
/// materialized-ingest path and the compatibility bridge for the batch
/// generate_* functions.
[[nodiscard]] field::Dataset materialize(SnapshotProducer& producer,
                                         std::string name);

/// Replay an existing in-memory Dataset one snapshot at a time (copies) —
/// glue for tests and for streaming-ingest code paths fed from RAM.
class DatasetProducer final : public SnapshotProducer {
 public:
  /// The dataset must outlive the producer.
  explicit DatasetProducer(const field::Dataset& data) noexcept
      : data_(&data) {}

  [[nodiscard]] std::size_t num_snapshots() const override {
    return data_->num_snapshots();
  }

  [[nodiscard]] std::optional<field::Snapshot> next() override {
    if (next_ >= data_->num_snapshots()) return std::nullopt;
    return data_->snapshot(next_++);
  }

  void reset() override { next_ = 0; }

 private:
  const field::Dataset* data_;
  std::size_t next_ = 0;
};

}  // namespace sickle::flow
