#include "flow/combustion.hpp"

#include <cmath>
#include <numbers>

#include "common/mathx.hpp"

namespace sickle::flow {

std::optional<field::Snapshot> CombustionProducer::next() {
  if (produced_) return std::nullopt;
  produced_ = true;
  const CombustionParams& p = params_;
  Rng rng(p.seed);

  const field::GridShape shape{p.nx, p.ny, 1};
  field::Snapshot snap(shape, 0.0);
  auto& c_field = snap.add("C");
  auto& v_field = snap.add("Cvar");

  // Wrinkled front: y0(x) = 0.5 + sum_m A_m sin(2 pi m x + phi_m), with a
  // k^-2 amplitude roll-off so large scales dominate (flame-surface
  // spectra are steep).
  std::vector<double> amp(p.wrinkle_modes), phase(p.wrinkle_modes);
  for (std::size_t m = 0; m < p.wrinkle_modes; ++m) {
    const double k = static_cast<double>(m + 1);
    amp[m] = p.wrinkle_amplitude / (k * k) * rng.normal(1.0, 0.25);
    phase[m] = rng.uniform(0.0, 2.0 * std::numbers::pi);
  }

  const double delta = p.flame_thickness;
  for (std::size_t ix = 0; ix < p.nx; ++ix) {
    const double x = static_cast<double>(ix) / static_cast<double>(p.nx);
    double y0 = 0.5;
    for (std::size_t m = 0; m < p.wrinkle_modes; ++m) {
      y0 += amp[m] *
            std::sin(2.0 * std::numbers::pi * static_cast<double>(m + 1) * x +
                     phase[m]);
    }
    for (std::size_t iy = 0; iy < p.ny; ++iy) {
      const double y = static_cast<double>(iy) / static_cast<double>(p.ny);
      // Progress variable: 0 unburnt below the front, 1 burnt above.
      const double c =
          0.5 * (1.0 + std::tanh((y - y0) / delta)) +
          0.01 * rng.normal();
      const double cc = std::clamp(c, 0.0, 1.0);
      c_field.at(ix, iy) = cc;
      // Filtered variance peaks inside the flame brush: ~ C(1-C) scaled,
      // plus weak noise so the variance PDF has tails.
      v_field.at(ix, iy) =
          std::max(0.0, 0.25 * cc * (1.0 - cc) + 0.002 * rng.normal());
    }
  }
  return snap;
}

field::Dataset generate_combustion(const CombustionParams& p) {
  CombustionProducer producer(p);
  return materialize(producer, "TC2D");
}

}  // namespace sickle::flow
