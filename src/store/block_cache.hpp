/// @file block_cache.hpp
/// @brief Sharded byte-bounded LRU block cache + pread(2) file access,
/// shared by the SKL2 ChunkReader and the SKL3 SeriesReader.
///
/// The cache maps a 64-bit block key to the decoded values of one chunk.
/// It is split into power-of-two shards (each with its own mutex, LRU
/// list, and an equal slice of the byte budget), so any number of threads
/// may call get() concurrently and workers streaming different chunks
/// rarely contend. Loads (I/O + decode) run outside the shard lock; a
/// rare concurrent same-key miss loads twice and the first insert wins.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace sickle::store {

/// Aggregated cache counters (see BlockCache::stats).
struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;
  std::size_t resident_bytes = 0;
  /// Async readahead accounting (SeriesReader prefetch): blocks decoded
  /// ahead of demand and offered via insert_prefetched, demand hits
  /// served by such a block, and prefetched blocks evicted before any
  /// demand hit (decode work thrown away). issued - hits - wasted =
  /// prefetched blocks still resident (or raced by a demand load).
  std::size_t prefetch_issued = 0;
  std::size_t prefetch_hits = 0;
  std::size_t prefetch_wasted = 0;
};

/// Thread-safe sharded LRU cache of decoded chunk blocks.
class BlockCache {
 public:
  /// `shards` = 0 picks a shard count automatically from the
  /// cache-to-chunk ratio: 1 for caches only a few chunks deep
  /// (preserving strict global LRU behavior), up to 16 as the budget
  /// grows. Explicit values round up to the next power of two (capped at
  /// 256). `chunk_bytes_hint` is the decoded size of a typical block.
  BlockCache(std::size_t cache_bytes, std::size_t chunk_bytes_hint,
             std::size_t shards = 0);

  /// Publishes the final hit/miss/eviction tallies onto the global
  /// metrics registry (`store.cache.*`) when observability is enabled.
  ~BlockCache();

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  using Block = std::shared_ptr<const std::vector<double>>;

  /// Return the cached block for `key`, or call `load` (unlocked) and
  /// insert the result. Eviction is strict per shard: resident bytes
  /// never exceed the budget, all the way down to retaining nothing when
  /// a single block exceeds a shard's slice (callers hold the returned
  /// shared_ptr, so nothing dangles). Templated over the loader so the
  /// cache-hit path stays allocation-free — chunk() sits on the gather
  /// hot path, and a std::function would heap-allocate per call.
  ///
  /// The optional `frontier` out-param is set true when this get advanced
  /// the demand frontier — a miss, or the first demand hit on a block that
  /// arrived via insert_prefetched — the signal readers use to schedule
  /// further readahead (hits on already-demanded blocks set it false, so
  /// revisits never re-issue prefetch).
  template <typename Load>
  [[nodiscard]] Block get(std::uint64_t key, Load&& load,
                          bool* frontier = nullptr) const {
    Shard& shard = shards_[key & (shard_count_ - 1)];
    {
      std::lock_guard lock(shard.mu);
      if (const auto it = shard.map.find(key); it != shard.map.end()) {
        ++shard.stats.hits;
        if (it->second.prefetched) {
          it->second.prefetched = false;
          ++shard.stats.prefetch_hits;
          if (frontier) *frontier = true;
        } else if (frontier) {
          *frontier = false;
        }
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
        return it->second.values;
      }
      ++shard.stats.misses;
    }
    if (frontier) *frontier = true;
    // I/O and decode run unlocked so same-shard workers stay parallel on
    // misses; two threads may load the same block concurrently, and
    // insert() keeps the first one.
    return insert(shard, key, load());
  }

  /// Offer a block decoded ahead of demand (async readahead). Tagged so
  /// the first demand get() counts a prefetch hit and eviction before any
  /// hit counts it wasted. A block already resident is left untouched
  /// (the demand load won the race; its LRU position is not refreshed).
  void insert_prefetched(std::uint64_t key, Block values) const;

  /// True when `key` is resident right now — an advisory check prefetch
  /// schedulers use to skip already-cached blocks (racy by nature: the
  /// answer can be stale by the time the caller acts on it).
  [[nodiscard]] bool contains(std::uint64_t key) const;

  /// Aggregated over all shards (locks each shard briefly).
  [[nodiscard]] CacheStats stats() const;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shard_count_;
  }

 private:
  struct Entry {
    Block values;
    std::list<std::uint64_t>::iterator lru_it;
    /// Arrived via insert_prefetched and not yet demanded — cleared by the
    /// first demand get() (prefetch hit); still set at eviction = wasted.
    bool prefetched = false;
  };
  /// One cache shard: independent mutex, LRU list, map, stats, and an
  /// equal slice of the byte budget. Shard choice is a mask over the
  /// block key, so consecutive chunk ids land on different shards.
  struct Shard {
    mutable std::mutex mu;
    std::list<std::uint64_t> lru;  ///< front = most recently used
    std::unordered_map<std::uint64_t, Entry> map;
    CacheStats stats;
  };

  /// Insert a freshly loaded block (first insert wins on a concurrent
  /// same-key miss) and evict down to the shard budget.
  [[nodiscard]] Block insert(Shard& shard, std::uint64_t key,
                             Block values) const;
  /// Evict LRU entries until the shard fits its byte budget (caller holds
  /// the shard lock); prefetched-and-never-hit victims count as wasted.
  void evict_to_budget(Shard& shard) const;

  std::size_t shard_count_ = 1;
  std::size_t shard_capacity_ = 0;  ///< byte budget per shard
  std::unique_ptr<Shard[]> shards_;
};

/// Read-only file with positional reads: pread(2) carries no shared seek
/// state, so concurrent readers never serialize on the descriptor.
class ReadOnlyFile {
 public:
  /// Opens O_RDONLY; throws RuntimeError when the file cannot be opened.
  explicit ReadOnlyFile(const std::string& path);

  /// Publishes the lifetime bytes_read() tally onto the global metrics
  /// registry (`store.io.bytes_read`) when observability is enabled.
  ~ReadOnlyFile();

  ReadOnlyFile(const ReadOnlyFile&) = delete;
  ReadOnlyFile& operator=(const ReadOnlyFile&) = delete;

  /// Read exactly `bytes` at `offset`; throws RuntimeError on short reads
  /// (a truncated container) or I/O errors.
  [[nodiscard]] std::vector<std::uint8_t> read(std::uint64_t offset,
                                               std::uint64_t bytes) const;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Total bytes fetched through read() over the file's lifetime — the
  /// I/O accounting behind "selection scans the payload once" assertions.
  [[nodiscard]] std::uint64_t bytes_read() const noexcept {
    return bytes_read_.load(std::memory_order_relaxed);
  }

 private:
  std::string path_;
  int fd_ = -1;
  mutable std::atomic<std::uint64_t> bytes_read_{0};
};

}  // namespace sickle::store
