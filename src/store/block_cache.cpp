#include "store/block_cache.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sickle::store {

namespace {

/// Shard count for a cache: single shard while the budget holds only a
/// few chunks (strict global LRU, the pre-sharding behavior), doubling up
/// to 16 once every shard can still hold several chunks of its own.
std::size_t auto_shard_count(std::size_t cache_bytes,
                             std::size_t chunk_bytes) {
  std::size_t s = 1;
  while (s < 16 && cache_bytes / (2 * s) >= 4 * chunk_bytes) s *= 2;
  return s;
}

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p *= 2;
  return p;
}

}  // namespace

BlockCache::BlockCache(std::size_t cache_bytes, std::size_t chunk_bytes_hint,
                       std::size_t shards) {
  // Clamp before rounding: round_up_pow2 would loop forever past 2^63.
  shard_count_ =
      shards == 0
          ? auto_shard_count(cache_bytes,
                             std::max<std::size_t>(chunk_bytes_hint, 1))
          : round_up_pow2(std::min<std::size_t>(shards, 256));
  shard_capacity_ = std::max<std::size_t>(cache_bytes / shard_count_, 1);
  shards_ = std::make_unique<Shard[]>(shard_count_);
}

BlockCache::~BlockCache() {
  // Readers come and go per stage; the registry accumulates their cache
  // behavior across the whole run (ROADMAP D2's exported hit rates).
  if (!obs::enabled()) return;
  const CacheStats total = stats();
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("store.cache.hits").add(total.hits);
  reg.counter("store.cache.misses").add(total.misses);
  reg.counter("store.cache.evictions").add(total.evictions);
  if (total.prefetch_issued > 0) {
    reg.counter("store.prefetch.issued").add(total.prefetch_issued);
    reg.counter("store.prefetch.hits").add(total.prefetch_hits);
    reg.counter("store.prefetch.wasted").add(total.prefetch_wasted);
  }
}

void BlockCache::evict_to_budget(Shard& shard) const {
  // Evict strictly down to the shard budget — all the way to empty if a
  // single block exceeds it (callers hold the values shared_ptr, so
  // nothing dangles). Retaining a minimum entry instead would let
  // shard_count oversized blocks pin shard_count * chunk_bytes, breaking
  // the O(cache_bytes) memory contract for explicit shard counts.
  while (shard.stats.resident_bytes > shard_capacity_ &&
         !shard.map.empty()) {
    const std::uint64_t victim = shard.lru.back();
    shard.lru.pop_back();
    const auto vit = shard.map.find(victim);
    shard.stats.resident_bytes -= vit->second.values->size() * sizeof(double);
    if (vit->second.prefetched) ++shard.stats.prefetch_wasted;
    shard.map.erase(vit);
    ++shard.stats.evictions;
  }
}

BlockCache::Block BlockCache::insert(Shard& shard, std::uint64_t key,
                                     Block values) const {
  std::lock_guard lock(shard.mu);
  if (const auto it = shard.map.find(key); it != shard.map.end()) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    return it->second.values;
  }
  shard.lru.push_front(key);
  shard.map[key] = Entry{values, shard.lru.begin(), false};
  shard.stats.resident_bytes += values->size() * sizeof(double);
  evict_to_budget(shard);
  return values;
}

void BlockCache::insert_prefetched(std::uint64_t key, Block values) const {
  Shard& shard = shards_[key & (shard_count_ - 1)];
  std::lock_guard lock(shard.mu);
  ++shard.stats.prefetch_issued;
  // A demand load (or an earlier prefetch) won the race: keep it, and do
  // not refresh its LRU position — only demand access is recency.
  if (shard.map.find(key) != shard.map.end()) return;
  const std::size_t bytes = values->size() * sizeof(double);
  shard.lru.push_front(key);
  shard.map[key] = Entry{std::move(values), shard.lru.begin(), true};
  shard.stats.resident_bytes += bytes;
  evict_to_budget(shard);
}

bool BlockCache::contains(std::uint64_t key) const {
  Shard& shard = shards_[key & (shard_count_ - 1)];
  std::lock_guard lock(shard.mu);
  return shard.map.find(key) != shard.map.end();
}

CacheStats BlockCache::stats() const {
  CacheStats total;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    std::lock_guard lock(shards_[s].mu);
    total.hits += shards_[s].stats.hits;
    total.misses += shards_[s].stats.misses;
    total.evictions += shards_[s].stats.evictions;
    total.resident_bytes += shards_[s].stats.resident_bytes;
    total.prefetch_issued += shards_[s].stats.prefetch_issued;
    total.prefetch_hits += shards_[s].stats.prefetch_hits;
    total.prefetch_wasted += shards_[s].stats.prefetch_wasted;
  }
  return total;
}

ReadOnlyFile::ReadOnlyFile(const std::string& path) : path_(path) {
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) throw RuntimeError("cannot open for read: " + path);
}

ReadOnlyFile::~ReadOnlyFile() {
  if (obs::enabled() && bytes_read() > 0) {
    obs::MetricsRegistry::global()
        .counter("store.io.bytes_read")
        .add(bytes_read());
  }
  if (fd_ >= 0) ::close(fd_);
}

std::vector<std::uint8_t> ReadOnlyFile::read(std::uint64_t offset,
                                             std::uint64_t bytes) const {
  std::vector<std::uint8_t> block(bytes);
  std::size_t got = 0;
  while (got < bytes) {
    const ssize_t r = ::pread(fd_, block.data() + got, bytes - got,
                              static_cast<off_t>(offset + got));
    if (r < 0 && errno == EINTR) continue;  // interrupted, not truncated
    if (r <= 0) throw RuntimeError("truncated store file: " + path_);
    got += static_cast<std::size_t>(r);
  }
  bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
  return block;
}

}  // namespace sickle::store
