#include "store/snapshot_store.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "common/timer.hpp"

namespace sickle::store {

namespace {

constexpr char kMagic[4] = {'S', 'K', 'L', '2'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& f, const T& v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& f) {
  T v{};
  f.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!f) throw RuntimeError("truncated SKL2 file");
  return v;
}

}  // namespace

StoreWriteReport write_store(const field::Snapshot& snap,
                             const std::string& path,
                             const StoreOptions& opts) {
  const ChunkLayout layout(snap.shape(), opts.chunk);
  const auto codec = make_codec(opts.codec, opts.tolerance);
  const auto names = snap.names();
  const std::size_t nchunks = layout.count();
  const std::size_t total = names.size() * nchunks;

  // Open the output before encoding: an unwritable path must fail in
  // milliseconds, not after compressing a multi-GB snapshot.
  std::ofstream f(path, std::ios::binary);
  if (!f) throw RuntimeError("cannot open for write: " + path);

  // Encode every (field, chunk) block in parallel; blocks land in their
  // final order, so the serial write below is a straight concatenation.
  StoreWriteReport report;
  report.chunks = total;
  report.raw_bytes = snap.bytes();
  std::vector<std::vector<std::uint8_t>> blocks(total);
  Timer encode_timer;
  parallel_for(
      total,
      [&](std::size_t i) {
        const auto& data = snap.get(names[i / nchunks]).data();
        const auto vals =
            extract_chunk(data, snap.shape(), layout.box(i % nchunks));
        blocks[i] = codec->encode(std::span<const double>(vals));
      },
      opts.pool, /*grain=*/1);
  report.encode_seconds = encode_timer.seconds();

  f.write(kMagic, 4);
  write_pod<std::uint32_t>(f, kVersion);
  write_pod<std::uint64_t>(f, snap.shape().nx);
  write_pod<std::uint64_t>(f, snap.shape().ny);
  write_pod<std::uint64_t>(f, snap.shape().nz);
  write_pod<double>(f, snap.time());
  write_pod<std::uint64_t>(f, layout.chunk_shape().nx);
  write_pod<std::uint64_t>(f, layout.chunk_shape().ny);
  write_pod<std::uint64_t>(f, layout.chunk_shape().nz);
  write_pod<std::uint8_t>(f, static_cast<std::uint8_t>(codec->id()));
  write_pod<double>(f, opts.tolerance);
  write_pod<std::uint64_t>(f, names.size());
  for (const auto& name : names) {
    write_pod<std::uint32_t>(f, static_cast<std::uint32_t>(name.size()));
    f.write(name.data(), static_cast<std::streamsize>(name.size()));
  }
  write_pod<std::uint64_t>(f, nchunks);
  // Payload starts right after the chunk index; deriving the offset from
  // the stream position keeps it correct if the header ever grows.
  std::uint64_t offset = static_cast<std::uint64_t>(f.tellp()) +
                         total * 2 * sizeof(std::uint64_t);
  for (const auto& b : blocks) {
    write_pod<std::uint64_t>(f, offset);
    write_pod<std::uint64_t>(f, b.size());
    offset += b.size();
    report.payload_bytes += b.size();
  }
  for (const auto& b : blocks) {
    f.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
  }
  f.flush();
  if (!f) throw RuntimeError("error writing: " + path);
  report.file_bytes = static_cast<std::size_t>(
      std::filesystem::file_size(path));
  return report;
}

ChunkReader::ChunkReader(const std::string& path, std::size_t cache_bytes,
                         std::size_t shards) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw RuntimeError("cannot open for read: " + path);
  char magic[4];
  file.read(magic, 4);
  if (!file || std::memcmp(magic, kMagic, 4) != 0) {
    throw RuntimeError("not an SKL2 store file: " + path);
  }
  const auto version = read_pod<std::uint32_t>(file);
  if (version != kVersion) {
    throw RuntimeError("unsupported SKL2 version in " + path);
  }
  field::GridShape grid;
  grid.nx = read_pod<std::uint64_t>(file);
  grid.ny = read_pod<std::uint64_t>(file);
  grid.nz = read_pod<std::uint64_t>(file);
  time_ = read_pod<double>(file);
  field::GridShape chunk;
  chunk.nx = read_pod<std::uint64_t>(file);
  chunk.ny = read_pod<std::uint64_t>(file);
  chunk.nz = read_pod<std::uint64_t>(file);
  layout_ = ChunkLayout(grid, chunk);
  const auto codec_id = read_pod<std::uint8_t>(file);
  const auto tolerance = read_pod<double>(file);
  codec_ = make_codec(static_cast<CodecId>(codec_id), tolerance);
  codec_name_ = codec_->name();
  const auto nfields = read_pod<std::uint64_t>(file);
  SICKLE_CHECK_MSG(nfields < 1024, "implausible field count in SKL2");
  names_.reserve(nfields);
  for (std::uint64_t i = 0; i < nfields; ++i) {
    const auto len = read_pod<std::uint32_t>(file);
    SICKLE_CHECK_MSG(len < (1u << 20), "implausible name length in SKL2");
    std::string name(len, '\0');
    file.read(name.data(), len);
    if (!file) throw RuntimeError("truncated SKL2 file");
    field_index_[name] = i;
    names_.push_back(std::move(name));
  }
  const auto nchunks = read_pod<std::uint64_t>(file);
  SICKLE_CHECK_MSG(nchunks == layout_.count(),
                   "SKL2 chunk count does not match its grid/chunk shape");
  index_.resize(nfields * nchunks);
  const auto file_size =
      static_cast<std::uint64_t>(std::filesystem::file_size(path));
  for (auto& ref : index_) {
    ref.offset = read_pod<std::uint64_t>(file);
    ref.bytes = read_pod<std::uint64_t>(file);
    // Reject corrupt index entries here rather than letting chunk() make
    // an unchecked (possibly huge) allocation later.
    if (ref.offset > file_size || ref.bytes > file_size - ref.offset) {
      throw RuntimeError("SKL2 chunk index points outside the file: " +
                         path);
    }
  }

  const std::size_t chunk_bytes =
      layout_.chunk_shape().size() * sizeof(double);
  cache_ = std::make_unique<BlockCache>(cache_bytes, chunk_bytes, shards);
  file_ = std::make_unique<ReadOnlyFile>(path);
}

std::shared_ptr<const std::vector<double>> ChunkReader::chunk(
    std::size_t field_index, std::size_t chunk_id) const {
  SICKLE_CHECK(field_index < names_.size() && chunk_id < layout_.count());
  const std::uint64_t key = field_index * layout_.count() + chunk_id;
  return cache_->get(key, [&]() -> BlockCache::Block {
    const auto block = file_->read(index_[key].offset, index_[key].bytes);
    return std::make_shared<const std::vector<double>>(
        codec_->decode(std::span<const std::uint8_t>(block),
                       layout_.box(chunk_id).points()));
  });
}

void ChunkReader::gather(const std::string& var,
                         std::span<const std::size_t> idx,
                         std::span<double> out) const {
  SICKLE_CHECK(out.size() == idx.size());
  const auto it = field_index_.find(var);
  SICKLE_CHECK_MSG(it != field_index_.end(), "unknown field: " + var);
  const std::size_t f = it->second;
  // Gather requests are runs of indices within one chunk (cube point sets,
  // full-field scans); memoizing the last chunk skips the cache lookup and
  // LRU bookkeeping on the hot path.
  std::size_t last_chunk = layout_.count();
  std::shared_ptr<const std::vector<double>> values;
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const std::size_t c = layout_.chunk_of(idx[i]);
    if (c != last_chunk) {
      values = chunk(f, c);
      last_chunk = c;
    }
    out[i] = (*values)[layout_.local_offset(idx[i])];
  }
}

std::vector<double> ChunkReader::load_field(const std::string& var) const {
  const auto it = field_index_.find(var);
  SICKLE_CHECK_MSG(it != field_index_.end(), "unknown field: " + var);
  const auto& grid = layout_.grid();
  std::vector<double> out(grid.size());
  for (std::size_t c = 0; c < layout_.count(); ++c) {
    const auto b = layout_.box(c);
    const auto values = chunk(it->second, c);
    std::size_t k = 0;
    for (std::size_t ix = b.x0; ix < b.x0 + b.ex; ++ix) {
      for (std::size_t iy = b.y0; iy < b.y0 + b.ey; ++iy) {
        double* row = out.data() + grid.index(ix, iy, b.z0);
        for (std::size_t iz = 0; iz < b.ez; ++iz) row[iz] = (*values)[k++];
      }
    }
  }
  return out;
}

field::Snapshot ChunkReader::load_snapshot() const {
  field::Snapshot snap(layout_.grid(), time_);
  for (const auto& name : names_) snap.add(name, load_field(name));
  return snap;
}

}  // namespace sickle::store
