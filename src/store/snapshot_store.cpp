#include "store/snapshot_store.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sickle::store {

namespace {

/// Fold one encode/decode interval onto the registry's codec seconds
/// (the counters the scattered StoreWriteReport fields migrate onto).
void add_codec_seconds(const char* which, double seconds) {
  obs::MetricsRegistry::global().gauge(which).add(seconds);
}

constexpr char kMagic[4] = {'S', 'K', 'L', '2'};
/// v1 puts the chunk index *before* the payload, which forces the writer
/// to buffer every encoded block until the index is known. v2 moves the
/// index to the tail (SKL3-style): the header carries an index_offset
/// patched on completion, blocks stream to disk in write-budget-bounded
/// waves, and writer memory is bounded by the budget instead of the
/// snapshot. v3 keeps the v2 layout but widens each index entry with an
/// FNV-1a checksum of the block's encoded bytes, verified before every
/// decode. Readers accept all three.
constexpr std::uint32_t kVersionLegacy = 1;
constexpr std::uint32_t kVersionTrailingIndex = 2;
constexpr std::uint32_t kVersionLatest = 3;

/// Index-entry width in u64s: v3 adds the per-block checksum.
constexpr std::size_t entry_words(std::uint32_t version) {
  return version >= 3 ? 3 : 2;
}

template <typename T>
void write_pod(std::ofstream& f, const T& v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& f) {
  T v{};
  f.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!f) throw RuntimeError("truncated SKL2 file");
  return v;
}

}  // namespace

WaveWriteStats write_blocks_in_waves(const field::Snapshot& snap,
                                     const ChunkLayout& layout,
                                     const std::vector<std::string>& names,
                                     const Codec& codec, ThreadPool* pool,
                                     std::size_t budget_bytes,
                                     std::ofstream& out,
                                     const std::string& path,
                                     std::vector<BlockRef>& index) {
  const std::size_t nchunks = layout.count();
  const std::size_t total = names.size() * nchunks;
  const std::size_t budget = std::max<std::size_t>(
      budget_bytes, layout.box(0).points() * sizeof(double));
  WaveWriteStats stats;
  std::size_t wave_begin = 0;
  while (wave_begin < total) {
    std::size_t wave_end = wave_begin;
    std::size_t wave_raw = 0;
    while (wave_end < total) {
      const std::size_t raw =
          layout.box(wave_end % nchunks).points() * sizeof(double);
      if (wave_end > wave_begin && wave_raw + raw > budget) break;
      wave_raw += raw;
      ++wave_end;
    }
    std::vector<std::vector<std::uint8_t>> blocks(wave_end - wave_begin);
    // encode_seconds is extract + encode only — stop the clock before the
    // flush so storage benches report codec throughput, not disk speed.
    double wave_seconds = 0.0;
    {
      obs::Span span("codec.encode", "codec");
      ScopedTimer encode_timer(wave_seconds);
      parallel_for(
          blocks.size(),
          [&](std::size_t i) {
            const std::size_t b = wave_begin + i;
            const auto& data = snap.get(names[b / nchunks]).data();
            const auto vals =
                extract_chunk(data, snap.shape(), layout.box(b % nchunks));
            blocks[i] = codec.encode(std::span<const double>(vals));
          },
          pool, /*grain=*/1);
    }
    stats.encode_seconds += wave_seconds;
    if (obs::enabled()) add_codec_seconds("codec.encode_seconds", wave_seconds);
    std::size_t buffered = 0;
    for (auto& b : blocks) {
      index.push_back(BlockRef{static_cast<std::uint64_t>(out.tellp()),
                               b.size(),
                               fnv1a64(std::span<const std::uint8_t>(b))});
      out.write(reinterpret_cast<const char*>(b.data()),
                static_cast<std::streamsize>(b.size()));
      buffered += b.size();
      stats.payload_bytes += b.size();
    }
    stats.peak_buffered_bytes = std::max(stats.peak_buffered_bytes, buffered);
    if (!out) throw RuntimeError("error writing: " + path);
    wave_begin = wave_end;
  }
  return stats;
}

namespace {

/// The SKL2 header up through nchunks — byte-identical between v1 and v2
/// (only the version constant differs), so both layouts serialize it
/// through this one helper and cannot drift.
void write_skl2_header(std::ofstream& f, std::uint32_t version,
                       const field::Snapshot& snap,
                       const ChunkLayout& layout, const Codec& codec,
                       double tolerance,
                       const std::vector<std::string>& names) {
  f.write(kMagic, 4);
  write_pod<std::uint32_t>(f, version);
  write_pod<std::uint64_t>(f, snap.shape().nx);
  write_pod<std::uint64_t>(f, snap.shape().ny);
  write_pod<std::uint64_t>(f, snap.shape().nz);
  write_pod<double>(f, snap.time());
  write_pod<std::uint64_t>(f, layout.chunk_shape().nx);
  write_pod<std::uint64_t>(f, layout.chunk_shape().ny);
  write_pod<std::uint64_t>(f, layout.chunk_shape().nz);
  write_pod<std::uint8_t>(f, static_cast<std::uint8_t>(codec.id()));
  write_pod<double>(f, tolerance);
  write_pod<std::uint64_t>(f, names.size());
  for (const auto& name : names) {
    write_pod<std::uint32_t>(f, static_cast<std::uint32_t>(name.size()));
    f.write(name.data(), static_cast<std::streamsize>(name.size()));
  }
  write_pod<std::uint64_t>(f, layout.count());
}

/// Legacy v1 layout: encode everything, then index-before-payload. Kept
/// (behind StoreOptions::format_version = 1) so compat tests and old
/// tooling can still produce files every reader version understands.
StoreWriteReport write_store_v1(const field::Snapshot& snap,
                                const std::string& path,
                                const StoreOptions& opts,
                                std::ofstream& f) {
  const ChunkLayout layout(snap.shape(), opts.chunk);
  const auto codec = make_codec(opts.codec, opts.tolerance);
  const auto names = snap.names();
  const std::size_t nchunks = layout.count();
  const std::size_t total = names.size() * nchunks;

  // Encode every (field, chunk) block in parallel; blocks land in their
  // final order, so the serial write below is a straight concatenation.
  StoreWriteReport report;
  report.chunks = total;
  report.raw_bytes = snap.bytes();
  std::vector<std::vector<std::uint8_t>> blocks(total);
  {
    obs::Span span("codec.encode", "codec");
    ScopedTimer encode_timer(report.encode_seconds);
    parallel_for(
        total,
        [&](std::size_t i) {
          const auto& data = snap.get(names[i / nchunks]).data();
          const auto vals =
              extract_chunk(data, snap.shape(), layout.box(i % nchunks));
          blocks[i] = codec->encode(std::span<const double>(vals));
        },
        opts.pool, /*grain=*/1);
  }
  if (obs::enabled()) {
    add_codec_seconds("codec.encode_seconds", report.encode_seconds);
  }
  for (const auto& b : blocks) report.peak_buffered_bytes += b.size();

  write_skl2_header(f, kVersionLegacy, snap, layout, *codec, opts.tolerance,
                    names);
  // Payload starts right after the chunk index; deriving the offset from
  // the stream position keeps it correct if the header ever grows.
  std::uint64_t offset = static_cast<std::uint64_t>(f.tellp()) +
                         total * 2 * sizeof(std::uint64_t);
  for (const auto& b : blocks) {
    write_pod<std::uint64_t>(f, offset);
    write_pod<std::uint64_t>(f, b.size());
    offset += b.size();
    report.payload_bytes += b.size();
  }
  for (const auto& b : blocks) {
    f.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
  }
  if (!f) throw RuntimeError("error writing: " + path);
  return report;
}

/// v2/v3 layout: header with a patched index_offset, streamed payload in
/// write-budget-bounded waves, trailing index. Writer memory is bounded
/// by one wave of encoded blocks — never the snapshot. v3 additionally
/// serializes each entry's payload checksum.
StoreWriteReport write_store_trailing(const field::Snapshot& snap,
                                      const std::string& path,
                                      const StoreOptions& opts,
                                      std::uint32_t version,
                                      std::ofstream& f) {
  const ChunkLayout layout(snap.shape(), opts.chunk);
  const auto codec = make_codec(opts.codec, opts.tolerance);
  const auto names = snap.names();
  const std::size_t nchunks = layout.count();
  const std::size_t total = names.size() * nchunks;

  StoreWriteReport report;
  report.chunks = total;
  report.raw_bytes = snap.bytes();

  write_skl2_header(f, version, snap, layout, *codec, opts.tolerance,
                    names);
  const auto patch_pos = static_cast<std::uint64_t>(f.tellp());
  write_pod<std::uint64_t>(f, 0);  // index_offset, patched below
  write_pod<std::uint64_t>(f, 0);  // index_checksum, patched below

  std::vector<BlockRef> index;
  index.reserve(total);
  const WaveWriteStats stats =
      write_blocks_in_waves(snap, layout, names, *codec, opts.pool,
                            opts.write_budget_bytes, f, path, index);
  report.payload_bytes = stats.payload_bytes;
  report.peak_buffered_bytes = stats.peak_buffered_bytes;
  report.encode_seconds = stats.encode_seconds;

  // Trailing index, checksummed like the SKL3 one: a flipped byte whose
  // offsets still land inside the file must fail loudly on open, not
  // decode garbage.
  const auto index_offset = static_cast<std::uint64_t>(f.tellp());
  std::vector<std::uint8_t> section;
  section.reserve(index.size() * entry_words(version) *
                  sizeof(std::uint64_t));
  for (const auto& ref : index) {
    append_pod<std::uint64_t>(section, ref.offset);
    append_pod<std::uint64_t>(section, ref.bytes);
    if (version >= 3) append_pod<std::uint64_t>(section, ref.checksum);
  }
  f.write(reinterpret_cast<const char*>(section.data()),
          static_cast<std::streamsize>(section.size()));
  f.seekp(static_cast<std::streamoff>(patch_pos));
  write_pod<std::uint64_t>(f, index_offset);
  write_pod<std::uint64_t>(f, fnv1a64(std::span<const std::uint8_t>(section)));
  return report;
}

}  // namespace

StoreWriteReport write_store(const field::Snapshot& snap,
                             const std::string& path,
                             const StoreOptions& opts) {
  const std::uint32_t version =
      opts.format_version == 0 ? kVersionLatest : opts.format_version;
  SICKLE_CHECK_MSG(version >= kVersionLegacy && version <= kVersionLatest,
                   "unsupported SKL2 format_version requested");
  // Open the output before encoding: an unwritable path must fail in
  // milliseconds, not after compressing a multi-GB snapshot.
  std::ofstream f(path, std::ios::binary);
  if (!f) throw RuntimeError("cannot open for write: " + path);
  StoreWriteReport report =
      version == kVersionLegacy
          ? write_store_v1(snap, path, opts, f)
          : write_store_trailing(snap, path, opts, version, f);
  f.flush();
  if (!f) throw RuntimeError("error writing: " + path);
  report.file_bytes = static_cast<std::size_t>(
      std::filesystem::file_size(path));
  return report;
}

ChunkReader::ChunkReader(const std::string& path, std::size_t cache_bytes,
                         std::size_t shards) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw RuntimeError("cannot open for read: " + path);
  char magic[4];
  file.read(magic, 4);
  if (!file || std::memcmp(magic, kMagic, 4) != 0) {
    throw RuntimeError("not an SKL2 store file: " + path);
  }
  const auto version = read_pod<std::uint32_t>(file);
  if (version < kVersionLegacy || version > kVersionLatest) {
    throw RuntimeError("unsupported SKL2 version in " + path);
  }
  version_ = version;
  field::GridShape grid;
  grid.nx = read_pod<std::uint64_t>(file);
  grid.ny = read_pod<std::uint64_t>(file);
  grid.nz = read_pod<std::uint64_t>(file);
  time_ = read_pod<double>(file);
  field::GridShape chunk;
  chunk.nx = read_pod<std::uint64_t>(file);
  chunk.ny = read_pod<std::uint64_t>(file);
  chunk.nz = read_pod<std::uint64_t>(file);
  layout_ = ChunkLayout(grid, chunk);
  const auto codec_id = read_pod<std::uint8_t>(file);
  const auto tolerance = read_pod<double>(file);
  codec_ = make_codec(static_cast<CodecId>(codec_id), tolerance);
  codec_name_ = codec_->name();
  const auto nfields = read_pod<std::uint64_t>(file);
  SICKLE_CHECK_MSG(nfields < 1024, "implausible field count in SKL2");
  names_.reserve(nfields);
  for (std::uint64_t i = 0; i < nfields; ++i) {
    const auto len = read_pod<std::uint32_t>(file);
    SICKLE_CHECK_MSG(len < (1u << 20), "implausible name length in SKL2");
    std::string name(len, '\0');
    file.read(name.data(), len);
    if (!file) throw RuntimeError("truncated SKL2 file");
    field_index_[name] = i;
    names_.push_back(std::move(name));
  }
  const auto nchunks = read_pod<std::uint64_t>(file);
  SICKLE_CHECK_MSG(nchunks == layout_.count(),
                   "SKL2 chunk count does not match its grid/chunk shape");
  index_.resize(nfields * nchunks);
  const auto file_size =
      static_cast<std::uint64_t>(std::filesystem::file_size(path));
  if (version >= 2) {
    // v2+: the index sits at the tail; the header holds its offset (0
    // means the writer never completed) and an FNV-1a checksum verified
    // before any entry is parsed. v3 entries also carry the per-block
    // payload checksum chunk() verifies before decoding.
    const auto index_offset = read_pod<std::uint64_t>(file);
    const auto index_checksum = read_pod<std::uint64_t>(file);
    const std::uint64_t index_bytes =
        index_.size() * entry_words(version) * sizeof(std::uint64_t);
    if (index_offset == 0) {
      throw RuntimeError(
          "SKL2 store has no index — the writer was not completed "
          "(crashed or truncated write): " + path);
    }
    if (index_offset > file_size ||
        index_bytes > file_size - index_offset) {
      throw RuntimeError(
          "SKL2 index points outside the file (truncated?): " + path);
    }
    file.seekg(static_cast<std::streamoff>(index_offset));
    std::vector<std::uint8_t> section(index_bytes);
    file.read(reinterpret_cast<char*>(section.data()),
              static_cast<std::streamsize>(section.size()));
    if (!file) throw RuntimeError("truncated SKL2 file");
    if (fnv1a64(std::span<const std::uint8_t>(section)) != index_checksum) {
      throw RuntimeError("SKL2 index checksum mismatch (corrupt index): " +
                         path);
    }
    std::size_t pos = 0;
    auto take_u64 = [&section, &pos]() {
      std::uint64_t v = 0;
      std::memcpy(&v, section.data() + pos, sizeof(v));
      pos += sizeof(v);
      return v;
    };
    for (auto& ref : index_) {
      ref.offset = take_u64();
      ref.bytes = take_u64();
      if (version >= 3) ref.checksum = take_u64();
      if (ref.offset > file_size || ref.bytes > file_size - ref.offset) {
        throw RuntimeError("SKL2 chunk index points outside the file: " +
                           path);
      }
    }
  } else {
    for (auto& ref : index_) {
      ref.offset = read_pod<std::uint64_t>(file);
      ref.bytes = read_pod<std::uint64_t>(file);
      // Reject corrupt index entries here rather than letting chunk()
      // make an unchecked (possibly huge) allocation later.
      if (ref.offset > file_size || ref.bytes > file_size - ref.offset) {
        throw RuntimeError("SKL2 chunk index points outside the file: " +
                           path);
      }
    }
  }

  const std::size_t chunk_bytes =
      layout_.chunk_shape().size() * sizeof(double);
  cache_ = std::make_unique<BlockCache>(cache_bytes, chunk_bytes, shards);
  file_ = std::make_unique<ReadOnlyFile>(path);
}

std::shared_ptr<const std::vector<double>> ChunkReader::chunk(
    std::size_t field_index, std::size_t chunk_id) const {
  SICKLE_CHECK(field_index < names_.size() && chunk_id < layout_.count());
  const std::uint64_t key = field_index * layout_.count() + chunk_id;
  return cache_->get(key, [&]() -> BlockCache::Block {
    obs::Span load_span("store.load_chunk", "store");
    const auto block = file_->read(index_[key].offset, index_[key].bytes);
    if (version_ >= 3 &&
        fnv1a64(std::span<const std::uint8_t>(block)) !=
            index_[key].checksum) {
      throw RuntimeError("SKL2 chunk checksum mismatch (corrupt block)");
    }
    if (obs::enabled()) {
      obs::Span decode_span("codec.decode", "codec");
      Timer decode_timer;
      auto values = std::make_shared<const std::vector<double>>(
          codec_->decode(std::span<const std::uint8_t>(block),
                         layout_.box(chunk_id).points()));
      add_codec_seconds("codec.decode_seconds", decode_timer.seconds());
      return values;
    }
    return std::make_shared<const std::vector<double>>(
        codec_->decode(std::span<const std::uint8_t>(block),
                       layout_.box(chunk_id).points()));
  });
}

void ChunkReader::gather(const std::string& var,
                         std::span<const std::size_t> idx,
                         std::span<double> out) const {
  SICKLE_CHECK(out.size() == idx.size());
  const auto it = field_index_.find(var);
  SICKLE_CHECK_MSG(it != field_index_.end(), "unknown field: " + var);
  const std::size_t f = it->second;
  // Gather requests are runs of indices within one chunk (cube point sets,
  // full-field scans); memoizing the last chunk skips the cache lookup and
  // LRU bookkeeping on the hot path.
  std::size_t last_chunk = layout_.count();
  std::shared_ptr<const std::vector<double>> values;
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const std::size_t c = layout_.chunk_of(idx[i]);
    if (c != last_chunk) {
      values = chunk(f, c);
      last_chunk = c;
    }
    out[i] = (*values)[layout_.local_offset(idx[i])];
  }
}

std::vector<double> ChunkReader::load_field(const std::string& var) const {
  const auto it = field_index_.find(var);
  SICKLE_CHECK_MSG(it != field_index_.end(), "unknown field: " + var);
  const auto& grid = layout_.grid();
  std::vector<double> out(grid.size());
  for (std::size_t c = 0; c < layout_.count(); ++c) {
    const auto b = layout_.box(c);
    const auto values = chunk(it->second, c);
    std::size_t k = 0;
    for (std::size_t ix = b.x0; ix < b.x0 + b.ex; ++ix) {
      for (std::size_t iy = b.y0; iy < b.y0 + b.ey; ++iy) {
        double* row = out.data() + grid.index(ix, iy, b.z0);
        for (std::size_t iz = 0; iz < b.ez; ++iz) row[iz] = (*values)[k++];
      }
    }
  }
  return out;
}

field::Snapshot ChunkReader::load_snapshot() const {
  field::Snapshot snap(layout_.grid(), time_);
  for (const auto& name : names_) snap.add(name, load_field(name));
  return snap;
}

}  // namespace sickle::store
