/// @file snapshot_store.hpp
/// @brief SKL2 chunked compressed snapshot container: parallel writer and
/// LRU-cached streaming reader.
///
/// The flat `.skl` (SKL1) format loads a whole snapshot into RAM; SKL2
/// splits every field into fixed-size 3D chunks, encodes each chunk
/// independently with a pluggable codec (see codec.hpp), and keeps a chunk
/// index so readers fetch only the blocks a query touches. ChunkReader
/// implements field::FieldSource, so the sampling pipeline streams samples
/// out-of-core via sampling::run_pipeline_streaming with memory bounded by
/// the reader's block cache, never the grid. For multi-snapshot time
/// series, the SKL3 container (series_store.hpp) amortizes one header and
/// index over the whole series. Layout spec: docs/STORE.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "field/field.hpp"
#include "field/field_source.hpp"
#include "parallel/thread_pool.hpp"
#include "store/block_cache.hpp"
#include "store/chunk_layout.hpp"
#include "store/codec.hpp"

namespace sickle::store {

/// Writer-side knobs; also carried by sickle::CaseConfig for the config
/// driven "skl2"/"series" backends.
struct StoreOptions {
  field::GridShape chunk{32, 32, 32};  ///< nominal chunk edge lengths
  std::string codec = "delta";         ///< "raw" | "delta" | "quant"
  double tolerance = 1e-6;             ///< quant max abs error
  std::size_t cache_bytes = 64ull << 20;  ///< reader block-cache capacity
  /// Reader-side async readahead depth (SKL3 SeriesReader): decode the
  /// next N blocks of a stream on the pool while the current one is
  /// consumed. 0 = off. Values are bit-identical either way; only decode
  /// timing changes.
  std::size_t prefetch_depth = 0;
  ThreadPool* pool = nullptr;          ///< encode pool; nullptr = global()
  /// Streaming-writer budget (SKL2 v2 write_store and SKL3 SeriesWriter):
  /// encoded blocks are flushed to disk in waves whose raw input stays
  /// under this bound, so writer memory is O(budget + codec scratch)
  /// instead of O(snapshot).
  std::size_t write_budget_bytes = 8ull << 20;
  /// Container format version to write; 0 = latest. Compat/testing knob:
  /// 1 selects the legacy layouts (SKL2 index-before-payload buffering
  /// writer; SKL3 without summary blocks or index checksum); 2 selects the
  /// trailing-index layout without per-block payload checksums. Readers
  /// accept every version they know.
  std::uint32_t format_version = 0;
  /// Reader-side: decode into this externally owned BlockCache instead of
  /// a per-reader one (SKL3 SeriesReader only; keys are salted with a
  /// per-file hash so readers of different containers can share it).
  /// nullptr = each reader owns a private cache of `cache_bytes`. The
  /// cache must outlive every reader using it — CaseSession points this
  /// at its process-global session cache.
  BlockCache* shared_cache = nullptr;
};

/// What write_store did, for benches and storage accounting.
struct StoreWriteReport {
  std::size_t file_bytes = 0;     ///< total container size on disk
  std::size_t payload_bytes = 0;  ///< encoded chunk payload only
  std::size_t raw_bytes = 0;      ///< nfields * grid points * sizeof(double)
  std::size_t chunks = 0;         ///< blocks written (nfields * layout count)
  double encode_seconds = 0.0;    ///< wall time in chunk extraction + encode
  /// High-water mark of encoded blocks buffered in memory: one
  /// write-budget-bounded wave for the v2 trailing-index layout, the whole
  /// payload for legacy v1 (which needs the index before the payload).
  std::size_t peak_buffered_bytes = 0;

  [[nodiscard]] double compression_ratio() const noexcept {
    return file_bytes == 0 ? 0.0
                           : static_cast<double>(raw_bytes) /
                                 static_cast<double>(file_bytes);
  }
};

/// Write `snap` as an SKL2 container. Chunks are encoded in parallel on
/// `opts.pool` (ThreadPool::global() by default). Throws RuntimeError on
/// I/O failure.
StoreWriteReport write_store(const field::Snapshot& snap,
                             const std::string& path,
                             const StoreOptions& opts = {});

/// One encoded block's location inside a container file — the index entry
/// shared by the SKL2 and SKL3 trailing indexes. `checksum` (FNV-1a of the
/// encoded payload bytes) is serialized by format v3+ and verified before
/// every decode, so a flipped payload bit fails loudly instead of decoding
/// to silently wrong values.
struct BlockRef {
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::uint64_t checksum = 0;
};

/// What one wave-streamed snapshot write did (summed into the writers'
/// reports).
struct WaveWriteStats {
  std::size_t payload_bytes = 0;
  std::size_t peak_buffered_bytes = 0;
  double encode_seconds = 0.0;  ///< chunk extraction + encode only, no I/O
};

/// The shared streaming scheme behind the SKL2 v2 writer and
/// SeriesWriter::append: encode one snapshot's (field, chunk) blocks in
/// parallel waves whose raw input stays under `budget_bytes` (floored at
/// one chunk), flush each wave to `out`, and append a BlockRef per block
/// to `index`. Peak writer memory is one wave of encoded blocks — never
/// the snapshot. Throws RuntimeError on I/O failure.
WaveWriteStats write_blocks_in_waves(const field::Snapshot& snap,
                                     const ChunkLayout& layout,
                                     const std::vector<std::string>& names,
                                     const Codec& codec, ThreadPool* pool,
                                     std::size_t budget_bytes,
                                     std::ofstream& out,
                                     const std::string& path,
                                     std::vector<BlockRef>& index);

/// Streaming reader over an SKL2 container.
///
/// Chunks decode on demand and live in a byte-bounded LRU cache, so any
/// access pattern — full-field scans, per-cube gathers, random point
/// lookups — runs in O(cache) memory. Implements field::FieldSource, which
/// is all the sampling pipeline needs.
///
/// Thread-safety contract: one ChunkReader may be shared by any number of
/// threads calling gather()/chunk()/load_field() concurrently. The block
/// cache is a store::BlockCache — power-of-two shards, each with its own
/// mutex, LRU list, and slice of the byte budget, keyed by chunk id — and
/// file reads use pread(2), which carries no shared seek state. The
/// parallel streaming pipeline (PipelineConfig::threads != 1) drives
/// exactly this: many workers gathering cubes from one shared reader.
/// Construction and destruction are not concurrent-safe with use, as
/// usual.
class ChunkReader final : public field::FieldSource {
 public:
  /// `shards` = 0 picks a shard count automatically: 1 for caches only a
  /// few chunks deep (preserving strict global LRU behavior), up to 16 as
  /// the cache-to-chunk ratio grows. Explicit values round up to the next
  /// power of two.
  explicit ChunkReader(const std::string& path,
                       std::size_t cache_bytes = 64ull << 20,
                       std::size_t shards = 0);

  ChunkReader(const ChunkReader&) = delete;
  ChunkReader& operator=(const ChunkReader&) = delete;

  // FieldSource interface.
  [[nodiscard]] const field::GridShape& shape() const noexcept override {
    return layout_.grid();
  }
  [[nodiscard]] std::vector<std::string> variables() const override {
    return names_;
  }
  [[nodiscard]] bool has(const std::string& var) const override {
    return field_index_.count(var) > 0;
  }
  void gather(const std::string& var, std::span<const std::size_t> idx,
              std::span<double> out) const override;
  using field::FieldSource::gather;
  [[nodiscard]] double time() const noexcept override { return time_; }

  [[nodiscard]] const ChunkLayout& layout() const noexcept { return layout_; }
  [[nodiscard]] const std::string& codec_name() const noexcept {
    return codec_name_;
  }
  [[nodiscard]] std::size_t num_fields() const noexcept {
    return names_.size();
  }
  /// Container format version read from the header (1 = legacy, 2 =
  /// trailing index, 3 = v2 plus per-block payload checksums).
  [[nodiscard]] std::uint32_t format_version() const noexcept {
    return version_;
  }

  /// Decoded values of one chunk of one field, in the chunk's z-fastest
  /// order. The pointer stays valid after eviction (shared ownership).
  [[nodiscard]] std::shared_ptr<const std::vector<double>> chunk(
      std::size_t field_index, std::size_t chunk_id) const;

  /// Materialize one full field (streams every chunk once).
  [[nodiscard]] std::vector<double> load_field(const std::string& var) const;

  /// Materialize the whole snapshot — for tests and small grids; defeats
  /// the purpose on larger-than-RAM stores.
  [[nodiscard]] field::Snapshot load_snapshot() const;

  using CacheStats = store::CacheStats;
  /// Aggregated over all shards (locks each shard briefly).
  [[nodiscard]] CacheStats cache_stats() const { return cache_->stats(); }

  /// Lifetime pread(2) bytes (payload + checksummed blocks) — mirrors
  /// SeriesReader::io_bytes_read() so cache-pressure re-reads are
  /// observable on the SKL2 path too.
  [[nodiscard]] std::uint64_t io_bytes_read() const noexcept {
    return file_->bytes_read();
  }

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return cache_->shard_count();
  }

 private:
  struct BlockRef {
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
    std::uint64_t checksum = 0;
  };

  std::unique_ptr<ReadOnlyFile> file_;
  std::uint32_t version_ = 0;
  ChunkLayout layout_{{1, 1, 1}, {1, 1, 1}};
  double time_ = 0.0;
  std::vector<std::string> names_;
  std::map<std::string, std::size_t> field_index_;
  std::unique_ptr<Codec> codec_;
  std::string codec_name_;
  std::vector<BlockRef> index_;  ///< [field * layout.count() + chunk]
  std::unique_ptr<BlockCache> cache_;
};

}  // namespace sickle::store
