#include "store/codec.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "store/bit_stream.hpp"

namespace sickle::store {

namespace {

template <typename T>
void append_pod(std::vector<std::uint8_t>& out, const T& v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T read_pod(std::span<const std::uint8_t> block, std::size_t& pos) {
  if (pos + sizeof(T) > block.size()) {
    throw RuntimeError("truncated SKL2 chunk block");
  }
  T v{};
  std::memcpy(&v, block.data() + pos, sizeof(T));
  pos += sizeof(T);
  return v;
}

/// Bytes needed for the value's significant (non-leading-zero) part.
unsigned significant_bytes(std::uint64_t v) noexcept {
  return v == 0 ? 0u : (std::bit_width(v) + 7u) / 8u;
}

// Quant block layout: mode byte 0 = quantized, 1 = raw fallback.
constexpr std::uint8_t kQuantMode = 0;
constexpr std::uint8_t kRawFallbackMode = 1;
// Level cap: packed widths stay <= 48 bits so the bit accumulator never
// overflows and pathological (range / tolerance) ratios fall back to raw.
constexpr double kMaxLevels = 281474976710655.0;  // 2^48 - 1

}  // namespace

std::vector<std::uint8_t> RawCodec::encode(
    std::span<const double> values) const {
  std::vector<std::uint8_t> out(values.size() * sizeof(double));
  std::memcpy(out.data(), values.data(), out.size());
  return out;
}

std::vector<double> RawCodec::decode(std::span<const std::uint8_t> block,
                                     std::size_t count) const {
  if (block.size() != count * sizeof(double)) {
    throw RuntimeError("raw chunk block has wrong size");
  }
  std::vector<double> out(count);
  std::memcpy(out.data(), block.data(), block.size());
  return out;
}

std::vector<std::uint8_t> DeltaCodec::encode(
    std::span<const double> values) const {
  const std::size_t n = values.size();
  const std::size_t nibble_bytes = (n + 1) / 2;
  std::vector<std::uint8_t> out(nibble_bytes, 0);
  out.reserve(nibble_bytes + n * sizeof(double));
  // The XOR stencil is elementwise 64-bit integer work, so it vectorizes
  // on any 128-bit ISA; the byte counts (scalar lzcnt is one instruction)
  // ride along in the serial variable-length emission below.
  std::vector<std::uint64_t> xors(n);
  const double* vals = values.data();
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t u = std::bit_cast<std::uint64_t>(vals[i]);
    const std::uint64_t p =
        i == 0 ? 0 : std::bit_cast<std::uint64_t>(vals[i - 1]);
    xors[i] = u ^ p;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned nb = significant_bytes(xors[i]);
    std::uint64_t d = xors[i];
    out[i / 2] |= static_cast<std::uint8_t>(nb << ((i % 2) * 4));
    for (unsigned b = 0; b < nb; ++b) {
      out.push_back(static_cast<std::uint8_t>(d & 0xFF));
      d >>= 8;
    }
  }
  return out;
}

std::vector<double> DeltaCodec::decode(std::span<const std::uint8_t> block,
                                       std::size_t count) const {
  const std::size_t nibble_bytes = (count + 1) / 2;
  if (block.size() < nibble_bytes) {
    throw RuntimeError("truncated SKL2 chunk block");
  }
  std::vector<double> out(count);
  std::size_t pos = nibble_bytes;
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const unsigned nb = (block[i / 2] >> ((i % 2) * 4)) & 0xF;
    if (nb > 8 || pos + nb > block.size()) {
      throw RuntimeError("malformed delta chunk block");
    }
    std::uint64_t d = 0;
    for (unsigned b = 0; b < nb; ++b) {
      d |= static_cast<std::uint64_t>(block[pos++]) << (b * 8);
    }
    prev ^= d;
    out[i] = std::bit_cast<double>(prev);
  }
  return out;
}

std::vector<std::uint8_t> GorillaCodec::encode(
    std::span<const double> values) const {
  const std::size_t n = values.size();
  if (n == 0) return {};
  // Elementwise precompute (vectorizable): the XOR stencil is pure 64-bit
  // integer work. Zero counts (single scalar lzcnt/tzcnt instructions,
  // which 128-bit ISAs cannot vectorize anyway) stay in the serial
  // bit-granular emission below.
  std::vector<std::uint64_t> xors(n);
  const double* vals = values.data();
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t u = std::bit_cast<std::uint64_t>(vals[i]);
    const std::uint64_t p =
        i == 0 ? u : std::bit_cast<std::uint64_t>(vals[i - 1]);
    xors[i] = u ^ p;
  }
  BitWriter w;
  w.put(std::bit_cast<std::uint64_t>(vals[0]), 64);
  unsigned win_lead = 0, win_trail = 0, win_len = 0;
  bool have_window = false;
  for (std::size_t i = 1; i < n; ++i) {
    const std::uint64_t x = xors[i];
    if (x == 0) {
      w.put(0, 1);
      continue;
    }
    w.put(1, 1);
    const unsigned lz = static_cast<unsigned>(std::countl_zero(x));
    const unsigned tz = static_cast<unsigned>(std::countr_zero(x));
    const unsigned len = 64 - lz - tz;
    if (have_window && lz >= win_lead && tz >= win_trail) {
      w.put(0, 1);
      w.put(x >> win_trail, win_len);
    } else {
      w.put(1, 1);
      w.put(lz, 6);
      w.put(len - 1, 6);
      w.put(x >> tz, len);
      win_lead = lz;
      win_trail = tz;
      win_len = len;
      have_window = true;
    }
  }
  return w.finish();
}

std::vector<double> GorillaCodec::decode(std::span<const std::uint8_t> block,
                                         std::size_t count) const {
  if (count == 0) {
    if (!block.empty()) throw RuntimeError("gorilla chunk block has wrong size");
    return {};
  }
  BitReader r(block);
  std::vector<double> out(count);
  std::uint64_t u = r.get(64);
  out[0] = std::bit_cast<double>(u);
  unsigned win_trail = 0, win_len = 0;
  bool have_window = false;
  for (std::size_t i = 1; i < count; ++i) {
    if (r.get(1) == 0) {
      out[i] = std::bit_cast<double>(u);
      continue;
    }
    std::uint64_t x;
    if (r.get(1) == 0) {
      if (!have_window) {
        throw RuntimeError("malformed gorilla chunk block");
      }
      x = r.get(win_len) << win_trail;
    } else {
      const auto lz = static_cast<unsigned>(r.get(6));
      const auto len = static_cast<unsigned>(r.get(6)) + 1;
      if (lz + len > 64) {
        throw RuntimeError("malformed gorilla chunk block");
      }
      win_trail = 64 - lz - len;
      win_len = len;
      have_window = true;
      x = r.get(len) << win_trail;
    }
    u ^= x;
    out[i] = std::bit_cast<double>(u);
  }
  if (!r.exhausted()) {
    throw RuntimeError("gorilla chunk block has wrong size");
  }
  return out;
}

QuantCodec::QuantCodec(double tolerance) : tolerance_(tolerance) {
  SICKLE_CHECK_MSG(tolerance > 0.0, "quant codec tolerance must be > 0");
}

std::vector<std::uint8_t> QuantCodec::encode(
    std::span<const double> values) const {
  if (values.empty()) return {};
  double lo = values[0], hi = values[0];
  bool finite = true;
  for (const double x : values) {
    finite = finite && std::isfinite(x);
    lo = x < lo ? x : lo;
    hi = x > hi ? x : hi;
  }
  const double step = 2.0 * tolerance_;
  std::vector<std::uint8_t> out;
  if (!finite || (hi - lo) / step > kMaxLevels) {
    out.reserve(1 + values.size() * sizeof(double));
    out.push_back(kRawFallbackMode);
    const auto* p = reinterpret_cast<const std::uint8_t*>(values.data());
    out.insert(out.end(), p, p + values.size() * sizeof(double));
    return out;
  }
  const auto qmax = static_cast<std::uint64_t>(std::llround((hi - lo) / step));
  const auto bits = static_cast<std::uint8_t>(std::bit_width(qmax));
  out.reserve(1 + 2 * sizeof(double) + 1 +
              (values.size() * bits + 7) / 8);
  out.push_back(kQuantMode);
  append_pod(out, lo);
  append_pod(out, step);
  out.push_back(bits);
  // LSB-first bit packing; bits <= 48 keeps the accumulator within 64 bits.
  std::uint64_t acc = 0;
  unsigned acc_bits = 0;
  for (const double x : values) {
    const auto q = static_cast<std::uint64_t>(std::llround((x - lo) / step));
    acc |= q << acc_bits;
    acc_bits += bits;
    while (acc_bits >= 8) {
      out.push_back(static_cast<std::uint8_t>(acc & 0xFF));
      acc >>= 8;
      acc_bits -= 8;
    }
  }
  if (acc_bits > 0) out.push_back(static_cast<std::uint8_t>(acc & 0xFF));
  return out;
}

std::vector<double> QuantCodec::decode(std::span<const std::uint8_t> block,
                                       std::size_t count) const {
  if (count == 0) return {};
  std::size_t pos = 0;
  const auto mode = read_pod<std::uint8_t>(block, pos);
  if (mode == kRawFallbackMode) {
    if (block.size() - pos != count * sizeof(double)) {
      throw RuntimeError("quant raw-fallback block has wrong size");
    }
    std::vector<double> out(count);
    std::memcpy(out.data(), block.data() + pos, count * sizeof(double));
    return out;
  }
  if (mode != kQuantMode) throw RuntimeError("unknown quant chunk mode");
  const auto lo = read_pod<double>(block, pos);
  const auto step = read_pod<double>(block, pos);
  const auto bits = read_pod<std::uint8_t>(block, pos);
  if (bits > 48) throw RuntimeError("malformed quant chunk block");
  std::vector<double> out(count);
  if (bits == 0) {
    for (double& x : out) x = lo;
    return out;
  }
  const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
  std::uint64_t acc = 0;
  unsigned acc_bits = 0;
  for (std::size_t i = 0; i < count; ++i) {
    while (acc_bits < bits) {
      if (pos >= block.size()) {
        throw RuntimeError("truncated SKL2 chunk block");
      }
      acc |= static_cast<std::uint64_t>(block[pos++]) << acc_bits;
      acc_bits += 8;
    }
    const std::uint64_t q = acc & mask;
    acc >>= bits;
    acc_bits -= bits;
    out[i] = lo + static_cast<double>(q) * step;
  }
  return out;
}

namespace {

[[noreturn]] void throw_no_zstd() {
  throw RuntimeError(
      "store codec 'zstd' requested but this build has no zstd support "
      "(reconfigure with -DSICKLE_WITH_ZSTD=ON)");
}

}  // namespace

std::unique_ptr<Codec> make_codec(const std::string& name, double tolerance) {
  if (name == "raw") return std::make_unique<RawCodec>();
  if (name == "delta") return std::make_unique<DeltaCodec>();
  if (name == "quant") return std::make_unique<QuantCodec>(tolerance);
  if (name == "gorilla") return std::make_unique<GorillaCodec>();
  if (name == "zstd") {
#ifdef SICKLE_HAS_ZSTD
    return std::make_unique<ZstdCodec>();
#else
    throw_no_zstd();
#endif
  }
  throw RuntimeError("unknown store codec: " + name);
}

std::unique_ptr<Codec> make_codec(CodecId id, double tolerance) {
  switch (id) {
    case CodecId::kRaw:
      return std::make_unique<RawCodec>();
    case CodecId::kDelta:
      return std::make_unique<DeltaCodec>();
    case CodecId::kQuant:
      return std::make_unique<QuantCodec>(tolerance);
    case CodecId::kGorilla:
      return std::make_unique<GorillaCodec>();
    case CodecId::kZstd:
#ifdef SICKLE_HAS_ZSTD
      return std::make_unique<ZstdCodec>();
#else
      throw_no_zstd();
#endif
  }
  throw RuntimeError("unknown store codec id: " +
                     std::to_string(static_cast<int>(id)));
}

std::vector<std::string> codec_names() {
  std::vector<std::string> names = {"raw", "delta", "quant", "gorilla"};
#ifdef SICKLE_HAS_ZSTD
  names.emplace_back("zstd");
#endif
  return names;
}

}  // namespace sickle::store
