#include "store/codec.hpp"

#include <bit>
#include <cmath>
#include <cstring>

#include "common/error.hpp"

namespace sickle::store {

namespace {

template <typename T>
void append_pod(std::vector<std::uint8_t>& out, const T& v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T read_pod(std::span<const std::uint8_t> block, std::size_t& pos) {
  if (pos + sizeof(T) > block.size()) {
    throw RuntimeError("truncated SKL2 chunk block");
  }
  T v{};
  std::memcpy(&v, block.data() + pos, sizeof(T));
  pos += sizeof(T);
  return v;
}

/// Bytes needed for the value's significant (non-leading-zero) part.
unsigned significant_bytes(std::uint64_t v) noexcept {
  return v == 0 ? 0u : (std::bit_width(v) + 7u) / 8u;
}

// Quant block layout: mode byte 0 = quantized, 1 = raw fallback.
constexpr std::uint8_t kQuantMode = 0;
constexpr std::uint8_t kRawFallbackMode = 1;
// Level cap: packed widths stay <= 48 bits so the bit accumulator never
// overflows and pathological (range / tolerance) ratios fall back to raw.
constexpr double kMaxLevels = 281474976710655.0;  // 2^48 - 1

}  // namespace

std::vector<std::uint8_t> RawCodec::encode(
    std::span<const double> values) const {
  std::vector<std::uint8_t> out(values.size() * sizeof(double));
  std::memcpy(out.data(), values.data(), out.size());
  return out;
}

std::vector<double> RawCodec::decode(std::span<const std::uint8_t> block,
                                     std::size_t count) const {
  if (block.size() != count * sizeof(double)) {
    throw RuntimeError("raw chunk block has wrong size");
  }
  std::vector<double> out(count);
  std::memcpy(out.data(), block.data(), block.size());
  return out;
}

std::vector<std::uint8_t> DeltaCodec::encode(
    std::span<const double> values) const {
  const std::size_t n = values.size();
  const std::size_t nibble_bytes = (n + 1) / 2;
  std::vector<std::uint8_t> out(nibble_bytes, 0);
  out.reserve(nibble_bytes + n * sizeof(double));
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t u = std::bit_cast<std::uint64_t>(values[i]);
    std::uint64_t d = u ^ prev;
    prev = u;
    const unsigned nb = significant_bytes(d);
    out[i / 2] |= static_cast<std::uint8_t>(nb << ((i % 2) * 4));
    for (unsigned b = 0; b < nb; ++b) {
      out.push_back(static_cast<std::uint8_t>(d & 0xFF));
      d >>= 8;
    }
  }
  return out;
}

std::vector<double> DeltaCodec::decode(std::span<const std::uint8_t> block,
                                       std::size_t count) const {
  const std::size_t nibble_bytes = (count + 1) / 2;
  if (block.size() < nibble_bytes) {
    throw RuntimeError("truncated SKL2 chunk block");
  }
  std::vector<double> out(count);
  std::size_t pos = nibble_bytes;
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const unsigned nb = (block[i / 2] >> ((i % 2) * 4)) & 0xF;
    if (nb > 8 || pos + nb > block.size()) {
      throw RuntimeError("malformed delta chunk block");
    }
    std::uint64_t d = 0;
    for (unsigned b = 0; b < nb; ++b) {
      d |= static_cast<std::uint64_t>(block[pos++]) << (b * 8);
    }
    prev ^= d;
    out[i] = std::bit_cast<double>(prev);
  }
  return out;
}

QuantCodec::QuantCodec(double tolerance) : tolerance_(tolerance) {
  SICKLE_CHECK_MSG(tolerance > 0.0, "quant codec tolerance must be > 0");
}

std::vector<std::uint8_t> QuantCodec::encode(
    std::span<const double> values) const {
  if (values.empty()) return {};
  double lo = values[0], hi = values[0];
  bool finite = true;
  for (const double x : values) {
    finite = finite && std::isfinite(x);
    lo = x < lo ? x : lo;
    hi = x > hi ? x : hi;
  }
  const double step = 2.0 * tolerance_;
  std::vector<std::uint8_t> out;
  if (!finite || (hi - lo) / step > kMaxLevels) {
    out.reserve(1 + values.size() * sizeof(double));
    out.push_back(kRawFallbackMode);
    const auto* p = reinterpret_cast<const std::uint8_t*>(values.data());
    out.insert(out.end(), p, p + values.size() * sizeof(double));
    return out;
  }
  const auto qmax = static_cast<std::uint64_t>(std::llround((hi - lo) / step));
  const auto bits = static_cast<std::uint8_t>(std::bit_width(qmax));
  out.reserve(1 + 2 * sizeof(double) + 1 +
              (values.size() * bits + 7) / 8);
  out.push_back(kQuantMode);
  append_pod(out, lo);
  append_pod(out, step);
  out.push_back(bits);
  // LSB-first bit packing; bits <= 48 keeps the accumulator within 64 bits.
  std::uint64_t acc = 0;
  unsigned acc_bits = 0;
  for (const double x : values) {
    const auto q = static_cast<std::uint64_t>(std::llround((x - lo) / step));
    acc |= q << acc_bits;
    acc_bits += bits;
    while (acc_bits >= 8) {
      out.push_back(static_cast<std::uint8_t>(acc & 0xFF));
      acc >>= 8;
      acc_bits -= 8;
    }
  }
  if (acc_bits > 0) out.push_back(static_cast<std::uint8_t>(acc & 0xFF));
  return out;
}

std::vector<double> QuantCodec::decode(std::span<const std::uint8_t> block,
                                       std::size_t count) const {
  if (count == 0) return {};
  std::size_t pos = 0;
  const auto mode = read_pod<std::uint8_t>(block, pos);
  if (mode == kRawFallbackMode) {
    if (block.size() - pos != count * sizeof(double)) {
      throw RuntimeError("quant raw-fallback block has wrong size");
    }
    std::vector<double> out(count);
    std::memcpy(out.data(), block.data() + pos, count * sizeof(double));
    return out;
  }
  if (mode != kQuantMode) throw RuntimeError("unknown quant chunk mode");
  const auto lo = read_pod<double>(block, pos);
  const auto step = read_pod<double>(block, pos);
  const auto bits = read_pod<std::uint8_t>(block, pos);
  if (bits > 48) throw RuntimeError("malformed quant chunk block");
  std::vector<double> out(count);
  if (bits == 0) {
    for (double& x : out) x = lo;
    return out;
  }
  const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
  std::uint64_t acc = 0;
  unsigned acc_bits = 0;
  for (std::size_t i = 0; i < count; ++i) {
    while (acc_bits < bits) {
      if (pos >= block.size()) {
        throw RuntimeError("truncated SKL2 chunk block");
      }
      acc |= static_cast<std::uint64_t>(block[pos++]) << acc_bits;
      acc_bits += 8;
    }
    const std::uint64_t q = acc & mask;
    acc >>= bits;
    acc_bits -= bits;
    out[i] = lo + static_cast<double>(q) * step;
  }
  return out;
}

std::unique_ptr<Codec> make_codec(const std::string& name, double tolerance) {
  if (name == "raw") return std::make_unique<RawCodec>();
  if (name == "delta") return std::make_unique<DeltaCodec>();
  if (name == "quant") return std::make_unique<QuantCodec>(tolerance);
  throw RuntimeError("unknown store codec: " + name);
}

std::unique_ptr<Codec> make_codec(CodecId id, double tolerance) {
  switch (id) {
    case CodecId::kRaw:
      return std::make_unique<RawCodec>();
    case CodecId::kDelta:
      return std::make_unique<DeltaCodec>();
    case CodecId::kQuant:
      return std::make_unique<QuantCodec>(tolerance);
  }
  throw RuntimeError("unknown store codec id: " +
                     std::to_string(static_cast<int>(id)));
}

std::vector<std::string> codec_names() { return {"raw", "delta", "quant"}; }

}  // namespace sickle::store
