/// @file chunk_layout.hpp
/// @brief Fixed-size 3D chunk decomposition of a grid for the SKL2 store.
///
/// Unlike sampling's CubeTiling (which drops trailing partial cubes), the
/// store must cover every grid point, so edge chunks are allowed to be
/// partial. Chunk interiors are serialized z-fastest, matching the grid's
/// global index order, so spatially adjacent values stay adjacent for the
/// delta codec.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "field/field.hpp"

namespace sickle::store {

/// Maps global flat grid indices to (chunk id, local offset) and back.
class ChunkLayout {
 public:
  /// `chunk` holds the nominal chunk edge lengths; edges are clamped to the
  /// grid extents, so an oversized chunk spec degrades to one chunk.
  ChunkLayout(field::GridShape grid, field::GridShape chunk)
      : grid_(grid),
        chunk_{std::min(chunk.nx, grid.nx), std::min(chunk.ny, grid.ny),
               std::min(chunk.nz, grid.nz)} {
    SICKLE_CHECK_MSG(grid_.size() > 0, "cannot chunk an empty grid");
    SICKLE_CHECK_MSG(chunk_.nx > 0 && chunk_.ny > 0 && chunk_.nz > 0,
                     "chunk edges must be positive");
    ncx_ = (grid_.nx + chunk_.nx - 1) / chunk_.nx;
    ncy_ = (grid_.ny + chunk_.ny - 1) / chunk_.ny;
    ncz_ = (grid_.nz + chunk_.nz - 1) / chunk_.nz;
  }

  [[nodiscard]] const field::GridShape& grid() const noexcept {
    return grid_;
  }
  /// Nominal (interior) chunk edge lengths.
  [[nodiscard]] const field::GridShape& chunk_shape() const noexcept {
    return chunk_;
  }
  [[nodiscard]] std::size_t count() const noexcept {
    return ncx_ * ncy_ * ncz_;
  }
  [[nodiscard]] std::size_t chunks_x() const noexcept { return ncx_; }
  [[nodiscard]] std::size_t chunks_y() const noexcept { return ncy_; }
  [[nodiscard]] std::size_t chunks_z() const noexcept { return ncz_; }

  /// Extents of one chunk: grid origin + actual edge lengths (edge chunks
  /// may be smaller than the nominal shape).
  struct Box {
    std::size_t x0 = 0, y0 = 0, z0 = 0;
    std::size_t ex = 0, ey = 0, ez = 0;
    [[nodiscard]] std::size_t points() const noexcept { return ex * ey * ez; }
  };

  [[nodiscard]] Box box(std::size_t chunk_id) const {
    SICKLE_CHECK(chunk_id < count());
    const std::size_t ccz = chunk_id % ncz_;
    const std::size_t ccy = (chunk_id / ncz_) % ncy_;
    const std::size_t ccx = chunk_id / (ncz_ * ncy_);
    Box b;
    b.x0 = ccx * chunk_.nx;
    b.y0 = ccy * chunk_.ny;
    b.z0 = ccz * chunk_.nz;
    b.ex = std::min(chunk_.nx, grid_.nx - b.x0);
    b.ey = std::min(chunk_.ny, grid_.ny - b.y0);
    b.ez = std::min(chunk_.nz, grid_.nz - b.z0);
    return b;
  }

  /// Chunk containing a global flat grid index.
  [[nodiscard]] std::size_t chunk_of(std::size_t flat) const noexcept {
    const std::size_t iz = flat % grid_.nz;
    const std::size_t iy = (flat / grid_.nz) % grid_.ny;
    const std::size_t ix = flat / (grid_.nz * grid_.ny);
    return ((ix / chunk_.nx) * ncy_ + iy / chunk_.ny) * ncz_ + iz / chunk_.nz;
  }

  /// Position of a global flat grid index within its chunk's z-fastest
  /// serialization.
  [[nodiscard]] std::size_t local_offset(std::size_t flat) const noexcept {
    const std::size_t iz = flat % grid_.nz;
    const std::size_t iy = (flat / grid_.nz) % grid_.ny;
    const std::size_t ix = flat / (grid_.nz * grid_.ny);
    const std::size_t x0 = (ix / chunk_.nx) * chunk_.nx;
    const std::size_t y0 = (iy / chunk_.ny) * chunk_.ny;
    const std::size_t z0 = (iz / chunk_.nz) * chunk_.nz;
    const std::size_t ey = std::min(chunk_.ny, grid_.ny - y0);
    const std::size_t ez = std::min(chunk_.nz, grid_.nz - z0);
    return ((ix - x0) * ey + (iy - y0)) * ez + (iz - z0);
  }

 private:
  field::GridShape grid_;
  field::GridShape chunk_;
  std::size_t ncx_ = 1, ncy_ = 1, ncz_ = 1;
};

/// Append one POD value's bytes to a serialization buffer — shared by the
/// SKL2 and SKL3 index-section builders so the two cannot drift.
template <typename T>
void append_pod(std::vector<std::uint8_t>& buf, const T& v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  buf.insert(buf.end(), p, p + sizeof(T));
}

/// FNV-1a 64-bit over a byte range — the integrity checksum guarding the
/// SKL2/SKL3 index sections (and any other store metadata that must fail
/// loudly on a corrupt byte rather than decode garbage).
[[nodiscard]] inline std::uint64_t fnv1a64(
    std::span<const std::uint8_t> bytes,
    std::uint64_t seed = 1469598103934665603ull) {
  std::uint64_t h = seed;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

/// Copy one chunk's values out of a full field, z-fastest within the box —
/// the writer-side twin of ChunkLayout::local_offset, shared by the SKL2
/// and SKL3 writers.
[[nodiscard]] inline std::vector<double> extract_chunk(
    std::span<const double> data, const field::GridShape& grid,
    const ChunkLayout::Box& b) {
  std::vector<double> vals(b.points());
  std::size_t k = 0;
  for (std::size_t ix = b.x0; ix < b.x0 + b.ex; ++ix) {
    for (std::size_t iy = b.y0; iy < b.y0 + b.ey; ++iy) {
      const double* row = data.data() + grid.index(ix, iy, b.z0);
      for (std::size_t iz = 0; iz < b.ez; ++iz) vals[k++] = row[iz];
    }
  }
  return vals;
}

}  // namespace sickle::store
