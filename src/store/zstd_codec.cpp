/// @file zstd_codec.cpp
/// @brief Optional zstd-backed chunk codec (compiled only with
/// -DSICKLE_WITH_ZSTD=ON; the whole translation unit is empty otherwise so
/// the module glob can pick it up unconditionally).
///
/// Uses only zstd's stable simple API (ZSTD_compress / ZSTD_decompress),
/// so any libzstd >= 1.0 works, whether found on the system or fetched.

#ifdef SICKLE_HAS_ZSTD

#include <cstring>

#include <zstd.h>

#include "common/error.hpp"
#include "store/codec.hpp"

namespace sickle::store {

std::vector<std::uint8_t> ZstdCodec::encode(
    std::span<const double> values) const {
  const std::size_t raw_bytes = values.size() * sizeof(double);
  if (raw_bytes == 0) return {};
  std::vector<std::uint8_t> out(ZSTD_compressBound(raw_bytes));
  const std::size_t written =
      ZSTD_compress(out.data(), out.size(), values.data(), raw_bytes, level_);
  if (ZSTD_isError(written)) {
    throw RuntimeError(std::string("zstd compression failed: ") +
                       ZSTD_getErrorName(written));
  }
  out.resize(written);
  return out;
}

std::vector<double> ZstdCodec::decode(std::span<const std::uint8_t> block,
                                      std::size_t count) const {
  if (count == 0) {
    if (!block.empty()) throw RuntimeError("zstd chunk block has wrong size");
    return {};
  }
  std::vector<double> out(count);
  const std::size_t raw_bytes = count * sizeof(double);
  const std::size_t got =
      ZSTD_decompress(out.data(), raw_bytes, block.data(), block.size());
  if (ZSTD_isError(got)) {
    throw RuntimeError(std::string("malformed zstd chunk block: ") +
                       ZSTD_getErrorName(got));
  }
  if (got != raw_bytes) {
    throw RuntimeError("zstd chunk block has wrong decoded size");
  }
  return out;
}

}  // namespace sickle::store

#endif  // SICKLE_HAS_ZSTD
