/// @file series_store.hpp
/// @brief SKL3 multi-snapshot series container: streaming writer and a
/// SeriesSource reader with per-snapshot FieldSource views.
///
/// SKL2 (snapshot_store.hpp) stores one snapshot per file, so a T-step
/// time series pays T headers and T chunk indexes and every consumer must
/// juggle T paths. SKL3 puts the time axis into the chunk key: one
/// header, one index, blocks addressed by (snapshot, field, chunk). The
/// writer is *streaming* — encoded blocks are flushed to disk in waves
/// bounded by StoreOptions::write_budget_bytes as snapshots are appended,
/// and the index is written and patched into the header only on close(),
/// so writer memory stays O(budget + codec scratch + index) no matter how
/// long the series grows. A file whose writer crashed before close() has
/// no index and is rejected by SeriesReader with a clear error.
///
/// Format v2 adds an *index-resident summary block* — per-snapshot
/// per-variable [min, max] computed while the writer already sees every
/// value — plus an FNV-1a checksum over the whole index section. Readers
/// accept v1 files (no summary: value_range reports nullopt and consumers
/// fall back to scanning); a corrupted v2 index fails the checksum with a
/// clear error instead of decoding garbage. Format v4 further appends
/// per-snapshot per-variable *coarse histogram* counts
/// (field::kCoarseHistogramBins bins over the stored [min, max]) to each
/// index record — still covered by the index checksum — so temporal
/// selection on a sealed series seeds its novelty ranking with zero
/// payload decodes (coarse_histogram). Layout spec: docs/STORE.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "field/field.hpp"
#include "field/field_source.hpp"
#include "parallel/thread_pool.hpp"
#include "store/block_cache.hpp"
#include "store/chunk_layout.hpp"
#include "store/codec.hpp"
#include "store/snapshot_store.hpp"

namespace sickle::store {

/// How a SeriesReader caches and prefetches decoded blocks.
struct ReaderOptions {
  std::size_t cache_bytes = 64ull << 20;  ///< decoded-block LRU budget
  std::size_t shards = 0;                 ///< 0 = auto (see BlockCache)
  /// Async readahead depth: when a demand access advances into a new
  /// block, the next `prefetch_depth` blocks of the same snapshot+field
  /// are read and decoded on the pool while the caller consumes the
  /// current one. 0 disables readahead entirely (no pool touched, no
  /// extra threads) — and prefetch NEVER changes decoded values, only
  /// when they are decoded, so results are bit-identical either way.
  std::size_t prefetch_depth = 0;
  /// Pool running prefetch decodes; nullptr = ThreadPool::global().
  /// Ignored when prefetch_depth == 0.
  ThreadPool* pool = nullptr;
  /// Decode into this externally owned cache instead of a private one.
  /// Keys are salted with an FNV-1a hash of the container path, so any
  /// number of readers over different files share one byte budget without
  /// key collisions (same-file readers share decoded blocks). The cache
  /// must outlive the reader; `cache_bytes`/`shards` are ignored when
  /// set. cache_stats() then reports the shared cache's lifetime tallies.
  BlockCache* shared_cache = nullptr;
};

/// What a SeriesWriter did, returned by close().
struct SeriesWriteReport {
  std::size_t file_bytes = 0;     ///< total container size on disk
  std::size_t payload_bytes = 0;  ///< encoded chunk payload only
  std::size_t raw_bytes = 0;      ///< snapshots * nfields * points * 8
  std::size_t chunks = 0;         ///< blocks written
  std::size_t snapshots = 0;      ///< appended snapshot count
  /// Header + per-series chunk index bytes — the fixed cost one SKL3
  /// container amortizes over the whole series (vs one per SKL2 file).
  std::size_t meta_bytes = 0;
  /// High-water mark of encoded blocks buffered in memory at any point —
  /// the streaming guarantee: bounded by write_budget_bytes (plus one
  /// wave's codec expansion), never by the series size.
  std::size_t peak_buffered_bytes = 0;
  double encode_seconds = 0.0;  ///< wall time in chunk extraction + encode

  [[nodiscard]] double compression_ratio() const noexcept {
    return file_bytes == 0 ? 0.0
                           : static_cast<double>(raw_bytes) /
                                 static_cast<double>(file_bytes);
  }
};

/// Streaming SKL3 writer: append snapshots one at a time, close() to seal.
///
/// The grid shape, variable set, and codec are locked in by the first
/// append(); later snapshots must match. Encoded blocks are written as
/// they encode (in raw-size-bounded waves, parallel on opts.pool), so
/// appending a series much larger than the write budget never grows the
/// writer's memory. close() writes the per-snapshot time + chunk index
/// section and patches its offset into the header; a writer destroyed
/// without close() leaves a file with no index, which SeriesReader
/// detects and rejects.
class SeriesWriter {
 public:
  SeriesWriter(const std::string& path, const StoreOptions& opts = {});
  ~SeriesWriter() = default;

  SeriesWriter(const SeriesWriter&) = delete;
  SeriesWriter& operator=(const SeriesWriter&) = delete;

  /// Encode and stream one snapshot's blocks to disk. Throws RuntimeError
  /// on I/O failure and CheckError on shape/variable mismatch or append
  /// after close.
  void append(const field::Snapshot& snap);

  /// Write the index, patch the header, flush, and return the report.
  /// Requires at least one appended snapshot.
  SeriesWriteReport close();

  [[nodiscard]] std::size_t snapshots_appended() const noexcept {
    return times_.size();
  }
  [[nodiscard]] bool closed() const noexcept { return closed_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  StoreOptions opts_;
  std::uint32_t version_;  ///< format version being written (1, 2, or 3)
  std::ofstream out_;
  std::unique_ptr<Codec> codec_;
  std::unique_ptr<ChunkLayout> layout_;  ///< set by the first append
  std::vector<std::string> names_;
  std::uint64_t patch_pos_ = 0;  ///< header position of index_offset
  std::vector<double> times_;    ///< one per appended snapshot
  std::vector<BlockRef> index_;  ///< [(t * nfields + f) * nchunks + c]
  std::vector<field::VarRange> summaries_;  ///< [t * nfields + f], v2 only
  /// Coarse histogram counts, v4 only:
  /// [(t * nfields + f) * field::kCoarseHistogramBins + bin].
  std::vector<std::uint64_t> hists_;
  SeriesWriteReport report_;
  bool closed_ = false;
};

class SeriesReader;

/// Lightweight FieldSource view of one snapshot inside an SKL3 container.
/// Borrowed from SeriesReader; shares its block cache and file handle.
class SeriesSnapshotView final : public field::FieldSource {
 public:
  [[nodiscard]] const field::GridShape& shape() const noexcept override;
  [[nodiscard]] std::vector<std::string> variables() const override;
  [[nodiscard]] bool has(const std::string& var) const override;
  void gather(const std::string& var, std::span<const std::size_t> idx,
              std::span<double> out) const override;
  using field::FieldSource::gather;
  [[nodiscard]] double time() const noexcept override;

  [[nodiscard]] std::size_t snapshot_index() const noexcept { return t_; }

 private:
  friend class SeriesReader;
  SeriesSnapshotView(const SeriesReader* reader, std::size_t t) noexcept
      : reader_(reader), t_(t) {}

  const SeriesReader* reader_;
  std::size_t t_;
};

/// Streaming reader over an SKL3 series container.
///
/// Implements field::SeriesSource: source(t) exposes snapshot t as a
/// FieldSource view, so the sampling pipeline, temporal selection, and
/// the case orchestrator run over a series on disk exactly as over an
/// in-memory Dataset. All views share one sharded byte-bounded LRU block
/// cache (store::BlockCache) and one pread(2) descriptor, so the whole
/// series streams in O(cache) memory and any number of threads may
/// gather from any mix of snapshots concurrently — the same contract as
/// ChunkReader, now with a time axis.
class SeriesReader final : public field::SeriesSource {
 public:
  explicit SeriesReader(const std::string& path,
                        std::size_t cache_bytes = 64ull << 20,
                        std::size_t shards = 0);
  /// Full-options form; the (path, cache_bytes, shards) overload is
  /// shorthand for ReaderOptions with readahead off.
  SeriesReader(const std::string& path, const ReaderOptions& opts);
  /// Drains in-flight prefetch tasks before any member is torn down.
  ~SeriesReader() override;

  SeriesReader(const SeriesReader&) = delete;
  SeriesReader& operator=(const SeriesReader&) = delete;

  // SeriesSource interface.
  [[nodiscard]] std::size_t num_snapshots() const override {
    return times_.size();
  }
  [[nodiscard]] const field::FieldSource& source(
      std::size_t t) const override {
    SICKLE_CHECK(t < views_.size());
    return views_[t];
  }
  [[nodiscard]] double time(std::size_t t) const override {
    SICKLE_CHECK(t < times_.size());
    return times_[t];
  }
  /// Index-resident summary (format v2): exact per-snapshot [min, max] of
  /// one variable, read from the index without touching the payload.
  /// nullopt for v1 files — consumers (temporal selection) then fall back
  /// to a full range scan. For the lossy quant codec the summary reflects
  /// the pre-encode values (within codec tolerance of the decoded ones).
  [[nodiscard]] std::optional<field::VarRange> value_range(
      std::size_t t, const std::string& var) const override;
  /// Index-resident coarse histogram (format v4): counts of the canonical
  /// field::kCoarseHistogramBins-bin histogram of one variable over its
  /// stored per-snapshot [min, max], read from the index without touching
  /// the payload. nullopt for v1-v3 files — consumers (temporal
  /// selection) then fall back to a streamed scan. Same quant-codec
  /// caveat as value_range: counts describe the pre-encode values.
  [[nodiscard]] std::optional<std::vector<std::uint64_t>> coarse_histogram(
      std::size_t t, const std::string& var) const override;

  [[nodiscard]] const field::GridShape& shape() const noexcept {
    return layout_.grid();
  }
  [[nodiscard]] const ChunkLayout& layout() const noexcept { return layout_; }
  [[nodiscard]] std::vector<std::string> variables() const {
    return names_;
  }
  [[nodiscard]] const std::string& codec_name() const noexcept {
    return codec_name_;
  }
  [[nodiscard]] std::size_t num_fields() const noexcept {
    return names_.size();
  }

  /// Decoded values of one chunk of one field of one snapshot, z-fastest
  /// within the chunk. Valid after eviction (shared ownership). When
  /// readahead is on (ReaderOptions::prefetch_depth > 0) a demand access
  /// that advances into a new block also schedules async decodes of the
  /// following blocks of the same snapshot+field — identical values,
  /// earlier decode.
  [[nodiscard]] std::shared_ptr<const std::vector<double>> chunk(
      std::size_t t, std::size_t field_index, std::size_t chunk_id) const;

  /// Materialize one snapshot — for tests and small grids.
  [[nodiscard]] field::Snapshot load_snapshot(std::size_t t) const;

  using CacheStats = store::CacheStats;
  [[nodiscard]] CacheStats cache_stats() const { return cache_->stats(); }
  /// Block until every queued readahead decode has landed in the cache —
  /// deterministic prefetch counters for tests/benches; demand reads
  /// never need it (they load any block not yet resident themselves).
  void drain_prefetch() const {
    if (prefetch_group_) prefetch_group_->wait();
  }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return cache_->shard_count();
  }
  /// Container format version (1 = no summary block, 2 = summary block +
  /// index checksum, 3 = v2 plus per-block payload checksums, 4 = v3 plus
  /// index-resident coarse histogram summaries).
  [[nodiscard]] std::uint32_t format_version() const noexcept {
    return version_;
  }
  [[nodiscard]] bool has_summaries() const noexcept {
    return !summaries_.empty();
  }
  [[nodiscard]] bool has_histograms() const noexcept {
    return !histograms_.empty();
  }
  /// Total bytes fetched from the file since open (header + index +
  /// payload) — I/O accounting for single-pass assertions.
  [[nodiscard]] std::uint64_t io_bytes_read() const noexcept {
    return file_->bytes_read();
  }

 private:
  friend class SeriesSnapshotView;
  struct BlockRef {
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
    std::uint64_t checksum = 0;
  };

  /// Read + decode one block by flat index key (no cache interaction).
  [[nodiscard]] BlockCache::Block load_block(std::uint64_t key) const;
  /// Queue async decodes of the blocks after `chunk_id` in (t, f) — up to
  /// prefetch_depth_, clipped to the snapshot+field, skipping resident
  /// blocks and keys behind the monotone issue frontier (so overlapping
  /// demand accesses never double-issue). Advisory: task failures are
  /// swallowed; the demand path rediscovers and reports them.
  void schedule_prefetch(std::size_t t, std::size_t f,
                         std::size_t chunk_id) const;

  std::unique_ptr<ReadOnlyFile> file_;
  ChunkLayout layout_{{1, 1, 1}, {1, 1, 1}};
  std::uint32_t version_ = 0;
  std::vector<std::string> names_;
  std::map<std::string, std::size_t> field_index_;
  std::unique_ptr<Codec> codec_;
  std::string codec_name_;
  std::vector<double> times_;
  std::vector<BlockRef> index_;  ///< [(t * nfields + f) * nchunks + c]
  std::vector<field::VarRange> summaries_;  ///< [t * nfields + f], v2 only
  /// Coarse histogram counts, v4 only:
  /// [(t * nfields + f) * field::kCoarseHistogramBins + bin].
  std::vector<std::uint64_t> histograms_;
  std::vector<SeriesSnapshotView> views_;  ///< one borrowable view per t
  std::unique_ptr<BlockCache> owned_cache_;  ///< null when sharing
  BlockCache* cache_ = nullptr;  ///< owned_cache_.get() or the shared one
  /// XORed into every cache key (0 for a private cache; fnv1a64 of the
  /// container path when sharing) so distinct files never collide in a
  /// shared cache. load_block() always takes the UNsalted flat key.
  std::uint64_t key_salt_ = 0;
  std::size_t prefetch_depth_ = 0;
  ThreadPool* prefetch_pool_ = nullptr;
  /// Highest block key ever queued for readahead, plus one — a monotone
  /// frontier so interleaved demand accesses on one stream issue each
  /// block at most once.
  mutable std::atomic<std::uint64_t> prefetch_next_{0};
  /// MUST stay the last member: its destruction (first, in reverse
  /// declaration order) waits for in-flight prefetch tasks, which touch
  /// file_/cache_/index_ — all still alive at that point.
  mutable std::unique_ptr<TaskGroup> prefetch_group_;
};

}  // namespace sickle::store
