#include "store/series_store.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "stats/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"

namespace sickle::store {

namespace {

constexpr char kMagic[4] = {'S', 'K', 'L', '3'};
/// v1: trailing index of [time, block refs] per snapshot. v2 appends a
/// per-snapshot per-field [min, max] summary to each index record and an
/// FNV-1a checksum over the index section to the header. v3 widens every
/// block ref with an FNV-1a checksum of the block's encoded payload,
/// verified before each decode. v4 appends per-snapshot per-field coarse
/// histogram counts (field::kCoarseHistogramBins u64s over the stored
/// [min, max]) after the summary doubles — covered by the same index
/// checksum — so temporal selection can seed its novelty ranking without
/// decoding a single payload block.
constexpr std::uint32_t kVersionLegacy = 1;
constexpr std::uint32_t kVersionLatest = 4;

/// Block-ref width in u64s: v3 adds the per-block payload checksum.
constexpr std::size_t entry_words(std::uint32_t version) {
  return version >= 3 ? 3 : 2;
}

template <typename T>
void write_pod(std::ofstream& f, const T& v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_at(std::span<const std::uint8_t> buf, std::size_t& pos,
          const std::string& path) {
  if (pos + sizeof(T) > buf.size()) {
    throw RuntimeError("truncated SKL3 file: " + path);
  }
  T v{};
  std::memcpy(&v, buf.data() + pos, sizeof(T));
  pos += sizeof(T);
  return v;
}

/// Cursor over the header region of an SKL3 file: reads a window up
/// front and grows it on demand, so a header with an arbitrarily large
/// names section (the writer puts no bound on name lengths) parses
/// without guessing its size — only a genuinely short file reports
/// truncation.
class HeaderCursor {
 public:
  HeaderCursor(const ReadOnlyFile& file, std::uint64_t file_size,
               const std::string& path)
      : file_(file), file_size_(file_size), path_(path) {
    buf_ = file_.read(0, std::min<std::uint64_t>(file_size_, 64u << 10));
  }

  template <typename T>
  T read() {
    ensure(sizeof(T));
    T v{};
    std::memcpy(&v, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string read_string(std::size_t len) {
    ensure(len);
    std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), len);
    pos_ += len;
    return s;
  }

 private:
  void ensure(std::size_t need) {
    if (pos_ + need <= buf_.size()) return;
    if (pos_ + need > file_size_) {
      throw RuntimeError("truncated SKL3 file: " + path_);
    }
    const std::uint64_t want = std::min<std::uint64_t>(
        file_size_, std::max<std::uint64_t>(2 * buf_.size(), pos_ + need));
    buf_ = file_.read(0, want);
  }

  const ReadOnlyFile& file_;
  std::uint64_t file_size_;
  const std::string& path_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

}  // namespace

// ---------------------------------------------------------------- writer

SeriesWriter::SeriesWriter(const std::string& path, const StoreOptions& opts)
    : path_(path),
      opts_(opts),
      version_(opts.format_version == 0 ? kVersionLatest
                                        : opts.format_version),
      codec_(make_codec(opts.codec, opts.tolerance)) {
  SICKLE_CHECK_MSG(version_ >= kVersionLegacy && version_ <= kVersionLatest,
                   "unsupported SKL3 format_version requested");
  // Open eagerly: an unwritable path must fail at construction, not after
  // the caller simulated its first snapshot.
  out_.open(path, std::ios::binary);
  if (!out_) throw RuntimeError("cannot open for write: " + path);
}

void SeriesWriter::append(const field::Snapshot& snap) {
  obs::Span span("store.append", "store");
  SICKLE_CHECK_MSG(!closed_, "append() on a closed SeriesWriter");
  if (layout_ == nullptr) {
    // First snapshot locks grid, layout, and variable set, and writes the
    // header with placeholder index fields (patched by close()).
    layout_ = std::make_unique<ChunkLayout>(snap.shape(), opts_.chunk);
    names_ = snap.names();
    SICKLE_CHECK_MSG(!names_.empty(), "cannot store a snapshot with no fields");
    out_.write(kMagic, 4);
    write_pod<std::uint32_t>(out_, version_);
    write_pod<std::uint64_t>(out_, snap.shape().nx);
    write_pod<std::uint64_t>(out_, snap.shape().ny);
    write_pod<std::uint64_t>(out_, snap.shape().nz);
    write_pod<std::uint64_t>(out_, layout_->chunk_shape().nx);
    write_pod<std::uint64_t>(out_, layout_->chunk_shape().ny);
    write_pod<std::uint64_t>(out_, layout_->chunk_shape().nz);
    write_pod<std::uint8_t>(out_, static_cast<std::uint8_t>(codec_->id()));
    write_pod<double>(out_, opts_.tolerance);
    write_pod<std::uint64_t>(out_, names_.size());
    for (const auto& name : names_) {
      write_pod<std::uint32_t>(out_, static_cast<std::uint32_t>(name.size()));
      out_.write(name.data(), static_cast<std::streamsize>(name.size()));
    }
    write_pod<std::uint64_t>(out_, layout_->count());
    patch_pos_ = static_cast<std::uint64_t>(out_.tellp());
    write_pod<std::uint64_t>(out_, 0);  // index_offset: 0 = not sealed
    write_pod<std::uint64_t>(out_, 0);  // num_snapshots
    if (version_ >= 2) {
      write_pod<std::uint64_t>(out_, 0);  // index checksum (patched)
    }
    if (!out_) throw RuntimeError("error writing: " + path_);
    report_.meta_bytes = static_cast<std::size_t>(out_.tellp());
  } else {
    SICKLE_CHECK_MSG(snap.shape() == layout_->grid(),
                     "snapshot grid does not match the series");
    SICKLE_CHECK_MSG(snap.names() == names_,
                     "snapshot variables do not match the series");
  }

  const std::size_t nchunks = layout_->count();
  const std::size_t total = names_.size() * nchunks;
  times_.push_back(snap.time());
  report_.raw_bytes += snap.bytes();
  report_.chunks += total;

  // Index-resident summary block (v2): the writer sees every value anyway,
  // so per-variable [min, max] is one cheap extra scan here and saves the
  // reader a full range pass over the series during temporal selection.
  if (version_ >= 2) {
    for (const auto& name : names_) {
      const auto data = snap.get(name).data();
      // Seed from +/-inf exactly like the reader-side fallback scan
      // (sampling::snapshot_pmfs), so both paths skip NaNs identically —
      // a NaN-seeded summary would silently poison the selection range.
      field::VarRange r{std::numeric_limits<double>::infinity(),
                        -std::numeric_limits<double>::infinity()};
      for (const double x : data) {
        r.min = std::min(r.min, x);
        r.max = std::max(r.max, x);
      }
      summaries_.push_back(r);
      if (version_ >= 4) {
        // Coarse histogram over the snapshot's OWN range, through the
        // same stats::Histogram kernel the reader-side scan fallback
        // (sampling) uses — the kCoarseHistogramBins contract in
        // field_source.hpp — so index-resident and scanned counts are
        // bit-identical for lossless codecs.
        double lo = r.min;
        double hi = r.max;
        if (!(hi > lo)) {
          lo -= 0.5;
          hi += 0.5;
        }
        if (std::isfinite(lo) && std::isfinite(hi) && hi > lo) {
          stats::Histogram h(lo, hi, field::kCoarseHistogramBins);
          h.add(data);
          for (const std::size_t c : h.counts()) {
            hists_.push_back(static_cast<std::uint64_t>(c));
          }
        } else {
          // All-NaN field: no finite range exists; store zero counts (the
          // scan fallback produces the same).
          hists_.insert(hists_.end(), field::kCoarseHistogramBins, 0);
        }
      }
    }
  }

  // Stream in waves (write_blocks_in_waves, shared with the SKL2 v2
  // writer): encode a raw-size-bounded run of blocks in parallel, flush
  // it, drop it. Peak writer memory is one wave of encoded blocks
  // (<= budget + the codec's worst-case expansion) plus codec scratch —
  // never the snapshot, never the series.
  const WaveWriteStats stats =
      write_blocks_in_waves(snap, *layout_, names_, *codec_, opts_.pool,
                            opts_.write_budget_bytes, out_, path_, index_);
  report_.payload_bytes += stats.payload_bytes;
  report_.peak_buffered_bytes =
      std::max(report_.peak_buffered_bytes, stats.peak_buffered_bytes);
  report_.encode_seconds += stats.encode_seconds;
}

SeriesWriteReport SeriesWriter::close() {
  SICKLE_CHECK_MSG(!closed_, "close() on a closed SeriesWriter");
  SICKLE_CHECK_MSG(!times_.empty(),
                   "cannot close an SKL3 series with no snapshots");
  closed_ = true;
  const std::uint64_t index_offset = static_cast<std::uint64_t>(out_.tellp());
  const std::size_t nfields = names_.size();
  const std::size_t nchunks = layout_->count();
  // Build the index section in memory (it is O(series meta), tiny next to
  // the payload) so the v2 checksum covers exactly the bytes on disk.
  std::vector<std::uint8_t> section;
  section.reserve(times_.size() *
                  (sizeof(double) +
                   (version_ >= 2 ? nfields * 2 * sizeof(double) : 0) +
                   (version_ >= 4 ? nfields * field::kCoarseHistogramBins *
                                        sizeof(std::uint64_t)
                                  : 0) +
                   nfields * nchunks * entry_words(version_) *
                       sizeof(std::uint64_t)));
  for (std::size_t t = 0; t < times_.size(); ++t) {
    append_pod<double>(section, times_[t]);
    if (version_ >= 2) {
      for (std::size_t f = 0; f < nfields; ++f) {
        const field::VarRange& r = summaries_[t * nfields + f];
        append_pod<double>(section, r.min);
        append_pod<double>(section, r.max);
      }
    }
    if (version_ >= 4) {
      const std::size_t base = t * nfields * field::kCoarseHistogramBins;
      for (std::size_t i = 0; i < nfields * field::kCoarseHistogramBins;
           ++i) {
        append_pod<std::uint64_t>(section, hists_[base + i]);
      }
    }
    for (std::size_t b = 0; b < nfields * nchunks; ++b) {
      const BlockRef& ref = index_[t * nfields * nchunks + b];
      append_pod<std::uint64_t>(section, ref.offset);
      append_pod<std::uint64_t>(section, ref.bytes);
      if (version_ >= 3) append_pod<std::uint64_t>(section, ref.checksum);
    }
  }
  out_.write(reinterpret_cast<const char*>(section.data()),
             static_cast<std::streamsize>(section.size()));
  const std::uint64_t end = static_cast<std::uint64_t>(out_.tellp());
  // Seal the container: only now does a reader accept it. A crash before
  // this point leaves index_offset = 0, which SeriesReader rejects with a
  // "no index" error instead of reading garbage.
  out_.seekp(static_cast<std::streamoff>(patch_pos_));
  write_pod<std::uint64_t>(out_, index_offset);
  write_pod<std::uint64_t>(out_, static_cast<std::uint64_t>(times_.size()));
  if (version_ >= 2) {
    write_pod<std::uint64_t>(
        out_, fnv1a64(std::span<const std::uint8_t>(section)));
  }
  out_.flush();
  if (!out_) throw RuntimeError("error writing: " + path_);
  out_.close();
  report_.snapshots = times_.size();
  report_.meta_bytes += static_cast<std::size_t>(end - index_offset);
  report_.file_bytes =
      static_cast<std::size_t>(std::filesystem::file_size(path_));
  return report_;
}

// ---------------------------------------------------------------- reader

SeriesReader::SeriesReader(const std::string& path, std::size_t cache_bytes,
                           std::size_t shards)
    : SeriesReader(path, ReaderOptions{cache_bytes, shards, 0, nullptr}) {}

// Default member-wise teardown does the draining: prefetch_group_ is the
// last member, so it is destroyed first and its TaskGroup dtor waits for
// in-flight readahead tasks while file_/cache_/index_ are still alive.
SeriesReader::~SeriesReader() = default;

SeriesReader::SeriesReader(const std::string& path,
                           const ReaderOptions& ropts) {
  file_ = std::make_unique<ReadOnlyFile>(path);
  const auto file_size =
      static_cast<std::uint64_t>(std::filesystem::file_size(path));
  // The fixed-size header prefix: magic + version + grid + chunk + codec
  // + tolerance + nfields.
  constexpr std::size_t kPrefix = 4 + 4 + 6 * 8 + 1 + 8 + 8;
  if (file_size < kPrefix) throw RuntimeError("truncated SKL3 file: " + path);
  HeaderCursor head(*file_, file_size, path);
  char magic[4];
  magic[0] = static_cast<char>(head.read<std::uint8_t>());
  magic[1] = static_cast<char>(head.read<std::uint8_t>());
  magic[2] = static_cast<char>(head.read<std::uint8_t>());
  magic[3] = static_cast<char>(head.read<std::uint8_t>());
  if (std::memcmp(magic, kMagic, 4) != 0) {
    throw RuntimeError("not an SKL3 series file: " + path);
  }
  version_ = head.read<std::uint32_t>();
  if (version_ < kVersionLegacy || version_ > kVersionLatest) {
    throw RuntimeError("unsupported SKL3 version in " + path);
  }
  field::GridShape grid;
  grid.nx = head.read<std::uint64_t>();
  grid.ny = head.read<std::uint64_t>();
  grid.nz = head.read<std::uint64_t>();
  // Bound the extents before any product is formed: corrupt dims must
  // not overflow grid.size()/layout counts into "plausible" values.
  SICKLE_CHECK_MSG(grid.nx > 0 && grid.ny > 0 && grid.nz > 0 &&
                       grid.nx < (1ull << 21) && grid.ny < (1ull << 21) &&
                       grid.nz < (1ull << 21),
                   "implausible grid extents in SKL3");
  field::GridShape chunk;
  chunk.nx = head.read<std::uint64_t>();
  chunk.ny = head.read<std::uint64_t>();
  chunk.nz = head.read<std::uint64_t>();
  layout_ = ChunkLayout(grid, chunk);
  const auto codec_id = head.read<std::uint8_t>();
  const auto tolerance = head.read<double>();
  codec_ = make_codec(static_cast<CodecId>(codec_id), tolerance);
  codec_name_ = codec_->name();
  const auto nfields = head.read<std::uint64_t>();
  SICKLE_CHECK_MSG(nfields > 0 && nfields < 1024,
                   "implausible field count in SKL3");
  names_.reserve(nfields);
  for (std::uint64_t i = 0; i < nfields; ++i) {
    const auto len = head.read<std::uint32_t>();
    // Same corruption guard as SKL2: a bogus length must not trigger a
    // huge allocation. (The cursor itself only grows to the file size.)
    SICKLE_CHECK_MSG(len < (1u << 20), "implausible name length in SKL3");
    std::string name = head.read_string(len);
    field_index_[name] = i;
    names_.push_back(std::move(name));
  }
  const auto nchunks = head.read<std::uint64_t>();
  SICKLE_CHECK_MSG(nchunks == layout_.count(),
                   "SKL3 chunk count does not match its grid/chunk shape");
  const auto index_offset = head.read<std::uint64_t>();
  const auto num_snapshots = head.read<std::uint64_t>();
  const std::uint64_t index_checksum =
      version_ >= 2 ? head.read<std::uint64_t>() : 0;
  if (index_offset == 0 || num_snapshots == 0) {
    throw RuntimeError(
        "SKL3 series has no index — the writer was not closed "
        "(crashed or truncated write): " + path);
  }
  SICKLE_CHECK_MSG(num_snapshots < (1u << 24),
                   "implausible snapshot count in SKL3");
  // Every index entry occupies entry_bytes in the file, so the entry
  // count is bounded by file_size/entry_bytes. Checking with divisions
  // (never products) keeps a corrupt header from overflowing the
  // arithmetic below into a small index_bytes that would slip past the
  // bounds check.
  const std::uint64_t entry_bytes =
      entry_words(version_) * sizeof(std::uint64_t);
  const std::uint64_t entry_cap = file_size / entry_bytes;
  if (nchunks == 0 || nfields > entry_cap / nchunks ||
      num_snapshots > entry_cap / (nfields * nchunks)) {
    throw RuntimeError("SKL3 index does not fit the file (corrupt?): " +
                       path);
  }
  const std::uint64_t blocks_per_snap = nfields * nchunks;
  // v2+ index records carry nfields [min, max] summary doubles after the
  // snapshot time; v4 adds nfields * kCoarseHistogramBins u64 histogram
  // counts after the summaries. (nfields < 1024 and num_snapshots < 2^24,
  // so neither term can overflow.)
  const std::uint64_t summary_bytes =
      version_ >= 2 ? nfields * 2 * sizeof(double) : 0;
  const std::uint64_t hist_bytes =
      version_ >= 4
          ? nfields * field::kCoarseHistogramBins * sizeof(std::uint64_t)
          : 0;
  const std::uint64_t index_bytes =
      num_snapshots * (sizeof(double) + summary_bytes + hist_bytes +
                       blocks_per_snap * entry_bytes);
  if (index_offset > file_size || index_bytes > file_size - index_offset) {
    throw RuntimeError("SKL3 index points outside the file (truncated?): " +
                       path);
  }

  const auto raw_index = file_->read(index_offset, index_bytes);
  // Verify integrity before parsing a single entry: any flipped byte in
  // the index section must fail loudly, not seek to a "plausible" offset.
  if (version_ >= 2 &&
      fnv1a64(std::span<const std::uint8_t>(raw_index)) != index_checksum) {
    throw RuntimeError("SKL3 index checksum mismatch (corrupt index): " +
                       path);
  }
  std::size_t ipos = 0;
  times_.reserve(num_snapshots);
  index_.resize(num_snapshots * blocks_per_snap);
  if (version_ >= 2) summaries_.reserve(num_snapshots * nfields);
  if (version_ >= 4) {
    histograms_.reserve(num_snapshots * nfields *
                        field::kCoarseHistogramBins);
  }
  for (std::uint64_t t = 0; t < num_snapshots; ++t) {
    times_.push_back(read_at<double>(raw_index, ipos, path));
    if (version_ >= 2) {
      for (std::uint64_t f = 0; f < nfields; ++f) {
        field::VarRange r;
        r.min = read_at<double>(raw_index, ipos, path);
        r.max = read_at<double>(raw_index, ipos, path);
        summaries_.push_back(r);
      }
    }
    if (version_ >= 4) {
      for (std::uint64_t i = 0;
           i < nfields * field::kCoarseHistogramBins; ++i) {
        histograms_.push_back(
            read_at<std::uint64_t>(raw_index, ipos, path));
      }
    }
    for (std::uint64_t b = 0; b < blocks_per_snap; ++b) {
      BlockRef& ref = index_[t * blocks_per_snap + b];
      ref.offset = read_at<std::uint64_t>(raw_index, ipos, path);
      ref.bytes = read_at<std::uint64_t>(raw_index, ipos, path);
      if (version_ >= 3) {
        ref.checksum = read_at<std::uint64_t>(raw_index, ipos, path);
      }
      // Reject corrupt entries here rather than letting chunk() make an
      // unchecked (possibly huge) allocation later.
      if (ref.offset > file_size || ref.bytes > file_size - ref.offset) {
        throw RuntimeError("SKL3 chunk index points outside the file: " +
                           path);
      }
    }
  }
  views_.reserve(num_snapshots);
  for (std::uint64_t t = 0; t < num_snapshots; ++t) {
    views_.push_back(SeriesSnapshotView(this, t));
  }

  if (ropts.shared_cache != nullptr) {
    // Shared mode: salt every key with the container path so readers over
    // different files divide one byte budget without colliding, while
    // readers of the SAME path share decoded blocks.
    cache_ = ropts.shared_cache;
    key_salt_ = fnv1a64(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(path.data()), path.size()));
  } else {
    const std::size_t chunk_bytes =
        layout_.chunk_shape().size() * sizeof(double);
    owned_cache_ = std::make_unique<BlockCache>(ropts.cache_bytes,
                                                chunk_bytes, ropts.shards);
    cache_ = owned_cache_.get();
  }
  prefetch_depth_ = ropts.prefetch_depth;
  if (prefetch_depth_ > 0) {
    prefetch_pool_ = ropts.pool != nullptr ? ropts.pool : &ThreadPool::global();
    prefetch_group_ = std::make_unique<TaskGroup>(*prefetch_pool_);
  }
}

std::optional<field::VarRange> SeriesReader::value_range(
    std::size_t t, const std::string& var) const {
  SICKLE_CHECK(t < times_.size());
  if (summaries_.empty()) return std::nullopt;  // v1: no summary block
  const auto it = field_index_.find(var);
  SICKLE_CHECK_MSG(it != field_index_.end(), "unknown field: " + var);
  return summaries_[t * names_.size() + it->second];
}

std::optional<std::vector<std::uint64_t>> SeriesReader::coarse_histogram(
    std::size_t t, const std::string& var) const {
  SICKLE_CHECK(t < times_.size());
  if (histograms_.empty()) return std::nullopt;  // v1-v3: no histogram block
  const auto it = field_index_.find(var);
  SICKLE_CHECK_MSG(it != field_index_.end(), "unknown field: " + var);
  const std::size_t base =
      (t * names_.size() + it->second) * field::kCoarseHistogramBins;
  return std::vector<std::uint64_t>(
      histograms_.begin() + static_cast<std::ptrdiff_t>(base),
      histograms_.begin() +
          static_cast<std::ptrdiff_t>(base + field::kCoarseHistogramBins));
}

BlockCache::Block SeriesReader::load_block(std::uint64_t key) const {
  obs::Span load_span("store.load_chunk", "store");
  const std::size_t chunk_id = key % layout_.count();
  const auto block = file_->read(index_[key].offset, index_[key].bytes);
  if (version_ >= 3 &&
      fnv1a64(std::span<const std::uint8_t>(block)) !=
          index_[key].checksum) {
    throw RuntimeError("SKL3 chunk checksum mismatch (corrupt block)");
  }
  if (obs::enabled()) {
    obs::Span decode_span("codec.decode", "codec");
    Timer decode_timer;
    auto values = std::make_shared<const std::vector<double>>(
        codec_->decode(std::span<const std::uint8_t>(block),
                       layout_.box(chunk_id).points()));
    obs::MetricsRegistry::global()
        .gauge("codec.decode_seconds")
        .add(decode_timer.seconds());
    return values;
  }
  return std::make_shared<const std::vector<double>>(
      codec_->decode(std::span<const std::uint8_t>(block),
                     layout_.box(chunk_id).points()));
}

void SeriesReader::schedule_prefetch(std::size_t t, std::size_t f,
                                     std::size_t chunk_id) const {
  const std::uint64_t nchunks = layout_.count();
  const std::uint64_t base = (t * names_.size() + f) * nchunks;
  const std::uint64_t key = base + chunk_id;
  const std::uint64_t last =
      base + std::min<std::uint64_t>(chunk_id + prefetch_depth_, nchunks - 1);
  // Claim (frontier, last] atomically: the frontier only moves forward,
  // so overlapping demand accesses on one stream issue each block at most
  // once. (Interleaved streams share the frontier — the higher-key stream
  // wins; readahead is advisory, correctness never depends on it.)
  std::uint64_t prev = prefetch_next_.load(std::memory_order_relaxed);
  while (prev < last + 1 &&
         !prefetch_next_.compare_exchange_weak(prev, last + 1,
                                               std::memory_order_relaxed)) {
  }
  const std::uint64_t first = std::max(key + 1, prev);
  for (std::uint64_t k = first; k <= last; ++k) {
    if (cache_->contains(key_salt_ ^ k)) continue;
    prefetch_group_->run([this, k] {
      try {
        cache_->insert_prefetched(key_salt_ ^ k, load_block(k));
      } catch (...) {
        // Advisory readahead: drop the failure (I/O error, corrupt
        // block); the demand path rediscovers and reports it.
      }
    });
  }
}

std::shared_ptr<const std::vector<double>> SeriesReader::chunk(
    std::size_t t, std::size_t field_index, std::size_t chunk_id) const {
  SICKLE_CHECK(t < times_.size() && field_index < names_.size() &&
               chunk_id < layout_.count());
  const std::uint64_t key =
      (t * names_.size() + field_index) * layout_.count() + chunk_id;
  bool frontier = false;
  auto values = cache_->get(
      key_salt_ ^ key,
      [&]() -> BlockCache::Block { return load_block(key); },
      prefetch_depth_ > 0 ? &frontier : nullptr);
  if (frontier) schedule_prefetch(t, field_index, chunk_id);
  return values;
}

field::Snapshot SeriesReader::load_snapshot(std::size_t t) const {
  SICKLE_CHECK(t < times_.size());
  const auto& grid = layout_.grid();
  field::Snapshot snap(grid, times_[t]);
  for (std::size_t f = 0; f < names_.size(); ++f) {
    std::vector<double> out(grid.size());
    for (std::size_t c = 0; c < layout_.count(); ++c) {
      const auto b = layout_.box(c);
      const auto values = chunk(t, f, c);
      std::size_t k = 0;
      for (std::size_t ix = b.x0; ix < b.x0 + b.ex; ++ix) {
        for (std::size_t iy = b.y0; iy < b.y0 + b.ey; ++iy) {
          double* row = out.data() + grid.index(ix, iy, b.z0);
          for (std::size_t iz = 0; iz < b.ez; ++iz) row[iz] = (*values)[k++];
        }
      }
    }
    snap.add(names_[f], std::move(out));
  }
  return snap;
}

// ------------------------------------------------------------------ view

const field::GridShape& SeriesSnapshotView::shape() const noexcept {
  return reader_->layout_.grid();
}

std::vector<std::string> SeriesSnapshotView::variables() const {
  return reader_->names_;
}

bool SeriesSnapshotView::has(const std::string& var) const {
  return reader_->field_index_.count(var) > 0;
}

double SeriesSnapshotView::time() const noexcept {
  return reader_->times_[t_];
}

void SeriesSnapshotView::gather(const std::string& var,
                                std::span<const std::size_t> idx,
                                std::span<double> out) const {
  SICKLE_CHECK(out.size() == idx.size());
  const auto it = reader_->field_index_.find(var);
  SICKLE_CHECK_MSG(it != reader_->field_index_.end(),
                   "unknown field: " + var);
  const std::size_t f = it->second;
  const ChunkLayout& layout = reader_->layout_;
  // Same hot-path memoization as ChunkReader::gather: runs of indices
  // within one chunk skip the cache lookup entirely.
  std::size_t last_chunk = layout.count();
  std::shared_ptr<const std::vector<double>> values;
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const std::size_t c = layout.chunk_of(idx[i]);
    if (c != last_chunk) {
      values = reader_->chunk(t_, f, c);
      last_chunk = c;
    }
    out[i] = (*values)[layout.local_offset(idx[i])];
  }
}

}  // namespace sickle::store
