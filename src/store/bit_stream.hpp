/// @file bit_stream.hpp
/// @brief LSB-first bit-granular writer/reader for variable-width codecs.
///
/// The Gorilla codec (codec.hpp) emits fields of 1..64 bits; these helpers
/// pack them into a byte vector in LSB-first order, matching the bit order
/// the quant codec already uses for its level packing. BitReader bounds-
/// checks every read and throws RuntimeError on exhaustion so truncated or
/// spliced blocks surface as typed errors, never as out-of-range reads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace sickle::store {

/// Appends bit fields LSB-first into a growing byte buffer.
class BitWriter {
 public:
  /// Append the low `bits` bits of `v` (0 <= bits <= 64).
  void put(std::uint64_t v, unsigned bits) {
    if (bits == 0) return;
    if (bits < 64) v &= (std::uint64_t{1} << bits) - 1;
    if (nbits_ + bits > 64) {
      // Split so the shift below never discards pending bits. The first
      // half fills the accumulator to exactly 64 bits (a multiple of 8,
      // so it drains completely) and the second half restarts empty.
      const unsigned first = 64 - nbits_;
      put(v, first);
      put(v >> first, bits - first);
      return;
    }
    acc_ |= v << nbits_;
    nbits_ += bits;
    while (nbits_ >= 8) {
      buf_.push_back(static_cast<std::uint8_t>(acc_ & 0xFF));
      acc_ >>= 8;
      nbits_ -= 8;
    }
  }

  /// Number of whole bytes the stream occupies so far (pending bits round
  /// up once finish() pads them).
  [[nodiscard]] std::size_t size_bytes() const noexcept {
    return buf_.size() + (nbits_ > 0 ? 1 : 0);
  }

  /// Flush pending bits (zero-padded to a byte boundary) and release the
  /// buffer. The writer is empty afterwards.
  [[nodiscard]] std::vector<std::uint8_t> finish() {
    if (nbits_ > 0) {
      buf_.push_back(static_cast<std::uint8_t>(acc_ & 0xFF));
      acc_ = 0;
      nbits_ = 0;
    }
    return std::move(buf_);
  }

 private:
  std::vector<std::uint8_t> buf_;
  std::uint64_t acc_ = 0;  // pending bits, always < 8 of them
  unsigned nbits_ = 0;
};

/// Reads bit fields LSB-first from a byte span; throws on exhaustion.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  /// Read `bits` bits (0 <= bits <= 64). Throws RuntimeError when the
  /// stream has fewer bits left.
  [[nodiscard]] std::uint64_t get(unsigned bits) {
    if (bits == 0) return 0;
    if (bits > 56) {
      // Keep the refill shift below 56 so `byte << nbits_` cannot overflow.
      const std::uint64_t lo = get(32);
      return lo | (get(bits - 32) << 32);
    }
    while (nbits_ < bits) {
      if (pos_ >= data_.size()) {
        throw RuntimeError("truncated bitstream in chunk block");
      }
      acc_ |= static_cast<std::uint64_t>(data_[pos_++]) << nbits_;
      nbits_ += 8;
    }
    const std::uint64_t v = acc_ & ((std::uint64_t{1} << bits) - 1);
    acc_ >>= bits;
    nbits_ -= bits;
    return v;
  }

  /// True when only byte-alignment padding (< 8 bits) remains unread.
  [[nodiscard]] bool exhausted() const noexcept {
    return (data_.size() - pos_) * 8 + nbits_ < 8;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  unsigned nbits_ = 0;
};

}  // namespace sickle::store
