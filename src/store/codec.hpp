/// @file codec.hpp
/// @brief Pluggable per-chunk codecs for the SKL2 snapshot store.
///
/// Each chunk of a stored field is encoded independently by one codec, so
/// chunks decompress in isolation (random access) and encode in parallel.
/// Three built-ins cover the size-vs-fidelity spectrum the storage
/// experiments sweep:
///   - "raw":   memcpy of the doubles (baseline, lossless).
///   - "delta": XOR-delta of consecutive IEEE-754 bit patterns with
///              nibble-packed significant-byte counts (lossless; smooth
///              fields share exponent/high-mantissa bits, so deltas are
///              short).
///   - "quant": uniform scalar quantization with a user-set absolute
///              tolerance (lossy; max reconstruction error <= tolerance).
/// Framing details are documented in docs/STORE.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace sickle::store {

/// On-disk codec identifiers (stored in the SKL2 header; stable).
enum class CodecId : std::uint8_t {
  kRaw = 0,
  kDelta = 1,
  kQuant = 2,
};

/// Encode/decode one chunk of doubles to/from a self-contained byte block.
class Codec {
 public:
  virtual ~Codec() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual CodecId id() const noexcept = 0;
  [[nodiscard]] virtual bool lossless() const noexcept = 0;

  [[nodiscard]] virtual std::vector<std::uint8_t> encode(
      std::span<const double> values) const = 0;

  /// Decode exactly `count` values (the chunk's point count, known from the
  /// store layout). Throws RuntimeError on malformed blocks.
  [[nodiscard]] virtual std::vector<double> decode(
      std::span<const std::uint8_t> block, std::size_t count) const = 0;
};

/// Lossless memcpy baseline.
class RawCodec final : public Codec {
 public:
  [[nodiscard]] std::string name() const override { return "raw"; }
  [[nodiscard]] CodecId id() const noexcept override { return CodecId::kRaw; }
  [[nodiscard]] bool lossless() const noexcept override { return true; }
  [[nodiscard]] std::vector<std::uint8_t> encode(
      std::span<const double> values) const override;
  [[nodiscard]] std::vector<double> decode(
      std::span<const std::uint8_t> block,
      std::size_t count) const override;
};

/// Lossless XOR-delta + byte-packing. Each value's bit pattern is XORed
/// with its predecessor; the delta's significant byte count (0..8) is
/// stored in a nibble array, followed by only those bytes.
class DeltaCodec final : public Codec {
 public:
  [[nodiscard]] std::string name() const override { return "delta"; }
  [[nodiscard]] CodecId id() const noexcept override {
    return CodecId::kDelta;
  }
  [[nodiscard]] bool lossless() const noexcept override { return true; }
  [[nodiscard]] std::vector<std::uint8_t> encode(
      std::span<const double> values) const override;
  [[nodiscard]] std::vector<double> decode(
      std::span<const std::uint8_t> block,
      std::size_t count) const override;
};

/// Lossy uniform quantization: q = round((x - min) / step) with
/// step = 2 * tolerance, bit-packed at the minimum width covering the
/// chunk's range. Guarantees |decoded - x| <= tolerance. Chunks whose
/// range would need implausibly many levels (or contain non-finite
/// values) fall back to an embedded raw block, preserving the tolerance
/// contract trivially.
class QuantCodec final : public Codec {
 public:
  /// `tolerance` must be positive.
  explicit QuantCodec(double tolerance);

  [[nodiscard]] std::string name() const override { return "quant"; }
  [[nodiscard]] CodecId id() const noexcept override {
    return CodecId::kQuant;
  }
  [[nodiscard]] bool lossless() const noexcept override { return false; }
  [[nodiscard]] double tolerance() const noexcept { return tolerance_; }
  [[nodiscard]] std::vector<std::uint8_t> encode(
      std::span<const double> values) const override;
  [[nodiscard]] std::vector<double> decode(
      std::span<const std::uint8_t> block,
      std::size_t count) const override;

 private:
  double tolerance_;
};

/// Factory by config name ("raw" | "delta" | "quant"); throws RuntimeError
/// for unknown names. `tolerance` only affects "quant".
[[nodiscard]] std::unique_ptr<Codec> make_codec(const std::string& name,
                                                double tolerance = 1e-6);

/// Factory by on-disk id (used by the reader); throws for unknown ids.
[[nodiscard]] std::unique_ptr<Codec> make_codec(CodecId id, double tolerance);

/// All built-in codec names, in CodecId order.
[[nodiscard]] std::vector<std::string> codec_names();

}  // namespace sickle::store
