/// @file codec.hpp
/// @brief Pluggable per-chunk codecs for the SKL2 snapshot store.
///
/// Each chunk of a stored field is encoded independently by one codec, so
/// chunks decompress in isolation (random access) and encode in parallel.
/// The built-ins cover the size-vs-fidelity spectrum the storage
/// experiments sweep:
///   - "raw":     memcpy of the doubles (baseline, lossless).
///   - "delta":   XOR-delta of consecutive IEEE-754 bit patterns with
///                nibble-packed significant-byte counts (lossless; smooth
///                fields share exponent/high-mantissa bits, so deltas are
///                short).
///   - "quant":   uniform scalar quantization with a user-set absolute
///                tolerance (lossy; max reconstruction error <= tolerance).
///   - "gorilla": bit-granular XOR of consecutive values with
///                leading/trailing-zero-run windows (Gorilla-style;
///                lossless, strictly finer-grained than "delta").
///   - "zstd":    general-purpose entropy compression of the raw bytes
///                (lossless; only when built with -DSICKLE_WITH_ZSTD=ON).
/// Framing details are documented in docs/STORE.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace sickle::store {

/// On-disk codec identifiers (stored in the SKL2 header; stable).
enum class CodecId : std::uint8_t {
  kRaw = 0,
  kDelta = 1,
  kQuant = 2,
  kGorilla = 3,
  kZstd = 4,
};

/// Encode/decode one chunk of doubles to/from a self-contained byte block.
class Codec {
 public:
  virtual ~Codec() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual CodecId id() const noexcept = 0;
  [[nodiscard]] virtual bool lossless() const noexcept = 0;

  [[nodiscard]] virtual std::vector<std::uint8_t> encode(
      std::span<const double> values) const = 0;

  /// Decode exactly `count` values (the chunk's point count, known from the
  /// store layout). Throws RuntimeError on malformed blocks.
  [[nodiscard]] virtual std::vector<double> decode(
      std::span<const std::uint8_t> block, std::size_t count) const = 0;
};

/// Lossless memcpy baseline.
class RawCodec final : public Codec {
 public:
  [[nodiscard]] std::string name() const override { return "raw"; }
  [[nodiscard]] CodecId id() const noexcept override { return CodecId::kRaw; }
  [[nodiscard]] bool lossless() const noexcept override { return true; }
  [[nodiscard]] std::vector<std::uint8_t> encode(
      std::span<const double> values) const override;
  [[nodiscard]] std::vector<double> decode(
      std::span<const std::uint8_t> block,
      std::size_t count) const override;
};

/// Lossless XOR-delta + byte-packing. Each value's bit pattern is XORed
/// with its predecessor; the delta's significant byte count (0..8) is
/// stored in a nibble array, followed by only those bytes.
class DeltaCodec final : public Codec {
 public:
  [[nodiscard]] std::string name() const override { return "delta"; }
  [[nodiscard]] CodecId id() const noexcept override {
    return CodecId::kDelta;
  }
  [[nodiscard]] bool lossless() const noexcept override { return true; }
  [[nodiscard]] std::vector<std::uint8_t> encode(
      std::span<const double> values) const override;
  [[nodiscard]] std::vector<double> decode(
      std::span<const std::uint8_t> block,
      std::size_t count) const override;
};

/// Lossy uniform quantization: q = round((x - min) / step) with
/// step = 2 * tolerance, bit-packed at the minimum width covering the
/// chunk's range. Guarantees |decoded - x| <= tolerance. Chunks whose
/// range would need implausibly many levels (or contain non-finite
/// values) fall back to an embedded raw block, preserving the tolerance
/// contract trivially.
class QuantCodec final : public Codec {
 public:
  /// `tolerance` must be positive.
  explicit QuantCodec(double tolerance);

  [[nodiscard]] std::string name() const override { return "quant"; }
  [[nodiscard]] CodecId id() const noexcept override {
    return CodecId::kQuant;
  }
  [[nodiscard]] bool lossless() const noexcept override { return false; }
  [[nodiscard]] double tolerance() const noexcept { return tolerance_; }
  [[nodiscard]] std::vector<std::uint8_t> encode(
      std::span<const double> values) const override;
  [[nodiscard]] std::vector<double> decode(
      std::span<const std::uint8_t> block,
      std::size_t count) const override;

 private:
  double tolerance_;
};

/// Lossless Gorilla-style compression (Pelkonen et al., VLDB'15): each
/// value's bit pattern is XORed with its predecessor and the nonzero part
/// is written at bit granularity. Per value:
///   '0'                           -> XOR is zero (value repeats)
///   '1' '0' <m bits>              -> XOR fits the previous leading/
///                                    trailing-zero window (m bits wide)
///   '1' '1' <6b lead> <6b len-1>
///       <len bits>                -> new window
/// Operates on raw bit patterns, so NaN/Inf/denormals round-trip exactly.
class GorillaCodec final : public Codec {
 public:
  [[nodiscard]] std::string name() const override { return "gorilla"; }
  [[nodiscard]] CodecId id() const noexcept override {
    return CodecId::kGorilla;
  }
  [[nodiscard]] bool lossless() const noexcept override { return true; }
  [[nodiscard]] std::vector<std::uint8_t> encode(
      std::span<const double> values) const override;
  [[nodiscard]] std::vector<double> decode(
      std::span<const std::uint8_t> block,
      std::size_t count) const override;
};

#ifdef SICKLE_HAS_ZSTD
/// Lossless zstd compression of the chunk's raw bytes (stable simple API,
/// fixed compression level). Only compiled when -DSICKLE_WITH_ZSTD=ON;
/// requesting "zstd" from a build without it throws RuntimeError.
class ZstdCodec final : public Codec {
 public:
  /// `level` is a zstd compression level (clamped to the library's range).
  explicit ZstdCodec(int level = 3) noexcept : level_(level) {}

  [[nodiscard]] std::string name() const override { return "zstd"; }
  [[nodiscard]] CodecId id() const noexcept override { return CodecId::kZstd; }
  [[nodiscard]] bool lossless() const noexcept override { return true; }
  [[nodiscard]] std::vector<std::uint8_t> encode(
      std::span<const double> values) const override;
  [[nodiscard]] std::vector<double> decode(
      std::span<const std::uint8_t> block,
      std::size_t count) const override;

 private:
  int level_;
};
#endif  // SICKLE_HAS_ZSTD

/// Factory by config name ("raw" | "delta" | "quant" | "gorilla" |
/// "zstd"); throws RuntimeError for unknown names, and for "zstd" when the
/// build lacks zstd support. `tolerance` only affects "quant".
[[nodiscard]] std::unique_ptr<Codec> make_codec(const std::string& name,
                                                double tolerance = 1e-6);

/// Factory by on-disk id (used by the reader); throws for unknown ids.
[[nodiscard]] std::unique_ptr<Codec> make_codec(CodecId id, double tolerance);

/// All codec names available in this build, in CodecId order ("zstd" is
/// listed only when compiled in).
[[nodiscard]] std::vector<std::string> codec_names();

}  // namespace sickle::store
