#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "common/error.hpp"
#include "common/mathx.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sickle {

namespace {

// Pool telemetry (docs/OBSERVABILITY.md): tasks executed, cumulative
// queue wait, cumulative busy seconds. Worker utilization follows as
// busy_seconds / (workers x wall seconds). Handles resolve once; the
// counters themselves are lock-free.
struct PoolMetrics {
  obs::Counter& tasks = obs::MetricsRegistry::global().counter(
      "pool.tasks_executed");
  obs::Gauge& queue_wait = obs::MetricsRegistry::global().gauge(
      "pool.queue_wait_seconds");
  obs::Gauge& busy = obs::MetricsRegistry::global().gauge(
      "pool.busy_seconds");
  static PoolMetrics& get() {
    static PoolMetrics m;
    return m;
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  // Timestamp outside the lock; 0 doubles as the "don't meter" flag so
  // disabled runs skip every clock read and metric touch.
  const std::uint64_t enqueue_ns = obs::enabled() ? obs::now_ns() : 0;
  {
    std::lock_guard lock(mu_);
    SICKLE_CHECK_MSG(!stop_, "submit() on stopped pool");
    queue_.push_back({std::move(task), enqueue_ns});
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (task.enqueue_ns != 0) {
      // Metered path: the task was submitted with observability on.
      auto& m = PoolMetrics::get();
      const std::uint64_t start_ns = obs::now_ns();
      m.queue_wait.add(static_cast<double>(start_ns - task.enqueue_ns) *
                       1e-9);
      {
        obs::Span span("pool.task", "pool");
        task.fn();
      }
      m.busy.add(static_cast<double>(obs::now_ns() - start_ns) * 1e-9);
      m.tasks.add(1);
    } else {
      task.fn();
    }
    {
      std::lock_guard lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void TaskGroup::run(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    ++pending_;
  }
  try {
    pool_.submit([this, task = std::move(task)] {
      task();
      std::lock_guard lock(mu_);
      if (--pending_ == 0) cv_.notify_all();
    });
  } catch (...) {
    // submit() itself threw (stopped pool, allocation failure): the task
    // never reached the queue, so un-count it or wait() would hang.
    std::lock_guard lock(mu_);
    --pending_;
    throw;
  }
}

void TaskGroup::wait() {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [this] { return pending_ == 0; });
}

PoolHandle resolve_threads(std::size_t threads) {
  PoolHandle h;
  if (threads == 1) return h;  // serial: pool_ stays null
  if (threads == 0) {
    h.pool_ = &ThreadPool::global();
    return h;
  }
  h.owned_ = std::make_unique<ThreadPool>(threads);
  h.pool_ = h.owned_.get();
  return h;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  ThreadPool* pool, std::size_t grain) {
  parallel_for_range(
      n,
      [&fn](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) fn(i);
      },
      pool, grain);
}

void parallel_for_range(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    ThreadPool* pool, std::size_t grain) {
  if (n == 0) return;
  if (pool == nullptr) pool = &ThreadPool::global();
  const std::size_t workers = pool->size();
  if (n <= grain || workers <= 1) {
    fn(0, n);
    return;
  }
  // One chunk per worker, but never smaller than the grain.
  const std::size_t chunks =
      std::min(workers, std::max<std::size_t>(1, n / grain));
  const std::size_t step = ceil_div(n, chunks);
  // Pool tasks must not throw (they would terminate the worker thread);
  // capture the first chunk's exception and rethrow it on the calling
  // thread, so parallel loops fail the same catchable way serial ones do.
  // Completion is a per-call TaskGroup, not pool-wide wait_idle, so
  // concurrent parallel_for calls sharing one pool never wait on each
  // other's tasks — and the group destructor drains this call's chunks
  // even when submit() itself throws mid-loop (captured locals must
  // outlive the workers running them).
  std::mutex err_mu;
  std::exception_ptr error;
  TaskGroup group(*pool);
  for (std::size_t b = 0; b < n; b += step) {
    const std::size_t e = std::min(n, b + step);
    group.run([&fn, &err_mu, &error, b, e] {
      try {
        fn(b, e);
      } catch (...) {
        std::lock_guard lock(err_mu);
        if (!error) error = std::current_exception();
      }
    });
  }
  group.wait();
  if (error) std::rethrow_exception(error);
}

}  // namespace sickle
