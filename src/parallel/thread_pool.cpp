#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

#include "common/error.hpp"
#include "common/mathx.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sickle {

namespace {

// Pool telemetry (docs/OBSERVABILITY.md): tasks executed, cumulative
// queue wait, cumulative busy seconds. Worker utilization follows as
// busy_seconds / (workers x wall seconds). Handles resolve once; the
// counters themselves are lock-free.
struct PoolMetrics {
  obs::Counter& tasks = obs::MetricsRegistry::global().counter(
      "pool.tasks_executed");
  obs::Gauge& queue_wait = obs::MetricsRegistry::global().gauge(
      "pool.queue_wait_seconds");
  obs::Gauge& busy = obs::MetricsRegistry::global().gauge(
      "pool.busy_seconds");
  static PoolMetrics& get() {
    static PoolMetrics m;
    return m;
  }
};

// Identifies the current thread as worker `index` of `pool` (set once at
// the top of worker_loop). submit() uses it to pick the owner deque;
// TaskGroup::wait uses it to help instead of blocking.
struct WorkerSlot {
  ThreadPool* pool = nullptr;
  std::size_t index = 0;
};
thread_local WorkerSlot t_worker;

}  // namespace

// Chase-Lev work-stealing deque (Chase & Lev, SPAA'05; Lê et al.,
// PPoPP'13 for the C11 memory orders). The owning worker pushes and pops
// at the bottom (LIFO, cache-warm); thieves steal at the top (FIFO, the
// oldest — typically largest — task). Memory-order notes, because this is
// the part TSan can't teach you:
//   - Every bottom_ store that *publishes* a task is seq_cst. A release
//     store would hand the thief the task contents for THAT store, but
//     C++ release sequences do not extend through later same-thread
//     relaxed stores, and the sleep/wake protocol additionally needs the
//     store ordered before the subsequent sleepers_ read in the single
//     total order (the Dekker argument in ThreadPool::wake).
//   - top_ is only advanced by CAS (seq_cst): pop and steal race for the
//     last element and exactly one wins.
//   - Cells are relaxed: the bottom_/top_ protocol is what transfers
//     ownership of the pointed-to Task.
// The circular array grows when full; retired arrays are kept alive until
// the deque dies because a concurrent thief may still be reading the old
// cells (the copied Task* at a given logical index is identical, so a
// stale read that wins its CAS is still correct).
class ThreadPool::WorkDeque {
 public:
  WorkDeque() : array_(new Array(kInitialCap)) {}
  ~WorkDeque() {
    delete array_.load(std::memory_order_relaxed);
    for (Array* a : retired_) delete a;
  }

  WorkDeque(const WorkDeque&) = delete;
  WorkDeque& operator=(const WorkDeque&) = delete;

  /// Owner thread only.
  void push(Task* task) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Array* a = array_.load(std::memory_order_relaxed);
    if (b - t >= a->cap) a = grow(a, b, t);
    a->put(b, task);
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }

  /// Owner thread only. LIFO.
  Task* pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Array* a = array_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // was empty; undo the reservation
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    Task* task = a->get(b);
    if (t < b) return task;  // more than one element: no thief can reach it
    // Exactly one element: race thieves for it via top_.
    const bool won = top_.compare_exchange_strong(t, t + 1,
                                                  std::memory_order_seq_cst);
    bottom_.store(b + 1, std::memory_order_relaxed);
    return won ? task : nullptr;
  }

  /// Any thread. FIFO.
  Task* steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    Array* a = array_.load(std::memory_order_acquire);
    Task* task = a->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst)) {
      return nullptr;  // lost to the owner or another thief
    }
    return task;
  }

  /// Any thread; a racy size estimate is fine for sleep/wake decisions
  /// (the wake protocol, not this check, is what prevents lost wakeups).
  [[nodiscard]] bool maybe_nonempty() const {
    return bottom_.load(std::memory_order_seq_cst) >
           top_.load(std::memory_order_seq_cst);
  }

 private:
  static constexpr std::int64_t kInitialCap = 64;

  struct Array {
    const std::int64_t cap;
    const std::int64_t mask;
    std::unique_ptr<std::atomic<Task*>[]> cells;
    explicit Array(std::int64_t c)
        : cap(c),
          mask(c - 1),
          cells(new std::atomic<Task*>[static_cast<std::size_t>(c)]) {}
    [[nodiscard]] Task* get(std::int64_t i) const {
      return cells[i & mask].load(std::memory_order_relaxed);
    }
    void put(std::int64_t i, Task* t) {
      cells[i & mask].store(t, std::memory_order_relaxed);
    }
  };

  Array* grow(Array* a, std::int64_t b, std::int64_t t) {
    Array* bigger = new Array(a->cap * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, a->get(i));
    retired_.push_back(a);
    array_.store(bigger, std::memory_order_release);
    return bigger;
  }

  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  alignas(64) std::atomic<Array*> array_;
  std::vector<Array*> retired_;  // owner-only; freed in the destructor
};

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  deques_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    deques_.push_back(std::make_unique<WorkDeque>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_seq_cst);
  // Lock bridge: a worker between its predicate check and the actual
  // block would miss a bare notify; taking the mutex orders this store
  // after that predicate evaluation or before the block completes.
  { std::lock_guard lock(mu_); }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  // Timestamp outside any lock; 0 doubles as the "don't meter" flag so
  // disabled runs skip every clock read and metric touch.
  const std::uint64_t enqueue_ns = obs::enabled() ? obs::now_ns() : 0;
  SICKLE_CHECK_MSG(!stop_.load(std::memory_order_relaxed),
                   "submit() on stopped pool");
  auto* t = new Task{std::move(task), enqueue_ns};
  in_flight_.fetch_add(1, std::memory_order_seq_cst);
  if (t_worker.pool == this) {
    deques_[t_worker.index]->push(t);  // lock-free; seq_cst publish inside
  } else {
    std::lock_guard lock(mu_);
    overflow_.push_back(t);
    overflow_size_.fetch_add(1, std::memory_order_seq_cst);
  }
  wake();
}

void ThreadPool::wake() {
  // Dekker-style handshake with worker_loop, all through the seq_cst
  // total order: the pusher publishes work (seq_cst) THEN reads
  // sleepers_; the sleeper increments sleepers_ (seq_cst) THEN re-checks
  // has_work() under the mutex. If we read sleepers_ == 0 here, the
  // sleeper's increment comes later in the total order, so its has_work()
  // check comes later still and must observe our publication — skipping
  // the notify is safe. If we read > 0, the lock bridge + notify_all
  // cannot be lost because the sleeper's predicate is evaluated under mu_.
  if (sleepers_.load(std::memory_order_seq_cst) == 0) return;
  { std::lock_guard lock(mu_); }
  cv_task_.notify_all();
}

bool ThreadPool::has_work() const {
  if (overflow_size_.load(std::memory_order_seq_cst) > 0) return true;
  for (const auto& d : deques_) {
    if (d->maybe_nonempty()) return true;
  }
  return false;
}

ThreadPool::Task* ThreadPool::grab(std::size_t self) {
  if (Task* t = deques_[self]->pop()) return t;
  const std::size_t n = deques_.size();
  for (std::size_t i = 1; i < n; ++i) {
    if (Task* t = deques_[(self + i) % n]->steal()) return t;
  }
  if (overflow_size_.load(std::memory_order_relaxed) > 0) {
    std::lock_guard lock(mu_);
    if (!overflow_.empty()) {
      Task* t = overflow_.front();
      overflow_.pop_front();
      overflow_size_.fetch_sub(1, std::memory_order_seq_cst);
      return t;
    }
  }
  return nullptr;
}

bool ThreadPool::try_run_one(std::size_t self) {
  Task* t = grab(self);
  if (t == nullptr) return false;
  execute(t);
  return true;
}

void ThreadPool::execute(Task* task) {
  std::unique_ptr<Task> owned(task);
  if (task->enqueue_ns != 0) {
    // Metered path: the task was submitted with observability on.
    auto& m = PoolMetrics::get();
    const std::uint64_t start_ns = obs::now_ns();
    m.queue_wait.add(static_cast<double>(start_ns - task->enqueue_ns) * 1e-9);
    {
      obs::Span span("pool.task", "pool");
      task->fn();
    }
    m.busy.add(static_cast<double>(obs::now_ns() - start_ns) * 1e-9);
    m.tasks.add(1);
  } else {
    task->fn();
  }
  if (in_flight_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
    { std::lock_guard lock(mu_); }  // bridge for wait_idle's predicate
    cv_idle_.notify_all();
  }
}

void ThreadPool::worker_loop(std::size_t self) {
  t_worker = {this, self};
  for (;;) {
    if (Task* task = grab(self)) {
      execute(task);
      continue;
    }
    // Out of work everywhere: advertise intent to sleep, then re-check
    // under the mutex (the cv predicate) so a concurrent wake() either
    // sees sleepers_ > 0 and notifies, or published work our predicate
    // observes — see the total-order argument in wake().
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [this] {
        return stop_.load(std::memory_order_relaxed) || has_work();
      });
    }
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    if (stop_.load(std::memory_order_seq_cst) && !has_work()) return;
    // stop_ with work remaining: loop once more and drain it.
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void TaskGroup::run(std::function<void()> task) {
  pending_.fetch_add(1, std::memory_order_seq_cst);
  try {
    pool_.submit([this, task = std::move(task)] {
      task();
      // Decrement and notify inside ONE critical section: wait() only
      // returns after re-acquiring mu_, so it cannot observe pending_ == 0
      // and destroy the group while we are still between the decrement and
      // the notify (a use-after-free TSan catches immediately otherwise).
      std::lock_guard lock(mu_);
      if (pending_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
        cv_.notify_all();
      }
    });
  } catch (...) {
    // submit() itself threw (stopped pool, allocation failure): the task
    // never reached a queue, so un-count it or wait() would hang.
    pending_.fetch_sub(1, std::memory_order_seq_cst);
    throw;
  }
}

void TaskGroup::wait() {
  if (t_worker.pool == &pool_) {
    // Helper-runs-tasks: we ARE a worker of this pool, so blocking here
    // could deadlock (our own pending tasks may be queued behind us —
    // guaranteed on a one-worker pool). Run queued tasks instead; when
    // nothing is grabbable the group's remaining tasks are executing on
    // other workers, so block briefly — the timeout re-polls because
    // those tasks may enqueue new work we should help with rather than
    // sit on.
    while (pending_.load(std::memory_order_seq_cst) != 0) {
      if (!pool_.try_run_one(t_worker.index)) {
        std::unique_lock lock(mu_);
        cv_.wait_for(lock, std::chrono::microseconds(50), [this] {
          return pending_.load(std::memory_order_seq_cst) == 0;
        });
      }
    }
    // Bridge: the last completer decrements and notifies while holding
    // mu_; acquiring it here guarantees that critical section has fully
    // exited before the caller may destroy this group.
    { std::lock_guard lock(mu_); }
    return;
  }
  std::unique_lock lock(mu_);
  cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_seq_cst) == 0;
  });
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] {
    return in_flight_.load(std::memory_order_seq_cst) == 0;
  });
}

PoolHandle resolve_threads(std::size_t threads) {
  PoolHandle h;
  if (threads == 1) return h;  // serial: pool_ stays null
  if (threads == 0) {
    h.pool_ = &ThreadPool::global();
    return h;
  }
  h.owned_ = std::make_unique<ThreadPool>(threads);
  h.pool_ = h.owned_.get();
  return h;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  ThreadPool* pool, std::size_t grain) {
  parallel_for_range(
      n,
      [&fn](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) fn(i);
      },
      pool, grain);
}

void parallel_for_range(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    ThreadPool* pool, std::size_t grain) {
  if (n == 0) return;
  if (pool == nullptr) pool = &ThreadPool::global();
  const std::size_t workers = pool->size();
  if (n <= grain || workers <= 1) {
    fn(0, n);
    return;
  }
  // One chunk per worker, but never smaller than the grain. The cut
  // points depend only on (n, workers, grain) — never on scheduling — so
  // results are bit-identical at any thread count and nesting depth.
  const std::size_t chunks =
      std::min(workers, std::max<std::size_t>(1, n / grain));
  const std::size_t step = ceil_div(n, chunks);
  // Pool tasks must not throw (they would terminate the worker thread);
  // capture the first chunk's exception and rethrow it on the calling
  // thread, so parallel loops fail the same catchable way serial ones do.
  // Completion is a per-call TaskGroup, not pool-wide wait_idle, so
  // concurrent parallel_for calls sharing one pool never wait on each
  // other's tasks — and because TaskGroup::wait helps when the caller is
  // itself a pool worker, a chunk body may call parallel_for again
  // (nested parallelism) without deadlock or serialization. The group
  // destructor drains this call's chunks even when submit() itself throws
  // mid-loop (captured locals must outlive the workers running them).
  std::mutex err_mu;
  std::exception_ptr error;
  TaskGroup group(*pool);
  for (std::size_t b = 0; b < n; b += step) {
    const std::size_t e = std::min(n, b + step);
    group.run([&fn, &err_mu, &error, b, e] {
      try {
        fn(b, e);
      } catch (...) {
        std::lock_guard lock(err_mu);
        if (!error) error = std::current_exception();
      }
    });
  }
  group.wait();
  if (error) std::rethrow_exception(error);
}

}  // namespace sickle
