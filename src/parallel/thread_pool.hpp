// Work-stealing shared-memory thread pool and parallel_for.
//
// SICKLE's node-level parallelism (clustering, histogramming, tensor ops)
// runs on this pool; the distributed-memory layer (parallel/world.hpp)
// layers an SPMD rank model on top. Scheduling is work-stealing: every
// worker owns a Chase-Lev deque, tasks submitted from a worker land on
// that worker's own deque (LIFO for locality), external submissions go to
// a shared overflow queue, and idle workers steal oldest-first from
// victims. TaskGroup::wait called from a worker *helps* — it runs queued
// tasks instead of blocking — so nested parallel_for recurses to any
// depth without deadlock and without serializing on the caller's worker.
// Results stay bit-identical at any thread count: scheduling changes who
// runs a chunk, never how chunks are cut.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sickle {

class TaskGroup;

class ThreadPool {
 public:
  /// Spawn `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Tasks must not throw (they run detached from
  /// callers). From a worker of this pool the task is pushed onto that
  /// worker's own deque (lock-free); from any other thread it lands on
  /// the shared overflow queue.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have finished — every task from
  /// every submitter, which couples concurrent users of a shared pool to
  /// each other's work. Deprecated: prefer TaskGroup, which tracks
  /// exactly the tasks submitted through it and, on a worker thread,
  /// helps run queued tasks instead of blocking. wait_idle never helps,
  /// so calling it from inside a pool task deadlocks; TaskGroup::wait is
  /// safe at any nesting depth.
  void wait_idle();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Process-wide default pool (lazily constructed, never destroyed before
  /// exit).
  static ThreadPool& global();

 private:
  friend class TaskGroup;

  // Tasks carry their enqueue timestamp (obs::now_ns(); 0 when
  // observability is off) so workers can meter queue wait time. Heap
  // allocation is what lets deque cells be plain atomic pointers.
  struct Task {
    std::function<void()> fn;
    std::uint64_t enqueue_ns = 0;
  };

  class WorkDeque;  // Chase-Lev deque, defined in the .cpp

  void worker_loop(std::size_t self);
  /// Run one task (metering + in_flight bookkeeping); takes ownership.
  void execute(Task* task);
  /// Worker-context only: pop own deque, else steal, else pop overflow.
  [[nodiscard]] Task* grab(std::size_t self);
  /// Worker-context only: grab and execute one task; false when none ran.
  bool try_run_one(std::size_t self);
  /// True when any deque or the overflow queue holds a runnable task.
  [[nodiscard]] bool has_work() const;
  /// Wake sleeping workers after publishing new work.
  void wake();

  std::vector<std::unique_ptr<WorkDeque>> deques_;  ///< one per worker
  std::vector<std::thread> workers_;
  std::deque<Task*> overflow_;  ///< external submissions, FIFO
  mutable std::mutex mu_;       ///< guards overflow_ + sleep/wake + idle
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::atomic<std::size_t> overflow_size_{0};
  std::atomic<std::size_t> sleepers_{0};
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<bool> stop_{false};
};

/// Per-call completion tracking on a shared pool: a latch over exactly
/// the tasks submitted through this group. Two TaskGroups on the same
/// pool are independent — wait() returns when *this group's* tasks are
/// done, even while other submitters' tasks are still in flight. When
/// wait() is called from a worker of the same pool it runs queued tasks
/// while waiting (helper-runs-tasks), so a task may create a group, fan
/// out, and wait on it — nested parallelism — without deadlocking even a
/// one-worker pool. The destructor waits, so a group can never abandon
/// tasks that reference a dead stack frame. Tasks must not throw (same
/// contract as ThreadPool::submit).
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) noexcept : pool_(pool) {}
  ~TaskGroup() { wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Submit one task tracked by this group. Thread-safe.
  void run(std::function<void()> task);

  /// Block until every task run() through this group has finished. On a
  /// worker thread of the pool this helps (runs queued tasks, possibly
  /// from unrelated submitters) instead of blocking.
  void wait();

 private:
  ThreadPool& pool_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<std::size_t> pending_{0};
};

/// Owning resolution of a `threads:` config knob onto a pool:
///   1 -> serial execution (get() == nullptr; callers run inline),
///   0 -> the process-global pool (all hardware threads),
///   N -> a dedicated N-worker pool owned by this handle.
/// Handles are cheap to create per pipeline run; a dedicated pool's workers
/// join when the handle goes out of scope.
class PoolHandle {
 public:
  PoolHandle() = default;
  [[nodiscard]] ThreadPool* get() const noexcept { return pool_; }

 private:
  friend PoolHandle resolve_threads(std::size_t threads);
  std::unique_ptr<ThreadPool> owned_;
  ThreadPool* pool_ = nullptr;
};

[[nodiscard]] PoolHandle resolve_threads(std::size_t threads);

/// Run fn(i) for i in [0, n) across the pool in contiguous chunks.
/// Falls back to a serial loop for tiny n, where task overhead dominates.
/// Safe to call from inside a pool task: completion waits via TaskGroup,
/// which helps instead of blocking, so nesting recurses freely.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  ThreadPool* pool = nullptr, std::size_t grain = 1024);

/// Run fn(begin, end) over chunked ranges — preferred for vectorizable
/// kernels since the inner loop stays tight.
void parallel_for_range(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    ThreadPool* pool = nullptr, std::size_t grain = 1024);

}  // namespace sickle
