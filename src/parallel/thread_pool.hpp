// Shared-memory work-queue thread pool and parallel_for.
//
// SICKLE's node-level parallelism (clustering, histogramming, tensor ops)
// runs on this pool; the distributed-memory layer (parallel/world.hpp)
// layers an SPMD rank model on top. The pool is intentionally simple:
// FIFO queue, no work stealing — our tasks are coarse, uniform chunks.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sickle {

class ThreadPool {
 public:
  /// Spawn `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Tasks must not throw (they run detached from callers).
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have finished — every task from
  /// every submitter. Prefer TaskGroup for per-call completion: wait_idle
  /// couples concurrent users of a shared pool to each other's work.
  void wait_idle();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Process-wide default pool (lazily constructed, never destroyed before
  /// exit).
  static ThreadPool& global();

 private:
  // Tasks carry their enqueue timestamp (obs::now_ns(); 0 when
  // observability is off) so workers can meter queue wait time.
  struct QueuedTask {
    std::function<void()> fn;
    std::uint64_t enqueue_ns = 0;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<QueuedTask> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Per-call completion tracking on a shared pool: a latch over exactly
/// the tasks submitted through this group. Two TaskGroups on the same
/// pool are independent — wait() returns when *this group's* tasks are
/// done, even while other submitters' tasks are still in flight (the
/// `wait_idle` coupling parallel_for used to have). The destructor waits,
/// so a group can never abandon tasks that reference a dead stack frame.
/// Tasks must not throw (same contract as ThreadPool::submit).
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) noexcept : pool_(pool) {}
  ~TaskGroup() { wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Submit one task tracked by this group.
  void run(std::function<void()> task);

  /// Block until every task run() through this group has finished.
  void wait();

 private:
  ThreadPool& pool_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t pending_ = 0;
};

/// Owning resolution of a `threads:` config knob onto a pool:
///   1 -> serial execution (get() == nullptr; callers run inline),
///   0 -> the process-global pool (all hardware threads),
///   N -> a dedicated N-worker pool owned by this handle.
/// Handles are cheap to create per pipeline run; a dedicated pool's workers
/// join when the handle goes out of scope.
class PoolHandle {
 public:
  PoolHandle() = default;
  [[nodiscard]] ThreadPool* get() const noexcept { return pool_; }

 private:
  friend PoolHandle resolve_threads(std::size_t threads);
  std::unique_ptr<ThreadPool> owned_;
  ThreadPool* pool_ = nullptr;
};

[[nodiscard]] PoolHandle resolve_threads(std::size_t threads);

/// Run fn(i) for i in [0, n) across the pool in contiguous chunks.
/// Falls back to a serial loop for tiny n, where task overhead dominates.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  ThreadPool* pool = nullptr, std::size_t grain = 1024);

/// Run fn(begin, end) over chunked ranges — preferred for vectorizable
/// kernels since the inner loop stays tight.
void parallel_for_range(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    ThreadPool* pool = nullptr, std::size_t grain = 1024);

}  // namespace sickle
