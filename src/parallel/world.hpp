// SPMD rank world: the repo's substitute for MPI.
//
// The paper runs SICKLE's sampler with `srun -n 1..512`. This machine has
// no MPI, so we reproduce the same programming model in-process: World
// launches one OS thread per rank, each executing the same function body
// with its own Comm handle; Comm provides the collective subset SICKLE
// uses (barrier, allreduce, gather, broadcast).
//
// Two kinds of timing come out of a run:
//   * per-rank CPU time (CLOCK_THREAD_CPUTIME_ID) — honest local work cost,
//     immune to oversubscription of the host's cores;
//   * a CommModel estimate of collective cost at the requested rank count.
// The scalability experiment (Fig. 7) reports
//   T(n) = max_r cpu_r + comm_model(n)
// which reproduces the paper's speedup/efficiency *shape* on a single node.
// This substitution is documented in DESIGN.md §2.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/error.hpp"

namespace sickle {

/// Analytic collective-cost model (alpha-beta / Hockney).
///
/// Defaults approximate a Slingshot-class interconnect: ~2 us latency and
/// ~25 GB/s effective per-link bandwidth. These constants only shape the
/// modeled communication term; DESIGN.md calls them out as ablation knobs.
struct CommModel {
  double latency_s = 2e-6;        ///< per-message software+wire latency
  double seconds_per_byte = 4e-11;  ///< 1 / 25 GB/s

  /// Tree allreduce: log2(n) rounds, payload each round.
  [[nodiscard]] double allreduce(std::size_t nranks, std::size_t bytes) const;
  /// Root gather of `total_bytes` spread across ranks.
  [[nodiscard]] double gather(std::size_t nranks, std::size_t total_bytes) const;
  /// Broadcast of `bytes` to all ranks (binomial tree).
  [[nodiscard]] double broadcast(std::size_t nranks, std::size_t bytes) const;
  /// Pure synchronization.
  [[nodiscard]] double barrier(std::size_t nranks) const;
};

namespace detail {
struct WorldState;
}

/// Per-rank communicator handle, valid only inside World::run's body.
///
/// All collectives must be called by every rank in the same order (the MPI
/// contract). Payload element type is double or std::size_t / uint64 via
/// the typed overloads; that covers SICKLE's needs.
class Comm {
 public:
  [[nodiscard]] std::size_t rank() const noexcept { return rank_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool is_root() const noexcept { return rank_ == 0; }

  void barrier();

  /// In-place sum-allreduce over a per-rank vector (all ranks end with the
  /// element-wise sum).
  void allreduce_sum(std::vector<double>& values);
  double allreduce_sum(double value);
  double allreduce_max(double value);
  std::size_t allreduce_sum(std::size_t value);

  /// Concatenate every rank's vector on ALL ranks (allgatherv), ordered by
  /// rank. SICKLE's sampler uses this to assemble global sample sets.
  std::vector<double> allgather(const std::vector<double>& local);
  std::vector<std::size_t> allgather(const std::vector<std::size_t>& local);

  /// Broadcast root's vector to all ranks.
  void broadcast(std::vector<double>& values, std::size_t root = 0);

  /// Static block decomposition of [0, n): returns {begin, end} for this
  /// rank, remainder spread over the low ranks.
  [[nodiscard]] std::pair<std::size_t, std::size_t> block_range(
      std::size_t n) const noexcept;

  /// Accumulated modeled communication seconds for this world (shared by
  /// all ranks; read after run()).
  [[nodiscard]] double modeled_comm_seconds() const;

 private:
  friend class World;
  Comm(detail::WorldState* state, std::size_t rank, std::size_t size)
      : state_(state), rank_(rank), size_(size) {}

  template <typename T>
  std::vector<T> allgather_impl(const std::vector<T>& local);
  template <typename T, typename Op>
  void allreduce_impl(std::vector<T>& values, Op op);

  detail::WorldState* state_;
  std::size_t rank_;
  std::size_t size_;
};

/// Result of an SPMD run.
struct WorldReport {
  std::size_t nranks = 0;
  double wall_seconds = 0.0;           ///< host wall clock for the whole run
  double max_rank_cpu_seconds = 0.0;   ///< max over ranks of thread CPU time
  double sum_rank_cpu_seconds = 0.0;   ///< total work across ranks
  double modeled_comm_seconds = 0.0;   ///< CommModel cost of all collectives
  /// Simulated distributed-memory makespan: what this run would cost on
  /// nranks dedicated nodes.
  [[nodiscard]] double simulated_seconds() const {
    return max_rank_cpu_seconds + modeled_comm_seconds;
  }
};

/// SPMD executor. Example:
///   World world(8);
///   auto report = world.run([&](Comm& comm) { ... });
class World {
 public:
  explicit World(std::size_t nranks, CommModel model = {});

  /// Execute `body` on every rank concurrently; rethrows the first rank
  /// exception after all ranks join.
  WorldReport run(const std::function<void(Comm&)>& body);

  [[nodiscard]] std::size_t nranks() const noexcept { return nranks_; }

 private:
  std::size_t nranks_;
  CommModel model_;
};

}  // namespace sickle
