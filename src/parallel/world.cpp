#include "parallel/world.hpp"

#include <pthread.h>
#include <time.h>

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <exception>
#include <thread>

#include "common/timer.hpp"

namespace sickle {

double CommModel::allreduce(std::size_t nranks, std::size_t bytes) const {
  if (nranks <= 1) return 0.0;
  const double rounds = std::log2(static_cast<double>(nranks));
  return rounds * (latency_s + static_cast<double>(bytes) * seconds_per_byte);
}

double CommModel::gather(std::size_t nranks, std::size_t total_bytes) const {
  if (nranks <= 1) return 0.0;
  const double rounds = std::log2(static_cast<double>(nranks));
  return rounds * latency_s +
         static_cast<double>(total_bytes) * seconds_per_byte;
}

double CommModel::broadcast(std::size_t nranks, std::size_t bytes) const {
  if (nranks <= 1) return 0.0;
  const double rounds = std::log2(static_cast<double>(nranks));
  return rounds * (latency_s + static_cast<double>(bytes) * seconds_per_byte);
}

double CommModel::barrier(std::size_t nranks) const {
  if (nranks <= 1) return 0.0;
  return 2.0 * std::log2(static_cast<double>(nranks)) * latency_s;
}

namespace detail {

/// Shared state for one World::run invocation.
///
/// Collectives use a sense-reversing central barrier plus per-rank slots.
/// A central barrier is O(n) per operation, which is fine: collective
/// *correctness* is what we need in-process; collective *cost* at scale
/// comes from CommModel.
struct WorldState {
  explicit WorldState(std::size_t n, CommModel m)
      : nranks(n), model(m), slots(n) {}

  std::size_t nranks;
  CommModel model;

  std::mutex mu;
  std::condition_variable cv;
  std::size_t arrived = 0;
  bool sense = false;
  bool poisoned = false;  // set when a rank died; collectives become no-ops

  /// Per-rank scratch: pointer + element count published by each rank
  /// during a collective.
  struct Slot {
    const void* ptr = nullptr;
    std::size_t count = 0;
  };
  std::vector<Slot> slots;
  std::vector<double> reduce_buf;  // scratch for allreduce

  double modeled_comm_seconds = 0.0;  // guarded by mu

  /// Block until all ranks arrive. Returns true for exactly one rank (the
  /// last to arrive), which may perform the "root section" of a collective
  /// before releasing the others via release().
  /// Returns false when the world has been poisoned by a failed rank; the
  /// caller must then skip the collective's payload phase.
  bool wait_all() {
    std::unique_lock lock(mu);
    if (poisoned) return false;
    const bool my_sense = sense;
    if (++arrived == nranks) {
      arrived = 0;
      sense = !sense;
      cv.notify_all();
    } else {
      cv.wait(lock, [&] { return poisoned || sense != my_sense; });
      if (poisoned) return false;
    }
    return true;
  }

  /// Release every waiting rank after a rank failure. Surviving ranks see
  /// degenerate (empty) collective results and unwind naturally; the
  /// original exception is rethrown by World::run.
  void poison() {
    std::lock_guard lock(mu);
    poisoned = true;
    cv.notify_all();
  }

  void add_comm_cost(double seconds) {
    std::lock_guard lock(mu);
    modeled_comm_seconds += seconds;
  }
};

}  // namespace detail

void Comm::barrier() {
  if (!state_->wait_all()) return;
  if (rank_ == 0) state_->add_comm_cost(state_->model.barrier(size_));
  state_->wait_all();
}

template <typename T, typename Op>
void Comm::allreduce_impl(std::vector<T>& values, Op op) {
  auto& st = *state_;
  st.slots[rank_].ptr = values.data();
  st.slots[rank_].count = values.size();
  if (!st.wait_all()) return;
  if (rank_ == 0) {
    // Root combines all rank buffers into reduce_buf.
    const std::size_t n = values.size();
    st.reduce_buf.assign(n, 0.0);
    for (std::size_t r = 0; r < size_; ++r) {
      SICKLE_CHECK_MSG(st.slots[r].count == n,
                       "allreduce length mismatch across ranks");
      const T* p = static_cast<const T*>(st.slots[r].ptr);
      for (std::size_t i = 0; i < n; ++i) {
        st.reduce_buf[i] = (r == 0) ? static_cast<double>(p[i])
                                    : op(st.reduce_buf[i],
                                         static_cast<double>(p[i]));
      }
    }
    st.add_comm_cost(st.model.allreduce(size_, n * sizeof(T)));
  }
  if (!st.wait_all()) return;
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<T>(st.reduce_buf[i]);
  }
  st.wait_all();
}

void Comm::allreduce_sum(std::vector<double>& values) {
  allreduce_impl(values, [](double a, double b) { return a + b; });
}

double Comm::allreduce_sum(double value) {
  std::vector<double> v{value};
  allreduce_sum(v);
  return v[0];
}

double Comm::allreduce_max(double value) {
  std::vector<double> v{value};
  allreduce_impl(v, [](double a, double b) { return a > b ? a : b; });
  return v[0];
}

std::size_t Comm::allreduce_sum(std::size_t value) {
  std::vector<double> v{static_cast<double>(value)};
  allreduce_sum(v);
  return static_cast<std::size_t>(v[0] + 0.5);
}

template <typename T>
std::vector<T> Comm::allgather_impl(const std::vector<T>& local) {
  auto& st = *state_;
  st.slots[rank_].ptr = local.data();
  st.slots[rank_].count = local.size();
  if (!st.wait_all()) return {};
  std::size_t total = 0;
  for (std::size_t r = 0; r < size_; ++r) total += st.slots[r].count;
  std::vector<T> out;
  out.reserve(total);
  for (std::size_t r = 0; r < size_; ++r) {
    const T* p = static_cast<const T*>(st.slots[r].ptr);
    out.insert(out.end(), p, p + st.slots[r].count);
  }
  if (rank_ == 0) {
    st.add_comm_cost(st.model.gather(size_, total * sizeof(T)) +
                     st.model.broadcast(size_, total * sizeof(T)));
  }
  st.wait_all();
  return out;
}

std::vector<double> Comm::allgather(const std::vector<double>& local) {
  return allgather_impl(local);
}

std::vector<std::size_t> Comm::allgather(const std::vector<std::size_t>& local) {
  return allgather_impl(local);
}

void Comm::broadcast(std::vector<double>& values, std::size_t root) {
  auto& st = *state_;
  if (rank_ == root) {
    st.slots[root].ptr = values.data();
    st.slots[root].count = values.size();
  }
  if (!st.wait_all()) return;
  if (rank_ != root) {
    const double* p = static_cast<const double*>(st.slots[root].ptr);
    values.assign(p, p + st.slots[root].count);
  } else {
    st.add_comm_cost(
        st.model.broadcast(size_, values.size() * sizeof(double)));
  }
  st.wait_all();
}

std::pair<std::size_t, std::size_t> Comm::block_range(
    std::size_t n) const noexcept {
  const std::size_t base = n / size_;
  const std::size_t rem = n % size_;
  const std::size_t begin =
      rank_ * base + std::min<std::size_t>(rank_, rem);
  const std::size_t len = base + (rank_ < rem ? 1 : 0);
  return {begin, begin + len};
}

double Comm::modeled_comm_seconds() const {
  std::lock_guard lock(state_->mu);
  return state_->modeled_comm_seconds;
}

World::World(std::size_t nranks, CommModel model)
    : nranks_(nranks), model_(model) {
  SICKLE_CHECK_MSG(nranks_ >= 1, "World needs at least one rank");
}

namespace {

/// CPU time consumed by the calling thread, in seconds.
double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

}  // namespace

WorldReport World::run(const std::function<void(Comm&)>& body) {
  detail::WorldState state(nranks_, model_);
  std::vector<double> cpu_seconds(nranks_, 0.0);
  std::vector<std::exception_ptr> errors(nranks_);

  Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(nranks_);
  for (std::size_t r = 0; r < nranks_; ++r) {
    threads.emplace_back([&, r] {
      const double cpu0 = thread_cpu_seconds();
      Comm comm(&state, r, nranks_);
      try {
        body(comm);
      } catch (...) {
        errors[r] = std::current_exception();
        // A dead rank would deadlock peers at the next collective, so
        // poison the world: waiting ranks unblock with degenerate results
        // and unwind. The first exception is rethrown by run() below.
        state.poison();
      }
      cpu_seconds[r] = thread_cpu_seconds() - cpu0;
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  WorldReport report;
  report.nranks = nranks_;
  report.wall_seconds = wall.seconds();
  for (const double c : cpu_seconds) {
    report.max_rank_cpu_seconds = std::max(report.max_rank_cpu_seconds, c);
    report.sum_rank_cpu_seconds += c;
  }
  report.modeled_comm_seconds = state.modeled_comm_seconds;
  return report;
}

}  // namespace sickle
