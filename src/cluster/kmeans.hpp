// K-means clustering (Lloyd) and MiniBatchKMeans (Sculley 2010).
//
// The paper's MaxEnt sampler clusters the target variable with scikit-learn
// MiniBatchKMeans before computing per-cluster entropy weights. We provide
// both the exact Lloyd iteration (for tests and small data) and the
// mini-batch variant (for the large-field path), with k-means++ seeding.
//
// Data layout: row-major flat array, `n` points of `dims` doubles.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace sickle::cluster {

struct KMeansOptions {
  std::size_t k = 8;
  std::size_t max_iterations = 100;
  double tolerance = 1e-6;      ///< relative centroid-shift stopping criterion
  std::size_t batch_size = 1024;  ///< mini-batch variant only
};

struct KMeansResult {
  std::size_t k = 0;
  std::size_t dims = 0;
  std::vector<double> centroids;      ///< k * dims, row-major
  std::vector<std::uint32_t> labels;  ///< n, cluster id per point
  std::vector<std::size_t> sizes;     ///< k, points per cluster
  double inertia = 0.0;               ///< sum of squared distances to centroid
  std::size_t iterations = 0;

  /// Assign an arbitrary point to its nearest centroid.
  [[nodiscard]] std::uint32_t assign(std::span<const double> point) const;

  /// Assign a batch of points in one call: labels[i] is the nearest
  /// centroid of values[i*dims .. i*dims+dims). The 1-D case (the selector
  /// hot path) runs a fused loop over a local centroid table — no per-point
  /// span construction or per-centroid function calls. Bitwise identical to
  /// calling assign() per point.
  void assign_batch(std::span<const double> values,
                    std::span<std::uint32_t> labels) const;
};

/// Exact Lloyd k-means with k-means++ initialization.
[[nodiscard]] KMeansResult kmeans(std::span<const double> data, std::size_t n,
                                  std::size_t dims, const KMeansOptions& opts,
                                  Rng& rng);

/// MiniBatchKMeans: per-centre learning-rate updates over random batches,
/// followed by one full labeling pass. Matches the reference pipeline's
/// clustering cost profile on large fields.
[[nodiscard]] KMeansResult minibatch_kmeans(std::span<const double> data,
                                            std::size_t n, std::size_t dims,
                                            const KMeansOptions& opts,
                                            Rng& rng);

/// Squared Euclidean distance between a point and a centroid row.
[[nodiscard]] double squared_distance(std::span<const double> a,
                                      std::span<const double> b);

}  // namespace sickle::cluster
