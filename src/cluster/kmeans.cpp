#include "cluster/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace sickle::cluster {

double squared_distance(std::span<const double> a, std::span<const double> b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

std::uint32_t KMeansResult::assign(std::span<const double> point) const {
  SICKLE_CHECK(point.size() == dims);
  std::uint32_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < k; ++c) {
    const double d = squared_distance(
        point, std::span<const double>(centroids.data() + c * dims, dims));
    if (d < best_d) {
      best_d = d;
      best = static_cast<std::uint32_t>(c);
    }
  }
  return best;
}

void KMeansResult::assign_batch(std::span<const double> values,
                                std::span<std::uint32_t> labels) const {
  SICKLE_CHECK_MSG(dims > 0 && k > 0, "assign_batch on empty clustering");
  SICKLE_CHECK_MSG(values.size() == labels.size() * dims,
                   "assign_batch: values/labels size mismatch");
  if (dims == 1) {
    // Fused 1-D hot path: the selector classifies every grid point through
    // here. Two implementations, identical label-for-label (same
    // arithmetic; strict `<` with ascending j preserves the lowest-index
    // tie-break):
    //  * SIMD (SSE4.1+/AVX/NEON): interchanged loops — centroids outer,
    //    points inner — so the argmin runs over contiguous point blocks
    //    under `#pragma omp simd`. Labels are carried as doubles so every
    //    lane in the vector loop has one width; needs a single-instruction
    //    lane select (blendv) to pay off.
    //  * Scalar fallback (baseline x86-64 and anything older): per-point
    //    scan over a local centroid table. Pre-SSE4.1 codegen emulates
    //    each lane select with four logic ops, which measures ~3x slower
    //    than this branch-predicted scan (see bench_kernels
    //    BM_AssignBatch1D vs BM_AssignBatch1DScalarRef).
    const double* c = centroids.data();
    const std::size_t kk = k;
    const std::size_t n = labels.size();
#if defined(__SSE4_1__) || defined(__AVX__) || defined(__ARM_NEON)
    constexpr std::size_t kBlock = 256;
    double best_d[kBlock];
    double best[kBlock];
    for (std::size_t i0 = 0; i0 < n; i0 += kBlock) {
      const std::size_t m = std::min(kBlock, n - i0);
      const double* v = values.data() + i0;
      for (std::size_t t = 0; t < m; ++t) {
        best_d[t] = std::numeric_limits<double>::infinity();
        best[t] = 0.0;
      }
      for (std::size_t j = 0; j < kk; ++j) {
        const double cj = c[j];
        const auto lbl = static_cast<double>(j);
#pragma omp simd
        for (std::size_t t = 0; t < m; ++t) {
          const double d = (v[t] - cj) * (v[t] - cj);
          if (d < best_d[t]) {
            best_d[t] = d;
            best[t] = lbl;
          }
        }
      }
      for (std::size_t t = 0; t < m; ++t) {
        labels[i0 + t] = static_cast<std::uint32_t>(best[t]);
      }
    }
#else
    for (std::size_t i = 0; i < n; ++i) {
      const double v = values[i];
      double best_d = std::numeric_limits<double>::infinity();
      std::uint32_t best = 0;
      for (std::size_t j = 0; j < kk; ++j) {
        const double d = (v - c[j]) * (v - c[j]);
        if (d < best_d) {
          best_d = d;
          best = static_cast<std::uint32_t>(j);
        }
      }
      labels[i] = best;
    }
#endif
    return;
  }
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = assign(values.subspan(i * dims, dims));
  }
}

namespace {

std::span<const double> point_at(std::span<const double> data, std::size_t i,
                                 std::size_t dims) {
  return data.subspan(i * dims, dims);
}

/// k-means++ seeding (Arthur & Vassilvitskii 2007): first centre uniform,
/// subsequent centres drawn with probability proportional to squared
/// distance from the nearest existing centre.
std::vector<double> kmeanspp_init(std::span<const double> data, std::size_t n,
                                  std::size_t dims, std::size_t k, Rng& rng) {
  std::vector<double> centroids(k * dims);
  std::vector<double> d2(n, std::numeric_limits<double>::infinity());

  const std::size_t first = rng.uniform_int(n);
  std::copy_n(data.begin() + first * dims, dims, centroids.begin());

  for (std::size_t c = 1; c < k; ++c) {
    const std::span<const double> prev(centroids.data() + (c - 1) * dims, dims);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      d2[i] = std::min(d2[i], squared_distance(point_at(data, i, dims), prev));
      total += d2[i];
    }
    std::size_t chosen = 0;
    if (total > 0.0) {
      double r = rng.uniform() * total;
      for (std::size_t i = 0; i < n; ++i) {
        r -= d2[i];
        if (r < 0.0) {
          chosen = i;
          break;
        }
      }
    } else {
      // All points coincide with existing centres; any choice is fine.
      chosen = rng.uniform_int(n);
    }
    std::copy_n(data.begin() + chosen * dims, dims,
                centroids.begin() + c * dims);
  }
  return centroids;
}

std::uint32_t nearest_centroid(std::span<const double> point,
                               std::span<const double> centroids,
                               std::size_t k, std::size_t dims,
                               double* dist2_out = nullptr) {
  std::uint32_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < k; ++c) {
    const double d = squared_distance(
        point, centroids.subspan(c * dims, dims));
    if (d < best_d) {
      best_d = d;
      best = static_cast<std::uint32_t>(c);
    }
  }
  if (dist2_out != nullptr) *dist2_out = best_d;
  return best;
}

/// Final labeling + inertia + sizes given fixed centroids.
void finalize(std::span<const double> data, std::size_t n, std::size_t dims,
              KMeansResult& result) {
  result.labels.resize(n);
  result.sizes.assign(result.k, 0);
  result.inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double d2 = 0.0;
    const std::uint32_t c =
        nearest_centroid(point_at(data, i, dims),
                         std::span<const double>(result.centroids),
                         result.k, dims, &d2);
    result.labels[i] = c;
    ++result.sizes[c];
    result.inertia += d2;
  }
}

void validate_inputs(std::span<const double> data, std::size_t n,
                     std::size_t dims, const KMeansOptions& opts) {
  SICKLE_CHECK_MSG(dims > 0, "kmeans: dims must be positive");
  SICKLE_CHECK_MSG(data.size() == n * dims, "kmeans: data size mismatch");
  SICKLE_CHECK_MSG(opts.k > 0, "kmeans: k must be positive");
  SICKLE_CHECK_MSG(n >= opts.k, "kmeans: fewer points than clusters");
}

}  // namespace

KMeansResult kmeans(std::span<const double> data, std::size_t n,
                    std::size_t dims, const KMeansOptions& opts, Rng& rng) {
  validate_inputs(data, n, dims, opts);
  KMeansResult result;
  result.k = opts.k;
  result.dims = dims;
  result.centroids = kmeanspp_init(data, n, dims, opts.k, rng);

  std::vector<double> sums(opts.k * dims);
  std::vector<std::size_t> counts(opts.k);
  std::vector<std::uint32_t> labels(n, 0);

  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    result.iterations = it + 1;
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto p = point_at(data, i, dims);
      const std::uint32_t c = nearest_centroid(
          p, std::span<const double>(result.centroids), opts.k, dims);
      labels[i] = c;
      ++counts[c];
      for (std::size_t d = 0; d < dims; ++d) sums[c * dims + d] += p[d];
    }
    double shift = 0.0;
    double scale = 0.0;
    for (std::size_t c = 0; c < opts.k; ++c) {
      if (counts[c] == 0) {
        // Empty cluster: reseed at a random point, standard Lloyd repair.
        const std::size_t j = rng.uniform_int(n);
        std::copy_n(data.begin() + j * dims, dims,
                    result.centroids.begin() + c * dims);
        continue;
      }
      for (std::size_t d = 0; d < dims; ++d) {
        const double next =
            sums[c * dims + d] / static_cast<double>(counts[c]);
        const double old = result.centroids[c * dims + d];
        shift += (next - old) * (next - old);
        scale += old * old;
        result.centroids[c * dims + d] = next;
      }
    }
    if (shift <= opts.tolerance * std::max(scale, 1e-300)) break;
  }
  finalize(data, n, dims, result);
  return result;
}

KMeansResult minibatch_kmeans(std::span<const double> data, std::size_t n,
                              std::size_t dims, const KMeansOptions& opts,
                              Rng& rng) {
  validate_inputs(data, n, dims, opts);
  KMeansResult result;
  result.k = opts.k;
  result.dims = dims;

  // Seed k-means++ on a subsample for large n: the seeding pass is O(n*k)
  // and would dominate the mini-batch savings otherwise.
  const std::size_t seed_n = std::min<std::size_t>(n, 16 * 1024);
  if (seed_n == n) {
    result.centroids = kmeanspp_init(data, n, dims, opts.k, rng);
  } else {
    std::vector<double> sub(seed_n * dims);
    for (std::size_t i = 0; i < seed_n; ++i) {
      const std::size_t j = rng.uniform_int(n);
      std::copy_n(data.begin() + j * dims, dims, sub.begin() + i * dims);
    }
    result.centroids = kmeanspp_init(std::span<const double>(sub), seed_n,
                                     dims, opts.k, rng);
  }

  std::vector<std::size_t> counts(opts.k, 0);  // per-centre update counts
  const std::size_t batch = std::min(opts.batch_size, n);
  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    result.iterations = it + 1;
    for (std::size_t b = 0; b < batch; ++b) {
      const std::size_t i = rng.uniform_int(n);
      const auto p = point_at(data, i, dims);
      const std::uint32_t c = nearest_centroid(
          p, std::span<const double>(result.centroids), opts.k, dims);
      // Per-centre learning rate 1/count: converges to the running mean of
      // points assigned to the centre (Sculley 2010, Alg. 1).
      ++counts[c];
      const double eta = 1.0 / static_cast<double>(counts[c]);
      for (std::size_t d = 0; d < dims; ++d) {
        double& cd = result.centroids[c * dims + d];
        cd += eta * (p[d] - cd);
      }
    }
  }
  finalize(data, n, dims, result);
  return result;
}

}  // namespace sickle::cluster
