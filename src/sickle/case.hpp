/// @file case.hpp
/// @brief Case runner: subsample -> train -> evaluate, the paper's
/// T1 -> T2 -> T3 workflow driven by one config.
///
/// run_case is a staged streaming orchestrator: (A) ingest the dataset as
/// a field::SeriesSource — in RAM, spilled to per-snapshot SKL2 stores,
/// or appended to one streaming SKL3 series container — then (B) optional
/// temporal snapshot selection over streamed per-snapshot PDFs, (C)
/// two-phase sampling per selected snapshot with accepted points written
/// straight into the training-set builder (no second pass over the raw
/// data), and (D) training. All backends run the same stages, so sample
/// sets are bit-identical across memory/skl2/series for lossless codecs.
///
/// Ingest comes in two modes. "materialize" builds the full in-RAM
/// Dataset first (the only choice for the memory backend). "streaming"
/// consumes a flow::SnapshotProducer snapshot-at-a-time — simulate ->
/// encode -> append -> drop — so no full Dataset ever exists for the
/// skl2/series backends and peak ingest memory is bounded by one snapshot
/// plus the writer's flush budget (CaseReport::ingest_peak_bytes,
/// test-asserted). Both modes produce bit-identical stores, sample sets,
/// and training tensors for lossless codecs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ml/trainer.hpp"
#include "sampling/pipeline.hpp"
#include "sampling/temporal.hpp"
#include "sickle/dataset_zoo.hpp"
#include "sickle/errors.hpp"
#include "store/snapshot_store.hpp"

namespace sickle {

/// Optional temporal snapshot selection stage (paper §4.3): keep only the
/// greedy max-min JS subset of snapshots before sampling and training.
struct TemporalSelection {
  /// Snapshots to keep; 0 disables the stage (all snapshots are used).
  std::size_t num_snapshots = 0;
  /// PDF variable; empty falls back to the pipeline's cluster_var, then
  /// its first input variable.
  std::string variable;
  std::size_t bins = 100;

  [[nodiscard]] bool enabled() const noexcept { return num_snapshots > 0; }
};

struct CaseConfig {
  sampling::PipelineConfig pipeline;
  /// "LSTM" | "MLP_Transformer" | "CNN_Transformer" | "Foundation"
  std::string arch = "MLP_Transformer";
  ml::TrainConfig train;
  std::size_t window = 1;   ///< input sequence length T
  std::size_t model_dim = 32;
  std::size_t model_heads = 4;
  std::size_t model_layers = 1;
  /// Sampling backend: "memory" runs the staged pipeline over the in-RAM
  /// dataset; "skl2" spills each snapshot to its own chunked compressed
  /// store; "series" streams every snapshot into one SKL3 container
  /// (amortized header/index, shared block cache) and runs selection +
  /// sampling + training-set build out-of-core. Sample sets are identical
  /// across backends for lossless codecs, at any pipeline.threads value.
  std::string backend = "memory";
  /// Ingest mode: "materialize" builds the full in-RAM Dataset before
  /// stage A (today's default, bit-exact legacy behavior); "streaming"
  /// feeds a SnapshotProducer straight into the spill store one snapshot
  /// at a time (skl2/series backends; the memory backend always
  /// materializes). Only meaningful for the ProducerBundle overload of
  /// run_case — a DatasetBundle is materialized by definition.
  std::string ingest = "materialize";
  store::StoreOptions store;  ///< chunking/codec knobs for spill backends
  /// Where spill backends place their temporary stores; empty = the
  /// system temp directory. The spill is removed once the training set is
  /// built; on failure it is kept and its path logged to stderr.
  std::string spill_dir;
  TemporalSelection temporal;  ///< optional snapshot-subset stage

  /// ALL problems with this config at once — enum fields (backend, ingest,
  /// arch, codec), zero/negative sizes, and fraction ranges — so a config
  /// with three typos is fixed in one round trip instead of three.
  /// Empty means valid. CaseSession::submit throws ConfigError with this
  /// list; config_driver merges it into its own parse-level issues.
  /// run_case itself keeps its legacy first-throw SICKLE_CHECKs.
  [[nodiscard]] std::vector<ValidationIssue> validate() const;
};

struct CaseReport {
  std::size_t sampled_points = 0;
  /// Wall time of the T1 stages: spill/ingest (skl2/series), temporal
  /// selection, and the per-snapshot sampling pipeline. Training-set
  /// tensor construction and scaler fitting are T2 cost and excluded.
  double sampling_seconds = 0.0;
  double sampling_kilojoules = 0.0;
  /// Compressed on-disk bytes of the spilled store(s) (skl2/series only).
  std::size_t store_bytes = 0;
  /// Snapshot indices the temporal stage kept, ascending; empty when the
  /// stage is disabled (all snapshots were used).
  std::vector<std::size_t> selected_snapshots;
  /// FNV-1a fingerprint of the sampled cubes (snapshot, cube id, point
  /// indices, feature bit patterns) in pipeline order — equal across
  /// backends/ingest modes/thread counts exactly when the sample sets are
  /// bit-identical, which is what the e2e smoke CI job diffs.
  std::uint64_t sample_hash = 0;
  /// Streaming ingest only: high-water mark of one produced snapshot plus
  /// the store writer's buffered encoded blocks — the "no full Dataset"
  /// guarantee, bounded by one snapshot + write_budget (+ codec slack).
  /// 0 for materialized ingest (the Dataset itself is the peak).
  std::size_t ingest_peak_bytes = 0;
  /// High-water mark of live spill bytes on disk. memory backend: 0.
  /// series backend and non-fused streaming skl2: the whole spilled store
  /// (= store_bytes). Materialized skl2: one snapshot file (the
  /// write/sample/delete contract). Fused streaming skl2 (no temporal
  /// stage): one snapshot file — each spill is sampled and deleted before
  /// the next is produced, so disk stays O(snapshot) for any series
  /// length.
  std::size_t ingest_peak_disk_bytes = 0;
  ml::TrainReport train;
  double training_kilojoules = 0.0;
  /// Per-stage telemetry, populated on every run (independent of the
  /// global obs::enabled() switch — these are per-case values, not
  /// process-cumulative registry counters). Keys: `case.*_seconds` wall
  /// times per stage, `case.sampled_points` / `case.store_bytes` /
  /// `case.ingest_peak_bytes` mirrors of the scalar fields, and for
  /// spill backends the reader-side `store.cache_*` / `store.io_*`
  /// tallies. Keys ending in `_seconds` are wall-clock and vary run to
  /// run; everything else is bit-stable for lossless codecs at
  /// pipeline.threads == 1.
  std::map<std::string, double> metrics;

  [[nodiscard]] double total_kilojoules() const noexcept {
    return sampling_kilojoules + training_kilojoules;
  }
};

/// Run the full pipeline on a generated dataset bundle. The bundle's
/// variable roles fill the pipeline config's variable lists when empty.
/// A DatasetBundle is materialized by definition, so cfg.ingest is
/// ignored here; use the ProducerBundle overload for streaming ingest.
[[nodiscard]] CaseReport run_case(const DatasetBundle& bundle,
                                  CaseConfig cfg);

/// Generator-driven form: with cfg.ingest == "streaming" and a spill
/// backend (skl2/series), snapshots flow simulate -> encode -> append ->
/// drop and no full Dataset ever exists; with "materialize" (or the
/// memory backend) the producer is drained into a DatasetBundle first.
/// Sample sets and training tensors are bit-identical across all backend
/// x ingest combinations for lossless codecs. The producer is consumed.
[[nodiscard]] CaseReport run_case(ProducerBundle& bundle, CaseConfig cfg);

/// Build the supervised TensorDataset for a given architecture from the
/// sampling result (exposed for tests and custom training loops).
///
/// MLP_Transformer: input [T=window, C*N] sampled points; target dense
///   output cube [C', E, E, E] of the same (snapshot, cube).
/// CNN_Transformer / Foundation: input dense cube(s); target dense output
///   cube. Foundation input drops the time axis ([C, E, E, E]).
[[nodiscard]] ml::TensorDataset build_training_set(
    const DatasetBundle& bundle, const sampling::PipelineResult& sampled,
    const CaseConfig& cfg);

/// OF2D drag problem (sample-single): per snapshot, sample ns points with
/// `method` ("random" | "maxent" | "uips" | "stratified"), build windows of
/// length `window`, target = drag at the window's last step.
[[nodiscard]] ml::TensorDataset build_drag_dataset(
    const DatasetBundle& bundle, const std::string& method, std::size_t ns,
    std::size_t window, std::uint64_t seed,
    energy::EnergyCounter* energy = nullptr);

}  // namespace sickle
