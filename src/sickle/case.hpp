/// @file case.hpp
/// @brief Case runner: subsample -> train -> evaluate, the paper's
/// T1 -> T2 -> T3 workflow driven by one config.
#pragma once

#include <string>

#include "ml/trainer.hpp"
#include "sampling/pipeline.hpp"
#include "sickle/dataset_zoo.hpp"
#include "store/snapshot_store.hpp"

namespace sickle {

struct CaseConfig {
  sampling::PipelineConfig pipeline;
  /// "LSTM" | "MLP_Transformer" | "CNN_Transformer" | "Foundation"
  std::string arch = "MLP_Transformer";
  ml::TrainConfig train;
  std::size_t window = 1;   ///< input sequence length T
  std::size_t model_dim = 32;
  std::size_t model_heads = 4;
  std::size_t model_layers = 1;
  /// Sampling backend: "memory" runs the in-RAM pipeline; "skl2" spills
  /// each snapshot to a chunked compressed store and samples out-of-core
  /// through a ChunkReader (identical samples for lossless codecs). With
  /// pipeline.threads != 1 the skl2 path drives one shared sharded reader
  /// from all sampling workers.
  std::string backend = "memory";
  store::StoreOptions store;  ///< chunking/codec knobs for the skl2 backend
};

struct CaseReport {
  std::size_t sampled_points = 0;
  double sampling_seconds = 0.0;
  double sampling_kilojoules = 0.0;
  /// Compressed on-disk bytes of the spilled snapshots (skl2 backend only).
  std::size_t store_bytes = 0;
  ml::TrainReport train;
  double training_kilojoules = 0.0;

  [[nodiscard]] double total_kilojoules() const noexcept {
    return sampling_kilojoules + training_kilojoules;
  }
};

/// Run the full pipeline on a generated dataset bundle. The bundle's
/// variable roles fill the pipeline config's variable lists when empty.
[[nodiscard]] CaseReport run_case(const DatasetBundle& bundle,
                                  CaseConfig cfg);

/// Build the supervised TensorDataset for a given architecture from the
/// sampling result (exposed for tests and custom training loops).
///
/// MLP_Transformer: input [T=window, C*N] sampled points; target dense
///   output cube [C', E, E, E] of the same (snapshot, cube).
/// CNN_Transformer / Foundation: input dense cube(s); target dense output
///   cube. Foundation input drops the time axis ([C, E, E, E]).
[[nodiscard]] ml::TensorDataset build_training_set(
    const DatasetBundle& bundle, const sampling::PipelineResult& sampled,
    const CaseConfig& cfg);

/// OF2D drag problem (sample-single): per snapshot, sample ns points with
/// `method` ("random" | "maxent" | "uips" | "stratified"), build windows of
/// length `window`, target = drag at the window's last step.
[[nodiscard]] ml::TensorDataset build_drag_dataset(
    const DatasetBundle& bundle, const std::string& method, std::size_t ns,
    std::size_t window, std::uint64_t seed,
    energy::EnergyCounter* energy = nullptr);

}  // namespace sickle
