/// @file errors.hpp
/// @brief Typed case errors and lifecycle states shared by the staged
/// orchestrator (stage.hpp), the session API (session.hpp), and the
/// serve protocol (src/serve).
///
/// Every error a case can surface at the session/server boundary is a
/// CaseError carrying a machine-readable CaseErrorCode, so clients branch
/// on the code instead of parsing what() strings. CaseError derives from
/// RuntimeError, which keeps every pre-session call site (`catch
/// (RuntimeError&)`, EXPECT_THROW(..., RuntimeError)) working unchanged —
/// the redesign adds type information without breaking the legacy
/// contract.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace sickle {

/// Lifecycle of one submitted case: the queue states plus one state per
/// orchestrator stage (ingest -> selection -> sampling -> training) and
/// three terminal states. Reported by CaseHandle::status().
enum class CaseState {
  kQueued,     ///< accepted, waiting for a runner slot
  kIngesting,  ///< stage A: materialize / spill / stream the dataset
  kSelecting,  ///< stage B: temporal snapshot selection
  kSampling,   ///< stage C: per-snapshot sampling into the training set
  kTraining,   ///< stage D: model fit + evaluation
  kDone,       ///< finished; CaseHandle::wait() returns the report
  kFailed,     ///< threw; status() carries the code + message
  kCancelled,  ///< cancel() won the race; no report
};

[[nodiscard]] constexpr const char* to_string(CaseState s) noexcept {
  switch (s) {
    case CaseState::kQueued: return "queued";
    case CaseState::kIngesting: return "ingesting";
    case CaseState::kSelecting: return "selecting";
    case CaseState::kSampling: return "sampling";
    case CaseState::kTraining: return "training";
    case CaseState::kDone: return "done";
    case CaseState::kFailed: return "failed";
    case CaseState::kCancelled: return "cancelled";
  }
  return "unknown";
}

/// Machine-readable classification of a case failure. Stage codes
/// (kIngest..kTraining) are assigned from the state the case was in when
/// it threw, so a corrupt spill store surfaces as kSampling even when the
/// underlying throw was a store-level RuntimeError.
enum class CaseErrorCode {
  kConfig,     ///< invalid CaseConfig (see ConfigError::issues())
  kQueueFull,  ///< submission rejected: bounded FIFO queue at capacity
  kCancelled,  ///< cancel() interrupted the case
  kIngest,     ///< stage A failure (producer, spill writer, I/O)
  kSelection,  ///< stage B failure
  kSampling,   ///< stage C failure
  kTraining,   ///< stage D failure
  kInternal,   ///< anything else (bug, resource exhaustion)
};

[[nodiscard]] constexpr const char* to_string(CaseErrorCode c) noexcept {
  switch (c) {
    case CaseErrorCode::kConfig: return "config";
    case CaseErrorCode::kQueueFull: return "queue_full";
    case CaseErrorCode::kCancelled: return "cancelled";
    case CaseErrorCode::kIngest: return "ingest";
    case CaseErrorCode::kSelection: return "selection";
    case CaseErrorCode::kSampling: return "sampling";
    case CaseErrorCode::kTraining: return "training";
    case CaseErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

/// Base of the typed hierarchy. Still a RuntimeError, so legacy callers
/// that catch by the old type keep working.
class CaseError : public RuntimeError {
 public:
  CaseError(CaseErrorCode code, const std::string& what)
      : RuntimeError(what), code_(code) {}

  [[nodiscard]] CaseErrorCode code() const noexcept { return code_; }

 private:
  CaseErrorCode code_;
};

/// One problem CaseConfig::validate() found: the dotted config path, what
/// is wrong with it, and (when there is an obvious fix) how to fix it.
struct ValidationIssue {
  std::string field;    ///< dotted path, e.g. "store.backend"
  std::string message;  ///< what is wrong
  std::string hint;     ///< valid values / suggested fix; may be empty
};

/// Invalid configuration, carrying EVERY issue found — validation is
/// all-errors-at-once (CaseConfig::validate()), not first-throw, so a
/// config with three typos is fixed in one round trip.
class ConfigError : public CaseError {
 public:
  explicit ConfigError(std::vector<ValidationIssue> issues)
      : CaseError(CaseErrorCode::kConfig, format(issues)),
        issues_(std::move(issues)) {}

  [[nodiscard]] const std::vector<ValidationIssue>& issues() const noexcept {
    return issues_;
  }

 private:
  static std::string format(const std::vector<ValidationIssue>& issues) {
    std::string out = "invalid case config (" +
                      std::to_string(issues.size()) + " issue" +
                      (issues.size() == 1 ? "" : "s") + ")";
    for (const auto& i : issues) {
      out += "; " + i.field + ": " + i.message;
      if (!i.hint.empty()) out += " (" + i.hint + ")";
    }
    return out;
  }

  std::vector<ValidationIssue> issues_;
};

/// cancel() interrupted the case (thrown out of stage::checkpoint and
/// rethrown by CaseHandle::wait on a cancelled case).
class CancelledError : public CaseError {
 public:
  explicit CancelledError(const std::string& what = "case cancelled")
      : CaseError(CaseErrorCode::kCancelled, what) {}
};

/// Submission rejected by admission control: the session's bounded FIFO
/// queue is at capacity. The caller's bundle is left untouched — retry
/// after a running case finishes, or cancel a queued one.
class QueueFullError : public CaseError {
 public:
  explicit QueueFullError(std::size_t capacity)
      : CaseError(CaseErrorCode::kQueueFull,
                  "case queue full (capacity " + std::to_string(capacity) +
                      "); retry after a case finishes or raise "
                      "server.queue_capacity") {}
};

}  // namespace sickle
