#include "sickle/dataset_zoo.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/mathx.hpp"
#include "flow/combustion.hpp"
#include "flow/cylinder.hpp"
#include "flow/spectral_turbulence.hpp"

namespace sickle {

namespace {

std::size_t scaled_pow2(std::size_t base, double scale) {
  return next_pow2(static_cast<std::size_t>(
      std::max(1.0, std::round(static_cast<double>(base) * scale))));
}

}  // namespace

std::vector<std::string> dataset_labels() {
  return {"TC2D", "OF2D", "SST-P1F4", "SST-P1F100", "GESTS-2048",
          "GESTS-8192"};
}

ProducerBundle make_dataset_producer(const std::string& label,
                                     std::uint64_t seed, double scale) {
  ProducerBundle b;
  if (label == "TC2D") {
    flow::CombustionParams p;
    p.seed = seed;
    // Floor at 1: a tiny positive scale must degrade to the smallest
    // grid, not a zero-extent one (SST/GESTS get this from scaled_pow2).
    p.nx = std::max<std::size_t>(
        1, static_cast<std::size_t>(632 * std::sqrt(scale)));
    p.ny = p.nx;
    b.producer = std::make_unique<flow::CombustionProducer>(p);
    b.name = "TC2D";
    b.input_vars = {"C", "Cvar"};
    b.output_vars = {};
    // std::string temporary dodges a GCC 12 -Wrestrict false positive on
    // single-char const char* assignment (PR105580).
    b.cluster_var = std::string("C");
    b.paper_size = "31MB (400k points, 1 step)";
  } else if (label == "OF2D") {
    flow::CylinderWakeParams p;
    p.seed = seed;
    b.producer = std::make_unique<flow::CylinderWakeProducer>(p);
    b.name = "OF2D";
    b.input_vars = {"u", "v"};
    b.output_vars = {"p"};
    b.cluster_var = "wz";  // the paper's Fig. 3 clusters OF2D on vorticity
    b.paper_size = "300MB (10800 points, 100 steps)";
  } else if (label == "SST-P1F4") {
    flow::StratifiedParams p;
    p.seed = seed;
    p.nx = scaled_pow2(64, scale);
    p.ny = scaled_pow2(64, scale);
    p.nz = scaled_pow2(32, scale);
    p.snapshots = 8;
    b.producer = std::make_unique<flow::StratifiedProducer>(p);
    b.name = "SST";
    b.input_vars = {"u", "v", "w", "rho"};
    b.output_vars = {"p"};
    b.cluster_var = "pv";
    b.paper_size = "376GB (512x512x256, 125 steps)";
  } else if (label == "SST-P1F100") {
    flow::StratifiedParams p;
    p.seed = seed + 1;
    // F100 is the strongly stratified, strongly forced ensemble member:
    // flatter (pancaked) and more intermittent than F4.
    p.nx = scaled_pow2(128, scale);
    p.ny = scaled_pow2(32, scale);
    p.nz = scaled_pow2(128, scale);
    p.anisotropy = 8.0;
    p.vertical_damping = 0.2;
    p.intermittency = 0.9;
    p.snapshots = 4;
    b.producer = std::make_unique<flow::StratifiedProducer>(p);
    b.name = "SST-P1F100";
    b.input_vars = {"rho"};
    b.output_vars = {"eps"};
    b.cluster_var = "rho";
    b.paper_size = "5TB (4096x1024x4096, 10 steps)";
  } else if (label == "GESTS-2048") {
    flow::IsotropicParams p;
    p.seed = seed;
    p.n = scaled_pow2(64, scale);
    b.producer = std::make_unique<flow::IsotropicProducer>(p);
    b.name = "GESTS";
    b.input_vars = {"u", "v", "w", "eps"};
    b.output_vars = {"p"};
    b.cluster_var = "enstrophy";
    b.paper_size = "188GB (2048^3, 1 step)";
  } else if (label == "GESTS-8192") {
    flow::IsotropicParams p;
    p.seed = seed + 2;
    p.n = scaled_pow2(128, scale);  // the "large" isotropic case
    b.producer = std::make_unique<flow::IsotropicProducer>(p);
    b.name = "GESTS";
    b.input_vars = {"u", "v", "w", "eps"};
    b.output_vars = {"p"};
    b.cluster_var = "enstrophy";
    b.paper_size = "12TB (8192^3, 1 step)";
  } else {
    throw RuntimeError("unknown dataset label: " + label);
  }
  return b;
}

DatasetBundle materialize_bundle(ProducerBundle& bundle) {
  DatasetBundle b;
  b.data = flow::materialize(*bundle.producer, bundle.name);
  b.scalar_target = bundle.producer->scalar_target();
  b.input_vars = bundle.input_vars;
  b.output_vars = bundle.output_vars;
  b.cluster_var = bundle.cluster_var;
  b.paper_size = bundle.paper_size;
  return b;
}

DatasetBundle make_dataset(const std::string& label, std::uint64_t seed,
                           double scale) {
  ProducerBundle pb = make_dataset_producer(label, seed, scale);
  return materialize_bundle(pb);
}

}  // namespace sickle
