#include "sickle/config_driver.hpp"

#include <algorithm>
#include <cctype>

#include "common/error.hpp"

namespace sickle {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

std::string normalize_arch(const std::string& arch) {
  const std::string a = lower(arch);
  if (a == "lstm") return "LSTM";
  if (a == "mlp_transformer" || a == "mlp-transformer") {
    return "MLP_Transformer";
  }
  if (a == "cnn_transformer" || a == "cnn-transformer") {
    return "CNN_Transformer";
  }
  if (a == "foundation" || a == "matey") return "Foundation";
  throw RuntimeError("unknown architecture: " + arch);
}

std::string dataset_label_from_config(const Config& cfg) {
  return cfg.get_str("shared", "dataset", "SST-P1F4");
}

double dataset_scale_from_config(const Config& cfg) {
  const double scale = cfg.get_double("shared", "scale", 1.0);
  if (!(scale > 0.0)) {
    throw RuntimeError("shared scale must be > 0");
  }
  return scale;
}

sampling::PipelineConfig pipeline_from_config(const Config& cfg) {
  sampling::PipelineConfig pl;
  // Cube edges: the paper's --nxsl/--nysl/--nzsl.
  pl.cube.ex = static_cast<std::size_t>(cfg.get_int("subsample", "nxsl", 8));
  pl.cube.ey = static_cast<std::size_t>(cfg.get_int("subsample", "nysl", 8));
  pl.cube.ez = static_cast<std::size_t>(cfg.get_int("subsample", "nzsl", 8));
  pl.hypercube_method = cfg.get_str("subsample", "hypercubes", "maxent");
  pl.point_method = cfg.get_str("subsample", "method", "maxent");
  pl.num_hypercubes = static_cast<std::size_t>(
      cfg.get_int("subsample", "num_hypercubes", 32));
  pl.num_samples = static_cast<std::size_t>(
      cfg.get_int("subsample", "num_samples", 3277));
  pl.num_clusters = static_cast<std::size_t>(
      cfg.get_int("subsample", "num_clusters", 20));
  if (cfg.has("shared", "input_vars")) {
    pl.input_vars = cfg.get_list("shared", "input_vars");
  }
  if (cfg.has("shared", "output_vars")) {
    pl.output_vars = cfg.get_list("shared", "output_vars");
  }
  pl.cluster_var = cfg.get_str("shared", "cluster_var", "");
  pl.pdf_bins = static_cast<std::size_t>(
      cfg.get_int("subsample", "pdf_bins", 10));
  pl.seed = static_cast<std::uint64_t>(cfg.get_int("shared", "seed", 42));
  // Worker threads for scoring + point sampling: 1 serial, 0 = all
  // hardware threads, N = dedicated pool. Bit-identical samples for every
  // value (see PipelineConfig::threads).
  const long threads = cfg.get_int("subsample", "threads", 1);
  if (threads < 0) {
    throw RuntimeError("subsample threads must be >= 0");
  }
  pl.threads = static_cast<std::size_t>(threads);
  return pl;
}

store::StoreOptions store_options_from_config(const Config& cfg) {
  store::StoreOptions opts;
  const long edge = cfg.get_int("store", "chunk", 32);
  const long cx = cfg.get_int("store", "chunk_x", edge);
  const long cy = cfg.get_int("store", "chunk_y", edge);
  const long cz = cfg.get_int("store", "chunk_z", edge);
  const long cache_mb = cfg.get_int("store", "cache_mb", 64);
  const long budget_mb = cfg.get_int("store", "write_budget_mb", 8);
  const long prefetch = cfg.get_int("store", "prefetch_depth", 0);
  // Fail at config time, not at the first mid-run snapshot spill.
  if (cx <= 0 || cy <= 0 || cz <= 0) {
    throw RuntimeError("store chunk edges must be positive");
  }
  if (cache_mb <= 0) {
    throw RuntimeError("store cache_mb must be positive");
  }
  if (budget_mb <= 0) {
    throw RuntimeError("store write_budget_mb must be positive");
  }
  if (prefetch < 0) {
    throw RuntimeError("store prefetch_depth must be >= 0");
  }
  opts.chunk.nx = static_cast<std::size_t>(cx);
  opts.chunk.ny = static_cast<std::size_t>(cy);
  opts.chunk.nz = static_cast<std::size_t>(cz);
  opts.codec = lower(cfg.get_str("store", "codec", "delta"));
  opts.tolerance = cfg.get_double("store", "tolerance", 1e-6);
  opts.cache_bytes = static_cast<std::size_t>(cache_mb) << 20;
  opts.write_budget_bytes = static_cast<std::size_t>(budget_mb) << 20;
  opts.prefetch_depth = static_cast<std::size_t>(prefetch);
  (void)store::make_codec(opts.codec, opts.tolerance);  // validates the name
  return opts;
}

TemporalSelection temporal_from_config(const Config& cfg) {
  TemporalSelection ts;
  const long keep = cfg.get_int("temporal", "num_snapshots", 0);
  const long bins = cfg.get_int("temporal", "bins", 100);
  if (keep < 0) throw RuntimeError("temporal num_snapshots must be >= 0");
  if (bins <= 0) throw RuntimeError("temporal bins must be positive");
  ts.num_snapshots = static_cast<std::size_t>(keep);
  ts.variable = cfg.get_str("temporal", "variable", "");
  ts.bins = static_cast<std::size_t>(bins);
  return ts;
}

CaseConfig case_from_config(const Config& cfg) {
  CaseConfig cc;
  cc.pipeline = pipeline_from_config(cfg);
  cc.backend = lower(cfg.get_str("store", "backend", "memory"));
  if (cc.backend != "memory" && cc.backend != "skl2" &&
      cc.backend != "series") {
    throw RuntimeError("unknown store backend: " + cc.backend);
  }
  cc.ingest = lower(cfg.get_str("store", "ingest", "materialize"));
  if (cc.ingest != "materialize" && cc.ingest != "streaming") {
    throw RuntimeError("unknown store ingest mode: " + cc.ingest);
  }
  cc.store = store_options_from_config(cfg);
  cc.spill_dir = cfg.get_str("store", "spill_dir", "");
  cc.temporal = temporal_from_config(cfg);
  cc.arch = normalize_arch(
      cfg.get_str("train", "arch", "MLP_transformer"));
  cc.window = static_cast<std::size_t>(cfg.get_int("train", "window", 1));
  cc.model_dim = static_cast<std::size_t>(cfg.get_int("train", "dim", 32));
  cc.model_heads =
      static_cast<std::size_t>(cfg.get_int("train", "heads", 4));
  cc.model_layers =
      static_cast<std::size_t>(cfg.get_int("train", "layers", 1));

  cc.train.epochs =
      static_cast<std::size_t>(cfg.get_int("train", "epochs", 1000));
  cc.train.batch =
      static_cast<std::size_t>(cfg.get_int("train", "batch", 16));
  cc.train.lr = cfg.get_double("train", "lr", 1e-3);
  cc.train.patience =
      static_cast<std::size_t>(cfg.get_int("train", "patience", 20));
  cc.train.test_fraction =
      cfg.get_double("train", "test_frac", 0.1);
  cc.train.seed = static_cast<std::uint64_t>(
      cfg.get_int("train", "seed", cfg.get_int("shared", "seed", 42)));
  const std::string precision =
      lower(cfg.get_str("train", "precision", "fp32"));
  if (precision == "fp32") {
    cc.train.precision = ml::Precision::kFp32;
  } else if (precision == "fp16") {
    cc.train.precision = ml::Precision::kFp16;
  } else if (precision == "bf16") {
    cc.train.precision = ml::Precision::kBf16;
  } else {
    throw RuntimeError("unknown precision: " + precision);
  }
  return cc;
}

obs::ObsOptions obs_options_from_config(const Config& cfg) {
  obs::ObsOptions oo;
  oo.trace_path = cfg.get_str("observability", "trace_path", "");
  oo.metrics_path = cfg.get_str("observability", "metrics_path", "");
  oo.enabled = cfg.get_bool(
      "observability", "enabled",
      !oo.trace_path.empty() || !oo.metrics_path.empty());
  return oo;
}

InferenceOptions inference_from_config(const Config& cfg) {
  InferenceOptions io;
  io.prune_rms = cfg.get_double("inference", "prune_rms", 0.0);
  io.probes =
      static_cast<std::size_t>(cfg.get_int("inference", "probes", 32));
  io.min_hidden =
      static_cast<std::size_t>(cfg.get_int("inference", "min_hidden", 2));
  io.engine_path = cfg.get_str("inference", "engine_path", "");
  const bool any_key =
      cfg.has("inference", "prune_rms") || cfg.has("inference", "probes") ||
      cfg.has("inference", "min_hidden") ||
      cfg.has("inference", "engine_path");
  io.enabled = cfg.get_bool("inference", "enabled", any_key);
  return io;
}

}  // namespace sickle
