#include "sickle/config_driver.hpp"

#include <algorithm>
#include <cctype>
#include <utility>

#include "common/error.hpp"
#include "sickle/errors.hpp"

namespace sickle {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Issue sink for the section parsers: collecting mode (case_from_config
/// gathers every problem across all sections and throws ONE ConfigError at
/// the end) or immediate mode (the public per-section helpers, which throw
/// on the section's full issue list as soon as it is non-empty).
void report(std::vector<ValidationIssue>* sink, std::string field,
            std::string message, std::string hint = "") {
  if (sink == nullptr) {
    throw ConfigError({{std::move(field), std::move(message),
                        std::move(hint)}});
  }
  sink->push_back({std::move(field), std::move(message), std::move(hint)});
}

/// Positive-int config read: flags non-positive values as an issue and
/// substitutes `fallback` so downstream casts never see garbage (and
/// CaseConfig::validate() does not re-flag the same field).
long positive_int(const Config& cfg, const std::string& section,
                  const std::string& key, long fallback,
                  std::vector<ValidationIssue>* sink) {
  const long v = cfg.get_int(section, key, fallback);
  if (v <= 0) {
    report(sink, section + "." + key, key + " must be positive");
    return fallback;
  }
  return v;
}

sampling::PipelineConfig pipeline_into(const Config& cfg,
                                       std::vector<ValidationIssue>* sink) {
  sampling::PipelineConfig pl;
  // Cube edges: the paper's --nxsl/--nysl/--nzsl.
  pl.cube.ex = static_cast<std::size_t>(
      positive_int(cfg, "subsample", "nxsl", 8, sink));
  pl.cube.ey = static_cast<std::size_t>(
      positive_int(cfg, "subsample", "nysl", 8, sink));
  pl.cube.ez = static_cast<std::size_t>(
      positive_int(cfg, "subsample", "nzsl", 8, sink));
  pl.hypercube_method = cfg.get_str("subsample", "hypercubes", "maxent");
  pl.point_method = cfg.get_str("subsample", "method", "maxent");
  pl.num_hypercubes = static_cast<std::size_t>(
      cfg.get_int("subsample", "num_hypercubes", 32));
  pl.num_samples = static_cast<std::size_t>(
      cfg.get_int("subsample", "num_samples", 3277));
  pl.num_clusters = static_cast<std::size_t>(
      cfg.get_int("subsample", "num_clusters", 20));
  if (cfg.has("shared", "input_vars")) {
    pl.input_vars = cfg.get_list("shared", "input_vars");
  }
  if (cfg.has("shared", "output_vars")) {
    pl.output_vars = cfg.get_list("shared", "output_vars");
  }
  pl.cluster_var = cfg.get_str("shared", "cluster_var", "");
  pl.pdf_bins = static_cast<std::size_t>(
      cfg.get_int("subsample", "pdf_bins", 10));
  pl.seed = static_cast<std::uint64_t>(cfg.get_int("shared", "seed", 42));
  // Worker threads for scoring + point sampling: 1 serial, 0 = all
  // hardware threads, N = dedicated pool. Bit-identical samples for every
  // value (see PipelineConfig::threads).
  const long threads = cfg.get_int("subsample", "threads", 1);
  if (threads < 0) {
    report(sink, "subsample.threads", "subsample threads must be >= 0",
           "0 = all hardware threads");
    pl.threads = 1;
  } else {
    pl.threads = static_cast<std::size_t>(threads);
  }
  return pl;
}

store::StoreOptions store_into(const Config& cfg,
                               std::vector<ValidationIssue>* sink) {
  store::StoreOptions opts;
  // Fail at config time, not at the first mid-run snapshot spill.
  const long edge = positive_int(cfg, "store", "chunk", 32, sink);
  opts.chunk.nx = static_cast<std::size_t>(
      positive_int(cfg, "store", "chunk_x", edge, sink));
  opts.chunk.ny = static_cast<std::size_t>(
      positive_int(cfg, "store", "chunk_y", edge, sink));
  opts.chunk.nz = static_cast<std::size_t>(
      positive_int(cfg, "store", "chunk_z", edge, sink));
  opts.cache_bytes = static_cast<std::size_t>(
                         positive_int(cfg, "store", "cache_mb", 64, sink))
                     << 20;
  opts.write_budget_bytes =
      static_cast<std::size_t>(
          positive_int(cfg, "store", "write_budget_mb", 8, sink))
      << 20;
  const long prefetch = cfg.get_int("store", "prefetch_depth", 0);
  if (prefetch < 0) {
    report(sink, "store.prefetch_depth",
           "store prefetch_depth must be >= 0", "0 disables readahead");
  } else {
    opts.prefetch_depth = static_cast<std::size_t>(prefetch);
  }
  opts.codec = lower(cfg.get_str("store", "codec", "delta"));
  opts.tolerance = cfg.get_double("store", "tolerance", 1e-6);
  try {
    (void)store::make_codec(opts.codec, opts.tolerance);  // validates name
  } catch (const std::exception& e) {
    report(sink, "store.codec", e.what(),
           "raw | delta | quant | gorilla");
  }
  return opts;
}

TemporalSelection temporal_into(const Config& cfg,
                                std::vector<ValidationIssue>* sink) {
  TemporalSelection ts;
  const long keep = cfg.get_int("temporal", "num_snapshots", 0);
  if (keep < 0) {
    report(sink, "temporal.num_snapshots",
           "temporal num_snapshots must be >= 0", "0 disables the stage");
  } else {
    ts.num_snapshots = static_cast<std::size_t>(keep);
  }
  ts.bins = static_cast<std::size_t>(
      positive_int(cfg, "temporal", "bins", 100, sink));
  ts.variable = cfg.get_str("temporal", "variable", "");
  return ts;
}

}  // namespace

std::string normalize_arch(const std::string& arch) {
  const std::string a = lower(arch);
  if (a == "lstm") return "LSTM";
  if (a == "mlp_transformer" || a == "mlp-transformer") {
    return "MLP_Transformer";
  }
  if (a == "cnn_transformer" || a == "cnn-transformer") {
    return "CNN_Transformer";
  }
  if (a == "foundation" || a == "matey") return "Foundation";
  throw RuntimeError("unknown architecture: " + arch);
}

std::string dataset_label_from_config(const Config& cfg) {
  return cfg.get_str("shared", "dataset", "SST-P1F4");
}

double dataset_scale_from_config(const Config& cfg) {
  const double scale = cfg.get_double("shared", "scale", 1.0);
  if (!(scale > 0.0)) {
    throw ConfigError({{"shared.scale", "shared scale must be > 0", ""}});
  }
  return scale;
}

sampling::PipelineConfig pipeline_from_config(const Config& cfg) {
  return pipeline_into(cfg, nullptr);
}

store::StoreOptions store_options_from_config(const Config& cfg) {
  return store_into(cfg, nullptr);
}

TemporalSelection temporal_from_config(const Config& cfg) {
  return temporal_into(cfg, nullptr);
}

CaseConfig case_from_config(const Config& cfg) {
  // Collecting mode: every section parser appends to `issues`, invalid
  // values are replaced with defaults so parsing continues, and the caller
  // gets ONE ConfigError naming every problem — the contract both the
  // config_driver CLIs and the server's submit verb rely on.
  std::vector<ValidationIssue> issues;
  CaseConfig cc;
  cc.pipeline = pipeline_into(cfg, &issues);
  cc.backend = lower(cfg.get_str("store", "backend", "memory"));
  cc.ingest = lower(cfg.get_str("store", "ingest", "materialize"));
  cc.store = store_into(cfg, &issues);
  cc.spill_dir = cfg.get_str("store", "spill_dir", "");
  cc.temporal = temporal_into(cfg, &issues);
  const std::string raw_arch =
      cfg.get_str("train", "arch", "MLP_transformer");
  try {
    cc.arch = normalize_arch(raw_arch);
  } catch (const RuntimeError&) {
    // Keep the raw spelling: validate() below reports it (exactly once)
    // with the list of valid architectures.
    cc.arch = raw_arch;
  }
  cc.window = static_cast<std::size_t>(
      positive_int(cfg, "train", "window", 1, &issues));
  cc.model_dim = static_cast<std::size_t>(
      positive_int(cfg, "train", "dim", 32, &issues));
  cc.model_heads = static_cast<std::size_t>(
      positive_int(cfg, "train", "heads", 4, &issues));
  cc.model_layers = static_cast<std::size_t>(
      positive_int(cfg, "train", "layers", 1, &issues));

  cc.train.epochs = static_cast<std::size_t>(
      positive_int(cfg, "train", "epochs", 1000, &issues));
  cc.train.batch = static_cast<std::size_t>(
      positive_int(cfg, "train", "batch", 16, &issues));
  cc.train.lr = cfg.get_double("train", "lr", 1e-3);
  cc.train.patience =
      static_cast<std::size_t>(cfg.get_int("train", "patience", 20));
  cc.train.test_fraction = cfg.get_double("train", "test_frac", 0.1);
  cc.train.seed = static_cast<std::uint64_t>(
      cfg.get_int("train", "seed", cfg.get_int("shared", "seed", 42)));
  const std::string precision =
      lower(cfg.get_str("train", "precision", "fp32"));
  if (precision == "fp32") {
    cc.train.precision = ml::Precision::kFp32;
  } else if (precision == "fp16") {
    cc.train.precision = ml::Precision::kFp16;
  } else if (precision == "bf16") {
    cc.train.precision = ml::Precision::kBf16;
  } else {
    issues.push_back({"train.precision", "unknown precision: " + precision,
                      "fp32 | fp16 | bf16"});
  }

  // Semantic checks over the assembled config. Parse-level issues above
  // substituted defaults, so a field validate() flags here was not
  // already flagged; the field-name guard keeps the few overlapping
  // checks (codec, enums) reported exactly once.
  for (auto& issue : cc.validate()) {
    const bool dup =
        std::any_of(issues.begin(), issues.end(),
                    [&](const ValidationIssue& have) {
                      return have.field == issue.field;
                    });
    if (!dup) issues.push_back(std::move(issue));
  }
  if (!issues.empty()) throw ConfigError(std::move(issues));
  return cc;
}

obs::ObsOptions obs_options_from_config(const Config& cfg) {
  obs::ObsOptions oo;
  oo.trace_path = cfg.get_str("observability", "trace_path", "");
  oo.metrics_path = cfg.get_str("observability", "metrics_path", "");
  oo.enabled = cfg.get_bool(
      "observability", "enabled",
      !oo.trace_path.empty() || !oo.metrics_path.empty());
  return oo;
}

InferenceOptions inference_from_config(const Config& cfg) {
  InferenceOptions io;
  io.prune_rms = cfg.get_double("inference", "prune_rms", 0.0);
  io.probes =
      static_cast<std::size_t>(cfg.get_int("inference", "probes", 32));
  io.min_hidden =
      static_cast<std::size_t>(cfg.get_int("inference", "min_hidden", 2));
  io.engine_path = cfg.get_str("inference", "engine_path", "");
  const bool any_key =
      cfg.has("inference", "prune_rms") || cfg.has("inference", "probes") ||
      cfg.has("inference", "min_hidden") ||
      cfg.has("inference", "engine_path");
  io.enabled = cfg.get_bool("inference", "enabled", any_key);
  return io;
}

}  // namespace sickle
