#include "sickle/session.hpp"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <utility>

#include "sickle/stage.hpp"

namespace sickle {

namespace {

/// Process-global decoded-block cache shared by every session's
/// "series"-backend readers (keys salted per container file, see
/// ReaderOptions::shared_cache). Intentionally leaked: readers inside
/// in-flight cases may touch it during static destruction, exactly like
/// ThreadPool::global() and MetricsRegistry::global().
store::BlockCache& session_block_cache() {
  static auto* cache =
      new store::BlockCache(/*cache_bytes=*/256ull << 20,
                            /*chunk_bytes_hint=*/256u << 10);
  return *cache;
}

/// A failure's stage is whatever state the case was in when it threw —
/// so a corrupt spill surfaces as kSampling even when the underlying
/// throw was a store-level RuntimeError.
CaseErrorCode classify(CaseState state) noexcept {
  switch (state) {
    case CaseState::kIngesting: return CaseErrorCode::kIngest;
    case CaseState::kSelecting: return CaseErrorCode::kSelection;
    case CaseState::kSampling: return CaseErrorCode::kSampling;
    case CaseState::kTraining: return CaseErrorCode::kTraining;
    default: return CaseErrorCode::kInternal;
  }
}

}  // namespace

namespace detail {

/// One submitted case: the bundle + config it will run, its observable
/// lifecycle (state/progress/result guarded by mu), and the cancel flag
/// the orchestrator polls through the stage::Observer interface.
class CaseTask final : public stage::Observer {
 public:
  CaseTask(std::uint64_t id, ProducerBundle&& bundle, CaseConfig cfg,
           std::weak_ptr<SessionState> session)
      : id_(id),
        bundle_(std::move(bundle)),
        cfg_(std::move(cfg)),
        session_(std::move(session)) {}

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] std::shared_ptr<SessionState> session() const {
    return session_.lock();
  }

  // stage::Observer — called from the runner thread mid-case.
  void on_state(CaseState state) override {
    std::lock_guard<std::mutex> lk(mu_);
    state_ = state;
    progress_done_ = 0;
    progress_total_ = 0;
  }
  void on_progress(std::size_t done, std::size_t total) override {
    std::lock_guard<std::mutex> lk(mu_);
    progress_done_ = done;
    progress_total_ = total;
  }
  [[nodiscard]] bool cancel_requested() const override {
    return cancel_.load(std::memory_order_relaxed);
  }

  /// Run the case on the calling (runner) thread and record the outcome.
  void execute() {
    if (cancel_.load(std::memory_order_relaxed)) {
      finish(CaseState::kCancelled);
      return;
    }
    try {
      CaseReport report = stage::run_staged(bundle_, cfg_, this);
      {
        std::lock_guard<std::mutex> lk(mu_);
        report_ = std::move(report);
      }
      finish(CaseState::kDone);
    } catch (const CancelledError&) {
      finish(CaseState::kCancelled);
    } catch (const CaseError& e) {
      fail(e.code(), e.what());
    } catch (const std::exception& e) {
      CaseState at;
      {
        std::lock_guard<std::mutex> lk(mu_);
        at = state_;
      }
      fail(classify(at), e.what());
    }
  }

  [[nodiscard]] CaseStatus status() const {
    std::lock_guard<std::mutex> lk(mu_);
    CaseStatus s;
    s.state = state_;
    s.progress_done = progress_done_;
    s.progress_total = progress_total_;
    s.error_code = error_code_;
    s.error = error_;
    return s;
  }

  [[nodiscard]] const CaseReport& wait() const {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return terminal(state_); });
    if (state_ == CaseState::kCancelled) throw CancelledError();
    if (state_ == CaseState::kFailed) throw CaseError(error_code_, error_);
    return report_;
  }

  /// Flag cancellation for the checkpoint polls; the session additionally
  /// short-circuits tasks still in its queue (mark_cancelled).
  void request_cancel() noexcept {
    cancel_.store(true, std::memory_order_relaxed);
  }

  /// Terminal-cancel a task that never started running.
  void mark_cancelled() { finish(CaseState::kCancelled); }

  [[nodiscard]] bool terminal_state() const {
    std::lock_guard<std::mutex> lk(mu_);
    return terminal(state_);
  }

 private:
  static bool terminal(CaseState s) noexcept {
    return s == CaseState::kDone || s == CaseState::kFailed ||
           s == CaseState::kCancelled;
  }

  void finish(CaseState s) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      state_ = s;
    }
    cv_.notify_all();
  }

  void fail(CaseErrorCode code, std::string what) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      error_code_ = code;
      error_ = std::move(what);
      state_ = CaseState::kFailed;
    }
    cv_.notify_all();
  }

  const std::uint64_t id_;
  ProducerBundle bundle_;
  CaseConfig cfg_;
  std::weak_ptr<SessionState> session_;
  std::atomic<bool> cancel_{false};
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  CaseState state_ = CaseState::kQueued;
  std::size_t progress_done_ = 0;
  std::size_t progress_total_ = 0;
  CaseErrorCode error_code_ = CaseErrorCode::kInternal;
  std::string error_;
  CaseReport report_;
};

/// Shared between the session facade, its runner threads, and (via
/// CaseHandle cancel) task owners. Runners hold the shared_ptr, so a
/// session destroyed mid-drain leaves no dangling state.
struct SessionState {
  mutable std::mutex mu;
  std::condition_variable cv;
  std::deque<std::shared_ptr<CaseTask>> queue;
  /// Tasks currently executing on a runner — so teardown can flag their
  /// cancel for the next orchestrator checkpoint.
  std::vector<std::shared_ptr<CaseTask>> active;
  std::size_t running = 0;
  bool stopping = false;
};

}  // namespace detail

// ----------------------------------------------------------- CaseHandle

std::uint64_t CaseHandle::id() const {
  SICKLE_CHECK_MSG(task_ != nullptr, "empty CaseHandle");
  return task_->id();
}

CaseStatus CaseHandle::status() const {
  SICKLE_CHECK_MSG(task_ != nullptr, "empty CaseHandle");
  return task_->status();
}

const CaseReport& CaseHandle::wait() const {
  SICKLE_CHECK_MSG(task_ != nullptr, "empty CaseHandle");
  return task_->wait();
}

bool CaseHandle::cancel() const {
  SICKLE_CHECK_MSG(task_ != nullptr, "empty CaseHandle");
  task_->request_cancel();
  // Still queued? Pull it out of the FIFO right now so the queue slot
  // frees immediately instead of waiting for a runner to pop-and-drop it.
  if (auto st = task_->session()) {
    bool dequeued = false;
    {
      std::lock_guard<std::mutex> lk(st->mu);
      for (auto it = st->queue.begin(); it != st->queue.end(); ++it) {
        if (it->get() == task_.get()) {
          st->queue.erase(it);
          dequeued = true;
          break;
        }
      }
    }
    if (dequeued) {
      task_->mark_cancelled();
      st->cv.notify_all();
      return true;
    }
  }
  const CaseStatus s = task_->status();
  if (s.state == CaseState::kCancelled) return true;
  return !(s.state == CaseState::kDone || s.state == CaseState::kFailed);
}

// ---------------------------------------------------------- CaseSession

CaseSession::CaseSession(SessionOptions opts)
    : opts_(opts), state_(std::make_shared<detail::SessionState>()) {
  if (opts_.max_concurrent_cases == 0) opts_.max_concurrent_cases = 1;
  runners_.reserve(opts_.max_concurrent_cases);
  for (std::size_t i = 0; i < opts_.max_concurrent_cases; ++i) {
    runners_.emplace_back([st = state_] {
      for (;;) {
        std::shared_ptr<detail::CaseTask> task;
        {
          std::unique_lock<std::mutex> lk(st->mu);
          st->cv.wait(lk,
                      [&] { return st->stopping || !st->queue.empty(); });
          if (st->queue.empty()) return;  // stopping and drained
          task = std::move(st->queue.front());
          st->queue.pop_front();
          ++st->running;
          st->active.push_back(task);
        }
        st->cv.notify_all();  // a queue slot freed up
        task->execute();
        {
          std::lock_guard<std::mutex> lk(st->mu);
          --st->running;
          for (auto it = st->active.begin(); it != st->active.end(); ++it) {
            if (it->get() == task.get()) {
              st->active.erase(it);
              break;
            }
          }
        }
        st->cv.notify_all();
      }
    });
  }
}

CaseSession::~CaseSession() {
  std::deque<std::shared_ptr<detail::CaseTask>> orphaned;
  {
    std::lock_guard<std::mutex> lk(state_->mu);
    state_->stopping = true;
    orphaned.swap(state_->queue);
    for (const auto& task : state_->active) task->request_cancel();
  }
  // Queued cases are cancelled outright; running ones get the cancel flag
  // and are interrupted at their next checkpoint.
  for (const auto& task : orphaned) {
    task->request_cancel();
    task->mark_cancelled();
  }
  state_->cv.notify_all();
  for (auto& runner : runners_) runner.join();
}

CaseHandle CaseSession::submit(ProducerBundle&& bundle, CaseConfig cfg) {
  // Reject BEFORE touching the bundle: a throwing submit leaves the
  // caller's producer exactly as it was.
  auto issues = cfg.validate();
  if (!issues.empty()) throw ConfigError(std::move(issues));

  if (opts_.shared_block_cache && cfg.backend == "series") {
    cfg.store.shared_cache = &session_block_cache();
  }

  static std::atomic<std::uint64_t> next_id{1};
  std::shared_ptr<detail::CaseTask> task;
  {
    std::lock_guard<std::mutex> lk(state_->mu);
    SICKLE_CHECK_MSG(!state_->stopping, "submit on a stopping CaseSession");
    if (state_->queue.size() >= opts_.queue_capacity) {
      throw QueueFullError(opts_.queue_capacity);
    }
    task = std::make_shared<detail::CaseTask>(
        next_id.fetch_add(1), std::move(bundle), std::move(cfg), state_);
    state_->queue.push_back(task);
  }
  state_->cv.notify_all();
  return CaseHandle(task);
}

std::size_t CaseSession::queued() const {
  std::lock_guard<std::mutex> lk(state_->mu);
  return state_->queue.size();
}

std::size_t CaseSession::running() const {
  std::lock_guard<std::mutex> lk(state_->mu);
  return state_->running;
}

store::CacheStats CaseSession::shared_cache_stats() {
  return session_block_cache().stats();
}

}  // namespace sickle
