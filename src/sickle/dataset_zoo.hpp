/// @file dataset_zoo.hpp
/// @brief Dataset zoo: Table 1 of the paper, at single-node scale.
///
/// Each bundle carries the generated data plus the paper's variable roles
/// (K-means cluster variable, NN inputs/outputs). Grid sizes are scaled
/// down per DESIGN.md §2; `scale` >= 1 multiplies the default extents for
/// larger runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "field/field.hpp"

namespace sickle {

struct DatasetBundle {
  field::Dataset data{"empty"};
  std::vector<std::string> input_vars;
  std::vector<std::string> output_vars;
  std::string cluster_var;
  /// Per-snapshot scalar target for sample-single problems (OF2D drag);
  /// empty otherwise.
  std::vector<double> scalar_target;
  std::string paper_size;  ///< the size the paper reports for this dataset
};

/// Labels: "TC2D", "OF2D", "SST-P1F4", "SST-P1F100", "GESTS-2048",
/// "GESTS-8192". Throws RuntimeError for unknown labels.
[[nodiscard]] DatasetBundle make_dataset(const std::string& label,
                                         std::uint64_t seed = 42,
                                         double scale = 1.0);

/// All known labels, in Table 1 order.
[[nodiscard]] std::vector<std::string> dataset_labels();

}  // namespace sickle
