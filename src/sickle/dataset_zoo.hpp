/// @file dataset_zoo.hpp
/// @brief Dataset zoo: Table 1 of the paper, at single-node scale.
///
/// Each bundle carries the generated data plus the paper's variable roles
/// (K-means cluster variable, NN inputs/outputs). Grid sizes are scaled
/// down per DESIGN.md §2; `scale` >= 1 multiplies the default extents for
/// larger runs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "field/field.hpp"
#include "flow/producer.hpp"

namespace sickle {

struct DatasetBundle {
  field::Dataset data{"empty"};
  std::vector<std::string> input_vars;
  std::vector<std::string> output_vars;
  std::string cluster_var;
  /// Per-snapshot scalar target for sample-single problems (OF2D drag);
  /// empty otherwise.
  std::vector<double> scalar_target;
  std::string paper_size;  ///< the size the paper reports for this dataset
};

/// A dataset's variable roles plus a snapshot-at-a-time producer — the
/// streaming-ingest twin of DatasetBundle. run_case can consume this
/// without a full Dataset ever existing (backend skl2/series with
/// ingest: streaming); make_dataset materializes it for in-RAM work.
struct ProducerBundle {
  std::unique_ptr<flow::SnapshotProducer> producer;
  std::string name;  ///< Dataset name used when materializing
  std::vector<std::string> input_vars;
  std::vector<std::string> output_vars;
  std::string cluster_var;
  std::string paper_size;  ///< the size the paper reports for this dataset
};

/// Labels: "TC2D", "OF2D", "SST-P1F4", "SST-P1F100", "GESTS-2048",
/// "GESTS-8192". Throws RuntimeError for unknown labels. Materializes
/// make_dataset_producer, so streamed and materialized snapshots are
/// bit-identical by construction.
[[nodiscard]] DatasetBundle make_dataset(const std::string& label,
                                         std::uint64_t seed = 42,
                                         double scale = 1.0);

/// Streaming form of make_dataset: same labels, seeds, and scaling, but
/// snapshots are produced lazily one at a time.
[[nodiscard]] ProducerBundle make_dataset_producer(const std::string& label,
                                                   std::uint64_t seed = 42,
                                                   double scale = 1.0);

/// Drain a ProducerBundle into the equivalent DatasetBundle — the single
/// materialization point shared by make_dataset and run_case's
/// ingest: materialize path, so the two can never diverge field by field.
/// The producer is consumed.
[[nodiscard]] DatasetBundle materialize_bundle(ProducerBundle& bundle);

/// All known labels, in Table 1 order.
[[nodiscard]] std::vector<std::string> dataset_labels();

}  // namespace sickle
