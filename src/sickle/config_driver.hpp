/// @file config_driver.hpp
/// @brief Config-driven case construction: the paper's case.yaml workflow.
///
/// The reference runs `srun -n 32 python subsample.py case.yaml` and
/// `python train.py case.yaml`; this module maps the same YAML-subset keys
/// onto PipelineConfig / CaseConfig so the CLI tools (tools/) and user code
/// can drive SICKLE from config files. Key names follow the paper's sample
/// YAML (shared / subsample / train sections, nxsl/nysl/nzsl cube edges,
/// hypercubes/method sampling choices, arch / window / epochs training
/// knobs).
#pragma once

#include <string>

#include "common/config.hpp"
#include "obs/obs.hpp"
#include "sickle/case.hpp"

namespace sickle {

/// Dataset label: `shared.dataset` (zoo label, e.g. "SST-P1F4"); the
/// paper's `dtype`+`path` pair maps onto the generator zoo offline.
[[nodiscard]] std::string dataset_label_from_config(const Config& cfg);

/// Grid-scale multiplier for the generator zoo: `shared.scale` (default
/// 1.0, must be > 0) — lets CI smoke configs shrink a case without a
/// separate code path.
[[nodiscard]] double dataset_scale_from_config(const Config& cfg);

/// Build the sampling pipeline from the `shared` + `subsample` sections.
/// Missing keys fall back to the same defaults the paper's CLI uses.
/// `subsample.threads` maps onto PipelineConfig::threads (1 = serial,
/// 0 = all hardware threads, N = dedicated pool; samples are bit-identical
/// for every value).
[[nodiscard]] sampling::PipelineConfig pipeline_from_config(
    const Config& cfg);

/// Build the store options from the `store` section:
///   store:
///     backend: skl2        # memory | skl2 | series (via case_from_config)
///     ingest: streaming    # materialize | streaming (via case_from_config)
///     codec: delta         # raw | delta | quant
///     tolerance: 1e-6      # quant max abs error
///     chunk: 32            # cubic chunk edge; chunk_x/y/z override
///     cache_mb: 64         # reader block-cache capacity
///     write_budget_mb: 8   # streaming-writer flush budget (SKL2 v2 + SKL3)
///     spill_dir: /scratch  # spill placement (CaseConfig::spill_dir)
[[nodiscard]] store::StoreOptions store_options_from_config(
    const Config& cfg);

/// Build the temporal snapshot-selection stage from the `temporal`
/// section; absent section (or num_snapshots: 0) disables the stage:
///   temporal:
///     num_snapshots: 10    # snapshots to keep (0 = keep all)
///     variable: T          # PDF variable; default cluster_var
///     bins: 100
[[nodiscard]] TemporalSelection temporal_from_config(const Config& cfg);

/// Build the full case (pipeline + training) from all three sections.
[[nodiscard]] CaseConfig case_from_config(const Config& cfg);

/// Build the observability options from the `observability` section:
///   observability:
///     trace_path: run.trace.json    # Chrome trace-event JSON export
///     metrics_path: run.metrics.json# registry snapshot export
///     enabled: true                 # optional master switch
/// `enabled` defaults to true exactly when either path is set, so
/// setting a path is enough to turn the layer on; an explicit
/// `enabled: false` keeps a config's paths around without paying for
/// collection. Absent section = disabled = zero overhead.
[[nodiscard]] obs::ObsOptions obs_options_from_config(const Config& cfg);

/// Knobs for the post-training surrogate inference stage (infer::Engine
/// compilation + magnitude pruning) consumed by tools/sickle_train.
struct InferenceOptions {
  bool enabled = false;
  /// Probe-RMS budget handed to infer::prune; 0 disables pruning (the
  /// engine is still compiled and parity-checked).
  double prune_rms = 0.0;
  std::size_t probes = 32;      ///< held-out windows for the prune search
  std::size_t min_hidden = 2;   ///< pruning floor (clamped to the ladder)
  std::string engine_path;      ///< write the compiled engine here ("" = no)
};

/// Build the inference options from the `inference` section:
///   inference:
///     enabled: true          # optional master switch
///     prune_rms: 0.05        # probe-RMS budget (0 = compile only)
///     probes: 32
///     min_hidden: 2
///     engine_path: drag.engine
/// `enabled` defaults to true exactly when any other inference key is
/// set, mirroring the observability section; absent section = disabled.
[[nodiscard]] InferenceOptions inference_from_config(const Config& cfg);

/// Normalize the paper's architecture spellings ("MLP_transformer",
/// "CNN_Transformer", "lstm", ...) onto the internal names; throws
/// RuntimeError for unknown architectures.
[[nodiscard]] std::string normalize_arch(const std::string& arch);

}  // namespace sickle
