/// @file session.hpp
/// @brief CaseSession: the library-shaped, concurrent case-curation API.
///
/// run_case (case.hpp) is batch-shaped — one blocking call, one case, one
/// thread. CaseSession wraps the SAME staged orchestrator
/// (stage::run_staged, so the two can never diverge bit-wise) in a
/// submit/status/wait/cancel lifecycle:
///
///   CaseSession session({.max_concurrent_cases = 4});
///   CaseHandle h = session.submit(make_dataset_producer("SST-P1F4"), cfg);
///   ... h.status() ...        // non-blocking: state + stage progress
///   CaseReport r = h.wait();  // blocks; throws typed CaseError on failure
///
/// Concurrency model: the session owns `max_concurrent_cases` runner
/// threads draining a bounded FIFO queue (admission control: submit
/// throws QueueFullError once `queue_capacity` cases are waiting, leaving
/// the caller's bundle untouched). Cases run the orchestrator exactly as
/// run_case does; with threads > 1 in the pipeline config they share the
/// process ThreadPool, and "series"-backend readers share one
/// process-global BlockCache (keys salted per container file) so N
/// concurrent cases stay within ONE decoded-block byte budget instead of
/// N. Sample hashes, reports, and training losses are bit-identical to
/// serial run_case for every case (test-asserted).
///
/// Errors are typed at this boundary (errors.hpp): submit throws
/// ConfigError (every issue at once) or QueueFullError; wait rethrows the
/// case's failure as CaseError with a stage-classified code, or
/// CancelledError. status() reports the same code/message non-throwing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "sickle/case.hpp"
#include "sickle/errors.hpp"
#include "store/block_cache.hpp"

namespace sickle {

namespace detail {
class CaseTask;
struct SessionState;
}  // namespace detail

/// Session-wide knobs (the server's `server:` config section maps here).
struct SessionOptions {
  /// Runner threads = cases in flight at once. Each case additionally
  /// parallelizes internally per its own pipeline.threads.
  std::size_t max_concurrent_cases = 1;
  /// Cases allowed to WAIT in the FIFO queue (running cases excluded);
  /// submit throws QueueFullError beyond this.
  std::size_t queue_capacity = 16;
  /// Route "series"-backend readers of all cases through one
  /// process-global BlockCache (see shared_cache_stats). Off = every
  /// reader owns a private cache, exactly like standalone run_case.
  bool shared_block_cache = true;
};

/// Non-blocking snapshot of one case's lifecycle.
struct CaseStatus {
  CaseState state = CaseState::kQueued;
  /// Progress within the current stage: snapshots done/total for
  /// ingest/sampling (0/0 when unknown or not applicable).
  std::size_t progress_done = 0;
  std::size_t progress_total = 0;
  /// Failure classification + message; meaningful only when
  /// state == kFailed.
  CaseErrorCode error_code = CaseErrorCode::kInternal;
  std::string error;
};

/// Shareable reference to a submitted case. Copies refer to the same
/// case; the case's result stays retrievable as long as any handle (or
/// the session) lives. All methods are thread-safe.
class CaseHandle {
 public:
  CaseHandle() = default;

  [[nodiscard]] bool valid() const noexcept { return task_ != nullptr; }
  /// Session-unique, monotonically increasing submission id.
  [[nodiscard]] std::uint64_t id() const;

  /// Current state + progress, never blocking.
  [[nodiscard]] CaseStatus status() const;

  /// Block until the case is terminal. Returns the report on kDone;
  /// throws CancelledError on kCancelled and CaseError (with the
  /// stage-classified code) on kFailed. The reference lives as long as
  /// this handle does.
  [[nodiscard]] const CaseReport& wait() const;

  /// Request cancellation. A still-queued case is removed immediately
  /// (freeing its queue slot) and becomes kCancelled; a running case is
  /// interrupted at the orchestrator's next checkpoint (latency: one
  /// snapshot's work). Returns true if the case will end (or ended)
  /// cancelled, false if it already reached kDone/kFailed.
  bool cancel() const;

 private:
  friend class CaseSession;
  explicit CaseHandle(std::shared_ptr<detail::CaseTask> task)
      : task_(std::move(task)) {}

  std::shared_ptr<detail::CaseTask> task_;
};

class CaseSession {
 public:
  explicit CaseSession(SessionOptions opts = {});
  /// Cancels every queued case, requests cancellation of running ones,
  /// and joins the runners. Wait on handles you care about first.
  ~CaseSession();

  CaseSession(const CaseSession&) = delete;
  CaseSession& operator=(const CaseSession&) = delete;

  /// Validate `cfg` (throws ConfigError carrying EVERY issue) and enqueue
  /// the case (throws QueueFullError at capacity). Both rejections happen
  /// BEFORE the bundle is consumed, so the caller keeps a usable producer
  /// on failure. On success the bundle is owned by the case.
  CaseHandle submit(ProducerBundle&& bundle, CaseConfig cfg);

  /// Cases waiting in the FIFO queue right now (excludes running).
  [[nodiscard]] std::size_t queued() const;
  /// Cases executing right now.
  [[nodiscard]] std::size_t running() const;

  [[nodiscard]] const SessionOptions& options() const noexcept {
    return opts_;
  }

  /// Lifetime tallies of the process-global session block cache (shared
  /// by every session with shared_block_cache on — stats accumulate
  /// across sessions for the life of the process).
  [[nodiscard]] static store::CacheStats shared_cache_stats();

 private:
  SessionOptions opts_;
  std::shared_ptr<detail::SessionState> state_;
  std::vector<std::thread> runners_;
};

}  // namespace sickle
