#include "sickle/stage.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <iterator>
#include <map>
#include <memory>
#include <numeric>
#include <span>

#include "common/timer.hpp"
#include "field/hypercube.hpp"
#include "ml/models.hpp"
#include "obs/trace.hpp"
#include "sampling/point_samplers.hpp"
#include "store/series_store.hpp"

namespace sickle {

namespace stage {

namespace {

namespace fs = std::filesystem;

/// Per-variable affine scaler (global z-score). All training tensors are
/// standardized so losses are comparable across datasets and targets with
/// large physical magnitudes (eps, pv) train properly.
struct VarScaler {
  double mean = 0.0;
  double inv_std = 1.0;
  [[nodiscard]] float apply(double x) const noexcept {
    return static_cast<float>((x - mean) * inv_std);
  }
};

/// Streaming z-score moment accumulator: feed snapshots one at a time
/// (variables inner, snapshots outer — the exact accumulation order of a
/// whole-series fit_scalers pass, so scalers computed incrementally
/// during ingest are bit-identical to a dedicated post-hoc pass). The
/// fused streaming-skl2 path folds each spilled snapshot in as it is
/// sampled, eliminating the scaler pass over the store entirely.
class ScalerAccumulator {
 public:
  explicit ScalerAccumulator(std::vector<std::string> vars)
      : vars_(std::move(vars)), accs_(vars_.size()) {}

  void accumulate(const field::FieldSource& src) {
    for (std::size_t v = 0; v < vars_.size(); ++v) {
      field::for_each_flat_batch(src, vars_[v],
                                 [&](std::span<const double> vals) {
                                   for (const double x : vals) {
                                     accs_[v].sum += x;
                                     accs_[v].sq += x * x;
                                     ++accs_[v].n;
                                   }
                                 });
    }
  }

  [[nodiscard]] std::map<std::string, VarScaler> take() const {
    std::map<std::string, VarScaler> out;
    for (std::size_t v = 0; v < vars_.size(); ++v) {
      SICKLE_CHECK_MSG(accs_[v].n > 0, "scaler saw no values: " + vars_[v]);
      VarScaler s;
      s.mean = accs_[v].sum / static_cast<double>(accs_[v].n);
      const double var_x = std::max(
          accs_[v].sq / static_cast<double>(accs_[v].n) - s.mean * s.mean,
          1e-24);
      s.inv_std = 1.0 / std::sqrt(var_x);
      out[vars_[v]] = s;
    }
    return out;
  }

 private:
  struct Acc {
    double sum = 0.0, sq = 0.0;
    std::size_t n = 0;
  };
  std::vector<std::string> vars_;
  std::vector<Acc> accs_;
};

/// Fit z-score scalers by streaming the series snapshot-major (one pass
/// over the store, all variables accumulated per visit — out-of-core
/// sources pay one reader/cache walk per snapshot, not one per variable).
/// Each variable's accumulator still sees its values in t-ascending flat
/// order — the same sequence as a span scan over an in-memory Dataset —
/// so scalers (and therefore training tensors) are bit-identical across
/// the memory/skl2/series backends for lossless codecs.
std::map<std::string, VarScaler> fit_scalers(
    const field::SeriesSource& series, std::span<const std::string> vars) {
  ScalerAccumulator acc(std::vector<std::string>(vars.begin(), vars.end()));
  for (std::size_t t = 0; t < series.num_snapshots(); ++t) {
    acc.accumulate(series.source(t));
  }
  return acc.take();
}

/// Raw (unstandardized) dense values of `vars` inside a cube, as a
/// [C, E, E, E]-ordered flat vector (channel-major over the cube's
/// z-fastest point order). Works over any FieldSource, so the builder
/// pulls targets from RAM or from a spilled store alike.
std::vector<double> raw_dense_cube(const field::FieldSource& src,
                                   const field::CubeTiling& tiling,
                                   std::size_t cube_id,
                                   std::span<const std::string> vars) {
  const auto cube =
      field::extract_cube(src, tiling, tiling.coord(cube_id), vars);
  std::vector<double> out;
  out.reserve(vars.size() * cube.points());
  for (std::size_t v = 0; v < vars.size(); ++v) {
    for (std::size_t p = 0; p < cube.points(); ++p) {
      out.push_back(cube.values[v][p]);
    }
  }
  return out;
}

/// Raw sampled input features of a cube as a fixed-length [C * N] row
/// (variable-major). Pads by cycling when fewer than N samples exist.
std::vector<double> raw_sampled_row(const sampling::CubeSamples& cs,
                                    std::span<const std::string> input_vars,
                                    std::size_t n_points) {
  std::vector<double> row;
  row.reserve(input_vars.size() * n_points);
  const std::size_t have = cs.samples.points();
  SICKLE_CHECK_MSG(have > 0, "cube produced no samples");
  for (const auto& var : input_vars) {
    const auto col = cs.samples.column(var);
    for (std::size_t i = 0; i < n_points; ++i) {
      row.push_back(col[i % have]);
    }
  }
  return row;
}

/// Standardize a variable-major raw block (per-var stride =
/// raw.size() / vars.size()) with each variable's scaler — the exact
/// per-variable, point-ascending float arithmetic the builder always
/// used, so deferring standardization to take() changes no bit.
std::vector<float> standardize(std::span<const double> raw,
                               std::span<const std::string> vars,
                               const std::map<std::string, VarScaler>& sc) {
  const std::size_t per = raw.size() / vars.size();
  std::vector<float> out;
  out.reserve(raw.size());
  for (std::size_t v = 0; v < vars.size(); ++v) {
    const VarScaler& s = sc.at(vars[v]);
    for (std::size_t p = 0; p < per; ++p) {
      out.push_back(s.apply(raw[v * per + p]));
    }
  }
  return out;
}

/// Streaming training-set builder: accepted cubes are captured as RAW
/// examples the moment they are sampled, pulling dense values from the
/// snapshot source that produced them (its blocks are still warm in the
/// store's LRU cache) — no second pass over the raw data and no
/// accumulation of the full PipelineResult. Standardization is deferred
/// to take(): scalers need only exist by then, so the fused streaming
/// path can accumulate their moments DURING ingest instead of paying a
/// dedicated pass over the spilled store up front. Both modes run the
/// identical per-variable float arithmetic in the identical order, so
/// tensors are bit-identical either way.
class TrainingSetBuilder {
 public:
  /// Deferred-scaler mode: no pass over any series; pair with
  /// take(scalers) once the moments are in.
  TrainingSetBuilder(const CaseConfig& cfg, const field::GridShape& grid)
      : cfg_(cfg), tiling_(grid, cfg.pipeline.cube),
        edge_(cfg.pipeline.cube.ex) {
    const auto& pl = cfg.pipeline;
    SICKLE_CHECK_MSG(pl.cube.ex == pl.cube.ey && pl.cube.ex == pl.cube.ez,
                     "training cubes must be isotropic (E^3)");
    SICKLE_CHECK_MSG(!pl.output_vars.empty(), "training needs output_vars");
    SICKLE_CHECK_MSG(cfg.arch == "MLP_Transformer" ||
                         cfg.arch == "CNN_Transformer" ||
                         cfg.arch == "Foundation",
                     "build_training_set: unsupported arch " + cfg.arch);
  }

  /// Immediate-scaler mode: fit global z-score scalers with a dedicated
  /// pass over `series` now; take() uses them.
  TrainingSetBuilder(const field::SeriesSource& series, const CaseConfig& cfg)
      : TrainingSetBuilder(cfg, series.source(0).shape()) {
    const auto& pl = cfg.pipeline;
    std::vector<std::string> all_vars = pl.input_vars;
    all_vars.insert(all_vars.end(), pl.output_vars.begin(),
                    pl.output_vars.end());
    scalers_ = fit_scalers(series, std::span<const std::string>(all_vars));
    have_scalers_ = true;
  }

  /// Capture one sampled cube's raw values. `src` must be the snapshot
  /// the cube was sampled from.
  void push(const field::FieldSource& src, const sampling::CubeSamples& cs) {
    const auto& pl = cfg_.pipeline;
    RawExample ex;
    ex.target = raw_dense_cube(src, tiling_, cs.cube_id,
                               std::span<const std::string>(pl.output_vars));
    if (cfg_.arch == "MLP_Transformer") {
      ex.input = raw_sampled_row(
          cs, std::span<const std::string>(pl.input_vars), pl.num_samples);
    } else {  // CNN_Transformer / Foundation: dense input cube
      ex.input = raw_dense_cube(src, tiling_, cs.cube_id,
                                std::span<const std::string>(pl.input_vars));
    }
    raw_.push_back(std::move(ex));
  }

  /// Standardize with the immediate-mode scalers fit at construction.
  [[nodiscard]] ml::TensorDataset take() {
    SICKLE_CHECK_MSG(have_scalers_,
                     "deferred TrainingSetBuilder needs take(scalers)");
    return take(scalers_);
  }

  /// Standardize every captured example with `sc` and build the tensors.
  [[nodiscard]] ml::TensorDataset take(
      const std::map<std::string, VarScaler>& sc) {
    const auto& pl = cfg_.pipeline;
    const std::size_t c_out = pl.output_vars.size();
    ml::TensorDataset out;
    for (RawExample& ex : raw_) {
      auto tgt = standardize(std::span<const double>(ex.target),
                             std::span<const std::string>(pl.output_vars),
                             sc);
      ml::Tensor target({c_out, edge_, edge_, edge_}, std::move(tgt));
      auto in1 = standardize(std::span<const double>(ex.input),
                             std::span<const std::string>(pl.input_vars),
                             sc);
      if (cfg_.arch == "MLP_Transformer") {
        const std::size_t f = pl.input_vars.size() * pl.num_samples;
        std::vector<float> in;
        in.reserve(cfg_.window * f);
        // Window: this cube's samples from the `window` most recent
        // snapshots (repeating the earliest when history is short).
        for (std::size_t w = 0; w < cfg_.window; ++w) {
          in.insert(in.end(), in1.begin(), in1.end());
        }
        out.push(ml::Tensor({cfg_.window, f}, std::move(in)),
                 std::move(target));
      } else if (cfg_.arch == "CNN_Transformer") {
        std::vector<float> seq;
        seq.reserve(cfg_.window * in1.size());
        for (std::size_t w = 0; w < cfg_.window; ++w) {
          seq.insert(seq.end(), in1.begin(), in1.end());
        }
        out.push(ml::Tensor({cfg_.window, pl.input_vars.size(), edge_,
                             edge_, edge_},
                            std::move(seq)),
                 std::move(target));
      } else {  // Foundation (arch validated at construction)
        out.push(ml::Tensor({pl.input_vars.size(), edge_, edge_, edge_},
                            std::move(in1)),
                 std::move(target));
      }
      ex = RawExample{};  // release raw doubles as tensors replace them
    }
    raw_.clear();
    return out;
  }

 private:
  struct RawExample {
    std::vector<double> input;   ///< sampled row (MLP) or dense cube
    std::vector<double> target;  ///< dense output cube
  };

  const CaseConfig& cfg_;
  field::CubeTiling tiling_;
  std::size_t edge_;
  std::map<std::string, VarScaler> scalers_;
  bool have_scalers_ = false;
  std::vector<RawExample> raw_;
};

/// Reader-side I/O tallies of a spill backend, folded across every
/// ChunkReader the backend recycled — the per-case view of what the
/// global `store.cache.*` registry counters see process-wide. Lands in
/// CaseReport::metrics.
struct SpillIoStats {
  store::CacheStats cache;
  std::uint64_t bytes_read = 0;

  void fold(const store::ChunkReader& reader) {
    fold(reader.cache_stats(), reader.io_bytes_read());
  }
  void fold(const store::CacheStats& cs, std::uint64_t io_bytes) {
    cache.hits += cs.hits;
    cache.misses += cs.misses;
    cache.evictions += cs.evictions;
    bytes_read += io_bytes;
  }
};

void record_spill_metrics(CaseReport& report, const SpillIoStats& io) {
  report.metrics["store.cache_hits"] = static_cast<double>(io.cache.hits);
  report.metrics["store.cache_misses"] =
      static_cast<double>(io.cache.misses);
  report.metrics["store.cache_evictions"] =
      static_cast<double>(io.cache.evictions);
  report.metrics["store.io_bytes_read"] =
      static_cast<double>(io.bytes_read);
}

/// Per-snapshot SKL2 spill presented as a SeriesSource (the legacy
/// "skl2" backend, kept for compatibility with single-snapshot `.skl2`
/// tooling). Exactly one spill file exists on disk at a time — the
/// legacy write/sample/delete contract, O(one compressed snapshot) of
/// scratch space no matter how long the series. source(t) encodes
/// snapshot t on demand and deletes the previous spill, so a stage that
/// revisits snapshots (the temporal PDF passes) re-encodes them; runs
/// that need every snapshot resident at once should use the "series"
/// backend, which pays one SKL3 container instead. source(t) invalidates
/// the previously borrowed view when t changes — the documented
/// SeriesSource contract for sequential drivers.
class Skl2SpillSeries final : public field::SeriesSource {
 public:
  Skl2SpillSeries(const field::Dataset& data, const fs::path& dir,
                  const store::StoreOptions& opts, std::size_t* store_bytes,
                  std::size_t* peak_disk_bytes = nullptr)
      : data_(data),
        dir_(dir),
        opts_(opts),
        store_bytes_(store_bytes),
        peak_disk_bytes_(peak_disk_bytes),
        counted_(data.num_snapshots(), false) {}

  [[nodiscard]] std::size_t num_snapshots() const override {
    return data_.num_snapshots();
  }

  [[nodiscard]] const field::FieldSource& source(
      std::size_t t) const override {
    SICKLE_CHECK(t < num_snapshots());
    if (reader_ == nullptr || current_ != t) {
      if (reader_ != nullptr) io_.fold(*reader_);
      reader_.reset();  // close before deleting the previous spill file
      if (current_ != kNone) {
        std::error_code ec;
        fs::remove(path(current_), ec);
      }
      const auto written =
          store::write_store(data_.snapshot(t), path(t), opts_);
      // store_bytes reports the series' compressed footprint: count each
      // snapshot once, not once per re-encode.
      if (store_bytes_ != nullptr && !counted_[t]) {
        *store_bytes_ += written.file_bytes;
        counted_[t] = true;
      }
      // The previous spill was deleted above, so exactly one file is live.
      if (peak_disk_bytes_ != nullptr) {
        *peak_disk_bytes_ = std::max(*peak_disk_bytes_, written.file_bytes);
      }
      reader_ =
          std::make_unique<store::ChunkReader>(path(t), opts_.cache_bytes);
      current_ = t;
    }
    return *reader_;
  }

  /// Lifetime I/O tallies including the currently open reader.
  [[nodiscard]] SpillIoStats io_stats() const {
    SpillIoStats out = io_;
    if (reader_ != nullptr) out.fold(*reader_);
    return out;
  }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  [[nodiscard]] std::string path(std::size_t t) const {
    return (dir_ / ("snap_" + std::to_string(t) + ".skl2")).string();
  }

  const field::Dataset& data_;
  fs::path dir_;
  store::StoreOptions opts_;
  std::size_t* store_bytes_;
  std::size_t* peak_disk_bytes_;
  mutable std::vector<bool> counted_;
  mutable std::unique_ptr<store::ChunkReader> reader_;
  mutable std::size_t current_ = kNone;
  mutable SpillIoStats io_;
};

/// Spill lifecycle (config-controlled): the directory is removed as soon
/// as the training set is built; if the run throws first, it is kept and
/// its path logged so a failed multi-hour spill can be inspected or
/// resumed instead of silently vanishing.
struct SpillGuard {
  fs::path dir;
  bool armed = false;

  void remove_now() {
    if (!armed) return;
    armed = false;
    std::error_code ec;
    fs::remove_all(dir, ec);
  }

  ~SpillGuard() {
    if (armed) {
      std::fprintf(stderr,
                   "sickle: run_case failed; spilled store kept at %s\n",
                   dir.string().c_str());
    }
  }
};

/// A fresh, collision-free spill directory under `root` (the config's
/// spill_dir or the system temp directory).
fs::path make_spill_dir(const std::string& root) {
  static std::atomic<std::uint64_t> run_id{0};
  const fs::path base =
      root.empty() ? fs::temp_directory_path() : fs::path(root);
  const fs::path dir =
      base / ("sickle_case_store_" + std::to_string(::getpid()) + "_" +
              std::to_string(run_id.fetch_add(1)));
  fs::create_directories(dir);
  return dir;
}

/// Resolve the temporal stage's PDF variable: explicit config, else the
/// cluster variable, else the first input variable.
std::string temporal_variable(const CaseConfig& cfg) {
  if (!cfg.temporal.variable.empty()) return cfg.temporal.variable;
  if (!cfg.pipeline.cluster_var.empty()) return cfg.pipeline.cluster_var;
  SICKLE_CHECK_MSG(!cfg.pipeline.input_vars.empty(),
                   "temporal selection needs a variable");
  return cfg.pipeline.input_vars.front();
}

/// Incremental FNV-1a 64 over POD values (chains store::fnv1a64 through
/// its seed parameter) — the sample-set fingerprint behind
/// CaseReport::sample_hash.
struct Fnv64 {
  std::uint64_t h = store::fnv1a64({});  // empty span returns the basis
  void bytes(const void* p, std::size_t n) noexcept {
    h = store::fnv1a64(
        std::span<const std::uint8_t>(static_cast<const std::uint8_t*>(p), n),
        h);
  }
  template <typename T>
  void pod(const T& v) noexcept {
    bytes(&v, sizeof(T));
  }
};

/// Streaming-ingest skl2 backend: one SKL2 file per snapshot, written
/// up front as the producer yields them (so peak memory is one snapshot,
/// unlike Skl2SpillSeries which re-encodes from RAM on demand). A single
/// reader is recycled across source(t) calls — the documented sequential
/// SeriesSource borrow contract — so reader memory stays O(one cache) no
/// matter how long the series is; revisits (the temporal PDF passes)
/// reopen files instead of re-encoding snapshots.
class Skl2FilesSeries final : public field::SeriesSource {
 public:
  Skl2FilesSeries(std::vector<std::string> paths, std::size_t cache_bytes)
      : paths_(std::move(paths)), cache_bytes_(cache_bytes) {}

  [[nodiscard]] std::size_t num_snapshots() const override {
    return paths_.size();
  }

  [[nodiscard]] const field::FieldSource& source(
      std::size_t t) const override {
    SICKLE_CHECK(t < paths_.size());
    if (reader_ == nullptr || current_ != t) {
      if (reader_ != nullptr) io_.fold(*reader_);
      reader_ =
          std::make_unique<store::ChunkReader>(paths_[t], cache_bytes_);
      current_ = t;
    }
    return *reader_;
  }

  /// Lifetime I/O tallies including the currently open reader.
  [[nodiscard]] SpillIoStats io_stats() const {
    SpillIoStats out = io_;
    if (reader_ != nullptr) out.fold(*reader_);
    return out;
  }

 private:
  std::vector<std::string> paths_;
  std::size_t cache_bytes_;
  mutable std::unique_ptr<store::ChunkReader> reader_;
  mutable std::size_t current_ = static_cast<std::size_t>(-1);
  mutable SpillIoStats io_;
};

/// Mirror the scalar CaseReport fields into the metrics map so one
/// key-value view carries the whole per-case telemetry story.
void finalize_case_metrics(CaseReport& report) {
  report.metrics["case.sampled_points"] =
      static_cast<double>(report.sampled_points);
  report.metrics["case.store_bytes"] =
      static_cast<double>(report.store_bytes);
  report.metrics["case.ingest_peak_bytes"] =
      static_cast<double>(report.ingest_peak_bytes);
  report.metrics["case.ingest_peak_disk_bytes"] =
      static_cast<double>(report.ingest_peak_disk_bytes);
  report.metrics["case.selected_snapshots"] =
      static_cast<double>(report.selected_snapshots.size());
}

/// Reader options for the "series" backend, carrying the session-shared
/// block cache through when the caller opted in (StoreOptions::
/// shared_cache, set by CaseSession).
store::ReaderOptions series_reader_options(const store::StoreOptions& s) {
  store::ReaderOptions ropts{s.cache_bytes, 0, s.prefetch_depth, s.pool};
  ropts.shared_cache = s.shared_cache;
  return ropts;
}

/// Fused rolling-window streaming-skl2 case: with the temporal stage off
/// every snapshot is selected, so ingest, scaler-moment accumulation, and
/// sampling collapse into ONE producer pass — each spill file is written,
/// sampled straight into the (deferred) training-set builder, folded into
/// the z-score moments, and deleted before the next snapshot is produced.
/// Live disk stays O(one compressed snapshot) for any series length
/// (CaseReport::ingest_peak_disk_bytes), while sample_hash and the
/// training tensors stay bit-identical to the non-fused path: the same
/// per-snapshot pipeline over the same SKL2 blocks, the same
/// snapshot-major accumulation order, and the same standardization
/// arithmetic — only WHEN each piece of work happens moves.
CaseReport run_case_fused_skl2(ProducerBundle& bundle, const CaseConfig& cfg,
                               Observer* obs) {
  CaseReport report;
  obs::Span case_span("case.run", "case");
  energy::EnergyCounter sampling_energy;
  ml::TensorDataset data;
  {
    SpillGuard guard;
    guard.dir = make_spill_dir(cfg.spill_dir);
    guard.armed = true;
    const auto& pl = cfg.pipeline;
    std::vector<std::string> all_vars = pl.input_vars;
    all_vars.insert(all_vars.end(), pl.output_vars.begin(),
                    pl.output_vars.end());
    ScalerAccumulator scalers(all_vars);
    std::unique_ptr<TrainingSetBuilder> builder;
    Fnv64 hash;
    const PoolHandle pool = resolve_threads(pl.threads);
    SpillIoStats io;
    std::size_t max_snap_bytes = 0;
    std::size_t max_wave_bytes = 0;
    double ingest_seconds = 0.0;
    Timer stage_timer;
    std::size_t t = 0;
    const std::size_t planned = bundle.producer->num_snapshots();
    {
      obs::Span ingest_span("case.ingest", "case");
      if (obs != nullptr) obs->on_state(CaseState::kIngesting);
      while (auto snap = bundle.producer->next()) {
        checkpoint(obs);
        max_snap_bytes = std::max(max_snap_bytes, snap->bytes());
        const std::string path =
            (guard.dir / ("snap_" + std::to_string(t) + ".skl2")).string();
        std::unique_ptr<store::ChunkReader> reader;
        {
          ScopedTimer ingest_timer(ingest_seconds);
          const auto wr = store::write_store(*snap, path, cfg.store);
          report.store_bytes += wr.file_bytes;
          max_wave_bytes = std::max(max_wave_bytes, wr.peak_buffered_bytes);
          // Exactly one spill file is alive at this point.
          report.ingest_peak_disk_bytes =
              std::max(report.ingest_peak_disk_bytes, wr.file_bytes);
          reader = std::make_unique<store::ChunkReader>(
              path, cfg.store.cache_bytes);
        }
        snap.reset();  // values live in the spill now; free the snapshot
        if (builder == nullptr) {
          builder = std::make_unique<TrainingSetBuilder>(cfg,
                                                         reader->shape());
        }
        scalers.accumulate(*reader);
        auto r = sampling::run_pipeline_streaming(*reader, pl, t, pool.get());
        report.sampled_points += r.total_points();
        report.sampling_seconds += r.sampling_seconds;
        sampling_energy.merge(r.energy);
        for (const auto& cs : r.cubes) {
          hash.pod<std::uint64_t>(cs.snapshot);
          hash.pod<std::uint64_t>(cs.cube_id);
          hash.pod<std::uint64_t>(cs.samples.points());
          for (const std::size_t idx : cs.samples.indices) {
            hash.pod<std::uint64_t>(idx);
          }
          for (const double x : cs.samples.features) hash.pod<double>(x);
          builder->push(*reader, cs);
        }
        io.fold(*reader);
        reader.reset();  // close before deleting the spill
        std::error_code ec;
        fs::remove(path, ec);
        ++t;
        if (obs != nullptr) obs->on_progress(t, planned);
      }
      SICKLE_CHECK_MSG(t > 0, "producer yielded no snapshots");
    }
    report.ingest_peak_bytes = max_snap_bytes + max_wave_bytes;
    report.sampling_seconds += ingest_seconds;
    report.sample_hash = hash.h;
    report.metrics["case.ingest_seconds"] = ingest_seconds;
    // Stage spans stay four-per-case even when fused: selection is an
    // empty span (identity selection), sampling covers the deferred
    // tensor build.
    if (obs != nullptr) obs->on_state(CaseState::kSelecting);
    { obs::Span selection_span("case.selection", "case"); }
    report.metrics["case.selection_seconds"] = 0.0;
    checkpoint(obs);
    if (obs != nullptr) obs->on_state(CaseState::kSampling);
    {
      obs::Span sampling_span("case.sampling", "case");
      data = builder->take(scalers.take());
    }
    report.metrics["case.sampling_seconds"] =
        std::max(stage_timer.seconds() - ingest_seconds, 0.0);
    record_spill_metrics(report, io);
    guard.remove_now();
  }
  report.sampling_kilojoules = sampling_energy.projected_kilojoules();

  training(data, cfg, report, obs);
  finalize_case_metrics(report);
  return report;
}

void check_backend_and_ingest(const CaseConfig& cfg) {
  SICKLE_CHECK_MSG(cfg.backend == "memory" || cfg.backend == "skl2" ||
                       cfg.backend == "series",
                   "unknown case backend: " + cfg.backend);
  SICKLE_CHECK_MSG(cfg.ingest == "materialize" || cfg.ingest == "streaming",
                   "unknown ingest mode: " + cfg.ingest);
}

/// Streaming run over a producer (skl2 non-fused / series backends).
CaseReport run_streaming(ProducerBundle& bundle, const CaseConfig& cfg,
                         Observer* obs) {
  CaseReport report;
  obs::Span case_span("case.run", "case");
  energy::EnergyCounter sampling_energy;
  ml::TensorDataset data;
  {
    // --- Stage A, streaming: simulate -> encode -> append -> drop. At
    // most one produced snapshot is alive at any point (the loop
    // variable), and the store writer buffers at most one
    // write-budget-bounded wave of encoded blocks, so peak ingest memory
    // is one snapshot + budget (+ codec slack) — never the series.
    SpillGuard guard;
    guard.dir = make_spill_dir(cfg.spill_dir);
    guard.armed = true;
    std::unique_ptr<field::SeriesSource> spilled;
    double ingest_seconds = 0.0;
    const std::size_t planned = bundle.producer->num_snapshots();
    {
      obs::Span ingest_span("case.ingest", "case");
      if (obs != nullptr) obs->on_state(CaseState::kIngesting);
      ScopedTimer spill_timer(ingest_seconds);
      std::size_t max_snap_bytes = 0;
      if (cfg.backend == "series") {
        const std::string path = (guard.dir / "series.skl3").string();
        store::SeriesWriter writer(path, cfg.store);
        while (auto snap = bundle.producer->next()) {
          checkpoint(obs);
          max_snap_bytes = std::max(max_snap_bytes, snap->bytes());
          writer.append(*snap);
          if (obs != nullptr) {
            obs->on_progress(writer.snapshots_appended(), planned);
          }
        }
        // Check before close(): an empty series must fail with the
        // producer-level message, not the store-internal one.
        SICKLE_CHECK_MSG(writer.snapshots_appended() > 0,
                         "producer yielded no snapshots");
        const auto wr = writer.close();
        report.store_bytes = wr.file_bytes;
        report.ingest_peak_bytes = max_snap_bytes + wr.peak_buffered_bytes;
        report.ingest_peak_disk_bytes = report.store_bytes;
        spilled = std::make_unique<store::SeriesReader>(
            path, series_reader_options(cfg.store));
      } else {  // skl2: one file per snapshot, written as produced
        std::vector<std::string> paths;
        paths.reserve(bundle.producer->num_snapshots());
        std::size_t max_wave_bytes = 0;
        std::size_t t = 0;
        while (auto snap = bundle.producer->next()) {
          checkpoint(obs);
          max_snap_bytes = std::max(max_snap_bytes, snap->bytes());
          paths.push_back(
              (guard.dir / ("snap_" + std::to_string(t++) + ".skl2"))
                  .string());
          const auto wr = store::write_store(*snap, paths.back(), cfg.store);
          report.store_bytes += wr.file_bytes;
          max_wave_bytes = std::max(max_wave_bytes, wr.peak_buffered_bytes);
          if (obs != nullptr) obs->on_progress(t, planned);
        }
        SICKLE_CHECK_MSG(!paths.empty(), "producer yielded no snapshots");
        report.ingest_peak_bytes = max_snap_bytes + max_wave_bytes;
        // Non-fused (temporal selection revisits snapshots): every spill
        // file stays until sampling completes.
        report.ingest_peak_disk_bytes = report.store_bytes;
        spilled = std::make_unique<Skl2FilesSeries>(std::move(paths),
                                                   cfg.store.cache_bytes);
      }
    }
    report.sampling_seconds += ingest_seconds;
    report.metrics["case.ingest_seconds"] = ingest_seconds;

    const auto selected = selection(*spilled, cfg, report, obs);
    data = sampling(*spilled, std::span<const std::size_t>(selected), cfg,
                    report, sampling_energy, obs);

    if (cfg.backend == "series") {
      auto* reader = static_cast<store::SeriesReader*>(spilled.get());
      SpillIoStats io;
      io.fold(reader->cache_stats(), reader->io_bytes_read());
      record_spill_metrics(report, io);
    } else {
      record_spill_metrics(
          report, static_cast<Skl2FilesSeries*>(spilled.get())->io_stats());
    }

    spilled.reset();
    guard.remove_now();
  }
  report.sampling_kilojoules = sampling_energy.projected_kilojoules();

  training(data, cfg, report, obs);
  finalize_case_metrics(report);
  return report;
}

}  // namespace

void checkpoint(const Observer* obs) {
  if (obs != nullptr && obs->cancel_requested()) {
    throw CancelledError();
  }
}

std::vector<std::size_t> selection(const field::SeriesSource& series,
                                   const CaseConfig& cfg, CaseReport& report,
                                   Observer* obs) {
  if (obs != nullptr) obs->on_state(CaseState::kSelecting);
  checkpoint(obs);
  std::vector<std::size_t> selected(series.num_snapshots());
  std::iota(selected.begin(), selected.end(), std::size_t{0});
  // The span is emitted even when the stage is disabled, so every traced
  // case shows all four orchestrator stages.
  obs::Span span("case.selection", "case");
  double selection_seconds = 0.0;
  if (cfg.temporal.enabled()) {
    ScopedTimer selection_timer(selection_seconds);
    sampling::TemporalConfig tc;
    tc.variable = temporal_variable(cfg);
    tc.num_snapshots = cfg.temporal.num_snapshots;
    tc.bins = cfg.temporal.bins;
    selected = sampling::select_snapshots(series, tc);
    // Greedy selection order -> time order, so downstream stages see a
    // deterministic, chronologically coherent subset.
    std::sort(selected.begin(), selected.end());
    report.selected_snapshots = selected;
  }
  report.sampling_seconds += selection_seconds;
  report.metrics["case.selection_seconds"] = selection_seconds;
  return selected;
}

ml::TensorDataset sampling(const field::SeriesSource& series,
                           std::span<const std::size_t> selected,
                           const CaseConfig& cfg, CaseReport& report,
                           energy::EnergyCounter& sampling_energy,
                           Observer* obs) {
  const auto& pl = cfg.pipeline;
  if (obs != nullptr) obs->on_state(CaseState::kSampling);
  obs::Span span("case.sampling", "case");
  Timer stage_timer;
  TrainingSetBuilder builder(series, cfg);
  Fnv64 hash;
  const PoolHandle pool = resolve_threads(pl.threads);
  double source_seconds = 0.0;
  std::size_t done = 0;
  for (const std::size_t t : selected) {
    checkpoint(obs);
    const field::FieldSource* srcp = nullptr;
    {
      // source(t) is where the lazy skl2 backend encodes its spill, so
      // time it as ingest — every backend's T1 cost lands in the report.
      ScopedTimer ingest_timer(source_seconds);
      srcp = &series.source(t);
    }
    const field::FieldSource& src = *srcp;
    auto r = sampling::run_pipeline_streaming(src, pl, t, pool.get());
    report.sampled_points += r.total_points();
    report.sampling_seconds += r.sampling_seconds;
    sampling_energy.merge(r.energy);
    for (const auto& cs : r.cubes) {
      hash.pod<std::uint64_t>(cs.snapshot);
      hash.pod<std::uint64_t>(cs.cube_id);
      hash.pod<std::uint64_t>(cs.samples.points());
      for (const std::size_t idx : cs.samples.indices) {
        hash.pod<std::uint64_t>(idx);
      }
      for (const double x : cs.samples.features) hash.pod<double>(x);
      builder.push(src, cs);
    }
    if (obs != nullptr) obs->on_progress(++done, selected.size());
  }
  report.sampling_seconds += source_seconds;
  report.sample_hash = hash.h;
  report.metrics["case.sampling_seconds"] = stage_timer.seconds();
  return builder.take();
}

void training(const ml::TensorDataset& data, const CaseConfig& cfg,
              CaseReport& report, Observer* obs) {
  if (obs != nullptr) obs->on_state(CaseState::kTraining);
  checkpoint(obs);
  obs::Span span("case.training", "case");
  Timer stage_timer;
  const auto& pl = cfg.pipeline;
  Rng rng(cfg.train.seed, /*stream=*/0x40DE1);
  std::unique_ptr<ml::Module> model;
  const std::size_t edge = pl.cube.ex;
  if (cfg.arch == "MLP_Transformer") {
    ml::MlpTransformerConfig mc;
    mc.in_channels = pl.input_vars.size();
    mc.num_points = pl.num_samples;
    mc.dim = cfg.model_dim;
    mc.heads = cfg.model_heads;
    mc.layers = cfg.model_layers;
    mc.ffn = 2 * cfg.model_dim;
    mc.out_channels = pl.output_vars.size();
    mc.out_edge = edge;
    model = std::make_unique<ml::MlpTransformer>(mc, rng);
  } else if (cfg.arch == "CNN_Transformer") {
    ml::CnnTransformerConfig cc;
    cc.in_channels = pl.input_vars.size();
    cc.edge = edge;
    cc.dim = cfg.model_dim;
    cc.heads = cfg.model_heads;
    cc.layers = cfg.model_layers;
    cc.ffn = 2 * cfg.model_dim;
    cc.out_channels = pl.output_vars.size();
    cc.out_edge = edge;
    // Full-full runs are attention-dominated in the paper (quadratic in
    // token count); fine tokenization reproduces that cost profile.
    cc.fine_tokens = true;
    model = std::make_unique<ml::CnnTransformer>(cc, rng);
  } else if (cfg.arch == "Foundation") {
    ml::FoundationModelConfig fc;
    fc.in_channels = pl.input_vars.size();
    fc.edge = edge;
    fc.patch = std::max<std::size_t>(2, edge / 4);
    fc.dim = cfg.model_dim;
    fc.heads = cfg.model_heads;
    fc.layers = cfg.model_layers;
    fc.ffn = 2 * cfg.model_dim;
    fc.out_channels = pl.output_vars.size();
    model = std::make_unique<ml::FoundationModel>(fc, rng);
  } else {
    throw CaseError(CaseErrorCode::kTraining,
                    "run_case: unsupported arch " + cfg.arch);
  }

  report.train = ml::fit(*model, data, cfg.train);
  report.training_kilojoules = report.train.energy.projected_kilojoules();
  report.metrics["case.training_seconds"] = stage_timer.seconds();
}

CaseReport run_staged(const DatasetBundle& bundle, CaseConfig cfg,
                      Observer* obs) {
  // Fill variable roles from the bundle when the config left them empty.
  auto& pl = cfg.pipeline;
  if (pl.input_vars.empty()) pl.input_vars = bundle.input_vars;
  if (pl.output_vars.empty()) pl.output_vars = bundle.output_vars;
  if (pl.cluster_var.empty()) pl.cluster_var = bundle.cluster_var;

  CaseReport report;
  check_backend_and_ingest(cfg);

  obs::Span case_span("case.run", "case");
  energy::EnergyCounter sampling_energy;
  ml::TensorDataset data;
  {
    // --- Stage A: ingest. Materialize the dataset as a SeriesSource:
    // borrowed RAM views, per-snapshot SKL2 spills, or one streaming
    // SKL3 container whose writer memory is bounded by the write budget.
    SpillGuard guard;
    const field::DatasetSeriesSource mem_series(bundle.data);
    std::unique_ptr<field::SeriesSource> spilled;
    const field::SeriesSource* series = &mem_series;
    double ingest_seconds = 0.0;
    {
      obs::Span ingest_span("case.ingest", "case");
      if (obs != nullptr) obs->on_state(CaseState::kIngesting);
      checkpoint(obs);
      if (cfg.backend != "memory") {
        ScopedTimer spill_timer(ingest_seconds);
        guard.dir = make_spill_dir(cfg.spill_dir);
        guard.armed = true;
        if (cfg.backend == "skl2") {
          spilled = std::make_unique<Skl2SpillSeries>(
              bundle.data, guard.dir, cfg.store, &report.store_bytes,
              &report.ingest_peak_disk_bytes);
        } else {
          const std::string path = (guard.dir / "series.skl3").string();
          store::SeriesWriter writer(path, cfg.store);
          for (std::size_t t = 0; t < bundle.data.num_snapshots(); ++t) {
            writer.append(bundle.data.snapshot(t));
            if (obs != nullptr) {
              obs->on_progress(t + 1, bundle.data.num_snapshots());
            }
          }
          report.store_bytes = writer.close().file_bytes;
          report.ingest_peak_disk_bytes = report.store_bytes;
          spilled = std::make_unique<store::SeriesReader>(
              path, series_reader_options(cfg.store));
        }
        series = spilled.get();
      }
    }
    report.sampling_seconds += ingest_seconds;
    report.metrics["case.ingest_seconds"] = ingest_seconds;

    const auto selected = selection(*series, cfg, report, obs);
    data = sampling(*series, std::span<const std::size_t>(selected), cfg,
                    report, sampling_energy, obs);

    // Reader-side I/O tallies, folded before the readers close.
    if (cfg.backend == "skl2") {
      record_spill_metrics(
          report, static_cast<Skl2SpillSeries*>(spilled.get())->io_stats());
    } else if (cfg.backend == "series") {
      auto* reader = static_cast<store::SeriesReader*>(spilled.get());
      SpillIoStats io;
      io.fold(reader->cache_stats(), reader->io_bytes_read());
      record_spill_metrics(report, io);
    }

    // The spill is only needed until the training set exists; reclaim the
    // disk before the (potentially long) training stage.
    spilled.reset();
    guard.remove_now();
  }
  // Node-projected energy: static power charged against roofline node
  // time, so ratios between cases track data volume and compute — the
  // regime the paper measures (see energy::EnergyModel).
  report.sampling_kilojoules = sampling_energy.projected_kilojoules();

  training(data, cfg, report, obs);
  finalize_case_metrics(report);
  return report;
}

CaseReport run_staged(ProducerBundle& bundle, CaseConfig cfg,
                      Observer* obs) {
  auto& pl = cfg.pipeline;
  if (pl.input_vars.empty()) pl.input_vars = bundle.input_vars;
  if (pl.output_vars.empty()) pl.output_vars = bundle.output_vars;
  if (pl.cluster_var.empty()) pl.cluster_var = bundle.cluster_var;
  check_backend_and_ingest(cfg);

  try {
    // The memory backend borrows views of a full Dataset, so it always
    // materializes; so does explicit ingest: materialize — both delegate
    // to the DatasetBundle path for bit-exact legacy behavior.
    if (cfg.backend == "memory" || cfg.ingest == "materialize") {
      return run_staged(materialize_bundle(bundle), std::move(cfg), obs);
    }

    // Rolling-window fast path: streaming skl2 with the temporal stage
    // off never revisits a snapshot, so spill files are deleted as they
    // are consumed — O(one snapshot) of disk instead of the whole series,
    // with bit-identical samples and tensors (see run_case_fused_skl2).
    if (cfg.backend == "skl2" && !cfg.temporal.enabled()) {
      return run_case_fused_skl2(bundle, cfg, obs);
    }

    return run_streaming(bundle, cfg, obs);
  } catch (...) {
    // A failed or cancelled run must not leave a half-consumed producer:
    // rewind it when the generator supports the reset() contract so the
    // bundle can be resubmitted. Generators that cannot rewind
    // (flow::CloneError) stay consumed — documented, not silent.
    if (bundle.producer != nullptr) {
      try {
        bundle.producer->reset();
      } catch (const flow::CloneError&) {
        // Single-pass generator: nothing to restore.
      }
    }
    throw;
  }
}

}  // namespace stage

ml::TensorDataset build_training_set(const DatasetBundle& bundle,
                                     const sampling::PipelineResult& sampled,
                                     const CaseConfig& cfg) {
  const field::DatasetSeriesSource series(bundle.data);
  stage::TrainingSetBuilder builder(series, cfg);
  for (const auto& cs : sampled.cubes) {
    builder.push(series.source(cs.snapshot), cs);
  }
  return builder.take();
}

}  // namespace sickle
