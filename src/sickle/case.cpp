#include "sickle/case.hpp"

#include <algorithm>
#include <span>
#include <vector>

#include "field/hypercube.hpp"
#include "sampling/point_samplers.hpp"
#include "sickle/stage.hpp"
#include "store/codec.hpp"

namespace sickle {

std::vector<ValidationIssue> CaseConfig::validate() const {
  std::vector<ValidationIssue> issues;
  const auto add = [&issues](std::string field, std::string message,
                             std::string hint = "") {
    issues.push_back({std::move(field), std::move(message), std::move(hint)});
  };

  if (backend != "memory" && backend != "skl2" && backend != "series") {
    add("store.backend", "unknown store backend: " + backend,
        "memory | skl2 | series");
  }
  if (ingest != "materialize" && ingest != "streaming") {
    add("store.ingest", "unknown store ingest mode: " + ingest,
        "materialize | streaming");
  }
  if (arch != "LSTM" && arch != "MLP_Transformer" &&
      arch != "CNN_Transformer" && arch != "Foundation") {
    add("train.arch", "unknown architecture: " + arch,
        "LSTM | MLP_Transformer | CNN_Transformer | Foundation");
  }
  if (window == 0) add("train.window", "window must be >= 1");
  if (model_dim == 0) add("train.dim", "model dim must be >= 1");
  if (model_heads == 0) add("train.heads", "model heads must be >= 1");
  if (store.chunk.nx == 0 || store.chunk.ny == 0 || store.chunk.nz == 0) {
    add("store.chunk", "store chunk edges must be positive");
  }
  if (store.cache_bytes == 0) {
    add("store.cache_mb", "store cache_mb must be positive");
  }
  if (store.write_budget_bytes == 0) {
    add("store.write_budget_mb", "store write_budget_mb must be positive");
  }
  try {
    (void)store::make_codec(store.codec, store.tolerance);
  } catch (const std::exception& e) {
    add("store.codec", e.what(), "raw | delta | quant | gorilla");
  }
  if (temporal.enabled() && temporal.bins == 0) {
    add("temporal.bins", "temporal bins must be positive");
  }
  if (train.epochs == 0) add("train.epochs", "epochs must be >= 1");
  if (train.batch == 0) add("train.batch", "batch must be >= 1");
  if (!(train.lr > 0.0)) add("train.lr", "learning rate must be > 0");
  if (!(train.test_fraction >= 0.0) || !(train.test_fraction < 1.0)) {
    add("train.test_frac", "test fraction must be in [0, 1)");
  }
  return issues;
}

// The orchestrator itself lives in stage.cpp (stage::run_staged), shared
// bit-for-bit with CaseSession; run_case is the legacy blocking adapter —
// a null observer means no hooks fire and no cancellation is polled, so
// behavior, hashes, and exception types match the pre-session API.

CaseReport run_case(const DatasetBundle& bundle, CaseConfig cfg) {
  return stage::run_staged(bundle, std::move(cfg), nullptr);
}

CaseReport run_case(ProducerBundle& bundle, CaseConfig cfg) {
  return stage::run_staged(bundle, std::move(cfg), nullptr);
}

ml::TensorDataset build_drag_dataset(const DatasetBundle& bundle,
                                     const std::string& method,
                                     std::size_t ns, std::size_t window,
                                     std::uint64_t seed,
                                     energy::EnergyCounter* energy) {
  SICKLE_CHECK_MSG(!bundle.scalar_target.empty(),
                   "dataset has no scalar target (need OF2D)");
  SICKLE_CHECK_MSG(bundle.data.num_snapshots() == bundle.scalar_target.size(),
                   "target length mismatch");
  const auto& shape = bundle.data.shape();
  // Treat the whole field as one "cube" so every sampler applies directly.
  field::CubeSpec spec{shape.nx, shape.ny, shape.nz};
  const field::CubeTiling tiling(shape, spec);
  auto sampler = sampling::SamplerRegistry::instance().create(method);

  sampling::SamplerContext ctx;
  ctx.phase_variables = bundle.input_vars;
  ctx.cluster_var = bundle.cluster_var;
  ctx.num_samples = ns;
  ctx.num_clusters = 10;
  ctx.energy = energy;

  std::vector<std::string> vars = bundle.input_vars;
  if (!bundle.cluster_var.empty() &&
      std::find(vars.begin(), vars.end(), bundle.cluster_var) == vars.end()) {
    vars.push_back(bundle.cluster_var);
  }

  // Fixed sample locations per snapshot (chosen on the first snapshot) so
  // the LSTM sees consistent "sensors" across the window — matching the
  // sparse-sensor framing of the paper's sample-single problem.
  const field::Hypercube first = field::extract_cube(
      bundle.data.snapshot(0), tiling, {0, 0, 0},
      std::span<const std::string>(vars));
  Rng rng = Rng(seed).fork(0xD7A6);
  std::vector<std::size_t> locations = sampler->select(first, ctx, rng);
  std::sort(locations.begin(), locations.end());

  const std::size_t c = bundle.input_vars.size();
  const std::size_t f = c * locations.size();
  ml::TensorDataset out;
  const std::size_t steps = bundle.data.num_snapshots();
  for (std::size_t t = 0; t + window <= steps; ++t) {
    std::vector<float> in;
    in.reserve(window * f);
    for (std::size_t w = 0; w < window; ++w) {
      const auto& snap = bundle.data.snapshot(t + w);
      for (const auto& var : bundle.input_vars) {
        const auto data = snap.get(var).data();
        for (const std::size_t loc : locations) {
          in.push_back(static_cast<float>(data[loc]));
        }
      }
      if (energy != nullptr) {
        energy->add_bytes(static_cast<double>(f) * sizeof(double));
      }
    }
    const auto target =
        static_cast<float>(bundle.scalar_target[t + window - 1]);
    out.push(ml::Tensor({window, f}, std::move(in)),
             ml::Tensor({1, 1}, {target}));
  }
  return out;
}

}  // namespace sickle
