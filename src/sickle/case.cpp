#include "sickle/case.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <iterator>
#include <map>
#include <memory>

#include "common/timer.hpp"
#include "field/hypercube.hpp"
#include "ml/models.hpp"
#include "sampling/point_samplers.hpp"

namespace sickle {

namespace {

/// Per-variable affine scaler (global z-score). All training tensors are
/// standardized so losses are comparable across datasets and targets with
/// large physical magnitudes (eps, pv) train properly.
struct VarScaler {
  double mean = 0.0;
  double inv_std = 1.0;
  [[nodiscard]] float apply(double x) const noexcept {
    return static_cast<float>((x - mean) * inv_std);
  }
};

std::map<std::string, VarScaler> fit_scalers(
    const field::Dataset& data, std::span<const std::string> vars) {
  std::map<std::string, VarScaler> out;
  for (const auto& var : vars) {
    double sum = 0.0, sq = 0.0;
    std::size_t n = 0;
    for (std::size_t t = 0; t < data.num_snapshots(); ++t) {
      for (const double x : data.snapshot(t).get(var).data()) {
        sum += x;
        sq += x * x;
        ++n;
      }
    }
    VarScaler s;
    s.mean = sum / static_cast<double>(n);
    const double var_x =
        std::max(sq / static_cast<double>(n) - s.mean * s.mean, 1e-24);
    s.inv_std = 1.0 / std::sqrt(var_x);
    out[var] = s;
  }
  return out;
}

/// Dense standardized values of `vars` inside a cube, as a
/// [C, E, E, E]-ordered flat vector (channel-major over the cube's
/// z-fastest point order).
std::vector<float> dense_cube(const field::Snapshot& snap,
                              const field::CubeTiling& tiling,
                              std::size_t cube_id,
                              std::span<const std::string> vars,
                              const std::map<std::string, VarScaler>& sc) {
  const auto cube = field::extract_cube(snap, tiling,
                                        tiling.coord(cube_id), vars);
  std::vector<float> out;
  out.reserve(vars.size() * cube.points());
  for (std::size_t v = 0; v < vars.size(); ++v) {
    const VarScaler& s = sc.at(vars[v]);
    for (std::size_t p = 0; p < cube.points(); ++p) {
      out.push_back(s.apply(cube.values[v][p]));
    }
  }
  return out;
}

/// Sampled, standardized input features of a cube as a fixed-length
/// [C * N] row (variable-major). Pads by cycling when fewer than N samples
/// exist.
std::vector<float> sampled_row(const sampling::CubeSamples& cs,
                               std::span<const std::string> input_vars,
                               std::size_t n_points,
                               const std::map<std::string, VarScaler>& sc) {
  std::vector<float> row;
  row.reserve(input_vars.size() * n_points);
  const std::size_t have = cs.samples.points();
  SICKLE_CHECK_MSG(have > 0, "cube produced no samples");
  for (const auto& var : input_vars) {
    const auto col = cs.samples.column(var);
    const VarScaler& s = sc.at(var);
    for (std::size_t i = 0; i < n_points; ++i) {
      row.push_back(s.apply(col[i % have]));
    }
  }
  return row;
}

/// Spill every snapshot to a temporary SKL2 store and sample it
/// out-of-core — the case runner's larger-than-RAM data path. Produces the
/// same cubes run_pipeline(dataset, ...) would for lossless codecs (the
/// streaming pipeline reproduces each snapshot's seed offset and RNG
/// forks).
sampling::PipelineResult sample_via_store(const field::Dataset& data,
                                          const sampling::PipelineConfig& pl,
                                          const store::StoreOptions& opts,
                                          std::size_t* store_bytes) {
  namespace fs = std::filesystem;
  static std::atomic<std::uint64_t> run_id{0};
  const fs::path dir =
      fs::temp_directory_path() /
      ("sickle_case_store_" + std::to_string(::getpid()) + "_" +
       std::to_string(run_id.fetch_add(1)));
  fs::create_directories(dir);
  // Spilled snapshots can be huge; make sure a mid-run throw (missing
  // cluster_var, disk full, ...) does not orphan them in the temp dir.
  struct DirGuard {
    fs::path dir;
    ~DirGuard() {
      std::error_code ec;
      fs::remove_all(dir, ec);
    }
  } guard{dir};

  sampling::PipelineResult result;
  Timer timer;
  // One pool for the whole spill-and-stream run, not one per snapshot.
  const PoolHandle pool = resolve_threads(pl.threads);
  for (std::size_t t = 0; t < data.num_snapshots(); ++t) {
    const std::string path =
        (dir / ("snap_" + std::to_string(t) + ".skl2")).string();
    const auto written = store::write_store(data.snapshot(t), path, opts);
    if (store_bytes != nullptr) *store_bytes += written.file_bytes;
    const store::ChunkReader reader(path, opts.cache_bytes);
    auto r = sampling::run_pipeline_streaming(reader, pl, t, pool.get());
    result.energy.merge(r.energy);
    std::move(r.cubes.begin(), r.cubes.end(),
              std::back_inserter(result.cubes));
    fs::remove(path);
  }
  result.sampling_seconds = timer.seconds();
  return result;
}

}  // namespace

ml::TensorDataset build_training_set(const DatasetBundle& bundle,
                                     const sampling::PipelineResult& sampled,
                                     const CaseConfig& cfg) {
  const auto& pl = cfg.pipeline;
  const field::CubeTiling tiling(bundle.data.shape(), pl.cube);
  const std::size_t edge = pl.cube.ex;
  SICKLE_CHECK_MSG(pl.cube.ex == pl.cube.ey && pl.cube.ex == pl.cube.ez,
                   "training cubes must be isotropic (E^3)");
  ml::TensorDataset out;
  const std::size_t c_out = cfg.pipeline.output_vars.size();
  SICKLE_CHECK_MSG(c_out > 0, "training needs output_vars");

  // Global z-score scalers over every variable involved.
  std::vector<std::string> all_vars = pl.input_vars;
  all_vars.insert(all_vars.end(), pl.output_vars.begin(),
                  pl.output_vars.end());
  const auto scalers =
      fit_scalers(bundle.data, std::span<const std::string>(all_vars));

  for (const auto& cs : sampled.cubes) {
    const auto& snap = bundle.data.snapshot(cs.snapshot);
    // Target: dense standardized output cube.
    auto tgt = dense_cube(snap, tiling, cs.cube_id,
                          std::span<const std::string>(pl.output_vars),
                          scalers);
    ml::Tensor target({c_out, edge, edge, edge}, std::move(tgt));

    if (cfg.arch == "MLP_Transformer") {
      const std::size_t n = pl.num_samples;
      const std::size_t f = pl.input_vars.size() * n;
      std::vector<float> in;
      in.reserve(cfg.window * f);
      // Window: this cube's samples from the `window` most recent
      // snapshots (repeating the earliest when history is short).
      for (std::size_t w = 0; w < cfg.window; ++w) {
        // For window 1 this is just cs itself.
        const auto row = sampled_row(cs, pl.input_vars, n, scalers);
        in.insert(in.end(), row.begin(), row.end());
      }
      out.push(ml::Tensor({cfg.window, f}, std::move(in)),
               std::move(target));
    } else if (cfg.arch == "CNN_Transformer") {
      auto in = dense_cube(snap, tiling, cs.cube_id,
                           std::span<const std::string>(pl.input_vars),
                           scalers);
      std::vector<float> seq;
      seq.reserve(cfg.window * in.size());
      for (std::size_t w = 0; w < cfg.window; ++w) {
        seq.insert(seq.end(), in.begin(), in.end());
      }
      out.push(ml::Tensor({cfg.window, pl.input_vars.size(), edge, edge,
                           edge},
                          std::move(seq)),
               std::move(target));
    } else if (cfg.arch == "Foundation") {
      auto in = dense_cube(snap, tiling, cs.cube_id,
                           std::span<const std::string>(pl.input_vars),
                           scalers);
      out.push(ml::Tensor({pl.input_vars.size(), edge, edge, edge},
                          std::move(in)),
               std::move(target));
    } else {
      throw RuntimeError("build_training_set: unsupported arch " + cfg.arch);
    }
  }
  return out;
}

CaseReport run_case(const DatasetBundle& bundle, CaseConfig cfg) {
  // Fill variable roles from the bundle when the config left them empty.
  auto& pl = cfg.pipeline;
  if (pl.input_vars.empty()) pl.input_vars = bundle.input_vars;
  if (pl.output_vars.empty()) pl.output_vars = bundle.output_vars;
  if (pl.cluster_var.empty()) pl.cluster_var = bundle.cluster_var;

  CaseReport report;
  SICKLE_CHECK_MSG(cfg.backend == "memory" || cfg.backend == "skl2",
                   "unknown case backend: " + cfg.backend);
  const sampling::PipelineResult sampled =
      cfg.backend == "skl2"
          ? sample_via_store(bundle.data, pl, cfg.store, &report.store_bytes)
          : run_pipeline(bundle.data, pl);
  report.sampled_points = sampled.total_points();
  report.sampling_seconds = sampled.sampling_seconds;
  // Node-projected energy: static power charged against roofline node
  // time, so ratios between cases track data volume and compute — the
  // regime the paper measures (see energy::EnergyModel).
  report.sampling_kilojoules = sampled.energy.projected_kilojoules();

  const ml::TensorDataset data = build_training_set(bundle, sampled, cfg);

  Rng rng(cfg.train.seed, /*stream=*/0x40DE1);
  std::unique_ptr<ml::Module> model;
  const std::size_t edge = pl.cube.ex;
  if (cfg.arch == "MLP_Transformer") {
    ml::MlpTransformerConfig mc;
    mc.in_channels = pl.input_vars.size();
    mc.num_points = pl.num_samples;
    mc.dim = cfg.model_dim;
    mc.heads = cfg.model_heads;
    mc.layers = cfg.model_layers;
    mc.ffn = 2 * cfg.model_dim;
    mc.out_channels = pl.output_vars.size();
    mc.out_edge = edge;
    model = std::make_unique<ml::MlpTransformer>(mc, rng);
  } else if (cfg.arch == "CNN_Transformer") {
    ml::CnnTransformerConfig cc;
    cc.in_channels = pl.input_vars.size();
    cc.edge = edge;
    cc.dim = cfg.model_dim;
    cc.heads = cfg.model_heads;
    cc.layers = cfg.model_layers;
    cc.ffn = 2 * cfg.model_dim;
    cc.out_channels = pl.output_vars.size();
    cc.out_edge = edge;
    // Full-full runs are attention-dominated in the paper (quadratic in
    // token count); fine tokenization reproduces that cost profile.
    cc.fine_tokens = true;
    model = std::make_unique<ml::CnnTransformer>(cc, rng);
  } else if (cfg.arch == "Foundation") {
    ml::FoundationModelConfig fc;
    fc.in_channels = pl.input_vars.size();
    fc.edge = edge;
    fc.patch = std::max<std::size_t>(2, edge / 4);
    fc.dim = cfg.model_dim;
    fc.heads = cfg.model_heads;
    fc.layers = cfg.model_layers;
    fc.ffn = 2 * cfg.model_dim;
    fc.out_channels = pl.output_vars.size();
    model = std::make_unique<ml::FoundationModel>(fc, rng);
  } else {
    throw RuntimeError("run_case: unsupported arch " + cfg.arch);
  }

  report.train = ml::fit(*model, data, cfg.train);
  report.training_kilojoules = report.train.energy.projected_kilojoules();
  return report;
}

ml::TensorDataset build_drag_dataset(const DatasetBundle& bundle,
                                     const std::string& method,
                                     std::size_t ns, std::size_t window,
                                     std::uint64_t seed,
                                     energy::EnergyCounter* energy) {
  SICKLE_CHECK_MSG(!bundle.scalar_target.empty(),
                   "dataset has no scalar target (need OF2D)");
  SICKLE_CHECK_MSG(bundle.data.num_snapshots() == bundle.scalar_target.size(),
                   "target length mismatch");
  const auto& shape = bundle.data.shape();
  // Treat the whole field as one "cube" so every sampler applies directly.
  field::CubeSpec spec{shape.nx, shape.ny, shape.nz};
  const field::CubeTiling tiling(shape, spec);
  auto sampler = sampling::SamplerRegistry::instance().create(method);

  sampling::SamplerContext ctx;
  ctx.phase_variables = bundle.input_vars;
  ctx.cluster_var = bundle.cluster_var;
  ctx.num_samples = ns;
  ctx.num_clusters = 10;
  ctx.energy = energy;

  std::vector<std::string> vars = bundle.input_vars;
  if (!bundle.cluster_var.empty() &&
      std::find(vars.begin(), vars.end(), bundle.cluster_var) == vars.end()) {
    vars.push_back(bundle.cluster_var);
  }

  // Fixed sample locations per snapshot (chosen on the first snapshot) so
  // the LSTM sees consistent "sensors" across the window — matching the
  // sparse-sensor framing of the paper's sample-single problem.
  const field::Hypercube first = field::extract_cube(
      bundle.data.snapshot(0), tiling, {0, 0, 0},
      std::span<const std::string>(vars));
  Rng rng = Rng(seed).fork(0xD7A6);
  std::vector<std::size_t> locations = sampler->select(first, ctx, rng);
  std::sort(locations.begin(), locations.end());

  const std::size_t c = bundle.input_vars.size();
  const std::size_t f = c * locations.size();
  ml::TensorDataset out;
  const std::size_t steps = bundle.data.num_snapshots();
  for (std::size_t t = 0; t + window <= steps; ++t) {
    std::vector<float> in;
    in.reserve(window * f);
    for (std::size_t w = 0; w < window; ++w) {
      const auto& snap = bundle.data.snapshot(t + w);
      for (const auto& var : bundle.input_vars) {
        const auto data = snap.get(var).data();
        for (const std::size_t loc : locations) {
          in.push_back(static_cast<float>(data[loc]));
        }
      }
      if (energy != nullptr) {
        energy->add_bytes(static_cast<double>(f) * sizeof(double));
      }
    }
    const auto target =
        static_cast<float>(bundle.scalar_target[t + window - 1]);
    out.push(ml::Tensor({window, f}, std::move(in)),
             ml::Tensor({1, 1}, {target}));
  }
  return out;
}

}  // namespace sickle
