#include "sickle/case.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <iterator>
#include <map>
#include <memory>
#include <numeric>
#include <span>

#include "common/timer.hpp"
#include "field/hypercube.hpp"
#include "ml/models.hpp"
#include "obs/trace.hpp"
#include "sampling/point_samplers.hpp"
#include "store/series_store.hpp"

namespace sickle {

namespace {

namespace fs = std::filesystem;

/// Per-variable affine scaler (global z-score). All training tensors are
/// standardized so losses are comparable across datasets and targets with
/// large physical magnitudes (eps, pv) train properly.
struct VarScaler {
  double mean = 0.0;
  double inv_std = 1.0;
  [[nodiscard]] float apply(double x) const noexcept {
    return static_cast<float>((x - mean) * inv_std);
  }
};

/// Fit z-score scalers by streaming the series snapshot-major (one pass
/// over the store, all variables accumulated per visit — out-of-core
/// sources pay one reader/cache walk per snapshot, not one per variable).
/// Each variable's accumulator still sees its values in t-ascending flat
/// order — the same sequence as a span scan over an in-memory Dataset —
/// so scalers (and therefore training tensors) are bit-identical across
/// the memory/skl2/series backends for lossless codecs.
std::map<std::string, VarScaler> fit_scalers(
    const field::SeriesSource& series, std::span<const std::string> vars) {
  struct Acc {
    double sum = 0.0, sq = 0.0;
    std::size_t n = 0;
  };
  std::vector<Acc> accs(vars.size());
  for (std::size_t t = 0; t < series.num_snapshots(); ++t) {
    const field::FieldSource& src = series.source(t);
    for (std::size_t v = 0; v < vars.size(); ++v) {
      field::for_each_flat_batch(src, vars[v],
                                 [&](std::span<const double> vals) {
                                   for (const double x : vals) {
                                     accs[v].sum += x;
                                     accs[v].sq += x * x;
                                     ++accs[v].n;
                                   }
                                 });
    }
  }
  std::map<std::string, VarScaler> out;
  for (std::size_t v = 0; v < vars.size(); ++v) {
    VarScaler s;
    s.mean = accs[v].sum / static_cast<double>(accs[v].n);
    const double var_x = std::max(
        accs[v].sq / static_cast<double>(accs[v].n) - s.mean * s.mean,
        1e-24);
    s.inv_std = 1.0 / std::sqrt(var_x);
    out[vars[v]] = s;
  }
  return out;
}

/// Dense standardized values of `vars` inside a cube, as a
/// [C, E, E, E]-ordered flat vector (channel-major over the cube's
/// z-fastest point order). Works over any FieldSource, so the builder
/// pulls targets from RAM or from a spilled store alike.
std::vector<float> dense_cube(const field::FieldSource& src,
                              const field::CubeTiling& tiling,
                              std::size_t cube_id,
                              std::span<const std::string> vars,
                              const std::map<std::string, VarScaler>& sc) {
  const auto cube =
      field::extract_cube(src, tiling, tiling.coord(cube_id), vars);
  std::vector<float> out;
  out.reserve(vars.size() * cube.points());
  for (std::size_t v = 0; v < vars.size(); ++v) {
    const VarScaler& s = sc.at(vars[v]);
    for (std::size_t p = 0; p < cube.points(); ++p) {
      out.push_back(s.apply(cube.values[v][p]));
    }
  }
  return out;
}

/// Sampled, standardized input features of a cube as a fixed-length
/// [C * N] row (variable-major). Pads by cycling when fewer than N samples
/// exist.
std::vector<float> sampled_row(const sampling::CubeSamples& cs,
                               std::span<const std::string> input_vars,
                               std::size_t n_points,
                               const std::map<std::string, VarScaler>& sc) {
  std::vector<float> row;
  row.reserve(input_vars.size() * n_points);
  const std::size_t have = cs.samples.points();
  SICKLE_CHECK_MSG(have > 0, "cube produced no samples");
  for (const auto& var : input_vars) {
    const auto col = cs.samples.column(var);
    const VarScaler& s = sc.at(var);
    for (std::size_t i = 0; i < n_points; ++i) {
      row.push_back(s.apply(col[i % have]));
    }
  }
  return row;
}

/// Streaming training-set builder: accepted cubes are converted to
/// supervised examples the moment they are sampled, pulling dense targets
/// from the snapshot source that produced them (its blocks are still warm
/// in the store's LRU cache) — no second pass over the raw data and no
/// accumulation of the full PipelineResult.
class TrainingSetBuilder {
 public:
  TrainingSetBuilder(const field::SeriesSource& series, const CaseConfig& cfg)
      : cfg_(cfg),
        tiling_(series.source(0).shape(), cfg.pipeline.cube),
        edge_(cfg.pipeline.cube.ex) {
    const auto& pl = cfg.pipeline;
    SICKLE_CHECK_MSG(pl.cube.ex == pl.cube.ey && pl.cube.ex == pl.cube.ez,
                     "training cubes must be isotropic (E^3)");
    SICKLE_CHECK_MSG(!pl.output_vars.empty(), "training needs output_vars");
    // Global z-score scalers over every variable involved.
    std::vector<std::string> all_vars = pl.input_vars;
    all_vars.insert(all_vars.end(), pl.output_vars.begin(),
                    pl.output_vars.end());
    scalers_ =
        fit_scalers(series, std::span<const std::string>(all_vars));
  }

  /// Convert one sampled cube into a training example. `src` must be the
  /// snapshot the cube was sampled from.
  void push(const field::FieldSource& src, const sampling::CubeSamples& cs) {
    const auto& pl = cfg_.pipeline;
    const std::size_t c_out = pl.output_vars.size();
    // Target: dense standardized output cube.
    auto tgt = dense_cube(src, tiling_, cs.cube_id,
                          std::span<const std::string>(pl.output_vars),
                          scalers_);
    ml::Tensor target({c_out, edge_, edge_, edge_}, std::move(tgt));

    if (cfg_.arch == "MLP_Transformer") {
      const std::size_t n = pl.num_samples;
      const std::size_t f = pl.input_vars.size() * n;
      std::vector<float> in;
      in.reserve(cfg_.window * f);
      // Window: this cube's samples from the `window` most recent
      // snapshots (repeating the earliest when history is short).
      for (std::size_t w = 0; w < cfg_.window; ++w) {
        // For window 1 this is just cs itself.
        const auto row = sampled_row(cs, pl.input_vars, n, scalers_);
        in.insert(in.end(), row.begin(), row.end());
      }
      out_.push(ml::Tensor({cfg_.window, f}, std::move(in)),
                std::move(target));
    } else if (cfg_.arch == "CNN_Transformer") {
      auto in = dense_cube(src, tiling_, cs.cube_id,
                           std::span<const std::string>(pl.input_vars),
                           scalers_);
      std::vector<float> seq;
      seq.reserve(cfg_.window * in.size());
      for (std::size_t w = 0; w < cfg_.window; ++w) {
        seq.insert(seq.end(), in.begin(), in.end());
      }
      out_.push(ml::Tensor({cfg_.window, pl.input_vars.size(), edge_, edge_,
                            edge_},
                           std::move(seq)),
                std::move(target));
    } else if (cfg_.arch == "Foundation") {
      auto in = dense_cube(src, tiling_, cs.cube_id,
                           std::span<const std::string>(pl.input_vars),
                           scalers_);
      out_.push(ml::Tensor({pl.input_vars.size(), edge_, edge_, edge_},
                           std::move(in)),
                std::move(target));
    } else {
      throw RuntimeError("build_training_set: unsupported arch " +
                         cfg_.arch);
    }
  }

  [[nodiscard]] ml::TensorDataset take() { return std::move(out_); }

 private:
  const CaseConfig& cfg_;
  field::CubeTiling tiling_;
  std::size_t edge_;
  std::map<std::string, VarScaler> scalers_;
  ml::TensorDataset out_;
};

/// Reader-side I/O tallies of a spill backend, folded across every
/// ChunkReader the backend recycled — the per-case view of what the
/// global `store.cache.*` registry counters see process-wide. Lands in
/// CaseReport::metrics.
struct SpillIoStats {
  store::CacheStats cache;
  std::uint64_t bytes_read = 0;

  void fold(const store::ChunkReader& reader) {
    fold(reader.cache_stats(), reader.io_bytes_read());
  }
  void fold(const store::CacheStats& cs, std::uint64_t io_bytes) {
    cache.hits += cs.hits;
    cache.misses += cs.misses;
    cache.evictions += cs.evictions;
    bytes_read += io_bytes;
  }
};

void record_spill_metrics(CaseReport& report, const SpillIoStats& io) {
  report.metrics["store.cache_hits"] = static_cast<double>(io.cache.hits);
  report.metrics["store.cache_misses"] =
      static_cast<double>(io.cache.misses);
  report.metrics["store.cache_evictions"] =
      static_cast<double>(io.cache.evictions);
  report.metrics["store.io_bytes_read"] =
      static_cast<double>(io.bytes_read);
}

/// Per-snapshot SKL2 spill presented as a SeriesSource (the legacy
/// "skl2" backend, kept for compatibility with single-snapshot `.skl2`
/// tooling). Exactly one spill file exists on disk at a time — the
/// legacy write/sample/delete contract, O(one compressed snapshot) of
/// scratch space no matter how long the series. source(t) encodes
/// snapshot t on demand and deletes the previous spill, so a stage that
/// revisits snapshots (the temporal PDF passes) re-encodes them; runs
/// that need every snapshot resident at once should use the "series"
/// backend, which pays one SKL3 container instead. source(t) invalidates
/// the previously borrowed view when t changes — the documented
/// SeriesSource contract for sequential drivers.
class Skl2SpillSeries final : public field::SeriesSource {
 public:
  Skl2SpillSeries(const field::Dataset& data, const fs::path& dir,
                  const store::StoreOptions& opts,
                  std::size_t* store_bytes)
      : data_(data),
        dir_(dir),
        opts_(opts),
        store_bytes_(store_bytes),
        counted_(data.num_snapshots(), false) {}

  [[nodiscard]] std::size_t num_snapshots() const override {
    return data_.num_snapshots();
  }

  [[nodiscard]] const field::FieldSource& source(
      std::size_t t) const override {
    SICKLE_CHECK(t < num_snapshots());
    if (reader_ == nullptr || current_ != t) {
      if (reader_ != nullptr) io_.fold(*reader_);
      reader_.reset();  // close before deleting the previous spill file
      if (current_ != kNone) {
        std::error_code ec;
        fs::remove(path(current_), ec);
      }
      const auto written =
          store::write_store(data_.snapshot(t), path(t), opts_);
      // store_bytes reports the series' compressed footprint: count each
      // snapshot once, not once per re-encode.
      if (store_bytes_ != nullptr && !counted_[t]) {
        *store_bytes_ += written.file_bytes;
        counted_[t] = true;
      }
      reader_ =
          std::make_unique<store::ChunkReader>(path(t), opts_.cache_bytes);
      current_ = t;
    }
    return *reader_;
  }

  /// Lifetime I/O tallies including the currently open reader.
  [[nodiscard]] SpillIoStats io_stats() const {
    SpillIoStats out = io_;
    if (reader_ != nullptr) out.fold(*reader_);
    return out;
  }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  [[nodiscard]] std::string path(std::size_t t) const {
    return (dir_ / ("snap_" + std::to_string(t) + ".skl2")).string();
  }

  const field::Dataset& data_;
  fs::path dir_;
  store::StoreOptions opts_;
  std::size_t* store_bytes_;
  mutable std::vector<bool> counted_;
  mutable std::unique_ptr<store::ChunkReader> reader_;
  mutable std::size_t current_ = kNone;
  mutable SpillIoStats io_;
};

/// Spill lifecycle (config-controlled): the directory is removed as soon
/// as the training set is built; if the run throws first, it is kept and
/// its path logged so a failed multi-hour spill can be inspected or
/// resumed instead of silently vanishing.
struct SpillGuard {
  fs::path dir;
  bool armed = false;

  void remove_now() {
    if (!armed) return;
    armed = false;
    std::error_code ec;
    fs::remove_all(dir, ec);
  }

  ~SpillGuard() {
    if (armed) {
      std::fprintf(stderr,
                   "sickle: run_case failed; spilled store kept at %s\n",
                   dir.string().c_str());
    }
  }
};

/// A fresh, collision-free spill directory under `root` (the config's
/// spill_dir or the system temp directory).
fs::path make_spill_dir(const std::string& root) {
  static std::atomic<std::uint64_t> run_id{0};
  const fs::path base =
      root.empty() ? fs::temp_directory_path() : fs::path(root);
  const fs::path dir =
      base / ("sickle_case_store_" + std::to_string(::getpid()) + "_" +
              std::to_string(run_id.fetch_add(1)));
  fs::create_directories(dir);
  return dir;
}

/// Resolve the temporal stage's PDF variable: explicit config, else the
/// cluster variable, else the first input variable.
std::string temporal_variable(const CaseConfig& cfg) {
  if (!cfg.temporal.variable.empty()) return cfg.temporal.variable;
  if (!cfg.pipeline.cluster_var.empty()) return cfg.pipeline.cluster_var;
  SICKLE_CHECK_MSG(!cfg.pipeline.input_vars.empty(),
                   "temporal selection needs a variable");
  return cfg.pipeline.input_vars.front();
}

/// Incremental FNV-1a 64 over POD values (chains store::fnv1a64 through
/// its seed parameter) — the sample-set fingerprint behind
/// CaseReport::sample_hash.
struct Fnv64 {
  std::uint64_t h = store::fnv1a64({});  // empty span returns the basis
  void bytes(const void* p, std::size_t n) noexcept {
    h = store::fnv1a64(
        std::span<const std::uint8_t>(static_cast<const std::uint8_t*>(p), n),
        h);
  }
  template <typename T>
  void pod(const T& v) noexcept {
    bytes(&v, sizeof(T));
  }
};

/// Streaming-ingest skl2 backend: one SKL2 file per snapshot, written
/// up front as the producer yields them (so peak memory is one snapshot,
/// unlike Skl2SpillSeries which re-encodes from RAM on demand). A single
/// reader is recycled across source(t) calls — the documented sequential
/// SeriesSource borrow contract — so reader memory stays O(one cache) no
/// matter how long the series is; revisits (the temporal PDF passes)
/// reopen files instead of re-encoding snapshots.
class Skl2FilesSeries final : public field::SeriesSource {
 public:
  Skl2FilesSeries(std::vector<std::string> paths, std::size_t cache_bytes)
      : paths_(std::move(paths)), cache_bytes_(cache_bytes) {}

  [[nodiscard]] std::size_t num_snapshots() const override {
    return paths_.size();
  }

  [[nodiscard]] const field::FieldSource& source(
      std::size_t t) const override {
    SICKLE_CHECK(t < paths_.size());
    if (reader_ == nullptr || current_ != t) {
      if (reader_ != nullptr) io_.fold(*reader_);
      reader_ =
          std::make_unique<store::ChunkReader>(paths_[t], cache_bytes_);
      current_ = t;
    }
    return *reader_;
  }

  /// Lifetime I/O tallies including the currently open reader.
  [[nodiscard]] SpillIoStats io_stats() const {
    SpillIoStats out = io_;
    if (reader_ != nullptr) out.fold(*reader_);
    return out;
  }

 private:
  std::vector<std::string> paths_;
  std::size_t cache_bytes_;
  mutable std::unique_ptr<store::ChunkReader> reader_;
  mutable std::size_t current_ = static_cast<std::size_t>(-1);
  mutable SpillIoStats io_;
};

/// --- Stage B: temporal snapshot selection over streamed PDFs. Returns
/// the snapshots to sample, ascending.
std::vector<std::size_t> selection_stage(const field::SeriesSource& series,
                                         const CaseConfig& cfg,
                                         CaseReport& report) {
  std::vector<std::size_t> selected(series.num_snapshots());
  std::iota(selected.begin(), selected.end(), std::size_t{0});
  // The span is emitted even when the stage is disabled, so every traced
  // case shows all four orchestrator stages.
  obs::Span span("case.selection", "case");
  double selection_seconds = 0.0;
  if (cfg.temporal.enabled()) {
    ScopedTimer selection_timer(selection_seconds);
    sampling::TemporalConfig tc;
    tc.variable = temporal_variable(cfg);
    tc.num_snapshots = cfg.temporal.num_snapshots;
    tc.bins = cfg.temporal.bins;
    selected = sampling::select_snapshots(series, tc);
    // Greedy selection order -> time order, so downstream stages see a
    // deterministic, chronologically coherent subset.
    std::sort(selected.begin(), selected.end());
    report.selected_snapshots = selected;
  }
  report.sampling_seconds += selection_seconds;
  report.metrics["case.selection_seconds"] = selection_seconds;
  return selected;
}

/// --- Stage C: per-snapshot sampling streamed straight into the
/// training-set builder. Accepted points become training rows while the
/// snapshot's blocks are still cached; nothing is re-read later. Only the
/// pipeline's own wall time counts toward sampling_seconds —
/// training-tensor construction (builder work) is T2 cost, exactly as it
/// was when the builder ran as a separate post-pass. Shared verbatim by
/// every backend and ingest mode, which is what keeps sample sets (and
/// report.sample_hash) bit-identical across them.
ml::TensorDataset sampling_stage(const field::SeriesSource& series,
                                 std::span<const std::size_t> selected,
                                 const CaseConfig& cfg, CaseReport& report,
                                 energy::EnergyCounter& sampling_energy) {
  const auto& pl = cfg.pipeline;
  obs::Span span("case.sampling", "case");
  Timer stage_timer;
  TrainingSetBuilder builder(series, cfg);
  Fnv64 hash;
  const PoolHandle pool = resolve_threads(pl.threads);
  double source_seconds = 0.0;
  for (const std::size_t t : selected) {
    const field::FieldSource* srcp = nullptr;
    {
      // source(t) is where the lazy skl2 backend encodes its spill, so
      // time it as ingest — every backend's T1 cost lands in the report.
      ScopedTimer ingest_timer(source_seconds);
      srcp = &series.source(t);
    }
    const field::FieldSource& src = *srcp;
    auto r = sampling::run_pipeline_streaming(src, pl, t, pool.get());
    report.sampled_points += r.total_points();
    report.sampling_seconds += r.sampling_seconds;
    sampling_energy.merge(r.energy);
    for (const auto& cs : r.cubes) {
      hash.pod<std::uint64_t>(cs.snapshot);
      hash.pod<std::uint64_t>(cs.cube_id);
      hash.pod<std::uint64_t>(cs.samples.points());
      for (const std::size_t idx : cs.samples.indices) {
        hash.pod<std::uint64_t>(idx);
      }
      for (const double x : cs.samples.features) hash.pod<double>(x);
      builder.push(src, cs);
    }
  }
  report.sampling_seconds += source_seconds;
  report.sample_hash = hash.h;
  report.metrics["case.sampling_seconds"] = stage_timer.seconds();
  return builder.take();
}

/// --- Stage D: model construction + training.
void training_stage(const ml::TensorDataset& data, const CaseConfig& cfg,
                    CaseReport& report) {
  obs::Span span("case.training", "case");
  Timer stage_timer;
  const auto& pl = cfg.pipeline;
  Rng rng(cfg.train.seed, /*stream=*/0x40DE1);
  std::unique_ptr<ml::Module> model;
  const std::size_t edge = pl.cube.ex;
  if (cfg.arch == "MLP_Transformer") {
    ml::MlpTransformerConfig mc;
    mc.in_channels = pl.input_vars.size();
    mc.num_points = pl.num_samples;
    mc.dim = cfg.model_dim;
    mc.heads = cfg.model_heads;
    mc.layers = cfg.model_layers;
    mc.ffn = 2 * cfg.model_dim;
    mc.out_channels = pl.output_vars.size();
    mc.out_edge = edge;
    model = std::make_unique<ml::MlpTransformer>(mc, rng);
  } else if (cfg.arch == "CNN_Transformer") {
    ml::CnnTransformerConfig cc;
    cc.in_channels = pl.input_vars.size();
    cc.edge = edge;
    cc.dim = cfg.model_dim;
    cc.heads = cfg.model_heads;
    cc.layers = cfg.model_layers;
    cc.ffn = 2 * cfg.model_dim;
    cc.out_channels = pl.output_vars.size();
    cc.out_edge = edge;
    // Full-full runs are attention-dominated in the paper (quadratic in
    // token count); fine tokenization reproduces that cost profile.
    cc.fine_tokens = true;
    model = std::make_unique<ml::CnnTransformer>(cc, rng);
  } else if (cfg.arch == "Foundation") {
    ml::FoundationModelConfig fc;
    fc.in_channels = pl.input_vars.size();
    fc.edge = edge;
    fc.patch = std::max<std::size_t>(2, edge / 4);
    fc.dim = cfg.model_dim;
    fc.heads = cfg.model_heads;
    fc.layers = cfg.model_layers;
    fc.ffn = 2 * cfg.model_dim;
    fc.out_channels = pl.output_vars.size();
    model = std::make_unique<ml::FoundationModel>(fc, rng);
  } else {
    throw RuntimeError("run_case: unsupported arch " + cfg.arch);
  }

  report.train = ml::fit(*model, data, cfg.train);
  report.training_kilojoules = report.train.energy.projected_kilojoules();
  report.metrics["case.training_seconds"] = stage_timer.seconds();
}

/// Mirror the scalar CaseReport fields into the metrics map so one
/// key-value view carries the whole per-case telemetry story.
void finalize_case_metrics(CaseReport& report) {
  report.metrics["case.sampled_points"] =
      static_cast<double>(report.sampled_points);
  report.metrics["case.store_bytes"] =
      static_cast<double>(report.store_bytes);
  report.metrics["case.ingest_peak_bytes"] =
      static_cast<double>(report.ingest_peak_bytes);
  report.metrics["case.selected_snapshots"] =
      static_cast<double>(report.selected_snapshots.size());
}

void check_backend_and_ingest(const CaseConfig& cfg) {
  SICKLE_CHECK_MSG(cfg.backend == "memory" || cfg.backend == "skl2" ||
                       cfg.backend == "series",
                   "unknown case backend: " + cfg.backend);
  SICKLE_CHECK_MSG(cfg.ingest == "materialize" || cfg.ingest == "streaming",
                   "unknown ingest mode: " + cfg.ingest);
}

}  // namespace

ml::TensorDataset build_training_set(const DatasetBundle& bundle,
                                     const sampling::PipelineResult& sampled,
                                     const CaseConfig& cfg) {
  const field::DatasetSeriesSource series(bundle.data);
  TrainingSetBuilder builder(series, cfg);
  for (const auto& cs : sampled.cubes) {
    builder.push(series.source(cs.snapshot), cs);
  }
  return builder.take();
}

CaseReport run_case(const DatasetBundle& bundle, CaseConfig cfg) {
  // Fill variable roles from the bundle when the config left them empty.
  auto& pl = cfg.pipeline;
  if (pl.input_vars.empty()) pl.input_vars = bundle.input_vars;
  if (pl.output_vars.empty()) pl.output_vars = bundle.output_vars;
  if (pl.cluster_var.empty()) pl.cluster_var = bundle.cluster_var;

  CaseReport report;
  check_backend_and_ingest(cfg);

  obs::Span case_span("case.run", "case");
  energy::EnergyCounter sampling_energy;
  ml::TensorDataset data;
  {
    // --- Stage A: ingest. Materialize the dataset as a SeriesSource:
    // borrowed RAM views, per-snapshot SKL2 spills, or one streaming
    // SKL3 container whose writer memory is bounded by the write budget.
    SpillGuard guard;
    const field::DatasetSeriesSource mem_series(bundle.data);
    std::unique_ptr<field::SeriesSource> spilled;
    const field::SeriesSource* series = &mem_series;
    double ingest_seconds = 0.0;
    {
      obs::Span ingest_span("case.ingest", "case");
      if (cfg.backend != "memory") {
        ScopedTimer spill_timer(ingest_seconds);
        guard.dir = make_spill_dir(cfg.spill_dir);
        guard.armed = true;
        if (cfg.backend == "skl2") {
          spilled = std::make_unique<Skl2SpillSeries>(
              bundle.data, guard.dir, cfg.store, &report.store_bytes);
        } else {
          const std::string path = (guard.dir / "series.skl3").string();
          store::SeriesWriter writer(path, cfg.store);
          for (std::size_t t = 0; t < bundle.data.num_snapshots(); ++t) {
            writer.append(bundle.data.snapshot(t));
          }
          report.store_bytes = writer.close().file_bytes;
          spilled = std::make_unique<store::SeriesReader>(
              path, cfg.store.cache_bytes);
        }
        series = spilled.get();
      }
    }
    report.sampling_seconds += ingest_seconds;
    report.metrics["case.ingest_seconds"] = ingest_seconds;

    const auto selected = selection_stage(*series, cfg, report);
    data = sampling_stage(*series, std::span<const std::size_t>(selected),
                          cfg, report, sampling_energy);

    // Reader-side I/O tallies, folded before the readers close.
    if (cfg.backend == "skl2") {
      record_spill_metrics(
          report, static_cast<Skl2SpillSeries*>(spilled.get())->io_stats());
    } else if (cfg.backend == "series") {
      auto* reader = static_cast<store::SeriesReader*>(spilled.get());
      SpillIoStats io;
      io.fold(reader->cache_stats(), reader->io_bytes_read());
      record_spill_metrics(report, io);
    }

    // The spill is only needed until the training set exists; reclaim the
    // disk before the (potentially long) training stage.
    spilled.reset();
    guard.remove_now();
  }
  // Node-projected energy: static power charged against roofline node
  // time, so ratios between cases track data volume and compute — the
  // regime the paper measures (see energy::EnergyModel).
  report.sampling_kilojoules = sampling_energy.projected_kilojoules();

  training_stage(data, cfg, report);
  finalize_case_metrics(report);
  return report;
}

CaseReport run_case(ProducerBundle& bundle, CaseConfig cfg) {
  auto& pl = cfg.pipeline;
  if (pl.input_vars.empty()) pl.input_vars = bundle.input_vars;
  if (pl.output_vars.empty()) pl.output_vars = bundle.output_vars;
  if (pl.cluster_var.empty()) pl.cluster_var = bundle.cluster_var;
  check_backend_and_ingest(cfg);

  // The memory backend borrows views of a full Dataset, so it always
  // materializes; so does explicit ingest: materialize — both delegate to
  // the DatasetBundle path for bit-exact legacy behavior.
  if (cfg.backend == "memory" || cfg.ingest == "materialize") {
    return run_case(materialize_bundle(bundle), cfg);
  }

  CaseReport report;
  obs::Span case_span("case.run", "case");
  energy::EnergyCounter sampling_energy;
  ml::TensorDataset data;
  {
    // --- Stage A, streaming: simulate -> encode -> append -> drop. At
    // most one produced snapshot is alive at any point (the loop
    // variable), and the store writer buffers at most one
    // write-budget-bounded wave of encoded blocks, so peak ingest memory
    // is one snapshot + budget (+ codec slack) — never the series.
    SpillGuard guard;
    guard.dir = make_spill_dir(cfg.spill_dir);
    guard.armed = true;
    std::unique_ptr<field::SeriesSource> spilled;
    double ingest_seconds = 0.0;
    {
      obs::Span ingest_span("case.ingest", "case");
      ScopedTimer spill_timer(ingest_seconds);
      std::size_t max_snap_bytes = 0;
      if (cfg.backend == "series") {
        const std::string path = (guard.dir / "series.skl3").string();
        store::SeriesWriter writer(path, cfg.store);
        while (auto snap = bundle.producer->next()) {
          max_snap_bytes = std::max(max_snap_bytes, snap->bytes());
          writer.append(*snap);
        }
        // Check before close(): an empty series must fail with the
        // producer-level message, not the store-internal one.
        SICKLE_CHECK_MSG(writer.snapshots_appended() > 0,
                         "producer yielded no snapshots");
        const auto wr = writer.close();
        report.store_bytes = wr.file_bytes;
        report.ingest_peak_bytes = max_snap_bytes + wr.peak_buffered_bytes;
        spilled = std::make_unique<store::SeriesReader>(
            path, cfg.store.cache_bytes);
      } else {  // skl2: one file per snapshot, written as produced
        std::vector<std::string> paths;
        paths.reserve(bundle.producer->num_snapshots());
        std::size_t max_wave_bytes = 0;
        std::size_t t = 0;
        while (auto snap = bundle.producer->next()) {
          max_snap_bytes = std::max(max_snap_bytes, snap->bytes());
          paths.push_back(
              (guard.dir / ("snap_" + std::to_string(t++) + ".skl2"))
                  .string());
          const auto wr = store::write_store(*snap, paths.back(), cfg.store);
          report.store_bytes += wr.file_bytes;
          max_wave_bytes = std::max(max_wave_bytes, wr.peak_buffered_bytes);
        }
        SICKLE_CHECK_MSG(!paths.empty(), "producer yielded no snapshots");
        report.ingest_peak_bytes = max_snap_bytes + max_wave_bytes;
        spilled = std::make_unique<Skl2FilesSeries>(std::move(paths),
                                                   cfg.store.cache_bytes);
      }
    }
    report.sampling_seconds += ingest_seconds;
    report.metrics["case.ingest_seconds"] = ingest_seconds;

    const auto selected = selection_stage(*spilled, cfg, report);
    data = sampling_stage(*spilled, std::span<const std::size_t>(selected),
                          cfg, report, sampling_energy);

    if (cfg.backend == "series") {
      auto* reader = static_cast<store::SeriesReader*>(spilled.get());
      SpillIoStats io;
      io.fold(reader->cache_stats(), reader->io_bytes_read());
      record_spill_metrics(report, io);
    } else {
      record_spill_metrics(
          report, static_cast<Skl2FilesSeries*>(spilled.get())->io_stats());
    }

    spilled.reset();
    guard.remove_now();
  }
  report.sampling_kilojoules = sampling_energy.projected_kilojoules();

  training_stage(data, cfg, report);
  finalize_case_metrics(report);
  return report;
}

ml::TensorDataset build_drag_dataset(const DatasetBundle& bundle,
                                     const std::string& method,
                                     std::size_t ns, std::size_t window,
                                     std::uint64_t seed,
                                     energy::EnergyCounter* energy) {
  SICKLE_CHECK_MSG(!bundle.scalar_target.empty(),
                   "dataset has no scalar target (need OF2D)");
  SICKLE_CHECK_MSG(bundle.data.num_snapshots() == bundle.scalar_target.size(),
                   "target length mismatch");
  const auto& shape = bundle.data.shape();
  // Treat the whole field as one "cube" so every sampler applies directly.
  field::CubeSpec spec{shape.nx, shape.ny, shape.nz};
  const field::CubeTiling tiling(shape, spec);
  auto sampler = sampling::SamplerRegistry::instance().create(method);

  sampling::SamplerContext ctx;
  ctx.phase_variables = bundle.input_vars;
  ctx.cluster_var = bundle.cluster_var;
  ctx.num_samples = ns;
  ctx.num_clusters = 10;
  ctx.energy = energy;

  std::vector<std::string> vars = bundle.input_vars;
  if (!bundle.cluster_var.empty() &&
      std::find(vars.begin(), vars.end(), bundle.cluster_var) == vars.end()) {
    vars.push_back(bundle.cluster_var);
  }

  // Fixed sample locations per snapshot (chosen on the first snapshot) so
  // the LSTM sees consistent "sensors" across the window — matching the
  // sparse-sensor framing of the paper's sample-single problem.
  const field::Hypercube first = field::extract_cube(
      bundle.data.snapshot(0), tiling, {0, 0, 0},
      std::span<const std::string>(vars));
  Rng rng = Rng(seed).fork(0xD7A6);
  std::vector<std::size_t> locations = sampler->select(first, ctx, rng);
  std::sort(locations.begin(), locations.end());

  const std::size_t c = bundle.input_vars.size();
  const std::size_t f = c * locations.size();
  ml::TensorDataset out;
  const std::size_t steps = bundle.data.num_snapshots();
  for (std::size_t t = 0; t + window <= steps; ++t) {
    std::vector<float> in;
    in.reserve(window * f);
    for (std::size_t w = 0; w < window; ++w) {
      const auto& snap = bundle.data.snapshot(t + w);
      for (const auto& var : bundle.input_vars) {
        const auto data = snap.get(var).data();
        for (const std::size_t loc : locations) {
          in.push_back(static_cast<float>(data[loc]));
        }
      }
      if (energy != nullptr) {
        energy->add_bytes(static_cast<double>(f) * sizeof(double));
      }
    }
    const auto target =
        static_cast<float>(bundle.scalar_target[t + window - 1]);
    out.push(ml::Tensor({window, f}, std::move(in)),
             ml::Tensor({1, 1}, {target}));
  }
  return out;
}

}  // namespace sickle
