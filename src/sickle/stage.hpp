/// @file stage.hpp
/// @brief Internal staged-orchestrator interface: the single place where
/// a case's ingest -> selection -> sampling -> training pipeline lives.
///
/// `run_case` (case.hpp) and `CaseSession` (session.hpp) are both thin
/// adapters over `run_staged` — the orchestrator exists exactly once, so
/// the two entry points can never diverge bit-wise. The split exists so
/// the session layer can observe and interrupt a run without the legacy
/// blocking API paying for it: every hook below is a no-op when
/// `obs == nullptr`, which is what run_case passes, keeping its behavior
/// (and its sample hashes, losses, and exception types) bit-identical to
/// the pre-session orchestrator.
///
/// This header is internal-but-documented: stable enough for tests and
/// in-tree tooling, not part of the public story README tells. External
/// callers should use run_case or CaseSession.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "energy/energy.hpp"
#include "sickle/case.hpp"
#include "sickle/errors.hpp"

namespace sickle::stage {

/// Session-side view into a running case. Implementations must be
/// thread-safe: hooks fire on whichever thread runs the case, while
/// status readers poll from other threads.
///
/// `cancel_requested` is POLLED, at stage boundaries and once per
/// snapshot inside the ingest and sampling loops — cancellation latency
/// is one snapshot's work, not one case. When it returns true the
/// orchestrator throws CancelledError out of the run (after attempting
/// producer reset, see run_staged).
class Observer {
 public:
  virtual ~Observer() = default;

  /// The run entered a new lifecycle state (kIngesting..kTraining).
  virtual void on_state(CaseState /*state*/) {}

  /// Progress within the current state: `done` of `total` units finished
  /// (snapshots for ingest/sampling; total == 0 when unknown).
  virtual void on_progress(std::size_t /*done*/, std::size_t /*total*/) {}

  /// True to interrupt the run at the next checkpoint.
  [[nodiscard]] virtual bool cancel_requested() const { return false; }
};

/// Throw CancelledError iff `obs` is non-null and requests cancellation.
/// The orchestrator calls this at every stage boundary and per snapshot.
void checkpoint(const Observer* obs);

/// --- Stage B: temporal snapshot selection over streamed PDFs. Returns
/// the snapshot indices to sample, ascending (identity when the stage is
/// disabled). Emits the case.selection span and fills
/// report.selected_snapshots / metrics["case.selection_seconds"].
[[nodiscard]] std::vector<std::size_t> selection(
    const field::SeriesSource& series, const CaseConfig& cfg,
    CaseReport& report, Observer* obs = nullptr);

/// --- Stage C: per-snapshot sampling streamed straight into the
/// training-set builder (scalers fit with a dedicated pass first).
/// Accepted points become training rows while the snapshot's blocks are
/// still cached; nothing is re-read later. Fills report.sample_hash,
/// sampled_points, sampling_seconds.
[[nodiscard]] ml::TensorDataset sampling(
    const field::SeriesSource& series, std::span<const std::size_t> selected,
    const CaseConfig& cfg, CaseReport& report,
    energy::EnergyCounter& sampling_energy, Observer* obs = nullptr);

/// --- Stage D: model construction + training. Fills report.train and
/// metrics["case.training_seconds"].
void training(const ml::TensorDataset& data, const CaseConfig& cfg,
              CaseReport& report, Observer* obs = nullptr);

/// Run the full staged case over a materialized dataset. Exactly
/// `run_case(bundle, cfg)` plus the observer hooks; run_case passes
/// nullptr.
[[nodiscard]] CaseReport run_staged(const DatasetBundle& bundle,
                                    CaseConfig cfg, Observer* obs);

/// Run the full staged case over a producer (streaming or materialized
/// ingest per cfg.ingest). On ANY failure or cancellation the producer is
/// reset() when its generator supports rewinding (flow::CloneError is
/// swallowed), so a rejected or cancelled submission does not leave a
/// half-consumed producer behind; on success the producer is consumed.
[[nodiscard]] CaseReport run_staged(ProducerBundle& bundle, CaseConfig cfg,
                                    Observer* obs);

}  // namespace sickle::stage
