#include "io/snapshot_io.hpp"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"

namespace sickle::io {

namespace {

constexpr char kSnapshotMagic[4] = {'S', 'K', 'L', '1'};
constexpr char kSamplesMagic[4] = {'S', 'K', 'S', '1'};

template <typename T>
void write_pod(std::ofstream& f, const T& v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& f) {
  T v{};
  f.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!f) throw RuntimeError("truncated .skl file");
  return v;
}

void write_string(std::ofstream& f, const std::string& s) {
  write_pod<std::uint32_t>(f, static_cast<std::uint32_t>(s.size()));
  f.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::ifstream& f) {
  const auto len = read_pod<std::uint32_t>(f);
  SICKLE_CHECK_MSG(len < (1u << 20), "implausible string length in .skl");
  std::string s(len, '\0');
  f.read(s.data(), len);
  if (!f) throw RuntimeError("truncated .skl file");
  return s;
}

void write_doubles(std::ofstream& f, std::span<const double> v) {
  f.write(reinterpret_cast<const char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(double)));
}

void read_doubles(std::ifstream& f, std::span<double> v) {
  f.read(reinterpret_cast<char*>(v.data()),
         static_cast<std::streamsize>(v.size() * sizeof(double)));
  if (!f) throw RuntimeError("truncated .skl file");
}

}  // namespace

std::size_t save_snapshot(const field::Snapshot& snap,
                          const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw RuntimeError("cannot open for write: " + path);
  f.write(kSnapshotMagic, 4);
  write_pod<std::uint64_t>(f, snap.shape().nx);
  write_pod<std::uint64_t>(f, snap.shape().ny);
  write_pod<std::uint64_t>(f, snap.shape().nz);
  write_pod<double>(f, snap.time());
  const auto names = snap.names();
  write_pod<std::uint64_t>(f, names.size());
  for (const auto& name : names) {
    write_string(f, name);
    write_doubles(f, snap.get(name).data());
  }
  f.flush();
  if (!f) throw RuntimeError("error writing: " + path);
  return file_bytes(path);
}

field::Snapshot load_snapshot(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw RuntimeError("cannot open for read: " + path);
  char magic[4];
  f.read(magic, 4);
  if (!f || std::memcmp(magic, kSnapshotMagic, 4) != 0) {
    throw RuntimeError("not a .skl snapshot file: " + path);
  }
  field::GridShape shape;
  shape.nx = read_pod<std::uint64_t>(f);
  shape.ny = read_pod<std::uint64_t>(f);
  shape.nz = read_pod<std::uint64_t>(f);
  const double time = read_pod<double>(f);
  field::Snapshot snap(shape, time);
  const auto nfields = read_pod<std::uint64_t>(f);
  SICKLE_CHECK_MSG(nfields < 1024, "implausible field count in .skl");
  for (std::uint64_t i = 0; i < nfields; ++i) {
    const std::string name = read_string(f);
    std::vector<double> data(shape.size());
    read_doubles(f, data);
    snap.add(name, std::move(data));
  }
  return snap;
}

std::size_t save_samples(const SampleFile& samples, const std::string& path) {
  SICKLE_CHECK(samples.features.size() ==
               samples.indices.size() * samples.variables.size());
  std::ofstream f(path, std::ios::binary);
  if (!f) throw RuntimeError("cannot open for write: " + path);
  f.write(kSamplesMagic, 4);
  write_pod<std::uint64_t>(f, samples.indices.size());
  write_pod<std::uint64_t>(f, samples.variables.size());
  for (const auto& v : samples.variables) write_string(f, v);
  f.write(reinterpret_cast<const char*>(samples.indices.data()),
          static_cast<std::streamsize>(samples.indices.size() *
                                       sizeof(std::uint64_t)));
  write_doubles(f, samples.features);
  f.flush();
  if (!f) throw RuntimeError("error writing: " + path);
  return file_bytes(path);
}

SampleFile load_samples(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw RuntimeError("cannot open for read: " + path);
  char magic[4];
  f.read(magic, 4);
  if (!f || std::memcmp(magic, kSamplesMagic, 4) != 0) {
    throw RuntimeError("not a .skl sample file: " + path);
  }
  SampleFile out;
  const auto n = read_pod<std::uint64_t>(f);
  const auto nvars = read_pod<std::uint64_t>(f);
  SICKLE_CHECK_MSG(nvars < 1024, "implausible variable count");
  out.variables.reserve(nvars);
  for (std::uint64_t i = 0; i < nvars; ++i) {
    out.variables.push_back(read_string(f));
  }
  out.indices.resize(n);
  f.read(reinterpret_cast<char*>(out.indices.data()),
         static_cast<std::streamsize>(n * sizeof(std::uint64_t)));
  if (!f) throw RuntimeError("truncated sample file");
  out.features.resize(n * nvars);
  read_doubles(f, out.features);
  return out;
}

std::size_t file_bytes(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<std::size_t>(size);
}

}  // namespace sickle::io
