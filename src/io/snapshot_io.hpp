/// @file snapshot_io.hpp
/// @brief Binary snapshot / sample-set storage (flat .skl format).
///
/// One of SICKLE's practical benefits is storage reduction: a feature-rich
/// subsampled dataset occupies a small fraction of the raw DNS checkpoint.
/// This module provides the flat load-everything on-disk format for full
/// snapshots and sampled subsets; the chunked compressed SKL2 container
/// for out-of-core access lives in store/snapshot_store.hpp.
///
/// Layout (little-endian, host order — single-platform scientific format):
///   magic "SKL1" | u64 nx ny nz | f64 time | u64 nfields
///   per field: u32 name_len | name bytes | nx*ny*nz f64
/// Sample sets ("SKS1"):
///   magic | u64 npoints | u64 nvars | per var name | u64 indices | features
///   row-major [npoints][nvars].
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "field/field.hpp"

namespace sickle::io {

/// Write one snapshot; returns bytes written. Throws RuntimeError on I/O
/// failure.
std::size_t save_snapshot(const field::Snapshot& snap,
                          const std::string& path);

/// Read a snapshot written by save_snapshot.
[[nodiscard]] field::Snapshot load_snapshot(const std::string& path);

/// Sampled subset: global indices plus per-point feature rows.
struct SampleFile {
  std::vector<std::string> variables;
  std::vector<std::uint64_t> indices;
  std::vector<double> features;  ///< row-major [n][variables.size()]

  [[nodiscard]] std::size_t points() const noexcept {
    return indices.size();
  }
};

std::size_t save_samples(const SampleFile& samples, const std::string& path);
[[nodiscard]] SampleFile load_samples(const std::string& path);

/// Size of a file on disk in bytes (0 if missing).
[[nodiscard]] std::size_t file_bytes(const std::string& path);

}  // namespace sickle::io
