// Multi-head self-attention and a pre-LN transformer encoder layer.
//
// Both transformer-based architectures in the paper (MLP-Transformer and
// CNN-Transformer) use a transformer encoder over the temporal token
// sequence. Attention here is exact (O(T^2)) — the quadratic cost the
// paper cites as the reason hypercubes are capped at 32^3 — and the
// attention-scaling bench measures exactly that behaviour.
#pragma once

#include <memory>

#include "ml/layers_basic.hpp"
#include "ml/module.hpp"

namespace sickle::ml {

/// Input/output [B, T, D]; D must be divisible by heads.
class MultiHeadSelfAttention final : public Module {
 public:
  MultiHeadSelfAttention(std::size_t dim, std::size_t heads, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> parameters() override;
  [[nodiscard]] double flops() const override;
  [[nodiscard]] std::string name() const override { return "MHSA"; }

 private:
  std::size_t dim_, heads_, head_dim_;
  Param w_q_, w_k_, w_v_, w_o_;

  Tensor cached_input_;   // [B, T, D]
  Tensor q_, k_, v_;      // [B, T, D]
  Tensor probs_;          // [B, heads, T, T] softmax weights
  Tensor concat_;         // [B, T, D] pre-output-projection
  std::size_t batch_ = 0, steps_ = 0;
};

/// Pre-LN encoder block: x += MHSA(LN(x)); x += FFN(LN(x)).
class TransformerEncoderLayer final : public Module {
 public:
  TransformerEncoderLayer(std::size_t dim, std::size_t heads,
                          std::size_t ffn_dim, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> parameters() override;
  [[nodiscard]] double flops() const override;
  void set_training(bool training) override;
  [[nodiscard]] std::string name() const override {
    return "TransformerEncoderLayer";
  }

 private:
  LayerNorm ln1_;
  MultiHeadSelfAttention attn_;
  LayerNorm ln2_;
  Dense ffn1_;
  ActivationLayer gelu_;
  Dense ffn2_;
};

}  // namespace sickle::ml
