// Training loop (the paper's train.py equivalent).
//
// Features mirrored from the reference setup: Adam with lr = 1e-3,
// ReduceLROnPlateau (patience 20), train/test split (default 90:10),
// batched minibatches, optional DDP-style data parallelism over an SPMD
// Comm (gradient allreduce), precision emulation (--precision), and
// energy accounting for every step.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "energy/energy.hpp"
#include "ml/loss.hpp"
#include "ml/module.hpp"
#include "ml/optim.hpp"
#include "parallel/world.hpp"

namespace sickle::ml {

/// In-memory supervised dataset: per-example tensors (no batch axis).
class TensorDataset {
 public:
  void push(Tensor input, Tensor target);
  [[nodiscard]] std::size_t size() const noexcept { return inputs_.size(); }
  [[nodiscard]] const Tensor& input(std::size_t i) const {
    return inputs_.at(i);
  }
  [[nodiscard]] const Tensor& target(std::size_t i) const {
    return targets_.at(i);
  }

  /// Stack examples [indices] into batch tensors (prepends a batch axis).
  [[nodiscard]] std::pair<Tensor, Tensor> batch(
      std::span<const std::size_t> indices) const;

  /// Total payload bytes (energy accounting).
  [[nodiscard]] double bytes() const noexcept;

 private:
  std::vector<Tensor> inputs_;
  std::vector<Tensor> targets_;
};

struct TrainConfig {
  std::size_t epochs = 100;
  std::size_t batch = 16;
  double lr = 1e-3;
  std::size_t patience = 20;     ///< ReduceLROnPlateau patience
  double lr_factor = 0.5;
  double test_fraction = 0.1;    ///< 90:10 split as in the paper
  Precision precision = Precision::kFp32;
  std::uint64_t seed = 0;
  bool verbose = false;
};

struct TrainReport {
  std::vector<double> epoch_losses;  ///< mean train loss per epoch
  double final_train_loss = 0.0;
  double test_loss = 0.0;            ///< "Evaluation on test set"
  double seconds = 0.0;
  std::size_t parameters = 0;
  energy::EnergyCounter energy;
};

/// Train `model` on `data`; if `comm` is non-null the call must be
/// collective (every rank constructs an identically-seeded model) and
/// batches are sharded across ranks with gradient averaging.
TrainReport fit(Module& model, const TensorDataset& data,
                const TrainConfig& cfg, Comm* comm = nullptr);

/// Mean MSE of the model over the given examples.
[[nodiscard]] double evaluate(Module& model, const TensorDataset& data,
                              std::span<const std::size_t> indices,
                              std::size_t batch_size = 16);

}  // namespace sickle::ml
