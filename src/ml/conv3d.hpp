// 3D convolution layers (channels-first, [B, C, D, H, W]).
//
// The CNN-Transformer encoder uses Conv3D over structured hypercubes; both
// decoder variants use ConvTranspose3D to reconstruct dense fields.
// Implementations are direct (loop-nest) convolutions — cube edges are
// <= 32, so im2col buffers would cost more than they save here.
#pragma once

#include "ml/module.hpp"

namespace sickle::ml {

/// y = conv3d(x, W) + b. Weight layout [Cout, Cin, k, k, k].
class Conv3D final : public Module {
 public:
  Conv3D(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t stride, std::size_t padding,
         Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> parameters() override;
  [[nodiscard]] double flops() const override;
  [[nodiscard]] std::string name() const override { return "Conv3D"; }

  [[nodiscard]] std::size_t out_extent(std::size_t in) const noexcept {
    return (in + 2 * padding_ - kernel_) / stride_ + 1;
  }

 private:
  std::size_t cin_, cout_, kernel_, stride_, padding_;
  Param weight_, bias_;
  Tensor cached_input_;
  double last_flops_ = 0.0;
};

/// Transposed convolution (stride-s upsampling).
/// Weight layout [Cin, Cout, k, k, k] (PyTorch convention).
class ConvTranspose3D final : public Module {
 public:
  ConvTranspose3D(std::size_t in_channels, std::size_t out_channels,
                  std::size_t kernel, std::size_t stride,
                  std::size_t padding, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> parameters() override;
  [[nodiscard]] double flops() const override;
  [[nodiscard]] std::string name() const override { return "ConvTranspose3D"; }

  [[nodiscard]] std::size_t out_extent(std::size_t in) const noexcept {
    return (in - 1) * stride_ + kernel_ - 2 * padding_;
  }

 private:
  std::size_t cin_, cout_, kernel_, stride_, padding_;
  Param weight_, bias_;
  Tensor cached_input_;
  double last_flops_ = 0.0;
};

}  // namespace sickle::ml
