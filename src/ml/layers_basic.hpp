// Basic layers: Dense, activations, LayerNorm, Dropout, Sequential.
//
// Shapes are batch-first; Dense treats the last axis as features and
// flattens everything before it into an effective batch.
#pragma once

#include <memory>

#include "ml/module.hpp"

namespace sickle::ml {

/// Fully connected layer y = x W^T + b with W stored [out, in].
class Dense final : public Module {
 public:
  Dense(std::size_t in_features, std::size_t out_features, Rng& rng,
        bool bias = true);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> parameters() override;
  [[nodiscard]] double flops() const override;
  [[nodiscard]] std::string name() const override { return "Dense"; }

  [[nodiscard]] std::size_t in_features() const noexcept { return in_; }
  [[nodiscard]] std::size_t out_features() const noexcept { return out_; }

  // Read-only weight access for checkpoint converters (infer::compile).
  [[nodiscard]] const Tensor& weight() const noexcept { return weight_.value; }
  [[nodiscard]] const Tensor& bias() const noexcept { return bias_.value; }
  [[nodiscard]] bool has_bias() const noexcept { return has_bias_; }

 private:
  std::size_t in_, out_;
  Param weight_;
  Param bias_;
  bool has_bias_;
  Tensor cached_input_;
  std::size_t cached_batch_ = 0;
};

/// Elementwise activations.
enum class Activation { kRelu, kTanh, kGelu, kSigmoid };

class ActivationLayer final : public Module {
 public:
  explicit ActivationLayer(Activation kind) : kind_(kind) {}
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "Activation"; }
  [[nodiscard]] Activation kind() const noexcept { return kind_; }

 private:
  Activation kind_;
  Tensor cached_input_;
};

/// Layer normalization over the last axis.
class LayerNorm final : public Module {
 public:
  explicit LayerNorm(std::size_t features, double eps = 1e-5);
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> parameters() override;
  [[nodiscard]] std::string name() const override { return "LayerNorm"; }

 private:
  std::size_t features_;
  double eps_;
  Param gamma_;
  Param beta_;
  Tensor cached_norm_;   ///< normalized input
  Tensor cached_inv_std_;  ///< per-row 1/std
};

/// Inverted dropout (scales at train time; identity at eval).
class Dropout final : public Module {
 public:
  Dropout(double rate, Rng& rng);
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "Dropout"; }

 private:
  double rate_;
  Rng* rng_;
  Tensor mask_;
};

/// Container running sub-modules in order.
class Sequential final : public Module {
 public:
  Sequential() = default;
  void push(std::unique_ptr<Module> module) {
    modules_.push_back(std::move(module));
  }
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> parameters() override;
  [[nodiscard]] double flops() const override;
  void set_training(bool training) override;
  [[nodiscard]] std::string name() const override { return "Sequential"; }
  [[nodiscard]] std::size_t size() const noexcept { return modules_.size(); }
  [[nodiscard]] Module& at(std::size_t i) { return *modules_.at(i); }

 private:
  std::vector<std::unique_ptr<Module>> modules_;
};

}  // namespace sickle::ml
