#include "ml/layers_basic.hpp"

#include <cmath>
#include <numbers>

namespace sickle::ml {

namespace {
/// Effective batch = product of all axes except the last.
std::size_t batch_of(const Tensor& t) {
  SICKLE_CHECK_MSG(t.rank() >= 1, "layer input needs rank >= 1");
  std::size_t b = 1;
  for (std::size_t i = 0; i + 1 < t.rank(); ++i) b *= t.dim(i);
  return b;
}
}  // namespace

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng& rng,
             bool bias)
    : in_(in_features),
      out_(out_features),
      weight_("weight",
              Tensor::randn({out_features, in_features}, rng,
                            static_cast<float>(
                                std::sqrt(2.0 / static_cast<double>(
                                                    in_features))))),
      bias_("bias", Tensor::zeros({out_features})),
      has_bias_(bias) {}

Tensor Dense::forward(const Tensor& input) {
  SICKLE_CHECK_MSG(input.dim(input.rank() - 1) == in_,
                   "Dense: feature size mismatch");
  cached_input_ = input;
  cached_batch_ = batch_of(input);
  auto out_shape = input.shape();
  out_shape.back() = out_;
  Tensor out(out_shape);
  matmul_bt(input.data(), weight_.value.data(), out.data(), cached_batch_,
            in_, out_);
  if (has_bias_) {
    for (std::size_t b = 0; b < cached_batch_; ++b) {
      float* row = out.raw() + b * out_;
      for (std::size_t j = 0; j < out_; ++j) row[j] += bias_.value[j];
    }
  }
  return out;
}

Tensor Dense::backward(const Tensor& grad_output) {
  const std::size_t b = cached_batch_;
  // dW[o,i] = sum_b g[b,o] * x[b,i]  (A^T * B with A = grad, B = input)
  matmul_at(grad_output.data(), cached_input_.data(), weight_.grad.data(),
            out_, b, in_, /*accumulate=*/true);
  if (has_bias_) {
    for (std::size_t r = 0; r < b; ++r) {
      const float* row = grad_output.raw() + r * out_;
      for (std::size_t j = 0; j < out_; ++j) bias_.grad[j] += row[j];
    }
  }
  // dX = g * W
  Tensor grad_in(cached_input_.shape());
  matmul(grad_output.data(), weight_.value.data(), grad_in.data(), b, out_,
         in_);
  return grad_in;
}

std::vector<Param*> Dense::parameters() {
  std::vector<Param*> p{&weight_};
  if (has_bias_) p.push_back(&bias_);
  return p;
}

double Dense::flops() const {
  // forward + both backward matmuls.
  return 3.0 * matmul_flops(cached_batch_, in_, out_);
}

Tensor ActivationLayer::forward(const Tensor& input) {
  cached_input_ = input;
  Tensor out(input.shape());
  const auto x = input.data();
  auto y = out.data();
  switch (kind_) {
    case Activation::kRelu:
      for (std::size_t i = 0; i < x.size(); ++i) {
        y[i] = x[i] > 0.0f ? x[i] : 0.0f;
      }
      break;
    case Activation::kTanh:
      for (std::size_t i = 0; i < x.size(); ++i) y[i] = std::tanh(x[i]);
      break;
    case Activation::kSigmoid:
      for (std::size_t i = 0; i < x.size(); ++i) {
        y[i] = 1.0f / (1.0f + std::exp(-x[i]));
      }
      break;
    case Activation::kGelu:
      // tanh approximation (matches PyTorch's approximate="tanh").
      for (std::size_t i = 0; i < x.size(); ++i) {
        const float c = 0.7978845608f;  // sqrt(2/pi)
        const float u = c * (x[i] + 0.044715f * x[i] * x[i] * x[i]);
        y[i] = 0.5f * x[i] * (1.0f + std::tanh(u));
      }
      break;
  }
  return out;
}

Tensor ActivationLayer::backward(const Tensor& grad_output) {
  Tensor grad_in(cached_input_.shape());
  const auto x = cached_input_.data();
  const auto g = grad_output.data();
  auto d = grad_in.data();
  switch (kind_) {
    case Activation::kRelu:
      for (std::size_t i = 0; i < x.size(); ++i) {
        d[i] = x[i] > 0.0f ? g[i] : 0.0f;
      }
      break;
    case Activation::kTanh:
      for (std::size_t i = 0; i < x.size(); ++i) {
        const float t = std::tanh(x[i]);
        d[i] = g[i] * (1.0f - t * t);
      }
      break;
    case Activation::kSigmoid:
      for (std::size_t i = 0; i < x.size(); ++i) {
        const float s = 1.0f / (1.0f + std::exp(-x[i]));
        d[i] = g[i] * s * (1.0f - s);
      }
      break;
    case Activation::kGelu:
      for (std::size_t i = 0; i < x.size(); ++i) {
        const float c = 0.7978845608f;
        const float x3 = x[i] * x[i] * x[i];
        const float u = c * (x[i] + 0.044715f * x3);
        const float t = std::tanh(u);
        const float du = c * (1.0f + 3.0f * 0.044715f * x[i] * x[i]);
        d[i] = g[i] * (0.5f * (1.0f + t) +
                       0.5f * x[i] * (1.0f - t * t) * du);
      }
      break;
  }
  return grad_in;
}

LayerNorm::LayerNorm(std::size_t features, double eps)
    : features_(features),
      eps_(eps),
      gamma_("gamma", Tensor({features})),
      beta_("beta", Tensor::zeros({features})) {
  gamma_.value.fill(1.0f);
}

Tensor LayerNorm::forward(const Tensor& input) {
  SICKLE_CHECK(input.dim(input.rank() - 1) == features_);
  const std::size_t rows = batch_of(input);
  Tensor out(input.shape());
  cached_norm_ = Tensor(input.shape());
  cached_inv_std_ = Tensor({rows});
  for (std::size_t r = 0; r < rows; ++r) {
    const float* x = input.raw() + r * features_;
    float mean = 0.0f;
    for (std::size_t j = 0; j < features_; ++j) mean += x[j];
    mean /= static_cast<float>(features_);
    float var = 0.0f;
    for (std::size_t j = 0; j < features_; ++j) {
      const float d = x[j] - mean;
      var += d * d;
    }
    var /= static_cast<float>(features_);
    const float inv_std =
        1.0f / std::sqrt(var + static_cast<float>(eps_));
    cached_inv_std_[r] = inv_std;
    float* nrm = cached_norm_.raw() + r * features_;
    float* y = out.raw() + r * features_;
    for (std::size_t j = 0; j < features_; ++j) {
      nrm[j] = (x[j] - mean) * inv_std;
      y[j] = nrm[j] * gamma_.value[j] + beta_.value[j];
    }
  }
  return out;
}

Tensor LayerNorm::backward(const Tensor& grad_output) {
  const std::size_t rows = batch_of(grad_output);
  const auto f = static_cast<float>(features_);
  Tensor grad_in(grad_output.shape());
  for (std::size_t r = 0; r < rows; ++r) {
    const float* g = grad_output.raw() + r * features_;
    const float* nrm = cached_norm_.raw() + r * features_;
    const float inv_std = cached_inv_std_[r];
    // dgamma / dbeta
    float sum_g_gamma = 0.0f, sum_g_gamma_nrm = 0.0f;
    for (std::size_t j = 0; j < features_; ++j) {
      gamma_.grad[j] += g[j] * nrm[j];
      beta_.grad[j] += g[j];
      const float gg = g[j] * gamma_.value[j];
      sum_g_gamma += gg;
      sum_g_gamma_nrm += gg * nrm[j];
    }
    float* d = grad_in.raw() + r * features_;
    for (std::size_t j = 0; j < features_; ++j) {
      const float gg = g[j] * gamma_.value[j];
      d[j] = inv_std * (gg - sum_g_gamma / f - nrm[j] * sum_g_gamma_nrm / f);
    }
  }
  return grad_in;
}

std::vector<Param*> LayerNorm::parameters() { return {&gamma_, &beta_}; }

Dropout::Dropout(double rate, Rng& rng) : rate_(rate), rng_(&rng) {
  SICKLE_CHECK_MSG(rate >= 0.0 && rate < 1.0, "dropout rate in [0,1)");
}

Tensor Dropout::forward(const Tensor& input) {
  if (!training_ || rate_ == 0.0) {
    mask_ = Tensor();  // identity
    return input;
  }
  mask_ = Tensor(input.shape());
  Tensor out(input.shape());
  const float scale = 1.0f / static_cast<float>(1.0 - rate_);
  for (std::size_t i = 0; i < input.size(); ++i) {
    const bool keep = rng_->uniform() >= rate_;
    mask_[i] = keep ? scale : 0.0f;
    out[i] = input[i] * mask_[i];
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (mask_.size() == 0) return grad_output;
  Tensor grad_in(grad_output.shape());
  for (std::size_t i = 0; i < grad_output.size(); ++i) {
    grad_in[i] = grad_output[i] * mask_[i];
  }
  return grad_in;
}

Tensor Sequential::forward(const Tensor& input) {
  Tensor x = input;
  for (auto& m : modules_) x = m->forward(x);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Param*> Sequential::parameters() {
  std::vector<Param*> out;
  for (auto& m : modules_) {
    const auto p = m->parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

double Sequential::flops() const {
  double total = 0.0;
  for (const auto& m : modules_) total += m->flops();
  return total;
}

void Sequential::set_training(bool training) {
  Module::set_training(training);
  for (auto& m : modules_) m->set_training(training);
}

}  // namespace sickle::ml
