#include "ml/conv3d.hpp"

#include <cmath>

namespace sickle::ml {

namespace {

struct Dims {
  std::size_t b, c, d, h, w;
};

Dims dims_of(const Tensor& t) {
  SICKLE_CHECK_MSG(t.rank() == 5, "conv layers expect [B, C, D, H, W]");
  return {t.dim(0), t.dim(1), t.dim(2), t.dim(3), t.dim(4)};
}

inline std::size_t vox(const Dims& s, std::size_t b, std::size_t c,
                       std::size_t z, std::size_t y, std::size_t x) {
  return (((b * s.c + c) * s.d + z) * s.h + y) * s.w + x;
}

}  // namespace

Conv3D::Conv3D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t padding,
               Rng& rng)
    : cin_(in_channels),
      cout_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      weight_("weight",
              Tensor::randn(
                  {out_channels, in_channels, kernel, kernel, kernel}, rng,
                  static_cast<float>(std::sqrt(
                      2.0 / static_cast<double>(in_channels * kernel *
                                                kernel * kernel))))),
      bias_("bias", Tensor::zeros({out_channels})) {
  SICKLE_CHECK(kernel >= 1 && stride >= 1);
}

Tensor Conv3D::forward(const Tensor& input) {
  const Dims in = dims_of(input);
  SICKLE_CHECK_MSG(in.c == cin_, "Conv3D channel mismatch");
  cached_input_ = input;
  const Dims out{in.b, cout_, out_extent(in.d), out_extent(in.h),
                 out_extent(in.w)};
  Tensor y({out.b, out.c, out.d, out.h, out.w});

  const std::size_t k = kernel_;
  const auto p = static_cast<std::ptrdiff_t>(padding_);
  for (std::size_t b = 0; b < in.b; ++b) {
    for (std::size_t oc = 0; oc < cout_; ++oc) {
      for (std::size_t oz = 0; oz < out.d; ++oz) {
        for (std::size_t oy = 0; oy < out.h; ++oy) {
          for (std::size_t ox = 0; ox < out.w; ++ox) {
            float acc = bias_.value[oc];
            for (std::size_t ic = 0; ic < cin_; ++ic) {
              for (std::size_t kz = 0; kz < k; ++kz) {
                const std::ptrdiff_t iz =
                    static_cast<std::ptrdiff_t>(oz * stride_ + kz) - p;
                if (iz < 0 || iz >= static_cast<std::ptrdiff_t>(in.d))
                  continue;
                for (std::size_t ky = 0; ky < k; ++ky) {
                  const std::ptrdiff_t iy =
                      static_cast<std::ptrdiff_t>(oy * stride_ + ky) - p;
                  if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(in.h))
                    continue;
                  for (std::size_t kx = 0; kx < k; ++kx) {
                    const std::ptrdiff_t ix =
                        static_cast<std::ptrdiff_t>(ox * stride_ + kx) - p;
                    if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(in.w))
                      continue;
                    acc += weight_.value[(((oc * cin_ + ic) * k + kz) * k +
                                          ky) * k + kx] *
                           input[vox(in, b, ic, static_cast<std::size_t>(iz),
                                     static_cast<std::size_t>(iy),
                                     static_cast<std::size_t>(ix))];
                  }
                }
              }
            }
            y[vox(out, b, oc, oz, oy, ox)] = acc;
          }
        }
      }
    }
  }
  last_flops_ = 2.0 * static_cast<double>(y.size()) *
                static_cast<double>(cin_ * k * k * k) * 3.0;
  return y;
}

Tensor Conv3D::backward(const Tensor& grad_output) {
  const Dims in = dims_of(cached_input_);
  const Dims out = dims_of(grad_output);
  Tensor grad_in({in.b, in.c, in.d, in.h, in.w});
  const std::size_t k = kernel_;
  const auto p = static_cast<std::ptrdiff_t>(padding_);

  for (std::size_t b = 0; b < in.b; ++b) {
    for (std::size_t oc = 0; oc < cout_; ++oc) {
      for (std::size_t oz = 0; oz < out.d; ++oz) {
        for (std::size_t oy = 0; oy < out.h; ++oy) {
          for (std::size_t ox = 0; ox < out.w; ++ox) {
            const float g = grad_output[vox(out, b, oc, oz, oy, ox)];
            if (g == 0.0f) continue;
            bias_.grad[oc] += g;
            for (std::size_t ic = 0; ic < cin_; ++ic) {
              for (std::size_t kz = 0; kz < k; ++kz) {
                const std::ptrdiff_t iz =
                    static_cast<std::ptrdiff_t>(oz * stride_ + kz) - p;
                if (iz < 0 || iz >= static_cast<std::ptrdiff_t>(in.d))
                  continue;
                for (std::size_t ky = 0; ky < k; ++ky) {
                  const std::ptrdiff_t iy =
                      static_cast<std::ptrdiff_t>(oy * stride_ + ky) - p;
                  if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(in.h))
                    continue;
                  for (std::size_t kx = 0; kx < k; ++kx) {
                    const std::ptrdiff_t ix =
                        static_cast<std::ptrdiff_t>(ox * stride_ + kx) - p;
                    if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(in.w))
                      continue;
                    const std::size_t widx =
                        (((oc * cin_ + ic) * k + kz) * k + ky) * k + kx;
                    const std::size_t iidx =
                        vox(in, b, ic, static_cast<std::size_t>(iz),
                            static_cast<std::size_t>(iy),
                            static_cast<std::size_t>(ix));
                    weight_.grad[widx] += g * cached_input_[iidx];
                    grad_in[iidx] += g * weight_.value[widx];
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return grad_in;
}

std::vector<Param*> Conv3D::parameters() { return {&weight_, &bias_}; }

double Conv3D::flops() const { return last_flops_; }

ConvTranspose3D::ConvTranspose3D(std::size_t in_channels,
                                 std::size_t out_channels, std::size_t kernel,
                                 std::size_t stride, std::size_t padding,
                                 Rng& rng)
    : cin_(in_channels),
      cout_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      weight_("weight",
              Tensor::randn(
                  {in_channels, out_channels, kernel, kernel, kernel}, rng,
                  static_cast<float>(std::sqrt(
                      2.0 / static_cast<double>(in_channels * kernel *
                                                kernel * kernel))))),
      bias_("bias", Tensor::zeros({out_channels})) {
  SICKLE_CHECK(kernel >= 1 && stride >= 1);
  SICKLE_CHECK_MSG(kernel >= 2 * padding, "transpose conv: kernel < 2*pad");
}

Tensor ConvTranspose3D::forward(const Tensor& input) {
  const Dims in = dims_of(input);
  SICKLE_CHECK_MSG(in.c == cin_, "ConvTranspose3D channel mismatch");
  cached_input_ = input;
  const Dims out{in.b, cout_, out_extent(in.d), out_extent(in.h),
                 out_extent(in.w)};
  Tensor y({out.b, out.c, out.d, out.h, out.w});
  for (std::size_t b = 0; b < out.b; ++b) {
    for (std::size_t oc = 0; oc < cout_; ++oc) {
      float* base = y.raw() + vox(out, b, oc, 0, 0, 0);
      const std::size_t n = out.d * out.h * out.w;
      for (std::size_t i = 0; i < n; ++i) base[i] = bias_.value[oc];
    }
  }

  const std::size_t k = kernel_;
  const auto p = static_cast<std::ptrdiff_t>(padding_);
  // Scatter: each input voxel contributes a k^3 patch to the output.
  for (std::size_t b = 0; b < in.b; ++b) {
    for (std::size_t ic = 0; ic < cin_; ++ic) {
      for (std::size_t iz = 0; iz < in.d; ++iz) {
        for (std::size_t iy = 0; iy < in.h; ++iy) {
          for (std::size_t ix = 0; ix < in.w; ++ix) {
            const float x = cached_input_[vox(in, b, ic, iz, iy, ix)];
            if (x == 0.0f) continue;
            for (std::size_t oc = 0; oc < cout_; ++oc) {
              for (std::size_t kz = 0; kz < k; ++kz) {
                const std::ptrdiff_t oz =
                    static_cast<std::ptrdiff_t>(iz * stride_ + kz) - p;
                if (oz < 0 || oz >= static_cast<std::ptrdiff_t>(out.d))
                  continue;
                for (std::size_t ky = 0; ky < k; ++ky) {
                  const std::ptrdiff_t oy =
                      static_cast<std::ptrdiff_t>(iy * stride_ + ky) - p;
                  if (oy < 0 || oy >= static_cast<std::ptrdiff_t>(out.h))
                    continue;
                  for (std::size_t kx = 0; kx < k; ++kx) {
                    const std::ptrdiff_t ox =
                        static_cast<std::ptrdiff_t>(ix * stride_ + kx) - p;
                    if (ox < 0 || ox >= static_cast<std::ptrdiff_t>(out.w))
                      continue;
                    y[vox(out, b, oc, static_cast<std::size_t>(oz),
                          static_cast<std::size_t>(oy),
                          static_cast<std::size_t>(ox))] +=
                        x * weight_.value[(((ic * cout_ + oc) * k + kz) * k +
                                           ky) * k + kx];
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  last_flops_ = 2.0 * static_cast<double>(input.size()) *
                static_cast<double>(cout_ * k * k * k) * 3.0;
  return y;
}

Tensor ConvTranspose3D::backward(const Tensor& grad_output) {
  const Dims in = dims_of(cached_input_);
  const Dims out{in.b, cout_, out_extent(in.d), out_extent(in.h),
                 out_extent(in.w)};
  Tensor grad_in({in.b, in.c, in.d, in.h, in.w});
  const std::size_t k = kernel_;
  const auto p = static_cast<std::ptrdiff_t>(padding_);

  // Bias grad: sum over all output voxels per channel.
  for (std::size_t b = 0; b < out.b; ++b) {
    for (std::size_t oc = 0; oc < cout_; ++oc) {
      const float* base = grad_output.raw() + vox(out, b, oc, 0, 0, 0);
      const std::size_t n = out.d * out.h * out.w;
      float acc = 0.0f;
      for (std::size_t i = 0; i < n; ++i) acc += base[i];
      bias_.grad[oc] += acc;
    }
  }

  for (std::size_t b = 0; b < in.b; ++b) {
    for (std::size_t ic = 0; ic < cin_; ++ic) {
      for (std::size_t iz = 0; iz < in.d; ++iz) {
        for (std::size_t iy = 0; iy < in.h; ++iy) {
          for (std::size_t ix = 0; ix < in.w; ++ix) {
            const std::size_t iidx = vox(in, b, ic, iz, iy, ix);
            const float x = cached_input_[iidx];
            float dx = 0.0f;
            for (std::size_t oc = 0; oc < cout_; ++oc) {
              for (std::size_t kz = 0; kz < k; ++kz) {
                const std::ptrdiff_t oz =
                    static_cast<std::ptrdiff_t>(iz * stride_ + kz) - p;
                if (oz < 0 || oz >= static_cast<std::ptrdiff_t>(out.d))
                  continue;
                for (std::size_t ky = 0; ky < k; ++ky) {
                  const std::ptrdiff_t oy =
                      static_cast<std::ptrdiff_t>(iy * stride_ + ky) - p;
                  if (oy < 0 || oy >= static_cast<std::ptrdiff_t>(out.h))
                    continue;
                  for (std::size_t kx = 0; kx < k; ++kx) {
                    const std::ptrdiff_t ox =
                        static_cast<std::ptrdiff_t>(ix * stride_ + kx) - p;
                    if (ox < 0 || ox >= static_cast<std::ptrdiff_t>(out.w))
                      continue;
                    const std::size_t widx =
                        (((ic * cout_ + oc) * k + kz) * k + ky) * k + kx;
                    const float g =
                        grad_output[vox(out, b, oc,
                                        static_cast<std::size_t>(oz),
                                        static_cast<std::size_t>(oy),
                                        static_cast<std::size_t>(ox))];
                    dx += g * weight_.value[widx];
                    weight_.grad[widx] += g * x;
                  }
                }
              }
            }
            grad_in[iidx] = dx;
          }
        }
      }
    }
  }
  return grad_in;
}

std::vector<Param*> ConvTranspose3D::parameters() {
  return {&weight_, &bias_};
}

double ConvTranspose3D::flops() const { return last_flops_; }

}  // namespace sickle::ml
