// Minimal dense tensor for the training stack.
//
// The paper trains with PyTorch; offline we implement the needed subset
// from scratch. Tensor is a reference-free owning container (row-major,
// float32 — matching the paper's training precision) with just the ops the
// layers need. Autograd is explicit: every Module implements its own
// backward pass, which keeps the stack small and auditable.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace sickle::ml {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::vector<std::size_t> shape, std::vector<float> data);

  [[nodiscard]] const std::vector<std::size_t>& shape() const noexcept {
    return shape_;
  }
  [[nodiscard]] std::size_t rank() const noexcept { return shape_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] std::size_t dim(std::size_t i) const {
    SICKLE_CHECK(i < shape_.size());
    return shape_[i];
  }

  [[nodiscard]] std::span<float> data() noexcept { return data_; }
  [[nodiscard]] std::span<const float> data() const noexcept { return data_; }
  [[nodiscard]] float* raw() noexcept { return data_.data(); }
  [[nodiscard]] const float* raw() const noexcept { return data_.data(); }

  float& operator[](std::size_t i) noexcept { return data_[i]; }
  float operator[](std::size_t i) const noexcept { return data_[i]; }

  /// Reinterpret with a new shape of identical total size.
  [[nodiscard]] Tensor reshaped(std::vector<std::size_t> shape) const;

  void fill(float value) noexcept;
  void zero() noexcept { fill(0.0f); }

  [[nodiscard]] std::string shape_str() const;

  static Tensor zeros(std::vector<std::size_t> shape);
  /// He/Glorot-style scaled Gaussian init.
  static Tensor randn(std::vector<std::size_t> shape, Rng& rng,
                      float stddev = 1.0f);

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

/// C = A(mxk) * B(kxn), row-major. `accumulate` adds into C.
void matmul(std::span<const float> a, std::span<const float> b,
            std::span<float> c, std::size_t m, std::size_t k, std::size_t n,
            bool accumulate = false);

/// C = A(mxk) * B^T where B is (n x k).
void matmul_bt(std::span<const float> a, std::span<const float> b,
               std::span<float> c, std::size_t m, std::size_t k,
               std::size_t n, bool accumulate = false);

/// C = A^T(k x m -> m x k view) * B(k x n) — i.e. C(m x n) = sum_k A[k,m]*B[k,n].
void matmul_at(std::span<const float> a, std::span<const float> b,
               std::span<float> c, std::size_t m, std::size_t k,
               std::size_t n, bool accumulate = false);

/// FLOPs of a matmul (2*m*k*n) — used by the energy model.
[[nodiscard]] constexpr double matmul_flops(std::size_t m, std::size_t k,
                                            std::size_t n) noexcept {
  return 2.0 * static_cast<double>(m) * static_cast<double>(k) *
         static_cast<double>(n);
}

}  // namespace sickle::ml
